// provtop — ProvLedger's metrics inspector.
//
// Modes:
//   provtop --self-test   Exercise the obs registry end to end — counter/
//                         gauge/histogram semantics, label families, both
//                         exposition formats, type-conflict quarantine —
//                         against an isolated Registry instance. Exit 0 on
//                         success, 1 with a FAIL line per broken check.
//                         Wired into scripts/check_build.sh.
//   provtop [--json]      Spin up a small in-process provenance stack
//                         (chain + store), drive a few anchors and queries
//                         through it, and dump the resulting metrics
//                         exposition from obs::Registry::Default() to
//                         stdout — Prometheus text by default, JSON with
//                         --json. The quickest way to see what a live node
//                         exports, and the README's monitoring walkthrough.
//
// Thread safety: single-threaded command-line tool; no shared state.

#include <cstdio>
#include <string>
#include <vector>

#include "common/clock.h"
#include "ledger/chain.h"
#include "obs/metrics.h"
#include "prov/query.h"
#include "prov/store.h"

namespace {

int g_failures = 0;

#define PROVTOP_CHECK(cond)                                           \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "self-test FAIL: %s (line %d)\n", #cond,   \
                   __LINE__);                                         \
      ++g_failures;                                                   \
    }                                                                 \
  } while (0)

int SelfTest() {
  namespace obs = provledger::obs;
  obs::Registry registry;

  // Counter: relaxed monotonic add, defaulting to 1.
  obs::Counter* ops = registry.GetCounter("selftest_ops_total", "ops");
  ops->Increment();
  ops->Increment(41);
  PROVTOP_CHECK(ops->value() == 42);
  // Same (name, labels) resolves to the same cell.
  PROVTOP_CHECK(registry.GetCounter("selftest_ops_total", "ops") == ops);

  // Gauge: set/add, signed.
  obs::Gauge* depth = registry.GetGauge("selftest_depth", "depth");
  depth->Set(7);
  depth->Add(-9);
  PROVTOP_CHECK(depth->value() == -2);

  // Labeled family: distinct label sets are distinct cells.
  obs::Counter* ok_cell = registry.GetCounter("selftest_results_total", "r",
                                              {{"result", "ok"}});
  obs::Counter* err_cell = registry.GetCounter("selftest_results_total", "r",
                                               {{"result", "err"}});
  PROVTOP_CHECK(ok_cell != err_cell);
  ok_cell->Increment(3);
  err_cell->Increment();

  // Histogram: bucket placement on the bound (lower_bound => le is
  // inclusive), count and sum.
  obs::Histogram* lat = registry.GetHistogram("selftest_wait_seconds", "w",
                                              {0.001, 0.01, 0.1});
  lat->Observe(0.0005);
  lat->Observe(0.001);   // lands in the le=0.001 bucket (inclusive)
  lat->Observe(0.05);
  lat->Observe(5.0);     // overflow cell
  PROVTOP_CHECK(lat->count() == 4);
  PROVTOP_CHECK(lat->bucket_value(0) == 2);
  PROVTOP_CHECK(lat->bucket_value(1) == 0);
  PROVTOP_CHECK(lat->bucket_value(2) == 1);
  PROVTOP_CHECK(lat->bucket_value(3) == 1);
  PROVTOP_CHECK(lat->sum() > 5.05 && lat->sum() < 5.06);

  // Type conflict: re-registering under another type quarantines, never
  // clobbers or returns null.
  obs::Gauge* conflicted = registry.GetGauge("selftest_ops_total", "oops");
  PROVTOP_CHECK(conflicted != nullptr);
  conflicted->Set(99);
  PROVTOP_CHECK(ops->value() == 42);
  PROVTOP_CHECK(registry.type_conflicts() == 1);

  // Text exposition carries every family, series, and histogram bucket.
  const std::string text = registry.TextExposition();
  PROVTOP_CHECK(text.find("# TYPE selftest_ops_total counter") !=
                std::string::npos);
  PROVTOP_CHECK(text.find("selftest_ops_total 42") != std::string::npos);
  PROVTOP_CHECK(text.find("selftest_depth -2") != std::string::npos);
  PROVTOP_CHECK(text.find("selftest_results_total{result=\"ok\"} 3") !=
                std::string::npos);
  PROVTOP_CHECK(text.find("selftest_wait_seconds_bucket{le=\"+Inf\"} 4") !=
                std::string::npos);
  PROVTOP_CHECK(text.find("selftest_wait_seconds_count 4") !=
                std::string::npos);

  // JSON exposition parses far enough to carry the same values.
  const std::string json = registry.JsonExposition();
  PROVTOP_CHECK(json.find("\"name\": \"selftest_ops_total\"") !=
                std::string::npos);
  PROVTOP_CHECK(json.find("\"type_conflicts\": 1") != std::string::npos);
  PROVTOP_CHECK(registry.Exposition(obs::ExpositionFormat::kJson) == json);
  PROVTOP_CHECK(registry.Exposition(obs::ExpositionFormat::kPrometheusText) ==
                text);

  if (g_failures == 0) std::printf("provtop self-test: OK\n");
  return g_failures == 0 ? 0 : 1;
}

// Build a toy stack on the default registry, push some traffic through
// every instrumented layer reachable in-process, and dump the exposition.
int Demo(bool json) {
  using provledger::prov::ProvenanceRecord;
  provledger::SystemClock clock;
  provledger::ledger::Blockchain chain{provledger::ledger::ChainOptions()};
  provledger::prov::ProvenanceStore store(&chain, &clock);

  std::vector<ProvenanceRecord> records;
  for (int i = 0; i < 16; ++i) {
    ProvenanceRecord rec;
    rec.record_id = "demo-" + std::to_string(i);
    rec.operation = i % 2 == 0 ? "create" : "update";
    rec.subject = "artifact-" + std::to_string(i % 4);
    rec.agent = "agent-" + std::to_string(i % 2);
    records.push_back(std::move(rec));
  }
  provledger::Status anchored = store.AnchorBatch(records);
  if (!anchored.ok()) {
    std::fprintf(stderr, "provtop: demo anchor failed: %s\n",
                 anchored.ToString().c_str());
    return 1;
  }

  provledger::prov::Query by_subject;
  by_subject.WithSubject("artifact-1");
  provledger::prov::Query by_agent;
  by_agent.WithAgent("agent-0");
  for (const auto* query : {&by_subject, &by_agent}) {
    const provledger::prov::QueryResult result = store.Execute(*query);
    if (!json) {
      std::printf("# explain: %s (rows returned: %zu)\n",
                  store.Explain(*query).ToString().c_str(),
                  result.records.size());
    }
  }

  std::fputs(store
                 .MetricsSnapshot(
                     json ? provledger::obs::ExpositionFormat::kJson
                          : provledger::obs::ExpositionFormat::kPrometheusText)
                 .c_str(),
             stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--self-test") return SelfTest();
  if (argc == 1) return Demo(/*json=*/false);
  if (argc == 2 && std::string(argv[1]) == "--json") return Demo(/*json=*/true);
  std::fprintf(stderr, "usage: provtop [--json] | provtop --self-test\n");
  return 2;
}
