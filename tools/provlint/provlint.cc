// provlint — ProvLedger's repo-specific source linter.
//
// Enforces the handful of contracts the generic tools (gcc -Werror,
// clang-tidy, -fanalyzer) cannot express, at the line/token level:
//
//   thread-contract   Every public header under src/ states its threading
//                     contract ("Thread safety:" / "Thread contract:"),
//                     the prose half of the PROV_GUARDED_BY annotations.
//   status-discard    `(void)Call(...)` / `static_cast<void>(Call(...))`
//                     discards of a call result need an adjacent
//                     justification comment — a discarded Status with no
//                     stated reason is exactly the silent-drop failure mode
//                     [[nodiscard]] exists to kill.
//   naked-new         No naked `new` / `delete` expressions in src/ or
//                     tools/: allocation goes through make_unique/
//                     make_shared or the factory idiom that wraps a
//                     private-constructor `new` in a smart pointer on the
//                     same line. Placement new is fine.
//   fuzz-io           No fsync/fdatasync/WriteFileAtomic in the fuzz
//                     harness hot loops (fuzz_*.cc, driver_main.cc,
//                     harnesses.h): per-iteration fsyncs once turned a
//                     17-second fuzz pass into 120 seconds. The corpus
//                     generator (make_corpus.cc) runs once, manually, and
//                     is exempt.
//   common-include    src/common/ is the base layer: its files may include
//                     only other common/ headers (and system headers),
//                     never prov/, ledger/, storage/, ... — keeps the
//                     dependency graph acyclic by construction.
//   metric-name       Metric names registered through obs::Registry
//                     (GetCounter/GetGauge/GetHistogram) in src/ or tools/
//                     follow the exposition naming contract: snake_case,
//                     counters end in _total, histograms in _seconds or
//                     _bytes. Names passed as variables are not checkable
//                     and are skipped.
//
// Matching is done on comment- and string-stripped text, so prose about
// fsync or `new` never trips a rule. Any rule can be suppressed on one
// line with a justified marker comment:
//
//     legacy_call();  // provlint:allow(naked-new): interop with libfoo
//
// (marker on the flagged line or the line above; the rationale after the
// colon is mandatory — an empty allowance is itself a violation).
//
// Modes:
//   provlint --root <repo-root>          lint src/ tests/ bench/ fuzz/
//                                        examples/ tools/; exit 1 on any
//                                        violation.
//   provlint --self-test <fixtures-dir>  golden test: lint every *.in
//                                        fixture (first line carries a
//                                        `provlint-fixture: <pseudo-path>`
//                                        directive) and diff the report
//                                        against the matching *.golden.
//
// Thread safety: single-threaded command-line tool; no shared state.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string path;  // as reported (pseudo-path for fixtures)
  size_t line = 0;   // 1-based
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Source model: per-line raw text plus a comment/string-stripped shadow.
// ---------------------------------------------------------------------------

struct SourceLine {
  std::string raw;       // original text
  std::string code;      // comments and string/char literal bodies blanked
  std::string comments;  // concatenated comment text on this line
};

// Strip comments and literals with a small state machine. Literal bodies are
// replaced by spaces (so token scans never match prose or string contents);
// comment text is preserved separately for the justification checks.
std::vector<SourceLine> ParseSource(const std::string& text) {
  std::vector<SourceLine> lines;
  SourceLine cur;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  bool raw_string = false;       // inside a C++ raw string literal
  std::string raw_delim;         // its )delim" terminator
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated strings/chars cannot legally span lines (raw strings
      // excepted) — reset so one bad line cannot poison the whole file.
      if (!raw_string && (state == State::kString || state == State::kChar))
        state = State::kCode;
      lines.push_back(std::move(cur));
      cur = SourceLine();
      continue;
    }
    cur.raw += c;
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          cur.code += "  ";
          cur.raw += next;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          cur.code += "  ";
          cur.raw += next;
          ++i;
        } else if (c == 'R' && next == '"') {
          // Raw string literal: R"delim( ... )delim"
          size_t paren = text.find('(', i + 2);
          if (paren != std::string::npos) {
            raw_string = true;
            raw_delim = ")" + text.substr(i + 2, paren - (i + 2)) + "\"";
            state = State::kString;
          }
          cur.code += ' ';
        } else if (c == '"') {
          state = State::kString;
          raw_string = false;
          cur.code += '"';
        } else if (c == '\'') {
          state = State::kChar;
          cur.code += '\'';
        } else {
          cur.code += c;
        }
        break;
      case State::kLineComment:
        cur.code += ' ';
        cur.comments += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          cur.code += "  ";
          cur.raw += next;
          ++i;
        } else {
          cur.code += ' ';
          cur.comments += c;
        }
        break;
      case State::kString:
        if (raw_string) {
          if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
            for (size_t k = 1; k < raw_delim.size(); ++k)
              cur.raw += text[i + k];
            i += raw_delim.size() - 1;
            state = State::kCode;
            raw_string = false;
            cur.code += '"';
          } else {
            cur.code += ' ';
          }
        } else if (c == '\\') {
          cur.code += ' ';
          if (next != '\n' && next != '\0') {
            cur.raw += next;
            cur.code += ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
          cur.code += '"';
        } else {
          cur.code += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          cur.code += ' ';
          if (next != '\n' && next != '\0') {
            cur.raw += next;
            cur.code += ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
          cur.code += '\'';
        } else {
          cur.code += ' ';
        }
        break;
    }
  }
  if (!cur.raw.empty()) lines.push_back(std::move(cur));
  return lines;
}

// ---------------------------------------------------------------------------
// Suppression markers and justification comments.
// ---------------------------------------------------------------------------

const std::regex kAllowRe(R"(provlint:allow\(([a-z-]+)\):\s*(\S?))");

// True when line `idx` (or the line above) carries a well-formed
// provlint:allow(<rule>) marker with a non-empty rationale.
bool IsAllowed(const std::vector<SourceLine>& lines, size_t idx,
               const std::string& rule, std::vector<Violation>* out,
               const std::string& path) {
  for (size_t k = 0; k < 2; ++k) {
    if (idx < k) break;
    const SourceLine& line = lines[idx - k];
    std::smatch m;
    if (std::regex_search(line.comments, m, kAllowRe) && m[1] == rule) {
      if (m[2].str().empty()) {
        out->push_back({path, idx - k + 1, rule,
                        "provlint:allow(" + rule +
                            ") needs a rationale after the colon"});
      }
      return true;
    }
  }
  return false;
}

// True when line `idx` has any non-marker comment text on it or on the
// immediately preceding line — the "adjacent justification" a deliberate
// status discard must carry.
bool HasAdjacentComment(const std::vector<SourceLine>& lines, size_t idx) {
  for (size_t k = 0; k < 2; ++k) {
    if (idx < k) break;
    const std::string& c = lines[idx - k].comments;
    if (std::any_of(c.begin(), c.end(),
                    [](unsigned char ch) { return std::isgraph(ch); }))
      return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// File classification: which rules apply where.
// ---------------------------------------------------------------------------

struct FileClass {
  bool src_header = false;    // src/**/*.h        -> thread-contract
  bool src_or_tools = false;  // src/**, tools/**  -> naked-new
  bool common_layer = false;  // src/common/**     -> common-include
  bool fuzz_hot = false;      // fuzz harness loop -> fuzz-io
};

FileClass Classify(const std::string& rel) {
  FileClass fc;
  auto starts = [&rel](const char* p) { return rel.rfind(p, 0) == 0; };
  bool header = rel.size() > 2 && rel.compare(rel.size() - 2, 2, ".h") == 0;
  fc.src_header = starts("src/") && header;
  fc.src_or_tools = starts("src/") || starts("tools/");
  fc.common_layer = starts("src/common/");
  if (starts("fuzz/")) {
    std::string base = rel.substr(rel.find('/') + 1);
    fc.fuzz_hot = base.rfind("fuzz_", 0) == 0 || base == "driver_main.cc" ||
                  base == "harnesses.h";
  }
  return fc;
}

// ---------------------------------------------------------------------------
// The rules.
// ---------------------------------------------------------------------------

// `(void)expr;` or `static_cast<void>(expr)` where expr contains a call —
// a discarded result. Plain `(void)identifier;` (unused-parameter
// suppression) is not a result discard and passes.
const std::regex kVoidCastCallRe(
    R"((\(\s*void\s*\)|static_cast<\s*void\s*>\s*\()\s*[A-Za-z_:.&*(][^;]*\()");
// `new` starting an allocation (placement `new (` excluded below).
const std::regex kNewRe(R"(\bnew\b\s*([A-Za-z_(:]))");
// A delete *expression* (needs an operand — `= delete;` has none).
const std::regex kDeleteRe(R"(\bdelete\b\s*(\[\s*\])?\s*[A-Za-z_*(])");
// Smart-pointer factory idiom: the `new` is wrapped on the same line.
const std::regex kPtrWrapRe(R"(_ptr\s*<[^;]*>\s*\(\s*$)");
const std::regex kFuzzIoRe(R"(\b(fsync|fdatasync|WriteFileAtomic)\s*\()");
const std::regex kQuotedIncludeRe(R"(^\s*#\s*include\s+\"([^\"]+)\")");
const std::regex kThreadContractRe(R"(Thread (safety|contract):)");
// A registry call site (matched on stripped code, so prose never trips it).
const std::regex kMetricCallRe(R"(\bGet(Counter|Gauge|Histogram)\s*\()");
// The name extraction runs on the RAW line (the stripper blanks literals
// out of `code`) and requires the literal directly after the open paren —
// a variable first argument, or a mere declaration, has no literal there
// and is skipped. clang-format may wrap the name to the next line, hence
// the open-paren-at-EOL + leading-literal pair.
const std::regex kMetricNameSameLineRe(
    R"re(\bGet(Counter|Gauge|Histogram)\s*\(\s*"([^"]*)")re");
const std::regex kMetricCallOpenRe(
    R"(\bGet(Counter|Gauge|Histogram)\s*\(\s*$)");
const std::regex kLeadingStringRe(R"re(^\s*"([^"]*)")re");
const std::regex kSnakeCaseRe(R"(^[a-z][a-z0-9_]*$)");

// Check one registered metric name against the naming contract. `kind` is
// the capture from kMetricCallRe: Counter, Gauge, or Histogram.
void CheckMetricName(const std::string& rel, size_t line_no,
                     const std::string& kind, const std::string& name,
                     std::vector<Violation>* out) {
  if (!std::regex_match(name, kSnakeCaseRe)) {
    out->push_back({rel, line_no, "metric-name",
                    "metric name \"" + name +
                        "\" is not snake_case ([a-z][a-z0-9_]*)"});
    return;
  }
  auto ends_with = [&name](const char* suffix) {
    const size_t n = std::char_traits<char>::length(suffix);
    return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
  };
  if (kind == "Counter" && !ends_with("_total")) {
    out->push_back({rel, line_no, "metric-name",
                    "counter name \"" + name + "\" must end in _total"});
  } else if (kind == "Histogram" && !ends_with("_seconds") &&
             !ends_with("_bytes")) {
    out->push_back({rel, line_no, "metric-name",
                    "histogram name \"" + name +
                        "\" must end in _seconds or _bytes"});
  }
}

void LintFile(const std::string& rel, const std::vector<SourceLine>& lines,
              std::vector<Violation>* out) {
  FileClass fc = Classify(rel);

  if (fc.src_header) {
    bool has_contract = false;
    for (const SourceLine& line : lines) {
      if (std::regex_search(line.comments, kThreadContractRe) ||
          std::regex_search(line.code, kThreadContractRe)) {
        has_contract = true;
        break;
      }
    }
    if (!has_contract) {
      out->push_back({rel, 1, "thread-contract",
                      "public header has no \"Thread safety:\" (or \"Thread "
                      "contract:\") line documenting its threading model"});
    }
  }

  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    std::smatch m;

    if (std::regex_search(code, m, kVoidCastCallRe)) {
      if (!IsAllowed(lines, i, "status-discard", out, rel) &&
          !HasAdjacentComment(lines, i)) {
        out->push_back(
            {rel, i + 1, "status-discard",
             "discarded call result ((void)/static_cast<void>) without an "
             "adjacent justification comment"});
      }
    }

    if (fc.src_or_tools) {
      if (std::regex_search(code, m, kNewRe) && m[1] != "(") {
        // The factory idiom may break the line after the opening paren:
        //   std::unique_ptr<ReplicatedNode>(
        //       new ReplicatedNode(...));
        std::string before = m.prefix().str();
        bool wrapped = std::regex_search(before, kPtrWrapRe) ||
                       (i > 0 && std::regex_search(lines[i - 1].code,
                                                   kPtrWrapRe));
        if (!wrapped && !IsAllowed(lines, i, "naked-new", out, rel)) {
          out->push_back({rel, i + 1, "naked-new",
                          "naked `new`: use make_unique/make_shared, or wrap "
                          "a private-constructor new in its smart pointer on "
                          "the same line"});
        }
      }
      if (std::regex_search(code, kDeleteRe) &&
          !IsAllowed(lines, i, "naked-new", out, rel)) {
        out->push_back({rel, i + 1, "naked-new",
                        "naked `delete` expression: ownership belongs in a "
                        "smart pointer"});
      }
    }

    if (fc.src_or_tools && std::regex_search(code, kMetricCallRe) &&
        !IsAllowed(lines, i, "metric-name", out, rel)) {
      std::smatch name_match;
      if (std::regex_search(lines[i].raw, name_match,
                            kMetricNameSameLineRe)) {
        CheckMetricName(rel, i + 1, name_match[1], name_match[2], out);
      } else if (std::regex_search(lines[i].raw, name_match,
                                   kMetricCallOpenRe)) {
        const std::string kind = name_match[1];
        if (i + 1 < lines.size() &&
            std::regex_search(lines[i + 1].raw, name_match,
                              kLeadingStringRe)) {
          CheckMetricName(rel, i + 1, kind, name_match[1], out);
        }
      }
    }

    if (fc.fuzz_hot && std::regex_search(code, kFuzzIoRe) &&
        !IsAllowed(lines, i, "fuzz-io", out, rel)) {
      out->push_back({rel, i + 1, "fuzz-io",
                      "fsync/WriteFileAtomic in a fuzz harness: per-iteration "
                      "durable I/O turns a 17s fuzz pass into minutes — use "
                      "plain truncating writes (see fuzz/harnesses.h)"});
    }

    // Includes are matched on the RAW line: the quoted path is a string
    // literal, which the stripper blanks out of `code`.
    if (fc.common_layer && std::regex_search(lines[i].raw, m,
                                             kQuotedIncludeRe)) {
      std::string inc = m[1];
      if (inc.rfind("common/", 0) != 0 &&
          !IsAllowed(lines, i, "common-include", out, rel)) {
        out->push_back({rel, i + 1, "common-include",
                        "src/common/ is the base layer and must not include "
                        "\"" + inc + "\" — only common/ or system headers"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Drivers.
// ---------------------------------------------------------------------------

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::string FormatReport(const std::vector<Violation>& vs) {
  std::ostringstream out;
  for (const Violation& v : vs) {
    out << v.path << ":" << v.line << ": [" << v.rule << "] " << v.message
        << "\n";
  }
  return out.str();
}

bool IsSourceFile(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

int LintTree(const fs::path& root) {
  static const char* kDirs[] = {"src",  "tests",    "bench",
                                "fuzz", "examples", "tools"};
  std::vector<Violation> violations;
  std::vector<fs::path> files;
  for (const char* dir : kDirs) {
    fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !IsSourceFile(entry.path())) continue;
      // Fixtures violate on purpose; they are linted by --self-test.
      if (entry.path().string().find("/fixtures/") != std::string::npos)
        continue;
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "provlint: no source files under " << root << "\n";
    return 2;
  }
  for (const fs::path& p : files) {
    std::string text;
    if (!ReadFile(p, &text)) {
      std::cerr << "provlint: cannot read " << p << "\n";
      return 2;
    }
    std::string rel = fs::relative(p, root).generic_string();
    LintFile(rel, ParseSource(text), &violations);
  }
  std::cout << FormatReport(violations);
  std::cout << "provlint: " << files.size() << " files, "
            << violations.size() << " violation(s)\n";
  return violations.empty() ? 0 : 1;
}

// Fixture mode: each *.in file's first line is
//   // provlint-fixture: <pseudo-path>
// and the lint report over the remaining lines (line numbers unshifted:
// the directive is line 1) must equal the sibling *.golden byte-for-byte.
int SelfTest(const fs::path& fixtures) {
  size_t checked = 0;
  bool failed = false;
  std::vector<fs::path> inputs;
  for (const auto& entry : fs::directory_iterator(fixtures)) {
    if (entry.path().extension() == ".in") inputs.push_back(entry.path());
  }
  std::sort(inputs.begin(), inputs.end());
  for (const fs::path& input : inputs) {
    std::string text;
    if (!ReadFile(input, &text)) {
      std::cerr << "provlint: cannot read " << input << "\n";
      return 2;
    }
    std::vector<SourceLine> lines = ParseSource(text);
    const std::string directive = "// provlint-fixture: ";
    if (lines.empty() || lines[0].raw.rfind(directive, 0) != 0) {
      std::cerr << input << ": first line must be `" << directive
                << "<pseudo-path>`\n";
      return 2;
    }
    std::string pseudo = lines[0].raw.substr(directive.size());
    std::vector<Violation> violations;
    LintFile(pseudo, lines, &violations);
    std::string got = FormatReport(violations);
    fs::path golden_path = input;
    golden_path.replace_extension(".golden");
    std::string want;
    if (!ReadFile(golden_path, &want)) {
      std::cerr << input << ": missing golden " << golden_path << "\n";
      return 2;
    }
    if (got != want) {
      failed = true;
      std::cerr << "FAIL " << input.filename().string() << "\n--- expected\n"
                << want << "--- actual\n" << got;
    }
    // A fixture that exercises a rule must actually fire it — a golden that
    // goes stale-empty would silently stop covering its rule.
    bool expect_clean =
        input.filename().string().rfind("clean_", 0) == 0;
    if (!expect_clean && violations.empty()) {
      failed = true;
      std::cerr << "FAIL " << input.filename().string()
                << ": fixture produced no violations (rename clean_* if "
                   "intentional)\n";
    }
    if (expect_clean && !violations.empty()) failed = true;
    ++checked;
  }
  if (checked == 0) {
    std::cerr << "provlint: no *.in fixtures under " << fixtures << "\n";
    return 2;
  }
  if (failed) return 1;
  std::cout << "provlint self-test: " << checked << " fixtures OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--root")
    return LintTree(fs::path(argv[2]));
  if (argc == 3 && std::string(argv[1]) == "--self-test")
    return SelfTest(fs::path(argv[2]));
  std::cerr << "usage: provlint --root <repo-root> | --self-test "
               "<fixtures-dir>\n";
  return 2;
}
