// Cross-module integration tests: multiple domains sharing one chain,
// state recovery from the ledger alone, consensus-sealed provenance blocks,
// and the full capture->anchor->audit loop.

#include <gtest/gtest.h>

#include "cloud/cloud_store.h"
#include "consensus/engine.h"
#include "domains/scientific/workflow.h"
#include "domains/supplychain/supply_chain.h"
#include "prov/capture.h"

namespace provledger {
namespace {

TEST(IntegrationTest, MultipleDomainsShareOneChain) {
  // A consortium chain hosting cloud, supply-chain, and workflow records
  // simultaneously (channel separation keeps them queryable).
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  storage::ContentStore content;

  cloud::CloudStore cloud(&store, &content, &clock);
  supplychain::SupplyChain sc(&store, &clock);
  scientific::WorkflowManager wm(&store, &clock);

  ASSERT_TRUE(cloud.CreateFile("alice", "spec.pdf", ToBytes("v1")).ok());
  sc.AccreditManufacturer("mfg");
  ASSERT_TRUE(sc.RegisterProduct("p1", "widget", "b1", "mfg", "2030").ok());
  ASSERT_TRUE(wm.CreateWorkflow("wf", "lab").ok());
  ASSERT_TRUE(wm.AddTask("wf", "t", "op").ok());
  ASSERT_TRUE(wm.ExecuteTask("wf", "t", "bob").ok());

  EXPECT_EQ(store.anchored_count(), 3u);
  EXPECT_TRUE(chain.VerifyIntegrity().ok());
  // Each domain's record is retrievable and valid per its Table 1 schema.
  EXPECT_EQ(store.SubjectHistory("spec.pdf").size(), 1u);
  EXPECT_EQ(store.SubjectHistory("p1").size(), 1u);
  EXPECT_EQ(store.SubjectHistory("t").size(), 1u);
}

TEST(IntegrationTest, RebuildEquivalence) {
  // Any node can reconstruct the full provenance state from the chain
  // alone — graph queries and proofs agree with the original store.
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore original(&chain, &clock);

  for (int i = 0; i < 20; ++i) {
    prov::ProvenanceRecord rec;
    rec.record_id = "r-" + std::to_string(i);
    rec.operation = "step";
    rec.subject = "e-" + std::to_string(i + 1);
    rec.agent = "agent-" + std::to_string(i % 3);
    rec.timestamp = i;
    if (i > 0) rec.inputs = {"e-" + std::to_string(i)};
    rec.outputs = {"e-" + std::to_string(i + 1)};
    ASSERT_TRUE(original.Anchor(rec).ok());
  }

  prov::ProvenanceStore rebuilt(&chain, &clock);
  ASSERT_TRUE(rebuilt.RebuildFromChain().ok());
  EXPECT_EQ(rebuilt.anchored_count(), original.anchored_count());
  EXPECT_EQ(rebuilt.Lineage("e-20"), original.Lineage("e-20"));
  EXPECT_EQ(rebuilt.ByAgent("agent-1").size(),
            original.ByAgent("agent-1").size());
  auto audit = rebuilt.AuditAll();
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit.value(), 20u);
}

TEST(IntegrationTest, ConsensusSealedProvenanceBlocks) {
  // Run a provenance batch through each consensus engine, sealing block
  // nonces with the commit results — the full "capture + consensus" loop.
  for (const char* kind : {"pow", "pos", "pbft", "raft"}) {
    consensus::ConsensusConfig config;
    config.num_nodes = 4;
    config.seed = 3;
    config.pow_difficulty_bits = 8;
    auto engine = consensus::MakeEngine(kind, config);
    ASSERT_TRUE(engine.ok());

    ledger::Blockchain chain;
    SimClock clock(0);
    ledger::Mempool mempool;
    for (int i = 0; i < 6; ++i) {
      prov::ProvenanceRecord rec;
      rec.record_id = std::string(kind) + "-r" + std::to_string(i);
      rec.operation = "op";
      rec.subject = "s";
      rec.agent = "a";
      rec.timestamp = i;
      ASSERT_TRUE(mempool
                      .Add(ledger::Transaction::MakeSystem(
                          "prov/record", "prov", rec.Encode(), i, i))
                      .ok());
    }
    while (!mempool.empty()) {
      auto txs = mempool.Take(3);
      ledger::Block block = ledger::Block::Make(
          chain.height() + 1, chain.head_hash(), txs, 1000, kind);
      auto commit = engine.value()->Propose(block.Encode());
      ASSERT_TRUE(commit.ok()) << kind;
      block.header.nonce = commit->metrics.hash_attempts;
      ASSERT_TRUE(chain.SubmitBlock(block).ok()) << kind;
    }
    EXPECT_EQ(chain.height(), 2u) << kind;
    EXPECT_TRUE(chain.VerifyIntegrity().ok()) << kind;
  }
}

TEST(IntegrationTest, CaptureToAuditLoop) {
  // Figure 3 path (d) -> anchored records -> independent auditor, with a
  // tamper injected to prove the loop catches it.
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  prov::DecentralizedCapture capture(&store, &clock, 4, 3);

  for (int i = 0; i < 10; ++i) {
    prov::ProvenanceRecord rec;
    rec.record_id = "cap-" + std::to_string(i);
    rec.operation = "update";
    rec.subject = "doc";
    rec.agent = "user";
    rec.timestamp = i;
    ASSERT_TRUE(capture.Capture("user", rec).ok());
  }
  auto audit = store.AuditAll();
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit.value(), 10u);

  ASSERT_TRUE(chain.TamperForTesting(5, 0, 0x01).ok());
  EXPECT_TRUE(store.AuditAll().status().IsCorruption());
}

TEST(IntegrationTest, ReorgDropsAndRestoresProvenance) {
  // A fork reorg moves anchored records off the main chain; the provenance
  // layer's proofs must stop verifying for orphaned records (freshness
  // concern from §5.1) until re-anchored.
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);

  prov::ProvenanceRecord rec;
  rec.record_id = "r-main";
  rec.operation = "op";
  rec.subject = "s";
  rec.agent = "a";
  rec.timestamp = 5;
  ASSERT_TRUE(store.Anchor(rec).ok());
  auto proof = store.ProveRecord("r-main");
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(store.VerifyRecordProof(rec, proof.value()));

  // Build a longer competing fork from genesis.
  auto genesis_hash = chain.GetBlock(0)->header.Hash();
  ledger::Block fork1 = ledger::Block::Make(
      1, genesis_hash,
      {ledger::Transaction::MakeSystem("x", "other", ToBytes("1"), 10, 1)},
      10, "rival");
  ASSERT_TRUE(chain.SubmitBlock(fork1).ok());
  ledger::Block fork2 = ledger::Block::Make(
      2, fork1.header.Hash(),
      {ledger::Transaction::MakeSystem("x", "other", ToBytes("2"), 11, 2)},
      11, "rival");
  ASSERT_TRUE(chain.SubmitBlock(fork2).ok());
  EXPECT_EQ(chain.height(), 2u);

  // The record's old proof no longer verifies against the new main chain.
  EXPECT_FALSE(store.VerifyRecordProof(rec, proof.value()));
}

}  // namespace
}  // namespace provledger
