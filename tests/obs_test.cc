// Observability tests (ctest label: obs): counter/gauge/histogram cell
// semantics, label-family identity, the byte-exact Prometheus text
// exposition, JSON/text format parity, type-conflict quarantine, query
// EXPLAIN plan reporting (index choice + estimated-vs-actual rows for the
// subject, agent, and time-range plans), the store's MetricsSnapshot
// surface, and a multi-thread increment run the TSan gate replays.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "ledger/chain.h"
#include "obs/metrics.h"
#include "prov/query.h"
#include "prov/store.h"

namespace provledger {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::Registry;

TEST(CounterTest, IncrementAndResolveSameCell) {
  Registry registry;
  Counter* c = registry.GetCounter("ops_total", "ops");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
  // Same (name, labels) resolves to the same cell; help is only recorded
  // on first registration.
  EXPECT_EQ(registry.GetCounter("ops_total", "ignored"), c);
}

TEST(GaugeTest, SetAndAddSigned) {
  Registry registry;
  Gauge* g = registry.GetGauge("depth", "queue depth");
  g->Set(7);
  g->Add(-9);
  EXPECT_EQ(g->value(), -2);
  g->Set(0);
  EXPECT_EQ(g->value(), 0);
}

TEST(HistogramTest, BucketPlacementIsInclusiveOnTheBound) {
  Registry registry;
  Histogram* h =
      registry.GetHistogram("wait_seconds", "wait", {0.001, 0.01, 0.1});
  h->Observe(0.0005);
  h->Observe(0.001);  // le=0.001 is inclusive
  h->Observe(0.05);
  h->Observe(5.0);  // overflow (+Inf) cell
  EXPECT_EQ(h->count(), 4u);
  EXPECT_EQ(h->bucket_value(0), 2u);
  EXPECT_EQ(h->bucket_value(1), 0u);
  EXPECT_EQ(h->bucket_value(2), 1u);
  EXPECT_EQ(h->bucket_value(3), 1u);
  EXPECT_NEAR(h->sum(), 5.0515, 1e-6);
}

TEST(HistogramTest, NegativeAndNanObservationsClampToZero) {
  Registry registry;
  Histogram* h = registry.GetHistogram("neg_seconds", "clamps", {1.0});
  h->Observe(-3.0);
  h->Observe(std::nan(""));
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->bucket_value(0), 2u);  // both land in the first bucket as 0
  EXPECT_EQ(h->sum(), 0.0);
}

TEST(HistogramTest, FamilyBoundsAreFixedByFirstRegistration) {
  Registry registry;
  Histogram* first =
      registry.GetHistogram("fixed_seconds", "bounds", {0.5, 1.0});
  // Same name + labels is the same cell no matter what bounds are passed.
  EXPECT_EQ(registry.GetHistogram("fixed_seconds", "bounds", {9.0}), first);
  // A new series in the family inherits the family's bounds.
  Histogram* labeled = registry.GetHistogram("fixed_seconds", "bounds", {9.0},
                                             {{"shard", "1"}});
  ASSERT_NE(labeled, first);
  EXPECT_EQ(labeled->bounds(), first->bounds());
}

TEST(HistogramTest, StandardBucketLaddersAreAscending) {
  for (const auto& bounds : {obs::LatencyBuckets(), obs::SizeBuckets()}) {
    ASSERT_EQ(bounds.size(), 13u);
    for (size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
  EXPECT_DOUBLE_EQ(obs::LatencyBuckets().front(), 1e-6);
  EXPECT_DOUBLE_EQ(obs::SizeBuckets().front(), 64.0);
}

TEST(ScopedTimerTest, ObservesElapsedOnceAndToleratesNull) {
  Registry registry;
  Histogram* h =
      registry.GetHistogram("scope_seconds", "t", obs::LatencyBuckets());
  {
    obs::ScopedTimer timer(h);
  }
  EXPECT_EQ(h->count(), 1u);
  {
    obs::ScopedTimer noop(nullptr);  // must not crash
  }
  EXPECT_EQ(h->count(), 1u);
}

TEST(LabelFamilyTest, DistinctLabelSetsAreDistinctCells) {
  Registry registry;
  Counter* ok =
      registry.GetCounter("results_total", "r", {{"result", "ok"}});
  Counter* err =
      registry.GetCounter("results_total", "r", {{"result", "err"}});
  ASSERT_NE(ok, err);
  ok->Increment(3);
  err->Increment();
  EXPECT_EQ(ok->value(), 3u);
  EXPECT_EQ(err->value(), 1u);
  // Re-resolving an existing label set lands on the same cell.
  EXPECT_EQ(registry.GetCounter("results_total", "r", {{"result", "ok"}}), ok);
}

TEST(TypeConflictTest, QuarantineNeverClobbersAndNeverReturnsNull) {
  Registry registry;
  Counter* c = registry.GetCounter("ops_total", "ops");
  c->Increment(42);
  Gauge* conflicted = registry.GetGauge("ops_total", "oops");
  ASSERT_NE(conflicted, nullptr);
  conflicted->Set(99);  // safe to use, never exposed
  EXPECT_EQ(c->value(), 42u);
  EXPECT_EQ(registry.type_conflicts(), 1u);
  // The quarantined cell does not appear in the exposition.
  const std::string text = registry.TextExposition();
  EXPECT_EQ(text.find("gauge"), std::string::npos);
  EXPECT_NE(text.find("ops_total 42"), std::string::npos);
}

// Byte-exact pin of the text exposition: families sorted by name, series
// by label string, histograms as cumulative buckets + _sum + _count.
// Deliberately brittle — any format change must update this golden.
TEST(ExpositionTest, PrometheusTextGolden) {
  Registry registry;
  registry.GetCounter("alpha_total", "count of alpha")->Increment(3);
  registry.GetGauge("queue_depth", "entries queued")->Set(-4);
  Histogram* h = registry.GetHistogram("wait_seconds", "wait", {0.5, 1.0});
  h->Observe(0.25);
  h->Observe(0.75);
  h->Observe(2.0);
  registry
      .GetCounter("labeled_total", "labeled",
                  {{"result", "err"}, {"shard", "0"}})
      ->Increment();

  const std::string expected =
      "# HELP alpha_total count of alpha\n"
      "# TYPE alpha_total counter\n"
      "alpha_total 3\n"
      "# HELP labeled_total labeled\n"
      "# TYPE labeled_total counter\n"
      "labeled_total{result=\"err\",shard=\"0\"} 1\n"
      "# HELP queue_depth entries queued\n"
      "# TYPE queue_depth gauge\n"
      "queue_depth -4\n"
      "# HELP wait_seconds wait\n"
      "# TYPE wait_seconds histogram\n"
      "wait_seconds_bucket{le=\"0.5\"} 1\n"
      "wait_seconds_bucket{le=\"1\"} 2\n"
      "wait_seconds_bucket{le=\"+Inf\"} 3\n"
      "wait_seconds_sum 3\n"
      "wait_seconds_count 3\n";
  EXPECT_EQ(registry.TextExposition(), expected);
}

TEST(ExpositionTest, LabelValuesAreEscaped) {
  Registry registry;
  registry
      .GetCounter("escaped_total", "esc", {{"path", "a\"b\\c\nd"}})
      ->Increment();
  const std::string text = registry.TextExposition();
  EXPECT_NE(text.find("escaped_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos);
}

TEST(ExpositionTest, JsonCarriesTheSameValuesAndFormatsDispatch) {
  Registry registry;
  registry.GetCounter("alpha_total", "a")->Increment(7);
  Histogram* h = registry.GetHistogram("wait_seconds", "w", {0.5});
  h->Observe(0.25);
  const std::string json = registry.JsonExposition();
  EXPECT_NE(json.find("\"name\": \"alpha_total\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"type_conflicts\": 0"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": \"+Inf\", \"count\": 1}"), std::string::npos);
  EXPECT_EQ(registry.Exposition(obs::ExpositionFormat::kJson), json);
  EXPECT_EQ(registry.Exposition(obs::ExpositionFormat::kPrometheusText),
            registry.TextExposition());
}

// ---------------------------------------------------------------------
// EXPLAIN: index choice and estimated-vs-actual row reporting for the
// three plans the acceptance bar names (subject, agent, time-range).
// ---------------------------------------------------------------------

class ExplainTest : public ::testing::Test {
 protected:
  // 64 records: subjects s0..s7 (8 each), agents a0..a3 (16 each),
  // timestamps 1000..1063 — selectivity subject < agent < full scan.
  void SetUp() override {
    chain_options_.registry = &registry_;
    chain_ = std::make_unique<ledger::Blockchain>(chain_options_);
    prov::ProvenanceStoreOptions store_options;
    store_options.registry = &registry_;
    store_ = std::make_unique<prov::ProvenanceStore>(chain_.get(), &clock_,
                                                     store_options);
    std::vector<prov::ProvenanceRecord> records;
    for (size_t i = 0; i < 64; ++i) {
      prov::ProvenanceRecord rec;
      rec.record_id = "r" + std::to_string(i);
      rec.operation = i % 3 == 0 ? "read" : "write";
      rec.subject = "s" + std::to_string(i % 8);
      rec.agent = "a" + std::to_string(i % 4);
      rec.timestamp = static_cast<Timestamp>(1000 + i);
      records.push_back(std::move(rec));
    }
    ASSERT_TRUE(store_->AnchorBatch(records).ok());
  }

  obs::Registry registry_;
  ledger::ChainOptions chain_options_;
  SimClock clock_;
  std::unique_ptr<ledger::Blockchain> chain_;
  std::unique_ptr<prov::ProvenanceStore> store_;
};

TEST_F(ExplainTest, SubjectPlanReportsIndexAndEstVsActual) {
  prov::Query query;
  query.WithSubject("s3");
  const prov::QueryExplain ex = store_->Explain(query);
  EXPECT_EQ(ex.index_used, prov::QueryIndex::kSubject);
  EXPECT_EQ(ex.estimated_candidates, 8u);
  EXPECT_EQ(ex.rows_matched, 8u);
  // A pure subject query is covered by its postings slice: the count-only
  // execution never visits candidates.
  EXPECT_TRUE(ex.covers_filters);
  EXPECT_EQ(ex.candidates_scanned, 0u);
  EXPECT_NE(ex.ToString().find("index=subject"), std::string::npos);
  EXPECT_NE(ex.ToString().find("est=8"), std::string::npos);
  EXPECT_NE(ex.ToJson().find("\"index\": \"subject\""), std::string::npos);
}

TEST_F(ExplainTest, AgentPlanReportsIndexAndEstVsActual) {
  prov::Query query;
  query.WithAgent("a1");
  const prov::QueryExplain ex = store_->Explain(query);
  EXPECT_EQ(ex.index_used, prov::QueryIndex::kAgent);
  EXPECT_EQ(ex.estimated_candidates, 16u);
  EXPECT_EQ(ex.rows_matched, 16u);
  EXPECT_TRUE(ex.covers_filters);
  EXPECT_NE(ex.ToString().find("index=agent"), std::string::npos);
}

TEST_F(ExplainTest, TimeRangePlanReportsIndexAndEstVsActual) {
  prov::Query query;
  query.Between(1010, 1019);  // inclusive: 10 records
  const prov::QueryExplain ex = store_->Explain(query);
  EXPECT_EQ(ex.index_used, prov::QueryIndex::kTimeRange);
  EXPECT_EQ(ex.estimated_candidates, 10u);
  EXPECT_EQ(ex.rows_matched, 10u);
  EXPECT_TRUE(ex.covers_filters);
  EXPECT_NE(ex.ToString().find("index=time_range"), std::string::npos);
}

TEST_F(ExplainTest, ResidualPredicateMakesThePlanNonCovering) {
  prov::Query query;
  query.WithSubject("s2").WithOperation("read");
  const prov::QueryExplain ex = store_->Explain(query);
  EXPECT_EQ(ex.index_used, prov::QueryIndex::kSubject);
  EXPECT_FALSE(ex.covers_filters);
  // The scan visits the full postings slice; the residual operation
  // filter keeps only s2's multiples of three (i = 18 and 42).
  EXPECT_EQ(ex.candidates_scanned, 8u);
  EXPECT_EQ(ex.rows_matched, 2u);
  EXPECT_NE(ex.ToString().find("covering=no"), std::string::npos);
}

TEST_F(ExplainTest, ExecuteFeedsThePlanCountersAndSnapshot) {
  prov::Query query;
  query.WithSubject("s0");
  (void)store_->Execute(query);  // testing the side effect on the counters
  const std::string text =
      store_->MetricsSnapshot(obs::ExpositionFormat::kPrometheusText);
  EXPECT_NE(text.find("query_plans_total{index=\"subject\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE query_exec_seconds histogram"),
            std::string::npos);
  // The injected registry also carries the chain's instrumentation.
  EXPECT_NE(text.find("# TYPE chain_append_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("chain_height"), std::string::npos);
  EXPECT_EQ(store_->registry(), &registry_);
}

// ---------------------------------------------------------------------
// Concurrency: cells are plain relaxed atomics — this run exists so the
// TSan gate can prove there is no locking bug hiding in the hot path.
// ---------------------------------------------------------------------

TEST(ConcurrencyTest, ParallelIncrementsAreExact) {
  Registry registry;
  Counter* counter = registry.GetCounter("threads_total", "t");
  Gauge* gauge = registry.GetGauge("threads_balance", "b");
  Histogram* hist =
      registry.GetHistogram("threads_seconds", "h", {1e-6, 1e-3});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        gauge->Add(1);
        hist->Observe(1e-6);  // exactly one microunit per observation
      }
    });
  }
  // Concurrent registration of the same family must also be safe.
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      for (int i = 0; i < 100; ++i) {
        registry.GetCounter("threads_total", "t")->Increment(0);
        (void)registry.TextExposition();  // concurrent read, value unused
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const uint64_t expected = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(counter->value(), expected);
  EXPECT_EQ(gauge->value(), static_cast<int64_t>(expected));
  EXPECT_EQ(hist->count(), expected);
  EXPECT_EQ(hist->bucket_value(0), expected);
  EXPECT_NEAR(hist->sum(), expected * 1e-6, 1e-9);
}

}  // namespace
}  // namespace provledger
