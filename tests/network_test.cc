// Simulated-network tests: deterministic delivery, latency accounting,
// drops, partitions, and broadcast fan-out.

#include <gtest/gtest.h>

#include "network/sim_network.h"

namespace provledger {
namespace network {
namespace {

TEST(SimNetworkTest, DeliversInTimestampOrder) {
  SimClock clock(0);
  NetworkOptions opts;
  opts.base_latency_us = 100;
  opts.jitter_us = 0;
  SimNetwork net(&clock, /*seed=*/1, opts);

  std::vector<std::string> log;
  NodeId a = net.AddNode([&](const Message& m) { log.push_back(m.type); });
  (void)a;
  NodeId b = net.AddNode([&](const Message&) {});

  net.Send(b, 0, "first", {});
  net.Send(b, 0, "second", {});
  EXPECT_EQ(net.RunUntilIdle(), 2u);
  EXPECT_EQ(log, (std::vector<std::string>{"first", "second"}));
  EXPECT_GE(clock.NowMicros(), 100);
}

TEST(SimNetworkTest, LatencyAdvancesClock) {
  SimClock clock(0);
  NetworkOptions opts;
  opts.base_latency_us = 1000;
  opts.jitter_us = 0;
  opts.processing_us = 0;
  SimNetwork net(&clock, 1, opts);
  net.AddNode([](const Message&) {});
  net.AddNode([](const Message&) {});
  net.Send(0, 1, "ping", {});
  net.RunUntilIdle();
  EXPECT_EQ(clock.NowMicros(), 1000);
}

TEST(SimNetworkTest, BroadcastReachesAllButSender) {
  SimClock clock(0);
  SimNetwork net(&clock, 1);
  int received = 0;
  for (int i = 0; i < 5; ++i) {
    net.AddNode([&](const Message&) { ++received; });
  }
  net.Broadcast(2, "hello", ToBytes("payload"));
  net.RunUntilIdle();
  EXPECT_EQ(received, 4);
  EXPECT_EQ(net.metrics().messages_sent, 4u);
  EXPECT_EQ(net.metrics().bytes_sent, 4u * 7u);
}

TEST(SimNetworkTest, DropRateDropsApproximately) {
  SimClock clock(0);
  NetworkOptions opts;
  opts.drop_rate = 0.5;
  SimNetwork net(&clock, 42, opts);
  int received = 0;
  net.AddNode([&](const Message&) { ++received; });
  net.AddNode([](const Message&) {});
  for (int i = 0; i < 1000; ++i) net.Send(1, 0, "m", {});
  net.RunUntilIdle();
  EXPECT_GT(received, 400);
  EXPECT_LT(received, 600);
  EXPECT_EQ(net.metrics().messages_dropped + net.metrics().messages_delivered,
            1000u);
}

TEST(SimNetworkTest, PartitionBlocksCrossTraffic) {
  SimClock clock(0);
  SimNetwork net(&clock, 1);
  int received_0 = 0, received_2 = 0;
  net.AddNode([&](const Message&) { ++received_0; });
  net.AddNode([](const Message&) {});
  net.AddNode([&](const Message&) { ++received_2; });

  net.Partition({0, 1});  // {0,1} vs {2}
  net.Send(2, 0, "cross", {});   // dropped
  net.Send(1, 0, "within", {});  // delivered
  net.Send(1, 2, "cross2", {});  // dropped
  net.RunUntilIdle();
  EXPECT_EQ(received_0, 1);
  EXPECT_EQ(received_2, 0);

  net.Heal();
  net.Send(2, 0, "cross", {});
  net.RunUntilIdle();
  EXPECT_EQ(received_0, 2);
}

TEST(SimNetworkTest, PartitionGroupsIsolateEachGroup) {
  SimClock clock(0);
  SimNetwork net(&clock, 1);
  std::vector<int> received(5, 0);
  for (int i = 0; i < 5; ++i) {
    net.AddNode([&received, i](const Message&) { ++received[i]; });
  }

  // Three-way split: {0,1} | {2} | remainder {3,4}. Only same-group
  // traffic flows; the two singleton-ish groups cannot reach each other
  // either (the old binary Partition could not express this).
  net.PartitionGroups({{0, 1}, {2}});
  EXPECT_TRUE(net.partitioned());
  net.Send(0, 1, "in-group", {});       // delivered
  net.Send(1, 2, "cross-a", {});        // dropped
  net.Send(2, 3, "cross-b", {});        // dropped
  net.Send(3, 4, "remainder", {});      // delivered (shared remainder group)
  net.Send(4, 0, "cross-c", {});        // dropped
  net.RunUntilIdle();
  EXPECT_EQ(received, (std::vector<int>{0, 1, 0, 0, 1}));

  net.Heal();
  EXPECT_FALSE(net.partitioned());
  net.Send(4, 0, "healed", {});
  net.RunUntilIdle();
  EXPECT_EQ(received[0], 1);
}

TEST(SimNetworkTest, DeterministicAcrossRuns) {
  auto run = [] {
    SimClock clock(0);
    NetworkOptions opts;
    opts.jitter_us = 500;
    opts.drop_rate = 0.1;
    SimNetwork net(&clock, 777, opts);
    std::vector<int> order;
    net.AddNode([&](const Message& m) { order.push_back(m.payload[0]); });
    net.AddNode([](const Message&) {});
    for (int i = 0; i < 50; ++i) {
      net.Send(1, 0, "m", Bytes{static_cast<uint8_t>(i)});
    }
    net.RunUntilIdle();
    return order;
  };
  EXPECT_EQ(run(), run());
}

TEST(SimNetworkTest, RunUntilStopsAtDeadline) {
  SimClock clock(0);
  NetworkOptions opts;
  opts.base_latency_us = 100;
  opts.jitter_us = 0;
  SimNetwork net(&clock, 1, opts);
  int received = 0;
  net.AddNode([&](const Message&) { ++received; });
  net.AddNode([&net](const Message&) {});

  net.Send(1, 0, "early", {});
  clock.Advance(500);
  net.Send(1, 0, "late", {});  // delivers at ~600

  net.RunUntil(550);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(clock.NowMicros(), 550);
  net.RunUntilIdle();
  EXPECT_EQ(received, 2);
}

TEST(SimNetworkTest, HandlersCanSendMessages) {
  // Request/response chains inside handlers (consensus protocols rely on
  // this re-entrancy).
  SimClock clock(0);
  SimNetwork net(&clock, 1);
  int responses = 0;
  NodeId server = 0;
  server = net.AddNode([&](const Message& m) {
    net.Send(0, m.from, "pong", {});
  });
  (void)server;
  net.AddNode([&](const Message& m) {
    if (m.type == "pong") ++responses;
  });
  net.Send(1, 0, "ping", {});
  net.RunUntilIdle();
  EXPECT_EQ(responses, 1);
}

}  // namespace
}  // namespace network
}  // namespace provledger
