// Storage layer tests: MemKvStore semantics, WriteBatch atomic application,
// ordered iteration, prefix scans, and the content-addressed store.

#include <gtest/gtest.h>

#include "storage/content_store.h"
#include "storage/kv_store.h"

namespace provledger {
namespace storage {
namespace {

TEST(MemKvStoreTest, PutGetDelete) {
  MemKvStore store;
  ASSERT_TRUE(store.Put("k1", ToBytes("v1")).ok());
  auto got = store.Get("k1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(BytesToString(got.value()), "v1");
  EXPECT_TRUE(store.Has("k1"));

  ASSERT_TRUE(store.Delete("k1").ok());
  EXPECT_FALSE(store.Has("k1"));
  EXPECT_TRUE(store.Get("k1").status().IsNotFound());
}

TEST(MemKvStoreTest, OverwriteUpdatesBytes) {
  MemKvStore store;
  ASSERT_TRUE(store.Put("key", Bytes(100, 0xAA)).ok());
  size_t b1 = store.ApproximateBytes();
  ASSERT_TRUE(store.Put("key", Bytes(10, 0xBB)).ok());
  size_t b2 = store.ApproximateBytes();
  EXPECT_EQ(b1 - b2, 90u);
  EXPECT_EQ(store.ApproximateCount(), 1u);
}

TEST(MemKvStoreTest, DeleteMissingIsOk) {
  MemKvStore store;
  EXPECT_TRUE(store.Delete("ghost").ok());
}

TEST(MemKvStoreTest, WriteBatchAppliesInOrder) {
  MemKvStore store;
  WriteBatch batch;
  batch.Put("a", std::string("1"));
  batch.Put("b", std::string("2"));
  batch.Delete("a");
  batch.Put("c", std::string("3"));
  ASSERT_TRUE(store.Write(batch).ok());
  EXPECT_FALSE(store.Has("a"));
  EXPECT_TRUE(store.Has("b"));
  EXPECT_TRUE(store.Has("c"));
  EXPECT_EQ(batch.size(), 4u);
  batch.Clear();
  EXPECT_TRUE(batch.empty());
}

TEST(MemKvStoreTest, IteratorIsOrderedSnapshot) {
  MemKvStore store;
  ASSERT_TRUE(store.Put("b", ToBytes("2")).ok());
  ASSERT_TRUE(store.Put("a", ToBytes("1")).ok());
  ASSERT_TRUE(store.Put("c", ToBytes("3")).ok());

  auto it = store.NewIterator();
  // Mutations after snapshot creation are invisible.
  ASSERT_TRUE(store.Put("d", ToBytes("4")).ok());

  std::vector<std::string> keys;
  for (it->SeekToFirst(); it->Valid(); it->Next()) keys.push_back(it->key());
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(MemKvStoreTest, IteratorsShareSnapshotsCopyOnWrite) {
  MemKvStore store;
  ASSERT_TRUE(store.Put("k", ToBytes("v1")).ok());
  // Many iterators between writes share one snapshot (no per-iterator
  // copy); each still sees the state at its creation time.
  auto it1 = store.NewIterator();
  auto it2 = store.NewIterator();
  ASSERT_TRUE(store.Put("k", ToBytes("v2")).ok());  // detaches via COW
  auto it3 = store.NewIterator();
  ASSERT_TRUE(store.Delete("k").ok());

  it1->SeekToFirst();
  it2->SeekToFirst();
  it3->SeekToFirst();
  ASSERT_TRUE(it1->Valid());
  EXPECT_EQ(BytesToString(it1->value()), "v1");
  ASSERT_TRUE(it2->Valid());
  EXPECT_EQ(BytesToString(it2->value()), "v1");
  ASSERT_TRUE(it3->Valid());
  EXPECT_EQ(BytesToString(it3->value()), "v2");
  EXPECT_FALSE(store.Has("k"));
}

TEST(MemKvStoreTest, LoadSortedReplacesContents) {
  MemKvStore store;
  ASSERT_TRUE(store.Put("old", ToBytes("gone")).ok());
  auto snapshot = store.NewIterator();

  ASSERT_TRUE(store
                  .LoadSorted({{"a", ToBytes("1")},
                               {"b", ToBytes("2")},
                               {"c", ToBytes("3")}})
                  .ok());
  EXPECT_EQ(store.ApproximateCount(), 3u);
  EXPECT_EQ(store.ApproximateBytes(), 6u);
  EXPECT_FALSE(store.Has("old"));
  EXPECT_TRUE(store.Has("b"));
  // The pre-load snapshot still reads the old state.
  snapshot->SeekToFirst();
  ASSERT_TRUE(snapshot->Valid());
  EXPECT_EQ(snapshot->key(), "old");

  // Unsorted (or duplicated) input is rejected, state unchanged.
  EXPECT_TRUE(store.LoadSorted({{"z", ToBytes("1")}, {"a", ToBytes("2")}})
                  .IsInvalidArgument());
  EXPECT_TRUE(store.LoadSorted({{"a", ToBytes("1")}, {"a", ToBytes("2")}})
                  .IsInvalidArgument());
  EXPECT_EQ(store.ApproximateCount(), 3u);
}

TEST(MemKvStoreTest, IteratorSeek) {
  MemKvStore store;
  for (const char* k : {"apple", "banana", "cherry"}) {
    ASSERT_TRUE(store.Put(k, ToBytes(k)).ok());
  }
  auto it = store.NewIterator();
  it->Seek("b");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "banana");
  it->Seek("zzz");
  EXPECT_FALSE(it->Valid());
}

TEST(MemKvStoreTest, ScanPrefix) {
  MemKvStore store;
  ASSERT_TRUE(store.Put("prov/1", ToBytes("a")).ok());
  ASSERT_TRUE(store.Put("prov/2", ToBytes("b")).ok());
  ASSERT_TRUE(store.Put("prow/3", ToBytes("c")).ok());
  auto hits = ScanPrefix(store, "prov/");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].first, "prov/1");
  EXPECT_EQ(hits[1].first, "prov/2");
}

TEST(ContentStoreTest, PutGetRoundTrip) {
  ContentStore store;
  Bytes content = ToBytes("earth observation dataset v1");
  crypto::Digest cid = store.Put(content);
  auto got = store.Get(cid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), content);
  EXPECT_TRUE(store.Has(cid));
  EXPECT_EQ(store.object_count(), 1u);
}

TEST(ContentStoreTest, PutIsIdempotent) {
  ContentStore store;
  Bytes content = ToBytes("same blob");
  crypto::Digest c1 = store.Put(content);
  crypto::Digest c2 = store.Put(content);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(store.object_count(), 1u);
  EXPECT_EQ(store.total_bytes(), content.size());
}

TEST(ContentStoreTest, MissingContentIsNotFound) {
  ContentStore store;
  EXPECT_TRUE(store.Get(crypto::ZeroDigest()).status().IsNotFound());
  EXPECT_FALSE(store.Has(crypto::ZeroDigest()));
}

TEST(ContentStoreTest, GetVerifiedDetectsCorruption) {
  ContentStore store;
  crypto::Digest cid = store.Put(ToBytes("evidence file"));
  ASSERT_TRUE(store.GetVerified(cid).ok());
  ASSERT_TRUE(store.CorruptForTesting(cid));
  // Plain Get returns the corrupted bytes; GetVerified catches it.
  EXPECT_TRUE(store.Get(cid).ok());
  EXPECT_TRUE(store.GetVerified(cid).status().IsCorruption());
}

TEST(ContentStoreTest, DifferentContentDifferentAddress) {
  ContentStore store;
  crypto::Digest a = store.Put(ToBytes("a"));
  crypto::Digest b = store.Put(ToBytes("b"));
  EXPECT_NE(a, b);
  EXPECT_EQ(store.object_count(), 2u);
}

}  // namespace
}  // namespace storage
}  // namespace provledger
