// Ledger tests: transaction signing/encoding, block Merkle roots, chain
// validation, immutability (the paper's Figure 2 property), fork choice,
// transaction proofs, and the mempool.

#include <gtest/gtest.h>

#include "ledger/chain.h"

namespace provledger {
namespace ledger {
namespace {

crypto::PrivateKey TestKey(const std::string& name) {
  return crypto::PrivateKey::FromSeed(name);
}

Transaction SignedTx(const std::string& payload, const std::string& who,
                     uint64_t nonce = 0) {
  return Transaction::MakeSigned("prov/record", "test-channel",
                                 ToBytes(payload), TestKey(who),
                                 /*timestamp=*/1000, nonce);
}

TEST(TransactionTest, EncodeDecodeRoundTrip) {
  Transaction tx = SignedTx("hello", "alice");
  auto decoded = Transaction::Decode(tx.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->Id(), tx.Id());
  EXPECT_EQ(decoded->type, "prov/record");
  EXPECT_EQ(decoded->channel, "test-channel");
  EXPECT_TRUE(decoded->VerifySignature().ok());
}

TEST(TransactionTest, SignatureCoversPayload) {
  Transaction tx = SignedTx("hello", "alice");
  tx.payload = ToBytes("tampered");
  EXPECT_TRUE(tx.VerifySignature().IsUnauthenticated());
}

TEST(TransactionTest, SignatureCoversMetadata) {
  Transaction tx = SignedTx("hello", "alice");
  tx.nonce ^= 1;
  EXPECT_FALSE(tx.VerifySignature().ok());
}

TEST(TransactionTest, SystemTransactionNeedsNoSignature) {
  Transaction tx = Transaction::MakeSystem("genesis", "", ToBytes("x"), 0, 0);
  EXPECT_FALSE(tx.IsSigned());
  EXPECT_TRUE(tx.VerifySignature().ok());
}

TEST(TransactionTest, IdIsContentAddressed) {
  Transaction a = SignedTx("same", "alice", 1);
  Transaction b = SignedTx("same", "alice", 1);
  Transaction c = SignedTx("same", "alice", 2);
  EXPECT_EQ(a.Id(), b.Id());
  EXPECT_NE(a.Id(), c.Id());
}

TEST(BlockTest, MerkleRootBindsTransactions) {
  std::vector<Transaction> txs = {SignedTx("a", "alice"),
                                  SignedTx("b", "bob")};
  Block block = Block::Make(1, crypto::ZeroDigest(), txs, 1000, "node-0");
  EXPECT_EQ(block.header.merkle_root, Block::ComputeMerkleRoot(txs));
  // Mutating a transaction breaks the root.
  block.transactions[0].payload = ToBytes("evil");
  EXPECT_NE(Block::ComputeMerkleRoot(block.transactions),
            block.header.merkle_root);
}

TEST(BlockTest, EncodeDecodeRoundTrip) {
  std::vector<Transaction> txs = {SignedTx("a", "alice"),
                                  SignedTx("b", "bob")};
  Block block = Block::Make(3, crypto::ZeroDigest(), txs, 1234, "node-1");
  auto decoded = Block::Decode(block.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.Hash(), block.header.Hash());
  EXPECT_EQ(decoded->transactions.size(), 2u);
}

TEST(BlockTest, TransactionInclusionProof) {
  std::vector<Transaction> txs;
  for (int i = 0; i < 9; ++i) txs.push_back(SignedTx("tx", "alice", i));
  Block block = Block::Make(1, crypto::ZeroDigest(), txs, 1000, "n");
  for (size_t i = 0; i < txs.size(); ++i) {
    auto proof = block.ProveTransaction(i);
    ASSERT_TRUE(proof.ok());
    EXPECT_TRUE(crypto::MerkleTree::VerifyProof(
        block.header.merkle_root, block.transactions[i].Encode(),
        proof.value()));
  }
  EXPECT_FALSE(block.ProveTransaction(99).ok());
}

TEST(BlockchainTest, GenesisExists) {
  Blockchain chain;
  EXPECT_EQ(chain.height(), 0u);
  EXPECT_EQ(chain.genesis().header.height, 0u);
  EXPECT_TRUE(chain.VerifyIntegrity().ok());
}

TEST(BlockchainTest, DistinctChainIdsDistinctGenesis) {
  Blockchain a(ChainOptions{.chain_id = "chain-a"});
  Blockchain b(ChainOptions{.chain_id = "chain-b"});
  EXPECT_NE(a.head_hash(), b.head_hash());
}

TEST(BlockchainTest, AppendAndQuery) {
  Blockchain chain;
  Transaction tx = SignedTx("record-1", "alice");
  auto hash = chain.Append({tx}, /*timestamp=*/1000, "node-0");
  ASSERT_TRUE(hash.ok());
  EXPECT_EQ(chain.height(), 1u);

  auto loc = chain.FindTransaction(tx.Id());
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->height, 1u);
  auto fetched = chain.GetTransaction(tx.Id());
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->payload, tx.payload);
}

TEST(BlockchainTest, RejectsBadSignature) {
  Blockchain chain;
  Transaction tx = SignedTx("record", "alice");
  tx.payload = ToBytes("tampered-after-signing");
  EXPECT_FALSE(chain.Append({tx}, 1000, "node-0").ok());
  EXPECT_EQ(chain.height(), 0u);
}

TEST(BlockchainTest, UnsignedPolicyEnforced) {
  ChainOptions opts;
  opts.allow_unsigned = false;
  Blockchain chain(opts);
  Transaction tx = Transaction::MakeSystem("t", "", ToBytes("x"), 1000, 1);
  EXPECT_TRUE(chain.Append({tx}, 1000, "n").status().IsPermissionDenied());
}

TEST(BlockchainTest, MaxBlockTxsEnforced) {
  ChainOptions opts;
  opts.max_block_txs = 2;
  Blockchain chain(opts);
  std::vector<Transaction> txs = {SignedTx("a", "a", 1), SignedTx("b", "a", 2),
                                  SignedTx("c", "a", 3)};
  EXPECT_FALSE(chain.Append(txs, 1000, "n").ok());
  txs.pop_back();
  EXPECT_TRUE(chain.Append(txs, 1000, "n").ok());
}

TEST(BlockchainTest, AppendComputesMerkleRootOncePerBlock) {
  // Self-produce path: Block::Make derives the root from the transactions,
  // and acceptance trusts it — re-deriving it bought nothing and doubled
  // the per-block hashing on every local Append.
  Blockchain chain;
  uint64_t before = Block::merkle_root_computes();
  ASSERT_TRUE(chain.Append({SignedTx("a", "a", 1)}, 1000, "n").ok());
  EXPECT_EQ(Block::merkle_root_computes(), before + 1);

  // Externally submitted blocks still get the full recompute: Make pays
  // one, validation pays the second.
  Block external = Block::Make(2, chain.head_hash(), {SignedTx("b", "a", 2)},
                               1001, "rival");
  before = Block::merkle_root_computes();
  ASSERT_TRUE(chain.SubmitBlock(external).ok());
  EXPECT_EQ(Block::merkle_root_computes(), before + 1);

  // ...and a tampered external block is still caught by that recompute.
  Block bad = Block::Make(3, chain.head_hash(), {SignedTx("c", "a", 3)},
                          1002, "rival");
  bad.transactions[0].payload = ToBytes("swapped");
  EXPECT_TRUE(chain.SubmitBlock(bad).IsCorruption());
}

TEST(BlockchainTest, TimestampMonotonicity) {
  Blockchain chain;
  ASSERT_TRUE(chain.Append({SignedTx("a", "a")}, 2000, "n").ok());
  EXPECT_FALSE(chain.Append({SignedTx("b", "a")}, 1000, "n").ok());
  EXPECT_TRUE(chain.Append({SignedTx("b", "a")}, 2000, "n").ok());
}

TEST(BlockchainTest, ImmutabilityAnyTamperDetected) {
  // The paper's core claim (Figure 2): altering any historical transaction
  // invalidates the chain.
  Blockchain chain;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        chain.Append({SignedTx("r" + std::to_string(i), "alice", i)},
                     1000 + i, "node-0")
            .ok());
  }
  ASSERT_TRUE(chain.VerifyIntegrity().ok());
  for (uint64_t h = 1; h <= 10; ++h) {
    Blockchain victim;
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          victim.Append({SignedTx("r" + std::to_string(i), "alice", i)},
                        1000 + i, "node-0")
              .ok());
    }
    ASSERT_TRUE(victim.TamperForTesting(h, 0, 0xFF).ok());
    EXPECT_TRUE(victim.VerifyIntegrity().IsCorruption()) << "height " << h;
  }
}

TEST(BlockchainTest, ForkChoiceAdoptsLongerBranch) {
  Blockchain chain;
  ASSERT_TRUE(chain.Append({SignedTx("main-1", "a", 1)}, 1000, "n").ok());
  crypto::Digest fork_point = chain.head_hash();
  ASSERT_TRUE(chain.Append({SignedTx("main-2", "a", 2)}, 1001, "n").ok());
  EXPECT_EQ(chain.height(), 2u);

  // Build a competing branch from height 1 with two blocks.
  Block side1 = Block::Make(2, fork_point, {SignedTx("side-2", "b", 1)},
                            1002, "rival");
  ASSERT_TRUE(chain.SubmitBlock(side1).ok());
  EXPECT_EQ(chain.height(), 2u);  // tie: main chain keeps the head

  Block side2 = Block::Make(3, side1.header.Hash(),
                            {SignedTx("side-3", "b", 2)}, 1003, "rival");
  ASSERT_TRUE(chain.SubmitBlock(side2).ok());
  EXPECT_EQ(chain.height(), 3u);  // reorg to the longer branch

  // main-2's transaction fell off the main chain; side transactions are on.
  EXPECT_TRUE(
      chain.FindTransaction(SignedTx("main-2", "a", 2).Id()).status()
          .IsNotFound());
  EXPECT_TRUE(chain.FindTransaction(SignedTx("side-3", "b", 2).Id()).ok());
  EXPECT_TRUE(chain.VerifyIntegrity().ok());
  EXPECT_EQ(chain.total_blocks(), 5u);       // genesis + 2 main + 2 side
  EXPECT_EQ(chain.main_chain_length(), 4u);  // genesis..height 3
}

TEST(BlockchainTest, SubmitRejectsUnknownParentAndDuplicates) {
  Blockchain chain;
  Block orphan = Block::Make(5, crypto::Sha256::Hash("nowhere"),
                             {SignedTx("x", "a")}, 1000, "n");
  EXPECT_TRUE(chain.SubmitBlock(orphan).IsNotFound());

  ASSERT_TRUE(chain.Append({SignedTx("a", "a")}, 1000, "n").ok());
  auto dup = chain.GetBlock(1);
  ASSERT_TRUE(dup.ok());
  EXPECT_TRUE(chain.SubmitBlock(dup.value()).IsAlreadyExists());
}

TEST(BlockchainTest, TxProofVerifies) {
  Blockchain chain;
  std::vector<Transaction> txs;
  for (int i = 0; i < 7; ++i) txs.push_back(SignedTx("t", "alice", i));
  ASSERT_TRUE(chain.Append(txs, 1000, "n").ok());

  auto proof = chain.ProveTransaction(txs[3].Id());
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(chain.VerifyTxProof(txs[3].Encode(), proof.value()));
  EXPECT_TRUE(Blockchain::VerifyTxProofAgainstHeader(txs[3].Encode(),
                                                     proof.value()));
  // Wrong transaction fails.
  EXPECT_FALSE(chain.VerifyTxProof(txs[4].Encode(), proof.value()));
  // Forged header fails.
  auto forged = proof.value();
  forged.header.timestamp += 1;
  EXPECT_FALSE(Blockchain::VerifyTxProofAgainstHeader(txs[3].Encode(), forged));
}

TEST(BlockchainTest, ChannelScan) {
  Blockchain chain;
  Transaction t1 = Transaction::MakeSigned("r", "ch-a", ToBytes("1"),
                                           TestKey("a"), 1000, 1);
  Transaction t2 = Transaction::MakeSigned("r", "ch-b", ToBytes("2"),
                                           TestKey("a"), 1000, 2);
  Transaction t3 = Transaction::MakeSigned("r", "ch-a", ToBytes("3"),
                                           TestKey("a"), 1000, 3);
  ASSERT_TRUE(chain.Append({t1, t2}, 1000, "n").ok());
  ASSERT_TRUE(chain.Append({t3}, 1001, "n").ok());
  auto on_a = chain.GetChannelTransactions("ch-a");
  ASSERT_EQ(on_a.size(), 2u);
  EXPECT_EQ(on_a[0].payload, ToBytes("1"));
  EXPECT_EQ(on_a[1].payload, ToBytes("3"));
}

TEST(MempoolTest, DedupAndFifo) {
  Mempool pool;
  Transaction a = SignedTx("a", "alice", 1);
  Transaction b = SignedTx("b", "alice", 2);
  ASSERT_TRUE(pool.Add(a).ok());
  ASSERT_TRUE(pool.Add(b).ok());
  EXPECT_TRUE(pool.Add(a).IsAlreadyExists());
  EXPECT_EQ(pool.size(), 2u);

  auto taken = pool.Take(1);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].Id(), a.Id());
  // After taking, the same tx may be re-added (e.g. after a reorg).
  EXPECT_TRUE(pool.Add(a).ok());
}

TEST(MempoolTest, RejectsBadSignatures) {
  Mempool pool;
  Transaction tx = SignedTx("a", "alice");
  tx.payload = ToBytes("tampered");
  EXPECT_FALSE(pool.Add(tx).ok());
  EXPECT_TRUE(pool.empty());
}

TEST(MempoolTest, TakeAllWhenZero) {
  Mempool pool;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(pool.Add(SignedTx("t", "a", i)).ok());
  EXPECT_EQ(pool.Take(0).size(), 5u);
  EXPECT_TRUE(pool.empty());
}

}  // namespace
}  // namespace ledger
}  // namespace provledger
