// Consensus engine tests: commit correctness, fault tolerance boundaries,
// message complexity shapes (PBFT O(n²) vs Raft O(n)), difficulty scaling,
// and stake-weighted election bias.

#include <gtest/gtest.h>

#include "consensus/engine.h"
#include "consensus/pbft.h"
#include "consensus/pos.h"
#include "consensus/pow.h"
#include "consensus/raft.h"

namespace provledger {
namespace consensus {
namespace {

ConsensusConfig BaseConfig(uint32_t nodes) {
  ConsensusConfig config;
  config.num_nodes = nodes;
  config.seed = 7;
  config.pow_difficulty_bits = 8;  // fast for tests
  return config;
}

TEST(LeadingZeroBitsTest, CountsCorrectly) {
  crypto::Digest d{};
  EXPECT_EQ(LeadingZeroBits(d), 256u);
  d[0] = 0x80;
  EXPECT_EQ(LeadingZeroBits(d), 0u);
  d[0] = 0x01;
  EXPECT_EQ(LeadingZeroBits(d), 7u);
  d[0] = 0x00;
  d[1] = 0x10;
  EXPECT_EQ(LeadingZeroBits(d), 11u);
}

TEST(FactoryTest, MakesAllKinds) {
  for (const char* kind : {"pow", "pos", "pbft", "raft"}) {
    auto engine = MakeEngine(kind, BaseConfig(4));
    ASSERT_TRUE(engine.ok()) << kind;
    EXPECT_EQ(engine.value()->name(), kind);
  }
  EXPECT_FALSE(MakeEngine("tendermint", BaseConfig(4)).ok());
  ConsensusConfig zero = BaseConfig(0);
  EXPECT_FALSE(MakeEngine("pow", zero).ok());
}

TEST(PowTest, CommitMeetsDifficulty) {
  PowEngine engine(BaseConfig(4));
  auto result = engine.Propose(ToBytes("block-1"));
  ASSERT_TRUE(result.ok());
  EXPECT_GE(LeadingZeroBits(result->payload_digest), 8u);
  EXPECT_GT(result->metrics.hash_attempts, 0u);
  EXPECT_EQ(result->metrics.messages, 3u);  // broadcast to n-1
}

TEST(PowTest, HarderDifficultyCostsMoreAttempts) {
  uint64_t attempts_easy = 0, attempts_hard = 0;
  const int kBlocks = 12;
  {
    ConsensusConfig config = BaseConfig(4);
    config.pow_difficulty_bits = 6;
    PowEngine engine(config);
    for (int i = 0; i < kBlocks; ++i) {
      auto r = engine.Propose(ToBytes("b" + std::to_string(i)));
      ASSERT_TRUE(r.ok());
      attempts_easy += r->metrics.hash_attempts;
    }
  }
  {
    ConsensusConfig config = BaseConfig(4);
    config.pow_difficulty_bits = 12;
    PowEngine engine(config);
    for (int i = 0; i < kBlocks; ++i) {
      auto r = engine.Propose(ToBytes("b" + std::to_string(i)));
      ASSERT_TRUE(r.ok());
      attempts_hard += r->metrics.hash_attempts;
    }
  }
  // 6 extra bits => ~64x more attempts; demand at least 8x to be robust.
  EXPECT_GT(attempts_hard, attempts_easy * 8);
}

TEST(PowTest, RejectsAbsurdDifficulty) {
  ConsensusConfig config = BaseConfig(4);
  config.pow_difficulty_bits = 64;
  PowEngine engine(config);
  EXPECT_FALSE(engine.Propose(ToBytes("x")).ok());
}

TEST(PosTest, CommitsWithQuorum) {
  PosEngine engine(BaseConfig(5));
  auto result = engine.Propose(ToBytes("block-1"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.rounds, 2u);
  // propose broadcast (n-1) + attests back (n-1).
  EXPECT_EQ(result->metrics.messages, 8u);
  EXPECT_LT(result->proposer, 5u);
}

TEST(PosTest, StakeWeightedElectionBias) {
  ConsensusConfig config = BaseConfig(4);
  config.stakes = {1000, 10, 10, 10};
  PosEngine engine(config);
  int whale_wins = 0;
  const int kSlots = 100;
  for (int i = 0; i < kSlots; ++i) {
    auto r = engine.Propose(ToBytes("s" + std::to_string(i)));
    ASSERT_TRUE(r.ok());
    if (r->proposer == 0) ++whale_wins;
  }
  // Whale holds ~97% of stake; should win the vast majority of slots.
  EXPECT_GT(whale_wins, 80);
}

TEST(PosTest, LeaderScheduleIsDeterministic) {
  std::vector<uint32_t> run1, run2;
  for (auto* out : {&run1, &run2}) {
    PosEngine engine(BaseConfig(5));
    for (int i = 0; i < 10; ++i) {
      auto r = engine.Propose(ToBytes("b" + std::to_string(i)));
      ASSERT_TRUE(r.ok());
      out->push_back(r->proposer);
    }
  }
  EXPECT_EQ(run1, run2);
}

TEST(PbftTest, CommitsWithoutFaults) {
  PbftEngine engine(BaseConfig(4));
  auto result = engine.Propose(ToBytes("block-1"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.rounds, 3u);
}

TEST(PbftTest, RequiresFourReplicas) {
  PbftEngine engine(BaseConfig(3));
  EXPECT_TRUE(engine.Propose(ToBytes("x")).status().IsInvalidArgument());
}

TEST(PbftTest, ToleratesFByzantine) {
  ConsensusConfig config = BaseConfig(7);  // f = 2
  config.byzantine_nodes = 2;
  PbftEngine engine(config);
  auto result = engine.Propose(ToBytes("block-1"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(PbftTest, FailsBeyondFByzantine) {
  ConsensusConfig config = BaseConfig(7);  // f = 2
  config.byzantine_nodes = 3;
  PbftEngine engine(config);
  EXPECT_TRUE(engine.Propose(ToBytes("x")).status().IsFailedPrecondition());
}

TEST(PbftTest, ViewChangeOnByzantineLeader) {
  // Node n-1 is byzantine; force it to be the leader by advancing views.
  ConsensusConfig config = BaseConfig(4);
  config.byzantine_nodes = 1;  // node 3 silent
  PbftEngine engine(config);
  // Commit until view reaches the byzantine node, then once more.
  for (int i = 0; i < 5; ++i) {
    auto r = engine.Propose(ToBytes("b" + std::to_string(i)));
    ASSERT_TRUE(r.ok()) << "iteration " << i << ": " << r.status().ToString();
  }
}

TEST(PbftTest, QuadraticMessageComplexity) {
  auto messages_for = [](uint32_t n) {
    PbftEngine engine(BaseConfig(n));
    auto r = engine.Propose(ToBytes("b"));
    EXPECT_TRUE(r.ok());
    return r->metrics.messages;
  };
  uint64_t m4 = messages_for(4);
  uint64_t m16 = messages_for(16);
  // n 4x larger -> messages should grow ~16x (allow >8x).
  EXPECT_GT(m16, m4 * 8);
}

TEST(RaftTest, ElectsLeaderAndCommits) {
  RaftEngine engine(BaseConfig(5));
  EXPECT_EQ(engine.leader(), -1);
  auto result = engine.Propose(ToBytes("entry-1"));
  ASSERT_TRUE(result.ok());
  EXPECT_GE(engine.leader(), 0);
  // Subsequent commits skip the election round.
  auto r2 = engine.Propose(ToBytes("entry-2"));
  ASSERT_TRUE(r2.ok());
  EXPECT_LT(r2->metrics.messages, result->metrics.messages);
}

TEST(RaftTest, LinearMessageComplexity) {
  auto messages_for = [](uint32_t n) {
    RaftEngine engine(BaseConfig(n));
    (void)engine.Propose(ToBytes("warmup"));  // election
    auto r = engine.Propose(ToBytes("b"));
    EXPECT_TRUE(r.ok());
    return r->metrics.messages;
  };
  uint64_t m4 = messages_for(4);
  uint64_t m16 = messages_for(16);
  // Linear growth: 4x nodes -> ~4x messages (must stay well under 8x).
  EXPECT_LT(m16, m4 * 8);
  EXPECT_GT(m16, m4 * 2);
}

TEST(RaftTest, SurvivesMinorityCrashes) {
  ConsensusConfig config = BaseConfig(5);
  config.crashed_nodes = 2;
  RaftEngine engine(config);
  auto result = engine.Propose(ToBytes("entry"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(RaftTest, FailsWithoutMajority) {
  ConsensusConfig config = BaseConfig(5);
  config.crashed_nodes = 3;
  RaftEngine engine(config);
  EXPECT_TRUE(engine.Propose(ToBytes("x")).status().IsUnavailable());
}

TEST(RaftTest, ReelectsAfterLeaderCrash) {
  RaftEngine engine(BaseConfig(5));
  ASSERT_TRUE(engine.Propose(ToBytes("e1")).ok());
  int32_t old_leader = engine.leader();
  engine.CrashLeader();
  auto result = engine.Propose(ToBytes("e2"));
  ASSERT_TRUE(result.ok());
  EXPECT_NE(engine.leader(), old_leader);
}

// Parameterized cross-engine property: every engine commits a batch of
// payloads and reports sane metrics.
class EngineSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineSweep, CommitsBatch) {
  auto engine = MakeEngine(GetParam(), BaseConfig(4));
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 5; ++i) {
    auto r = engine.value()->Propose(ToBytes("payload-" + std::to_string(i)));
    ASSERT_TRUE(r.ok()) << GetParam() << " block " << i;
    EXPECT_GT(r->metrics.messages, 0u);
    EXPECT_GT(r->metrics.latency_us, 0);
  }
  EXPECT_GT(engine.value()->now_us(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineSweep,
                         ::testing::Values("pow", "pos", "pbft", "raft"));

}  // namespace
}  // namespace consensus
}  // namespace provledger
