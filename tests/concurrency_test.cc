// Concurrency suite (ctest label `concurrency`; run under TSan via
// scripts/check_build.sh or -DPROVLEDGER_SANITIZE=thread):
//
//   * multi-producer sharded ingest: everything lands, chain verifies,
//     per-subject order survives the shard fan-out,
//   * writer vs many readers over published snapshot epochs: readers see
//     only fully-committed state, monotone epochs, contiguous per-subject
//     prefixes, and an acquired epoch never moves underneath them,
//   * parallel query execution: bit-identical results to serial runs,
//   * the prepared-block fast path: byte-identical blocks to Append.
//
// Sizes are deliberately moderate — TSan multiplies runtime ~10x.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "crypto/merkle.h"
#include "prov/ingest_pipeline.h"
#include "prov/snapshot.h"
#include "prov/store.h"

namespace provledger {
namespace prov {
namespace {

ProvenanceRecord Rec(size_t i, size_t subjects, size_t agents) {
  ProvenanceRecord rec;
  rec.record_id = "rec-" + std::to_string(i);
  rec.subject = "entity-" + std::to_string(i % subjects);
  rec.agent = "agent-" + std::to_string(i % agents);
  rec.operation = (i % 3 == 0) ? "update" : "read";
  rec.timestamp = 1'000'000 + static_cast<Timestamp>(i);
  rec.fields["seq"] = std::to_string(i);
  return rec;
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  ConcurrencyTest() : clock_(1'000'000), store_(&chain_, &clock_) {}
  ledger::Blockchain chain_;
  SimClock clock_;
  ProvenanceStore store_;
};

// -- Multi-producer ingest ---------------------------------------------------

TEST_F(ConcurrencyTest, MultiProducerIngestCommitsEverything) {
  constexpr size_t kRecords = 8000;
  constexpr size_t kProducers = 4;
  IngestPipelineOptions options;
  options.shards = 4;
  options.batch_size = 128;
  {
    IngestPipeline pipeline(&store_, options);
    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (size_t i = p; i < kRecords; i += kProducers) {
          ASSERT_TRUE(pipeline.Submit(Rec(i, 400, 16)).ok());
        }
      });
    }
    for (auto& producer : producers) producer.join();
    ASSERT_TRUE(pipeline.Close().ok());
    EXPECT_EQ(pipeline.submitted(), kRecords);
    EXPECT_EQ(pipeline.committed(), kRecords);
    EXPECT_EQ(pipeline.failed(), 0u);
    EXPECT_GE(pipeline.batches_committed(), kRecords / options.batch_size);
  }
  EXPECT_EQ(store_.anchored_count(), kRecords);
  EXPECT_EQ(store_.graph().record_count(), kRecords);
  ASSERT_TRUE(chain_.VerifyIntegrity().ok());
  auto audited = store_.AuditAll();
  ASSERT_TRUE(audited.ok()) << audited.status().ToString();
  EXPECT_EQ(audited.value(), kRecords);
}

TEST_F(ConcurrencyTest, PipelinePreservesPerSubjectOrder) {
  // All records of one subject route through one shard (interned subject
  // id), so per-subject submission order must survive however producers
  // interleave across subjects.
  constexpr size_t kRecords = 4000;
  IngestPipelineOptions options;
  options.shards = 4;
  options.batch_size = 64;
  IngestPipeline pipeline(&store_, options);
  std::vector<std::thread> producers;
  for (size_t p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      // Producer p owns subjects with s % 4 == p: per-subject order ==
      // this producer's submission order.
      for (size_t i = p; i < kRecords; i += 4) {
        ASSERT_TRUE(pipeline.Submit(Rec(i, 40, 4)).ok());
      }
    });
  }
  for (auto& producer : producers) producer.join();
  ASSERT_TRUE(pipeline.Close().ok());

  for (size_t s = 0; s < 40; ++s) {
    auto history = store_.SubjectHistory("entity-" + std::to_string(s));
    ASSERT_EQ(history.size(), kRecords / 40);
    long prev = -1;
    for (const auto& rec : history) {
      long seq = std::stol(rec.fields.at("seq"));
      EXPECT_GT(seq, prev);
      prev = seq;
    }
  }
}

TEST_F(ConcurrencyTest, PipelineDropsDuplicatesAndReportsThem) {
  ASSERT_TRUE(store_.Anchor(Rec(0, 10, 2)).ok());  // pre-anchored
  IngestPipelineOptions options;
  options.shards = 2;
  options.batch_size = 8;
  IngestPipeline pipeline(&store_, options);
  ASSERT_TRUE(pipeline.Submit(Rec(0, 10, 2)).ok());   // duplicate
  ASSERT_TRUE(pipeline.Submit(Rec(1, 10, 2)).ok());   // fresh
  ASSERT_TRUE(pipeline.Submit(Rec(1, 10, 2)).ok());   // duplicate of fresh
  Status closed = pipeline.Close();
  EXPECT_TRUE(closed.IsAlreadyExists()) << closed.ToString();
  EXPECT_EQ(pipeline.committed(), 1u);
  EXPECT_EQ(pipeline.failed(), 2u);
  EXPECT_EQ(store_.anchored_count(), 2u);  // pre-anchored + fresh
  ASSERT_TRUE(chain_.VerifyIntegrity().ok());
}

TEST_F(ConcurrencyTest, PipelineRejectsInvalidRecordsWithoutStalling) {
  IngestPipelineOptions options;
  options.shards = 2;
  options.batch_size = 4;
  IngestPipeline pipeline(&store_, options);
  ProvenanceRecord bad;  // fails Validate() on the shard worker
  bad.subject = "s";
  ASSERT_TRUE(pipeline.Submit(bad).ok());  // Submit is fire-and-forget
  ASSERT_TRUE(pipeline.Submit(Rec(1, 10, 2)).ok());
  Status closed = pipeline.Close();
  EXPECT_TRUE(closed.IsInvalidArgument()) << closed.ToString();
  EXPECT_EQ(pipeline.committed(), 1u);
  EXPECT_EQ(pipeline.failed(), 1u);
  EXPECT_FALSE(pipeline.Submit(Rec(2, 10, 2)).ok());  // closed
}

TEST_F(ConcurrencyTest, FlushAfterCloseReturnsInsteadOfHanging) {
  // Regression: with publish_on_flush, a Flush after Close used to
  // enqueue a publish marker onto a commit queue whose consumer had
  // already exited, waiting forever.
  IngestPipelineOptions options;
  options.shards = 2;
  options.batch_size = 8;
  options.publish_on_flush = true;
  IngestPipeline pipeline(&store_, options);
  ASSERT_TRUE(pipeline.Submit(Rec(0, 4, 2)).ok());
  ASSERT_TRUE(pipeline.Close().ok());
  EXPECT_TRUE(pipeline.Flush().ok());   // returns Close()'s result
  EXPECT_TRUE(pipeline.Close().ok());   // idempotent
  EXPECT_GE(pipeline.snapshots_published(), 1u);  // close's flush published
}

// -- Snapshot-isolated readers ----------------------------------------------

TEST_F(ConcurrencyTest, WriterVsManyReadersSeeOnlyCommittedState) {
  constexpr size_t kRecords = 6000;
  constexpr size_t kReaders = 3;
  IngestPipelineOptions options;
  options.shards = 4;
  options.batch_size = 64;
  options.snapshot_every_batches = 4;
  IngestPipeline pipeline(&store_, options);

  std::atomic<bool> stop{false};
  std::atomic<size_t> reads{0};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto snapshot = store_.AcquireSnapshot();
        if (snapshot == nullptr) continue;
        // Epochs only move forward.
        EXPECT_GE(snapshot->epoch(), last_epoch);
        last_epoch = snapshot->epoch();
        auto reader = snapshot->OpenReader();
        ASSERT_TRUE(reader.ok()) << reader.status().ToString();
        EXPECT_EQ(reader->graph().record_count(), snapshot->record_count());
        // Per-subject histories must be contiguous prefixes: subject s
        // sees seq s, s+150, s+300, ... with no gaps — a reader can never
        // observe a record without every earlier record of that subject
        // (batches commit whole, in per-subject order).
        const size_t subject = reads.load(std::memory_order_relaxed) % 150;
        auto history = reader->Execute(
            Query().WithSubject("entity-" + std::to_string(subject)));
        size_t expected = subject;
        for (const auto& rec : history.records) {
          ASSERT_EQ(rec.fields.at("seq"), std::to_string(expected));
          expected += 150;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (size_t i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(pipeline.Submit(Rec(i, 150, 8)).ok());
  }
  ASSERT_TRUE(pipeline.Close().ok());
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(pipeline.committed(), kRecords);
  EXPECT_GT(pipeline.snapshots_published(), 0u);
  ASSERT_TRUE(chain_.VerifyIntegrity().ok());
}

TEST_F(ConcurrencyTest, AcquiredSnapshotIsPinnedWhileWriterAdvances) {
  IngestPipelineOptions options;
  options.shards = 2;
  options.batch_size = 16;
  options.publish_on_flush = true;
  IngestPipeline pipeline(&store_, options);
  for (size_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(pipeline.Submit(Rec(i, 8, 2)).ok());
  }
  ASSERT_TRUE(pipeline.Flush().ok());
  auto old_snapshot = store_.AcquireSnapshot();
  ASSERT_NE(old_snapshot, nullptr);
  EXPECT_EQ(old_snapshot->record_count(), 64u);

  for (size_t i = 64; i < 128; ++i) {
    ASSERT_TRUE(pipeline.Submit(Rec(i, 8, 2)).ok());
  }
  ASSERT_TRUE(pipeline.Close().ok());

  // The old epoch still reads exactly its 64 records; the new epoch has
  // all 128. Snapshot isolation: nothing moved under the old reader.
  auto old_reader = old_snapshot->OpenReader();
  ASSERT_TRUE(old_reader.ok());
  EXPECT_EQ(old_reader->graph().record_count(), 64u);
  EXPECT_EQ(old_reader->Execute(Query().CountOnly()).count, 64u);

  auto new_snapshot = store_.AcquireSnapshot();
  ASSERT_NE(new_snapshot, nullptr);
  EXPECT_GT(new_snapshot->epoch(), old_snapshot->epoch());
  auto new_reader = new_snapshot->OpenReader();
  ASSERT_TRUE(new_reader.ok());
  EXPECT_EQ(new_reader->Execute(Query().CountOnly()).count, 128u);
}

TEST_F(ConcurrencyTest, SnapshotSupportsLineageAndInvalidity) {
  // Snapshot readers expose the full graph surface, not just Run().
  ProvenanceRecord base = Rec(0, 1, 1);
  base.outputs = {"derived-1"};
  ASSERT_TRUE(store_.Anchor(base).ok());
  ProvenanceRecord child = Rec(1, 1, 1);
  child.inputs = {"derived-1"};
  child.outputs = {"derived-2"};
  ASSERT_TRUE(store_.Anchor(child).ok());
  ASSERT_TRUE(store_.PublishSnapshot().ok());

  auto snapshot = store_.AcquireSnapshot();
  ASSERT_NE(snapshot, nullptr);
  auto reader = snapshot->OpenReader();
  ASSERT_TRUE(reader.ok());
  auto lineage = reader->graph().Lineage("derived-2");
  EXPECT_EQ(lineage.size(), 1u);
  EXPECT_EQ(lineage[0], "derived-1");
}

// -- Parallel query execution ------------------------------------------------

class ParallelQueryTest : public ::testing::Test {
 protected:
  static constexpr size_t kRecords = 9000;  // above the fan-out threshold
  ParallelQueryTest() {
    for (size_t i = 0; i < kRecords; ++i) {
      ProvenanceRecord rec = Rec(i, 300, 12);
      if (i % 7 == 0) rec.inputs.push_back("entity-" + std::to_string(i % 300));
      EXPECT_TRUE(graph_.AddRecord(std::move(rec)).ok());
    }
  }
  ProvenanceGraph graph_;
};

void ExpectSameResults(const QueryResult& serial, const QueryResult& parallel) {
  EXPECT_EQ(serial.count, parallel.count);
  EXPECT_EQ(serial.index_used, parallel.index_used);
  ASSERT_EQ(serial.records.size(), parallel.records.size());
  for (size_t i = 0; i < serial.records.size(); ++i) {
    EXPECT_EQ(serial.records[i].record_id, parallel.records[i].record_id);
  }
}

TEST_F(ParallelQueryTest, ParallelScanMatchesSerial) {
  // Residual predicates (operation, field) force a real per-candidate
  // scan over the full-extent time index — the fan-out case.
  std::vector<Query> queries;
  queries.push_back(Query().WithOperation("update"));
  queries.push_back(Query().WithOperation("read").Descending());
  // Shallow page: falls back to the serial early-exit; deep page: fans
  // out. Both must match serial results exactly.
  queries.push_back(Query().WithOperation("update").Offset(37).Limit(100));
  queries.push_back(Query().WithOperation("read").Offset(100).Limit(8000));
  queries.push_back(Query().WithField("seq", "123"));
  queries.push_back(Query().WithOperation("update").CountOnly());
  queries.push_back(Query().WithOperation("read").Between(1'002'000, 1'007'000));
  for (const auto& base : queries) {
    Query parallel = base;
    parallel.Parallel(4);
    ExpectSameResults(graph_.Run(base), graph_.Run(parallel));
  }
}

TEST_F(ParallelQueryTest, ParallelVisitorMatchesSerialAndStaysInOrder) {
  Query base = Query().WithOperation("update");
  std::vector<std::string> serial_ids, parallel_ids;
  graph_.Run(base, [&](const ProvenanceRecord& rec) {
    serial_ids.push_back(rec.record_id);
    return true;
  });
  Query parallel = base;
  parallel.Parallel(4);
  graph_.Run(parallel, [&](const ProvenanceRecord& rec) {
    parallel_ids.push_back(rec.record_id);
    return true;
  });
  EXPECT_EQ(serial_ids, parallel_ids);

  // Early stop still works through the parallel path.
  size_t visited = graph_.Run(parallel, [&](const ProvenanceRecord&) {
    return false;
  });
  EXPECT_EQ(visited, 1u);
}

TEST_F(ParallelQueryTest, SmallScansFallBackToSerial) {
  // A selective subject scan is far below the fan-out threshold; the knob
  // must be a silent no-op, not an error.
  Query query = Query().WithSubject("entity-5").Parallel(8);
  auto result = graph_.Run(query);
  EXPECT_EQ(result.count, kRecords / 300);
}

TEST_F(ParallelQueryTest, ConcurrentParallelQueriesOnWarmedGraph) {
  graph_.Warm();
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int iter = 0; iter < 5; ++iter) {
        auto result = graph_.Run(Query().WithOperation("update").Parallel(4));
        EXPECT_EQ(result.count, (kRecords + 2) / 3);
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

TEST_F(ParallelQueryTest, WarmedSnapshotReaderSupportsParallelQueries) {
  Encoder enc;
  graph_.SaveTo(&enc);
  auto body = std::make_shared<const Bytes>(enc.TakeBuffer());
  GraphSnapshot snapshot(1, 0, kRecords, body);
  auto reader = snapshot.OpenReader();
  ASSERT_TRUE(reader.ok());

  // Lazily-loaded reader: parallel silently degrades to serial (records
  // would race on hydration) but results are still correct.
  auto lazy = reader->Execute(Query().WithOperation("update").Parallel(4));
  EXPECT_EQ(lazy.count, (kRecords + 2) / 3);

  reader->Warm();
  auto warmed = reader->Execute(Query().WithOperation("update").Parallel(4));
  ExpectSameResults(lazy, warmed);
}

// -- Prepared-block fast path ------------------------------------------------

TEST(AppendPreparedTest, ProducesByteIdenticalBlocks) {
  ledger::Blockchain via_append, via_prepared;
  std::vector<ledger::Transaction> txs;
  for (uint64_t i = 0; i < 5; ++i) {
    txs.push_back(ledger::Transaction::MakeSystem(
        "t", "ch", Bytes{uint8_t(i), 0x42}, 1000 + i, i));
  }
  auto appended = via_append.Append(txs, 2000, "proposer", 7);
  ASSERT_TRUE(appended.ok());

  std::vector<ledger::PreparedTx> prepared;
  for (const auto& tx : txs) {
    prepared.push_back(ledger::PreparedTx{
        tx, tx.Id(), crypto::MerkleTree::LeafHash(tx.Encode())});
  }
  auto fast = via_prepared.AppendPrepared(&prepared, 2000, "proposer", 7);
  ASSERT_TRUE(fast.ok());
  EXPECT_TRUE(prepared.empty());  // consumed on success

  // Same block hash == same header == same Merkle root: the cached-digest
  // path and the recompute path can never diverge silently.
  EXPECT_EQ(appended.value(), fast.value());
  EXPECT_EQ(via_append.head_hash(), via_prepared.head_hash());
  ASSERT_TRUE(via_prepared.VerifyIntegrity().ok());

  // Proofs built later (from stored transactions) verify against the
  // prepared root, and the cached-id transaction index resolves lookups.
  auto proof = via_prepared.ProveTransaction(txs[3].Id());
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(via_prepared.VerifyTxProof(txs[3].Encode(), proof.value()));

  // The shard-worker-precomputed-root variant lands the same block too.
  ledger::Blockchain via_root;
  std::vector<ledger::PreparedTx> prepared_again;
  std::vector<crypto::Digest> leaves;
  for (const auto& tx : txs) {
    crypto::Digest leaf = crypto::MerkleTree::LeafHash(tx.Encode());
    leaves.push_back(leaf);
    prepared_again.push_back(ledger::PreparedTx{tx, tx.Id(), leaf});
  }
  crypto::Digest root = crypto::MerkleTree::BuildFromDigests(leaves).root();
  auto with_root = via_root.AppendPrepared(&prepared_again, 2000,
                                           "proposer", 7, &root);
  ASSERT_TRUE(with_root.ok());
  EXPECT_EQ(appended.value(), with_root.value());
  ASSERT_TRUE(via_root.VerifyIntegrity().ok());
}

TEST(AppendPreparedTest, RejectedBlockHandsTransactionsBack) {
  // A block-sink (durability) failure must not consume the prepared
  // transactions: the caller retries with the same batch.
  ledger::Blockchain chain;
  std::vector<ledger::PreparedTx> prepared;
  for (uint64_t i = 0; i < 3; ++i) {
    auto tx = ledger::Transaction::MakeSystem("t", "ch", Bytes{uint8_t(i)},
                                              1000 + i, i);
    prepared.push_back(ledger::PreparedTx{
        tx, tx.Id(), crypto::MerkleTree::LeafHash(tx.Encode())});
  }
  chain.SetBlockSink(
      [](const ledger::Block&) { return Status::Internal("disk full"); });
  auto refused = chain.AppendPrepared(&prepared, 2000, "proposer");
  ASSERT_FALSE(refused.ok());
  ASSERT_EQ(prepared.size(), 3u);  // handed back intact
  EXPECT_EQ(chain.height(), 0u);

  chain.SetBlockSink(nullptr);  // "disk" recovered
  auto retried = chain.AppendPrepared(&prepared, 2000, "proposer");
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(chain.height(), 1u);
  ASSERT_TRUE(chain.VerifyIntegrity().ok());
  // The handed-back transactions were byte-identical: proofs resolve.
  auto tx0 = ledger::Transaction::MakeSystem("t", "ch", Bytes{0}, 1000, 0);
  auto proof = chain.ProveTransaction(tx0.Id());
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(chain.VerifyTxProof(tx0.Encode(), proof.value()));
}

TEST_F(ConcurrencyTest, RefusedBatchWithDroppedDupInvalidatesStaleRoot) {
  // Regression: a prepared batch carrying (a) a duplicate of an
  // already-anchored record and (b) a precomputed Merkle root, refused by
  // a transient sink failure, must not retry with the stale root. The
  // duplicate was dropped from the handed-back batch, so the old root
  // (built over the original leaf set) no longer matches the surviving
  // leaves — anchoring it would silently corrupt the chain.
  ASSERT_TRUE(store_.Anchor(Rec(0, 2, 2)).ok());

  PreparedBatch batch;
  std::vector<crypto::Digest> leaves;
  for (size_t i = 0; i < 4; ++i) {  // rec-0 duplicates the anchored record
    auto prepared = store_.PrepareRecord(Rec(i, 2, 2),
                                         store_.nonce() + 1 + i,
                                         /*signer=*/nullptr);
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    leaves.push_back(prepared.value().leaf);
    batch.records.push_back(std::move(prepared).value());
  }
  batch.merkle_root = crypto::MerkleTree::BuildFromDigests(leaves).root();

  std::atomic<int> sink_calls{0};
  chain_.SetBlockSink([&](const ledger::Block&) -> Status {
    if (sink_calls.fetch_add(1) == 0) return Status::Internal("blip");
    return Status::OK();
  });

  size_t committed = 0;
  Status first = store_.AnchorPrepared(&batch, &committed);
  ASSERT_FALSE(first.ok());  // chain refused; batch handed back minus dup
  ASSERT_EQ(batch.records.size(), 3u);
  EXPECT_FALSE(batch.merkle_root.has_value());  // stale root invalidated

  Status retried = store_.AnchorPrepared(&batch, &committed);
  ASSERT_TRUE(retried.ok()) << retried.ToString();
  EXPECT_EQ(committed, 3u);
  // The retried block's header root matches its 3 transactions, so the
  // full-chain integrity scan and per-record proofs both hold.
  ASSERT_TRUE(chain_.VerifyIntegrity().ok());
  auto audited = store_.AuditAll();
  ASSERT_TRUE(audited.ok()) << audited.status().ToString();
  EXPECT_EQ(audited.value(), 4u);
}

TEST_F(ConcurrencyTest, RestoreRepublishesEpochFromRestoredState) {
  // Regression: a restore (RebuildFromChain / LoadSnapshot) resets the
  // store's in-memory state but used to leave the previously published
  // epoch in place — readers kept acquiring a snapshot describing
  // pre-restore state. Any restore must republish from what the store now
  // holds, with the epoch counter still climbing (reader monotonicity).
  ASSERT_TRUE(store_.Anchor(Rec(0, 2, 2)).ok());
  ASSERT_TRUE(store_.PublishSnapshot().ok());
  const uint64_t epoch_before = store_.snapshot_epoch();
  ASSERT_TRUE(store_.Anchor(Rec(1, 2, 2)).ok());

  ASSERT_TRUE(store_.RebuildFromChain().ok());
  EXPECT_GT(store_.snapshot_epoch(), epoch_before);
  auto after = store_.AcquireSnapshot();
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->record_count(), 2u);  // the restored state, not epoch 1
  EXPECT_EQ(after->chain_height(), chain_.height());
}

TEST_F(ConcurrencyTest, PipelineRetriesChainRefusalOnce) {
  // First commit attempt fails at the durability sink; the committer's
  // single retry lands the batch — no records lost.
  std::atomic<int> sink_calls{0};
  chain_.SetBlockSink([&](const ledger::Block&) -> Status {
    if (sink_calls.fetch_add(1) == 0) return Status::Internal("blip");
    return Status::OK();
  });
  IngestPipelineOptions options;
  options.shards = 2;
  options.batch_size = 4;
  IngestPipeline pipeline(&store_, options);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(pipeline.Submit(Rec(i, 2, 2)).ok());
  }
  ASSERT_TRUE(pipeline.Close().ok());
  EXPECT_EQ(pipeline.committed(), 4u);
  EXPECT_EQ(pipeline.failed(), 0u);
  EXPECT_EQ(store_.anchored_count(), 4u);
}

// -- ThreadPool building block ----------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  common::ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> sum{0};
  common::WaitGroup wg;
  wg.Add(100);
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&, i] {
      sum.fetch_add(i, std::memory_order_relaxed);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(sum.load(), 5050);
}

}  // namespace
}  // namespace prov
}  // namespace provledger
