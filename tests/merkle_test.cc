// Merkle tree + Merkle forest tests, including parameterized proof sweeps
// over tree sizes (property: every leaf of every size proves and verifies).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/merkle.h"
#include "crypto/merkle_forest.h"

namespace provledger {
namespace crypto {
namespace {

std::vector<Bytes> MakeLeaves(size_t n) {
  std::vector<Bytes> leaves;
  leaves.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(ToBytes("leaf-" + std::to_string(i)));
  }
  return leaves;
}

TEST(MerkleTest, EmptyTreeHasZeroRoot) {
  MerkleTree t = MerkleTree::Build({});
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.root(), ZeroDigest());
  EXPECT_FALSE(t.Prove(0).ok());
}

TEST(MerkleTest, SingleLeafRootIsLeafHash) {
  auto leaves = MakeLeaves(1);
  MerkleTree t = MerkleTree::Build(leaves);
  EXPECT_EQ(t.root(), MerkleTree::LeafHash(leaves[0]));
  auto proof = t.Prove(0);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(proof->steps.empty());
  EXPECT_TRUE(MerkleTree::VerifyProof(t.root(), leaves[0], proof.value()));
}

TEST(MerkleTest, RootChangesWithAnyLeaf) {
  auto leaves = MakeLeaves(8);
  Digest original = MerkleTree::Build(leaves).root();
  for (size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i].push_back(0xFF);
    EXPECT_NE(MerkleTree::Build(mutated).root(), original) << "leaf " << i;
  }
}

TEST(MerkleTest, LeafOrderMatters) {
  auto leaves = MakeLeaves(4);
  Digest original = MerkleTree::Build(leaves).root();
  std::swap(leaves[1], leaves[2]);
  EXPECT_NE(MerkleTree::Build(leaves).root(), original);
}

TEST(MerkleTest, DomainSeparationLeafVsNode) {
  // A leaf whose payload equals the concatenation byte-pattern of two
  // digests must not collide with the interior node over those digests.
  Digest a = Sha256::Hash("a");
  Digest b = Sha256::Hash("b");
  Bytes concat;
  concat.push_back(0x01);
  concat.insert(concat.end(), a.begin(), a.end());
  concat.insert(concat.end(), b.begin(), b.end());
  EXPECT_NE(MerkleTree::LeafHash(concat), MerkleTree::NodeHash(a, b));
}

TEST(MerkleTest, ProofSerializationRoundTrip) {
  auto leaves = MakeLeaves(13);
  MerkleTree t = MerkleTree::Build(leaves);
  auto proof = t.Prove(7);
  ASSERT_TRUE(proof.ok());

  Encoder enc;
  proof->EncodeTo(&enc);
  Decoder dec(enc.buffer());
  auto decoded = MerkleProof::DecodeFrom(&dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(MerkleTree::VerifyProof(t.root(), leaves[7], decoded.value()));
}

// Property sweep: every leaf of every tree size in [1, 33] proves and
// verifies; a proof for one leaf never verifies another payload.
class MerkleSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(MerkleSizeSweep, AllLeavesProveAndVerify) {
  const size_t n = GetParam();
  auto leaves = MakeLeaves(n);
  MerkleTree t = MerkleTree::Build(leaves);
  ASSERT_EQ(t.leaf_count(), n);
  for (size_t i = 0; i < n; ++i) {
    auto proof = t.Prove(i);
    ASSERT_TRUE(proof.ok()) << "leaf " << i;
    EXPECT_TRUE(MerkleTree::VerifyProof(t.root(), leaves[i], proof.value()));
    // Wrong payload must fail.
    EXPECT_FALSE(
        MerkleTree::VerifyProof(t.root(), ToBytes("evil"), proof.value()));
  }
  EXPECT_FALSE(t.Prove(n).ok());
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, MerkleSizeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                           31, 32, 33));

TEST(MerkleTest, TamperedProofStepFails) {
  auto leaves = MakeLeaves(16);
  MerkleTree t = MerkleTree::Build(leaves);
  auto proof = t.Prove(5);
  ASSERT_TRUE(proof.ok());
  proof->steps[1].sibling[0] ^= 0x01;
  EXPECT_FALSE(MerkleTree::VerifyProof(t.root(), leaves[5], proof.value()));
}

TEST(MerkleForestTest, EmptyForest) {
  MerkleForest forest;
  EXPECT_EQ(forest.ForestRoot(), ZeroDigest());
  EXPECT_TRUE(forest.Partitions().empty());
  EXPECT_FALSE(forest.PartitionRoot("case-1").ok());
}

TEST(MerkleForestTest, PerPartitionProofs) {
  MerkleForest forest;
  const std::vector<std::string> cases = {"case-a", "case-b", "case-c"};
  std::vector<std::vector<Bytes>> payloads(cases.size());
  for (size_t c = 0; c < cases.size(); ++c) {
    for (size_t i = 0; i < 5 + c; ++i) {
      Bytes payload = ToBytes(cases[c] + "/evidence-" + std::to_string(i));
      payloads[c].push_back(payload);
      EXPECT_EQ(forest.Append(cases[c], payload), i);
    }
  }
  Digest root = forest.ForestRoot();

  for (size_t c = 0; c < cases.size(); ++c) {
    EXPECT_EQ(forest.PartitionSize(cases[c]), 5 + c);
    for (size_t i = 0; i < payloads[c].size(); ++i) {
      auto proof = forest.Prove(cases[c], i);
      ASSERT_TRUE(proof.ok());
      EXPECT_TRUE(MerkleForest::Verify(root, payloads[c][i], proof.value()));
      EXPECT_FALSE(
          MerkleForest::Verify(root, ToBytes("forged"), proof.value()));
    }
  }
}

TEST(MerkleForestTest, AppendChangesForestRoot) {
  MerkleForest forest;
  forest.Append("case-a", ToBytes("e1"));
  Digest r1 = forest.ForestRoot();
  forest.Append("case-b", ToBytes("e2"));
  Digest r2 = forest.ForestRoot();
  EXPECT_NE(r1, r2);
  // Old proofs are against old roots; new root invalidates them (append-only
  // forests require proof refresh, as in ForensiBlock).
  forest.Append("case-a", ToBytes("e3"));
  EXPECT_NE(forest.ForestRoot(), r2);
}

TEST(MerkleForestTest, ProofBoundToPartition) {
  MerkleForest forest;
  Bytes shared = ToBytes("identical payload");
  forest.Append("case-a", shared);
  forest.Append("case-b", shared);
  Digest root = forest.ForestRoot();
  auto proof_a = forest.Prove("case-a", 0);
  ASSERT_TRUE(proof_a.ok());
  EXPECT_TRUE(MerkleForest::Verify(root, shared, proof_a.value()));
  EXPECT_FALSE(forest.Prove("case-a", 1).ok());
  EXPECT_FALSE(forest.Prove("case-z", 0).ok());
}

}  // namespace
}  // namespace crypto
}  // namespace provledger
