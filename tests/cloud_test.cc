// RQ1 cloud tests: operation hooks, access control, auditor verification,
// privacy mode, tamper detection across the full ProvChain-style loop.

#include <gtest/gtest.h>

#include "cloud/cloud_store.h"

namespace provledger {
namespace cloud {
namespace {

class CloudTest : public ::testing::Test {
 protected:
  CloudTest()
      : clock_(0), store_(&chain_, &clock_), cloud_(&store_, &content_, &clock_),
        auditor_(&store_) {}
  ledger::Blockchain chain_;
  SimClock clock_;
  prov::ProvenanceStore store_;
  storage::ContentStore content_;
  CloudStore cloud_;
  CloudAuditor auditor_;
};

TEST_F(CloudTest, EveryOperationAnchorsARecord) {
  ASSERT_TRUE(cloud_.CreateFile("alice", "report.doc", ToBytes("v1")).ok());
  ASSERT_TRUE(cloud_.UpdateFile("alice", "report.doc", ToBytes("v2")).ok());
  ASSERT_TRUE(cloud_.ShareFile("alice", "report.doc", "bob").ok());
  ASSERT_TRUE(cloud_.ReadFile("bob", "report.doc").ok());
  ASSERT_TRUE(cloud_.DeleteFile("alice", "report.doc").ok());

  auto history = cloud_.FileHistory("report.doc");
  ASSERT_EQ(history.size(), 5u);
  EXPECT_EQ(history[0].operation, "create");
  EXPECT_EQ(history[1].operation, "update");
  EXPECT_EQ(history[2].operation, "share:bob");
  EXPECT_EQ(history[3].operation, "read");
  EXPECT_EQ(history[4].operation, "delete");
  EXPECT_EQ(cloud_.operation_count(), 5u);
  EXPECT_EQ(chain_.height(), 5u);
}

TEST_F(CloudTest, VersionsTracked) {
  ASSERT_TRUE(cloud_.CreateFile("alice", "f", ToBytes("v1")).ok());
  ASSERT_TRUE(cloud_.UpdateFile("alice", "f", ToBytes("v2")).ok());
  ASSERT_TRUE(cloud_.UpdateFile("alice", "f", ToBytes("v3")).ok());
  auto file = cloud_.GetFile("f");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->version, 3u);
  auto history = cloud_.FileHistory("f");
  EXPECT_EQ(history.back().fields.at("version"), "3");
  // Latest content is retrievable and correct.
  auto content = cloud_.ReadFile("alice", "f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(BytesToString(content.value()), "v3");
}

TEST_F(CloudTest, AccessControlAndDeniedAudit) {
  ASSERT_TRUE(cloud_.CreateFile("alice", "secret", ToBytes("x")).ok());
  EXPECT_TRUE(cloud_.ReadFile("eve", "secret").status().IsPermissionDenied());
  EXPECT_TRUE(
      cloud_.UpdateFile("eve", "secret", ToBytes("y")).IsPermissionDenied());
  EXPECT_TRUE(cloud_.ShareFile("eve", "secret", "eve").IsPermissionDenied());
  EXPECT_TRUE(cloud_.DeleteFile("eve", "secret").IsPermissionDenied());
  // The denied read attempt itself left a provenance trace.
  bool denied_traced = false;
  for (const auto& rec : cloud_.FileHistory("secret")) {
    if (rec.operation == "read-denied" && rec.agent == "eve") {
      denied_traced = true;
    }
  }
  EXPECT_TRUE(denied_traced);
}

TEST_F(CloudTest, SharingGrantsAccess) {
  ASSERT_TRUE(cloud_.CreateFile("alice", "doc", ToBytes("x")).ok());
  ASSERT_TRUE(cloud_.ShareFile("alice", "doc", "bob").ok());
  EXPECT_TRUE(cloud_.ReadFile("bob", "doc").ok());
  EXPECT_TRUE(cloud_.UpdateFile("bob", "doc", ToBytes("y")).ok());
  // Sharing does not grant delete (owner-only).
  EXPECT_TRUE(cloud_.DeleteFile("bob", "doc").IsPermissionDenied());
}

TEST_F(CloudTest, LifecycleGuards) {
  ASSERT_TRUE(cloud_.CreateFile("alice", "f", ToBytes("x")).ok());
  EXPECT_TRUE(cloud_.CreateFile("bob", "f", ToBytes("y")).IsAlreadyExists());
  ASSERT_TRUE(cloud_.DeleteFile("alice", "f").ok());
  EXPECT_TRUE(cloud_.ReadFile("alice", "f").status().IsNotFound());
  // Deleted name can be recreated (a new lineage).
  EXPECT_TRUE(cloud_.CreateFile("carol", "f", ToBytes("z")).ok());
}

TEST_F(CloudTest, AuditorVerifiesHonestHistory) {
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cloud_
                    .CreateFile("alice", "file-" + std::to_string(i),
                                ToBytes("content"))
                    .ok());
  }
  auto per_file = auditor_.AuditFile("file-2");
  ASSERT_TRUE(per_file.ok());
  EXPECT_EQ(per_file.value(), 1u);
  auto all = auditor_.AuditEverything();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value(), 4u);
}

TEST_F(CloudTest, AuditorDetectsLedgerTampering) {
  ASSERT_TRUE(cloud_.CreateFile("alice", "f", ToBytes("v1")).ok());
  ASSERT_TRUE(cloud_.UpdateFile("alice", "f", ToBytes("v2")).ok());
  ASSERT_TRUE(chain_.TamperForTesting(1, 0, 0x42).ok());
  EXPECT_FALSE(auditor_.AuditEverything().ok());
}

TEST_F(CloudTest, PrivacyModeHidesUserIdentity) {
  // ProvChain's privacy property: on-chain entries cannot be correlated to
  // the cloud user.
  prov::ProvenanceStoreOptions opts;
  opts.hash_agent_ids = true;
  prov::ProvenanceStore anon_store(&chain_, &clock_, opts);
  CloudStore anon_cloud(&anon_store, &content_, &clock_);
  ASSERT_TRUE(anon_cloud.CreateFile("alice", "private.doc", ToBytes("x")).ok());

  auto block = chain_.GetBlock(chain_.height());
  ASSERT_TRUE(block.ok());
  auto rec = prov::ProvenanceRecord::Decode(block->transactions[0].payload);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->agent.rfind("anon-", 0), 0u);
  EXPECT_EQ(rec->agent.find("alice"), std::string::npos);
}

TEST_F(CloudTest, ContentIntegrityOnRead) {
  ASSERT_TRUE(cloud_.CreateFile("alice", "f", ToBytes("payload")).ok());
  auto file = cloud_.GetFile("f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(content_.CorruptForTesting(file->content_cid));
  EXPECT_TRUE(cloud_.ReadFile("alice", "f").status().IsCorruption());
}

}  // namespace
}  // namespace cloud
}  // namespace provledger
