// Pedersen commitment + ZK range proof tests: homomorphism, completeness,
// soundness probes (forged/tampered proofs), and interval proofs.

#include <gtest/gtest.h>

#include "crypto/pedersen.h"

namespace provledger {
namespace crypto {
namespace {

U256 Scalar(uint64_t v) { return U256::FromU64(v); }

TEST(PedersenTest, CommitIsDeterministic) {
  auto c1 = PedersenCommit(Scalar(42), Scalar(777), PedersenParams::Default());
  auto c2 = PedersenCommit(Scalar(42), Scalar(777), PedersenParams::Default());
  EXPECT_EQ(c1, c2);
}

TEST(PedersenTest, HidingAcrossBlindings) {
  auto c1 = PedersenCommit(Scalar(42), Scalar(1), PedersenParams::Default());
  auto c2 = PedersenCommit(Scalar(42), Scalar(2), PedersenParams::Default());
  EXPECT_FALSE(c1 == c2);
}

TEST(PedersenTest, AdditiveHomomorphism) {
  const auto& params = PedersenParams::Default();
  // C(a, r1) + C(b, r2) == C(a+b, r1+r2)
  auto ca = PedersenCommit(Scalar(30), Scalar(11), params);
  auto cb = PedersenCommit(Scalar(12), Scalar(22), params);
  auto sum = EcAdd(JacobianPoint::FromAffine(ca), JacobianPoint::FromAffine(cb))
                 .ToAffine();
  auto expected = PedersenCommit(Scalar(42), Scalar(33), params);
  EXPECT_EQ(sum, expected);
}

TEST(ZkrpTest, ProveAndVerifyInRange) {
  auto proof = Zkrp::Prove(/*value=*/200, Scalar(9999), /*bits=*/8,
                           ToBytes("nonce-1"));
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(Zkrp::Verify(proof.value()));
  EXPECT_EQ(proof->bit_commitments.size(), 8u);
}

TEST(ZkrpTest, BoundaryValues) {
  for (uint64_t v : {0ULL, 1ULL, 254ULL, 255ULL}) {
    auto proof = Zkrp::Prove(v, Scalar(5), 8, ToBytes("nonce-b"));
    ASSERT_TRUE(proof.ok()) << v;
    EXPECT_TRUE(Zkrp::Verify(proof.value())) << v;
  }
}

TEST(ZkrpTest, OutOfRangeValueRejectedAtProve) {
  EXPECT_FALSE(Zkrp::Prove(256, Scalar(5), 8, ToBytes("n")).ok());
  EXPECT_FALSE(Zkrp::Prove(5, Scalar(5), 0, ToBytes("n")).ok());
  EXPECT_FALSE(Zkrp::Prove(5, Scalar(5), 65, ToBytes("n")).ok());
}

TEST(ZkrpTest, TamperedBitCommitmentFails) {
  auto proof = Zkrp::Prove(77, Scalar(4242), 8, ToBytes("nonce-2"));
  ASSERT_TRUE(proof.ok());
  RangeProof forged = proof.value();
  // Swap two bit commitments: recomposition must break.
  std::swap(forged.bit_commitments[0], forged.bit_commitments[1]);
  std::swap(forged.bit_proofs[0], forged.bit_proofs[1]);
  EXPECT_FALSE(Zkrp::Verify(forged));
}

TEST(ZkrpTest, TamperedResponseFails) {
  auto proof = Zkrp::Prove(77, Scalar(4242), 8, ToBytes("nonce-3"));
  ASSERT_TRUE(proof.ok());
  RangeProof forged = proof.value();
  forged.bit_proofs[3].s0 = AddMod(forged.bit_proofs[3].s0, U256::One(),
                                   OrderN());
  EXPECT_FALSE(Zkrp::Verify(forged));
}

TEST(ZkrpTest, TamperedChallengeSplitFails) {
  auto proof = Zkrp::Prove(77, Scalar(4242), 8, ToBytes("nonce-4"));
  ASSERT_TRUE(proof.ok());
  RangeProof forged = proof.value();
  forged.bit_proofs[0].e0 = AddMod(forged.bit_proofs[0].e0, U256::One(),
                                   OrderN());
  EXPECT_FALSE(Zkrp::Verify(forged));
}

TEST(ZkrpTest, SwappedTopCommitmentFails) {
  auto p1 = Zkrp::Prove(10, Scalar(1), 8, ToBytes("n1"));
  auto p2 = Zkrp::Prove(20, Scalar(2), 8, ToBytes("n2"));
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  RangeProof mixed = p1.value();
  mixed.commitment = p2->commitment;
  EXPECT_FALSE(Zkrp::Verify(mixed));
}

TEST(ZkrpTest, WideRange) {
  auto proof = Zkrp::Prove(1'000'000, Scalar(31337), 32, ToBytes("wide"));
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(Zkrp::Verify(proof.value()));
  EXPECT_GT(proof->EncodedSize(), 32u * 33u);
}

TEST(ZkrpIntervalTest, ValueInsideIntervalVerifies) {
  // PrivChain's scenario: prove a temperature stayed within [2, 8] °C
  // without revealing the reading.
  auto proof = Zkrp::ProveInterval(/*value=*/5, /*lo=*/2, /*hi=*/8,
                                   Scalar(5551), /*bits=*/8,
                                   ToBytes("cold-chain"));
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(Zkrp::VerifyInterval(proof.value()));
}

TEST(ZkrpIntervalTest, BoundsInclusive) {
  for (uint64_t v : {2ULL, 8ULL}) {
    auto proof = Zkrp::ProveInterval(v, 2, 8, Scalar(71), 8, ToBytes("edge"));
    ASSERT_TRUE(proof.ok()) << v;
    EXPECT_TRUE(Zkrp::VerifyInterval(proof.value())) << v;
  }
}

TEST(ZkrpIntervalTest, OutsideIntervalRejectedAtProve) {
  EXPECT_FALSE(Zkrp::ProveInterval(1, 2, 8, Scalar(7), 8, ToBytes("x")).ok());
  EXPECT_FALSE(Zkrp::ProveInterval(9, 2, 8, Scalar(7), 8, ToBytes("x")).ok());
  EXPECT_FALSE(Zkrp::ProveInterval(5, 8, 2, Scalar(7), 8, ToBytes("x")).ok());
}

TEST(ZkrpIntervalTest, MismatchedBoundsFailVerify) {
  auto proof = Zkrp::ProveInterval(5, 2, 8, Scalar(5551), 8, ToBytes("cc"));
  ASSERT_TRUE(proof.ok());
  auto forged = proof.value();
  forged.lo = 6;  // claim a tighter bound than was proven
  EXPECT_FALSE(Zkrp::VerifyInterval(forged));
}

TEST(ZkrpIntervalTest, ForeignCommitmentFailsVerify) {
  auto proof = Zkrp::ProveInterval(5, 2, 8, Scalar(5551), 8, ToBytes("cc"));
  ASSERT_TRUE(proof.ok());
  auto forged = proof.value();
  forged.value_commitment =
      PedersenCommit(Scalar(100), Scalar(1), PedersenParams::Default());
  EXPECT_FALSE(Zkrp::VerifyInterval(forged));
}

}  // namespace
}  // namespace crypto
}  // namespace provledger
