// Fuzz-corpus regression replay (ctest label: fuzz): every file checked in
// under fuzz/corpus/ — seeds and crash-* fixtures alike — is fed byte-exactly
// through its harness body on every test run. A crasher that once broke a
// decoder stays fatal here forever: the harness aborts on any invariant
// violation, and the sanitizer jobs in scripts/check_build.sh run this same
// binary under ASan+UBSan.
//
// The harness bodies are compiled in directly (PROVLEDGER_FUZZ_COMBINED
// suppresses their per-file libFuzzer entry points), so this is the exact
// code the standalone fuzz_* executables run.

#include <gtest/gtest.h>

#include <dirent.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/fileio.h"
#include "harnesses.h"

#ifndef PROVLEDGER_FUZZ_CORPUS_DIR
#error "PROVLEDGER_FUZZ_CORPUS_DIR must point at the checked-in corpus"
#endif

namespace provledger {
namespace {

using FuzzBody = void (*)(const uint8_t*, size_t);

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (dirent* entry = ::readdir(d)) {
    if (entry->d_name[0] == '.') continue;
    names.emplace_back(entry->d_name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

/// Replays every file in fuzz/corpus/<harness>/ through `body`. Requires a
/// non-empty corpus: an empty directory means the generator and the test
/// have drifted apart, which should fail loudly rather than pass vacuously.
void ReplayCorpus(const std::string& harness, FuzzBody body) {
  const std::string dir =
      std::string(PROVLEDGER_FUZZ_CORPUS_DIR) + "/" + harness;
  const std::vector<std::string> files = ListDir(dir);
  ASSERT_FALSE(files.empty()) << "no corpus seeds in " << dir
                              << " (run fuzz_make_corpus)";
  for (const std::string& name : files) {
    SCOPED_TRACE(dir + "/" + name);
    auto bytes = ReadFileToBytes(dir + "/" + name);
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    body(bytes.value().data(), bytes.value().size());
  }
}

TEST(FuzzRegressionTest, ColumnarBatch) {
  ReplayCorpus("columnar_batch", fuzz::FuzzColumnarBatch);
}

TEST(FuzzRegressionTest, ColumnarBlock) {
  ReplayCorpus("columnar_block", fuzz::FuzzColumnarBlock);
}

TEST(FuzzRegressionTest, Record) { ReplayCorpus("record", fuzz::FuzzRecord); }

TEST(FuzzRegressionTest, Compress) {
  ReplayCorpus("compress", fuzz::FuzzCompress);
}

TEST(FuzzRegressionTest, FramedLog) {
  ReplayCorpus("framed_log", fuzz::FuzzFramedLog);
}

TEST(FuzzRegressionTest, KvSegment) {
  ReplayCorpus("kv_segment", fuzz::FuzzKvSegment);
}

TEST(FuzzRegressionTest, ChainLog) {
  ReplayCorpus("chain_log", fuzz::FuzzChainLog);
}

TEST(FuzzRegressionTest, Replication) {
  ReplayCorpus("replication", fuzz::FuzzReplication);
}

// Degenerate inputs every harness must shrug off, independent of corpus
// contents.
TEST(FuzzRegressionTest, DegenerateInputsOnEveryHarness) {
  const std::pair<const char*, FuzzBody> harnesses[] = {
      {"columnar_batch", fuzz::FuzzColumnarBatch},
      {"columnar_block", fuzz::FuzzColumnarBlock},
      {"record", fuzz::FuzzRecord},
      {"compress", fuzz::FuzzCompress},
      {"framed_log", fuzz::FuzzFramedLog},
      {"kv_segment", fuzz::FuzzKvSegment},
      {"chain_log", fuzz::FuzzChainLog},
      {"replication", fuzz::FuzzReplication},
  };
  const Bytes zeros(64, 0x00);
  const Bytes ones(64, 0xFF);
  for (const auto& [name, body] : harnesses) {
    SCOPED_TRACE(name);
    body(nullptr, 0);
    body(zeros.data(), zeros.size());
    body(ones.data(), ones.size());
  }
}

}  // namespace
}  // namespace provledger
