// Decoder-hardening tests (ctest label: encoding): every fix from the
// untrusted-bytes audit is pinned here. The shared invariant: a count or
// size prefix is attacker data — a decoder must reject any value the
// remaining payload cannot possibly satisfy *before* sizing allocations
// off it, and must reject non-canonical bytes (duplicate or out-of-order
// field keys, trailing wire garbage) that no encoder produces.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/codec.h"
#include "common/compress.h"
#include "crypto/sha256.h"
#include "ledger/block.h"
#include "network/sim_network.h"
#include "prov/record.h"
#include "replication/replicated_node.h"

namespace provledger {
namespace {

// ---------------------------------------------------------------------------
// ProvenanceRecord::Decode count and canonicality bounds
// ---------------------------------------------------------------------------

/// Encoder pre-loaded with the fixed record prefix (id through timestamp),
/// positioned where the inputs count goes.
Encoder RecordPrefix() {
  Encoder enc;
  enc.PutString("rec-1");
  enc.PutU8(0);  // Domain::kGeneric
  enc.PutString("op");
  enc.PutString("subject");
  enc.PutString("agent");
  enc.PutI64(1234);
  return enc;
}

void FinishRecord(Encoder* enc) {
  enc->PutRaw(crypto::DigestToBytes(crypto::ZeroDigest()));
}

TEST(RecordHardeningTest, RejectsInputsCountBeyondPayload) {
  Encoder enc = RecordPrefix();
  enc.PutU32(0xFFFFFFFFu);  // 4 billion inputs, zero bytes behind them
  auto decoded = prov::ProvenanceRecord::Decode(enc.TakeBuffer());
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status().ToString();
}

TEST(RecordHardeningTest, RejectsOutputsCountBeyondPayload) {
  Encoder enc = RecordPrefix();
  enc.PutU32(0);            // no inputs
  enc.PutU32(0x10000000u);  // outputs count no payload could satisfy
  auto decoded = prov::ProvenanceRecord::Decode(enc.TakeBuffer());
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status().ToString();
}

TEST(RecordHardeningTest, RejectsFieldsCountBeyondPayload) {
  Encoder enc = RecordPrefix();
  enc.PutU32(0);
  enc.PutU32(0);
  enc.PutU32(0x10000000u);  // fields count: each needs two string prefixes
  auto decoded = prov::ProvenanceRecord::Decode(enc.TakeBuffer());
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status().ToString();
}

TEST(RecordHardeningTest, RejectsDuplicateFieldKeys) {
  Encoder enc = RecordPrefix();
  enc.PutU32(0);
  enc.PutU32(0);
  enc.PutU32(2);
  enc.PutString("k");
  enc.PutString("v1");
  enc.PutString("k");  // second "k": two byte strings, one decoded record
  enc.PutString("v2");
  FinishRecord(&enc);
  auto decoded = prov::ProvenanceRecord::Decode(enc.TakeBuffer());
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status().ToString();
}

TEST(RecordHardeningTest, RejectsOutOfOrderFieldKeys) {
  Encoder enc = RecordPrefix();
  enc.PutU32(0);
  enc.PutU32(0);
  enc.PutU32(2);
  enc.PutString("b");
  enc.PutString("v1");
  enc.PutString("a");  // std::map would silently re-sort this on re-encode
  enc.PutString("v2");
  FinishRecord(&enc);
  auto decoded = prov::ProvenanceRecord::Decode(enc.TakeBuffer());
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status().ToString();
}

TEST(RecordHardeningTest, DecodeIsCanonicalOnMultiFieldRecords) {
  prov::ProvenanceRecord rec;
  rec.record_id = "rec-9";
  rec.operation = "create";
  rec.subject = "s";
  rec.agent = "a";
  rec.timestamp = 77;
  rec.inputs = {"i1", "i2"};
  rec.outputs = {"o1"};
  rec.fields = {{"a", "1"}, {"b", "2"}, {"c", "3"}};
  const Bytes encoded = rec.Encode();
  auto decoded = prov::ProvenanceRecord::Decode(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().Encode(), encoded);
  EXPECT_EQ(decoded.value().Hash(), rec.Hash());
}

// ---------------------------------------------------------------------------
// Block::Decode transaction-count bound
// ---------------------------------------------------------------------------

TEST(BlockHardeningTest, RejectsTxCountBeyondPayload) {
  ledger::Block genesisless = ledger::Block::Make(
      1, crypto::ZeroDigest(), {}, 5, "proposer");
  Encoder enc;
  genesisless.header.EncodeTo(&enc);
  enc.PutU32(0xFFFFFFFFu);  // valid header, absurd transaction count
  auto decoded = ledger::Block::Decode(enc.TakeBuffer());
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status().ToString();
}

TEST(BlockHardeningTest, RoundTripsRealBlocks) {
  std::vector<ledger::Transaction> txs;
  for (uint64_t i = 0; i < 3; ++i) {
    txs.push_back(ledger::Transaction::MakeSystem(
        "t", "ch", ToBytes("payload-" + std::to_string(i)), 10, i));
  }
  ledger::Block block = ledger::Block::Make(1, crypto::ZeroDigest(),
                                            std::move(txs), 5, "proposer");
  auto decoded = ledger::Block::Decode(block.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().Encode(), block.Encode());
}

// ---------------------------------------------------------------------------
// LzDecompress declared-size bound
// ---------------------------------------------------------------------------

TEST(CompressHardeningTest, RejectsImplausibleDeclaredRawSize) {
  // 4-byte stream, ~4 GiB declared: rejected before any allocation. The
  // densest valid stream expands 2 input bytes into at most 131 output
  // bytes, so this ratio is unreachable.
  const Bytes tiny = {0x03, 'a', 'b', 'c'};
  auto out = LzDecompress(tiny, 0xFFFFFFFFu);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsCorruption()) << out.status().ToString();
}

TEST(CompressHardeningTest, MaxExpansionStreamsStillDecode) {
  // Highly repetitive input sits near the real expansion ceiling; the
  // plausibility bound must not reject it.
  Bytes raw(8192, 0xAB);
  const Bytes compressed = LzCompress(raw);
  ASSERT_LT(compressed.size(), raw.size());
  auto back = LzDecompress(compressed, raw.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), raw);
}

TEST(CompressHardeningTest, IncompressibleRoundTripUnaffected) {
  Bytes raw;
  uint32_t x = 0x12345678;
  for (int i = 0; i < 300; ++i) {
    x = x * 1664525u + 1013904223u;  // LCG: no repeats for LZ to find
    raw.push_back(static_cast<uint8_t>(x >> 24));
  }
  auto back = LzDecompress(LzCompress(raw), raw.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), raw);
}

// ---------------------------------------------------------------------------
// Replication wire: trailing garbage is rejected, not ignored
// ---------------------------------------------------------------------------

struct WireFixture {
  SimClock clock;
  network::SimNetwork net{&clock, /*seed=*/3};
  std::unique_ptr<replication::ReplicatedNode> node;
  network::NodeId node_id = 0;
  network::NodeId peer_id = 0;
  std::vector<network::Message> peer_inbox;

  WireFixture() {
    replication::ReplicatedNodeOptions options;
    options.name = "hardening-node";
    node = replication::ReplicatedNode::Create(&clock, options).value();
    node_id = net.AddNode(
        [this](const network::Message& m) { node->OnMessage(m); });
    peer_id = net.AddNode(
        [this](const network::Message& m) { peer_inbox.push_back(m); });
    node->BindNetwork(&net, node_id);
  }

  void Deliver(const std::string& type, Bytes payload) {
    net.Send(peer_id, node_id, type, std::move(payload));
    net.RunUntilIdle();
  }
};

TEST(ReplicationHardeningTest, StatusWithTrailingBytesIsDropped) {
  WireFixture fix;
  Encoder enc;
  enc.PutU8(1);  // probe: a well-formed frame would earn a status reply
  enc.PutU64(999);  // far ahead: a well-formed frame would trigger a pull
  enc.PutRaw(crypto::DigestToBytes(crypto::ZeroDigest()));
  enc.PutRaw(ToBytes("garbage"));
  fix.Deliver("repl/status", enc.TakeBuffer());
  EXPECT_TRUE(fix.peer_inbox.empty());
  EXPECT_EQ(fix.node->metrics().pulls_sent, 0u);
}

TEST(ReplicationHardeningTest, PullWithTrailingBytesIsDropped) {
  WireFixture fix;
  Encoder enc;
  enc.PutU64(1);
  enc.PutU8(0x00);
  fix.Deliver("repl/pull", enc.TakeBuffer());
  EXPECT_TRUE(fix.peer_inbox.empty());  // no repl/blocks answer

  // The same frame without the stray byte is served.
  Encoder good;
  good.PutU64(1);
  fix.Deliver("repl/pull", good.TakeBuffer());
  ASSERT_EQ(fix.peer_inbox.size(), 1u);
  EXPECT_EQ(fix.peer_inbox[0].type, "repl/blocks");
}

TEST(ReplicationHardeningTest, BlocksWithTrailingBytesIsDropped) {
  WireFixture fix;
  Encoder enc;
  enc.PutU64(1);
  enc.PutU32(0);
  enc.PutRaw(ToBytes("trailing-garbage"));
  fix.Deliver("repl/blocks", enc.TakeBuffer());
  EXPECT_EQ(fix.node->metrics().blocks_applied, 0u);
  EXPECT_EQ(fix.node->metrics().blocks_rejected, 0u);
  EXPECT_EQ(fix.node->height(), 0u);
}

TEST(ReplicationHardeningTest, BlocksCountBeyondPayloadIsDropped) {
  WireFixture fix;
  Encoder enc;
  enc.PutU64(1);
  enc.PutU32(0xFFFFFFFFu);  // list count the payload cannot hold
  fix.Deliver("repl/blocks", enc.TakeBuffer());
  EXPECT_EQ(fix.node->metrics().blocks_applied, 0u);
  EXPECT_EQ(fix.node->height(), 0u);
}

TEST(ReplicationHardeningTest, TruncatedBlocksListIsDroppedWhole) {
  // A list that dies mid-entry must not half-apply: previously the loop
  // applied what it had parsed and silently stopped at the tear.
  WireFixture fix;
  Encoder enc;
  enc.PutU64(1);
  enc.PutU32(2);
  enc.PutBytes(ToBytes("not-a-block"));
  // second entry missing entirely
  fix.Deliver("repl/blocks", enc.TakeBuffer());
  EXPECT_EQ(fix.node->metrics().blocks_rejected, 0u)
      << "truncated frame must be dropped before any entry is examined";
}

}  // namespace
}  // namespace provledger
