// Healthcare tests: consent-gated EHR lifecycle, HIPAA-style denial audit,
// break-glass emergency access, searchable-index retrieval.

#include <gtest/gtest.h>

#include "domains/healthcare/ehr.h"

namespace provledger {
namespace healthcare {
namespace {

class EhrTest : public ::testing::Test {
 protected:
  EhrTest() : clock_(0), store_(&chain_, &clock_), ehr_(&store_, &content_, &clock_) {
    EXPECT_TRUE(ehr_.RegisterPatient("patient-1").ok());
    EXPECT_TRUE(ehr_.rbac()->AssignRole("dr-smith", "doctor").ok());
    EXPECT_TRUE(ehr_.rbac()->AssignRole("nurse-kim", "nurse").ok());
    EXPECT_TRUE(ehr_.rbac()->AssignRole("dr-jones", "doctor").ok());
  }

  std::string AddTreatmentRecord() {
    EXPECT_TRUE(ehr_.GrantConsent("patient-1", "dr-smith",
                                  {"treatment", "search"})
                    .ok());
    auto id = ehr_.AddRecord("patient-1", "dr-smith",
                             "bp 120/80, prescribed statins",
                             {"cardiology", "statins"});
    EXPECT_TRUE(id.ok());
    return id.value_or("");
  }

  ledger::Blockchain chain_;
  SimClock clock_;
  prov::ProvenanceStore store_;
  storage::ContentStore content_;
  EhrSystem ehr_;
};

TEST_F(EhrTest, WriteRequiresRoleAndConsent) {
  // No consent yet: even a doctor cannot write.
  EXPECT_TRUE(ehr_.AddRecord("patient-1", "dr-smith", "note", {})
                  .status()
                  .IsPermissionDenied());
  // A nurse (no ehr:write) cannot write even with consent.
  ASSERT_TRUE(
      ehr_.GrantConsent("patient-1", "nurse-kim", {"treatment"}).ok());
  EXPECT_TRUE(ehr_.AddRecord("patient-1", "nurse-kim", "note", {})
                  .status()
                  .IsPermissionDenied());
  // Doctor with consent succeeds.
  std::string id = AddTreatmentRecord();
  EXPECT_FALSE(id.empty());
}

TEST_F(EhrTest, ReadGatedByConsentAndPurpose) {
  std::string id = AddTreatmentRecord();
  // The treating doctor reads for treatment.
  auto note = ehr_.ReadRecord(id, "dr-smith", "treatment");
  ASSERT_TRUE(note.ok());
  EXPECT_NE(note->find("statins"), std::string::npos);

  // Another doctor without consent is denied.
  EXPECT_TRUE(ehr_.ReadRecord(id, "dr-jones", "treatment")
                  .status()
                  .IsPermissionDenied());
  // Purpose matters: consent for treatment does not allow research reads.
  EXPECT_TRUE(ehr_.ReadRecord(id, "dr-smith", "research")
                  .status()
                  .IsPermissionDenied());
  // The patient can always read their own record... if credentialed.
  EXPECT_TRUE(ehr_.rbac()->AssignRole("patient-1", "nurse").ok());
  EXPECT_TRUE(ehr_.ReadRecord(id, "patient-1", "self").ok());
}

TEST_F(EhrTest, ConsentRevocationTakesEffect) {
  std::string id = AddTreatmentRecord();
  ASSERT_TRUE(ehr_.ReadRecord(id, "dr-smith", "treatment").ok());
  ASSERT_TRUE(ehr_.RevokeConsent("patient-1", "dr-smith").ok());
  EXPECT_TRUE(ehr_.ReadRecord(id, "dr-smith", "treatment")
                  .status()
                  .IsPermissionDenied());
  EXPECT_TRUE(ehr_.RevokeConsent("patient-1", "dr-smith").IsNotFound());
}

TEST_F(EhrTest, EmergencyBreakGlassIsAuditedLoudly) {
  std::string id = AddTreatmentRecord();
  // dr-jones has no consent but invokes emergency access.
  auto note = ehr_.ReadRecord(id, "dr-jones", "treatment",
                              /*emergency=*/true);
  ASSERT_TRUE(note.ok());

  bool flagged = false;
  for (const auto& rec : ehr_.AccessAudit("patient-1")) {
    if (rec.agent == "dr-jones" &&
        rec.fields.count("outcome") &&
        rec.fields.at("outcome") == "ok:EMERGENCY") {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
  // Role still required even in emergencies.
  EXPECT_TRUE(ehr_.ReadRecord(id, "random-person", "treatment", true)
                  .status()
                  .IsPermissionDenied());
}

TEST_F(EhrTest, DeniedAccessesAreAudited) {
  std::string id = AddTreatmentRecord();
  // The denial status itself is not under test — only its audit record.
  (void)ehr_.ReadRecord(id, "dr-jones", "treatment");
  bool denied_audited = false;
  for (const auto& rec : ehr_.AccessAudit("patient-1")) {
    if (rec.agent == "dr-jones" && rec.fields.count("outcome") &&
        rec.fields.at("outcome") == "denied:consent") {
      denied_audited = true;
    }
  }
  EXPECT_TRUE(denied_audited);
}

// Regression: a denial whose audit write fails must fail CLOSED — access
// stays denied AND the caller learns the audit trail is broken (Internal),
// instead of the audit failure being silently swallowed and the denial
// looking like any other. Audit ids are "ehr-audit-<seq>", so anchoring
// records under the upcoming ids directly into the store makes every
// subsequent audit write collide with AlreadyExists.
TEST_F(EhrTest, FailedDenialAuditFailsClosed) {
  std::string id = AddTreatmentRecord();
  for (int k = 1; k <= 32; ++k) {
    prov::ProvenanceRecord rec;
    rec.record_id = "ehr-audit-" + std::to_string(k);
    rec.domain = prov::Domain::kHealthcare;
    rec.operation = "squat";
    rec.subject = "patient-1";
    rec.agent = "test";
    rec.timestamp = clock_.NowMicros();
    Status anchored = store_.Anchor(rec);
    // Low ids were already used by real audits: AlreadyExists is expected.
    ASSERT_TRUE(anchored.ok() || anchored.IsAlreadyExists());
  }
  // dr-jones holds the doctor role but no consent: this is a denial, and
  // its audit write now cannot land.
  auto denied = ehr_.ReadRecord(id, "dr-jones", "treatment");
  EXPECT_TRUE(denied.status().IsInternal());
  EXPECT_NE(denied.status().message().find("audit write failed"),
            std::string::npos);
}

TEST_F(EhrTest, SearchableIndexWithDelegation) {
  std::string id = AddTreatmentRecord();
  // The patient searches their own records.
  auto hits = ehr_.Search("patient-1", "patient-1", "cardiology");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0], id);
  // Unknown keyword -> empty.
  auto none = ehr_.Search("patient-1", "patient-1", "oncology");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  // dr-smith holds "search" consent; dr-jones does not.
  EXPECT_TRUE(ehr_.Search("patient-1", "dr-smith", "statins").ok());
  EXPECT_TRUE(ehr_.Search("patient-1", "dr-jones", "statins")
                  .status()
                  .IsPermissionDenied());
}

TEST_F(EhrTest, ContentOffChainHashOnChain) {
  std::string id = AddTreatmentRecord();
  auto rec = store_.GetRecord(id);
  ASSERT_TRUE(rec.ok());
  // The ledger record does not contain the note text, only its hash.
  EXPECT_NE(rec->payload_hash, crypto::ZeroDigest());
  EXPECT_TRUE(content_.Has(rec->payload_hash));
  // Corrupting the off-chain store is caught at read time.
  ASSERT_TRUE(content_.CorruptForTesting(rec->payload_hash));
  EXPECT_TRUE(ehr_.ReadRecord(id, "dr-smith", "treatment")
                  .status()
                  .IsCorruption());
}

TEST_F(EhrTest, PatientRegistryGuards) {
  EXPECT_TRUE(ehr_.RegisterPatient("patient-1").IsAlreadyExists());
  EXPECT_TRUE(ehr_.GrantConsent("ghost", "dr-smith", {"treatment"})
                  .IsNotFound());
  EXPECT_TRUE(ehr_.AddRecord("ghost", "dr-smith", "n", {})
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace healthcare
}  // namespace provledger
