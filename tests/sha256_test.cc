// SHA-256 / HMAC-SHA256 against FIPS-180 and RFC 4231 vectors, plus
// incremental-update equivalence properties.

#include <gtest/gtest.h>

#include "crypto/sha256.h"

namespace provledger {
namespace crypto {
namespace {

TEST(Sha256Test, EmptyStringVector) {
  EXPECT_EQ(DigestHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, AbcVector) {
  EXPECT_EQ(DigestHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockVector) {
  EXPECT_EQ(DigestHex(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAVector) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg =
      "provenance traces data from its creation to manipulation";
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.Update(std::string_view(msg).substr(0, split));
    h.Update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.Finish(), Sha256::Hash(msg)) << "split=" << split;
  }
}

TEST(Sha256Test, ExactBlockBoundaries) {
  // 55/56/63/64/65 bytes straddle the padding edge cases.
  for (size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string msg(len, 'x');
    Sha256 one;
    one.Update(msg);
    Sha256 split;
    split.Update(std::string_view(msg).substr(0, len / 2));
    split.Update(std::string_view(msg).substr(len / 2));
    EXPECT_EQ(one.Finish(), split.Finish()) << "len=" << len;
  }
}

TEST(Sha256Test, HashPairDomain) {
  Digest a = Sha256::Hash("a");
  Digest b = Sha256::Hash("b");
  Digest ab = Sha256::HashPair(a, b);
  Digest ba = Sha256::HashPair(b, a);
  EXPECT_NE(ab, ba);
}

TEST(Sha256Test, DigestBytesRoundTrip) {
  Digest d = Sha256::Hash("roundtrip");
  auto parsed = DigestFromBytes(DigestToBytes(d));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), d);
  EXPECT_FALSE(DigestFromBytes(Bytes{1, 2, 3}).ok());
}

TEST(Sha256Test, ZeroDigestIsAllZero) {
  Digest z = ZeroDigest();
  for (uint8_t byte : z) EXPECT_EQ(byte, 0);
}

TEST(HmacSha256Test, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Digest mac = HmacSha256(key, ToBytes("Hi There"));
  EXPECT_EQ(DigestHex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2) {
  Digest mac =
      HmacSha256(ToBytes("Jefe"), ToBytes("what do ya want for nothing?"));
  EXPECT_EQ(DigestHex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256Test, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key of 0xaa.
  Bytes key(131, 0xaa);
  Digest mac = HmacSha256(
      key, ToBytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(DigestHex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256Test, KeySensitivity) {
  Bytes msg = ToBytes("same message");
  EXPECT_NE(HmacSha256(ToBytes("key1"), msg), HmacSha256(ToBytes("key2"), msg));
}

}  // namespace
}  // namespace crypto
}  // namespace provledger
