// RQ3 tests: HTLC atomic swaps (happy + every abort schedule), notary
// committees, relay-chain foreign verification, pegged sidechain, Vassago
// dependency-first queries, and ForensiCross collaboration.

#include <gtest/gtest.h>

#include "crosschain/forensicross.h"
#include "crosschain/htlc.h"
#include "crosschain/provquery.h"
#include "crosschain/relay.h"
#include "crosschain/sidechain.h"

namespace provledger {
namespace crosschain {
namespace {

class HtlcTest : public ::testing::Test {
 protected:
  HtlcTest()
      : clock_(1'000'000), ledger_a_("chain-a", &clock_),
        ledger_b_("chain-b", &clock_) {
    EXPECT_TRUE(ledger_a_.Mint("alice", 100).ok());
    EXPECT_TRUE(ledger_b_.Mint("bob", 50).ok());
  }
  SimClock clock_;
  AssetLedger ledger_a_;
  AssetLedger ledger_b_;
};

TEST_F(HtlcTest, BasicLedgerOperations) {
  EXPECT_EQ(ledger_a_.BalanceOf("alice").value(), 100u);
  ASSERT_TRUE(ledger_a_.Transfer("alice", "carol", 30).ok());
  EXPECT_EQ(ledger_a_.BalanceOf("carol").value(), 30u);
  EXPECT_TRUE(
      ledger_a_.Transfer("alice", "carol", 1000).IsFailedPrecondition());
}

TEST_F(HtlcTest, ClaimWithCorrectPreimage) {
  Bytes secret = ToBytes("the-secret");
  auto lock = crypto::HashLock::FromSecret(secret);
  auto escrow = ledger_a_.Lock("alice", "bob", 40, lock,
                               clock_.NowMicros() + 1000);
  ASSERT_TRUE(escrow.ok());
  EXPECT_EQ(ledger_a_.BalanceOf("alice").value(), 60u);

  // Wrong preimage, wrong recipient both fail.
  EXPECT_TRUE(ledger_a_.Claim(escrow.value(), "bob", ToBytes("wrong"))
                  .IsUnauthenticated());
  EXPECT_TRUE(ledger_a_.Claim(escrow.value(), "eve", secret)
                  .IsPermissionDenied());

  ASSERT_TRUE(ledger_a_.Claim(escrow.value(), "bob", secret).ok());
  EXPECT_EQ(ledger_a_.BalanceOf("bob").value(), 40u);
  // Revealed preimage is now public.
  auto revealed = ledger_a_.RevealedPreimage(escrow.value());
  ASSERT_TRUE(revealed.ok());
  EXPECT_EQ(revealed.value(), secret);
  // No double-claim.
  EXPECT_TRUE(
      ledger_a_.Claim(escrow.value(), "bob", secret).IsFailedPrecondition());
}

TEST_F(HtlcTest, TimeoutSemantics) {
  Bytes secret = ToBytes("s");
  auto lock = crypto::HashLock::FromSecret(secret);
  auto escrow =
      ledger_a_.Lock("alice", "bob", 40, lock, clock_.NowMicros() + 1000);
  ASSERT_TRUE(escrow.ok());

  // Refund before timeout fails; claim after timeout fails.
  EXPECT_TRUE(
      ledger_a_.Refund(escrow.value(), "alice").IsFailedPrecondition());
  clock_.Advance(2000);
  EXPECT_TRUE(ledger_a_.Claim(escrow.value(), "bob", secret).IsTimedOut());
  ASSERT_TRUE(ledger_a_.Refund(escrow.value(), "alice").ok());
  EXPECT_EQ(ledger_a_.BalanceOf("alice").value(), 100u);
}

TEST_F(HtlcTest, AtomicSwapHappyPath) {
  AtomicSwap swap(&ledger_a_, &ledger_b_, &clock_);
  auto outcome =
      swap.Execute("alice", "bob", 40, 20, ToBytes("swap-secret-1"));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->completed);
  // Alice: -40 on A, +20 on B. Bob: +40 on A, -20 on B.
  EXPECT_EQ(ledger_a_.BalanceOf("alice").value(), 60u);
  EXPECT_EQ(ledger_a_.BalanceOf("bob").value(), 40u);
  EXPECT_EQ(ledger_b_.BalanceOf("bob").value(), 30u);
  EXPECT_EQ(ledger_b_.BalanceOf("alice").value(), 20u);
}

TEST_F(HtlcTest, AtomicSwapAbortLeavesNoHalfState) {
  AtomicSwap swap(&ledger_a_, &ledger_b_, &clock_);
  auto outcome =
      swap.ExecuteWithBobAbort("alice", "bob", 40, 20, ToBytes("secret"));
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->refunded);
  // Everything back where it started: atomicity under abort.
  EXPECT_EQ(ledger_a_.BalanceOf("alice").value(), 100u);
  EXPECT_EQ(ledger_a_.BalanceOf("bob").value(), 0u);
  EXPECT_EQ(ledger_b_.BalanceOf("bob").value(), 50u);
  EXPECT_EQ(ledger_b_.BalanceOf("alice").value(), 0u);
}

TEST_F(HtlcTest, EscrowOperationsAnchoredOnChain) {
  AtomicSwap swap(&ledger_a_, &ledger_b_, &clock_);
  ASSERT_TRUE(swap.Execute("alice", "bob", 10, 5, ToBytes("x")).ok());
  // Mint + lock + claim at minimum on each chain.
  EXPECT_GE(ledger_a_.chain()->height(), 3u);
  EXPECT_GE(ledger_b_.chain()->height(), 3u);
  EXPECT_TRUE(ledger_a_.chain()->VerifyIntegrity().ok());
}

TEST(NotaryTest, ThresholdAttestation) {
  NotaryCommittee committee("test", 5, 3);
  Bytes statement = ToBytes("chain-a block 7 contains tx 0xabc");
  // All sign.
  EXPECT_TRUE(committee.Verify(committee.Attest(statement)));
  // Exactly threshold.
  EXPECT_TRUE(committee.Verify(committee.Attest(statement, 3)));
  // Below threshold.
  EXPECT_FALSE(committee.Verify(committee.Attest(statement, 2)));
}

TEST(NotaryTest, TamperedStatementFails) {
  NotaryCommittee committee("test", 4, 3);
  auto attestation = committee.Attest(ToBytes("honest statement"));
  attestation.statement = ToBytes("forged statement");
  EXPECT_FALSE(committee.Verify(attestation));
}

class RelayTest : public ::testing::Test {
 protected:
  RelayTest() : clock_(0), relay_(&clock_), source_(MakeOptions()) {}
  static ledger::ChainOptions MakeOptions() {
    ledger::ChainOptions opts;
    opts.chain_id = "source-chain";
    return opts;
  }
  void Grow(int blocks) {
    for (int i = 0; i < blocks; ++i) {
      ledger::Transaction tx = ledger::Transaction::MakeSystem(
          "data", "ch", ToBytes("payload-" + std::to_string(i)),
          1000 + i, i);
      ASSERT_TRUE(source_.Append({tx}, 1000 + i, "src").ok());
      txs_.push_back(tx);
    }
  }
  void SyncAll() {
    for (uint64_t h = relay_.LatestHeight("source-chain").value() + 1;
         h <= source_.height(); ++h) {
      ASSERT_TRUE(relay_.SubmitHeader("source-chain",
                                      source_.GetHeader(h).value())
                      .ok());
    }
  }
  SimClock clock_;
  RelayChain relay_;
  ledger::Blockchain source_;
  std::vector<ledger::Transaction> txs_;
};

TEST_F(RelayTest, HeaderContinuityEnforced) {
  ASSERT_TRUE(
      relay_.RegisterChain("source-chain", source_.GetHeader(0).value()).ok());
  Grow(3);
  // Skipping a height is rejected.
  EXPECT_TRUE(relay_.SubmitHeader("source-chain", source_.GetHeader(2).value())
                  .IsInvalidArgument());
  SyncAll();
  EXPECT_EQ(relay_.LatestHeight("source-chain").value(), 3u);
  // A forged continuation is rejected (prev_hash break).
  ledger::BlockHeader forged = source_.GetHeader(3).value();
  forged.height = 4;
  forged.prev_hash = crypto::Sha256::Hash("not-the-tip");
  EXPECT_TRUE(
      relay_.SubmitHeader("source-chain", forged).IsInvalidArgument());
}

TEST_F(RelayTest, ForeignTransactionVerification) {
  ASSERT_TRUE(
      relay_.RegisterChain("source-chain", source_.GetHeader(0).value()).ok());
  Grow(5);
  SyncAll();

  auto proof = source_.ProveTransaction(txs_[2].Id());
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(relay_
                  .VerifyForeignTransaction("source-chain", txs_[2].Encode(),
                                            proof.value())
                  .ok());
  // A different transaction's bytes fail.
  EXPECT_TRUE(relay_
                  .VerifyForeignTransaction("source-chain", txs_[3].Encode(),
                                            proof.value())
                  .IsUnauthenticated());
  // Unknown chain and unsynced heights fail cleanly.
  EXPECT_TRUE(relay_
                  .VerifyForeignTransaction("ghost", txs_[2].Encode(),
                                            proof.value())
                  .IsNotFound());
}

TEST_F(RelayTest, ProofAheadOfSyncRejected) {
  ASSERT_TRUE(
      relay_.RegisterChain("source-chain", source_.GetHeader(0).value()).ok());
  Grow(2);
  // Only genesis relayed; a proof at height 2 must wait.
  auto proof = source_.ProveTransaction(txs_[1].Id());
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(relay_
                  .VerifyForeignTransaction("source-chain", txs_[1].Encode(),
                                            proof.value())
                  .IsFailedPrecondition());
}

TEST_F(RelayTest, MessageBus) {
  ASSERT_TRUE(
      relay_.RegisterChain("source-chain", source_.GetHeader(0).value()).ok());
  ledger::Blockchain other(ledger::ChainOptions{.chain_id = "other"});
  ASSERT_TRUE(relay_.RegisterChain("other", other.GetHeader(0).value()).ok());

  CrossChainMessage message;
  message.from_chain = "source-chain";
  message.to_chain = "other";
  message.type = "test/hello";
  message.payload = ToBytes("hi");
  ASSERT_TRUE(relay_.SendMessage(message).ok());
  auto inbox = relay_.Inbox("other");
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].type, "test/hello");
  EXPECT_TRUE(relay_.Inbox("source-chain").empty());
  // Messages to unregistered chains fail.
  message.to_chain = "ghost";
  EXPECT_TRUE(relay_.SendMessage(message).IsNotFound());
}

TEST(SidechainTest, DepositTransferWithdraw) {
  SimClock clock(0);
  PeggedSidechain peg(&clock);
  peg.FundMain("alice", 100);

  ASSERT_TRUE(peg.Deposit("alice", 60).ok());
  EXPECT_EQ(peg.MainBalance("alice"), 40u);
  EXPECT_EQ(peg.SideBalance("alice"), 60u);
  EXPECT_EQ(peg.EscrowBalance(), 60u);

  ASSERT_TRUE(peg.SideTransfer("alice", "bob", 25).ok());
  EXPECT_EQ(peg.SideBalance("bob"), 25u);

  // Withdraw: burn, checkpoint, then complete.
  auto burn = peg.WithdrawInitiate("bob", 25);
  ASSERT_TRUE(burn.ok());
  // Before checkpointing, the main chain refuses.
  EXPECT_TRUE(
      peg.WithdrawComplete("bob", burn.value()).IsFailedPrecondition());
  ASSERT_TRUE(peg.Checkpoint().ok());
  ASSERT_TRUE(peg.WithdrawComplete("bob", burn.value()).ok());
  EXPECT_EQ(peg.MainBalance("bob"), 25u);
  EXPECT_EQ(peg.EscrowBalance(), 35u);
  // No double withdrawal.
  EXPECT_TRUE(peg.WithdrawComplete("bob", burn.value()).IsAlreadyExists());
}

TEST(SidechainTest, WithdrawGuards) {
  SimClock clock(0);
  PeggedSidechain peg(&clock);
  peg.FundMain("alice", 10);
  ASSERT_TRUE(peg.Deposit("alice", 10).ok());
  EXPECT_TRUE(peg.Deposit("alice", 10).IsFailedPrecondition());
  auto burn = peg.WithdrawInitiate("alice", 10);
  ASSERT_TRUE(burn.ok());
  ASSERT_TRUE(peg.Checkpoint().ok());
  // Only the burner withdraws.
  EXPECT_TRUE(peg.WithdrawComplete("eve", burn.value()).IsPermissionDenied());
  EXPECT_TRUE(
      peg.WithdrawComplete("alice", crypto::Sha256::Hash("ghost")).IsNotFound());
  EXPECT_TRUE(peg.WithdrawComplete("alice", burn.value()).ok());
}

// --- Vassago-style cross-chain provenance queries --------------------------

class ProvQueryTest : public ::testing::Test {
 protected:
  static constexpr size_t kOrgs = 4;

  ProvQueryTest() : clock_(0), deps_(&clock_) {
    for (size_t i = 0; i < kOrgs; ++i) {
      ledger::ChainOptions opts;
      opts.chain_id = "org-" + std::to_string(i);
      chains_.push_back(std::make_unique<ledger::Blockchain>(opts));
      stores_.push_back(
          std::make_unique<prov::ProvenanceStore>(chains_.back().get(),
                                                  &clock_));
    }
    // The traced entity "shipment-7" has records on orgs 0 and 2 only.
    Anchor(0, "sq-1", "shipment-7", "register");
    Anchor(2, "sq-2", "shipment-7", "receive");
    Anchor(1, "sq-3", "unrelated", "noise");
    EXPECT_TRUE(deps_.RecordDependency("shipment-7", "org-0").ok());
    EXPECT_TRUE(deps_.RecordDependency("shipment-7", "org-2").ok());

    std::vector<OrgChain> orgs;
    for (size_t i = 0; i < kOrgs; ++i) {
      OrgChain org;
      org.chain_id = "org-" + std::to_string(i);
      org.chain = chains_[i].get();
      org.store = stores_[i].get();
      org.query_latency_us = 2000;
      orgs.push_back(org);
    }
    engine_ = std::make_unique<CrossChainQueryEngine>(orgs, &deps_, &clock_);
  }

  void Anchor(size_t org, const std::string& id, const std::string& subject,
              const std::string& op) {
    prov::ProvenanceRecord rec;
    rec.record_id = id;
    rec.operation = op;
    rec.subject = subject;
    rec.agent = "org-" + std::to_string(org);
    rec.timestamp = 100;
    ASSERT_TRUE(stores_[org]->Anchor(rec).ok());
  }

  SimClock clock_;
  DependencyChain deps_;
  std::vector<std::unique_ptr<ledger::Blockchain>> chains_;
  std::vector<std::unique_ptr<prov::ProvenanceStore>> stores_;
  std::unique_ptr<CrossChainQueryEngine> engine_;
};

TEST_F(ProvQueryTest, BothEnginesReturnSameRecords) {
  auto sequential = engine_->SequentialTrace("shipment-7");
  auto dependency = engine_->DependencyFirstTrace("shipment-7");
  ASSERT_EQ(sequential.records.size(), 2u);
  ASSERT_EQ(dependency.records.size(), 2u);
  for (const auto& rec : sequential.records) EXPECT_TRUE(rec.verified);
  for (const auto& rec : dependency.records) EXPECT_TRUE(rec.verified);
}

TEST_F(ProvQueryTest, DependencyFirstIsFasterAndNarrower) {
  auto sequential = engine_->SequentialTrace("shipment-7");
  auto dependency = engine_->DependencyFirstTrace("shipment-7");
  // Sequential touches all 4 chains serially; Vassago touches 2 in
  // parallel after one dependency lookup.
  EXPECT_EQ(sequential.chains_contacted, kOrgs);
  EXPECT_EQ(dependency.chains_contacted, 2u);
  EXPECT_LT(dependency.latency_us, sequential.latency_us / 2);
}

TEST_F(ProvQueryTest, UnknownEntity) {
  auto dependency = engine_->DependencyFirstTrace("ghost-entity");
  EXPECT_TRUE(dependency.records.empty());
  EXPECT_EQ(dependency.chains_contacted, 0u);
}

TEST_F(ProvQueryTest, CachedTraceServesRepeatsAndDetectsStaleness) {
  // §6.2 future-work extension: repeated queries hit the cache; a new
  // anchor on a relevant chain invalidates it (freshness, §5.1).
  auto first = engine_->CachedTrace("shipment-7");
  EXPECT_EQ(engine_->cache_misses(), 1u);
  ASSERT_EQ(first.records.size(), 2u);

  auto repeat = engine_->CachedTrace("shipment-7");
  EXPECT_EQ(engine_->cache_hits(), 1u);
  ASSERT_EQ(repeat.records.size(), 2u);
  // Hit pays only the height probe, far below a full fan-out.
  EXPECT_LT(repeat.latency_us, first.latency_us / 2);

  // New record on org-2 -> stale -> refetched, including the new record.
  Anchor(2, "sq-4", "shipment-7", "inspect");
  auto refreshed = engine_->CachedTrace("shipment-7");
  EXPECT_EQ(engine_->cache_misses(), 2u);
  EXPECT_EQ(refreshed.records.size(), 3u);
  for (const auto& rec : refreshed.records) EXPECT_TRUE(rec.verified);
}

TEST_F(ProvQueryTest, DependencyChainIsItselfALedger) {
  // Each dependency edge is an anchored transaction (auditable).
  EXPECT_EQ(deps_.ledger().height(), 2u);
  EXPECT_TRUE(deps_.ledger().VerifyIntegrity().ok());
}

// --- ForensiCross -----------------------------------------------------------

class ForensiCrossTest : public ::testing::Test {
 protected:
  ForensiCrossTest() : clock_(0), fx_(&clock_, /*notaries=*/4) {
    for (int i = 0; i < 2; ++i) {
      std::string name = i == 0 ? "agency-us" : "agency-eu";
      ledger::ChainOptions opts;
      opts.chain_id = name;
      chains_.push_back(std::make_unique<ledger::Blockchain>(opts));
      stores_.push_back(std::make_unique<prov::ProvenanceStore>(
          chains_.back().get(), &clock_));
      contents_.push_back(std::make_unique<storage::ContentStore>());
      managers_.push_back(std::make_unique<forensics::CaseManager>(
          stores_.back().get(), contents_.back().get(), &clock_));
      ForensicOrg org;
      org.name = name;
      org.chain = chains_.back().get();
      org.store = stores_.back().get();
      org.cases = managers_.back().get();
      EXPECT_TRUE(fx_.RegisterOrg(org).ok());
    }
  }
  SimClock clock_;
  ForensiCross fx_;
  std::vector<std::unique_ptr<ledger::Blockchain>> chains_;
  std::vector<std::unique_ptr<prov::ProvenanceStore>> stores_;
  std::vector<std::unique_ptr<storage::ContentStore>> contents_;
  std::vector<std::unique_ptr<forensics::CaseManager>> managers_;
};

TEST_F(ForensiCrossTest, LinkedCaseStaysInLockstep) {
  ASSERT_TRUE(fx_.LinkCase("case-x", "lead-1", "2026-06-01").ok());
  ASSERT_TRUE(fx_.AdvanceLinkedStage("case-x", "lead-1").ok());
  for (auto& manager : managers_) {
    auto stage = manager->CurrentStage("case-x");
    ASSERT_TRUE(stage.ok());
    EXPECT_EQ(stage.value(), "preservation");
  }
}

TEST_F(ForensiCrossTest, NonUnanimousAdvanceRejectedEverywhere) {
  ASSERT_TRUE(fx_.LinkCase("case-x", "lead-1", "2026-06-01").ok());
  // Only 3 of 4 notaries sign: rejected, and no org moved.
  EXPECT_TRUE(fx_.AdvanceLinkedStage("case-x", "lead-1", 3)
                  .IsPermissionDenied());
  for (auto& manager : managers_) {
    EXPECT_EQ(manager->CurrentStage("case-x").value(), "identification");
  }
}

TEST_F(ForensiCrossTest, EvidenceSharedAndVerifiedCrossChain) {
  ASSERT_TRUE(fx_.LinkCase("case-x", "lead-1", "2026-06-01").ok());
  ASSERT_TRUE(fx_.AdvanceLinkedStage("case-x", "lead-1").ok());  // preserve
  ASSERT_TRUE(fx_.AdvanceLinkedStage("case-x", "lead-1").ok());  // collect
  ASSERT_TRUE(managers_[0]
                  ->CollectEvidence("case-x", "ev-1", "img",
                                    ToBytes("disk image"), "inv-a")
                  .ok());
  auto shared = fx_.ShareEvidence("agency-us", "case-x", "ev-1");
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  EXPECT_TRUE(fx_.VerifySharedEvidence(shared.value()).ok());

  // Tampered pointer fails recipient verification.
  auto forged = shared.value();
  forged.record.fields["finding"] = "planted";
  EXPECT_FALSE(fx_.VerifySharedEvidence(forged).ok());

  // The pointer message is on the bridge.
  auto inbox = fx_.bridge()->Inbox("agency-eu");
  bool pointer_seen = false;
  for (const auto& message : inbox) {
    if (message.type == "forensics/evidence-pointer") pointer_seen = true;
  }
  EXPECT_TRUE(pointer_seen);
}

TEST_F(ForensiCrossTest, CrossChainProvenanceExtraction) {
  ASSERT_TRUE(fx_.LinkCase("case-x", "lead-1", "2026-06-01").ok());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(fx_.AdvanceLinkedStage("case-x", "lead-1").ok());
  }
  ASSERT_TRUE(managers_[0]
                  ->CollectEvidence("case-x", "ev-shared", "img",
                                    ToBytes("us copy"), "inv-a")
                  .ok());
  ASSERT_TRUE(managers_[1]
                  ->CollectEvidence("case-x", "ev-shared", "img",
                                    ToBytes("eu copy"), "inv-b")
                  .ok());
  auto records = fx_.ExtractProvenance("ev-shared");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_NE(records[0].chain_id, records[1].chain_id);
  for (const auto& rec : records) EXPECT_TRUE(rec.verified);
}

TEST_F(ForensiCrossTest, RegistrationGuards) {
  ForensicOrg duplicate;
  duplicate.name = "agency-us";
  duplicate.chain = chains_[0].get();
  duplicate.store = stores_[0].get();
  duplicate.cases = managers_[0].get();
  EXPECT_TRUE(fx_.RegisterOrg(duplicate).IsAlreadyExists());
  EXPECT_TRUE(fx_.LinkCase("case-y", "l", "d").ok());
  EXPECT_TRUE(fx_.LinkCase("case-y", "l", "d").IsAlreadyExists());
  EXPECT_TRUE(fx_.AdvanceLinkedStage("ghost", "l").IsNotFound());
}

}  // namespace
}  // namespace crosschain
}  // namespace provledger
