// Elliptic-curve group law tests over secp256k1: these validate the entire
// bignum + curve stack via algebraic identities rather than fixed vectors.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/ec.h"

namespace provledger {
namespace crypto {
namespace {

U256 RandomScalar(Rng* rng) {
  U256 v;
  for (auto& limb : v.limb) limb = rng->NextU64();
  return ReduceMod(v, OrderN());
}

TEST(EcTest, GeneratorOnCurve) {
  EXPECT_TRUE(Generator().IsOnCurve());
  EXPECT_FALSE(Generator().infinity);
}

TEST(EcTest, KnownDoubleOfG) {
  // 2G has the well-known x coordinate c6047f94...
  AffinePoint two_g = EcDouble(JacobianPoint::FromAffine(Generator())).ToAffine();
  EXPECT_EQ(two_g.x.ToHex(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_TRUE(two_g.IsOnCurve());
}

TEST(EcTest, OrderTimesGeneratorIsInfinity) {
  JacobianPoint ng = EcBaseMul(OrderN());
  EXPECT_TRUE(ng.IsInfinity());
}

TEST(EcTest, AddIsCommutative) {
  Rng rng(31);
  JacobianPoint p = EcBaseMul(RandomScalar(&rng));
  JacobianPoint q = EcBaseMul(RandomScalar(&rng));
  EXPECT_EQ(EcAdd(p, q).ToAffine(), EcAdd(q, p).ToAffine());
}

TEST(EcTest, AddIsAssociative) {
  Rng rng(37);
  JacobianPoint p = EcBaseMul(RandomScalar(&rng));
  JacobianPoint q = EcBaseMul(RandomScalar(&rng));
  JacobianPoint r = EcBaseMul(RandomScalar(&rng));
  EXPECT_EQ(EcAdd(EcAdd(p, q), r).ToAffine(),
            EcAdd(p, EcAdd(q, r)).ToAffine());
}

TEST(EcTest, ScalarDistributesOverAdd) {
  Rng rng(41);
  for (int i = 0; i < 5; ++i) {
    U256 a = RandomScalar(&rng);
    U256 b = RandomScalar(&rng);
    // (a + b)·G == a·G + b·G
    U256 sum = AddMod(a, b, OrderN());
    AffinePoint lhs = EcBaseMul(sum).ToAffine();
    AffinePoint rhs = EcAdd(EcBaseMul(a), EcBaseMul(b)).ToAffine();
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(EcTest, ScalarMulComposes) {
  Rng rng(43);
  U256 a = RandomScalar(&rng);
  U256 b = RandomScalar(&rng);
  // a·(b·G) == (a·b mod n)·G — cross-validates MulMod against the curve.
  AffinePoint bg = EcBaseMul(b).ToAffine();
  AffinePoint lhs = EcScalarMul(a, bg).ToAffine();
  AffinePoint rhs = EcBaseMul(MulMod(a, b, OrderN())).ToAffine();
  EXPECT_EQ(lhs, rhs);
}

TEST(EcTest, AddInverseGivesInfinity) {
  Rng rng(47);
  JacobianPoint p = EcBaseMul(RandomScalar(&rng));
  AffinePoint pa = p.ToAffine();
  AffinePoint neg = pa;
  neg.y = FieldSub(U256::Zero(), pa.y);
  EXPECT_TRUE(EcAdd(p, JacobianPoint::FromAffine(neg)).IsInfinity());
}

TEST(EcTest, AddWithInfinityIsIdentity) {
  Rng rng(53);
  JacobianPoint p = EcBaseMul(RandomScalar(&rng));
  EXPECT_EQ(EcAdd(p, JacobianPoint::Infinity()).ToAffine(), p.ToAffine());
  EXPECT_EQ(EcAdd(JacobianPoint::Infinity(), p).ToAffine(), p.ToAffine());
}

TEST(EcTest, DoubleEqualsAddSelf) {
  Rng rng(59);
  JacobianPoint p = EcBaseMul(RandomScalar(&rng));
  // EcAdd detects the doubling case via u1==u2.
  EXPECT_EQ(EcAdd(p, p).ToAffine(), EcDouble(p).ToAffine());
}

TEST(EcTest, CompressedEncodingRoundTrip) {
  Rng rng(61);
  for (int i = 0; i < 10; ++i) {
    AffinePoint p = EcBaseMul(RandomScalar(&rng)).ToAffine();
    Bytes enc = p.EncodeCompressed();
    ASSERT_EQ(enc.size(), 33u);
    auto decoded = AffinePoint::DecodeCompressed(enc);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), p);
  }
}

TEST(EcTest, InfinityEncodesAsSingleByte) {
  AffinePoint inf;
  inf.infinity = true;
  Bytes enc = inf.EncodeCompressed();
  EXPECT_EQ(enc, Bytes{0x00});
  auto decoded = AffinePoint::DecodeCompressed(enc);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->infinity);
}

TEST(EcTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(AffinePoint::DecodeCompressed(Bytes{0x05}).ok());
  Bytes bad(33, 0xFF);
  bad[0] = 0x02;
  EXPECT_FALSE(AffinePoint::DecodeCompressed(bad).ok());  // x >= p
  EXPECT_FALSE(AffinePoint::DecodeCompressed(Bytes(10, 0x02)).ok());
}

TEST(EcTest, HashToCurveProducesValidDistinctPoints) {
  AffinePoint h1 = HashToCurve(ToBytes("seed-one"));
  AffinePoint h2 = HashToCurve(ToBytes("seed-two"));
  EXPECT_TRUE(h1.IsOnCurve());
  EXPECT_TRUE(h2.IsOnCurve());
  EXPECT_FALSE(h1 == h2);
  EXPECT_FALSE(h1 == Generator());
  // Deterministic.
  EXPECT_EQ(HashToCurve(ToBytes("seed-one")), h1);
}

}  // namespace
}  // namespace crypto
}  // namespace provledger
