// Durable-storage recovery tests (ctest label: recovery): FileKvStore
// crash/reopen semantics (torn WriteBatch discarded, batches atomic across
// restarts), ChainLog persist + replay + torn-tail truncation, provenance
// snapshots (save/load, chain binding, tail replay), and the full
// process-restart path: reload chain + snapshot, then VerifyIntegrity() and
// AuditAll() must pass.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "common/fileio.h"
#include "ledger/chain_log.h"
#include "prov/store.h"
#include "storage/file_kv_store.h"
#include "tamper.h"
#include "temp_dir.h"

namespace provledger {
namespace {

using testutil::MakeTempDir;
using testutil::RemoveTree;

/// Append raw garbage to a file — the on-disk shape of a crash mid-append.
void AppendGarbage(const std::string& path, size_t n) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  for (size_t i = 0; i < n; ++i) out.put(static_cast<char>(0x7F));
}

/// Chop the last `n` bytes off a file (a torn tail write).
void TruncateTail(const std::string& path, size_t n) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  auto size = static_cast<size_t>(in.tellg());
  in.close();
  ASSERT_GT(size, n);
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(size - n)), 0);
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = MakeTempDir(); }
  void TearDown() override { RemoveTree(dir_); }
  std::string dir_;
};

// ---------------------------------------------------------------------------
// FileKvStore
// ---------------------------------------------------------------------------

using storage::FileKvStore;
using storage::FileKvStoreOptions;
using storage::WriteBatch;

TEST_F(RecoveryTest, FileKvStoreSurvivesReopen) {
  {
    auto store = FileKvStore::Open(dir_);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Put("alpha", ToBytes("1")).ok());
    ASSERT_TRUE((*store)->Put("beta", ToBytes("2")).ok());
    ASSERT_TRUE((*store)->Put("alpha", ToBytes("1v2")).ok());  // overwrite
    ASSERT_TRUE((*store)->Delete("beta").ok());
    ASSERT_TRUE((*store)->Put("gamma", ToBytes("3")).ok());
  }
  auto reopened = FileKvStore::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  FileKvStore& store = **reopened;
  EXPECT_FALSE(store.recovered_torn_write());
  EXPECT_EQ(store.ApproximateCount(), 2u);
  auto alpha = store.Get("alpha");
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(BytesToString(alpha.value()), "1v2");
  EXPECT_FALSE(store.Has("beta"));
  EXPECT_TRUE(store.Has("gamma"));
}

TEST_F(RecoveryTest, FileKvStoreOrderedSnapshotIterator) {
  auto opened = FileKvStore::Open(dir_);
  ASSERT_TRUE(opened.ok());
  FileKvStore& store = **opened;
  ASSERT_TRUE(store.Put("b", ToBytes("2")).ok());
  ASSERT_TRUE(store.Put("a", ToBytes("1")).ok());
  ASSERT_TRUE(store.Put("c", ToBytes("3")).ok());

  auto it = store.NewIterator();
  // Mutations after snapshot creation are invisible (same contract as
  // MemKvStore), including overwrites of keys the snapshot can see.
  ASSERT_TRUE(store.Put("d", ToBytes("4")).ok());
  ASSERT_TRUE(store.Put("a", ToBytes("overwritten")).ok());

  std::vector<std::string> keys;
  std::vector<std::string> values;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    keys.push_back(it->key());
    values.push_back(BytesToString(it->value()));
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(values, (std::vector<std::string>{"1", "2", "3"}));
  it->Seek("b");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "b");

  auto hits = storage::ScanPrefix(store, "a");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(BytesToString(hits[0].second), "overwritten");
}

TEST_F(RecoveryTest, FileKvStoreTornBatchIsInvisibleAfterReopen) {
  {
    auto store = FileKvStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("committed", ToBytes("yes")).ok());
    WriteBatch batch;  // the batch a crash will tear
    batch.Put("torn1", std::string("a"));
    batch.Put("torn2", std::string("b"));
    batch.Delete("committed");
    ASSERT_TRUE((*store)->Write(batch).ok());
  }
  // Tear the tail record: the batch frame loses its last bytes, as if the
  // process died mid-write() or the kernel never flushed the full page.
  TruncateTail(dir_ + "/000001.log", 3);

  auto reopened = FileKvStore::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  FileKvStore& store = **reopened;
  EXPECT_TRUE(store.recovered_torn_write());
  // No torn WriteBatch: either all three ops or none — here none.
  EXPECT_FALSE(store.Has("torn1"));
  EXPECT_FALSE(store.Has("torn2"));
  EXPECT_TRUE(store.Has("committed"));
  EXPECT_EQ(store.replayed_batches(), 1u);

  // The truncated log accepts new writes cleanly.
  ASSERT_TRUE(store.Put("after-crash", ToBytes("ok")).ok());
  auto again = FileKvStore::Open(dir_);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE((*again)->Has("after-crash"));
  EXPECT_FALSE((*again)->recovered_torn_write());
}

TEST_F(RecoveryTest, FileKvStoreGarbageTailDiscarded) {
  {
    auto store = FileKvStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("keep", ToBytes("v")).ok());
  }
  AppendGarbage(dir_ + "/000001.log", 13);
  auto reopened = FileKvStore::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE((*reopened)->recovered_torn_write());
  EXPECT_TRUE((*reopened)->Has("keep"));
  EXPECT_EQ((*reopened)->ApproximateCount(), 1u);
}

TEST_F(RecoveryTest, FileKvStoreMidLogCorruptionFailsLoudly) {
  {
    auto store = FileKvStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("first", ToBytes("value-1")).ok());
    ASSERT_TRUE((*store)->Put("second", ToBytes("value-2")).ok());
  }
  // Damage a byte inside the FIRST record's payload: the frame is still
  // complete (a later valid record follows), so this is corruption — it
  // must fail loudly, never silently truncate away the valid tail.
  ASSERT_TRUE(testutil::FlipByteInFile(dir_ + "/000001.log", 10).ok());
  auto reopened = FileKvStore::Open(dir_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption());
}

TEST_F(RecoveryTest, FileKvStoreRollsSegmentsAndReplaysAll) {
  FileKvStoreOptions options;
  options.segment_bytes = 256;  // force frequent rolls
  options.sync_writes = false;
  size_t segments;
  {
    auto store = FileKvStore::Open(dir_, options);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE((*store)
                      ->Put("key-" + std::to_string(i),
                            Bytes(32, static_cast<uint8_t>(i)))
                      .ok());
    }
    ASSERT_TRUE((*store)->Sync().ok());
    segments = (*store)->segment_count();
    EXPECT_GT(segments, 1u);
  }
  auto reopened = FileKvStore::Open(dir_, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->segment_count(), segments);
  EXPECT_EQ((*reopened)->ApproximateCount(), 100u);
  for (int i = 0; i < 100; ++i) {
    auto got = (*reopened)->Get("key-" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), Bytes(32, static_cast<uint8_t>(i)));
  }
}

// ---------------------------------------------------------------------------
// ChainLog
// ---------------------------------------------------------------------------

ledger::Transaction SysTx(const std::string& note, uint64_t nonce) {
  return ledger::Transaction::MakeSystem("test/op", "ch", ToBytes(note),
                                         /*timestamp=*/100 + nonce, nonce);
}

TEST_F(RecoveryTest, ChainLogPersistsAndReplays) {
  const std::string path = dir_ + "/chain.log";
  crypto::Digest head;
  {
    ledger::Blockchain chain;
    auto log = ledger::ChainLog::Open(path);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    ASSERT_TRUE((*log)->AttachTo(&chain).ok());
    for (uint64_t i = 1; i <= 5; ++i) {
      ASSERT_TRUE(chain.Append({SysTx("b" + std::to_string(i), i)},
                               1000 + i, "node-1")
                      .ok());
    }
    EXPECT_EQ((*log)->block_count(), 5u);
    head = chain.head_hash();
  }

  // "Restart": a fresh process reloads the chain purely from the log.
  ledger::Blockchain chain;
  auto log = ledger::ChainLog::Open(path);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->block_count(), 5u);
  ASSERT_TRUE((*log)->AttachTo(&chain).ok());
  EXPECT_EQ(chain.height(), 5u);
  EXPECT_EQ(chain.head_hash(), head);
  EXPECT_TRUE(chain.VerifyIntegrity().ok());

  // New blocks after the restart keep streaming to the same log.
  ASSERT_TRUE(chain.Append({SysTx("post-restart", 6)}, 2000, "node-1").ok());
  EXPECT_EQ((*log)->block_count(), 6u);
}

TEST_F(RecoveryTest, ChainLogTornTailTruncated) {
  const std::string path = dir_ + "/chain.log";
  {
    ledger::Blockchain chain;
    auto log = ledger::ChainLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->AttachTo(&chain).ok());
    ASSERT_TRUE(chain.Append({SysTx("b1", 1)}, 1001, "n").ok());
    ASSERT_TRUE(chain.Append({SysTx("b2", 2)}, 1002, "n").ok());
  }
  TruncateTail(path, 5);  // tear the second block's frame

  ledger::Blockchain chain;
  auto log = ledger::ChainLog::Open(path);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_TRUE((*log)->recovered_torn_write());
  EXPECT_EQ((*log)->block_count(), 1u);
  ASSERT_TRUE((*log)->AttachTo(&chain).ok());
  EXPECT_EQ(chain.height(), 1u);
  EXPECT_TRUE(chain.VerifyIntegrity().ok());
}

TEST_F(RecoveryTest, ChainLogMidLogCorruptionFailsLoudly) {
  const std::string path = dir_ + "/chain.log";
  {
    ledger::Blockchain chain;
    auto log = ledger::ChainLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->AttachTo(&chain).ok());
    ASSERT_TRUE(chain.Append({SysTx("b1", 1)}, 1001, "n").ok());
    ASSERT_TRUE(chain.Append({SysTx("b2", 2)}, 1002, "n").ok());
  }
  // Damage the FIRST block's payload: a complete frame with a valid block
  // after it. Truncating here would silently destroy block 2, so Open must
  // report Corruption instead.
  ASSERT_TRUE(testutil::FlipByteInFile(path, 20).ok());
  auto log = ledger::ChainLog::Open(path);
  ASSERT_FALSE(log.ok());
  EXPECT_TRUE(log.status().IsCorruption());
}

TEST_F(RecoveryTest, ChainLogRefusesForeignChain) {
  const std::string path = dir_ + "/chain.log";
  {
    ledger::ChainOptions options;
    options.chain_id = "chain-a";
    ledger::Blockchain chain(options);
    auto log = ledger::ChainLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->AttachTo(&chain).ok());
    ASSERT_TRUE(chain.Append({SysTx("b1", 1)}, 1001, "n").ok());
  }
  // chain-b has a different genesis: the first logged block cannot attach.
  ledger::ChainOptions options;
  options.chain_id = "chain-b";
  ledger::Blockchain chain(options);
  auto log = ledger::ChainLog::Open(path);
  ASSERT_TRUE(log.ok());
  EXPECT_FALSE((*log)->AttachTo(&chain).ok());
}

TEST_F(RecoveryTest, ChainLogBackfillsExistingChain) {
  ledger::Blockchain chain;
  ASSERT_TRUE(chain.Append({SysTx("pre1", 1)}, 1001, "n").ok());
  ASSERT_TRUE(chain.Append({SysTx("pre2", 2)}, 1002, "n").ok());
  auto log = ledger::ChainLog::Open(dir_ + "/chain.log");
  ASSERT_TRUE(log.ok());
  // Attaching an empty log to a lived-in chain persists its history.
  ASSERT_TRUE((*log)->AttachTo(&chain).ok());
  EXPECT_EQ((*log)->block_count(), 2u);

  ledger::Blockchain reloaded;
  auto log2 = ledger::ChainLog::Open(dir_ + "/chain.log");
  ASSERT_TRUE(log2.ok());
  ASSERT_TRUE((*log2)->Replay(&reloaded).ok());
  EXPECT_EQ(reloaded.head_hash(), chain.head_hash());
}

// ---------------------------------------------------------------------------
// Provenance snapshots + full restart
// ---------------------------------------------------------------------------

prov::ProvenanceRecord Rec(const std::string& id, const std::string& subject,
                           const std::string& agent, Timestamp ts,
                           std::vector<std::string> inputs = {},
                           std::vector<std::string> outputs = {}) {
  prov::ProvenanceRecord rec;
  rec.record_id = id;
  rec.operation = "execute";
  rec.subject = subject;
  rec.agent = agent;
  rec.timestamp = ts;
  rec.inputs = std::move(inputs);
  rec.outputs = std::move(outputs);
  return rec;
}

TEST_F(RecoveryTest, SnapshotRestoresGraphIndexAndTail) {
  const std::string snapshot = dir_ + "/store.snap";
  ledger::Blockchain chain;
  SimClock clock(1'000'000);
  prov::ProvenanceStore store(&chain, &clock);

  ASSERT_TRUE(store.Anchor(Rec("r1", "doc", "alice", 100)).ok());
  ASSERT_TRUE(store.Anchor(Rec("r2", "doc", "bob", 200, {"doc"}, {"sum"}))
                  .ok());
  ASSERT_TRUE(
      store.Anchor(Rec("r3", "sum", "bob", 300, {"sum"}, {"report"})).ok());
  ASSERT_TRUE(store.mutable_graph()->Invalidate("r2", 350, "bad data").ok());
  ASSERT_TRUE(store.SaveSnapshot(snapshot).ok());

  // Tail: records anchored after the snapshot was taken.
  ASSERT_TRUE(store.Anchor(Rec("r4", "doc", "carol", 400)).ok());
  ASSERT_TRUE(store.Anchor(Rec("r5", "report", "carol", 500, {"report"}))
                  .ok());

  prov::ProvenanceStore restored(&chain, &clock);
  ASSERT_TRUE(restored.LoadSnapshot(snapshot).ok());
  EXPECT_EQ(restored.anchored_count(), 5u);
  EXPECT_EQ(restored.graph().record_count(), 5u);
  EXPECT_EQ(restored.graph().edge_count(), store.graph().edge_count());

  // Graph queries, lineage, and invalidation state all survive.
  EXPECT_EQ(restored.SubjectHistory("doc").size(), 3u);
  EXPECT_EQ(restored.ByAgent("carol").size(), 2u);
  auto lineage = restored.Lineage("report");
  EXPECT_EQ(lineage.size(), 2u);  // report <- sum <- doc
  EXPECT_TRUE(restored.graph().IsInvalidated("r2"));
  auto inv = restored.graph().GetInvalidation("r2");
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(inv->reason, "bad data");
  EXPECT_FALSE(inv->cascaded);
  // r3 consumed r2's output, so the cascade marked it too.
  EXPECT_TRUE(restored.graph().IsInvalidated("r3"));

  // Proofs and the full audit run against the restored rec/ index.
  ASSERT_TRUE(restored.ProveRecord("r1").ok());
  ASSERT_TRUE(restored.ProveRecord("r5").ok());
  auto audit = restored.AuditAll();
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  EXPECT_EQ(audit.value(), 5u);

  // Nonce issuance resumes past the tail (no on-chain nonce reuse).
  ASSERT_TRUE(restored.Anchor(Rec("r6", "doc", "dave", 600)).ok());
  std::set<uint64_t> nonces;
  for (const auto& tx : chain.GetChannelTransactions("prov")) {
    EXPECT_TRUE(nonces.insert(tx.nonce).second) << "nonce reused";
  }
}

TEST_F(RecoveryTest, RestoredStoreHydratesEveryDeferredStructure) {
  // A restored store defers records, intern maps, adjacency, postings,
  // meta edges, the time index, and the rec/ index to first touch. Drive
  // every one of those paths and hold the results against the original.
  const std::string snapshot = dir_ + "/store.snap";
  ledger::Blockchain chain;
  SimClock clock(1'000'000);
  prov::ProvenanceStore store(&chain, &clock);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(store
                    .Anchor(Rec("r" + std::to_string(i),
                                "s" + std::to_string(i % 5),
                                "a" + std::to_string(i % 3), 100 + i,
                                i > 0 ? std::vector<std::string>{
                                            "e" + std::to_string(i - 1)}
                                      : std::vector<std::string>{},
                                {"e" + std::to_string(i)}))
                    .ok());
  }
  ASSERT_TRUE(store.SaveSnapshot(snapshot).ok());

  prov::ProvenanceStore restored(&chain, &clock);
  ASSERT_TRUE(restored.LoadSnapshot(snapshot).ok());

  // Postings (subject/agent), time index, usage, derivations, records.
  EXPECT_EQ(restored.SubjectHistory("s3").size(), store.SubjectHistory("s3").size());
  EXPECT_EQ(restored.ByAgent("a2").size(), store.ByAgent("a2").size());
  EXPECT_EQ(restored.InRange(110, 120).size(), store.InRange(110, 120).size());
  EXPECT_EQ(restored.Lineage("e39"), store.Lineage("e39"));
  EXPECT_EQ(restored.graph().Descendants("e0"), store.graph().Descendants("e0"));
  auto by_input = restored.Execute(prov::Query().WithInput("e10"));
  ASSERT_EQ(by_input.records.size(), 1u);
  EXPECT_EQ(by_input.records[0].record_id, "r11");
  auto by_output = restored.Execute(prov::Query().WithOutput("e10"));
  ASSERT_EQ(by_output.records.size(), 1u);
  EXPECT_EQ(by_output.records[0].record_id, "r10");

  // Planner cardinality accessors.
  EXPECT_EQ(restored.graph().SubjectRecordCount("s0"), 8u);
  EXPECT_EQ(restored.graph().AgentRecordCount("a1"), 13u);
  EXPECT_EQ(restored.graph().EntityUseCount("e5"), 1u);
  EXPECT_EQ(restored.graph().EntityGenerationCount("e5"), 1u);
  EXPECT_EQ(restored.graph().InRangeCount(100, 139), 40u);
  EXPECT_EQ(restored.graph().edge_count(), store.graph().edge_count());

  // Point lookups materialize records lazily.
  auto rec = restored.GetRecord("r17");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->subject, "s2");
  EXPECT_EQ(rec->inputs, std::vector<std::string>{"e16"});

  // Invalidation cascades post-restore (meta edges + usage BFS).
  auto cascade = restored.mutable_graph()->Invalidate("r20", 500, "redo");
  ASSERT_TRUE(cascade.ok());
  EXPECT_EQ(cascade->size(), 20u);  // r20..r39 chain
  EXPECT_TRUE(restored.graph().IsInvalidated("r39"));
  EXPECT_EQ(restored.Execute(
                    prov::Query().OnlyValid().CountOnly()).count,
            20u);

  // New anchors after restore (hydrates everything left + the index).
  ASSERT_TRUE(restored.Anchor(Rec("r40", "s0", "a0", 200, {"e39"})).ok());
  EXPECT_EQ(restored.SubjectHistory("s0").size(), 9u);
  auto audit = restored.AuditAll();
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit.value(), 41u);
}

TEST_F(RecoveryTest, SnapshotOfRestoredStoreRoundTrips) {
  // Saving from a store that never hydrated its deferred sections must
  // pass them through byte-for-byte; the second-generation snapshot then
  // restores the same state.
  const std::string snap1 = dir_ + "/gen1.snap";
  const std::string snap2 = dir_ + "/gen2.snap";
  ledger::Blockchain chain;
  SimClock clock(1'000'000);
  prov::ProvenanceStore store(&chain, &clock);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store
                    .Anchor(Rec("r" + std::to_string(i), "doc", "alice",
                                100 + i, {}, {"e" + std::to_string(i)}))
                    .ok());
  }
  ASSERT_TRUE(store.SaveSnapshot(snap1).ok());

  prov::ProvenanceStore mid(&chain, &clock);
  ASSERT_TRUE(mid.LoadSnapshot(snap1).ok());
  // No queries in between: every section is still in raw passthrough form.
  ASSERT_TRUE(mid.SaveSnapshot(snap2).ok());

  prov::ProvenanceStore end(&chain, &clock);
  ASSERT_TRUE(end.LoadSnapshot(snap2).ok());
  EXPECT_EQ(end.anchored_count(), 10u);
  EXPECT_EQ(end.SubjectHistory("doc").size(), 10u);
  auto audit = end.AuditAll();
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit.value(), 10u);
}

TEST_F(RecoveryTest, SnapshotRefusesForeignChainAndRecoverFallsBack) {
  const std::string snapshot = dir_ + "/store.snap";
  SimClock clock(1'000'000);
  {
    ledger::Blockchain chain;
    prov::ProvenanceStore store(&chain, &clock);
    ASSERT_TRUE(store.Anchor(Rec("r1", "doc", "alice", 100)).ok());
    ASSERT_TRUE(store.SaveSnapshot(snapshot).ok());
  }
  // A different chain (same id, different history): hash binding must trip.
  ledger::Blockchain other;
  ASSERT_TRUE(other.Append({SysTx("unrelated", 1)}, 1001, "n").ok());
  prov::ProvenanceStore store(&other, &clock);
  EXPECT_TRUE(store.LoadSnapshot(snapshot).IsFailedPrecondition());
  // Recover() treats the stale snapshot as a miss and rebuilds instead.
  ASSERT_TRUE(store.Recover(snapshot).ok());
  EXPECT_EQ(store.anchored_count(), 0u);  // nothing on the prov channel
}

TEST_F(RecoveryTest, CorruptSnapshotFailsLoudly) {
  const std::string snapshot = dir_ + "/store.snap";
  ledger::Blockchain chain;
  SimClock clock(1'000'000);
  prov::ProvenanceStore store(&chain, &clock);
  ASSERT_TRUE(store.Anchor(Rec("r1", "doc", "alice", 100)).ok());
  ASSERT_TRUE(store.SaveSnapshot(snapshot).ok());

  // Flip one body byte: the CRC catches it before any state is replaced.
  ASSERT_TRUE(testutil::CorruptSnapshotFile(snapshot).ok());

  prov::ProvenanceStore fresh(&chain, &clock);
  EXPECT_TRUE(fresh.LoadSnapshot(snapshot).IsCorruption());
  EXPECT_EQ(fresh.anchored_count(), 0u);
  // Recover() must not quietly mask corruption as a cache miss.
  EXPECT_TRUE(fresh.Recover(snapshot).IsCorruption());
}

TEST_F(RecoveryTest, FullProcessRestartRestoresChainAndStore) {
  const std::string chain_log = dir_ + "/chain.log";
  const std::string snapshot = dir_ + "/store.snap";
  SimClock clock(1'000'000);
  crypto::Digest head;
  {
    // "Process one": durable chain, anchored records, snapshot mid-way.
    ledger::Blockchain chain;
    auto log = ledger::ChainLog::Open(chain_log);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->AttachTo(&chain).ok());
    prov::ProvenanceStore store(&chain, &clock);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(store
                      .Anchor(Rec("r" + std::to_string(i),
                                  "s" + std::to_string(i % 4), "agent",
                                  100 + i,
                                  i > 0 ? std::vector<std::string>{
                                              "e" + std::to_string(i - 1)}
                                        : std::vector<std::string>{},
                                  {"e" + std::to_string(i)}))
                      .ok());
    }
    ASSERT_TRUE(store.SaveSnapshot(snapshot).ok());
    for (int i = 20; i < 25; ++i) {  // short tail past the snapshot
      ASSERT_TRUE(store
                      .Anchor(Rec("r" + std::to_string(i), "s0", "agent",
                                  100 + i))
                      .ok());
    }
    head = chain.head_hash();
  }

  // "Process two": everything comes back from disk.
  ledger::Blockchain chain;
  auto log = ledger::ChainLog::Open(chain_log);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)->AttachTo(&chain).ok());
  EXPECT_EQ(chain.head_hash(), head);
  ASSERT_TRUE(chain.VerifyIntegrity().ok());

  prov::ProvenanceStore store(&chain, &clock);
  ASSERT_TRUE(store.Recover(snapshot).ok());
  EXPECT_EQ(store.anchored_count(), 25u);
  auto audit = store.AuditAll();
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  EXPECT_EQ(audit.value(), 25u);
  EXPECT_EQ(store.Lineage("e19").size(), 19u);
  EXPECT_EQ(store.SubjectHistory("s0").size(), 10u);

  // The revived node keeps appending durably.
  ASSERT_TRUE(store.Anchor(Rec("r25", "s1", "agent", 200)).ok());
  EXPECT_EQ((*log)->block_count(), chain.height());
}

}  // namespace
}  // namespace provledger
