// ML domain tests: asset DAG + contributor queries, and the federated-
// learning robustness properties (BlockDFL voting vs FedAvg under
// poisoning, free-rider screening, reputation exclusion).

#include <gtest/gtest.h>

#include "domains/ml/asset_graph.h"
#include "domains/ml/federated.h"

namespace provledger {
namespace ml {
namespace {

class AssetGraphTest : public ::testing::Test {
 protected:
  AssetGraphTest() : clock_(0), store_(&chain_, &clock_), assets_(&store_, &clock_) {}
  ledger::Blockchain chain_;
  SimClock clock_;
  prov::ProvenanceStore store_;
  AssetGraph assets_;
};

TEST_F(AssetGraphTest, RegisterAndClassify) {
  ASSERT_TRUE(assets_.RegisterDataset("ds-hospital-a", "hospital-a").ok());
  ASSERT_TRUE(assets_.RegisterDataset("ds-hospital-b", "hospital-b").ok());
  ASSERT_TRUE(assets_
                  .RegisterModel("model-v1", "ai-lab", "train",
                                 {"ds-hospital-a", "ds-hospital-b"})
                  .ok());
  auto kind = assets_.KindOf("model-v1");
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(kind.value(), AssetKind::kModel);
  EXPECT_EQ(assets_.asset_count(), 3u);
}

TEST_F(AssetGraphTest, GuardsAndErrors) {
  ASSERT_TRUE(assets_.RegisterDataset("ds-1", "o").ok());
  EXPECT_TRUE(assets_.RegisterDataset("ds-1", "o").IsAlreadyExists());
  EXPECT_TRUE(
      assets_.RegisterModel("m", "o", "train", {"ghost"}).IsNotFound());
  EXPECT_TRUE(assets_.RegisterModel("m", "o", "train", {}).IsInvalidArgument());
  EXPECT_TRUE(assets_.KindOf("ghost").status().IsNotFound());
}

TEST_F(AssetGraphTest, LineageAndContributors) {
  ASSERT_TRUE(assets_.RegisterDataset("raw-a", "org-a").ok());
  ASSERT_TRUE(assets_.RegisterDataset("raw-b", "org-b").ok());
  ASSERT_TRUE(assets_
                  .RegisterDerivedDataset("clean-a", "org-c", "clean",
                                          {"raw-a"})
                  .ok());
  ASSERT_TRUE(assets_
                  .RegisterModel("model-v1", "ai-lab", "train",
                                 {"clean-a", "raw-b"})
                  .ok());
  ASSERT_TRUE(assets_
                  .RegisterModel("model-v2", "ai-lab", "finetune",
                                 {"model-v1"})
                  .ok());

  auto lineage = assets_.AssetLineage("model-v2");
  EXPECT_EQ(lineage.size(), 4u);  // model-v1, clean-a, raw-b, raw-a

  // Fair compensation: dataset owners in the ancestry.
  auto contributors = assets_.Contributors("model-v2");
  EXPECT_EQ(contributors,
            (std::set<std::string>{"org-a", "org-b", "org-c"}));
}

FlConfig BaseConfig(Aggregation agg, double attackers) {
  FlConfig config;
  config.aggregation = agg;
  config.attacker_fraction = attackers;
  config.num_workers = 20;
  config.seed = 7;
  return config;
}

TEST(FederatedTest, ConvergesWithoutAttackers) {
  FederatedLearning fl(BaseConfig(Aggregation::kFedAvg, 0.0), nullptr,
                       nullptr);
  double initial = fl.model_error();
  auto stats = fl.RunRounds(30);
  EXPECT_LT(stats.model_error, initial * 0.1);
  EXPECT_EQ(fl.rounds_run(), 30u);
}

TEST(FederatedTest, FedAvgDegradesUnderPoisoning) {
  FederatedLearning clean(BaseConfig(Aggregation::kFedAvg, 0.0), nullptr,
                          nullptr);
  FederatedLearning poisoned(BaseConfig(Aggregation::kFedAvg, 0.4), nullptr,
                             nullptr);
  double clean_error = clean.RunRounds(30).model_error;
  double poisoned_error = poisoned.RunRounds(30).model_error;
  // 40% sign-flipped attackers severely hurt plain averaging.
  EXPECT_GT(poisoned_error, clean_error * 3);
}

TEST(FederatedTest, BlockDflStableNearFiftyPercent) {
  // The Yang et al. / BlockDFL headline shape: voting + reputation stays
  // stable up to ~50% attackers.
  FederatedLearning defended(BaseConfig(Aggregation::kBlockDfl, 0.5),
                             nullptr, nullptr);
  auto stats = defended.RunRounds(30);
  EXPECT_LT(stats.model_error, 0.5);

  FederatedLearning undefended(BaseConfig(Aggregation::kFedAvg, 0.5),
                               nullptr, nullptr);
  EXPECT_GT(undefended.RunRounds(30).model_error, stats.model_error * 2);
}

TEST(FederatedTest, CommitteeRejectsPoisonedUpdates) {
  FederatedLearning fl(BaseConfig(Aggregation::kBlockDfl, 0.3), nullptr,
                       nullptr);
  auto stats = fl.RunRound();
  // ~30% of 20 workers = 6 poisoned updates rejected in round 1.
  EXPECT_GE(stats.rejected, 4u);
  EXPECT_GE(stats.accepted, 10u);
}

TEST(FederatedTest, ReputationExcludesRepeatOffenders) {
  FlConfig config = BaseConfig(Aggregation::kBlockDfl, 0.3);
  FederatedLearning fl(config, nullptr, nullptr);
  fl.RunRounds(8);
  // Attackers (workers 0..5) should have collapsed reputation.
  size_t excluded = 0;
  for (size_t w = 0; w < config.num_workers; ++w) {
    if (fl.excluded(w)) ++excluded;
  }
  EXPECT_GE(excluded, 4u);
  auto stats = fl.RunRound();
  EXPECT_GE(stats.excluded, 4u);
}

TEST(FederatedTest, FreeRidersScreened) {
  FlConfig config = BaseConfig(Aggregation::kBlockDfl, 0.0);
  config.free_riders = 5;
  FederatedLearning fl(config, nullptr, nullptr);
  auto stats = fl.RunRound();
  EXPECT_EQ(stats.rejected, 5u);  // zero updates rejected
  EXPECT_EQ(stats.accepted, 15u);
}

TEST(FederatedTest, CompressionReducesBytes) {
  FlConfig full = BaseConfig(Aggregation::kBlockDfl, 0.0);
  full.compression_keep = 1.0;
  FlConfig half = full;
  half.compression_keep = 0.5;
  FederatedLearning fl_full(full, nullptr, nullptr);
  FederatedLearning fl_half(half, nullptr, nullptr);
  auto full_stats = fl_full.RunRound();
  auto half_stats = fl_half.RunRound();
  EXPECT_LT(half_stats.bytes_uploaded, full_stats.bytes_uploaded);
  // Training still converges with compression.
  EXPECT_LT(fl_half.RunRounds(30).model_error, 0.5);
}

TEST(FederatedTest, RoundsAnchoredToProvenance) {
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  FederatedLearning fl(BaseConfig(Aggregation::kBlockDfl, 0.2), &store,
                       &clock);
  fl.RunRounds(5);
  EXPECT_EQ(store.anchored_count(), 5u);
  auto history = store.SubjectHistory("global-model");
  ASSERT_EQ(history.size(), 5u);
  EXPECT_EQ(history[0].fields.at("round"), "1");
  EXPECT_EQ(history[4].fields.at("round"), "5");
}

// Regression: a round whose provenance record fails to anchor must surface
// that failure in RoundStats::provenance (previously the Anchor status was
// discarded, so a run with a lineage hole reported clean stats). Two runs
// with the same seed share round record ids ("fl-round-<n>-<seed>"), so
// the second run's anchors all collide.
TEST(FederatedTest, AnchorFailureSurfacesInRoundStats) {
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  FederatedLearning first(BaseConfig(Aggregation::kFedAvg, 0.0), &store,
                          &clock);
  EXPECT_TRUE(first.RunRounds(3).provenance.ok());
  EXPECT_EQ(store.anchored_count(), 3u);

  FederatedLearning second(BaseConfig(Aggregation::kFedAvg, 0.0), &store,
                           &clock);
  auto stats = second.RunRounds(3);
  EXPECT_TRUE(stats.provenance.IsAlreadyExists());
  // The colliding rounds really did not anchor.
  EXPECT_EQ(store.anchored_count(), 3u);
}

TEST(FederatedTest, DeterministicAcrossRuns) {
  auto run = [] {
    FederatedLearning fl(BaseConfig(Aggregation::kBlockDfl, 0.3), nullptr,
                         nullptr);
    return fl.RunRounds(10).model_error;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace ml
}  // namespace provledger
