// 256-bit arithmetic tests: limb ops cross-checked against native integers,
// field axioms over the secp256k1 prime, and modular identities.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/u256.h"

namespace provledger {
namespace crypto {
namespace {

U256 RandomU256(Rng* rng) {
  U256 v;
  for (auto& limb : v.limb) limb = rng->NextU64();
  return v;
}

TEST(U256Test, HexRoundTrip) {
  const char* hex =
      "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef";
  U256 v = U256::FromHex(hex);
  EXPECT_EQ(v.ToHex(), hex);
}

TEST(U256Test, BytesBigEndianRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    U256 v = RandomU256(&rng);
    Bytes b = v.ToBytesBE();
    ASSERT_EQ(b.size(), 32u);
    EXPECT_EQ(U256::FromBytesBE(b.data()), v);
  }
}

TEST(U256Test, CmpOrdering) {
  U256 small = U256::FromU64(5);
  U256 big = U256::FromHex(
      "0000000000000001000000000000000000000000000000000000000000000000");
  EXPECT_EQ(Cmp(small, small), 0);
  EXPECT_LT(Cmp(small, big), 0);
  EXPECT_GT(Cmp(big, small), 0);
}

TEST(U256Test, AddSubInverse) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    U256 a = RandomU256(&rng);
    U256 b = RandomU256(&rng);
    U256 sum, back;
    uint64_t carry = AddWithCarry(a, b, &sum);
    uint64_t borrow = SubWithBorrow(sum, b, &back);
    // (a + b) - b == a mod 2^256, and carry/borrow agree.
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);
  }
}

TEST(U256Test, BitLength) {
  EXPECT_EQ(U256::Zero().BitLength(), 0u);
  EXPECT_EQ(U256::One().BitLength(), 1u);
  EXPECT_EQ(U256::FromU64(0x80).BitLength(), 8u);
  U256 top = U256::FromHex(
      "8000000000000000000000000000000000000000000000000000000000000000");
  EXPECT_EQ(top.BitLength(), 256u);
}

TEST(U256Test, SmallModularArithmeticMatchesNative) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    uint64_t a = rng.NextBelow(1u << 20);
    uint64_t b = rng.NextBelow(1u << 20);
    uint64_t m = 2 + rng.NextBelow(1u << 20);
    U256 am = U256::FromU64(a % m), bm = U256::FromU64(b % m),
         mm = U256::FromU64(m);
    EXPECT_EQ(AddMod(am, bm, mm), U256::FromU64((a % m + b % m) % m));
    EXPECT_EQ(MulMod(am, bm, mm),
              U256::FromU64(((a % m) * (b % m)) % m));
  }
}

TEST(U256Test, SubModWrapsCorrectly) {
  U256 m = U256::FromU64(97);
  EXPECT_EQ(SubMod(U256::FromU64(5), U256::FromU64(9), m), U256::FromU64(93));
  EXPECT_EQ(SubMod(U256::FromU64(9), U256::FromU64(5), m), U256::FromU64(4));
}

TEST(U256Test, ExpModSmall) {
  // 3^20 mod 1000003 = 3486784401 mod 1000003
  uint64_t expected = 1;
  for (int i = 0; i < 20; ++i) expected = expected * 3 % 1000003;
  EXPECT_EQ(ExpMod(U256::FromU64(3), U256::FromU64(20),
                   U256::FromU64(1000003)),
            U256::FromU64(expected));
}

TEST(U256Test, FermatLittleTheoremSmallPrime) {
  // a^(p-1) ≡ 1 (mod p) for prime p = 1000003.
  U256 p = U256::FromU64(1000003);
  EXPECT_EQ(ExpMod(U256::FromU64(123456), U256::FromU64(1000002), p),
            U256::One());
}

TEST(FieldTest, MulMatchesMulModAgainstPrime) {
  // FieldMul's fast fold must agree with the generic peasant multiplier.
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    U256 a = ReduceMod(RandomU256(&rng), FieldP());
    U256 b = ReduceMod(RandomU256(&rng), FieldP());
    EXPECT_EQ(FieldMul(a, b), MulMod(a, b, FieldP()));
  }
}

TEST(FieldTest, FieldAxioms) {
  Rng rng(13);
  for (int i = 0; i < 30; ++i) {
    U256 a = ReduceMod(RandomU256(&rng), FieldP());
    U256 b = ReduceMod(RandomU256(&rng), FieldP());
    U256 c = ReduceMod(RandomU256(&rng), FieldP());
    // Commutativity and associativity (mul), distributivity.
    EXPECT_EQ(FieldMul(a, b), FieldMul(b, a));
    EXPECT_EQ(FieldMul(FieldMul(a, b), c), FieldMul(a, FieldMul(b, c)));
    EXPECT_EQ(FieldMul(a, FieldAdd(b, c)),
              FieldAdd(FieldMul(a, b), FieldMul(a, c)));
  }
}

TEST(FieldTest, InverseIsInverse) {
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    U256 a = ReduceMod(RandomU256(&rng), FieldP());
    if (a.IsZero()) continue;
    EXPECT_EQ(FieldMul(a, FieldInv(a)), U256::One());
  }
}

TEST(FieldTest, SqrtOfSquareRoundTrips) {
  Rng rng(19);
  for (int i = 0; i < 20; ++i) {
    U256 a = ReduceMod(RandomU256(&rng), FieldP());
    U256 sq = FieldSqr(a);
    U256 root = FieldSqrt(sq);
    // root is ±a.
    bool plus = root == a;
    bool minus = root == FieldSub(U256::Zero(), a);
    EXPECT_TRUE(plus || minus);
  }
}

TEST(FieldTest, FieldConstantsSane) {
  // p and n are both 256-bit and p > n.
  EXPECT_EQ(FieldP().BitLength(), 256u);
  EXPECT_EQ(OrderN().BitLength(), 256u);
  EXPECT_GT(Cmp(FieldP(), OrderN()), 0);
}

TEST(FieldTest, ReduceModIdempotent) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    U256 a = RandomU256(&rng);
    U256 r = ReduceMod(a, FieldP());
    EXPECT_LT(Cmp(r, FieldP()), 0);
    EXPECT_EQ(ReduceMod(r, FieldP()), r);
  }
}

}  // namespace
}  // namespace crypto
}  // namespace provledger
