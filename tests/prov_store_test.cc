// ProvenanceStore tests: anchoring, indexes, proofs, auditor sweep,
// rebuild-from-chain, batching, and ProvChain's privacy (hashed agents).

#include <gtest/gtest.h>

#include <set>

#include "prov/capture.h"
#include "prov/store.h"

namespace provledger {
namespace prov {
namespace {

ProvenanceRecord Rec(const std::string& id, const std::string& subject,
                     const std::string& agent, Timestamp ts,
                     std::vector<std::string> inputs = {}) {
  ProvenanceRecord rec;
  rec.record_id = id;
  rec.operation = "update";
  rec.subject = subject;
  rec.agent = agent;
  rec.timestamp = ts;
  rec.inputs = std::move(inputs);
  return rec;
}

class StoreTest : public ::testing::Test {
 protected:
  StoreTest() : clock_(1'000'000), store_(&chain_, &clock_) {}
  ledger::Blockchain chain_;
  SimClock clock_;
  ProvenanceStore store_;
};

TEST_F(StoreTest, AnchorAndFetch) {
  ASSERT_TRUE(store_.Anchor(Rec("r1", "file-1", "alice", 100)).ok());
  EXPECT_EQ(chain_.height(), 1u);
  EXPECT_TRUE(store_.HasRecord("r1"));
  auto rec = store_.GetRecord("r1");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->subject, "file-1");
  EXPECT_EQ(store_.anchored_count(), 1u);
}

TEST_F(StoreTest, DuplicateRecordRejected) {
  ASSERT_TRUE(store_.Anchor(Rec("r1", "f", "a", 100)).ok());
  EXPECT_TRUE(store_.Anchor(Rec("r1", "f", "a", 200)).IsAlreadyExists());
}

TEST_F(StoreTest, InvalidRecordRejected) {
  ProvenanceRecord bad;  // everything empty
  EXPECT_TRUE(store_.Anchor(bad).IsInvalidArgument());
  EXPECT_EQ(chain_.height(), 0u);
}

TEST_F(StoreTest, BatchingAnchorsOneBlock) {
  ProvenanceStoreOptions opts;
  opts.batch_size = 4;
  ProvenanceStore batched(&chain_, &clock_, opts);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        batched.Anchor(Rec("b" + std::to_string(i), "f", "a", 100 + i)).ok());
  }
  EXPECT_EQ(chain_.height(), 0u);  // still buffered
  EXPECT_EQ(batched.pending_count(), 3u);
  ASSERT_TRUE(batched.Anchor(Rec("b3", "f", "a", 103)).ok());
  EXPECT_EQ(chain_.height(), 1u);  // one block for the whole batch
  EXPECT_EQ(batched.pending_count(), 0u);
  auto block = chain_.GetBlock(1);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->transactions.size(), 4u);
}

TEST_F(StoreTest, SignedAnchoring) {
  crypto::PrivateKey key = crypto::PrivateKey::FromSeed(std::string("alice"));
  ASSERT_TRUE(store_.Anchor(Rec("r1", "f", "alice", 100), &key).ok());
  auto block = chain_.GetBlock(1);
  ASSERT_TRUE(block.ok());
  EXPECT_TRUE(block->transactions[0].IsSigned());
  EXPECT_TRUE(chain_.VerifyIntegrity().ok());
}

TEST_F(StoreTest, QueriesThroughGraph) {
  ASSERT_TRUE(store_.Anchor(Rec("r1", "doc", "alice", 100)).ok());
  ASSERT_TRUE(store_.Anchor(Rec("r2", "doc", "bob", 200)).ok());
  ASSERT_TRUE(
      store_.Anchor(Rec("r3", "summary", "bob", 300, {"doc"})).ok());

  auto history = store_.SubjectHistory("doc");
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].record_id, "r1");

  auto by_bob = store_.ByAgent("bob");
  EXPECT_EQ(by_bob.size(), 2u);

  auto lineage = store_.Lineage("summary");
  ASSERT_EQ(lineage.size(), 1u);
  EXPECT_EQ(lineage[0], "doc");
}

TEST_F(StoreTest, RecordProofVerifies) {
  ASSERT_TRUE(store_.Anchor(Rec("r1", "f", "a", 100)).ok());
  ASSERT_TRUE(store_.Anchor(Rec("r2", "f", "a", 200)).ok());
  auto proof = store_.ProveRecord("r1");
  ASSERT_TRUE(proof.ok());
  auto rec = store_.GetRecord("r1");
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(store_.VerifyRecordProof(rec.value(), proof.value()));
  // A different record fails against that proof.
  auto rec2 = store_.GetRecord("r2");
  ASSERT_TRUE(rec2.ok());
  EXPECT_FALSE(store_.VerifyRecordProof(rec2.value(), proof.value()));
  EXPECT_FALSE(store_.ProveRecord("ghost").ok());
}

TEST_F(StoreTest, AuditAllDetectsTampering) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        store_.Anchor(Rec("r" + std::to_string(i), "f", "a", 100 + i)).ok());
  }
  auto audit = store_.AuditAll();
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit.value(), 5u);

  // Tamper with a block in storage: the auditor must notice.
  ASSERT_TRUE(chain_.TamperForTesting(2, 0, 0x55).ok());
  EXPECT_FALSE(store_.AuditAll().ok());
}

TEST_F(StoreTest, RebuildFromChainRecoversState) {
  ASSERT_TRUE(store_.Anchor(Rec("r1", "doc", "alice", 100)).ok());
  ASSERT_TRUE(store_.Anchor(Rec("r2", "sum", "bob", 200, {"doc"})).ok());

  ProvenanceStore rebuilt(&chain_, &clock_);
  ASSERT_TRUE(rebuilt.RebuildFromChain().ok());
  EXPECT_EQ(rebuilt.anchored_count(), 2u);
  EXPECT_TRUE(rebuilt.HasRecord("r1"));
  auto lineage = rebuilt.Lineage("sum");
  ASSERT_EQ(lineage.size(), 1u);
  EXPECT_EQ(lineage[0], "doc");
  // Proofs still work on the rebuilt store.
  auto proof = rebuilt.ProveRecord("r2");
  ASSERT_TRUE(proof.ok());
}

TEST_F(StoreTest, PendingDuplicateRejected) {
  // A duplicate of a *buffered* (not yet flushed) record must be rejected,
  // otherwise Flush() double-indexes and corrupts graph state mid-batch.
  ProvenanceStoreOptions opts;
  opts.batch_size = 4;
  ProvenanceStore batched(&chain_, &clock_, opts);
  ASSERT_TRUE(batched.Anchor(Rec("dup", "f", "a", 100)).ok());
  EXPECT_EQ(batched.pending_count(), 1u);
  EXPECT_TRUE(batched.Anchor(Rec("dup", "f", "a", 200)).IsAlreadyExists());
  EXPECT_EQ(batched.pending_count(), 1u);
  ASSERT_TRUE(batched.Flush().ok());
  EXPECT_EQ(batched.anchored_count(), 1u);
  // Once flushed, the id stays taken; a fresh id goes through.
  EXPECT_TRUE(batched.Anchor(Rec("dup", "f", "a", 300)).IsAlreadyExists());
  ASSERT_TRUE(batched.Anchor(Rec("dup2", "f", "a", 300)).ok());
}

TEST_F(StoreTest, AnchorBatchRejectsIntraBatchDuplicateAndRollsBack) {
  Status s = store_.AnchorBatch(
      {Rec("x1", "f", "a", 100), Rec("x1", "f", "a", 200)});
  EXPECT_TRUE(s.IsAlreadyExists());
  // The failed batch leaves nothing behind: no buffered records, and a
  // corrected retry that reuses the id goes through cleanly.
  EXPECT_EQ(store_.pending_count(), 0u);
  EXPECT_EQ(chain_.height(), 0u);
  ASSERT_TRUE(store_.AnchorBatch(
                  {Rec("x1", "f", "a", 100), Rec("x2", "f", "a", 200)})
                  .ok());
  EXPECT_EQ(store_.anchored_count(), 2u);
}

TEST_F(StoreTest, FailedFlushKeepsRecordsBuffered) {
  // A chain that refuses the block (too many txs) must not cost us the
  // buffered records: they stay pending, ready for a retry.
  ledger::ChainOptions chain_opts;
  chain_opts.max_block_txs = 2;
  ledger::Blockchain strict_chain(chain_opts);
  ProvenanceStoreOptions opts;
  opts.batch_size = 3;
  ProvenanceStore batched(&strict_chain, &clock_, opts);
  ASSERT_TRUE(batched.Anchor(Rec("r1", "f", "a", 100)).ok());
  ASSERT_TRUE(batched.Anchor(Rec("r2", "f", "a", 200)).ok());
  EXPECT_FALSE(batched.Anchor(Rec("r3", "f", "a", 300)).ok());  // flush fails
  EXPECT_EQ(batched.pending_count(), 3u);
  EXPECT_EQ(strict_chain.height(), 0u);
  EXPECT_EQ(batched.anchored_count(), 0u);
}

TEST_F(StoreTest, RebuildRestoresNonce) {
  ASSERT_TRUE(store_.Anchor(Rec("r1", "f", "a", 100)).ok());
  ASSERT_TRUE(store_.Anchor(Rec("r2", "f", "a", 200)).ok());

  ProvenanceStore rebuilt(&chain_, &clock_);
  ASSERT_TRUE(rebuilt.RebuildFromChain().ok());
  ASSERT_TRUE(rebuilt.Anchor(Rec("r3", "f", "a", 300)).ok());

  // Every prov/record transaction on the chain must carry a distinct
  // nonce; a rebuild that reset the counter would reuse one.
  std::set<uint64_t> nonces;
  for (const auto& tx : chain_.GetChannelTransactions("prov")) {
    EXPECT_TRUE(nonces.insert(tx.nonce).second)
        << "nonce reused: " << tx.nonce;
  }
  EXPECT_EQ(nonces.size(), 3u);
}

TEST_F(StoreTest, AuditAllAfterRebuild) {
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        store_.Anchor(Rec("r" + std::to_string(i), "f", "a", 100 + i)).ok());
  }
  ProvenanceStore rebuilt(&chain_, &clock_);
  ASSERT_TRUE(rebuilt.RebuildFromChain().ok());
  auto audit = rebuilt.AuditAll();
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit.value(), 6u);
  // Tampering after the rebuild is still caught.
  ASSERT_TRUE(chain_.TamperForTesting(3, 0, 0x55).ok());
  EXPECT_FALSE(rebuilt.AuditAll().ok());
}

TEST_F(StoreTest, CachedBlockProvesWithoutMerkleRebuild) {
  ASSERT_TRUE(store_.AnchorBatch({Rec("r1", "f", "a", 100),
                                  Rec("r2", "f", "a", 200),
                                  Rec("r3", "f", "a", 300)})
                  .ok());
  size_t builds_before = chain_.merkle_tree_builds();
  ASSERT_TRUE(store_.ProveRecord("r1").ok());
  // First proof against the block builds its tree exactly once...
  EXPECT_EQ(chain_.merkle_tree_builds(), builds_before + 1);
  // ...and every further proof against the cached block builds zero trees.
  ASSERT_TRUE(store_.ProveRecord("r2").ok());
  ASSERT_TRUE(store_.ProveRecord("r3").ok());
  ASSERT_TRUE(store_.ProveRecord("r1").ok());
  EXPECT_EQ(chain_.merkle_tree_builds(), builds_before + 1);

  // AuditAll re-proves every record but only ever builds one tree per
  // block, not one per record.
  size_t audit_baseline = chain_.merkle_tree_builds();
  auto audit = store_.AuditAll();
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit.value(), 3u);
  EXPECT_EQ(chain_.merkle_tree_builds(), audit_baseline);
}

TEST_F(StoreTest, FlushIndexesWholeBatchPastMidBatchIndexFailure) {
  // Regression: a mid-batch IndexRecord failure used to abort the loop,
  // leaving that record AND the rest of the batch on-chain but invisible
  // to queries. Force one by injecting a buffered record's id into the
  // shared graph out of band (the SciBlock workflows mutate it directly).
  ProvenanceStoreOptions opts;
  opts.batch_size = 10;
  ProvenanceStore batched(&chain_, &clock_, opts);
  ASSERT_TRUE(batched.Anchor(Rec("r1", "f", "a", 100)).ok());
  ASSERT_TRUE(batched.Anchor(Rec("r2", "f", "a", 200)).ok());
  ASSERT_TRUE(batched.Anchor(Rec("r3", "f", "a", 300)).ok());
  // r2 lands in the graph behind the store's back: its IndexRecord in the
  // upcoming flush must fail with AlreadyExists.
  ASSERT_TRUE(batched.mutable_graph()->AddRecord(Rec("r2", "f", "a", 200)).ok());

  Status s = batched.Flush();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("2/3"), std::string::npos) << s.ToString();

  // The block made it on-chain, and every *other* record of the batch is
  // still indexed and auditable — r3 was not abandoned behind r2's failure.
  EXPECT_EQ(chain_.height(), 1u);
  EXPECT_TRUE(batched.HasRecord("r1"));
  EXPECT_TRUE(batched.HasRecord("r3"));
  EXPECT_EQ(batched.SubjectHistory("f").size(), 3u);
  EXPECT_EQ(batched.anchored_count(), 2u);  // r2's IndexRecord failed
  EXPECT_EQ(batched.pending_count(), 0u);
  ASSERT_TRUE(batched.ProveRecord("r1").ok());
  ASSERT_TRUE(batched.ProveRecord("r3").ok());
}

TEST_F(StoreTest, PrivacyModeHashesAgents) {
  ProvenanceStoreOptions opts;
  opts.hash_agent_ids = true;
  ProvenanceStore anon(&chain_, &clock_, opts);
  ASSERT_TRUE(anon.Anchor(Rec("r1", "f", "alice", 100)).ok());

  // On-chain record does not contain "alice".
  auto block = chain_.GetBlock(1);
  ASSERT_TRUE(block.ok());
  auto rec = ProvenanceRecord::Decode(block->transactions[0].payload);
  ASSERT_TRUE(rec.ok());
  EXPECT_NE(rec->agent, "alice");
  EXPECT_EQ(rec->agent.rfind("anon-", 0), 0u);

  // Deterministic pseudonym: queries via OnChainAgentId still work.
  EXPECT_EQ(anon.ByAgent(anon.OnChainAgentId("alice")).size(), 1u);
  EXPECT_TRUE(anon.ByAgent("alice").empty());
}

class CaptureTest : public ::testing::Test {
 protected:
  CaptureTest() : clock_(0), store_(&chain_, &clock_) {}
  ledger::Blockchain chain_;
  SimClock clock_;
  ProvenanceStore store_;
};

TEST_F(CaptureTest, DirectCaptureRequiresKey) {
  DirectCapture direct(&store_, &clock_);
  direct.RegisterUser("alice",
                      crypto::PrivateKey::FromSeed(std::string("alice")));
  EXPECT_TRUE(direct.Capture("alice", Rec("r1", "f", "alice", 1)).ok());
  EXPECT_TRUE(direct.Capture("mallory", Rec("r2", "f", "mallory", 2))
                  .IsUnauthenticated());
  EXPECT_EQ(direct.metrics().records, 1u);
  EXPECT_EQ(direct.metrics().auth_failures, 1u);
}

TEST_F(CaptureTest, DataStoreCaptureBatches) {
  DataStoreCapture ds(&store_, &clock_, /*flush_threshold=*/3);
  ASSERT_TRUE(ds.Capture("u", Rec("r1", "f", "store", 1)).ok());
  ASSERT_TRUE(ds.Capture("u", Rec("r2", "f", "store", 2)).ok());
  EXPECT_EQ(chain_.height(), 0u);
  EXPECT_EQ(ds.buffered(), 2u);
  ASSERT_TRUE(ds.Capture("u", Rec("r3", "f", "store", 3)).ok());
  EXPECT_EQ(chain_.height(), 1u);  // flushed as one block
  EXPECT_EQ(ds.buffered(), 0u);
  // Manual flush of a partial buffer.
  ASSERT_TRUE(ds.Capture("u", Rec("r4", "f", "store", 4)).ok());
  ASSERT_TRUE(ds.FlushBuffered().ok());
  EXPECT_EQ(chain_.height(), 2u);
}

TEST_F(CaptureTest, DataStoreCaptureKeepsBufferWhenFlushFails) {
  // Regression: FlushBuffered moved the buffer out before AnchorBatch; on
  // failure the captured records were silently destroyed. They must stay
  // buffered so the flush can be retried.
  ledger::ChainOptions chain_opts;
  chain_opts.max_block_txs = 2;
  ledger::Blockchain strict_chain(chain_opts);
  ProvenanceStore store(&strict_chain, &clock_);
  DataStoreCapture ds(&store, &clock_, /*flush_threshold=*/3);

  ASSERT_TRUE(ds.Capture("u", Rec("r1", "f", "store", 1)).ok());
  ASSERT_TRUE(ds.Capture("u", Rec("r2", "f", "store", 2)).ok());
  // Third capture trips the auto-flush; the chain refuses the 3-tx block.
  EXPECT_FALSE(ds.Capture("u", Rec("r3", "f", "store", 3)).ok());
  EXPECT_EQ(ds.buffered(), 3u);  // nothing lost
  EXPECT_EQ(store.pending_count(), 0u);
  EXPECT_EQ(strict_chain.height(), 0u);

  // An explicit retry still fails (the block is still too big) but keeps
  // the records; no capture was destroyed along the way.
  EXPECT_FALSE(ds.FlushBuffered().ok());
  EXPECT_EQ(ds.buffered(), 3u);
  EXPECT_EQ(ds.metrics().records, 3u);
}

TEST_F(CaptureTest, DataStoreCaptureDoesNotRebufferAnchoredBatch) {
  // Counterpart of the restore-on-failure fix: when the block DID land and
  // only post-append indexing failed, the records are on-chain — putting
  // them back in the buffer would wedge every future flush on duplicates.
  ProvenanceStoreOptions opts;
  opts.batch_size = 8;
  ProvenanceStore store(&chain_, &clock_, opts);
  // A record pending from another producer whose IndexRecord will fail
  // (injected into the shared graph out of band, as the SciBlock shared-
  // graph workflows can).
  ASSERT_TRUE(store.Anchor(Rec("p1", "f", "other", 1)).ok());
  ASSERT_TRUE(store.mutable_graph()->AddRecord(Rec("p1", "f", "other", 1)).ok());

  DataStoreCapture ds(&store, &clock_, /*flush_threshold=*/8);
  ASSERT_TRUE(ds.Capture("u", Rec("r1", "f", "store", 2)).ok());
  ASSERT_TRUE(ds.Capture("u", Rec("r2", "f", "store", 3)).ok());
  // The combined block [p1, r1, r2] lands; p1's indexing fails afterwards.
  Status s = ds.FlushBuffered();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(chain_.height(), 1u);  // the block landed
  EXPECT_EQ(ds.buffered(), 0u);    // capture must NOT re-buffer
  EXPECT_EQ(store.pending_count(), 0u);
  // The capture's records are fully anchored, and later flushes flow.
  EXPECT_TRUE(store.HasRecord("r1"));
  EXPECT_TRUE(store.HasRecord("r2"));
  ASSERT_TRUE(ds.Capture("u", Rec("r3", "f", "store", 4)).ok());
  ASSERT_TRUE(ds.FlushBuffered().ok());
  EXPECT_TRUE(store.HasRecord("r3"));
}

TEST_F(CaptureTest, CentralizedCaptureChecksToken) {
  CentralizedCapture central(&store_, &clock_);
  Bytes token = central.EnrollUser("alice");
  central.PresentToken("alice", token);
  EXPECT_TRUE(central.Capture("alice", Rec("r1", "f", "alice", 1)).ok());
  // Wrong/absent token fails.
  central.PresentToken("bob", ToBytes("forged-token-bytes"));
  EXPECT_TRUE(
      central.Capture("bob", Rec("r2", "f", "bob", 2)).IsUnauthenticated());
  EXPECT_GT(central.metrics().auth_us, 0);
}

TEST_F(CaptureTest, DecentralizedCaptureNeedsQuorum) {
  DecentralizedCapture committee(&store_, &clock_, /*committee_size=*/4,
                                 /*threshold=*/3);
  EXPECT_TRUE(committee.Capture("u", Rec("r1", "f", "u", 1)).ok());
  EXPECT_GT(committee.metrics().messages, 0u);

  // With only 2 of 4 members alive, the 3-threshold fails.
  committee.SetAliveMembers(2);
  EXPECT_TRUE(
      committee.Capture("u", Rec("r2", "f", "u", 2)).IsUnauthenticated());
  committee.SetAliveMembers(3);
  EXPECT_TRUE(committee.Capture("u", Rec("r3", "f", "u", 3)).ok());
}

TEST_F(CaptureTest, PathLatencyOrdering) {
  // Figure 3's qualitative shape: direct < datastore-emit < centralized
  // < decentralized per-record simulated cost.
  SimClock c1(0), c2(0), c3(0), c4(0);
  ledger::Blockchain ch1, ch2, ch3, ch4;
  ProvenanceStore s1(&ch1, &c1), s2(&ch2, &c2), s3(&ch3, &c3), s4(&ch4, &c4);

  DirectCapture direct(&s1, &c1);
  direct.RegisterUser("u", crypto::PrivateKey::FromSeed(std::string("u")));
  DataStoreCapture ds(&s2, &c2, 1);
  CentralizedCapture central(&s3, &c3);
  central.PresentToken("u", central.EnrollUser("u"));
  DecentralizedCapture committee(&s4, &c4);

  const int kN = 10;
  for (int i = 0; i < kN; ++i) {
    std::string id = "r" + std::to_string(i);
    ASSERT_TRUE(ds.Capture("u", Rec(id, "f", "u", i)).ok());
    ASSERT_TRUE(direct.Capture("u", Rec(id, "f", "u", i)).ok());
    ASSERT_TRUE(central.Capture("u", Rec(id, "f", "u", i)).ok());
    ASSERT_TRUE(committee.Capture("u", Rec(id, "f", "u", i)).ok());
  }
  EXPECT_LT(c2.NowMicros(), c1.NowMicros());
  EXPECT_LT(c1.NowMicros(), c3.NowMicros());
  EXPECT_LT(c3.NowMicros(), c4.NowMicros());
}

}  // namespace
}  // namespace prov
}  // namespace provledger
