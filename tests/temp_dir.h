// Shared filesystem scaffolding for suites that exercise durable state
// (recovery, replication): a unique temp directory per test and its
// recursive cleanup. Header-only so the one definition serves every suite
// (tests/*.cc are each their own executable).

#ifndef PROVLEDGER_TESTS_TEMP_DIR_H_
#define PROVLEDGER_TESTS_TEMP_DIR_H_

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

namespace provledger {
namespace testutil {

inline std::string MakeTempDir() {
  std::string tmpl = ::testing::TempDir() + "provledger_test_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return made == nullptr ? std::string() : std::string(made);
}

inline void RemoveTree(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    const std::string path = dir + "/" + name;
    bool is_dir = entry->d_type == DT_DIR;
    if (entry->d_type == DT_UNKNOWN) {
      // Some filesystems don't fill d_type; fall back to stat.
      struct stat st;
      is_dir = ::lstat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
    }
    if (is_dir) {
      RemoveTree(path);
    } else {
      ::unlink(path.c_str());
    }
  }
  ::closedir(d);
  ::rmdir(dir.c_str());
}

}  // namespace testutil
}  // namespace provledger

#endif  // PROVLEDGER_TESTS_TEMP_DIR_H_
