// Supply-chain tests: legitimate registration, confirmation-based transfer,
// cold chain alerts, PrivChain ZKRP disclosure, PUF authentication,
// counterfeit detection.

#include <gtest/gtest.h>

#include "domains/supplychain/puf.h"
#include "domains/supplychain/supply_chain.h"

namespace provledger {
namespace supplychain {
namespace {

class SupplyChainTest : public ::testing::Test {
 protected:
  SupplyChainTest() : clock_(0), store_(&chain_, &clock_), sc_(&store_, &clock_) {
    sc_.AccreditManufacturer("acme-pharma");
    EXPECT_TRUE(sc_.RegisterProduct("prod-1", "vaccine", "batch-9",
                                    "acme-pharma", "2028-01")
                    .ok());
  }
  ledger::Blockchain chain_;
  SimClock clock_;
  prov::ProvenanceStore store_;
  SupplyChain sc_;
};

TEST_F(SupplyChainTest, OnlyAccreditedManufacturersRegister) {
  // The §4.6 "illegitimate product registration" defence.
  EXPECT_TRUE(sc_.RegisterProduct("fake-1", "vaccine", "b", "shady-corp", "e")
                  .IsPermissionDenied());
  EXPECT_TRUE(sc_.RegisterProduct("prod-1", "vaccine", "b", "acme-pharma", "e")
                  .IsAlreadyExists());
  EXPECT_EQ(sc_.product_count(), 1u);
}

TEST_F(SupplyChainTest, ConfirmationBasedTransfer) {
  // Cui et al.: two-phase custody transfer.
  ASSERT_TRUE(sc_.InitiateTransfer("prod-1", "acme-pharma", "dist-co").ok());
  auto product = sc_.GetProduct("prod-1");
  ASSERT_TRUE(product.ok());
  EXPECT_EQ(product->owner, "acme-pharma");  // not yet transferred

  // Only the named recipient may confirm (anti-theft property).
  EXPECT_TRUE(sc_.ConfirmTransfer("prod-1", "thief").IsPermissionDenied());
  ASSERT_TRUE(sc_.ConfirmTransfer("prod-1", "dist-co").ok());
  product = sc_.GetProduct("prod-1");
  ASSERT_TRUE(product.ok());
  EXPECT_EQ(product->owner, "dist-co");
  EXPECT_EQ(product->trace, "acme-pharma>dist-co");
}

TEST_F(SupplyChainTest, TransferGuards) {
  EXPECT_TRUE(
      sc_.InitiateTransfer("prod-1", "not-owner", "x").IsPermissionDenied());
  EXPECT_TRUE(sc_.ConfirmTransfer("prod-1", "x").IsFailedPrecondition());
  ASSERT_TRUE(sc_.InitiateTransfer("prod-1", "acme-pharma", "dist-co").ok());
  // No double-initiate while pending.
  EXPECT_TRUE(sc_.InitiateTransfer("prod-1", "acme-pharma", "other")
                  .IsFailedPrecondition());
  // Cancel by either party; stranger cannot.
  EXPECT_TRUE(sc_.CancelTransfer("prod-1", "stranger").IsPermissionDenied());
  ASSERT_TRUE(sc_.CancelTransfer("prod-1", "dist-co").ok());
  auto product = sc_.GetProduct("prod-1");
  ASSERT_TRUE(product.ok());
  EXPECT_FALSE(product->pending_transfer_to.has_value());
}

TEST_F(SupplyChainTest, ColdChainAlerts) {
  ASSERT_TRUE(sc_.SetColdChainRange("prod-1", 2, 8).ok());
  ASSERT_TRUE(sc_.RecordSensorReading("prod-1", "sensor-1", 5).ok());
  EXPECT_TRUE(sc_.alerts().empty());
  ASSERT_TRUE(sc_.RecordSensorReading("prod-1", "sensor-1", 12).ok());
  ASSERT_EQ(sc_.alerts().size(), 1u);
  EXPECT_EQ(sc_.alerts()[0].reading, 12);
  EXPECT_EQ(sc_.alerts()[0].high, 8);
  // Readings are on-ledger either way.
  auto history = sc_.History("prod-1");
  size_t readings = 0;
  for (const auto& rec : history) {
    if (rec.operation == "sensor-reading") ++readings;
  }
  EXPECT_EQ(readings, 2u);
}

TEST_F(SupplyChainTest, ColdChainGuards) {
  EXPECT_TRUE(sc_.RecordSensorReading("prod-1", "s", 5).IsFailedPrecondition());
  EXPECT_TRUE(sc_.SetColdChainRange("prod-1", 9, 2).IsInvalidArgument());
  EXPECT_TRUE(sc_.SetColdChainRange("ghost", 2, 8).IsNotFound());
}

TEST_F(SupplyChainTest, PrivateReadingZkrpRoundTrip) {
  // PrivChain: the ledger sees a commitment + range, never the reading.
  auto record_id = sc_.RecordPrivateReading("prod-1", "sensor-1", 5, 2, 8);
  ASSERT_TRUE(record_id.ok());
  EXPECT_TRUE(sc_.VerifyPrivateReading(record_id.value()).ok());

  auto rec = store_.GetRecord(record_id.value());
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->operation, "private-sensor-proof");
  EXPECT_EQ(rec->fields.at("range"), "2..8");
  // The raw reading never appears in the record fields.
  for (const auto& [key, value] : rec->fields) {
    if (key == "range") continue;
    EXPECT_NE(value, "5") << key;
  }
}

TEST_F(SupplyChainTest, PrivateReadingOutOfRangeUnprovable) {
  EXPECT_FALSE(sc_.RecordPrivateReading("prod-1", "s", 12, 2, 8).ok());
}

TEST_F(SupplyChainTest, RecallBlocksTransfersAndAuthenticity) {
  ASSERT_TRUE(sc_.Recall("prod-1", "contamination").ok());
  EXPECT_TRUE(sc_.InitiateTransfer("prod-1", "acme-pharma", "x")
                  .IsFailedPrecondition());
  EXPECT_FALSE(sc_.VerifyAuthenticity("prod-1", "acme-pharma"));
}

TEST_F(SupplyChainTest, CounterfeitDetection) {
  // Unknown id => counterfeit; wrong holder => counterfeit/diverted.
  EXPECT_FALSE(sc_.VerifyAuthenticity("prod-999", "anyone"));
  EXPECT_TRUE(sc_.VerifyAuthenticity("prod-1", "acme-pharma"));
  EXPECT_FALSE(sc_.VerifyAuthenticity("prod-1", "grey-market"));
}

TEST_F(SupplyChainTest, LedgerHistoryIsComplete) {
  ASSERT_TRUE(sc_.InitiateTransfer("prod-1", "acme-pharma", "dist-co").ok());
  ASSERT_TRUE(sc_.ConfirmTransfer("prod-1", "dist-co").ok());
  auto history = sc_.History("prod-1");
  ASSERT_EQ(history.size(), 3u);  // register, initiate, confirm
  EXPECT_EQ(history[0].operation, "register");
  EXPECT_EQ(history[1].operation, "transfer-initiate");
  EXPECT_EQ(history[2].operation, "transfer-confirm");
  for (const auto& rec : history) EXPECT_TRUE(rec.Validate().ok());
  EXPECT_TRUE(chain_.VerifyIntegrity().ok());
}

TEST(PufTest, EnrollmentAndAuthentication) {
  PufDevice device("chip-1", ToBytes("intrinsic-variation-1"));
  PufVerifier verifier;
  ASSERT_TRUE(verifier.Enroll(device, 5, /*seed=*/77).ok());
  EXPECT_EQ(verifier.RemainingCrps("chip-1"), 5u);

  // The genuine device authenticates.
  ASSERT_TRUE(verifier
                  .Authenticate("chip-1",
                                [&](const Bytes& c) { return device.Respond(c); })
                  .ok());
  EXPECT_EQ(verifier.RemainingCrps("chip-1"), 4u);
}

TEST(PufTest, CloneFailsAuthentication) {
  PufDevice device("chip-1", ToBytes("intrinsic-variation-1"));
  // A counterfeit with different silicon cannot answer.
  PufDevice clone("chip-1", ToBytes("different-silicon"));
  PufVerifier verifier;
  ASSERT_TRUE(verifier.Enroll(device, 3, 77).ok());
  EXPECT_TRUE(verifier
                  .Authenticate("chip-1",
                                [&](const Bytes& c) { return clone.Respond(c); })
                  .IsUnauthenticated());
  // CRP consumed even on failure (replay resistance).
  EXPECT_EQ(verifier.RemainingCrps("chip-1"), 2u);
}

TEST(PufTest, CrpsAreSingleUse) {
  PufDevice device("chip-2", ToBytes("x"));
  PufVerifier verifier;
  ASSERT_TRUE(verifier.Enroll(device, 1, 1).ok());
  ASSERT_TRUE(verifier
                  .Authenticate("chip-2",
                                [&](const Bytes& c) { return device.Respond(c); })
                  .ok());
  auto again = verifier.Authenticate(
      "chip-2", [&](const Bytes& c) { return device.Respond(c); });
  EXPECT_EQ(again.code(), StatusCode::kResourceExhausted);
}

TEST(PufTest, EnrollmentGuards) {
  PufDevice device("chip-3", ToBytes("x"));
  PufVerifier verifier;
  EXPECT_TRUE(verifier.Enroll(device, 0, 1).IsInvalidArgument());
  ASSERT_TRUE(verifier.Enroll(device, 2, 1).ok());
  EXPECT_TRUE(verifier.Enroll(device, 2, 1).IsAlreadyExists());
  EXPECT_TRUE(verifier
                  .Authenticate("unknown",
                                [&](const Bytes& c) { return device.Respond(c); })
                  .IsNotFound());
}

}  // namespace
}  // namespace supplychain
}  // namespace provledger
