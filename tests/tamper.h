// Shared tamper-injection utilities for integrity suites (audit,
// recovery, replication): flip bytes at chosen offsets in durable
// artifacts — framed chain-log frames, kv segment files, store snapshots
// — or corrupt one transaction of a block, in memory or installed in a
// live chain. Centralizing the corruption code means every suite tampers
// the same way, and localization tests can name the exact frame/block/tx
// they damaged. Header-only so the one definition serves every suite
// (tests/*.cc are each their own executable).

#ifndef PROVLEDGER_TESTS_TAMPER_H_
#define PROVLEDGER_TESTS_TAMPER_H_

#include <dirent.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/fileio.h"
#include "common/framed_log.h"
#include "ledger/chain.h"

namespace provledger {
namespace testutil {

/// XOR one byte of `path` at `offset` with `mask`. Out-of-range offsets
/// are InvalidArgument; mask 0 would be a no-op and is rejected too.
inline Status FlipByteInFile(const std::string& path, size_t offset,
                             uint8_t mask = 0x01) {
  if (mask == 0) return Status::InvalidArgument("mask 0 tampers nothing");
  PROVLEDGER_ASSIGN_OR_RETURN(Bytes data, ReadFileToBytes(path));
  if (offset >= data.size()) {
    return Status::InvalidArgument("tamper offset past end of file");
  }
  data[offset] ^= mask;
  return WriteFileAtomic(path, data);
}

/// Byte offset of frame `frame_index` (0-based) in a framed-log file.
/// NotFound when the file holds fewer frames.
inline Result<size_t> FrameOffset(const std::string& path,
                                  size_t frame_index) {
  PROVLEDGER_ASSIGN_OR_RETURN(Bytes data, ReadFileToBytes(path));
  size_t pos = 0;
  size_t index = 0;
  while (pos < data.size()) {
    size_t payload_len = 0;
    FrameScan scan = ScanFrameAt(data, pos, &payload_len);
    if (scan == FrameScan::kTorn) break;
    if (index == frame_index) return pos;
    pos += kFrameHeaderBytes + payload_len;
    ++index;
  }
  return Status::NotFound("frame " + std::to_string(frame_index) +
                          " not present in " + path);
}

/// Flip one payload byte of frame `frame_index` in a framed-log file
/// (chain log or kv segment), leaving the stored CRC stale — the classic
/// bit-rot/tamper signature. Returns the file offset of the damaged
/// frame so tests can pin findings to it.
inline Result<size_t> CorruptFrame(const std::string& path,
                                   size_t frame_index,
                                   size_t payload_offset = 0,
                                   uint8_t mask = 0x01) {
  PROVLEDGER_ASSIGN_OR_RETURN(size_t frame_at, FrameOffset(path, frame_index));
  PROVLEDGER_RETURN_NOT_OK(FlipByteInFile(
      path, frame_at + kFrameHeaderBytes + payload_offset, mask));
  return frame_at;
}

/// Flip one payload byte in the first frame of the lexicographically
/// first *.log segment under `dir` (a FileKvStore data directory).
/// Returns the segment's file name.
inline Result<std::string> CorruptKvSegment(const std::string& dir,
                                            size_t payload_offset = 0,
                                            uint8_t mask = 0x01) {
  std::vector<std::string> segments;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Status::NotFound("no such directory: " + dir);
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".log") == 0) {
      segments.push_back(name);
    }
  }
  ::closedir(d);
  if (segments.empty()) {
    return Status::NotFound("no .log segments under " + dir);
  }
  std::sort(segments.begin(), segments.end());
  PROVLEDGER_RETURN_NOT_OK(
      CorruptFrame(dir + "/" + segments.front(), 0, payload_offset, mask)
          .status());
  return segments.front();
}

/// Flip one byte in the middle of a snapshot (or any opaque) file — deep
/// enough to land in the body, past any header magic.
inline Status CorruptSnapshotFile(const std::string& path) {
  PROVLEDGER_ASSIGN_OR_RETURN(Bytes data, ReadFileToBytes(path));
  if (data.empty()) return Status::InvalidArgument("empty file: " + path);
  return FlipByteInFile(path, data.size() / 2);
}

/// Corrupt one transaction of an in-memory block (for forged-broadcast
/// tests): XOR the first payload byte of `tx_index`.
inline Status TamperBlockTx(ledger::Block* block, size_t tx_index,
                            uint8_t mask = 0x01) {
  if (tx_index >= block->transactions.size()) {
    return Status::InvalidArgument("tx index past end of block");
  }
  if (block->transactions[tx_index].payload.empty()) {
    return Status::InvalidArgument("transaction has no payload to tamper");
  }
  block->transactions[tx_index].payload[0] ^= mask;
  return Status::OK();
}

/// Corrupt one transaction of a block *installed in a live chain*
/// (Blockchain::TamperForTesting wrapper): the Merkle root and installed
/// hash go stale, which is exactly what the continuous auditor must
/// localize to (height, tx_index). Single-threaded tests only — see the
/// TamperForTesting contract.
inline Status TamperChainTx(ledger::Blockchain* chain, uint64_t height,
                            size_t tx_index, uint8_t mask = 0x01) {
  return chain->TamperForTesting(height, tx_index, mask);
}

}  // namespace testutil
}  // namespace provledger

#endif  // PROVLEDGER_TESTS_TAMPER_H_
