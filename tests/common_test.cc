// Unit tests for src/common: Status/Result, bytes/hex, codec, clock, rng.

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/codec.h"
#include "common/crc32.h"
#include "common/hash64.h"
#include "common/rng.h"
#include "common/status.h"

namespace provledger {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::NotFound("missing block");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "not_found: missing block");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kPermissionDenied),
               "permission_denied");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnauthenticated),
               "unauthenticated");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTimedOut), "timed_out");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAborted), "aborted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Doubler(Result<int> in) {
  PROVLEDGER_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubler(21).value(), 42);
  EXPECT_TRUE(Doubler(Status::NotFound("x")).status().IsNotFound());
}

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x7f};
  std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "deadbeef007f");
  auto decoded = HexDecode(hex);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), data);
}

TEST(BytesTest, HexDecodeRejectsBadInput) {
  EXPECT_FALSE(HexDecode("abc").ok());   // odd length
  EXPECT_FALSE(HexDecode("zz").ok());    // non-hex
  EXPECT_TRUE(HexDecode("").ok());       // empty is valid
}

TEST(BytesTest, HexDecodeAcceptsUppercase) {
  auto decoded = HexDecode("DEADBEEF");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(HexEncode(decoded.value()), "deadbeef");
}

TEST(BytesTest, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
}

TEST(BytesTest, StringConversionRoundTrip) {
  std::string s = "provenance";
  EXPECT_EQ(BytesToString(ToBytes(s)), s);
}

TEST(CodecTest, ScalarRoundTrip) {
  Encoder enc;
  enc.PutU8(0xAB);
  enc.PutU16(0xBEEF);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFULL);
  enc.PutI64(-12345);
  enc.PutDouble(3.14159);
  enc.PutBool(true);
  enc.PutString("hello");
  enc.PutBytes({9, 8, 7});

  Decoder dec(enc.buffer());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double dbl;
  bool b;
  std::string str;
  Bytes bytes;
  ASSERT_TRUE(dec.GetU8(&u8).ok());
  ASSERT_TRUE(dec.GetU16(&u16).ok());
  ASSERT_TRUE(dec.GetU32(&u32).ok());
  ASSERT_TRUE(dec.GetU64(&u64).ok());
  ASSERT_TRUE(dec.GetI64(&i64).ok());
  ASSERT_TRUE(dec.GetDouble(&dbl).ok());
  ASSERT_TRUE(dec.GetBool(&b).ok());
  ASSERT_TRUE(dec.GetString(&str).ok());
  ASSERT_TRUE(dec.GetBytes(&bytes).ok());
  EXPECT_TRUE(dec.AtEnd());

  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(i64, -12345);
  EXPECT_DOUBLE_EQ(dbl, 3.14159);
  EXPECT_TRUE(b);
  EXPECT_EQ(str, "hello");
  EXPECT_EQ(bytes, (Bytes{9, 8, 7}));
}

TEST(CodecTest, TruncatedInputIsCorruption) {
  Encoder enc;
  enc.PutU32(7);
  Decoder dec(enc.buffer());
  uint64_t v;
  EXPECT_TRUE(dec.GetU64(&v).IsCorruption());
}

TEST(CodecTest, TruncatedStringLengthIsCorruption) {
  Encoder enc;
  enc.PutU32(1000);  // claims 1000 bytes follow; none do
  Decoder dec(enc.buffer());
  std::string s;
  EXPECT_TRUE(dec.GetString(&s).IsCorruption());
}

TEST(CodecTest, UVarintRoundTripAndSizes) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            0xDEADBEEF,
                            (1ULL << 56) - 1,
                            UINT64_MAX};
  for (uint64_t v : cases) {
    Encoder enc;
    enc.PutUVarint(v);
    Decoder dec(enc.buffer());
    uint64_t got;
    ASSERT_TRUE(dec.GetUVarint(&got).ok()) << v;
    EXPECT_EQ(got, v);
    EXPECT_TRUE(dec.AtEnd());
  }
  // Spot-check the LEB128 width contract the columnar codec relies on.
  Encoder enc;
  enc.PutUVarint(127);
  EXPECT_EQ(enc.buffer().size(), 1u);
  enc.Clear();
  enc.PutUVarint(128);
  EXPECT_EQ(enc.buffer().size(), 2u);
  enc.Clear();
  enc.PutUVarint(UINT64_MAX);
  EXPECT_EQ(enc.buffer().size(), 10u);
}

TEST(CodecTest, SVarintRoundTrip) {
  const int64_t cases[] = {0,  1,  -1, 63, -64, 64,
                           -65, 1'000'000, -1'000'000,
                           INT64_MAX, INT64_MIN};
  for (int64_t v : cases) {
    Encoder enc;
    enc.PutSVarint(v);
    Decoder dec(enc.buffer());
    int64_t got;
    ASSERT_TRUE(dec.GetSVarint(&got).ok()) << v;
    EXPECT_EQ(got, v);
    EXPECT_TRUE(dec.AtEnd());
  }
  // Zigzag keeps small-magnitude deltas one byte wide, either sign.
  Encoder enc;
  enc.PutSVarint(-64);
  EXPECT_EQ(enc.buffer().size(), 1u);
}

TEST(CodecTest, VarintRejectsTruncationAndOverlong) {
  uint64_t v;
  {
    // Continuation bit set with no byte following.
    const Bytes truncated = {0x80};
    Decoder dec(truncated);
    EXPECT_TRUE(dec.GetUVarint(&v).IsCorruption());
  }
  {
    // Ten bytes, every one a continuation: runs past the 64-bit maximum.
    const Bytes runaway(10, 0xFF);
    Decoder dec(runaway);
    EXPECT_TRUE(dec.GetUVarint(&v).IsCorruption());
  }
  {
    // Tenth byte may only contribute one bit; 0x02 overflows 64 bits.
    Bytes overlong(9, 0xFF);
    overlong.push_back(0x02);
    Decoder dec(overlong);
    EXPECT_TRUE(dec.GetUVarint(&v).IsCorruption());
  }
}

TEST(CodecTest, CanonicalEncoding) {
  // Re-encoding a decoded structure must be byte-identical (hashing relies
  // on this).
  Encoder enc1;
  enc1.PutString("entity");
  enc1.PutU64(99);
  Decoder dec(enc1.buffer());
  std::string s;
  uint64_t v;
  ASSERT_TRUE(dec.GetString(&s).ok());
  ASSERT_TRUE(dec.GetU64(&v).ok());
  Encoder enc2;
  enc2.PutString(s);
  enc2.PutU64(v);
  EXPECT_EQ(enc1.buffer(), enc2.buffer());
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
  clock.Advance(500);
  EXPECT_EQ(clock.NowMicros(), 1500);
  clock.SetMicros(100);  // cannot go backwards
  EXPECT_EQ(clock.NowMicros(), 1500);
  clock.SetMicros(2000);
  EXPECT_EQ(clock.NowMicros(), 2000);
}

TEST(SystemClockTest, ReturnsPlausibleTime) {
  SystemClock clock;
  Timestamp t1 = clock.NowMicros();
  Timestamp t2 = clock.NowMicros();
  EXPECT_GT(t1, 1'600'000'000'000'000LL);  // after 2020
  EXPECT_GE(t2, t1);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(Crc32Test, MatchesKnownVector) {
  // The canonical IEEE check value for "123456789".
  EXPECT_EQ(Crc32(ToBytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(Bytes{}), 0u);
}

TEST(Crc32Test, SlicedLoopMatchesByteLoop) {
  // Inputs straddling the 8-byte fast path and the byte tail.
  Bytes data;
  for (int i = 0; i < 100; ++i) data.push_back(static_cast<uint8_t>(i * 7));
  for (size_t len = 0; len <= data.size(); ++len) {
    uint32_t whole = Crc32(data.data(), len);
    // Recompute through a deliberately misaligned prefix split.
    Bytes copy(data.begin(), data.begin() + len);
    EXPECT_EQ(Crc32(copy), whole) << "len " << len;
  }
  Bytes flipped = data;
  flipped[50] ^= 0x01;
  EXPECT_NE(Crc32(flipped), Crc32(data));
}

TEST(Hash64Test, DeterministicAndBitSensitive) {
  Bytes data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<uint8_t>(i));
  uint64_t h = Hash64(data);
  EXPECT_EQ(Hash64(data), h);  // deterministic
  for (size_t at : {size_t{0}, size_t{31}, size_t{32}, size_t{999}}) {
    Bytes flipped = data;
    flipped[at] ^= 0x01;
    EXPECT_NE(Hash64(flipped), h) << "flip at " << at;
  }
  // Length is part of the digest (no trivial extension collisions).
  Bytes shorter(data.begin(), data.end() - 1);
  EXPECT_NE(Hash64(shorter), h);
  EXPECT_NE(Hash64(Bytes{}), Hash64(Bytes{0}));
}

TEST(CodecTest, U32ArrayRoundTripAndLimit) {
  std::vector<uint32_t> values = {0, 1, 0xFFFFFFFFu, 42, 7};
  Encoder enc;
  enc.PutU32Array(values);
  Decoder dec(enc.buffer());
  std::vector<uint32_t> out;
  ASSERT_TRUE(dec.GetU32Array(&out, 5).ok());
  EXPECT_EQ(out, values);
  EXPECT_TRUE(dec.AtEnd());
  // A cap below the prefixed length is Corruption, not a huge allocation.
  Decoder capped(enc.buffer());
  EXPECT_TRUE(capped.GetU32Array(&out, 4).IsCorruption());
}

TEST(CodecTest, DecoderOffsetSkipAndPosition) {
  Encoder enc;
  enc.PutU32(7);
  enc.PutString("hello");
  Decoder at(enc.buffer(), 4);  // start past the u32
  std::string s;
  ASSERT_TRUE(at.GetString(&s).ok());
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(at.AtEnd());

  Decoder skip(enc.buffer());
  ASSERT_TRUE(skip.Skip(4).ok());
  EXPECT_EQ(skip.position(), 4u);
  ASSERT_TRUE(skip.GetString(&s).ok());
  EXPECT_TRUE(skip.Skip(1).IsCorruption());

  // Raw-pointer view decodes a sub-range without copying.
  Decoder view(enc.buffer().data() + 4, enc.buffer().size() - 4);
  ASSERT_TRUE(view.GetString(&s).ok());
  EXPECT_EQ(s, "hello");
}

TEST(RngTest, NextRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.NextRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianHasRoughMoments) {
  Rng rng(13);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextGaussian(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, BytesAndAlnum) {
  Rng rng(17);
  Bytes b = rng.NextBytes(37);
  EXPECT_EQ(b.size(), 37u);
  std::string s = rng.NextAlnum(20);
  EXPECT_EQ(s.size(), 20u);
  for (char c : s) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) << c;
  }
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(99);
  Rng child = parent.Fork();
  // Child stream differs from the parent's continued stream.
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

}  // namespace
}  // namespace provledger
