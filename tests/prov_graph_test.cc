// Provenance graph tests: PROV structure, lineage/descendant queries, and
// the SciBlock invalidation cascade.

#include <gtest/gtest.h>

#include "prov/graph.h"

namespace provledger {
namespace prov {
namespace {

ProvenanceRecord Rec(const std::string& id, const std::string& agent,
                     Timestamp ts, std::vector<std::string> inputs,
                     std::vector<std::string> outputs,
                     const std::string& subject = "") {
  ProvenanceRecord rec;
  rec.record_id = id;
  rec.operation = "execute";
  rec.subject = subject.empty() ? (outputs.empty() ? id : outputs[0]) : subject;
  rec.agent = agent;
  rec.timestamp = ts;
  rec.inputs = std::move(inputs);
  rec.outputs = std::move(outputs);
  return rec;
}

// Builds the pipeline: raw -> [t1] -> mid -> [t2] -> out1
//                                      \--> [t3] -> out2 -> [t4] -> final
class GraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(g_.AddRecord(Rec("t1", "alice", 100, {"raw"}, {"mid"})).ok());
    ASSERT_TRUE(g_.AddRecord(Rec("t2", "bob", 200, {"mid"}, {"out1"})).ok());
    ASSERT_TRUE(g_.AddRecord(Rec("t3", "bob", 300, {"mid"}, {"out2"})).ok());
    ASSERT_TRUE(
        g_.AddRecord(Rec("t4", "carol", 400, {"out2"}, {"final"})).ok());
  }
  ProvenanceGraph g_;
};

TEST_F(GraphTest, CountsAndLookup) {
  EXPECT_EQ(g_.record_count(), 4u);
  EXPECT_TRUE(g_.HasRecord("t1"));
  EXPECT_FALSE(g_.HasRecord("tX"));
  auto rec = g_.GetRecord("t2");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->agent, "bob");
  EXPECT_TRUE(g_.GetRecord("nope").status().IsNotFound());
}

TEST_F(GraphTest, DuplicateRecordRejected) {
  EXPECT_TRUE(g_.AddRecord(Rec("t1", "x", 1, {}, {"y"}))
                  .IsAlreadyExists());
}

TEST_F(GraphTest, LineageWalksAncestors) {
  auto lineage = g_.Lineage("final");
  // final <- out2 <- mid <- raw
  EXPECT_EQ(lineage.size(), 3u);
  EXPECT_NE(std::find(lineage.begin(), lineage.end(), "out2"), lineage.end());
  EXPECT_NE(std::find(lineage.begin(), lineage.end(), "mid"), lineage.end());
  EXPECT_NE(std::find(lineage.begin(), lineage.end(), "raw"), lineage.end());
  EXPECT_TRUE(g_.Lineage("raw").empty());
}

TEST_F(GraphTest, DescendantsWalkForward) {
  auto desc = g_.Descendants("raw");
  // raw -> mid -> {out1, out2} -> final
  EXPECT_EQ(desc.size(), 4u);
  EXPECT_TRUE(g_.Descendants("final").empty());
}

TEST_F(GraphTest, ByAgentOrderedByTime) {
  auto recs = g_.ByAgent("bob");
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].record_id, "t2");
  EXPECT_EQ(recs[1].record_id, "t3");
  EXPECT_TRUE(g_.ByAgent("nobody").empty());
}

TEST_F(GraphTest, InRangeFiltersByTimestamp) {
  auto recs = g_.InRange(150, 350);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].record_id, "t2");
  EXPECT_EQ(recs[1].record_id, "t3");
}

TEST_F(GraphTest, SubjectHistory) {
  ASSERT_TRUE(
      g_.AddRecord(Rec("t5", "alice", 500, {}, {}, "final")).ok());
  auto recs = g_.SubjectHistory("final");
  ASSERT_EQ(recs.size(), 2u);  // t4 generated it; t5 touched it
  EXPECT_EQ(recs[0].record_id, "t4");
  EXPECT_EQ(recs[1].record_id, "t5");
}

TEST_F(GraphTest, InvalidationCascadesDownstreamOnly) {
  // Invalidate t3: t4 consumed out2, so it cascades; t2/out1 unaffected.
  auto result = g_.Invalidate("t3", 999, "bad parameter");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
  EXPECT_TRUE(g_.IsInvalidated("t3"));
  EXPECT_TRUE(g_.IsInvalidated("t4"));
  EXPECT_FALSE(g_.IsInvalidated("t1"));
  EXPECT_FALSE(g_.IsInvalidated("t2"));

  auto root_inv = g_.GetInvalidation("t3");
  ASSERT_TRUE(root_inv.ok());
  EXPECT_FALSE(root_inv->cascaded);
  EXPECT_EQ(root_inv->reason, "bad parameter");
  auto cascade_inv = g_.GetInvalidation("t4");
  ASSERT_TRUE(cascade_inv.ok());
  EXPECT_TRUE(cascade_inv->cascaded);
}

TEST_F(GraphTest, RootInvalidationCascadesEverything) {
  auto result = g_.Invalidate("t1", 999, "source corrupted");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 4u);
  EXPECT_EQ(g_.invalidated_count(), 4u);
}

TEST_F(GraphTest, DoubleInvalidationRejected) {
  ASSERT_TRUE(g_.Invalidate("t4", 999, "x").ok());
  EXPECT_TRUE(g_.Invalidate("t4", 1000, "y").status().IsAlreadyExists());
  EXPECT_TRUE(g_.Invalidate("ghost", 1, "z").status().IsNotFound());
}

TEST_F(GraphTest, ReexecutionSetMatchesDownstreamClosure) {
  auto reexec = g_.ReexecutionSet("t1");
  EXPECT_EQ(reexec.size(), 3u);  // t2, t3, t4
  EXPECT_TRUE(g_.ReexecutionSet("t4").empty());
  EXPECT_TRUE(g_.ReexecutionSet("ghost").empty());
}

TEST_F(GraphTest, RecordWithoutOutputsProducesSubjectVersion) {
  // A record with no declared outputs acts on its subject entity.
  ProvenanceGraph g;
  ASSERT_TRUE(g.AddRecord(Rec("w1", "a", 1, {}, {}, "doc")).ok());
  ASSERT_TRUE(g.AddRecord(Rec("w2", "b", 2, {"doc"}, {"summary"})).ok());
  auto lineage = g.Lineage("summary");
  ASSERT_EQ(lineage.size(), 1u);
  EXPECT_EQ(lineage[0], "doc");
  // Invalidating w1 cascades into w2.
  auto inv = g.Invalidate("w1", 10, "typo");
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(inv->size(), 2u);
}

TEST_F(GraphTest, InRangeBoundariesAreInclusive) {
  // Exact-endpoint hits on both sides.
  auto recs = g_.InRange(100, 400);
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs.front().record_id, "t1");
  EXPECT_EQ(recs.back().record_id, "t4");
  // Degenerate single-timestamp range.
  recs = g_.InRange(200, 200);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].record_id, "t2");
}

TEST_F(GraphTest, InRangeEmptyCases) {
  EXPECT_TRUE(g_.InRange(401, 1000).empty());  // past all records
  EXPECT_TRUE(g_.InRange(0, 99).empty());      // before all records
  EXPECT_TRUE(g_.InRange(201, 299).empty());   // gap between records
  EXPECT_TRUE(g_.InRange(300, 200).empty());   // inverted range
  EXPECT_TRUE(ProvenanceGraph().InRange(0, 1000).empty());
}

TEST(GraphOrderingTest, InRangeOrdersOutOfOrderTimestamps) {
  // Ingest with shuffled timestamps; InRange must still come back sorted.
  ProvenanceGraph g;
  ASSERT_TRUE(g.AddRecord(Rec("r-late", "a", 300, {}, {"x1"})).ok());
  ASSERT_TRUE(g.AddRecord(Rec("r-early", "a", 100, {}, {"x2"})).ok());
  ASSERT_TRUE(g.AddRecord(Rec("r-mid", "a", 200, {}, {"x3"})).ok());
  auto recs = g.InRange(0, 1000);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].record_id, "r-early");
  EXPECT_EQ(recs[1].record_id, "r-mid");
  EXPECT_EQ(recs[2].record_id, "r-late");
}

TEST(GraphOrderingTest, SubjectHistoryOrdersOutOfOrderTimestamps) {
  ProvenanceGraph g;
  ASSERT_TRUE(g.AddRecord(Rec("h3", "a", 300, {}, {}, "doc")).ok());
  ASSERT_TRUE(g.AddRecord(Rec("h1", "a", 100, {}, {}, "doc")).ok());
  ASSERT_TRUE(g.AddRecord(Rec("h2", "b", 200, {}, {}, "doc")).ok());
  // A tie on the earliest timestamp keeps ingest order (stable).
  ASSERT_TRUE(g.AddRecord(Rec("h1b", "b", 100, {}, {}, "doc")).ok());
  auto recs = g.SubjectHistory("doc");
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs[0].record_id, "h1");
  EXPECT_EQ(recs[1].record_id, "h1b");
  EXPECT_EQ(recs[2].record_id, "h2");
  EXPECT_EQ(recs[3].record_id, "h3");
  // Agent postings are time-sorted the same way.
  auto by_b = g.ByAgent("b");
  ASSERT_EQ(by_b.size(), 2u);
  EXPECT_EQ(by_b[0].record_id, "h1b");
  EXPECT_EQ(by_b[1].record_id, "h2");
}

TEST(GraphScaleTest, DeepLineageRegression) {
  // 1k-record derivation chain: lineage/reexecution must cover the whole
  // depth without recursion or quadratic blowup.
  ProvenanceGraph g;
  const int kDepth = 1000;
  for (int i = 0; i < kDepth; ++i) {
    std::vector<std::string> inputs;
    if (i > 0) inputs.push_back("e" + std::to_string(i - 1));
    ASSERT_TRUE(g.AddRecord(Rec("r" + std::to_string(i), "agent", 1000 + i,
                                std::move(inputs),
                                {"e" + std::to_string(i)}))
                    .ok());
  }
  EXPECT_EQ(g.Lineage("e999").size(), 999u);
  EXPECT_EQ(g.Descendants("e0").size(), 999u);
  EXPECT_EQ(g.ReexecutionSet("r0").size(), 999u);
  auto window = g.InRange(1500, 1599);
  EXPECT_EQ(window.size(), 100u);
  auto cascade = g.Invalidate("r500", 9999, "probe");
  ASSERT_TRUE(cascade.ok());
  EXPECT_EQ(cascade->size(), 500u);  // r500..r999
}

TEST(GraphScaleTest, DescendingTimestampBackfill) {
  // Worst case for the time indexes: 1k records ingested newest-first.
  // Ingest must stay append-cheap (sort deferred to query time) and the
  // queries must still come back fully time-ordered.
  ProvenanceGraph g;
  const int kN = 1000;
  for (int i = kN - 1; i >= 0; --i) {
    ASSERT_TRUE(g.AddRecord(Rec("r" + std::to_string(i),
                                "a" + std::to_string(i % 3), 1000 + i, {},
                                {}, "doc"))
                    .ok());
  }
  auto recs = g.InRange(1000, 1000 + kN);
  ASSERT_EQ(recs.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(recs[i].timestamp, 1000 + i);
  }
  auto history = g.SubjectHistory("doc");
  ASSERT_EQ(history.size(), static_cast<size_t>(kN));
  EXPECT_EQ(history.front().record_id, "r0");
  EXPECT_EQ(history.back().record_id, "r999");
  auto by_a0 = g.ByAgent("a0");
  ASSERT_FALSE(by_a0.empty());
  for (size_t i = 1; i < by_a0.size(); ++i) {
    EXPECT_LE(by_a0[i - 1].timestamp, by_a0[i].timestamp);
  }
}

TEST(GraphOrderingTest, InRangeTiesKeepIngestOrderAfterLazyResort) {
  // Regression: out-of-order ingest dirties the global time index; the
  // lazy re-sort must still put duplicate timestamps back in ingest order
  // (the documented tie rule), not in an arbitrary or reversed order.
  ProvenanceGraph g;
  ASSERT_TRUE(g.AddRecord(Rec("d1", "a", 500, {}, {"x1"})).ok());  // tie @500
  ASSERT_TRUE(g.AddRecord(Rec("d2", "a", 100, {}, {"x2"})).ok());  // dirties
  ASSERT_TRUE(g.AddRecord(Rec("d3", "a", 500, {}, {"x3"})).ok());  // tie @500
  ASSERT_TRUE(g.AddRecord(Rec("d4", "a", 300, {}, {"x4"})).ok());  // dirties
  ASSERT_TRUE(g.AddRecord(Rec("d5", "a", 500, {}, {"x5"})).ok());  // tie @500
  auto recs = g.InRange(0, 1000);
  ASSERT_EQ(recs.size(), 5u);
  EXPECT_EQ(recs[0].record_id, "d2");
  EXPECT_EQ(recs[1].record_id, "d4");
  // The three ts=500 ties must come back d1, d3, d5 — their ingest order.
  EXPECT_EQ(recs[2].record_id, "d1");
  EXPECT_EQ(recs[3].record_id, "d3");
  EXPECT_EQ(recs[4].record_id, "d5");
  // Boundary query cutting into the tie group keeps the same tie order.
  auto at_tie = g.InRange(500, 500);
  ASSERT_EQ(at_tie.size(), 3u);
  EXPECT_EQ(at_tie[0].record_id, "d1");
  EXPECT_EQ(at_tie[2].record_id, "d5");
}

TEST_F(GraphTest, CardinalityAccessors) {
  // Corpus: t1 alice, t2/t3 bob, t4 carol; subjects mid/out1/out2/final.
  EXPECT_EQ(g_.agent_count(), 3u);
  EXPECT_EQ(g_.subject_count(), 4u);
  EXPECT_EQ(g_.SubjectRecordCount("mid"), 1u);
  EXPECT_EQ(g_.SubjectRecordCount("raw"), 0u);      // input only, never subject
  EXPECT_EQ(g_.SubjectRecordCount("ghost"), 0u);    // unknown entity
  EXPECT_EQ(g_.AgentRecordCount("bob"), 2u);
  EXPECT_EQ(g_.AgentRecordCount("nobody"), 0u);
  EXPECT_EQ(g_.EntityUseCount("mid"), 2u);          // t2 and t3 consumed it
  EXPECT_EQ(g_.EntityUseCount("final"), 0u);
  EXPECT_EQ(g_.EntityGenerationCount("mid"), 1u);   // t1 produced it
  EXPECT_EQ(g_.EntityGenerationCount("raw"), 0u);
  EXPECT_EQ(g_.InRangeCount(150, 350), 2u);
  EXPECT_EQ(g_.InRangeCount(0, 1000), 4u);
  EXPECT_EQ(g_.InRangeCount(500, 100), 0u);         // inverted
  // A repeated subject does not bump the distinct-subject count.
  ASSERT_TRUE(g_.AddRecord(Rec("t5", "dave", 500, {}, {}, "mid")).ok());
  EXPECT_EQ(g_.subject_count(), 4u);
  EXPECT_EQ(g_.SubjectRecordCount("mid"), 2u);
  EXPECT_EQ(g_.agent_count(), 4u);
}

TEST(GraphDiamondTest, DiamondLineageNoDuplicates) {
  // a -> {b, c} -> d (diamond): d's lineage must contain each node once.
  ProvenanceGraph g;
  ASSERT_TRUE(g.AddRecord(Rec("t1", "x", 1, {"a"}, {"b"})).ok());
  ASSERT_TRUE(g.AddRecord(Rec("t2", "x", 2, {"a"}, {"c"})).ok());
  ASSERT_TRUE(g.AddRecord(Rec("t3", "x", 3, {"b", "c"}, {"d"})).ok());
  auto lineage = g.Lineage("d");
  EXPECT_EQ(lineage.size(), 3u);  // b, c, a — each exactly once
}

}  // namespace
}  // namespace prov
}  // namespace provledger
