// Composable query API tests: every single-filter path, multi-filter
// combinations, planner index selection, paging equivalence, count-only,
// ordering, and visitor streaming/early termination.

#include <gtest/gtest.h>

#include "prov/graph.h"
#include "prov/store.h"

namespace provledger {
namespace prov {
namespace {

ProvenanceRecord Rec(const std::string& id, const std::string& subject,
                     const std::string& agent, const std::string& op,
                     Timestamp ts, Domain domain = Domain::kGeneric,
                     std::vector<std::string> inputs = {},
                     std::vector<std::string> outputs = {}) {
  ProvenanceRecord rec;
  rec.record_id = id;
  rec.domain = domain;
  rec.operation = op;
  rec.subject = subject;
  rec.agent = agent;
  rec.timestamp = ts;
  rec.inputs = std::move(inputs);
  rec.outputs = std::move(outputs);
  return rec;
}

std::vector<std::string> Ids(const std::vector<ProvenanceRecord>& records) {
  std::vector<std::string> ids;
  for (const auto& rec : records) ids.push_back(rec.record_id);
  return ids;
}

// A small mixed-domain corpus:
//   q1  doc    alice  create   100  generic            -> doc
//   q2  doc    bob    update   200  generic  [doc]     -> doc2
//   q3  doc2   alice  share    300  cloud    [doc2]
//   q4  img    carol  create   300  cloud              -> img
//   q5  img    bob    update   400  generic  [img]     (implicit img out)
//   q6  doc2   alice  update   500  generic  [img]     -> doc3
class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        g_.AddRecord(Rec("q1", "doc", "alice", "create", 100,
                         Domain::kGeneric, {}, {"doc"}))
            .ok());
    ASSERT_TRUE(
        g_.AddRecord(Rec("q2", "doc", "bob", "update", 200, Domain::kGeneric,
                         {"doc"}, {"doc2"}))
            .ok());
    ASSERT_TRUE(g_.AddRecord(Rec("q3", "doc2", "alice", "share", 300,
                                 Domain::kCloud, {"doc2"}))
                    .ok());
    ASSERT_TRUE(g_.AddRecord(Rec("q4", "img", "carol", "create", 300,
                                 Domain::kCloud, {}, {"img"}))
                    .ok());
    ASSERT_TRUE(g_.AddRecord(
                      Rec("q5", "img", "bob", "update", 400, Domain::kGeneric,
                          {"img"}))
                    .ok());
    ASSERT_TRUE(
        g_.AddRecord(Rec("q6", "doc2", "alice", "update", 500,
                         Domain::kGeneric, {"img"}, {"doc3"}))
            .ok());
  }
  ProvenanceGraph g_;
};

// --- Single-filter paths -------------------------------------------------

TEST_F(QueryTest, EmptyQueryMatchesEverythingInTimeOrder) {
  auto result = g_.Run(Query());
  EXPECT_EQ(Ids(result.records),
            (std::vector<std::string>{"q1", "q2", "q3", "q4", "q5", "q6"}));
  EXPECT_EQ(result.index_used, QueryIndex::kFullScan);
  EXPECT_EQ(result.count, 6u);
}

TEST_F(QueryTest, SubjectFilterUsesSubjectIndex) {
  auto result = g_.Run(Query().WithSubject("doc"));
  EXPECT_EQ(Ids(result.records), (std::vector<std::string>{"q1", "q2"}));
  EXPECT_EQ(result.index_used, QueryIndex::kSubject);
  EXPECT_TRUE(g_.Run(Query().WithSubject("ghost")).records.empty());
}

TEST_F(QueryTest, SubjectPrefixFilter) {
  auto result = g_.Run(Query().WithSubjectPrefix("doc"));
  EXPECT_EQ(Ids(result.records),
            (std::vector<std::string>{"q1", "q2", "q3", "q6"}));
}

TEST_F(QueryTest, AgentFilterUsesAgentIndex) {
  auto result = g_.Run(Query().WithAgent("alice"));
  EXPECT_EQ(Ids(result.records), (std::vector<std::string>{"q1", "q3", "q6"}));
  EXPECT_EQ(result.index_used, QueryIndex::kAgent);
  EXPECT_TRUE(g_.Run(Query().WithAgent("nobody")).records.empty());
}

TEST_F(QueryTest, DomainFilter) {
  auto result = g_.Run(Query().WithDomain(Domain::kCloud));
  EXPECT_EQ(Ids(result.records), (std::vector<std::string>{"q3", "q4"}));
}

TEST_F(QueryTest, OperationFilterOrsSeveral) {
  EXPECT_EQ(Ids(g_.Run(Query().WithOperation("create")).records),
            (std::vector<std::string>{"q1", "q4"}));
  EXPECT_EQ(Ids(g_.Run(Query().WithOperation("create").WithOperation("share"))
                    .records),
            (std::vector<std::string>{"q1", "q3", "q4"}));
}

TEST_F(QueryTest, TimeRangeFilterUsesTimeIndex) {
  auto result = g_.Run(Query().Between(200, 300));
  EXPECT_EQ(Ids(result.records), (std::vector<std::string>{"q2", "q3", "q4"}));
  EXPECT_EQ(result.index_used, QueryIndex::kTimeRange);
  // Open-ended bounds.
  EXPECT_EQ(g_.Run(Query().After(400)).records.size(), 2u);
  EXPECT_EQ(g_.Run(Query().Before(100)).records.size(), 1u);
  // Inverted range matches nothing.
  EXPECT_TRUE(g_.Run(Query().Between(300, 200)).records.empty());
}

TEST_F(QueryTest, ValidityFilter) {
  ASSERT_TRUE(g_.Invalidate("q4", 999, "bad camera").ok());
  // q4's implicit cascade: q5 consumed img, q6 consumed img.
  auto invalid = g_.Run(Query().OnlyInvalidated());
  EXPECT_EQ(Ids(invalid.records), (std::vector<std::string>{"q4", "q5", "q6"}));
  auto valid = g_.Run(Query().OnlyValid());
  EXPECT_EQ(Ids(valid.records), (std::vector<std::string>{"q1", "q2", "q3"}));
}

TEST_F(QueryTest, InputFilterUsesInputIndex) {
  auto result = g_.Run(Query().WithInput("img"));
  EXPECT_EQ(Ids(result.records), (std::vector<std::string>{"q5", "q6"}));
  EXPECT_EQ(result.index_used, QueryIndex::kInput);
  EXPECT_TRUE(g_.Run(Query().WithInput("ghost")).records.empty());
}

TEST_F(QueryTest, OutputFilterIncludesImplicitSubjectVersion) {
  // q4 declares img as an output; q5 (no declared outputs) implicitly
  // produces a new version of its subject img.
  auto result = g_.Run(Query().WithOutput("img"));
  EXPECT_EQ(Ids(result.records), (std::vector<std::string>{"q4", "q5"}));
  EXPECT_EQ(result.index_used, QueryIndex::kOutput);
}

TEST_F(QueryTest, DuplicateEntityMentionsYieldOneResult) {
  // A record listing the same entity twice (as input and as output) must
  // appear once in index-backed results and counts — the usage postings
  // hold one entry per mention, and the planner must deduplicate.
  ProvenanceGraph g;
  ASSERT_TRUE(g.AddRecord(Rec("m1", "doc", "alice", "merge", 100,
                              Domain::kGeneric, {"x", "x"}, {"y", "y"}))
                  .ok());
  for (int i = 0; i < 10; ++i) {
    // Filler so the input/output postings are the most selective index.
    ASSERT_TRUE(g.AddRecord(Rec("f" + std::to_string(i), "doc", "alice",
                                "noise", 200 + i))
                    .ok());
  }
  auto by_input = g.Run(Query().WithInput("x"));
  EXPECT_EQ(by_input.index_used, QueryIndex::kInput);
  EXPECT_EQ(Ids(by_input.records), (std::vector<std::string>{"m1"}));
  EXPECT_EQ(g.Run(Query().WithInput("x").CountOnly()).count, 1u);
  auto by_output = g.Run(Query().WithOutput("y"));
  EXPECT_EQ(by_output.index_used, QueryIndex::kOutput);
  EXPECT_EQ(Ids(by_output.records), (std::vector<std::string>{"m1"}));
  EXPECT_EQ(g.Run(Query().WithOutput("y").CountOnly()).count, 1u);
}

TEST_F(QueryTest, FieldEqualityFilter) {
  ProvenanceRecord rec =
      Rec("q7", "doc", "dave", "annotate", 600, Domain::kGeneric);
  rec.fields["reviewer"] = "eve";
  ASSERT_TRUE(g_.AddRecord(rec).ok());
  auto result = g_.Run(Query().WithField("reviewer", "eve"));
  EXPECT_EQ(Ids(result.records), (std::vector<std::string>{"q7"}));
  EXPECT_TRUE(g_.Run(Query().WithField("reviewer", "mallory")).records.empty());
  EXPECT_TRUE(g_.Run(Query().WithField("missing", "x")).records.empty());
}

// --- Multi-filter combinations -------------------------------------------

TEST_F(QueryTest, AgentPlusTimeRange) {
  auto result = g_.Run(Query().WithAgent("alice").Between(200, 400));
  EXPECT_EQ(Ids(result.records), (std::vector<std::string>{"q3"}));
  // Either index is correct; the scan must not exceed the smaller side.
  EXPECT_LE(result.candidates_scanned, 3u);
}

TEST_F(QueryTest, SubjectPlusOperation) {
  auto result = g_.Run(Query().WithSubject("doc2").WithOperation("update"));
  EXPECT_EQ(Ids(result.records), (std::vector<std::string>{"q6"}));
  EXPECT_EQ(result.index_used, QueryIndex::kSubject);
}

TEST_F(QueryTest, DomainPlusOperationPlusRange) {
  auto result = g_.Run(
      Query().WithDomain(Domain::kCloud).WithOperation("create").Between(
          250, 350));
  EXPECT_EQ(Ids(result.records), (std::vector<std::string>{"q4"}));
  EXPECT_EQ(result.index_used, QueryIndex::kTimeRange);
}

TEST_F(QueryTest, AgentPlusValidityPlusInput) {
  ASSERT_TRUE(g_.Invalidate("q6", 999, "stale").ok());
  auto result = g_.Run(Query().WithAgent("bob").OnlyValid().WithInput("img"));
  EXPECT_EQ(Ids(result.records), (std::vector<std::string>{"q5"}));
}

TEST_F(QueryTest, PlannerPicksMostSelectiveIndex) {
  // "alice" has 3 records, doc2 has 2 — subject postings are smaller.
  auto result = g_.Run(Query().WithAgent("alice").WithSubject("doc2"));
  EXPECT_EQ(result.index_used, QueryIndex::kSubject);
  EXPECT_EQ(Ids(result.records), (std::vector<std::string>{"q3", "q6"}));
  // One-record input postings beat both.
  auto narrower =
      g_.Run(Query().WithAgent("alice").WithSubject("doc2").WithInput("doc2"));
  EXPECT_EQ(narrower.index_used, QueryIndex::kInput);
  EXPECT_EQ(Ids(narrower.records), (std::vector<std::string>{"q3"}));
}

// --- Modifiers -----------------------------------------------------------

TEST_F(QueryTest, DescendingReversesOrder) {
  auto result = g_.Run(Query().WithAgent("alice").Descending());
  EXPECT_EQ(Ids(result.records), (std::vector<std::string>{"q6", "q3", "q1"}));
}

TEST_F(QueryTest, LimitOffsetPagingMatchesUnpagedResult) {
  // Build a larger corpus so paging crosses index boundaries. Two base
  // queries: subject-only (index-covered, sliced without a scan) and
  // subject+operation (residual predicate, scanned per candidate) — paging
  // must agree with the unpaged result on both paths, both directions.
  ProvenanceGraph g;
  for (int i = 0; i < 57; ++i) {
    ASSERT_TRUE(g.AddRecord(Rec("p" + std::to_string(i), "subj",
                                "a" + std::to_string(i % 3),
                                i % 2 ? "odd" : "even",
                                1000 + (i * 37) % 101))
                    .ok());
  }
  for (bool filtered : {false, true}) {
    for (bool descending : {false, true}) {
      Query base = Query().WithSubject("subj");
      if (filtered) base.WithOperation("even");
      if (descending) base.Descending();
      auto unpaged = Ids(g.Run(base).records);
      ASSERT_EQ(unpaged.size(), filtered ? 29u : 57u);
      std::vector<std::string> paged;
      const size_t kPage = 10;
      for (size_t offset = 0;; offset += kPage) {
        Query page = base;
        page.Offset(offset).Limit(kPage);
        auto chunk = Ids(g.Run(page).records);
        if (chunk.empty()) break;
        EXPECT_LE(chunk.size(), kPage);
        paged.insert(paged.end(), chunk.begin(), chunk.end());
      }
      EXPECT_EQ(paged, unpaged);
    }
  }
}

TEST_F(QueryTest, OffsetPastEndIsEmpty) {
  EXPECT_TRUE(g_.Run(Query().WithSubject("doc").Offset(10)).records.empty());
  EXPECT_TRUE(g_.Run(Query().Limit(0)).records.empty());
}

TEST_F(QueryTest, CountOnlySkipsMaterialization) {
  auto result = g_.Run(Query().WithAgent("alice").CountOnly());
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.count, 3u);
  // Fully index-covered count: no per-record scan at all.
  EXPECT_EQ(result.candidates_scanned, 0u);
  // Residual predicates force a counting scan (but still no records).
  auto filtered =
      g_.Run(Query().WithAgent("alice").WithOperation("update").CountOnly());
  EXPECT_TRUE(filtered.records.empty());
  EXPECT_EQ(filtered.count, 1u);
  EXPECT_GT(filtered.candidates_scanned, 0u);
}

TEST_F(QueryTest, CountOnlyRangeIsIndexCovered) {
  auto result = g_.Run(Query().Between(200, 300).CountOnly());
  EXPECT_EQ(result.count, 3u);
  EXPECT_EQ(result.index_used, QueryIndex::kTimeRange);
  EXPECT_EQ(result.candidates_scanned, 0u);
}

// --- Visitor streaming ---------------------------------------------------

TEST_F(QueryTest, VisitorStreamsInOrder) {
  std::vector<std::string> seen;
  size_t visited = g_.Run(Query().WithAgent("alice"),
                          [&](const ProvenanceRecord& rec) {
                            seen.push_back(rec.record_id);
                            return true;
                          });
  EXPECT_EQ(visited, 3u);
  EXPECT_EQ(seen, (std::vector<std::string>{"q1", "q3", "q6"}));
}

TEST_F(QueryTest, VisitorEarlyTermination) {
  std::vector<std::string> seen;
  size_t visited = g_.Run(Query(), [&](const ProvenanceRecord& rec) {
    seen.push_back(rec.record_id);
    return seen.size() < 2;  // stop after two
  });
  EXPECT_EQ(visited, 2u);
  EXPECT_EQ(seen, (std::vector<std::string>{"q1", "q2"}));
}

TEST_F(QueryTest, VisitorHonorsOffsetAndLimit) {
  std::vector<std::string> seen;
  g_.Run(Query().Offset(2).Limit(3), [&](const ProvenanceRecord& rec) {
    seen.push_back(rec.record_id);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<std::string>{"q3", "q4", "q5"}));
}

// --- Store integration ---------------------------------------------------

TEST(StoreQueryTest, ExecuteDelegatesToGraphPlanner) {
  ledger::Blockchain chain;
  SimClock clock(1'000'000);
  ProvenanceStore store(&chain, &clock);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store
                    .Anchor(Rec("s" + std::to_string(i), "artifact",
                                i % 2 ? "alice" : "bob", "update", 100 + i))
                    .ok());
  }
  auto result = store.Execute(Query().WithAgent("alice").Between(103, 107));
  EXPECT_EQ(Ids(result.records), (std::vector<std::string>{"s3", "s5", "s7"}));

  size_t streamed = store.Execute(Query().WithSubject("artifact").Limit(4),
                                  [](const ProvenanceRecord&) { return true; });
  EXPECT_EQ(streamed, 4u);

  // Legacy wrappers agree with their Query equivalents.
  EXPECT_EQ(Ids(store.SubjectHistory("artifact")),
            Ids(store.Execute(Query().WithSubject("artifact")).records));
  EXPECT_EQ(Ids(store.ByAgent("bob")),
            Ids(store.Execute(Query().WithAgent("bob")).records));
  EXPECT_EQ(Ids(store.InRange(102, 104)),
            Ids(store.Execute(Query().Between(102, 104)).records));
}

TEST(StoreQueryTest, PrivacyModeQueriesMatchOnChainAgentIds) {
  ledger::Blockchain chain;
  SimClock clock(1'000'000);
  ProvenanceStoreOptions options;
  options.hash_agent_ids = true;
  ProvenanceStore store(&chain, &clock, options);
  ASSERT_TRUE(store.Anchor(Rec("p1", "doc", "alice", "create", 100)).ok());
  // Raw agent ids never hit the ledger, so they match nothing...
  EXPECT_TRUE(store.Execute(Query().WithAgent("alice")).records.empty());
  // ...while the anonymized id finds the record.
  auto result =
      store.Execute(Query().WithAgent(store.OnChainAgentId("alice")));
  EXPECT_EQ(result.records.size(), 1u);
}

}  // namespace
}  // namespace prov
}  // namespace provledger
