// Access-control tests: RBAC, ABAC with deny-overrides, LedgerView
// revocable/irrevocable views, and ForensiBlock stage gates.

#include <gtest/gtest.h>

#include "access/abac.h"
#include "access/rbac.h"
#include "access/stage_gate.h"
#include "access/views.h"

namespace provledger {
namespace access {
namespace {

TEST(RbacTest, RolePermissionFlow) {
  RbacPolicy rbac;
  rbac.DefineRole("doctor");
  ASSERT_TRUE(rbac.GrantPermission("doctor", "ehr:read").ok());
  ASSERT_TRUE(rbac.GrantPermission("doctor", "ehr:write").ok());
  ASSERT_TRUE(rbac.AssignRole("alice", "doctor").ok());

  EXPECT_TRUE(rbac.Check("alice", "ehr:read"));
  EXPECT_TRUE(rbac.Check("alice", "ehr:write"));
  EXPECT_FALSE(rbac.Check("alice", "ehr:delete"));
  EXPECT_FALSE(rbac.Check("bob", "ehr:read"));
}

TEST(RbacTest, RevocationTakesEffect) {
  RbacPolicy rbac;
  rbac.DefineRole("auditor");
  ASSERT_TRUE(rbac.GrantPermission("auditor", "prov:audit").ok());
  ASSERT_TRUE(rbac.AssignRole("eve", "auditor").ok());
  EXPECT_TRUE(rbac.Check("eve", "prov:audit"));

  ASSERT_TRUE(rbac.UnassignRole("eve", "auditor").ok());
  EXPECT_FALSE(rbac.Check("eve", "prov:audit"));
  EXPECT_TRUE(rbac.UnassignRole("eve", "auditor").IsNotFound());
}

TEST(RbacTest, PermissionRevocationAffectsAllHolders) {
  RbacPolicy rbac;
  rbac.DefineRole("nurse");
  ASSERT_TRUE(rbac.GrantPermission("nurse", "ehr:read").ok());
  ASSERT_TRUE(rbac.AssignRole("a", "nurse").ok());
  ASSERT_TRUE(rbac.AssignRole("b", "nurse").ok());
  ASSERT_TRUE(rbac.RevokePermission("nurse", "ehr:read").ok());
  EXPECT_FALSE(rbac.Check("a", "ehr:read"));
  EXPECT_FALSE(rbac.Check("b", "ehr:read"));
}

TEST(RbacTest, UnknownRoleErrors) {
  RbacPolicy rbac;
  EXPECT_TRUE(rbac.GrantPermission("ghost", "x").IsNotFound());
  EXPECT_TRUE(rbac.AssignRole("a", "ghost").IsNotFound());
}

TEST(AbacTest, AllowRuleMatches) {
  AbacPolicy policy;
  AbacRule rule;
  rule.id = "researchers-read-own-org";
  rule.action = "read";
  rule.conditions.push_back({AbacCondition::Scope::kSubject, "org",
                             AbacCondition::Op::kEquals, "lab-a"});
  rule.conditions.push_back({AbacCondition::Scope::kResource, "org",
                             AbacCondition::Op::kEquals, "lab-a"});
  policy.AddRule(rule);

  EXPECT_TRUE(policy.Check({{"org", "lab-a"}}, "read", {{"org", "lab-a"}}));
  EXPECT_FALSE(policy.Check({{"org", "lab-b"}}, "read", {{"org", "lab-a"}}));
  EXPECT_FALSE(policy.Check({{"org", "lab-a"}}, "write", {{"org", "lab-a"}}));
}

TEST(AbacTest, DenyOverridesAllow) {
  AbacPolicy policy;
  AbacRule allow;
  allow.action = "*";
  allow.conditions.push_back({AbacCondition::Scope::kSubject, "clearance",
                              AbacCondition::Op::kIn, "secret,topsecret"});
  policy.AddRule(allow);
  AbacRule deny;
  deny.action = "*";
  deny.allow = false;
  deny.conditions.push_back({AbacCondition::Scope::kSubject, "suspended",
                             AbacCondition::Op::kEquals, "true"});
  policy.AddRule(deny);

  EXPECT_TRUE(policy.Check({{"clearance", "secret"}}, "read", {}));
  EXPECT_FALSE(policy.Check(
      {{"clearance", "secret"}, {"suspended", "true"}}, "read", {}));
}

TEST(AbacTest, OperatorSemantics) {
  Attributes subject = {{"dept", "oncology"}, {"id", "user-42"}};
  AbacCondition eq{AbacCondition::Scope::kSubject, "dept",
                   AbacCondition::Op::kEquals, "oncology"};
  AbacCondition neq{AbacCondition::Scope::kSubject, "dept",
                    AbacCondition::Op::kNotEquals, "surgery"};
  AbacCondition in{AbacCondition::Scope::kSubject, "dept",
                   AbacCondition::Op::kIn, "radiology,oncology"};
  AbacCondition prefix{AbacCondition::Scope::kSubject, "id",
                       AbacCondition::Op::kPrefix, "user-"};
  AbacCondition missing{AbacCondition::Scope::kSubject, "ghost",
                        AbacCondition::Op::kEquals, "x"};
  EXPECT_TRUE(eq.Matches(subject, {}, {}));
  EXPECT_TRUE(neq.Matches(subject, {}, {}));
  EXPECT_TRUE(in.Matches(subject, {}, {}));
  EXPECT_TRUE(prefix.Matches(subject, {}, {}));
  EXPECT_FALSE(missing.Matches(subject, {}, {}));
}

TEST(AbacTest, EnvironmentConditions) {
  AbacPolicy policy;
  AbacRule rule;
  rule.action = "access";
  rule.conditions.push_back({AbacCondition::Scope::kEnvironment, "emergency",
                             AbacCondition::Op::kEquals, "true"});
  policy.AddRule(rule);
  EXPECT_TRUE(policy.Check({}, "access", {}, {{"emergency", "true"}}));
  EXPECT_FALSE(policy.Check({}, "access", {}, {}));
}

class ViewsTest : public ::testing::Test {
 protected:
  ViewsTest() : clock_(0), store_(&chain_, &clock_), views_(&store_, &rbac_) {
    rbac_.DefineRole("regulator");
    EXPECT_TRUE(rbac_.AssignRole("fda", "regulator").ok());

    // Anchor a mixed history for product-1.
    Anchor("r1", "product-1", "create");
    Anchor("r2", "product-1", "transfer");
    Anchor("r3", "product-1", "price-update");
    Anchor("r4", "other-2", "transfer");
  }

  void Anchor(const std::string& id, const std::string& subject,
              const std::string& op) {
    prov::ProvenanceRecord rec;
    rec.record_id = id;
    rec.operation = op;
    rec.subject = subject;
    rec.agent = "supplier";
    rec.timestamp = ++ts_;
    ASSERT_TRUE(store_.Anchor(rec).ok());
  }

  ledger::Blockchain chain_;
  SimClock clock_;
  prov::ProvenanceStore store_;
  RbacPolicy rbac_;
  ViewManager views_;
  Timestamp ts_ = 0;
};

TEST_F(ViewsTest, FilteredQueryThroughView) {
  View v;
  v.name = "custody-only";
  v.owner = "supplier";
  v.filter.operations = {"create", "transfer"};
  ASSERT_TRUE(views_.CreateView(v).ok());
  ASSERT_TRUE(views_.Grant("custody-only", "supplier", "consumer").ok());

  auto records = views_.Query("custody-only", "consumer", "product-1");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);  // price-update filtered out
  EXPECT_EQ((*records)[0].operation, "create");
  EXPECT_EQ((*records)[1].operation, "transfer");
}

TEST_F(ViewsTest, NonMemberDenied) {
  View v;
  v.name = "v";
  v.owner = "supplier";
  ASSERT_TRUE(views_.CreateView(v).ok());
  EXPECT_TRUE(views_.Query("v", "stranger", "product-1")
                  .status()
                  .IsPermissionDenied());
  EXPECT_TRUE(views_.Query("ghost-view", "supplier", "product-1")
                  .status()
                  .IsNotFound());
}

TEST_F(ViewsTest, RevocableViewRevokes) {
  View v;
  v.name = "rv";
  v.owner = "supplier";
  v.revocable = true;
  ASSERT_TRUE(views_.CreateView(v).ok());
  ASSERT_TRUE(views_.Grant("rv", "supplier", "partner").ok());
  EXPECT_TRUE(views_.CheckAccess("rv", "partner"));
  ASSERT_TRUE(views_.Revoke("rv", "supplier", "partner").ok());
  EXPECT_FALSE(views_.CheckAccess("rv", "partner"));
}

TEST_F(ViewsTest, IrrevocableViewCannotRevoke) {
  View v;
  v.name = "iv";
  v.owner = "supplier";
  v.revocable = false;
  ASSERT_TRUE(views_.CreateView(v).ok());
  ASSERT_TRUE(views_.Grant("iv", "supplier", "partner").ok());
  EXPECT_TRUE(
      views_.Revoke("iv", "supplier", "partner").IsFailedPrecondition());
  EXPECT_TRUE(views_.CheckAccess("iv", "partner"));
}

TEST_F(ViewsTest, OnlyOwnerManagesMembership) {
  View v;
  v.name = "ov";
  v.owner = "supplier";
  ASSERT_TRUE(views_.CreateView(v).ok());
  EXPECT_TRUE(
      views_.Grant("ov", "mallory", "mallory").IsPermissionDenied());
  ASSERT_TRUE(views_.Grant("ov", "supplier", "partner").ok());
  EXPECT_TRUE(
      views_.Revoke("ov", "mallory", "partner").IsPermissionDenied());
}

TEST_F(ViewsTest, RoleGatedView) {
  View v;
  v.name = "regulated";
  v.owner = "supplier";
  v.required_role = "regulator";
  ASSERT_TRUE(views_.CreateView(v).ok());
  ASSERT_TRUE(views_.Grant("regulated", "supplier", "fda").ok());
  ASSERT_TRUE(views_.Grant("regulated", "supplier", "consumer").ok());
  EXPECT_TRUE(views_.CheckAccess("regulated", "fda"));
  EXPECT_FALSE(views_.CheckAccess("regulated", "consumer"));  // lacks role
}

TEST(StageGateTest, FiveStageForensicFlow) {
  StageGate gate({"identification", "preservation", "collection", "analysis",
                  "reporting"});
  ASSERT_TRUE(gate.AllowInStage("identification", "investigator",
                                "add-source").ok());
  ASSERT_TRUE(gate.AllowInStage("collection", "investigator",
                                "collect-evidence").ok());
  ASSERT_TRUE(gate.AllowInStage("analysis", "analyst", "run-analysis").ok());
  for (const auto& stage : gate.stages()) {
    ASSERT_TRUE(gate.AllowTransition(stage, "lead").ok());
  }
  ASSERT_TRUE(gate.StartProcess("case-1").ok());

  // Stage-scoped permissions.
  EXPECT_TRUE(gate.Check("case-1", "investigator", "add-source"));
  EXPECT_FALSE(gate.Check("case-1", "investigator", "collect-evidence"));

  // Advance: identification -> preservation -> collection.
  ASSERT_TRUE(gate.Advance("case-1", "alice", "lead", 100).ok());
  ASSERT_TRUE(gate.Advance("case-1", "alice", "lead", 200).ok());
  EXPECT_TRUE(gate.Check("case-1", "investigator", "collect-evidence"));
  EXPECT_FALSE(gate.Check("case-1", "investigator", "add-source"));

  // Unauthorized role cannot advance.
  EXPECT_TRUE(
      gate.Advance("case-1", "bob", "investigator", 300).IsPermissionDenied());

  // Complete the process.
  ASSERT_TRUE(gate.Advance("case-1", "alice", "lead", 400).ok());
  ASSERT_TRUE(gate.Advance("case-1", "alice", "lead", 500).ok());
  ASSERT_TRUE(gate.Advance("case-1", "alice", "lead", 600).ok());
  EXPECT_TRUE(gate.IsComplete("case-1"));
  EXPECT_TRUE(gate.Advance("case-1", "alice", "lead", 700)
                  .IsFailedPrecondition());
  EXPECT_EQ(gate.transitions().size(), 5u);
  EXPECT_EQ(gate.transitions().back().to_stage, "complete");
}

TEST(StageGateTest, ProcessLifecycleErrors) {
  StageGate gate({"s1", "s2"});
  EXPECT_TRUE(gate.CurrentStage("ghost").status().IsNotFound());
  ASSERT_TRUE(gate.StartProcess("p").ok());
  EXPECT_TRUE(gate.StartProcess("p").IsAlreadyExists());
  EXPECT_TRUE(gate.AllowInStage("ghost-stage", "r", "a").IsNotFound());
  auto stage = gate.CurrentStage("p");
  ASSERT_TRUE(stage.ok());
  EXPECT_EQ(stage.value(), "s1");
}

}  // namespace
}  // namespace access
}  // namespace provledger
