// Replicated-cluster tests (ctest label: replication): N-node ingest
// convergence under every consensus engine (identical head hash + full
// AuditAll on every node), multi-group partition + heal, crash/restart-
// from-disk + rejoin catch-up, deep-lag ranged sync, minority-fork reorg
// on heal, and divergent-fork rejection.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "audit/lineage_proof.h"
#include "replication/cluster.h"
#include "tamper.h"
#include "temp_dir.h"

namespace provledger {
namespace replication {
namespace {

using testutil::MakeTempDir;
using testutil::RemoveTree;

prov::ProvenanceRecord Rec(const std::string& id, const std::string& subject,
                           const std::string& agent, Timestamp ts,
                           std::vector<std::string> inputs = {},
                           std::vector<std::string> outputs = {}) {
  prov::ProvenanceRecord rec;
  rec.record_id = id;
  rec.operation = "execute";
  rec.subject = subject;
  rec.agent = agent;
  rec.timestamp = ts;
  rec.inputs = std::move(inputs);
  rec.outputs = std::move(outputs);
  return rec;
}

/// Submit + commit `count` records (ids tagged with `tag`) as
/// `count / per_batch` blocks, each through the cluster's consensus path.
void Ingest(Cluster* cluster, const std::string& tag, int count,
            int per_batch, int proposer = -1) {
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(cluster
                    ->Submit(Rec(tag + "-" + std::to_string(i),
                                 "subject-" + std::to_string(i % 5),
                                 "agent-" + std::to_string(i % 3),
                                 1000 + i))
                    .ok());
    if (cluster->pending_count() == static_cast<size_t>(per_batch) ||
        i + 1 == count) {
      Status committed = proposer < 0
                             ? cluster->CommitPending()
                             : cluster->CommitPendingOn(
                                   static_cast<network::NodeId>(proposer));
      ASSERT_TRUE(committed.ok()) << committed.ToString();
    }
  }
}

/// Every alive node: same head, passing AuditAll over `expect` records.
void ExpectConvergedWithAudit(Cluster* cluster, size_t expect) {
  ASSERT_TRUE(cluster->Converged());
  auto head = cluster->ConvergedHead();
  ASSERT_TRUE(head.ok());
  for (size_t i = 0; i < cluster->size(); ++i) {
    ReplicatedNode* node = cluster->node(static_cast<network::NodeId>(i));
    if (!node->alive()) continue;
    EXPECT_EQ(node->head_hash(), head.value()) << node->name();
    ASSERT_TRUE(node->chain()->VerifyIntegrity().ok()) << node->name();
    auto audit = node->store()->AuditAll();
    ASSERT_TRUE(audit.ok()) << node->name() << ": "
                            << audit.status().ToString();
    EXPECT_EQ(audit.value(), expect) << node->name();
  }
}

TEST(ReplicationTest, FourNodeIngestConvergesUnderEveryEngine) {
  for (const std::string& kind : {"pow", "pos", "pbft", "raft"}) {
    SCOPED_TRACE(kind);
    ClusterOptions options;
    options.num_nodes = 4;
    options.seed = 7;
    options.consensus = kind;
    auto cluster = Cluster::Create(options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    Ingest(cluster->get(), kind, 24, 6);
    ExpectConvergedWithAudit(cluster->get(), 24);
    EXPECT_EQ((*cluster)->metrics().batches_committed, 4u);
    EXPECT_GT((*cluster)->metrics().consensus_messages, 0u);

    // Every follower answers queries from its own local store.
    for (network::NodeId i = 0; i < 4; ++i) {
      EXPECT_EQ(
          (*cluster)->node(i)->store()->SubjectHistory("subject-2").size(),
          5u);
    }
  }
}

TEST(ReplicationTest, ReplicationIsDeterministicFromTheSeed) {
  auto run = [] {
    ClusterOptions options;
    options.num_nodes = 4;
    options.seed = 99;
    options.net.jitter_us = 300;
    auto cluster = Cluster::Create(options);
    EXPECT_TRUE(cluster.ok());
    Ingest(cluster->get(), "det", 12, 4);
    EXPECT_TRUE((*cluster)->Converged());
    return crypto::DigestHex((*cluster)->node(0)->head_hash());
  };
  EXPECT_EQ(run(), run());
}

TEST(ReplicationTest, PartitionedMinorityLagsThenHealConverges) {
  ClusterOptions options;
  options.num_nodes = 4;
  options.seed = 3;
  auto cluster = Cluster::Create(options);
  ASSERT_TRUE(cluster.ok());
  Ingest(cluster->get(), "pre", 8, 4);
  ASSERT_TRUE((*cluster)->Converged());

  (*cluster)->Partition({{0, 1, 2}, {3}});
  Ingest(cluster->get(), "cut", 12, 4, /*proposer=*/0);
  // The minority node missed every broadcast.
  EXPECT_FALSE((*cluster)->Converged());
  EXPECT_EQ((*cluster)->node(3)->height() + 3, (*cluster)->node(0)->height());

  (*cluster)->Heal();
  (*cluster)->AntiEntropy();
  ExpectConvergedWithAudit(cluster->get(), 20);
  EXPECT_GE((*cluster)->node(3)->metrics().pulls_sent, 1u);
  EXPECT_TRUE((*cluster)->node(3)->synced());
}

TEST(ReplicationTest, ThreeWayPartitionHealsToCommonHead) {
  ClusterOptions options;
  options.num_nodes = 4;
  options.seed = 11;
  auto cluster = Cluster::Create(options);
  ASSERT_TRUE(cluster.ok());
  Ingest(cluster->get(), "base", 4, 4);

  // Three named groups: {0,1} | {2} | {3} — only the group holding the
  // proposer sees new blocks, and the two singletons are isolated from
  // each other as well as from the pair.
  (*cluster)->Partition({{0, 1}, {2}, {3}});
  Ingest(cluster->get(), "split", 8, 4, /*proposer=*/0);
  EXPECT_EQ((*cluster)->node(0)->height(), (*cluster)->node(1)->height());
  EXPECT_EQ((*cluster)->node(2)->height() + 2, (*cluster)->node(0)->height());
  EXPECT_EQ((*cluster)->node(3)->height() + 2, (*cluster)->node(0)->height());

  (*cluster)->Heal();
  (*cluster)->AntiEntropy();
  ExpectConvergedWithAudit(cluster->get(), 12);
}

TEST(ReplicationTest, DeepLagCatchesUpInRangedBatches) {
  ClusterOptions options;
  options.num_nodes = 3;
  options.seed = 21;
  options.catch_up_batch_blocks = 4;
  auto cluster = Cluster::Create(options);
  ASSERT_TRUE(cluster.ok());

  (*cluster)->Partition({{0, 1}, {2}});
  Ingest(cluster->get(), "deep", 20, 2, /*proposer=*/0);  // 10 blocks ahead
  ASSERT_EQ((*cluster)->node(2)->height(), 0u);

  (*cluster)->Heal();
  (*cluster)->AntiEntropy();
  ExpectConvergedWithAudit(cluster->get(), 20);
  // 10 blocks at a 4-block stride: at least ceil(10/4) = 3 pull rounds.
  EXPECT_GE((*cluster)->node(2)->metrics().pulls_sent, 3u);
  EXPECT_EQ((*cluster)->node(2)->metrics().blocks_applied, 10u);
}

TEST(ReplicationTest, CrashedNodeRestartsFromDiskAndCatchesUp) {
  const std::string dir = MakeTempDir();
  {
    ClusterOptions options;
    options.num_nodes = 4;
    options.seed = 5;
    options.data_dir = dir;
    auto cluster = Cluster::Create(options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    Ingest(cluster->get(), "dur", 12, 4);
    ASSERT_TRUE((*cluster)->SaveSnapshot(3).ok());
    Ingest(cluster->get(), "post-snap", 4, 4);
    ASSERT_TRUE((*cluster)->Converged());
    const uint64_t height_at_crash = (*cluster)->node(3)->height();

    (*cluster)->Crash(3);
    Ingest(cluster->get(), "while-down", 8, 4);
    // Converged() only speaks for alive nodes; the crashed one fell behind.
    EXPECT_TRUE((*cluster)->Converged());
    EXPECT_LT((*cluster)->node(3)->height(), (*cluster)->node(0)->height());

    ASSERT_TRUE((*cluster)->Restart(3).ok());
    ExpectConvergedWithAudit(cluster->get(), 24);
    // The prefix came from disk (chain log + snapshot), not the wire: the
    // revived node only pulled the two blocks committed while it was down.
    EXPECT_EQ((*cluster)->node(3)->metrics().blocks_applied,
              (*cluster)->node(3)->height() - height_at_crash);
    EXPECT_GE((*cluster)->node(3)->metrics().pulls_sent, 1u);
    // Blocks adopted during catch-up persisted write-ahead too.
    EXPECT_EQ((*cluster)->node(3)->chain_log()->block_count(),
              (*cluster)->node(3)->height());
  }
  RemoveTree(dir);
}

TEST(ReplicationTest, VolatileRestartRejoinsFromPeers) {
  ClusterOptions options;
  options.num_nodes = 3;
  options.seed = 13;
  auto cluster = Cluster::Create(options);
  ASSERT_TRUE(cluster.ok());
  Ingest(cluster->get(), "mem", 9, 3);

  (*cluster)->Crash(2);
  Ingest(cluster->get(), "more", 3, 3);
  // A volatile node restarts empty and pulls the whole chain from peers.
  ASSERT_TRUE((*cluster)->Restart(2).ok());
  ExpectConvergedWithAudit(cluster->get(), 12);
  EXPECT_EQ((*cluster)->node(2)->metrics().blocks_applied, 4u);
}

TEST(ReplicationTest, CrashedProposerFallsBackToAliveNode) {
  ClusterOptions options;
  options.num_nodes = 4;
  options.seed = 17;
  // Raft elects node 0 leader with this seed; crash whoever the engine
  // names and let the fallback scan anchor the block.
  auto cluster = Cluster::Create(options);
  ASSERT_TRUE(cluster.ok());
  Ingest(cluster->get(), "lead", 4, 4);
  ASSERT_TRUE((*cluster)->Converged());

  // Crash every node but one: whatever proposer consensus picks, the
  // fallback must land on the survivor.
  (*cluster)->Crash(0);
  (*cluster)->Crash(1);
  (*cluster)->Crash(3);
  ASSERT_TRUE((*cluster)->Submit(Rec("solo", "subject-0", "agent-0", 9000))
                  .ok());
  ASSERT_TRUE((*cluster)->CommitPending().ok());
  EXPECT_TRUE((*cluster)->node(2)->store()->HasRecord("solo"));

  ASSERT_TRUE((*cluster)->Restart(0).ok());
  ASSERT_TRUE((*cluster)->Restart(1).ok());
  ASSERT_TRUE((*cluster)->Restart(3).ok());
  ExpectConvergedWithAudit(cluster->get(), 5);
}

TEST(ReplicationTest, TamperedBlockIsRejectedEverywhere) {
  ClusterOptions options;
  options.num_nodes = 3;
  options.seed = 29;
  auto cluster = Cluster::Create(options);
  ASSERT_TRUE(cluster.ok());
  Ingest(cluster->get(), "ok", 6, 3);
  auto head_before = (*cluster)->ConvergedHead();
  ASSERT_TRUE(head_before.ok());

  // A rogue peer re-broadcasts the head block with a flipped payload byte:
  // the Merkle root no longer matches, so every receiver must reject it.
  auto forged = (*cluster)->node(0)->chain()->GetBlock(
      (*cluster)->node(0)->height());
  ASSERT_TRUE(forged.ok());
  ledger::Block bad = forged.value();
  bad.header.height += 1;  // pose as the next block...
  bad.header.prev_hash = head_before.value();
  ASSERT_TRUE(testutil::TamperBlockTx(&bad, 0).ok());  // ...tampered contents
  (*cluster)->net()->Broadcast(2, "repl/block", bad.Encode());
  (*cluster)->RunUntilIdle();

  EXPECT_GE((*cluster)->node(0)->metrics().blocks_rejected, 1u);
  EXPECT_GE((*cluster)->node(1)->metrics().blocks_rejected, 1u);
  auto head_after = (*cluster)->ConvergedHead();
  ASSERT_TRUE(head_after.ok());
  EXPECT_EQ(head_after.value(), head_before.value());
  ExpectConvergedWithAudit(cluster->get(), 6);
}

TEST(ReplicationTest, ForeignChainNeverAttaches) {
  ClusterOptions options;
  options.num_nodes = 3;
  options.seed = 31;
  auto cluster = Cluster::Create(options);
  ASSERT_TRUE(cluster.ok());
  Ingest(cluster->get(), "home", 6, 3);
  auto head_before = (*cluster)->ConvergedHead();
  ASSERT_TRUE(head_before.ok());

  // Blocks from a chain with another id share no genesis: they can never
  // resolve a parent here, no matter how long that chain grows.
  ledger::ChainOptions foreign_options;
  foreign_options.chain_id = "foreign";
  ledger::Blockchain foreign(foreign_options);
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(foreign
                    .Append({ledger::Transaction::MakeSystem(
                                "x/op", "ch", ToBytes("f"), 1000 + i, i)},
                            1000 + i, "rogue")
                    .ok());
  }
  auto stranger = foreign.GetBlock(5);
  ASSERT_TRUE(stranger.ok());
  (*cluster)->net()->Broadcast(2, "repl/block", stranger->Encode());
  (*cluster)->RunUntilIdle();

  auto head_after = (*cluster)->ConvergedHead();
  ASSERT_TRUE(head_after.ok());
  EXPECT_EQ(head_after.value(), head_before.value());
  for (network::NodeId i = 0; i < 3; ++i) {
    EXPECT_TRUE((*cluster)->node(i)->synced());
  }
}

TEST(ReplicationTest, MinorityForkReorgsToMajorityOnHeal) {
  ClusterOptions options;
  options.num_nodes = 4;
  options.seed = 37;
  auto cluster = Cluster::Create(options);
  ASSERT_TRUE(cluster.ok());
  Ingest(cluster->get(), "shared", 8, 4);

  // Split-brain: the isolated node commits its own block while the
  // majority commits two — a genuine fork, one block deep.
  (*cluster)->Partition({{0, 1, 2}, {3}});
  ASSERT_TRUE((*cluster)->Submit(Rec("orphaned", "subject-0", "agent-0",
                                     5000))
                  .ok());
  ASSERT_TRUE((*cluster)->CommitPendingOn(3).ok());
  EXPECT_TRUE((*cluster)->node(3)->store()->HasRecord("orphaned"));
  Ingest(cluster->get(), "major", 8, 4, /*proposer=*/0);

  (*cluster)->Heal();
  (*cluster)->AntiEntropy();
  // Longest chain wins: the minority branch is abandoned, its store
  // rebuilt from the adopted chain, and the orphaned record is gone
  // (clients must resubmit — exactly what a real ledger demands).
  ExpectConvergedWithAudit(cluster->get(), 16);
  EXPECT_GE((*cluster)->node(3)->metrics().reorgs, 1u);
  EXPECT_GE((*cluster)->node(3)->metrics().store_rebuilds, 1u);
  EXPECT_FALSE((*cluster)->node(3)->store()->HasRecord("orphaned"));

  // Resubmitted, the record lands cluster-wide.
  ASSERT_TRUE((*cluster)->Submit(Rec("orphaned", "subject-0", "agent-0",
                                     5000))
                  .ok());
  ASSERT_TRUE((*cluster)->CommitPending().ok());
  ExpectConvergedWithAudit(cluster->get(), 17);
  EXPECT_TRUE((*cluster)->node(3)->store()->HasRecord("orphaned"));
}

TEST(ReplicationTest, LossyNetworkStillConverges) {
  // With random drops, any protocol message can vanish — including the
  // repl/blocks reply of an in-flight catch-up, which must not wedge the
  // node (a stalled conversation re-arms on the next block broadcast, and
  // anti-entropy rounds retry from scratch).
  ClusterOptions options;
  options.num_nodes = 4;
  options.seed = 53;
  options.net.drop_rate = 0.15;
  auto cluster = Cluster::Create(options);
  ASSERT_TRUE(cluster.ok());
  Ingest(cluster->get(), "lossy", 40, 4);
  for (int round = 0; round < 8 && !(*cluster)->Converged(); ++round) {
    (*cluster)->AntiEntropy();
  }
  ExpectConvergedWithAudit(cluster->get(), 40);
}

TEST(ReplicationTest, SymmetricForkResolvesWhenOneSideGrows) {
  ClusterOptions options;
  options.num_nodes = 4;
  options.seed = 41;
  auto cluster = Cluster::Create(options);
  ASSERT_TRUE(cluster.ok());
  Ingest(cluster->get(), "base", 4, 4);

  // Split-brain down the middle; each half commits one block — a
  // perfectly symmetric fork: equal heights, different heads.
  (*cluster)->Partition({{0, 1}, {2, 3}});
  ASSERT_TRUE((*cluster)->Submit(Rec("left", "subject-0", "agent-0", 6000))
                  .ok());
  ASSERT_TRUE((*cluster)->CommitPendingOn(0).ok());
  ASSERT_TRUE((*cluster)->Submit(Rec("right", "subject-0", "agent-0", 6001))
                  .ok());
  ASSERT_TRUE((*cluster)->CommitPendingOn(2).ok());
  (*cluster)->Heal();
  (*cluster)->AntiEntropy();
  // Longest-chain fork choice needs a strictly longer branch, so an
  // equal-length fork survives heal + anti-entropy (standard Nakamoto
  // tie behavior — the documented exception to heal convergence)...
  EXPECT_EQ((*cluster)->node(0)->height(), (*cluster)->node(2)->height());
  EXPECT_FALSE((*cluster)->Converged());

  // ...until the next commit grows one side; the other side's broadcast
  // handler pulls the winning branch and reorgs over.
  ASSERT_TRUE((*cluster)->Submit(Rec("tiebreak", "subject-0", "agent-0",
                                     6002))
                  .ok());
  ASSERT_TRUE((*cluster)->CommitPendingOn(0).ok());
  ExpectConvergedWithAudit(cluster->get(), 6);  // base 4 + left + tiebreak
  EXPECT_TRUE((*cluster)->node(2)->store()->HasRecord("left"));
  EXPECT_FALSE((*cluster)->node(2)->store()->HasRecord("right"));
  EXPECT_GE((*cluster)->node(2)->metrics().reorgs, 1u);
}

TEST(ReplicationTest, BlockHashAtMatchesHeaderHashWithoutRehash) {
  ledger::Blockchain chain;
  ASSERT_TRUE(chain
                  .Append({ledger::Transaction::MakeSystem(
                              "t/op", "ch", ToBytes("x"), 100, 1)},
                          100, "n")
                  .ok());
  auto indexed = chain.BlockHashAt(1);
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ(indexed.value(), chain.head_hash());
  auto block = chain.GetBlock(1);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(indexed.value(), block->header.Hash());
  EXPECT_TRUE(chain.BlockHashAt(2).status().IsNotFound());

  auto range = chain.PeekRange(0, 10);
  ASSERT_EQ(range.size(), 2u);
  EXPECT_EQ(range[1]->header.height, 1u);
  EXPECT_TRUE(chain.PeekRange(5, 3).empty());
}

TEST(ReplicationTest, LineageProofServedOverWire) {
  ClusterOptions options;
  options.num_nodes = 3;
  options.seed = 41;
  auto cluster = Cluster::Create(options);
  ASSERT_TRUE(cluster.ok());
  // A three-record derivation chain, one block each, through consensus.
  ASSERT_TRUE(
      (*cluster)->Submit(Rec("a0", "s", "agent", 1000, {}, {"w0"})).ok());
  ASSERT_TRUE((*cluster)->CommitPending().ok());
  ASSERT_TRUE(
      (*cluster)->Submit(Rec("a1", "s", "agent", 1001, {"w0"}, {"w1"})).ok());
  ASSERT_TRUE((*cluster)->CommitPending().ok());
  ASSERT_TRUE(
      (*cluster)->Submit(Rec("a2", "s", "agent", 1002, {"w1"}, {"w2"})).ok());
  ASSERT_TRUE((*cluster)->CommitPending().ok());
  ASSERT_TRUE((*cluster)->Converged());

  // Node 1 asks node 2 to prove a2's ancestry. The reply bytes verify
  // against node 1's *own* main-chain headers — the serving node's store
  // is never trusted, and the verifier needs none of its own.
  ReplicatedNode* requester = (*cluster)->node(1);
  requester->RequestLineageProof(2, "a2");
  (*cluster)->RunUntilIdle();
  ASSERT_TRUE(requester->last_proof().received);
  ASSERT_TRUE(requester->last_proof().ok) << requester->last_proof().message;
  EXPECT_GE((*cluster)->node(2)->metrics().proofs_served, 1u);
  const Bytes wire = requester->last_proof().proof;
  auto proof = audit::LineageProof::Decode(wire);
  ASSERT_TRUE(proof.ok());
  const ledger::Blockchain& headers = *requester->chain();
  audit::LineageSummary summary;
  ASSERT_TRUE(audit::VerifyLineageProof(
                  *proof, "a2",
                  [&headers](uint64_t h) { return headers.BlockHashAt(h); },
                  &summary)
                  .ok());
  ASSERT_EQ(summary.record_ids.size(), 3u);
  EXPECT_EQ(summary.record_ids[0], "a2");

  // A flipped byte in transit must not survive decode + verify.
  Bytes damaged = wire;
  damaged[damaged.size() / 2] ^= 0x01;
  auto reparsed = audit::LineageProof::Decode(damaged);
  if (reparsed.ok()) {
    EXPECT_FALSE(audit::VerifyLineageProof(
                     *reparsed, "a2",
                     [&headers](uint64_t h) { return headers.BlockHashAt(h); })
                     .ok());
  }

  // Unknown records come back as an explicit failure, not a fabrication.
  requester->RequestLineageProof(2, "no-such-record");
  (*cluster)->RunUntilIdle();
  ASSERT_TRUE(requester->last_proof().received);
  EXPECT_FALSE(requester->last_proof().ok);
  EXPECT_TRUE(requester->last_proof().proof.empty());
}

TEST(ReplicationTest, EveryNodeAnswersMetricsOverWire) {
  ClusterOptions options;
  options.num_nodes = 4;
  options.seed = 23;
  auto cluster = Cluster::Create(options);
  ASSERT_TRUE(cluster.ok());
  Ingest(cluster->get(), "met", 24, 6);
  ASSERT_TRUE((*cluster)->Converged());

  // Every node serves repl/metrics; the body is that node's own stack.
  for (network::NodeId target = 0; target < 4; ++target) {
    SCOPED_TRACE(target);
    ReplicatedNode* asker = (*cluster)->node((target + 1) % 4);
    asker->RequestMetrics(target);
    (*cluster)->RunUntilIdle();
    ASSERT_TRUE(asker->last_metrics().received);
    const std::string& body = asker->last_metrics().body;
    EXPECT_NE(body.find("chain_height 4"), std::string::npos) << body;
    EXPECT_NE(body.find("# TYPE chain_append_seconds histogram"),
              std::string::npos);
    // One registry per node: the serve we just triggered is the only
    // repl/metrics message this node has ever counted — a shared registry
    // would show the whole cluster's scrapes here.
    EXPECT_NE(body.find("repl_messages_total{type=\"metrics\"} 1"),
              std::string::npos);
    EXPECT_EQ((*cluster)->node(target)->registry(),
              (*cluster)->registry(target));
  }

  // A JSON scrape carries the same registry in the bench-JSON shape.
  ReplicatedNode* asker = (*cluster)->node(0);
  asker->RequestMetrics(1, obs::ExpositionFormat::kJson);
  (*cluster)->RunUntilIdle();
  ASSERT_TRUE(asker->last_metrics().received);
  const std::string& json = asker->last_metrics().body;
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"name\": \"chain_height\""), std::string::npos);
}

}  // namespace
}  // namespace replication
}  // namespace provledger
