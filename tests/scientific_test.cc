// Scientific-workflow tests: the Figure 4 lifecycle — design, execution,
// branching/merging, publishing, invalidation cascade, re-execution.

#include <gtest/gtest.h>

#include "domains/scientific/workflow.h"

namespace provledger {
namespace scientific {
namespace {

class WorkflowTest : public ::testing::Test {
 protected:
  WorkflowTest() : clock_(0), store_(&chain_, &clock_), wm_(&store_, &clock_) {
    // Pipeline: ingest -> clean -> {analyze-a, analyze-b} -> merge-report
    EXPECT_TRUE(wm_.CreateWorkflow("wf-1", "lab-a").ok());
    EXPECT_TRUE(wm_.AddTask("wf-1", "ingest", "fetch-data").ok());
    EXPECT_TRUE(wm_.AddTask("wf-1", "clean", "clean", {"ingest"}).ok());
    EXPECT_TRUE(wm_.Branch("wf-1", "analyze-a", "stats", "clean").ok());
    EXPECT_TRUE(wm_.Branch("wf-1", "analyze-b", "ml-fit", "clean").ok());
    EXPECT_TRUE(
        wm_.Merge("wf-1", "merge-report", "report", {"analyze-a", "analyze-b"})
            .ok());
  }
  ledger::Blockchain chain_;
  SimClock clock_;
  prov::ProvenanceStore store_;
  WorkflowManager wm_;
};

TEST_F(WorkflowTest, DesignPhaseValidation) {
  EXPECT_TRUE(wm_.CreateWorkflow("wf-1", "x").IsAlreadyExists());
  EXPECT_TRUE(wm_.AddTask("ghost", "t", "op").IsNotFound());
  EXPECT_TRUE(wm_.AddTask("wf-1", "ingest", "op").IsAlreadyExists());
  EXPECT_TRUE(wm_.AddTask("wf-1", "t", "op", {"ghost-dep"}).IsNotFound());
  EXPECT_TRUE(
      wm_.Merge("wf-1", "m", "op", {"ingest"}).IsInvalidArgument());
}

TEST_F(WorkflowTest, DependencyOrderEnforced) {
  EXPECT_TRUE(
      wm_.ExecuteTask("wf-1", "clean", "alice").IsFailedPrecondition());
  ASSERT_TRUE(wm_.ExecuteTask("wf-1", "ingest", "alice").ok());
  EXPECT_TRUE(wm_.ExecuteTask("wf-1", "clean", "alice").ok());
  // Double execution rejected.
  EXPECT_TRUE(
      wm_.ExecuteTask("wf-1", "ingest", "alice").IsFailedPrecondition());
}

TEST_F(WorkflowTest, ExecuteAllRunsTopologically) {
  auto executed = wm_.ExecuteAll("wf-1", "alice");
  ASSERT_TRUE(executed.ok());
  EXPECT_EQ(executed.value(), 5u);
  auto task = wm_.GetTask("wf-1", "merge-report");
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->state, TaskState::kExecuted);
  // Provenance was anchored per execution.
  EXPECT_EQ(store_.anchored_count(), 5u);
}

TEST_F(WorkflowTest, PublishRequiresAllExecuted) {
  EXPECT_TRUE(wm_.Publish("wf-1").IsFailedPrecondition());
  ASSERT_TRUE(wm_.ExecuteAll("wf-1", "alice").ok());
  EXPECT_TRUE(wm_.Publish("wf-1").ok());
  auto wf = wm_.GetWorkflow("wf-1");
  ASSERT_TRUE(wf.ok());
  EXPECT_TRUE(wf->published);
}

TEST_F(WorkflowTest, OutputLineageTracksInputs) {
  ASSERT_TRUE(wm_.ExecuteAll("wf-1", "alice").ok());
  auto lineage = wm_.OutputLineage("wf-1", "merge-report");
  // merge-report/out <- {analyze-a/out, analyze-b/out} <- clean/out <- ingest/out
  EXPECT_EQ(lineage.size(), 4u);
}

TEST_F(WorkflowTest, InvalidationCascadesToDownstreamTasks) {
  ASSERT_TRUE(wm_.ExecuteAll("wf-1", "alice").ok());
  auto invalidated = wm_.InvalidateTask("wf-1", "clean", "bad parameter");
  ASSERT_TRUE(invalidated.ok());
  // clean + analyze-a + analyze-b + merge-report.
  EXPECT_EQ(invalidated->size(), 4u);
  for (const char* t : {"clean", "analyze-a", "analyze-b", "merge-report"}) {
    auto task = wm_.GetTask("wf-1", t);
    ASSERT_TRUE(task.ok());
    EXPECT_EQ(task->state, TaskState::kInvalidated) << t;
  }
  // ingest untouched.
  auto ingest = wm_.GetTask("wf-1", "ingest");
  ASSERT_TRUE(ingest.ok());
  EXPECT_EQ(ingest->state, TaskState::kExecuted);
}

TEST_F(WorkflowTest, LeafInvalidationTouchesOnlyLeaf) {
  ASSERT_TRUE(wm_.ExecuteAll("wf-1", "alice").ok());
  auto invalidated = wm_.InvalidateTask("wf-1", "merge-report", "typo");
  ASSERT_TRUE(invalidated.ok());
  EXPECT_EQ(invalidated->size(), 1u);
}

TEST_F(WorkflowTest, SelectiveReexecutionRepairsWorkflow) {
  ASSERT_TRUE(wm_.ExecuteAll("wf-1", "alice").ok());
  ASSERT_TRUE(wm_.InvalidateTask("wf-1", "analyze-a", "bug").ok());

  auto plan = wm_.ReexecutionPlan("wf-1");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(*plan, (std::vector<std::string>{"analyze-a", "merge-report"}));

  // Cannot re-execute merge before its invalidated dependency is repaired.
  EXPECT_TRUE(wm_.ReexecuteTask("wf-1", "merge-report", "bob")
                  .IsFailedPrecondition());
  ASSERT_TRUE(wm_.ReexecuteTask("wf-1", "analyze-a", "bob").ok());
  ASSERT_TRUE(wm_.ReexecuteTask("wf-1", "merge-report", "bob").ok());

  auto task = wm_.GetTask("wf-1", "merge-report");
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->state, TaskState::kReexecuted);
  EXPECT_EQ(task->executions, 2u);
  // Publishing is possible again.
  EXPECT_TRUE(wm_.Publish("wf-1").ok());
}

TEST_F(WorkflowTest, ReexecutionOnlyForInvalidated) {
  ASSERT_TRUE(wm_.ExecuteAll("wf-1", "alice").ok());
  EXPECT_TRUE(
      wm_.ReexecuteTask("wf-1", "ingest", "bob").IsFailedPrecondition());
  EXPECT_TRUE(wm_.InvalidateTask("wf-1", "ghost", "x").status().IsNotFound());
}

TEST_F(WorkflowTest, MultiWorkflowLedgerSharing) {
  // A second workflow on the same store/ledger (SciLedger's multi-workflow
  // support).
  ASSERT_TRUE(wm_.CreateWorkflow("wf-2", "lab-b").ok());
  ASSERT_TRUE(wm_.AddTask("wf-2", "only", "op").ok());
  ASSERT_TRUE(wm_.ExecuteAll("wf-1", "alice").ok());
  ASSERT_TRUE(wm_.ExecuteTask("wf-2", "only", "bob").ok());
  EXPECT_EQ(wm_.workflow_count(), 2u);
  EXPECT_EQ(store_.anchored_count(), 6u);
  EXPECT_TRUE(chain_.VerifyIntegrity().ok());
}

TEST_F(WorkflowTest, RecordsCarryTable1Fields) {
  ASSERT_TRUE(wm_.ExecuteTask("wf-1", "ingest", "alice").ok());
  auto history = store_.SubjectHistory("ingest");
  ASSERT_EQ(history.size(), 1u);
  const auto& rec = history[0];
  EXPECT_EQ(rec.domain, prov::Domain::kScientific);
  EXPECT_EQ(rec.fields.at(prov::fields::kWorkflowId), "wf-1");
  EXPECT_EQ(rec.fields.at(prov::fields::kUserId), "alice");
  EXPECT_TRUE(rec.Validate().ok());
}

}  // namespace
}  // namespace scientific
}  // namespace provledger
