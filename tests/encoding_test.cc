// Encoding-layer tests: the columnar batch codec (bit-identical round trip
// against the canonical record encoding), versioned block frames on the
// ChainLog and the replication wire, the LZ batch compressor, and the
// FileKvStore compression hook. The invariant under test everywhere: the
// compact forms are *transport* encodings — decoding must reproduce the
// exact canonical bytes (same Encode(), same Hash()) or fail loudly.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/compress.h"
#include "crypto/schnorr.h"
#include "crypto/sha256.h"
#include "ledger/chain.h"
#include "ledger/chain_log.h"
#include "prov/columnar.h"
#include "prov/record.h"
#include "replication/cluster.h"
#include "storage/file_kv_store.h"
#include "temp_dir.h"

namespace provledger {
namespace {

namespace columnar = prov::columnar;

// ---------------------------------------------------------------------------
// Record batch round trips
// ---------------------------------------------------------------------------

prov::ProvenanceRecord BaseRecord(size_t i) {
  prov::ProvenanceRecord rec;
  rec.record_id = "rec-" + std::to_string(1000 + i);
  rec.domain = prov::Domain::kCloud;
  rec.operation = "update";
  rec.subject = "file-" + std::to_string(i % 7);
  rec.agent = "user-" + std::to_string(i % 3);
  rec.timestamp = static_cast<Timestamp>(5'000'000 + i * 137);
  rec.fields["vm_id"] = "vm-12";
  rec.fields["operation_umid"] = "op-" + std::to_string(i);
  return rec;
}

void ExpectBitIdenticalRoundTrip(
    const std::vector<prov::ProvenanceRecord>& records) {
  Bytes encoded = columnar::EncodeRecordBatch(records);
  auto decoded = columnar::DecodeRecordBatch(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    // Bit-identical: same canonical bytes, therefore same content hash —
    // Merkle roots, txids, and dedup built on Hash() are all untouched.
    EXPECT_EQ(decoded.value()[i].Encode(), records[i].Encode()) << "i=" << i;
    EXPECT_EQ(decoded.value()[i].Hash(), records[i].Hash()) << "i=" << i;
  }
}

TEST(ColumnarBatchTest, RoundTripAllSevenDomains) {
  std::vector<prov::ProvenanceRecord> records;
  for (int d = 0; d <= 6; ++d) {
    prov::ProvenanceRecord rec = BaseRecord(records.size());
    rec.domain = static_cast<prov::Domain>(d);
    rec.inputs = {"in-" + std::to_string(d), "shared-input"};
    rec.outputs = {"out-" + std::to_string(d)};
    rec.payload_hash = crypto::Sha256::Hash(ToBytes("artifact-" +
                                                    std::to_string(d)));
    records.push_back(std::move(rec));
  }
  ExpectBitIdenticalRoundTrip(records);
}

TEST(ColumnarBatchTest, EmptyBatch) {
  ExpectBitIdenticalRoundTrip({});
  EXPECT_EQ(columnar::EncodeRecordBatch({}).size(), 1u);  // just the count
}

TEST(ColumnarBatchTest, SingleRecord) {
  ExpectBitIdenticalRoundTrip({BaseRecord(0)});
}

TEST(ColumnarBatchTest, SelfSimilarBatchCompresses) {
  std::vector<prov::ProvenanceRecord> records;
  size_t canonical = 0;
  for (size_t i = 0; i < 512; ++i) {
    records.push_back(BaseRecord(i));
    canonical += records.back().Encode().size();
  }
  Bytes encoded = columnar::EncodeRecordBatch(records);
  // The headline claim: >= 3x smaller than the canonical per-record form
  // on an IoT-shaped batch (in practice ~8-10x).
  EXPECT_LT(encoded.size() * 3, canonical);
  ExpectBitIdenticalRoundTrip(records);
}

TEST(ColumnarBatchTest, UnicodeAndEmptyValues) {
  prov::ProvenanceRecord a = BaseRecord(0);
  a.operation = "";
  a.agent = "";
  a.fields[""] = "";                       // empty key and value
  a.fields["unité"] = "café ☕ провенанс";  // multi-byte UTF-8
  prov::ProvenanceRecord b = BaseRecord(1);
  b.subject = "";
  b.fields["k"] = std::string(3, '\0');  // embedded NULs survive
  ExpectBitIdenticalRoundTrip({a, b});
}

TEST(ColumnarBatchTest, IdSuffixEdgeCases) {
  const std::string nineteen_digits = "1234567890123456789";
  std::vector<std::string> ids = {
      "rec-007",            // leading zeros must survive re-formatting
      "007",                // all digits, leading zeros
      "42",                 // all digits
      "no-digits",          // no numeric tail
      "",                   // empty id
      "rec-" + nineteen_digits,  // > 18 digits: tail capped, not overflowed
      nineteen_digits + "0",     // 20 digits
      "rec-000000000000000042",  // exactly 18-digit tail
      "trailing-dash-",          // digit run is interior, not trailing
  };
  std::vector<prov::ProvenanceRecord> records;
  for (size_t i = 0; i < ids.size(); ++i) {
    prov::ProvenanceRecord rec = BaseRecord(i);
    rec.record_id = ids[i];
    records.push_back(std::move(rec));
  }
  ExpectBitIdenticalRoundTrip(records);
}

TEST(ColumnarBatchTest, AdversarialDissimilarRecords) {
  // Nothing shared: every column's dictionary degenerates to one entry per
  // record, timestamps go backwards (negative deltas), ids are unrelated.
  std::vector<prov::ProvenanceRecord> records;
  for (size_t i = 0; i < 64; ++i) {
    prov::ProvenanceRecord rec;
    rec.record_id = std::string(i, 'x') + std::to_string(i * 7919);
    rec.domain = static_cast<prov::Domain>(i % 7);
    rec.operation = "op" + std::string(i % 11, 'q');
    rec.subject = "s" + std::to_string((i * 104729) % 1000003);
    rec.agent = std::string(1, static_cast<char>('a' + (i % 26)));
    rec.timestamp = static_cast<Timestamp>(1'000'000'000) -
                    static_cast<Timestamp>(i * i * 33'331);
    for (size_t k = 0; k < i % 5; ++k) {
      rec.fields["key-" + std::to_string(i) + "-" + std::to_string(k)] =
          std::string(k * 17, static_cast<char>('A' + k));
    }
    if (i % 3 == 0) rec.inputs.push_back("in" + std::to_string(i));
    if (i % 4 == 0) {
      rec.payload_hash = crypto::Sha256::Hash(ToBytes(std::to_string(i)));
    }
    records.push_back(std::move(rec));
  }
  ExpectBitIdenticalRoundTrip(records);
}

TEST(ColumnarBatchTest, TruncationFailsLoudlyAtEveryPrefix) {
  std::vector<prov::ProvenanceRecord> records;
  for (size_t i = 0; i < 8; ++i) records.push_back(BaseRecord(i));
  Bytes encoded = columnar::EncodeRecordBatch(records);
  ASSERT_GT(encoded.size(), 8u);
  for (size_t len = 0; len < encoded.size(); ++len) {
    Bytes prefix(encoded.begin(), encoded.begin() + len);
    auto decoded = columnar::DecodeRecordBatch(prefix);
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
  // Trailing garbage is rejected too: the batch must consume every byte.
  Bytes padded = encoded;
  padded.push_back(0x00);
  EXPECT_FALSE(columnar::DecodeRecordBatch(padded).ok());
}

TEST(ColumnarBatchTest, GoldenBytes) {
  // Wire-format pin: if this test fails, the columnar format changed and
  // needs either a new frame version or a deliberate update of this vector.
  prov::ProvenanceRecord a;
  a.record_id = "rec-1";
  a.domain = prov::Domain::kSupplyChain;
  a.operation = "create";
  a.subject = "pkg-9";
  a.agent = "org-a";
  a.timestamp = 1000;
  a.fields["batch_number"] = "lot-1";
  prov::ProvenanceRecord b = a;
  b.record_id = "rec-2";
  b.operation = "update";
  b.timestamp = 1004;
  Bytes encoded = columnar::EncodeRecordBatch({a, b});
  EXPECT_EQ(HexEncode(encoded),
            "0207047265632d066372656174650675706461746504706b672d056f72672d61"
            "0c62617463685f6e756d626572056c6f742d3100010200010202020102030112"
            "03010004000400d00f08000000000001050600060000");
  ExpectBitIdenticalRoundTrip({a, b});
}

// ---------------------------------------------------------------------------
// Block frames
// ---------------------------------------------------------------------------

ledger::Transaction RecordTx(const prov::ProvenanceRecord& rec) {
  return ledger::Transaction::MakeSystem("prov/record", "prov",
                                         rec.Encode(), rec.timestamp,
                                         rec.timestamp % 97);
}

TEST(ColumnarBlockTest, RoundTripWithRawFallback) {
  std::vector<ledger::Transaction> txs;
  for (size_t i = 0; i < 32; ++i) txs.push_back(RecordTx(BaseRecord(i)));
  // A signed, non-record transaction rides in the same block: it must take
  // the raw path (flag 0) and re-validate its signature after decode.
  crypto::PrivateKey key = crypto::PrivateKey::FromSeed("encoding-test");
  txs.push_back(ledger::Transaction::MakeSigned(
      "custody/transfer", "supply-chain", ToBytes("opaque-payload"), key,
      9999, 1));
  // A "prov/record"-typed transaction whose payload is NOT a canonical
  // record encoding must also fall back to raw, byte for byte.
  txs.push_back(ledger::Transaction::MakeSystem("prov/record", "prov",
                                                {0xde, 0xad, 0xbe, 0xef},
                                                10000, 2));
  ledger::Block block =
      ledger::Block::Make(7, crypto::Sha256::Hash(ToBytes("prev")),
                          std::move(txs), 123456, "node-2");

  Bytes frame = columnar::EncodeBlock(block);
  ASSERT_TRUE(columnar::IsColumnarBlock(frame));
  EXPECT_LT(frame.size(), block.Encode().size());
  auto decoded = columnar::DecodeBlock(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // The whole block reproduces bit-identically: header hash, Merkle root,
  // and every transaction's canonical bytes.
  EXPECT_EQ(decoded.value().Encode(), block.Encode());
  EXPECT_EQ(decoded.value().header.Hash(), block.header.Hash());
  EXPECT_TRUE(
      decoded.value().transactions[32].VerifySignature().ok());
}

TEST(ColumnarBlockTest, LegacyBlockDecodesThroughSameEntryPoint) {
  ledger::Block block = ledger::Block::Make(
      1, crypto::ZeroDigest(), {RecordTx(BaseRecord(0))}, 1000, "n");
  Bytes legacy = block.Encode();
  ASSERT_FALSE(columnar::IsColumnarBlock(legacy));
  auto decoded = columnar::DecodeBlock(legacy);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().Encode(), legacy);
}

TEST(ColumnarBlockTest, TruncatedFrameIsCorruption) {
  std::vector<ledger::Transaction> txs;
  for (size_t i = 0; i < 4; ++i) txs.push_back(RecordTx(BaseRecord(i)));
  ledger::Block block =
      ledger::Block::Make(2, crypto::ZeroDigest(), std::move(txs), 50, "n");
  Bytes frame = columnar::EncodeBlock(block);
  for (size_t len = sizeof(columnar::kBlockMagic); len < frame.size();
       len += 7) {
    Bytes prefix(frame.begin(), frame.begin() + len);
    EXPECT_FALSE(columnar::DecodeBlock(prefix).ok()) << "len=" << len;
  }
  Bytes padded = frame;
  padded.push_back(0x42);
  EXPECT_FALSE(columnar::DecodeBlock(padded).ok());
}

// ---------------------------------------------------------------------------
// ChainLog: mixed-format logs replay through one entry point
// ---------------------------------------------------------------------------

class EncodingDirTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = testutil::MakeTempDir(); }
  void TearDown() override { testutil::RemoveTree(dir_); }
  std::string dir_;
};

using ChainLogEncodingTest = EncodingDirTest;

TEST_F(ChainLogEncodingTest, MixedLegacyAndColumnarLogReplays) {
  const std::string path = dir_ + "/chain.log";
  crypto::Digest head;
  {
    // Epoch 1: a pre-columnar deployment writes raw bodies.
    ledger::ChainLogOptions opts;
    opts.columnar_bodies = false;
    ledger::Blockchain chain;
    auto log = ledger::ChainLog::Open(path, opts);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->AttachTo(&chain).ok());
    for (uint64_t i = 1; i <= 3; ++i) {
      ASSERT_TRUE(
          chain.Append({RecordTx(BaseRecord(i))}, 1000 + i, "node-1").ok());
    }
  }
  {
    // Epoch 2: the upgraded deployment replays the legacy blocks and
    // appends columnar ones to the same file.
    ledger::Blockchain chain;
    auto log = ledger::ChainLog::Open(path);  // columnar_bodies default on
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->AttachTo(&chain).ok());
    ASSERT_EQ(chain.height(), 3u);
    for (uint64_t i = 4; i <= 6; ++i) {
      ASSERT_TRUE(
          chain.Append({RecordTx(BaseRecord(i))}, 1000 + i, "node-1").ok());
    }
    head = chain.head_hash();
  }
  // Epoch 3: a reader configured either way replays the mixed log in full.
  for (bool columnar : {true, false}) {
    ledger::ChainLogOptions opts;
    opts.columnar_bodies = columnar;
    ledger::Blockchain chain;
    auto log = ledger::ChainLog::Open(path, opts);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->AttachTo(&chain).ok());
    EXPECT_EQ(chain.height(), 6u);
    EXPECT_EQ(chain.head_hash(), head);
    EXPECT_TRUE(chain.VerifyIntegrity().ok());
  }
}

TEST_F(ChainLogEncodingTest, ColumnarLogIsSmallerThanRaw) {
  auto fill = [&](const std::string& path, bool columnar) -> uint64_t {
    ledger::ChainLogOptions opts;
    opts.columnar_bodies = columnar;
    ledger::Blockchain chain;
    auto log = ledger::ChainLog::Open(path, opts);
    EXPECT_TRUE(log.ok());
    EXPECT_TRUE((*log)->AttachTo(&chain).ok());
    for (uint64_t b = 1; b <= 4; ++b) {
      std::vector<ledger::Transaction> txs;
      for (size_t i = 0; i < 128; ++i) {
        txs.push_back(RecordTx(BaseRecord(b * 1000 + i)));
      }
      EXPECT_TRUE(chain.Append(std::move(txs), 1000 + b, "node-1").ok());
    }
    return (*log)->size_bytes();
  };
  uint64_t columnar_bytes = fill(dir_ + "/columnar.log", true);
  uint64_t raw_bytes = fill(dir_ + "/raw.log", false);
  EXPECT_LT(columnar_bytes * 3, raw_bytes);
}

// ---------------------------------------------------------------------------
// LZ compressor
// ---------------------------------------------------------------------------

TEST(LzCompressTest, RoundTrip) {
  std::vector<Bytes> cases;
  cases.push_back({});                       // empty
  cases.push_back(ToBytes("a"));             // below match length
  cases.push_back(Bytes(100'000, 0x61));     // maximally repetitive
  Bytes mixed;
  for (size_t i = 0; i < 10'000; ++i) {
    mixed.push_back(static_cast<uint8_t>((i * 2654435761u) >> 13));
  }
  cases.push_back(mixed);                    // incompressible-ish
  Bytes batch;
  for (int i = 0; i < 200; ++i) {
    Bytes rec = ToBytes("record-" + std::to_string(i) + "/sensor-reading");
    batch.insert(batch.end(), rec.begin(), rec.end());
  }
  cases.push_back(batch);                    // self-similar
  for (const Bytes& raw : cases) {
    Bytes compressed = LzCompress(raw);
    auto back = LzDecompress(compressed, raw.size());
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.value(), raw);
  }
  // The self-similar case must actually shrink.
  EXPECT_LT(LzCompress(batch).size(), batch.size());
}

TEST(LzCompressTest, CorruptInputFailsLoudly) {
  Bytes raw = Bytes(1000, 0x42);
  Bytes compressed = LzCompress(raw);
  // Wrong raw_size: both directions are errors, never over/under-reads.
  EXPECT_FALSE(LzDecompress(compressed, raw.size() + 1).ok());
  EXPECT_FALSE(LzDecompress(compressed, raw.size() - 1).ok());
  // Truncation at every prefix is an error, never a crash.
  for (size_t len = 0; len < compressed.size(); ++len) {
    Bytes prefix(compressed.begin(), compressed.begin() + len);
    EXPECT_FALSE(LzDecompress(prefix, raw.size()).ok()) << "len=" << len;
  }
}

// ---------------------------------------------------------------------------
// FileKvStore compression hook
// ---------------------------------------------------------------------------

using FileKvCompressionTest = EncodingDirTest;

storage::FileKvStoreOptions CompressedOptions() {
  storage::FileKvStoreOptions options;
  options.compress = LzCompress;
  options.decompress = LzDecompress;
  return options;
}

TEST_F(FileKvCompressionTest, RoundTripReplayAndIterate) {
  auto put_all = [](storage::FileKvStore* store) {
    for (int i = 0; i < 200; ++i) {
      storage::WriteBatch batch;
      for (int j = 0; j < 4; ++j) {
        batch.Put("sensor/" + std::to_string(i) + "/" + std::to_string(j),
                  "reading=" + std::to_string(20 + (i + j) % 6) +
                      ";unit=celsius;product=pkg-" + std::to_string(i % 10));
      }
      ASSERT_TRUE(store->Write(batch).ok());
    }
  };
  {
    auto store = storage::FileKvStore::Open(dir_, CompressedOptions());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    put_all((*store).get());
    // Random reads slice values out of compressed batches.
    auto got = (*store)->Get("sensor/7/2");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(BytesToString(got.value()),
              "reading=23;unit=celsius;product=pkg-7");
  }
  // Reopen with the hook: compressed frames replay into the index.
  auto reopened = storage::FileKvStore::Open(dir_, CompressedOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->ApproximateCount(), 800u);
  auto got = (*reopened)->Get("sensor/199/3");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(BytesToString(got.value()),
            "reading=24;unit=celsius;product=pkg-9");
  size_t seen = 0;
  for (auto it = (*reopened)->NewIterator(); it->Valid(); it->Next()) {
    EXPECT_NE(BytesToString(it->value()).find("unit=celsius"),
              std::string::npos);
    ++seen;
  }
  EXPECT_EQ(seen, 800u);
}

TEST_F(FileKvCompressionTest, ReopenWithoutDecompressorFailsLoudly) {
  {
    auto store = storage::FileKvStore::Open(dir_, CompressedOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("k", Bytes(4096, 0x55)).ok());
  }
  auto plain = storage::FileKvStore::Open(dir_);
  ASSERT_FALSE(plain.ok());
  EXPECT_TRUE(plain.status().IsCorruption())
      << plain.status().ToString();
}

TEST_F(FileKvCompressionTest, CompressedLogIsSmaller) {
  auto fill = [&](const std::string& dir,
                  storage::FileKvStoreOptions options) -> uint64_t {
    options.sync_writes = false;
    auto store = storage::FileKvStore::Open(dir, options);
    EXPECT_TRUE(store.ok());
    storage::WriteBatch batch;
    for (int i = 0; i < 2000; ++i) {
      batch.Put("block/" + std::to_string(i),
                "provenance-record-payload-" + std::to_string(i % 50));
      if (batch.size() == 100) {
        EXPECT_TRUE((*store)->Write(batch).ok());
        batch.Clear();
      }
    }
    if (!batch.empty()) EXPECT_TRUE((*store)->Write(batch).ok());
    struct stat st;
    uint64_t total = 0;
    for (int seg = 1; seg <= 4; ++seg) {
      char name[32];
      std::snprintf(name, sizeof(name), "/%06d.log", seg);
      if (::stat((dir + name).c_str(), &st) == 0) {
        total += static_cast<uint64_t>(st.st_size);
      }
    }
    return total;
  };
  uint64_t compressed = fill(dir_ + "/c", CompressedOptions());
  uint64_t raw = fill(dir_ + "/r", storage::FileKvStoreOptions());
  EXPECT_LT(compressed * 2, raw);
}

// ---------------------------------------------------------------------------
// Replication wire
// ---------------------------------------------------------------------------

prov::ProvenanceRecord ClusterRecord(size_t i) {
  return prov::MakeSupplyChainRecord(
      "wire-" + std::to_string(i), "sensor-reading",
      "pkg-" + std::to_string(i % 20), "sensor-" + std::to_string(i % 4),
      static_cast<Timestamp>(10'000 + i * 50), "lot-9", "2027-06",
      "factory>dc", "vaccine", "mfg-1", "qr://w/" + std::to_string(i));
}

uint64_t RunWireWorkload(bool columnar_wire, size_t n) {
  replication::ClusterOptions options;
  options.num_nodes = 4;
  options.seed = 7;
  options.consensus = "raft";
  options.columnar_wire = columnar_wire;
  auto cluster = replication::Cluster::Create(options);
  EXPECT_TRUE(cluster.ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE((*cluster)->Submit(ClusterRecord(i)).ok());
    if ((*cluster)->pending_count() == 128 || i + 1 == n) {
      EXPECT_TRUE((*cluster)->CommitPending().ok());
    }
  }
  EXPECT_TRUE((*cluster)->Converged());
  // Followers rebuilt every record from the wire form; the audit re-checks
  // each one against its block's Merkle root.
  auto audit = (*cluster)->node(3)->store()->AuditAll();
  EXPECT_TRUE(audit.ok()) << audit.status().ToString();
  if (audit.ok()) EXPECT_EQ(audit.value(), n);
  return (*cluster)->net()->metrics().bytes_sent;
}

TEST(ReplicationEncodingTest, ColumnarWireConvergesAndIsSmaller) {
  constexpr size_t kRecords = 512;
  uint64_t columnar_bytes = RunWireWorkload(/*columnar_wire=*/true, kRecords);
  uint64_t raw_bytes = RunWireWorkload(/*columnar_wire=*/false, kRecords);
  EXPECT_LT(columnar_bytes * 3, raw_bytes)
      << "columnar wire " << columnar_bytes << " B vs raw " << raw_bytes;
}

}  // namespace
}  // namespace provledger
