// Property-based suites (parameterized sweeps over randomized inputs):
// codec/record round-trip under random content, Merkle forest membership
// across random partition layouts, chain integrity under random batch
// sizes, invalidation-cascade = downstream-closure equivalence on random
// DAGs, ZKRP completeness over random values/ranges, and HTLC conservation
// under randomized schedules.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crosschain/htlc.h"
#include "crypto/merkle_forest.h"
#include "crypto/pedersen.h"
#include "ledger/chain.h"
#include "prov/graph.h"

namespace provledger {
namespace {

// ---------- Record codec round-trip under random content -------------------

class RecordRoundTripSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecordRoundTripSweep, RandomRecordsSurviveCodec) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    prov::ProvenanceRecord rec;
    rec.record_id = rng.NextAlnum(1 + rng.NextBelow(20));
    rec.domain = static_cast<prov::Domain>(rng.NextBelow(7));
    rec.operation = rng.NextAlnum(1 + rng.NextBelow(12));
    rec.subject = rng.NextAlnum(1 + rng.NextBelow(24));
    rec.agent = rng.NextAlnum(1 + rng.NextBelow(16));
    rec.timestamp = static_cast<Timestamp>(rng.NextU64() >> 1);
    for (uint64_t k = rng.NextBelow(5); k > 0; --k) {
      rec.inputs.push_back(rng.NextAlnum(8));
    }
    for (uint64_t k = rng.NextBelow(4); k > 0; --k) {
      rec.outputs.push_back(rng.NextAlnum(8));
    }
    for (uint64_t k = rng.NextBelow(8); k > 0; --k) {
      rec.fields[rng.NextAlnum(6)] = BytesToString(rng.NextBytes(
          rng.NextBelow(64)));
    }
    crypto::Digest ph = crypto::Sha256::Hash(rng.NextBytes(16));
    rec.payload_hash = ph;

    auto decoded = prov::ProvenanceRecord::Decode(rec.Encode());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->Encode(), rec.Encode());  // canonical
    EXPECT_EQ(decoded->Hash(), rec.Hash());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordRoundTripSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------- Merkle forest membership across random layouts -----------------

class ForestSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ForestSweep, EveryAppendedLeafVerifies) {
  Rng rng(GetParam());
  crypto::MerkleForest forest;
  std::vector<std::pair<std::string, Bytes>> appended;  // (partition, leaf)
  std::vector<uint64_t> indices;
  const size_t partitions = 1 + rng.NextBelow(6);
  const size_t appends = 20 + rng.NextBelow(40);
  for (size_t i = 0; i < appends; ++i) {
    std::string partition = "part-" + std::to_string(rng.NextBelow(partitions));
    Bytes payload = rng.NextBytes(1 + rng.NextBelow(48));
    indices.push_back(forest.Append(partition, payload));
    appended.emplace_back(partition, payload);
  }
  crypto::Digest root = forest.ForestRoot();
  for (size_t i = 0; i < appended.size(); ++i) {
    auto proof = forest.Prove(appended[i].first, indices[i]);
    ASSERT_TRUE(proof.ok());
    EXPECT_TRUE(
        crypto::MerkleForest::Verify(root, appended[i].second, proof.value()));
    // And a mutated payload never verifies.
    Bytes tampered = appended[i].second;
    tampered.push_back(0x00);
    EXPECT_FALSE(crypto::MerkleForest::Verify(root, tampered, proof.value()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForestSweep,
                         ::testing::Values(7, 11, 19, 23, 31));

// ---------- Chain integrity under random batches ----------------------------

class ChainSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChainSweep, RandomBatchesKeepIntegrity) {
  Rng rng(GetParam());
  ledger::Blockchain chain;
  Timestamp ts = 1000;
  size_t total_txs = 0;
  for (int b = 0; b < 20; ++b) {
    std::vector<ledger::Transaction> txs;
    const size_t count = 1 + rng.NextBelow(12);
    for (size_t i = 0; i < count; ++i) {
      txs.push_back(ledger::Transaction::MakeSystem(
          "t", "ch-" + std::to_string(rng.NextBelow(3)),
          rng.NextBytes(rng.NextBelow(100)), ts, rng.NextU64()));
    }
    total_txs += count;
    ts += static_cast<Timestamp>(rng.NextBelow(50));
    ASSERT_TRUE(chain.Append(txs, ts, "node").ok());
    // Every transaction findable and provable immediately.
    for (const auto& tx : txs) {
      ASSERT_TRUE(chain.FindTransaction(tx.Id()).ok());
      auto proof = chain.ProveTransaction(tx.Id());
      ASSERT_TRUE(proof.ok());
      EXPECT_TRUE(chain.VerifyTxProof(tx.Encode(), proof.value()));
    }
  }
  EXPECT_TRUE(chain.VerifyIntegrity().ok());
  EXPECT_EQ(chain.height(), 20u);
  (void)total_txs;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainSweep, ::testing::Values(3, 17, 29));

// ---------- Invalidation cascade == downstream closure ----------------------

class CascadeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CascadeSweep, CascadeEqualsReexecutionSetPlusRoot) {
  // Random DAG: record i consumes outputs of a random subset of earlier
  // records. Invalidating any record must mark exactly {root} ∪
  // ReexecutionSet(root).
  Rng rng(GetParam());
  prov::ProvenanceGraph graph;
  const int n = 25;
  for (int i = 0; i < n; ++i) {
    prov::ProvenanceRecord rec;
    rec.record_id = "rec-" + std::to_string(i);
    rec.operation = "op";
    rec.subject = "node-" + std::to_string(i);
    rec.agent = "a";
    rec.timestamp = i;
    rec.outputs = {"out-" + std::to_string(i)};
    if (i > 0) {
      for (uint64_t k = rng.NextBelow(3); k > 0; --k) {
        rec.inputs.push_back("out-" + std::to_string(rng.NextBelow(
                                 static_cast<uint64_t>(i))));
      }
    }
    ASSERT_TRUE(graph.AddRecord(rec).ok());
  }
  const std::string root = "rec-" + std::to_string(rng.NextBelow(n));
  auto expected = graph.ReexecutionSet(root);
  auto cascade = graph.Invalidate(root, 999, "probe");
  ASSERT_TRUE(cascade.ok());
  EXPECT_EQ(cascade->size(), expected.size() + 1);
  EXPECT_TRUE(graph.IsInvalidated(root));
  for (const auto& id : expected) {
    EXPECT_TRUE(graph.IsInvalidated(id)) << id;
  }
  EXPECT_EQ(graph.invalidated_count(), expected.size() + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CascadeSweep,
                         ::testing::Values(41, 43, 47, 53, 59, 61));

// ---------- ZKRP completeness over random values ----------------------------

class ZkrpSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ZkrpSweep, RandomValuesProveAndVerify) {
  Rng rng(GetParam());
  for (int i = 0; i < 3; ++i) {
    const uint32_t bits = 4 + static_cast<uint32_t>(rng.NextBelow(9));
    const uint64_t value = rng.NextBelow(1ULL << bits);
    crypto::U256 blinding = crypto::U256::FromBytesBE(
        crypto::Sha256::Hash(rng.NextBytes(16)).data());
    auto proof = crypto::Zkrp::Prove(value, blinding, bits,
                                     rng.NextBytes(8));
    ASSERT_TRUE(proof.ok()) << "bits=" << bits << " value=" << value;
    EXPECT_TRUE(crypto::Zkrp::Verify(proof.value()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZkrpSweep, ::testing::Values(67, 71, 73));

// ---------- HTLC conservation under randomized schedules --------------------

class HtlcScheduleSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HtlcScheduleSweep, ValueConservedUnderAnySchedule) {
  Rng rng(GetParam());
  SimClock clock(1'000'000);
  crosschain::AssetLedger ledger("chain", &clock);
  ASSERT_TRUE(ledger.Mint("alice", 1000).ok());
  ASSERT_TRUE(ledger.Mint("bob", 1000).ok());

  auto total = [&] {
    return ledger.BalanceOf("alice").value() +
           ledger.BalanceOf("bob").value();
  };

  uint64_t locked_total = 0;
  struct Open {
    std::string id;
    Bytes secret;
    Timestamp timeout;
    uint64_t amount;
  };
  std::vector<Open> open_escrows;

  for (int step = 0; step < 60; ++step) {
    const uint64_t action = rng.NextBelow(3);
    if (action == 0 && ledger.BalanceOf("alice").value() >= 10) {
      Bytes secret = rng.NextBytes(8);
      Timestamp timeout =
          clock.NowMicros() + 100 + static_cast<Timestamp>(rng.NextBelow(500));
      auto escrow = ledger.Lock("alice", "bob", 10,
                                crypto::HashLock::FromSecret(secret), timeout);
      if (escrow.ok()) {
        open_escrows.push_back({escrow.value(), secret, timeout, 10});
        locked_total += 10;
      }
    } else if (action == 1 && !open_escrows.empty()) {
      size_t pick = rng.NextBelow(open_escrows.size());
      Open escrow = open_escrows[pick];
      if (ledger.Claim(escrow.id, "bob", escrow.secret).ok()) {
        locked_total -= escrow.amount;
        open_escrows.erase(open_escrows.begin() + static_cast<long>(pick));
      }
    } else if (!open_escrows.empty()) {
      size_t pick = rng.NextBelow(open_escrows.size());
      Open escrow = open_escrows[pick];
      clock.SetMicros(escrow.timeout + 1);  // let it expire
      if (ledger.Refund(escrow.id, "alice").ok()) {
        locked_total -= escrow.amount;
        open_escrows.erase(open_escrows.begin() + static_cast<long>(pick));
      }
    }
    // Invariant: circulating + locked == initial supply at every step.
    EXPECT_EQ(total() + locked_total, 2000u) << "step " << step;
  }
  EXPECT_TRUE(ledger.chain()->VerifyIntegrity().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HtlcScheduleSweep,
                         ::testing::Values(83, 89, 97, 101));

}  // namespace
}  // namespace provledger
