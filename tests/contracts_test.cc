// Contract runtime tests: gas metering, transactional state, events, plus
// the SmartProvenance voting and PrivChain incentive contracts.

#include <gtest/gtest.h>

#include "common/codec.h"
#include "contracts/incentive.h"
#include "contracts/runtime.h"
#include "contracts/voting.h"

namespace provledger {
namespace contracts {
namespace {

// A tiny contract for runtime-mechanics tests.
class CounterContract : public Contract {
 public:
  std::string name() const override { return "counter"; }
  Result<Bytes> Invoke(ContractContext* ctx, const std::string& method,
                       const Bytes& /*args*/) override {
    if (method == "increment") {
      uint64_t value = 0;
      auto state = ctx->GetState("count");
      if (state.ok()) {
        Decoder dec(state.value());
        PROVLEDGER_RETURN_NOT_OK(dec.GetU64(&value));
      }
      ++value;
      Encoder enc;
      enc.PutU64(value);
      PROVLEDGER_RETURN_NOT_OK(ctx->PutState("count", enc.TakeBuffer()));
      PROVLEDGER_RETURN_NOT_OK(
          ctx->EmitEvent("incremented", std::to_string(value)));
      Encoder out;
      out.PutU64(value);
      return out.TakeBuffer();
    }
    if (method == "fail_after_write") {
      PROVLEDGER_RETURN_NOT_OK(ctx->PutState("count", ToBytes("garbage")));
      return Status::Aborted("deliberate failure");
    }
    if (method == "burn_gas") {
      for (int i = 0; i < 1'000'000; ++i) {
        PROVLEDGER_RETURN_NOT_OK(ctx->PutState("x", ToBytes("y")));
      }
      return Bytes{};
    }
    return Status::InvalidArgument("unknown method");
  }
};

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : clock_(1000), runtime_(&clock_) {
    EXPECT_TRUE(runtime_.Deploy(std::make_unique<CounterContract>()).ok());
  }
  SimClock clock_;
  ContractRuntime runtime_;
};

TEST_F(RuntimeTest, InvokeAndPersistState) {
  auto r1 = runtime_.Invoke("counter", "increment", {}, "alice");
  ASSERT_TRUE(r1.ok());
  auto r2 = runtime_.Invoke("counter", "increment", {}, "bob");
  ASSERT_TRUE(r2.ok());
  Decoder dec(r2->return_value);
  uint64_t value = 0;
  ASSERT_TRUE(dec.GetU64(&value).ok());
  EXPECT_EQ(value, 2u);
}

TEST_F(RuntimeTest, FailureRollsBackState) {
  ASSERT_TRUE(runtime_.Invoke("counter", "increment", {}, "alice").ok());
  EXPECT_FALSE(
      runtime_.Invoke("counter", "fail_after_write", {}, "alice").ok());
  // State still decodes as the counter value 1.
  auto r = runtime_.Invoke("counter", "increment", {}, "alice");
  ASSERT_TRUE(r.ok());
  Decoder dec(r->return_value);
  uint64_t value = 0;
  ASSERT_TRUE(dec.GetU64(&value).ok());
  EXPECT_EQ(value, 2u);
}

TEST_F(RuntimeTest, GasLimitEnforced) {
  auto r = runtime_.Invoke("counter", "burn_gas", {}, "alice");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(RuntimeTest, EventsRecordedOnlyOnSuccess) {
  ASSERT_TRUE(runtime_.Invoke("counter", "increment", {}, "alice").ok());
  EXPECT_FALSE(
      runtime_.Invoke("counter", "fail_after_write", {}, "alice").ok());
  ASSERT_EQ(runtime_.event_log().size(), 1u);
  EXPECT_EQ(runtime_.event_log()[0].name, "incremented");
}

TEST_F(RuntimeTest, UnknownContractAndDuplicateDeploy) {
  EXPECT_TRUE(runtime_.Invoke("ghost", "m", {}, "a").status().IsNotFound());
  EXPECT_TRUE(runtime_.Deploy(std::make_unique<CounterContract>())
                  .IsAlreadyExists());
}

Bytes StringArgs(const std::string& s) {
  Encoder enc;
  enc.PutString(s);
  return enc.TakeBuffer();
}

Bytes VoteArgs(const std::string& id, bool approve) {
  Encoder enc;
  enc.PutString(id);
  enc.PutBool(approve);
  return enc.TakeBuffer();
}

class VotingTest : public ::testing::Test {
 protected:
  VotingTest() : clock_(1000), runtime_(&clock_) {
    EXPECT_TRUE(runtime_
                    .Deploy(std::make_unique<ThresholdVoteContract>(
                        std::set<std::string>{"v1", "v2", "v3", "v4", "v5"},
                        50))
                    .ok());
  }
  std::string Status_(const std::string& id) {
    auto r = runtime_.Invoke("threshold-vote", "status", StringArgs(id), "x");
    EXPECT_TRUE(r.ok());
    return BytesToString(r->return_value);
  }
  SimClock clock_;
  ContractRuntime runtime_;
};

TEST_F(VotingTest, ApprovalAtMajority) {
  ASSERT_TRUE(
      runtime_.Invoke("threshold-vote", "propose", StringArgs("rec-1"), "v1")
          .ok());
  EXPECT_EQ(Status_("rec-1"), "open");
  ASSERT_TRUE(
      runtime_.Invoke("threshold-vote", "vote", VoteArgs("rec-1", true), "v1")
          .ok());
  ASSERT_TRUE(
      runtime_.Invoke("threshold-vote", "vote", VoteArgs("rec-1", true), "v2")
          .ok());
  EXPECT_EQ(Status_("rec-1"), "open");  // 2 of 5 < 50%+1
  ASSERT_TRUE(
      runtime_.Invoke("threshold-vote", "vote", VoteArgs("rec-1", true), "v3")
          .ok());
  EXPECT_EQ(Status_("rec-1"), "approved");  // 3 >= floor(5*50/100)+1
}

TEST_F(VotingTest, RejectionPath) {
  ASSERT_TRUE(
      runtime_.Invoke("threshold-vote", "propose", StringArgs("rec-2"), "v1")
          .ok());
  for (const char* voter : {"v1", "v2", "v3"}) {
    ASSERT_TRUE(runtime_
                    .Invoke("threshold-vote", "vote", VoteArgs("rec-2", false),
                            voter)
                    .ok());
  }
  EXPECT_EQ(Status_("rec-2"), "rejected");
}

TEST_F(VotingTest, NonVoterRejected) {
  ASSERT_TRUE(
      runtime_.Invoke("threshold-vote", "propose", StringArgs("rec-3"), "v1")
          .ok());
  auto r = runtime_.Invoke("threshold-vote", "vote", VoteArgs("rec-3", true),
                           "intruder");
  EXPECT_TRUE(r.status().IsPermissionDenied());
}

TEST_F(VotingTest, DoubleVoteRejected) {
  ASSERT_TRUE(
      runtime_.Invoke("threshold-vote", "propose", StringArgs("rec-4"), "v1")
          .ok());
  ASSERT_TRUE(
      runtime_.Invoke("threshold-vote", "vote", VoteArgs("rec-4", true), "v1")
          .ok());
  EXPECT_TRUE(
      runtime_.Invoke("threshold-vote", "vote", VoteArgs("rec-4", true), "v1")
          .status()
          .IsAlreadyExists());
}

TEST_F(VotingTest, ClosedBallotRejectsVotes) {
  ASSERT_TRUE(
      runtime_.Invoke("threshold-vote", "propose", StringArgs("rec-5"), "v1")
          .ok());
  for (const char* voter : {"v1", "v2", "v3"}) {
    ASSERT_TRUE(
        runtime_.Invoke("threshold-vote", "vote", VoteArgs("rec-5", true),
                        voter)
            .ok());
  }
  EXPECT_TRUE(
      runtime_.Invoke("threshold-vote", "vote", VoteArgs("rec-5", true), "v4")
          .status()
          .IsFailedPrecondition());
}

class IncentiveTest : public ::testing::Test {
 protected:
  IncentiveTest() : clock_(1000), runtime_(&clock_) {
    EXPECT_TRUE(
        runtime_.Deploy(std::make_unique<IncentiveContract>(10)).ok());
  }
  uint64_t Balance(const std::string& account) {
    auto r = runtime_.Invoke("incentive", "balance",
                             IncentiveContract::BalanceArgs(account), "x");
    EXPECT_TRUE(r.ok());
    Decoder dec(r->return_value);
    uint64_t v = 0;
    EXPECT_TRUE(dec.GetU64(&v).ok());
    return v;
  }
  SimClock clock_;
  ContractRuntime runtime_;
};

TEST_F(IncentiveTest, DepositAndReward) {
  ASSERT_TRUE(runtime_
                  .Invoke("incentive", "deposit",
                          IncentiveContract::DepositArgs("sponsor", 100),
                          "sponsor")
                  .ok());
  EXPECT_EQ(Balance("sponsor"), 100u);
  ASSERT_TRUE(runtime_
                  .Invoke("incentive", "reward",
                          IncentiveContract::RewardArgs("worker", 30),
                          "sponsor")
                  .ok());
  EXPECT_EQ(Balance("sponsor"), 70u);
  EXPECT_EQ(Balance("worker"), 30u);
}

TEST_F(IncentiveTest, RewardRequiresEscrow) {
  auto r = runtime_.Invoke("incentive", "reward",
                           IncentiveContract::RewardArgs("worker", 5),
                           "broke-sponsor");
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

TEST_F(IncentiveTest, ProofRewardOncePerProof) {
  ASSERT_TRUE(runtime_
                  .Invoke("incentive", "deposit",
                          IncentiveContract::DepositArgs("verifier", 100),
                          "verifier")
                  .ok());
  ASSERT_TRUE(
      runtime_
          .Invoke("incentive", "record_proof",
                  IncentiveContract::RecordProofArgs("farmer", "zkrp-1"),
                  "verifier")
          .ok());
  EXPECT_EQ(Balance("farmer"), 10u);
  // Replaying the same proof id does not double-pay.
  EXPECT_TRUE(
      runtime_
          .Invoke("incentive", "record_proof",
                  IncentiveContract::RecordProofArgs("farmer", "zkrp-1"),
                  "verifier")
          .status()
          .IsAlreadyExists());
  EXPECT_EQ(Balance("farmer"), 10u);
}

}  // namespace
}  // namespace contracts
}  // namespace provledger
