// Schnorr signature tests: correctness, tamper resistance, determinism,
// encoding, and the m-of-n committee (notary) threshold verifier.

#include <gtest/gtest.h>

#include "crypto/schnorr.h"

namespace provledger {
namespace crypto {
namespace {

TEST(SchnorrTest, SignVerifyRoundTrip) {
  PrivateKey key = PrivateKey::FromSeed(std::string("alice"));
  Bytes msg = ToBytes("anchor provenance record #1");
  Signature sig = key.Sign(msg);
  EXPECT_TRUE(Verify(key.public_key(), msg, sig));
}

TEST(SchnorrTest, TamperedMessageFails) {
  PrivateKey key = PrivateKey::FromSeed(std::string("alice"));
  Signature sig = key.Sign(std::string("original"));
  EXPECT_FALSE(Verify(key.public_key(), std::string("0riginal"), sig));
}

TEST(SchnorrTest, WrongKeyFails) {
  PrivateKey alice = PrivateKey::FromSeed(std::string("alice"));
  PrivateKey bob = PrivateKey::FromSeed(std::string("bob"));
  Bytes msg = ToBytes("message");
  Signature sig = alice.Sign(msg);
  EXPECT_FALSE(Verify(bob.public_key(), msg, sig));
}

TEST(SchnorrTest, TamperedSignatureScalarFails) {
  PrivateKey key = PrivateKey::FromSeed(std::string("alice"));
  Bytes msg = ToBytes("message");
  Signature sig = key.Sign(msg);
  sig.s = AddMod(sig.s, U256::One(), OrderN());
  EXPECT_FALSE(Verify(key.public_key(), msg, sig));
}

TEST(SchnorrTest, TamperedCommitmentFails) {
  PrivateKey key = PrivateKey::FromSeed(std::string("alice"));
  Bytes msg = ToBytes("message");
  Signature sig = key.Sign(msg);
  // Replace R with another valid point.
  sig.r = EcBaseMul(U256::FromU64(12345)).ToAffine();
  EXPECT_FALSE(Verify(key.public_key(), msg, sig));
}

TEST(SchnorrTest, DeterministicSignatures) {
  PrivateKey key = PrivateKey::FromSeed(std::string("alice"));
  Bytes msg = ToBytes("same message");
  Signature s1 = key.Sign(msg);
  Signature s2 = key.Sign(msg);
  EXPECT_EQ(s1.Encode(), s2.Encode());
  // Different messages get different nonces/signatures.
  Signature s3 = key.Sign(ToBytes("other message"));
  EXPECT_NE(s1.Encode(), s3.Encode());
}

TEST(SchnorrTest, SignatureEncodingRoundTrip) {
  PrivateKey key = PrivateKey::FromSeed(std::string("carol"));
  Bytes msg = ToBytes("encode me");
  Signature sig = key.Sign(msg);
  Bytes enc = sig.Encode();
  ASSERT_EQ(enc.size(), 65u);
  auto decoded = Signature::Decode(enc);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(Verify(key.public_key(), msg, decoded.value()));
  EXPECT_FALSE(Signature::Decode(Bytes(64, 0)).ok());
}

TEST(SchnorrTest, PublicKeyEncodingRoundTrip) {
  PrivateKey key = PrivateKey::FromSeed(std::string("dave"));
  Bytes enc = key.public_key().Encode();
  auto decoded = PublicKey::Decode(enc);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), key.public_key());
  EXPECT_EQ(key.public_key().ToId().size(), 66u);  // 33 bytes hex
}

TEST(SchnorrTest, SeedsAreIndependent) {
  PrivateKey a = PrivateKey::FromSeed(std::string("node-1"));
  PrivateKey b = PrivateKey::FromSeed(std::string("node-2"));
  EXPECT_FALSE(a.public_key() == b.public_key());
  // Same seed -> same key (deterministic identities for tests/sims).
  PrivateKey a2 = PrivateKey::FromSeed(std::string("node-1"));
  EXPECT_TRUE(a.public_key() == a2.public_key());
}

class ThresholdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 5; ++i) {
      keys_.push_back(
          PrivateKey::FromSeed(std::string("notary-") + std::to_string(i)));
      committee_.push_back(keys_.back().public_key());
    }
    message_ = ToBytes("cross-chain transfer #77");
  }

  MultiSignature SignWith(std::initializer_list<int> signers) {
    MultiSignature ms;
    for (int i : signers) {
      ms.parts.emplace_back(keys_[i].public_key(), keys_[i].Sign(message_));
    }
    return ms;
  }

  std::vector<PrivateKey> keys_;
  std::vector<PublicKey> committee_;
  Bytes message_;
};

TEST_F(ThresholdTest, ExactThresholdPasses) {
  EXPECT_TRUE(VerifyThreshold(committee_, 3, message_, SignWith({0, 2, 4})));
}

TEST_F(ThresholdTest, BelowThresholdFails) {
  EXPECT_FALSE(VerifyThreshold(committee_, 3, message_, SignWith({0, 2})));
}

TEST_F(ThresholdTest, DuplicateSignaturesCountOnce) {
  MultiSignature ms = SignWith({0, 0, 0});
  EXPECT_FALSE(VerifyThreshold(committee_, 2, message_, ms));
}

TEST_F(ThresholdTest, NonMembersDoNotCount) {
  PrivateKey outsider = PrivateKey::FromSeed(std::string("outsider"));
  MultiSignature ms = SignWith({0});
  ms.parts.emplace_back(outsider.public_key(), outsider.Sign(message_));
  EXPECT_FALSE(VerifyThreshold(committee_, 2, message_, ms));
}

TEST_F(ThresholdTest, InvalidSignatureDoesNotCount) {
  MultiSignature ms = SignWith({0, 1});
  ms.parts[1].second.s = AddMod(ms.parts[1].second.s, U256::One(), OrderN());
  EXPECT_FALSE(VerifyThreshold(committee_, 2, message_, ms));
  EXPECT_TRUE(VerifyThreshold(committee_, 1, message_, ms));
}

}  // namespace
}  // namespace crypto
}  // namespace provledger
