// Forensics tests: five-stage case flow with stage-scoped permissions,
// chain of custody, evidence duplication, Merkle-forest case integrity,
// tamper detection.

#include <gtest/gtest.h>

#include "domains/forensics/case_manager.h"

namespace provledger {
namespace forensics {
namespace {

class CaseTest : public ::testing::Test {
 protected:
  CaseTest()
      : clock_(0), store_(&chain_, &clock_), cm_(&store_, &content_, &clock_) {
    EXPECT_TRUE(cm_.OpenCase("case-1", "lead-anna", "2026-06-01").ok());
  }

  // Drive the case to the collection stage and gather one evidence item.
  void CollectOne(const std::string& evidence_id = "ev-1") {
    ASSERT_TRUE(cm_.AdvanceStage("case-1", "lead-anna").ok());  // preservation
    ASSERT_TRUE(cm_.AdvanceStage("case-1", "lead-anna").ok());  // collection
    ASSERT_TRUE(cm_.CollectEvidence("case-1", evidence_id, "img",
                                    ToBytes("disk image bytes"), "inv-bob")
                    .ok());
  }

  ledger::Blockchain chain_;
  SimClock clock_;
  prov::ProvenanceStore store_;
  storage::ContentStore content_;
  CaseManager cm_;
};

TEST_F(CaseTest, FiveStagesInOrder) {
  EXPECT_EQ(ForensicStages().size(), 5u);
  auto stage = cm_.CurrentStage("case-1");
  ASSERT_TRUE(stage.ok());
  EXPECT_EQ(stage.value(), "identification");
  for (size_t i = 0; i + 1 < ForensicStages().size(); ++i) {
    ASSERT_TRUE(cm_.AdvanceStage("case-1", "lead-anna").ok());
  }
  stage = cm_.CurrentStage("case-1");
  ASSERT_TRUE(stage.ok());
  EXPECT_EQ(stage.value(), "reporting");
}

TEST_F(CaseTest, StageScopedPermissions) {
  // Identification stage: identify allowed, collect not.
  ASSERT_TRUE(cm_.IdentifySource("case-1", "suspect-laptop", "inv-bob").ok());
  EXPECT_TRUE(cm_.CollectEvidence("case-1", "ev-1", "img", ToBytes("x"),
                                  "inv-bob")
                  .IsPermissionDenied());
  CollectOne();
  // Collection stage: identify no longer allowed.
  EXPECT_TRUE(
      cm_.IdentifySource("case-1", "another", "inv-bob").IsPermissionDenied());
  // Analysis actions require the analysis stage.
  EXPECT_TRUE(cm_.AnalyzeEvidence("case-1", "ev-1", "found logs", "analyst-z")
                  .IsPermissionDenied());
  ASSERT_TRUE(cm_.AdvanceStage("case-1", "lead-anna").ok());  // analysis
  EXPECT_TRUE(
      cm_.AnalyzeEvidence("case-1", "ev-1", "found logs", "analyst-z").ok());
}

TEST_F(CaseTest, FullCaseLifecycle) {
  ASSERT_TRUE(cm_.IdentifySource("case-1", "laptop", "inv-bob").ok());
  CollectOne();
  ASSERT_TRUE(cm_.AdvanceStage("case-1", "lead-anna").ok());  // analysis
  auto dup = cm_.DuplicateEvidence("case-1", "ev-1", "analyst-z");
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup.value(), "ev-1-dup");
  ASSERT_TRUE(
      cm_.AnalyzeEvidence("case-1", "ev-1", "deleted-files", "analyst-z").ok());
  ASSERT_TRUE(cm_.AdvanceStage("case-1", "lead-anna").ok());  // reporting
  ASSERT_TRUE(cm_.FileReport("case-1", "summary of findings", "lead-anna",
                             "2026-06-11")
                  .ok());
  auto c = cm_.GetCase("case-1");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->closure_date, "2026-06-11");
  EXPECT_TRUE(chain_.VerifyIntegrity().ok());
}

TEST_F(CaseTest, ChainOfCustody) {
  CollectOne();
  auto ev = cm_.GetEvidence("case-1", "ev-1");
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev->custodian, "inv-bob");

  // Only the current custodian can transfer.
  EXPECT_TRUE(cm_.TransferCustody("case-1", "ev-1", "mallory", "eve")
                  .IsPermissionDenied());
  ASSERT_TRUE(
      cm_.TransferCustody("case-1", "ev-1", "inv-bob", "analyst-z").ok());
  ev = cm_.GetEvidence("case-1", "ev-1");
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev->custodian, "analyst-z");
  EXPECT_EQ(ev->custody_chain,
            (std::vector<std::string>{"inv-bob", "analyst-z"}));

  // The custody history is on-ledger.
  auto history = cm_.EvidenceHistory("case-1", "ev-1");
  ASSERT_EQ(history.size(), 2u);  // collect + transfer
  EXPECT_EQ(history[1].operation, "transfer-custody");
}

TEST_F(CaseTest, CaseIntegrityViaMerkleForest) {
  CollectOne("ev-1");
  ASSERT_TRUE(cm_.CollectEvidence("case-1", "ev-2", "txt",
                                  ToBytes("chat log"), "inv-bob")
                  .ok());
  EXPECT_TRUE(cm_.VerifyEvidence("case-1", "ev-1").ok());
  EXPECT_TRUE(cm_.VerifyEvidence("case-1", "ev-2").ok());
  auto root = cm_.CaseRoot("case-1");
  ASSERT_TRUE(root.ok());
  EXPECT_NE(root.value(), crypto::ZeroDigest());
}

TEST_F(CaseTest, ContentTamperingDetected) {
  CollectOne();
  auto ev = cm_.GetEvidence("case-1", "ev-1");
  ASSERT_TRUE(ev.ok());
  ASSERT_TRUE(content_.CorruptForTesting(ev->content_hash));
  EXPECT_TRUE(cm_.VerifyEvidence("case-1", "ev-1").IsCorruption());
  // Duplication must also refuse a corrupted original.
  ASSERT_TRUE(cm_.AdvanceStage("case-1", "lead-anna").ok());  // analysis
  EXPECT_TRUE(
      cm_.DuplicateEvidence("case-1", "ev-1", "analyst-z").status()
          .IsCorruption());
}

TEST_F(CaseTest, CasesAreIsolatedPartitions) {
  CollectOne();
  ASSERT_TRUE(cm_.OpenCase("case-2", "lead-carl", "2026-06-02").ok());
  ASSERT_TRUE(cm_.AdvanceStage("case-2", "lead-carl").ok());
  ASSERT_TRUE(cm_.AdvanceStage("case-2", "lead-carl").ok());
  ASSERT_TRUE(cm_.CollectEvidence("case-2", "ev-1", "img",
                                  ToBytes("other image"), "inv-dan")
                  .ok());
  // Same evidence id, different cases: distinct items and partitions.
  auto r1 = cm_.CaseRoot("case-1");
  auto r2 = cm_.CaseRoot("case-2");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_NE(r1.value(), r2.value());
  EXPECT_TRUE(cm_.VerifyEvidence("case-2", "ev-1").ok());
}

TEST_F(CaseTest, RecordsCarryStageField) {
  CollectOne();
  auto history = cm_.EvidenceHistory("case-1", "ev-1");
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].fields.at(prov::fields::kInvestigationStage),
            "collection");
  EXPECT_EQ(history[0].fields.at(prov::fields::kCaseNumber), "case-1");
  EXPECT_TRUE(history[0].Validate().ok());
}

TEST_F(CaseTest, Guards) {
  EXPECT_TRUE(cm_.OpenCase("case-1", "x", "d").IsAlreadyExists());
  EXPECT_TRUE(cm_.GetCase("ghost").status().IsNotFound());
  EXPECT_TRUE(cm_.GetEvidence("case-1", "ghost").status().IsNotFound());
  EXPECT_TRUE(cm_.VerifyEvidence("case-1", "ghost").IsNotFound());
  EXPECT_TRUE(cm_.AdvanceStage("case-1", "intruder").IsPermissionDenied());
  EXPECT_TRUE(cm_.CaseRoot("ghost").status().IsNotFound());
}

}  // namespace
}  // namespace forensics
}  // namespace provledger
