// Continuous-audit and lineage-proof tests (ctest label: audit):
// adversarial proof decoding (truncation, trailing garbage, swapped
// sibling steps, wrong roots, smuggled unrelated ancestors, every
// single-byte mutation), proof round-trips across all seven record
// domains, tamper localization (live block, chain-log frame, kv segment
// — each injected via tests/tamper.h and pinned to the exact block/tx or
// segment/offset), and the auditor-vs-live-ingest convergence run that
// the TSan gate replays.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "audit/auditor.h"
#include "audit/lineage_proof.h"
#include "common/fileio.h"
#include "obs/metrics.h"
#include "ledger/chain_log.h"
#include "prov/ingest_pipeline.h"
#include "prov/store.h"
#include "storage/file_kv_store.h"
#include "tamper.h"
#include "temp_dir.h"

namespace provledger {
namespace {

using audit::AuditFinding;
using audit::AuditReport;
using audit::AuditSource;
using audit::ContinuousAuditor;
using audit::ContinuousAuditorOptions;
using audit::LineageProof;
using audit::LineageSummary;

prov::ProvenanceRecord Rec(const std::string& id, const std::string& subject,
                           const std::string& agent, Timestamp ts,
                           std::vector<std::string> inputs = {},
                           std::vector<std::string> outputs = {},
                           prov::Domain domain = prov::Domain::kGeneric) {
  prov::ProvenanceRecord rec;
  rec.record_id = id;
  rec.domain = domain;
  rec.operation = "execute";
  rec.subject = subject;
  rec.agent = agent;
  rec.timestamp = ts;
  rec.inputs = std::move(inputs);
  rec.outputs = std::move(outputs);
  return rec;
}

/// A header-hash oracle over a chain — what a full node passes.
audit::HeaderHashAt OracleFor(const ledger::Blockchain& chain) {
  return [&chain](uint64_t h) { return chain.BlockHashAt(h); };
}

/// A seven-domain ancestry chain r0 -> r1 -> ... -> r6 (one record per
/// domain, each consuming the previous record's output entity), plus one
/// anchored record x0 unrelated to any of them. Each record lands in its
/// own block except r3+r4, which share one (header dedup coverage).
class LineageFixture : public ::testing::Test {
 protected:
  LineageFixture() : clock_(1'000'000), store_(&chain_, &clock_) {
    auto link = [](prov::ProvenanceRecord rec, int i) {
      if (i > 0) rec.inputs = {"e" + std::to_string(i - 1)};
      rec.outputs = {"e" + std::to_string(i)};
      return rec;
    };
    EXPECT_TRUE(store_
                    .Anchor(link(Rec("r0", "s0", "alice", 100, {"raw"}, {}),
                                 0))
                    .ok());
    EXPECT_TRUE(store_
                    .Anchor(link(Rec("r1", "vm1", "bob", 110, {}, {},
                                     prov::Domain::kCloud),
                                 1))
                    .ok());
    EXPECT_TRUE(
        store_
            .Anchor(link(prov::MakeSupplyChainRecord(
                             "r2", "transfer", "p-9", "carol", 120, "b-1",
                             "2027-01", "plant>dc", "widget", "mfg-7", "qr"),
                         2))
            .ok());
    EXPECT_TRUE(
        store_
            .AnchorBatch(
                {link(prov::MakeForensicsRecord("r3", "examine", "ev-1",
                                                "dana", 130, "case-5",
                                                "analysis", "2026-01",
                                                "", "img", "ro", "none"),
                      3),
                 link(prov::MakeScientificRecord("r4", "execute", "t-1",
                                                 "erin", 140, "wf-2", "3s",
                                                 "u-9", "d1", "d2", ""),
                      4)})
            .ok());
    EXPECT_TRUE(store_
                    .Anchor(link(Rec("r5", "patient-3", "frank", 150, {}, {},
                                     prov::Domain::kHealthcare),
                                 5))
                    .ok());
    // r6 shares its block with unrelated fillers so its Merkle proof has
    // multiple sibling steps (the swapped-steps test needs depth).
    EXPECT_TRUE(store_
                    .AnchorBatch({link(Rec("r6", "model-1", "grace", 160, {},
                                           {}, prov::Domain::kMachineLearning),
                                       6),
                                  Rec("f0", "noise", "grace", 161),
                                  Rec("f1", "noise", "grace", 162),
                                  Rec("f2", "noise", "grace", 163)})
                    .ok());
    EXPECT_TRUE(
        store_.Anchor(Rec("x0", "bystander", "mallory", 170, {}, {"z0"}))
            .ok());
  }

  SimClock clock_;
  ledger::Blockchain chain_;
  prov::ProvenanceStore store_;
};

TEST_F(LineageFixture, ProofCoversAllSevenDomainsAndRoundTrips) {
  auto proof = audit::BuildLineageProof(store_, "r6");
  ASSERT_TRUE(proof.ok());
  EXPECT_EQ(proof->nodes.size(), 7u);   // r0..r6, not x0
  EXPECT_EQ(proof->headers.size(), 6u); // r3+r4 share one block

  // Canonical wire round trip: decode(encode(p)) re-encodes bit-identical.
  Bytes wire = proof->Encode();
  auto decoded = LineageProof::Decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->Encode(), wire);

  LineageSummary summary;
  ASSERT_TRUE(
      audit::VerifyLineageProof(*decoded, "r6", OracleFor(chain_), &summary)
          .ok());
  ASSERT_EQ(summary.record_ids.size(), 7u);
  EXPECT_EQ(summary.record_ids[0], "r6");
  // The one input no proven ancestor produces is the DAG's source.
  ASSERT_EQ(summary.frontier_inputs.size(), 1u);
  EXPECT_EQ(summary.frontier_inputs[0], "raw");
}

TEST_F(LineageFixture, ProofVerifiesFromHeadersAloneNoStoreNoGraph) {
  auto proof = audit::BuildLineageProof(store_, "r6");
  ASSERT_TRUE(proof.ok());
  Bytes wire = proof->Encode();

  // A storeless light client: nothing but the synced main-chain hashes.
  std::vector<crypto::Digest> hashes;
  for (uint64_t h = 0; h <= chain_.height(); ++h) {
    hashes.push_back(chain_.BlockHashAt(h).value());
  }
  audit::HeaderHashAt oracle =
      [hashes](uint64_t h) -> Result<crypto::Digest> {
    if (h >= hashes.size()) return Status::NotFound("past head");
    return hashes[h];
  };
  auto decoded = LineageProof::Decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(audit::VerifyLineageProof(*decoded, "r6", oracle).ok());
  // The same bytes must not verify as a proof of a different record.
  EXPECT_TRUE(audit::VerifyLineageProof(*decoded, "r5", oracle)
                  .IsCorruption());
}

TEST_F(LineageFixture, ProofFailsOnEverySingleByteMutation) {
  auto proof = audit::BuildLineageProof(store_, "r6");
  ASSERT_TRUE(proof.ok());
  const Bytes wire = proof->Encode();
  const audit::HeaderHashAt oracle = OracleFor(chain_);
  for (size_t i = 0; i < wire.size(); ++i) {
    Bytes mutated = wire;
    mutated[i] ^= 0x01;
    auto decoded = LineageProof::Decode(mutated);
    if (!decoded.ok()) continue;  // rejected at the structural layer
    EXPECT_FALSE(audit::VerifyLineageProof(*decoded, "r6", oracle).ok())
        << "byte " << i << " flipped yet the proof still verified";
  }
}

TEST_F(LineageFixture, TruncatedAndTrailingGarbageRejected) {
  auto proof = audit::BuildLineageProof(store_, "r6");
  ASSERT_TRUE(proof.ok());
  const Bytes wire = proof->Encode();
  for (size_t len = 0; len < wire.size(); ++len) {
    Bytes prefix(wire.begin(), wire.begin() + len);
    EXPECT_FALSE(LineageProof::Decode(prefix).ok())
        << "truncated proof of " << len << " bytes decoded";
  }
  Bytes trailing = wire;
  trailing.push_back(0x00);
  EXPECT_FALSE(LineageProof::Decode(trailing).ok());
}

TEST_F(LineageFixture, SwappedSiblingStepsRejected) {
  auto proof = audit::BuildLineageProof(store_, "r6");
  ASSERT_TRUE(proof.ok());
  bool swapped_one = false;
  for (auto& node : proof->nodes) {
    if (node.merkle_proof.steps.size() >= 2) {
      std::swap(node.merkle_proof.steps[0], node.merkle_proof.steps[1]);
      swapped_one = true;
      break;
    }
  }
  ASSERT_TRUE(swapped_one) << "fixture produced no multi-step proof";
  EXPECT_TRUE(audit::VerifyLineageProof(*proof, "r6", OracleFor(chain_))
                  .IsCorruption());
}

TEST_F(LineageFixture, WrongRootAndForeignChainRejected) {
  auto proof = audit::BuildLineageProof(store_, "r6");
  ASSERT_TRUE(proof.ok());
  // Verifier on a different (genesis-only) chain: no header anchors.
  ledger::Blockchain other;
  EXPECT_TRUE(audit::VerifyLineageProof(*proof, "r6", OracleFor(other))
                  .IsCorruption());
  // A header whose merkle_root is rewritten no longer hashes to the
  // main-chain hash at its height — root swaps cannot hide.
  LineageProof tampered = *proof;
  tampered.headers[0].merkle_root = crypto::Sha256::Hash(Bytes{1, 2, 3});
  EXPECT_TRUE(audit::VerifyLineageProof(tampered, "r6", OracleFor(chain_))
                  .IsCorruption());
}

TEST_F(LineageFixture, SmuggledValidButUnrelatedAncestorRejected) {
  auto proof = audit::BuildLineageProof(store_, "r6");
  ASSERT_TRUE(proof.ok());
  auto alien = audit::BuildLineageProof(store_, "x0");
  ASSERT_TRUE(alien.ok());
  ASSERT_EQ(alien->nodes.size(), 1u);
  // x0 is genuinely anchored and its inclusion proof is genuine — but it
  // produces nothing r6's DAG consumes, so closure must reject it.
  LineageProof stuffed = *proof;
  ASSERT_GT(alien->headers[0].height, stuffed.headers.back().height);
  stuffed.headers.push_back(alien->headers[0]);
  audit::LineageProofNode node = alien->nodes[0];
  node.header_index = static_cast<uint32_t>(stuffed.headers.size() - 1);
  stuffed.nodes.push_back(std::move(node));
  Status st = audit::VerifyLineageProof(stuffed, "r6", OracleFor(chain_));
  ASSERT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("not an ancestor"), std::string::npos)
      << st.message();
}

TEST_F(LineageFixture, ServedOverReplicationWire) {
  // BuildLineageProof is what repl/proof invokes server-side; this pins
  // the request/verify contract end to end without a cluster: bytes out
  // of Encode() are exactly what repl/proofr carries.
  auto proof = audit::BuildLineageProof(store_, "r4");
  ASSERT_TRUE(proof.ok());
  auto parsed = LineageProof::Decode(proof->Encode());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(
      audit::VerifyLineageProof(*parsed, "r4", OracleFor(chain_)).ok());
  // Proofs for unknown records must fail to build, not fabricate.
  EXPECT_FALSE(audit::BuildLineageProof(store_, "no-such-record").ok());
}

// ---------------------------------------------------------------------------
// ContinuousAuditor: localization + incremental cursor.
// ---------------------------------------------------------------------------

class AuditorFixture : public ::testing::Test {
 protected:
  AuditorFixture() : clock_(1'000'000), store_(&chain_, &clock_) {}

  void Ingest(int blocks, int txs_per_block) {
    for (int b = 0; b < blocks; ++b) {
      std::vector<prov::ProvenanceRecord> batch;
      for (int j = 0; j < txs_per_block; ++j) {
        const int i = b * txs_per_block + j;
        batch.push_back(Rec("r" + std::to_string(i),
                            "s" + std::to_string(i % 5), "agent", 100 + i,
                            i > 0 ? std::vector<std::string>{
                                        "e" + std::to_string(i - 1)}
                                  : std::vector<std::string>{},
                            {"e" + std::to_string(i)}));
      }
      ASSERT_TRUE(store_.AnchorBatch(batch).ok());
    }
    ASSERT_TRUE(store_.PublishSnapshot().ok());
  }

  SimClock clock_;
  ledger::Blockchain chain_;
  prov::ProvenanceStore store_;
};

TEST_F(AuditorFixture, CleanChainAuditsCleanAndCursorAdvances) {
  Ingest(10, 3);
  ContinuousAuditorOptions options;
  options.max_blocks_per_pass = 4;
  ContinuousAuditor auditor(&chain_, &store_, options);
  size_t passes = 0;
  while (auditor.audited_height() < chain_.height()) {
    AuditReport report = auditor.RunPass();
    EXPECT_TRUE(report.clean()) << report.findings[0].ToString();
    ASSERT_LT(++passes, 100u);
  }
  EXPECT_EQ(auditor.audited_height(), chain_.height());
  EXPECT_EQ(auditor.blocks_audited(), chain_.height());
  EXPECT_EQ(auditor.records_audited(), 30u);
  // Caught up: further passes are empty, not re-audits.
  AuditReport idle = auditor.RunPass();
  EXPECT_EQ(idle.blocks_audited, 0u);
  EXPECT_GT(idle.from_height, idle.to_height);
}

TEST_F(AuditorFixture, LocalizesLiveTamperToExactBlockAndTx) {
  Ingest(10, 3);
  const uint64_t k = 4;   // tampered block height
  const size_t j = 2;     // tampered tx index within it
  ASSERT_TRUE(testutil::TamperChainTx(&chain_, k, j).ok());

  ContinuousAuditor auditor(&chain_, &store_, ContinuousAuditorOptions());
  AuditReport report = auditor.RunPass();
  ASSERT_FALSE(report.clean());
  // Every finding names block k and nothing but block k...
  for (const AuditFinding& finding : report.findings) {
    EXPECT_EQ(finding.height, k) << finding.ToString();
  }
  // ...the Merkle root over the block no longer matches...
  bool merkle = false, record = false;
  for (const AuditFinding& finding : report.findings) {
    if (finding.source == AuditSource::kMerkleRoot) merkle = true;
    // ...and the damaged payload pins the exact transaction, via the
    // codec check or the snapshot round-trip.
    if ((finding.source == AuditSource::kRecordCodec ||
         finding.source == AuditSource::kStoreIndex) &&
        finding.tx_index == static_cast<int32_t>(j)) {
      record = true;
    }
  }
  EXPECT_TRUE(merkle);
  EXPECT_TRUE(record);
  EXPECT_EQ(auditor.findings_total(), report.findings.size());
  EXPECT_EQ(auditor.TakeFindings().size(), report.findings.size());
  EXPECT_TRUE(auditor.TakeFindings().empty());  // drained
}

// Regression: watching the auditor's lag must be a pure read. The first
// monitoring hook drained state a dashboard poll must never touch —
// lag_blocks() now reads only the published chain view and the atomic
// cursor, so polling it drains no findings and takes no lock.
TEST_F(AuditorFixture, LagObservableWithoutDrainingFindings) {
  Ingest(10, 3);
  ASSERT_TRUE(testutil::TamperChainTx(&chain_, 2, 1).ok());

  obs::Registry registry;
  ContinuousAuditorOptions options;
  options.max_blocks_per_pass = 4;
  options.registry = &registry;
  ContinuousAuditor auditor(&chain_, &store_, options);

  // Nothing audited yet: the whole chain is lag.
  EXPECT_EQ(auditor.lag_blocks(), chain_.height());

  AuditReport first = auditor.RunPass();
  ASSERT_FALSE(first.clean());
  const uint64_t expected_lag = chain_.height() - 4;
  // Poll the lag repeatedly — a monitoring loop, not a consumer.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(auditor.lag_blocks(), expected_lag);
  }
  // The registry gauge and findings counter mirror the pass.
  EXPECT_EQ(registry.GetGauge("audit_lag_blocks", "")->value(),
            static_cast<int64_t>(expected_lag));
  EXPECT_EQ(registry.GetCounter("audit_findings_total", "")->value(),
            first.findings.size());
  // Every finding is still there for the real consumer to take.
  EXPECT_EQ(auditor.TakeFindings().size(), first.findings.size());

  size_t passes = 0;
  while (auditor.lag_blocks() > 0) {
    (void)auditor.RunPass();  // only the lag converging to 0 matters here
    ASSERT_LT(++passes, 100u);
  }
  EXPECT_EQ(auditor.lag_blocks(), 0u);
  EXPECT_EQ(registry.GetGauge("audit_lag_blocks", "")->value(), 0);

  // New blocks re-open the gap without any auditor involvement.
  std::vector<prov::ProvenanceRecord> extra;
  extra.push_back(Rec("lag-x0", "s0", "agent", 900));
  extra.push_back(Rec("lag-x1", "s1", "agent", 901));
  ASSERT_TRUE(store_.AnchorBatch(extra).ok());
  EXPECT_EQ(auditor.lag_blocks(), 1u);
}

TEST_F(AuditorFixture, RewindReauditsAndChainOnlyModeWorks) {
  Ingest(6, 2);
  ContinuousAuditor chain_only(&chain_, nullptr,
                               ContinuousAuditorOptions());
  AuditReport first = chain_only.RunPass();
  EXPECT_TRUE(first.clean());
  EXPECT_EQ(first.blocks_audited, chain_.height());
  EXPECT_EQ(first.records_checked, 0u);  // no store attached
  chain_only.Rewind();
  EXPECT_EQ(chain_only.audited_height(), 0u);
  AuditReport again = chain_only.RunPass();
  EXPECT_EQ(again.blocks_audited, chain_.height());
}

TEST_F(AuditorFixture, OfflineChainLogTamperLocalizedToFrame) {
  const std::string dir = testutil::MakeTempDir();
  const std::string path = dir + "/chain.log";
  {
    ledger::Blockchain durable;
    auto log = ledger::ChainLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->AttachTo(&durable).ok());
    prov::ProvenanceStore store(&durable, &clock_);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(
          store.Anchor(Rec("d" + std::to_string(i), "s", "a", 100 + i)).ok());
    }
  }
  // Clean file first: every frame valid, heights contiguous.
  AuditReport clean = ContinuousAuditor::AuditChainLogFile(path);
  EXPECT_TRUE(clean.clean());
  EXPECT_EQ(clean.blocks_audited, 8u);
  EXPECT_EQ(clean.from_height, 1u);
  EXPECT_EQ(clean.to_height, 8u);

  // Tamper frame 3 (block height 4): the finding carries that frame's
  // exact byte offset and segment.
  auto offset = testutil::CorruptFrame(path, 3, /*payload_offset=*/12);
  ASSERT_TRUE(offset.ok());
  AuditReport report = ContinuousAuditor::AuditChainLogFile(path);
  ASSERT_FALSE(report.clean());
  bool crc_at_frame = false;
  for (const AuditFinding& finding : report.findings) {
    if (finding.source == AuditSource::kChainLog &&
        finding.offset == offset.value() && finding.segment == path &&
        finding.detail.find("frame 3") != std::string::npos) {
      crc_at_frame = true;
    }
    // Localization never smears onto other frames' offsets.
    if (finding.source == AuditSource::kChainLog) {
      EXPECT_EQ(finding.offset, offset.value()) << finding.ToString();
    }
  }
  EXPECT_TRUE(crc_at_frame);

  // A torn tail (crash artifact) is reported as torn, not corrupt.
  auto data = ReadFileToBytes(path);
  ASSERT_TRUE(data.ok());
  Bytes torn(data->begin(), data->end() - 5);
  ASSERT_TRUE(WriteFileAtomic(path, torn).ok());
  AuditReport torn_report = ContinuousAuditor::AuditChainLogFile(path);
  bool torn_found = false;
  for (const AuditFinding& finding : torn_report.findings) {
    if (finding.source == AuditSource::kChainLog &&
        finding.detail.find("torn") != std::string::npos) {
      torn_found = true;
    }
  }
  EXPECT_TRUE(torn_found);
  testutil::RemoveTree(dir);
}

TEST_F(AuditorFixture, OfflineKvSegmentTamperLocalized) {
  const std::string dir = testutil::MakeTempDir();
  {
    auto kv = storage::FileKvStore::Open(dir);
    ASSERT_TRUE(kv.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          (*kv)->Put("k" + std::to_string(i), Bytes{0x10, uint8_t(i)}).ok());
    }
  }
  EXPECT_TRUE(ContinuousAuditor::AuditKvSegmentDir(dir).clean());
  auto segment = testutil::CorruptKvSegment(dir, /*payload_offset=*/3);
  ASSERT_TRUE(segment.ok());
  AuditReport report = ContinuousAuditor::AuditKvSegmentDir(dir);
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.findings[0].source, AuditSource::kKvSegment);
  EXPECT_EQ(report.findings[0].segment, segment.value());
  EXPECT_NE(report.findings[0].detail.find("crc mismatch"),
            std::string::npos);
  testutil::RemoveTree(dir);
}

// The TSan-gated run: a background auditor against a live pipeline must
// report nothing and converge to the head epoch once ingest stops.
TEST(AuditConcurrencyTest, AuditorNeverFalselyAccusesLiveIngest) {
  SystemClock clock;
  ledger::Blockchain chain;
  prov::ProvenanceStore store(&chain, &clock);

  ContinuousAuditorOptions audit_options;
  audit_options.max_blocks_per_pass = 8;
  audit_options.parallelism = 2;
  audit_options.pass_interval_us = 200;
  ContinuousAuditor auditor(&chain, &store, audit_options);
  auditor.Start();

  {
    prov::IngestPipelineOptions options;
    options.shards = 2;
    options.batch_size = 16;
    options.snapshot_every_batches = 2;
    options.publish_on_flush = true;
    prov::IngestPipeline pipeline(&store, options);
    constexpr int kProducers = 2;
    constexpr int kPerProducer = 300;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&pipeline, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          const int n = p * kPerProducer + i;
          prov::ProvenanceRecord rec;
          rec.record_id = "c" + std::to_string(n);
          rec.operation = "execute";
          rec.subject = "s" + std::to_string(n % 7);
          rec.agent = "producer" + std::to_string(p);
          rec.timestamp = 1'000 + n;
          rec.outputs = {"e" + std::to_string(n)};
          EXPECT_TRUE(pipeline.Submit(std::move(rec)).ok());
        }
      });
    }
    for (auto& t : producers) t.join();
    ASSERT_TRUE(pipeline.Close().ok());
    ASSERT_EQ(pipeline.committed(), uint64_t{kProducers * kPerProducer});
  }

  auditor.Stop();
  // Drain to the head: the final flush published an epoch at the head
  // height, so the cursor can reach it in bounded passes.
  size_t passes = 0;
  while (auditor.audited_height() < chain.height()) {
    (void)auditor.RunPass();  // findings checked in aggregate below
    ASSERT_LT(++passes, 1000u);
  }
  EXPECT_EQ(auditor.audited_height(), chain.height());
  EXPECT_EQ(auditor.findings_total(), 0u)
      << auditor.TakeFindings()[0].ToString();
  EXPECT_EQ(auditor.blocks_audited(), chain.height());
}

}  // namespace
}  // namespace provledger
