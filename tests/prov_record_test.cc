// Provenance record tests: Table 1 schemas, canonical encoding, validation.

#include <gtest/gtest.h>

#include "prov/record.h"

namespace provledger {
namespace prov {
namespace {

TEST(RecordTest, EncodeDecodeRoundTrip) {
  ProvenanceRecord rec;
  rec.record_id = "rec-1";
  rec.domain = Domain::kCloud;
  rec.operation = "update";
  rec.subject = "file-7";
  rec.agent = "alice";
  rec.timestamp = 12345;
  rec.inputs = {"file-6"};
  rec.outputs = {"file-7"};
  rec.fields["note"] = "resize";
  rec.payload_hash = crypto::Sha256::Hash("content");

  auto decoded = ProvenanceRecord::Decode(rec.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->record_id, "rec-1");
  EXPECT_EQ(decoded->domain, Domain::kCloud);
  EXPECT_EQ(decoded->inputs, rec.inputs);
  EXPECT_EQ(decoded->fields.at("note"), "resize");
  EXPECT_EQ(decoded->payload_hash, rec.payload_hash);
  EXPECT_EQ(decoded->Hash(), rec.Hash());
}

TEST(RecordTest, EncodingIsCanonical) {
  // Field insertion order must not affect the encoding (std::map sorts).
  ProvenanceRecord a, b;
  a.record_id = b.record_id = "rec-x";
  a.operation = b.operation = "op";
  a.subject = b.subject = "s";
  a.agent = b.agent = "a";
  a.fields["k1"] = "v1";
  a.fields["k2"] = "v2";
  b.fields["k2"] = "v2";
  b.fields["k1"] = "v1";
  EXPECT_EQ(a.Encode(), b.Encode());
}

TEST(RecordTest, ValidateRejectsEmptyCore) {
  ProvenanceRecord rec;
  rec.operation = "op";
  rec.subject = "s";
  rec.agent = "a";
  EXPECT_FALSE(rec.Validate().ok());  // missing record_id
  rec.record_id = "r";
  EXPECT_TRUE(rec.Validate().ok());
  rec.agent.clear();
  EXPECT_FALSE(rec.Validate().ok());
}

TEST(RecordTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(ProvenanceRecord::Decode(Bytes{1, 2, 3}).ok());
  // Trailing bytes rejected.
  ProvenanceRecord rec;
  rec.record_id = "r";
  rec.operation = "o";
  rec.subject = "s";
  rec.agent = "a";
  Bytes enc = rec.Encode();
  enc.push_back(0x00);
  EXPECT_TRUE(ProvenanceRecord::Decode(enc).status().IsCorruption());
}

TEST(Table1Test, DomainNames) {
  EXPECT_STREQ(DomainName(Domain::kSupplyChain), "supply_chain");
  EXPECT_STREQ(DomainName(Domain::kForensics), "forensics");
  EXPECT_STREQ(DomainName(Domain::kScientific), "scientific");
}

TEST(Table1Test, SupplyChainSchemaHasSevenFields) {
  // Table 1, column 1: seven provenance record fields.
  EXPECT_EQ(RequiredFields(Domain::kSupplyChain).size(), 7u);
  ProvenanceRecord rec = MakeSupplyChainRecord(
      "rec-1", "register", "prod-42", "acme-pharma", 1000, "batch-9",
      "2026-01/2028-01", "factory->dc", "vaccine", "mfg-77", "qr://prod-42");
  EXPECT_TRUE(rec.Validate().ok());
  EXPECT_EQ(rec.fields.at(fields::kProductId), "prod-42");
  EXPECT_EQ(rec.fields.at(fields::kBatchNumber), "batch-9");
  // Dropping any required field fails validation.
  for (const auto& key : RequiredFields(Domain::kSupplyChain)) {
    ProvenanceRecord broken = rec;
    broken.fields.erase(key);
    EXPECT_FALSE(broken.Validate().ok()) << key;
  }
}

TEST(Table1Test, ForensicsSchemaHasSevenFields) {
  EXPECT_EQ(RequiredFields(Domain::kForensics).size(), 7u);
  ProvenanceRecord rec = MakeForensicsRecord(
      "rec-2", "collect", "evidence-3", "investigator-1", 2000, "case-2026-07",
      "collection", "2026-06-01", "", "img,txt", "read:5,write:1",
      "evidence-2");
  EXPECT_TRUE(rec.Validate().ok());
  EXPECT_EQ(rec.fields.at(fields::kCaseNumber), "case-2026-07");
  EXPECT_EQ(rec.fields.at(fields::kInvestigationStage), "collection");
}

TEST(Table1Test, ScientificSchemaHasSevenFields) {
  EXPECT_EQ(RequiredFields(Domain::kScientific).size(), 7u);
  ProvenanceRecord rec = MakeScientificRecord(
      "rec-3", "execute", "task-5", "lab-a", 3000, "wf-1", "452ms",
      "researcher-9", "dataset-1", "result-5", "");
  EXPECT_TRUE(rec.Validate().ok());
  EXPECT_EQ(rec.fields.at(fields::kWorkflowId), "wf-1");
}

TEST(Table1Test, GenericDomainHasNoRequiredFields) {
  EXPECT_TRUE(RequiredFields(Domain::kGeneric).empty());
  EXPECT_TRUE(RequiredFields(Domain::kCloud).empty());
}

}  // namespace
}  // namespace prov
}  // namespace provledger
