// Structure-aware fuzz harness bodies, one per untrusted-byte entry point.
//
// Each harness lives in fuzz/fuzz_<name>.cc and is built three ways from the
// same body:
//   * a libFuzzer target (<name>_libfuzzer) when PROVLEDGER_BUILD_FUZZERS is
//     on (clang only) — the coverage-guided long-form mode;
//   * a deterministic bounded-iteration executable (driver_main.cc) that runs
//     the seed corpus plus a common/rng mutation loop — the `fuzz` ctest
//     label, runnable everywhere including gcc-only CI;
//   * linked into tests/fuzz_regression_test.cc (PROVLEDGER_FUZZ_COMBINED
//     suppresses the per-file LLVMFuzzerTestOneInput shims) so every
//     checked-in corpus/crasher file replays byte-exactly through the same
//     code at every ctest run.
//
// Contract for a harness body: arbitrary bytes must never crash, trip a
// sanitizer, or drive an unbounded allocation — only return (decoders report
// Status::Corruption). Inputs that *do* decode must uphold the codec
// invariants (canonical re-encode, bit-identical round trips), which the
// bodies assert via PROVLEDGER_FUZZ_REQUIRE.

#ifndef PROVLEDGER_FUZZ_HARNESSES_H_
#define PROVLEDGER_FUZZ_HARNESSES_H_

#include <fcntl.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace provledger {
namespace fuzz {

/// Invariant check used by harness bodies: abort loudly (fuzzer finding)
/// instead of the silent pass a failed EXPECT would be outside gtest.
#define PROVLEDGER_FUZZ_REQUIRE(cond)                                       \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "fuzz invariant failed: %s at %s:%d\n", #cond,   \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Process-wide scratch directory for harnesses that exercise on-disk read
/// paths; created once (mkdtemp) and reused so per-input cost stays at one
/// file rewrite. Empty string if creation failed.
inline const std::string& ScratchDir() {
  static const std::string dir = [] {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                       "/provledger_fuzz_XXXXXX";
    char* made = ::mkdtemp(tmpl.data());
    return made == nullptr ? std::string() : std::string(made);
  }();
  return dir;
}

/// Truncating, non-synced write: fuzz scratch needs no durability, and the
/// fsyncs in WriteFileAtomic would dominate every iteration.
inline bool WriteScratchFile(const std::string& path, const uint8_t* data,
                             size_t size) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      ::close(fd);
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return ::close(fd) == 0;
}

// One body per harness; names match fuzz/fuzz_<name>.cc and the seed corpus
// directory fuzz/corpus/<name>/.
void FuzzColumnarBatch(const uint8_t* data, size_t size);
void FuzzColumnarBlock(const uint8_t* data, size_t size);
void FuzzRecord(const uint8_t* data, size_t size);
void FuzzCompress(const uint8_t* data, size_t size);
void FuzzFramedLog(const uint8_t* data, size_t size);
void FuzzKvSegment(const uint8_t* data, size_t size);
void FuzzChainLog(const uint8_t* data, size_t size);
void FuzzReplication(const uint8_t* data, size_t size);
void FuzzLineageProof(const uint8_t* data, size_t size);

}  // namespace fuzz
}  // namespace provledger

// Standalone builds (libFuzzer target or deterministic driver) get the
// entry-point shim from each fuzz_<name>.cc via this macro; the combined
// regression test defines PROVLEDGER_FUZZ_COMBINED to suppress them all.
#ifndef PROVLEDGER_FUZZ_COMBINED
#define PROVLEDGER_FUZZ_SHIM(body_fn)                                \
  extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data,         \
                                        size_t size) {               \
    ::provledger::fuzz::body_fn(data, size);                         \
    return 0;                                                        \
  }
#else
#define PROVLEDGER_FUZZ_SHIM(body_fn)
#endif

#endif  // PROVLEDGER_FUZZ_HARNESSES_H_
