// Harness: ReplicatedNode::OnMessage — the replication wire parsers
// (repl/block, repl/status, repl/pull, repl/blocks). Trust boundary: every
// payload here is what a network peer controls byte-for-byte; the node must
// parse, re-validate, and reject without crashing, whatever arrives.
//
// Input mapping: byte 0 selects the message type (mod 4), the rest is the
// payload. The node under test persists across inputs (accumulated chain
// state is exactly what a long-lived follower has) and is rebuilt
// periodically to keep iterations bounded.

#include "harnesses.h"

#include <memory>

#include "network/sim_network.h"
#include "replication/replicated_node.h"

namespace provledger {
namespace fuzz {

namespace {

constexpr const char* kTypes[] = {"repl/block", "repl/status", "repl/pull",
                                  "repl/blocks"};

struct NodeContext {
  SimClock clock;
  network::SimNetwork net;
  std::unique_ptr<replication::ReplicatedNode> node;
  network::NodeId node_id = 0;
  network::NodeId peer_id = 0;

  NodeContext() : net(&clock, /*seed=*/7) {
    replication::ReplicatedNodeOptions options;
    options.name = "fuzz-node";
    auto created = replication::ReplicatedNode::Create(&clock, options);
    PROVLEDGER_FUZZ_REQUIRE(created.ok());
    node = std::move(created).value();
    node_id = net.AddNode(
        [this](const network::Message& m) { node->OnMessage(m); });
    peer_id = net.AddNode([](const network::Message&) {});
    node->BindNetwork(&net, node_id);
  }
};

}  // namespace

void FuzzReplication(const uint8_t* data, size_t size) {
  static std::unique_ptr<NodeContext> ctx;
  static int inputs_on_ctx = 0;
  if (!ctx || ++inputs_on_ctx >= 256) {
    ctx = std::make_unique<NodeContext>();
    inputs_on_ctx = 0;
  }

  network::Message message;
  message.from = ctx->peer_id;
  message.to = ctx->node_id;
  message.type = kTypes[size == 0 ? 0 : data[0] % 4];
  if (size > 1) message.payload.assign(data + 1, data + size);
  ctx->node->OnMessage(message);
  // Drain whatever the node sent back (status replies, pulls) so the send
  // paths execute too; the peer swallows them.
  ctx->net.RunUntilIdle();
}

}  // namespace fuzz
}  // namespace provledger

PROVLEDGER_FUZZ_SHIM(FuzzReplication)
