// Harness: compress::LzDecompress — token stream, back-reference distances,
// and the declared-raw-size contract. Trust boundary: compressed batch
// payloads inside FileKvStore segments (disk bytes).
//
// Input mapping: first 4 bytes (little-endian, capped) are the declared raw
// size handed to LzDecompress; the rest is the token stream. The whole
// input also round-trips through LzCompress as plain data.

#include "harnesses.h"
#include "common/compress.h"

namespace provledger {
namespace fuzz {

void FuzzCompress(const uint8_t* data, size_t size) {
  if (size >= 4) {
    size_t raw_size = static_cast<size_t>(data[0]) |
                      static_cast<size_t>(data[1]) << 8 |
                      static_cast<size_t>(data[2]) << 16 |
                      static_cast<size_t>(data[3]) << 24;
    // No cap: LzDecompress itself must reject implausible sizes before
    // allocating (the expansion bound under test).
    Bytes stream(data + 4, data + size);
    auto decoded = LzDecompress(stream, raw_size);
    if (decoded.ok()) {
      PROVLEDGER_FUZZ_REQUIRE(decoded.value().size() == raw_size);
      // A decodable stream's content must survive a recompress cycle.
      Bytes recompressed = LzCompress(decoded.value());
      auto back = LzDecompress(recompressed, raw_size);
      PROVLEDGER_FUZZ_REQUIRE(back.ok());
      PROVLEDGER_FUZZ_REQUIRE(back.value() == decoded.value());
    }
  }

  // Compression must be total and invertible on arbitrary bytes.
  Bytes raw(data, data + size);
  Bytes compressed = LzCompress(raw);
  auto round = LzDecompress(compressed, raw.size());
  PROVLEDGER_FUZZ_REQUIRE(round.ok());
  PROVLEDGER_FUZZ_REQUIRE(round.value() == raw);
}

}  // namespace fuzz
}  // namespace provledger

PROVLEDGER_FUZZ_SHIM(FuzzCompress)
