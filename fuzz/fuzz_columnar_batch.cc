// Harness: columnar::DecodeRecordBatch over arbitrary bytes — the record
// columns, dictionary, id-delta chains, and schema table. Trust boundary:
// batch bytes arrive inside ChainLog bodies and replication payloads, i.e.
// from disk and from network peers.

#include "harnesses.h"
#include "prov/columnar.h"

namespace provledger {
namespace fuzz {

void FuzzColumnarBatch(const uint8_t* data, size_t size) {
  Bytes input(data, data + size);
  auto decoded = prov::columnar::DecodeRecordBatch(input);
  if (!decoded.ok()) return;

  // Decodable input must round-trip bit-identically through the canonical
  // re-encode: same record Encode() bytes, same Hash(), stable batch form.
  Bytes reencoded = prov::columnar::EncodeRecordBatch(decoded.value());
  auto again = prov::columnar::DecodeRecordBatch(reencoded);
  PROVLEDGER_FUZZ_REQUIRE(again.ok());
  PROVLEDGER_FUZZ_REQUIRE(again.value().size() == decoded.value().size());
  for (size_t i = 0; i < again.value().size(); ++i) {
    PROVLEDGER_FUZZ_REQUIRE(again.value()[i].Encode() ==
                            decoded.value()[i].Encode());
  }
}

}  // namespace fuzz
}  // namespace provledger

PROVLEDGER_FUZZ_SHIM(FuzzColumnarBatch)
