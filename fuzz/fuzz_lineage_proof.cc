// Harness: LineageProof::Decode + VerifyLineageProof — the audit-layer
// proof bundle served to untrusted peers over repl/proof. Trust boundary:
// proof bytes arrive from whatever node claims to hold the record's
// lineage; a light client feeds them straight into the verifier. Strict
// canonical: decodable bytes must re-encode bit-identically, and the
// verifier must be total on anything the decoder accepts — it may only
// return Corruption, never crash, whatever the bytes claim.

#include "harnesses.h"

#include "audit/lineage_proof.h"

namespace provledger {
namespace fuzz {

void FuzzLineageProof(const uint8_t* data, size_t size) {
  Bytes input(data, data + size);
  auto decoded = audit::LineageProof::Decode(input);
  if (!decoded.ok()) return;
  PROVLEDGER_FUZZ_REQUIRE(decoded.value().Encode() == input);
  // Verification against a hostile oracle must terminate cleanly. The
  // all-zero "main chain" refutes every header, so a fuzzed proof can
  // never verify — but every structural check before the header anchor
  // still runs over the decoded contents.
  audit::HeaderHashAt zeros = [](uint64_t) -> Result<crypto::Digest> {
    return crypto::ZeroDigest();
  };
  audit::LineageSummary summary;
  Status verdict = audit::VerifyLineageProof(
      decoded.value(), decoded.value().target_record_id, zeros, &summary);
  // A proof whose headers all hash to zero cannot exist (SHA-256
  // preimage); acceptance here would mean the verifier skipped the
  // anchoring step.
  PROVLEDGER_FUZZ_REQUIRE(!verdict.ok());
}

}  // namespace fuzz
}  // namespace provledger

PROVLEDGER_FUZZ_SHIM(FuzzLineageProof)
