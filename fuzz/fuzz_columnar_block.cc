// Harness: columnar::DecodeBlock — the one block-body entry point the
// byte-bound layers use (ChainLog replay, replication ingest). Covers both
// wire forms behind it: the magic-prefixed columnar body and the legacy
// Block::Decode() encoding, plus the per-transaction fallback lanes.

#include "harnesses.h"
#include "prov/columnar.h"

namespace provledger {
namespace fuzz {

void FuzzColumnarBlock(const uint8_t* data, size_t size) {
  Bytes input(data, data + size);
  auto decoded = prov::columnar::DecodeBlock(input);
  if (!decoded.ok()) return;

  // A decodable body must survive both re-encodings: the canonical legacy
  // form (positional, so decode(encode(b)) is exact) and the columnar frame
  // (bit-identical record payloads by construction).
  const ledger::Block& block = decoded.value();
  Bytes legacy = block.Encode();
  auto legacy_again = ledger::Block::Decode(legacy);
  PROVLEDGER_FUZZ_REQUIRE(legacy_again.ok());
  PROVLEDGER_FUZZ_REQUIRE(legacy_again.value().Encode() == legacy);

  Bytes columnar = prov::columnar::EncodeBlock(block);
  auto columnar_again = prov::columnar::DecodeBlock(columnar);
  PROVLEDGER_FUZZ_REQUIRE(columnar_again.ok());
  PROVLEDGER_FUZZ_REQUIRE(columnar_again.value().Encode() == legacy);
}

}  // namespace fuzz
}  // namespace provledger

PROVLEDGER_FUZZ_SHIM(FuzzColumnarBlock)
