// Harness: ProvenanceRecord::Decode — the canonical per-record form whose
// bytes are hashed into transaction ids and Merkle leaves. Trust boundary:
// record payloads ride inside transactions from peers and from disk.
// The decoder is strict-canonical: decodable bytes must re-encode to
// themselves (otherwise two distinct byte strings would share a Hash()).

#include "harnesses.h"
#include "prov/record.h"

namespace provledger {
namespace fuzz {

void FuzzRecord(const uint8_t* data, size_t size) {
  Bytes input(data, data + size);
  auto decoded = prov::ProvenanceRecord::Decode(input);
  if (!decoded.ok()) return;
  PROVLEDGER_FUZZ_REQUIRE(decoded.value().Encode() == input);
  // Validate() must be total on decoded records (no crash on weird
  // contents), whatever it decides.
  (void)decoded.value().Validate();
}

}  // namespace fuzz
}  // namespace provledger

PROVLEDGER_FUZZ_SHIM(FuzzRecord)
