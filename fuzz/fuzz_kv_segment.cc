// Harness: FileKvStore reopen over an arbitrary segment file — torn tails,
// CRC damage, corrupt batch payloads, and hostile compressed-batch headers.
// Trust boundary: segment bytes on disk (the store must classify any file
// as replayable / torn / corrupt, never crash or over-allocate).
//
// Each input becomes `000001.log` in a fresh temp directory; a successful
// open then reads every indexed value back (the pread + decompress + slice
// path) through an iterator.

#include "harnesses.h"

#include <string>

#include "common/compress.h"
#include "storage/file_kv_store.h"

namespace provledger {
namespace fuzz {

void FuzzKvSegment(const uint8_t* data, size_t size) {
  // One scratch dir for the whole run, segment rewritten (not fsynced)
  // per input: durability of fuzz scratch is irrelevant, and the atomic
  // write path's two fsyncs would dominate every iteration.
  const std::string dir = ScratchDir();
  if (dir.empty()) return;
  PROVLEDGER_FUZZ_REQUIRE(WriteScratchFile(dir + "/000001.log", data, size));

  {
    storage::FileKvStoreOptions options;
    options.sync_writes = false;
    options.compress = LzCompress;
    options.decompress = LzDecompress;
    auto store = storage::FileKvStore::Open(dir, options);
    if (store.ok()) {
      // Whatever replayed must be readable: the index can only point at
      // locations the replay itself validated.
      auto it = store.value()->NewIterator();
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        auto direct = store.value()->Get(it->key());
        PROVLEDGER_FUZZ_REQUIRE(direct.ok());
        PROVLEDGER_FUZZ_REQUIRE(direct.value() == it->value());
      }
    }
  }
}

}  // namespace fuzz
}  // namespace provledger

PROVLEDGER_FUZZ_SHIM(FuzzKvSegment)
