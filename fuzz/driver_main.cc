// Deterministic driver for the fuzz harnesses — the no-libFuzzer mode that
// runs everywhere (the `fuzz` ctest label). Replays the whole seed corpus,
// then runs a bounded structure-unaware mutation loop (bit flips, boundary
// integers, truncation, splices, varint torture) off common/rng, so a run is
// reproducible from its seed. Any crash / sanitizer report fails the test;
// a clean pass prints one summary line.
//
// Usage: fuzz_<name> <corpus_dir> [iterations] [seed]
//   iterations default: 100000 (PROVLEDGER_FUZZ_ITERATIONS at configure
//   time); env PROVLEDGER_FUZZ_ITERATIONS overrides at run time.

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/fileio.h"
#include "common/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

using provledger::Bytes;
using provledger::Rng;

// Inputs are capped so a mutation chain cannot grow an input without bound
// (the decoders themselves are the subject under test, not the allocator).
constexpr size_t kMaxInputBytes = 64u << 10;

std::vector<std::string> ListCorpusFiles(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.empty() || name[0] == '.') continue;
    names.push_back(dir + "/" + name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());  // deterministic replay order
  return names;
}

void RunOne(const Bytes& input) {
  LLVMFuzzerTestOneInput(input.data(), input.size());
}

// One mutation step; kinds are weighted toward the byte-level edits that
// exercise length prefixes and varints hardest.
void MutateOnce(Rng* rng, const std::vector<Bytes>& pool, Bytes* input) {
  if (input->size() > kMaxInputBytes) input->resize(kMaxInputBytes);
  const uint64_t kind = rng->NextBelow(8);
  switch (kind) {
    case 0: {  // flip one bit
      if (input->empty()) break;
      const size_t at = rng->NextBelow(input->size());
      (*input)[at] ^= static_cast<uint8_t>(1u << rng->NextBelow(8));
      break;
    }
    case 1: {  // overwrite one byte
      if (input->empty()) break;
      (*input)[rng->NextBelow(input->size())] =
          static_cast<uint8_t>(rng->NextBelow(256));
      break;
    }
    case 2: {  // truncate
      if (input->empty()) break;
      input->resize(rng->NextBelow(input->size() + 1));
      break;
    }
    case 3: {  // insert a small random chunk
      const size_t n = 1 + rng->NextBelow(16);
      const size_t at = rng->NextBelow(input->size() + 1);
      Bytes chunk = rng->NextBytes(n);
      input->insert(input->begin() + static_cast<ptrdiff_t>(at),
                    chunk.begin(), chunk.end());
      break;
    }
    case 4: {  // boundary u32 stamped at a random offset
      static const uint32_t kBoundary[] = {0u,          1u,          0x7Fu,
                                           0x80u,       0xFFFFu,     0x7FFFFFFFu,
                                           0x80000000u, 0xFFFFFFFEu, 0xFFFFFFFFu};
      const uint32_t v = kBoundary[rng->NextBelow(
          sizeof(kBoundary) / sizeof(kBoundary[0]))];
      if (input->size() < 4) input->resize(4, 0);
      const size_t at = rng->NextBelow(input->size() - 3);
      for (int i = 0; i < 4; ++i) {
        (*input)[at + static_cast<size_t>(i)] =
            static_cast<uint8_t>(v >> (8 * i));
      }
      break;
    }
    case 5: {  // varint torture: a run of continuation bytes
      const size_t n = 1 + rng->NextBelow(12);
      const size_t at = rng->NextBelow(input->size() + 1);
      Bytes run(n, 0x80);
      run.back() = static_cast<uint8_t>(rng->NextBelow(256));
      input->insert(input->begin() + static_cast<ptrdiff_t>(at), run.begin(),
                    run.end());
      break;
    }
    case 6: {  // splice: prefix of this + suffix of a pool entry
      const Bytes& other = pool[rng->NextBelow(pool.size())];
      if (other.empty()) break;
      const size_t keep = rng->NextBelow(input->size() + 1);
      const size_t from = rng->NextBelow(other.size());
      input->resize(keep);
      input->insert(input->end(), other.begin() + static_cast<ptrdiff_t>(from),
                    other.end());
      break;
    }
    default: {  // duplicate an internal chunk (repeated-section torture)
      if (input->empty()) break;
      const size_t from = rng->NextBelow(input->size());
      const size_t n =
          std::min<size_t>(1 + rng->NextBelow(32), input->size() - from);
      Bytes chunk(input->begin() + static_cast<ptrdiff_t>(from),
                  input->begin() + static_cast<ptrdiff_t>(from + n));
      const size_t at = rng->NextBelow(input->size() + 1);
      input->insert(input->begin() + static_cast<ptrdiff_t>(at), chunk.begin(),
                    chunk.end());
      break;
    }
  }
  if (input->size() > kMaxInputBytes) input->resize(kMaxInputBytes);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus_dir> [iterations] [seed]\n",
                 argv[0]);
    return 2;
  }
  const std::string corpus_dir = argv[1];
  uint64_t iterations = 100000;
  if (const char* env = std::getenv("PROVLEDGER_FUZZ_ITERATIONS")) {
    iterations = std::strtoull(env, nullptr, 10);
  } else if (argc > 2) {
    iterations = std::strtoull(argv[2], nullptr, 10);
  }
  const uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0xC0FFEEull;

  // Seed pool: every corpus file, plus fixed boundary inputs so a missing
  // corpus directory still exercises the empty/degenerate paths.
  std::vector<Bytes> pool;
  for (const auto& path : ListCorpusFiles(corpus_dir)) {
    auto read = provledger::ReadFileToBytes(path);
    if (!read.ok()) {
      std::fprintf(stderr, "cannot read corpus file %s: %s\n", path.c_str(),
                   read.status().ToString().c_str());
      return 2;
    }
    pool.push_back(std::move(read).value());
  }
  pool.push_back(Bytes());
  pool.push_back(Bytes(1, 0x00));
  pool.push_back(Bytes(16, 0xFF));

  // Byte-exact corpus replay first: checked-in crashers re-run every time.
  for (const auto& input : pool) RunOne(input);

  Rng rng(seed);
  Bytes scratch;
  for (uint64_t i = 0; i < iterations; ++i) {
    scratch = pool[rng.NextBelow(pool.size())];
    const uint64_t steps = 1 + rng.NextBelow(6);
    for (uint64_t s = 0; s < steps; ++s) MutateOnce(&rng, pool, &scratch);
    RunOne(scratch);
  }
  std::printf("fuzz: %zu corpus inputs + %llu mutations, no findings\n",
              pool.size(), static_cast<unsigned long long>(iterations));
  return 0;
}
