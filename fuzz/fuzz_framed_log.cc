// Harness: the common/framed_log read path — frame classification
// (valid / torn / corrupt) over an arbitrary byte buffer, walked exactly the
// way FileKvStore::ReplaySegment and ChainLog::ScanExisting walk a log file.
// Trust boundary: raw log files on disk.

#include "harnesses.h"
#include "common/crc32.h"
#include "common/framed_log.h"

namespace provledger {
namespace fuzz {

void FuzzFramedLog(const uint8_t* data, size_t size) {
  Bytes buf(data, data + size);

  // Replay-loop walk: every kValid frame advances; torn/corrupt stop the
  // scan (the two recovery verdicts). The scan itself must never read out
  // of bounds whatever the declared lengths say.
  size_t pos = 0;
  while (pos < buf.size()) {
    size_t payload_len = 0;
    FrameScan scan = ScanFrameAt(buf, pos, &payload_len);
    if (scan != FrameScan::kValid) break;
    PROVLEDGER_FUZZ_REQUIRE(pos + kFrameHeaderBytes + payload_len <=
                            buf.size());
    // A valid frame's CRC must verify against exactly its payload slice.
    PROVLEDGER_FUZZ_REQUIRE(
        Crc32(buf.data() + pos + kFrameHeaderBytes, payload_len) ==
        Crc32(Bytes(buf.begin() + static_cast<ptrdiff_t>(pos +
                                                         kFrameHeaderBytes),
                    buf.begin() + static_cast<ptrdiff_t>(
                                      pos + kFrameHeaderBytes + payload_len))));
    pos += kFrameHeaderBytes + payload_len;
  }

  // Build/scan inverse: framing arbitrary bytes always yields one valid
  // frame of exactly that payload.
  Bytes frame = BuildFrame(buf);
  size_t built_len = 0;
  PROVLEDGER_FUZZ_REQUIRE(ScanFrameAt(frame, 0, &built_len) ==
                          FrameScan::kValid);
  PROVLEDGER_FUZZ_REQUIRE(built_len == buf.size());
}

}  // namespace fuzz
}  // namespace provledger

PROVLEDGER_FUZZ_SHIM(FuzzFramedLog)
