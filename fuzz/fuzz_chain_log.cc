// Harness: ChainLog open + replay over an arbitrary log file — frame
// classification, block decoding (both body formats), and full SubmitBlock
// re-validation of whatever decodes. Trust boundary: the write-ahead block
// log on disk, which a restart treats as the source of truth.

#include "harnesses.h"

#include <string>

#include "ledger/chain_log.h"

namespace provledger {
namespace fuzz {

void FuzzChainLog(const uint8_t* data, size_t size) {
  // One scratch dir for the whole run, log rewritten (not fsynced) per
  // input: durability of fuzz scratch is irrelevant, and an atomic write's
  // fsyncs would dominate every iteration.
  const std::string dir = ScratchDir();
  if (dir.empty()) return;
  const std::string path = dir + "/chain.log";
  PROVLEDGER_FUZZ_REQUIRE(WriteScratchFile(path, data, size));

  auto log = ledger::ChainLog::Open(path);
  if (log.ok()) {
    ledger::Blockchain chain;
    // Replay re-validates every decodable block through SubmitBlock; a
    // log of hostile bytes must surface Corruption or rejection, never
    // crash the chain — the discarded status is the expected rejection.
    (void)log.value()->Replay(&chain);
  }
}

}  // namespace fuzz
}  // namespace provledger

PROVLEDGER_FUZZ_SHIM(FuzzChainLog)
