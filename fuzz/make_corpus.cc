// Seed-corpus generator for fuzz/corpus/. Writes two kinds of files per
// harness: well-formed canonical encodings (so mutation starts from deep
// inside the format, not from noise) and the regression *crashers* — byte
// patterns that triggered real defects fixed in this tree (unbounded
// count-prefix allocations, implausible LZ raw sizes, non-canonical field
// maps, trailing wire garbage). tests/fuzz_regression_test.cc replays every
// file here byte-exactly at each ctest run.
//
// Usage: fuzz_make_corpus <corpus_root>   (outputs are checked in)

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/codec.h"
#include "crypto/sha256.h"
#include "common/compress.h"
#include "common/fileio.h"
#include "common/framed_log.h"
#include "common/rng.h"
#include "audit/lineage_proof.h"
#include "ledger/chain.h"
#include "ledger/chain_log.h"
#include "prov/columnar.h"
#include "prov/record.h"
#include "prov/store.h"
#include "storage/file_kv_store.h"

namespace provledger {
namespace {

std::string g_root;

void WriteSeed(const std::string& harness, const std::string& name,
               const Bytes& bytes) {
  const std::string dir = g_root + "/" + harness;
  Status st = EnsureDir(dir);
  if (st.ok()) st = WriteFileAtomic(dir + "/" + name, bytes);
  if (!st.ok()) {
    std::fprintf(stderr, "make_corpus: %s/%s: %s\n", harness.c_str(),
                 name.c_str(), st.ToString().c_str());
    std::exit(1);
  }
}

prov::ProvenanceRecord SampleRecord(size_t i) {
  prov::ProvenanceRecord rec;
  rec.record_id = "rec-" + std::to_string(1000 + i);
  rec.domain = static_cast<prov::Domain>(i % 7);
  rec.operation = i % 2 == 0 ? "create" : "update";
  rec.subject = "artifact-" + std::to_string(i % 5);
  rec.agent = "agent-" + std::to_string(i % 3);
  rec.timestamp = static_cast<Timestamp>(5'000'000 + i * 131);
  rec.inputs = {"in-" + std::to_string(i)};
  if (i % 2 == 0) rec.outputs = {"out-" + std::to_string(i), "shared"};
  rec.fields["sensor"] = "s-" + std::to_string(i % 4);
  rec.fields["value"] = std::to_string(20 + i);
  if (i % 3 == 0) {
    rec.payload_hash =
        crypto::Sha256::Hash(ToBytes("artifact-" + std::to_string(i)));
  }
  return rec;
}

std::vector<prov::ProvenanceRecord> SampleBatch(size_t n) {
  std::vector<prov::ProvenanceRecord> records;
  for (size_t i = 0; i < n; ++i) records.push_back(SampleRecord(i));
  return records;
}

/// A block that actually attaches to a default-options Blockchain (same
/// genesis), so the replication harness seed exercises the accept path,
/// not just rejection.
ledger::Block SampleBlock(ledger::Blockchain* chain, uint64_t nonce) {
  std::vector<ledger::Transaction> txs;
  for (size_t i = 0; i < 4; ++i) {
    txs.push_back(ledger::Transaction::MakeSystem(
        "prov/record", "prov", SampleRecord(i + nonce * 4).Encode(),
        static_cast<Timestamp>(1'000'000 + nonce * 100 + i), nonce * 4 + i));
  }
  // One foreign transaction so the columnar raw-lane (flag 0) is seeded too.
  txs.push_back(ledger::Transaction::MakeSystem(
      "app/other", "misc", ToBytes("not a record"),
      static_cast<Timestamp>(1'000'000 + nonce * 100 + 9), nonce * 4 + 9));
  return ledger::Block::Make(chain->height() + 1, chain->head_hash(),
                             std::move(txs),
                             static_cast<Timestamp>(2'000'000 + nonce),
                             "seed-proposer");
}

void EmitColumnarBatch() {
  WriteSeed("columnar_batch", "batch.bin",
            prov::columnar::EncodeRecordBatch(SampleBatch(6)));
  WriteSeed("columnar_batch", "empty.bin",
            prov::columnar::EncodeRecordBatch({}));
  // Overlong uvarint (11 continuation bytes): must be Corruption, pinned
  // here so the rejection path stays covered.
  WriteSeed("columnar_batch", "crash-overlong-varint.bin", Bytes(11, 0x80));
}

void EmitColumnarBlock(const ledger::Block& block) {
  WriteSeed("columnar_block", "columnar.bin",
            prov::columnar::EncodeBlock(block));
  WriteSeed("columnar_block", "legacy.bin", block.Encode());
  // Legacy body declaring 2^32-1 transactions after a valid header: used
  // to drive a multi-gigabyte vector reserve before the count bound.
  Encoder enc;
  block.header.EncodeTo(&enc);
  enc.PutU32(0xFFFFFFFFu);
  WriteSeed("columnar_block", "crash-txcount.bin", enc.TakeBuffer());
}

void EmitRecord() {
  WriteSeed("record", "generic.bin", SampleRecord(0).Encode());
  WriteSeed("record", "supplychain.bin",
            prov::MakeSupplyChainRecord("rec-7", "transfer", "prod-1",
                                        "acme", 42, "batch-9", "2026-01",
                                        "a>b>c", "widget", "mfg-3", "qr-1")
                .Encode());
  // Truncated record declaring 2^32-1 inputs: used to drive an unbounded
  // resize before the count bound.
  {
    Encoder enc;
    enc.PutString("rec-x");
    enc.PutU8(0);
    enc.PutString("op");
    enc.PutString("subj");
    enc.PutString("agent");
    enc.PutI64(1);
    enc.PutU32(0xFFFFFFFFu);
    WriteSeed("record", "crash-inputs-count.bin", enc.TakeBuffer());
  }
  // Duplicate field key: two byte strings decoding to one record would
  // break Hash() uniqueness; the decoder must reject non-canonical maps.
  {
    Encoder enc;
    enc.PutString("rec-y");
    enc.PutU8(0);
    enc.PutString("op");
    enc.PutString("subj");
    enc.PutString("agent");
    enc.PutI64(1);
    enc.PutU32(0);
    enc.PutU32(0);
    enc.PutU32(2);
    enc.PutString("k");
    enc.PutString("v1");
    enc.PutString("k");
    enc.PutString("v2");
    enc.PutRaw(crypto::DigestToBytes(crypto::ZeroDigest()));
    WriteSeed("record", "crash-dup-field.bin", enc.TakeBuffer());
  }
}

void EmitCompress() {
  Rng rng(11);
  Bytes sample;
  for (int i = 0; i < 64; ++i) {
    Bytes chunk = ToBytes("sensor-frame-" + std::to_string(i % 7) + "|");
    sample.insert(sample.end(), chunk.begin(), chunk.end());
  }
  auto with_header = [](const Bytes& stream, uint32_t raw_size) {
    Encoder enc;
    enc.PutU32(raw_size);
    enc.PutRaw(stream);
    return enc.TakeBuffer();
  };
  WriteSeed("compress", "roundtrip.bin",
            with_header(LzCompress(sample),
                        static_cast<uint32_t>(sample.size())));
  Bytes dense = rng.NextBytes(256);
  WriteSeed("compress", "incompressible.bin",
            with_header(LzCompress(dense), static_cast<uint32_t>(dense.size())));
  // Declared raw size of ~4 GiB over a 4-byte stream: used to reserve the
  // whole declared size before the expansion bound rejected it.
  WriteSeed("compress", "crash-rawsize.bin",
            with_header(Bytes{0x03, 'a', 'b', 'c'}, 0xFFFFFFFFu));
}

void EmitFramedLog() {
  Bytes three;
  for (int i = 0; i < 3; ++i) {
    Bytes frame = BuildFrame(ToBytes("payload-" + std::to_string(i)));
    three.insert(three.end(), frame.begin(), frame.end());
  }
  WriteSeed("framed_log", "three_frames.bin", three);
  Bytes torn = three;
  Bytes tail = BuildFrame(ToBytes("torn-away"));
  torn.insert(torn.end(), tail.begin(), tail.end() - 4);
  WriteSeed("framed_log", "torn_tail.bin", torn);
  Bytes corrupt = three;
  corrupt[kFrameHeaderBytes] ^= 0x01;  // damage first payload byte
  WriteSeed("framed_log", "corrupt_crc.bin", corrupt);
}

void EmitKvSegment() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl =
      std::string(base != nullptr ? base : "/tmp") + "/provledger_seed_XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  if (dir == nullptr) {
    std::fprintf(stderr, "make_corpus: mkdtemp failed\n");
    std::exit(1);
  }
  {
    storage::FileKvStoreOptions options;
    options.compress = LzCompress;
    options.decompress = LzDecompress;
    auto store = storage::FileKvStore::Open(dir, options);
    if (!store.ok()) std::exit(1);
    storage::WriteBatch batch;
    Bytes repetitive;
    for (int i = 0; i < 40; ++i) {
      Bytes chunk = ToBytes("blob-chunk-" + std::to_string(i % 3));
      repetitive.insert(repetitive.end(), chunk.begin(), chunk.end());
    }
    batch.Put("block/1", repetitive);       // compresses -> compressed frame
    batch.Put("meta/head", ToBytes("1"));
    if (!store.value()->Write(batch).ok()) std::exit(1);
    Rng rng(5);
    if (!store.value()->Put("dense", rng.NextBytes(48)).ok()) std::exit(1);
    if (!store.value()->Delete("meta/head").ok()) std::exit(1);
  }
  auto segment = ReadFileToBytes(std::string(dir) + "/000001.log");
  if (!segment.ok()) std::exit(1);
  WriteSeed("kv_segment", "segment.bin", segment.value());
  ::unlink((std::string(dir) + "/000001.log").c_str());
  ::rmdir(dir);
}

void EmitChainLogAndReplication(const std::vector<ledger::Block>& blocks) {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl =
      std::string(base != nullptr ? base : "/tmp") + "/provledger_seed_XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  if (dir == nullptr) std::exit(1);
  const std::string path = std::string(dir) + "/chain.log";
  {
    auto columnar_log = ledger::ChainLog::Open(path);
    if (!columnar_log.ok()) std::exit(1);
    ledger::ChainLogOptions legacy_options;
    legacy_options.columnar_bodies = false;
    for (size_t i = 0; i < blocks.size(); ++i) {
      // Mixed-format log: both body forms must replay from one file.
      if (i % 2 == 0) {
        if (!columnar_log.value()->Append(blocks[i]).ok()) std::exit(1);
      } else {
        auto legacy_log = ledger::ChainLog::Open(path, legacy_options);
        if (!legacy_log.ok() || !legacy_log.value()->Append(blocks[i]).ok()) {
          std::exit(1);
        }
      }
    }
  }
  auto log_bytes = ReadFileToBytes(path);
  if (!log_bytes.ok()) std::exit(1);
  WriteSeed("chain_log", "mixed_log.bin", log_bytes.value());
  ::unlink(path.c_str());
  ::rmdir(dir);

  // Replication wire seeds: byte 0 selects the message type in the harness.
  auto typed = [](uint8_t type, const Bytes& payload) {
    Bytes out(1, type);
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
  };
  WriteSeed("replication", "block.bin",
            typed(0, prov::columnar::EncodeBlock(blocks[0])));
  {
    Encoder status;
    status.PutU8(1);  // probe
    status.PutU64(blocks.back().header.height);
    status.PutRaw(crypto::DigestToBytes(blocks.back().header.Hash()));
    WriteSeed("replication", "status.bin", typed(1, status.TakeBuffer()));
  }
  {
    Encoder pull;
    pull.PutU64(1);
    WriteSeed("replication", "pull.bin", typed(2, pull.TakeBuffer()));
  }
  {
    Encoder msg;  // the repl/blocks shape HandlePull produces
    msg.PutU64(blocks.back().header.height);
    msg.PutU32(static_cast<uint32_t>(blocks.size()));
    for (const auto& block : blocks) {
      msg.PutBytes(prov::columnar::EncodeBlock(block));
    }
    WriteSeed("replication", "blocks.bin", typed(3, msg.TakeBuffer()));
  }
  {
    Encoder msg;  // trailing wire garbage must be rejected, not ignored
    msg.PutU64(1);
    msg.PutU32(0);
    msg.PutRaw(ToBytes("trailing-garbage"));
    WriteSeed("replication", "crash-blocks-trailing.bin",
              typed(3, msg.TakeBuffer()));
  }
}

void EmitLineageProof() {
  ledger::Blockchain chain;
  SimClock clock(3'000'000);
  prov::ProvenanceStore store(&chain, &clock);
  auto rec = [](const std::string& id, std::vector<std::string> inputs,
                std::vector<std::string> outputs) {
    prov::ProvenanceRecord r;
    r.record_id = id;
    r.operation = "create";
    r.subject = "artifact";
    r.agent = "agent-a";
    r.timestamp = 3'000'000;
    r.inputs = std::move(inputs);
    r.outputs = std::move(outputs);
    return r;
  };
  if (!store.Anchor(rec("l0", {"raw"}, {"e0"})).ok()) std::exit(1);
  if (!store.Anchor(rec("l1", {"e0"}, {"e1"})).ok()) std::exit(1);
  // Batch the leaf with fillers so the seed carries multi-step Merkle
  // proofs (a 4-leaf tree), not just single-sibling paths.
  if (!store
           .AnchorBatch({rec("l2", {"e1"}, {"e2"}), rec("f0", {}, {}),
                         rec("f1", {}, {}), rec("f2", {}, {})})
           .ok()) {
    std::exit(1);
  }
  auto deep = audit::BuildLineageProof(store, "l2");
  auto single = audit::BuildLineageProof(store, "l0");
  if (!deep.ok() || !single.ok()) {
    std::fprintf(stderr, "make_corpus: lineage proof build failed\n");
    std::exit(1);
  }
  WriteSeed("lineage_proof", "chain_of_three.bin", deep.value().Encode());
  WriteSeed("lineage_proof", "single_node.bin", single.value().Encode());
  // Valid magic + target followed by a 2^32-1 header count: the classic
  // trusted-count-prefix shape; must be Corruption, not a giant resize.
  Encoder enc;
  enc.PutRaw(ToBytes("PLLPRF01"));
  enc.PutString("l2");
  enc.PutU32(0xFFFFFFFFu);
  WriteSeed("lineage_proof", "crash-header-count.bin", enc.TakeBuffer());
}

}  // namespace
}  // namespace provledger

int main(int argc, char** argv) {
  using namespace provledger;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus_root>\n", argv[0]);
    return 2;
  }
  g_root = argv[1];
  if (!EnsureDir(g_root).ok()) {
    std::fprintf(stderr, "make_corpus: cannot create %s\n", g_root.c_str());
    return 1;
  }

  // Three chained blocks on a default-options chain: every block-shaped
  // seed (columnar_block, chain_log, replication) derives from these, so
  // the replication harness seeds attach to its node's identical genesis.
  ledger::Blockchain chain;
  std::vector<ledger::Block> blocks;
  for (uint64_t nonce = 0; nonce < 3; ++nonce) {
    ledger::Block block = SampleBlock(&chain, nonce);
    if (!chain.SubmitBlock(block).ok()) {
      std::fprintf(stderr, "make_corpus: seed block rejected\n");
      return 1;
    }
    blocks.push_back(std::move(block));
  }

  EmitColumnarBatch();
  EmitColumnarBlock(blocks[0]);
  EmitRecord();
  EmitCompress();
  EmitFramedLog();
  EmitKvSegment();
  EmitChainLogAndReplication(blocks);
  EmitLineageProof();
  std::printf("make_corpus: seeds written under %s\n", g_root.c_str());
  return 0;
}
