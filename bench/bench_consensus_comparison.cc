// §6.1 evaluation axes "consensus algorithms / network size / difficulty":
// the same transaction stream committed under PoW, PoS, PBFT, and Raft,
// sweeping validator count, plus a PoW difficulty sweep. Expected shapes:
// PBFT messages O(n²) vs Raft O(n); PoS cheap; PoW latency doubling per
// difficulty bit (BlockCloud's motivation for PoS over PoW).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "consensus/engine.h"

namespace {

using namespace provledger;  // benchmark driver

consensus::ConsensusConfig Config(uint32_t nodes) {
  consensus::ConsensusConfig config;
  config.num_nodes = nodes;
  config.seed = 12345;
  config.pow_difficulty_bits = 10;
  return config;
}

void PrintComparisonTable() {
  std::printf("== Consensus comparison (10 blocks each; simulated) ==\n\n");
  std::printf("  %-6s %6s %12s %12s %14s %14s\n", "engine", "nodes",
              "msgs/commit", "bytes/commit", "latency us", "hash attempts");
  for (uint32_t nodes : {4u, 8u, 16u, 32u}) {
    for (const char* kind : {"pow", "pos", "pbft", "raft"}) {
      auto engine = consensus::MakeEngine(kind, Config(nodes));
      if (!engine.ok()) continue;
      uint64_t messages = 0, bytes = 0, attempts = 0;
      int64_t latency = 0;
      const int kBlocks = 10;
      bool failed = false;
      for (int b = 0; b < kBlocks; ++b) {
        auto result =
            engine.value()->Propose(ToBytes("block-" + std::to_string(b)));
        if (!result.ok()) {
          failed = true;
          break;
        }
        messages += result->metrics.messages;
        bytes += result->metrics.bytes;
        latency += result->metrics.latency_us;
        attempts += result->metrics.hash_attempts;
      }
      if (failed) continue;
      std::printf("  %-6s %6u %12.0f %12.0f %14.0f %14.0f\n", kind, nodes,
                  static_cast<double>(messages) / kBlocks,
                  static_cast<double>(bytes) / kBlocks,
                  static_cast<double>(latency) / kBlocks,
                  static_cast<double>(attempts) / kBlocks);
    }
  }
  std::printf("\n== PoW difficulty sweep (5 blocks each) ==\n\n");
  std::printf("  %-10s %16s %16s\n", "difficulty", "attempts/block",
              "sim latency us");
  for (uint32_t bits : {6u, 8u, 10u, 12u, 14u, 16u}) {
    consensus::ConsensusConfig config = Config(4);
    config.pow_difficulty_bits = bits;
    auto engine = consensus::MakeEngine("pow", config);
    uint64_t attempts = 0;
    int64_t latency = 0;
    const int kBlocks = 5;
    for (int b = 0; b < kBlocks; ++b) {
      auto result =
          engine.value()->Propose(ToBytes("b" + std::to_string(b)));
      attempts += result->metrics.hash_attempts;
      latency += result->metrics.latency_us;
    }
    std::printf("  %-10u %16.0f %16.0f\n", bits,
                static_cast<double>(attempts) / kBlocks,
                static_cast<double>(latency) / kBlocks);
  }
  std::printf("\n");
}

void BM_Consensus(benchmark::State& state, const char* kind) {
  auto engine =
      consensus::MakeEngine(kind, Config(static_cast<uint32_t>(state.range(0))));
  uint64_t b = 0;
  for (auto _ : state) {
    auto result = engine.value()->Propose(ToBytes("b" + std::to_string(b++)));
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(b));
}
BENCHMARK_CAPTURE(BM_Consensus, pow, "pow")->Arg(4)->Arg(16);
BENCHMARK_CAPTURE(BM_Consensus, pos, "pos")->Arg(4)->Arg(16);
BENCHMARK_CAPTURE(BM_Consensus, pbft, "pbft")->Arg(4)->Arg(16);
BENCHMARK_CAPTURE(BM_Consensus, raft, "raft")->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  PrintComparisonTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
