// Query-API benchmark: planner-chosen index scans (ProvenanceGraph::Run)
// vs the legacy fetch-then-filter pattern every consumer hand-rolled before
// the composable Query API existed — fetch a whole fixed-shape result
// (ByAgent / SubjectHistory), then post-filter copies in the caller.
//
// Both sides run against the same dense graph, so the gap measured is the
// API's: materializing only the matches (and, for count-only, nothing at
// all) instead of copying every record behind the broadest predicate.
//
// Workloads at 100k records (multi-predicate, per the ISSUE acceptance):
//   * agent+range       — records by one agent inside a 1% time window
//   * subject+operation — one subject's records with one of 8 operations
//   * count_subject_range — count-only: one subject's records in a window
//
// Emits BENCH_query.json (path = argv[1], record count = argv[2]).
//
// Usage: bench_query_api [BENCH_query.json [100000]]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_env.h"
#include "common/rng.h"
#include "prov/graph.h"

namespace provledger {
namespace {

using BenchClock = std::chrono::steady_clock;

double ElapsedUs(BenchClock::time_point t0) {
  return std::chrono::duration<double, std::micro>(BenchClock::now() - t0)
      .count();
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(p * (samples.size() - 1));
  return samples[idx];
}

// Workload: the bench_graph_scale DAG shape (1k hot subjects, 64 agents,
// long derivation chains) plus a rotating set of 8 operations so
// operation predicates have real selectivity.
std::vector<prov::ProvenanceRecord> MakeWorkload(size_t n) {
  static const char* kOps[] = {"create",  "update",  "share",   "transfer",
                               "execute", "analyze", "archive", "annotate"};
  std::vector<prov::ProvenanceRecord> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    prov::ProvenanceRecord rec;
    rec.record_id = "r" + std::to_string(i);
    rec.operation = kOps[i % 8];
    rec.subject = "s" + std::to_string(i % 1000);
    rec.agent = "a" + std::to_string(i % 64);
    rec.timestamp = static_cast<Timestamp>(i * 16 + (i * 2654435761u) % 16);
    if (i > 0) rec.inputs.push_back("e" + std::to_string(i - 1));
    if (i % 7 == 0 && i > 1) rec.inputs.push_back("e" + std::to_string(i / 2));
    rec.outputs.push_back("e" + std::to_string(i));
    records.push_back(std::move(rec));
  }
  return records;
}

volatile size_t g_sink = 0;

struct Workload {
  const char* name;
  double legacy_p50_us = 0;
  double query_p50_us = 0;
  double speedup() const {
    return query_p50_us > 0 ? legacy_p50_us / query_p50_us : 0;
  }
};

int Run(const std::string& json_path, size_t n) {
  if (n < 1000) {
    std::fprintf(stderr, "record count must be >= 1000 (got %zu)\n", n);
    return 1;
  }
  std::printf("== Planner-chosen index scans vs legacy fetch-then-filter ==\n");
  std::printf("   records: %zu\n\n", n);

  prov::ProvenanceGraph graph;
  for (const auto& rec : MakeWorkload(n)) {
    if (!graph.AddRecord(rec).ok()) return 1;
  }

  Rng rng(11);
  const Timestamp max_ts = static_cast<Timestamp>(n * 16);
  const int kQueries = 200;

  // ---- Workload 1: agent + time range (1% window). --------------------
  struct AgentRangeCase {
    std::string agent;
    Timestamp from, to;
  };
  std::vector<AgentRangeCase> agent_range;
  for (int q = 0; q < kQueries; ++q) {
    Timestamp from = static_cast<Timestamp>(rng.NextBelow(max_ts));
    agent_range.push_back({"a" + std::to_string(rng.NextBelow(64)), from,
                           from + max_ts / 100});
  }
  Workload w_agent_range{"agent+range"};
  {
    std::vector<double> legacy_samples, query_samples;
    for (const auto& c : agent_range) {
      auto t0 = BenchClock::now();
      // Legacy: materialize the agent's whole history, then post-filter.
      std::vector<prov::ProvenanceRecord> out;
      for (const auto& rec : graph.ByAgent(c.agent)) {
        if (rec.timestamp >= c.from && rec.timestamp <= c.to) {
          out.push_back(rec);
        }
      }
      legacy_samples.push_back(ElapsedUs(t0));
      size_t legacy_n = out.size();
      g_sink += legacy_n;

      t0 = BenchClock::now();
      auto result = graph.Run(
          prov::Query().WithAgent(c.agent).Between(c.from, c.to));
      query_samples.push_back(ElapsedUs(t0));
      g_sink += result.records.size();
      if (result.records.size() != legacy_n) {
        std::fprintf(stderr, "agent+range mismatch: %zu vs %zu\n", legacy_n,
                     result.records.size());
        return 1;
      }
    }
    w_agent_range.legacy_p50_us = Percentile(std::move(legacy_samples), 0.5);
    w_agent_range.query_p50_us = Percentile(std::move(query_samples), 0.5);
  }

  // ---- Workload 2: subject + operation. -------------------------------
  struct SubjectOpCase {
    std::string subject;
    std::string op;
  };
  static const char* kOps[] = {"create",  "update",  "share",   "transfer",
                               "execute", "analyze", "archive", "annotate"};
  std::vector<SubjectOpCase> subject_op;
  for (int q = 0; q < kQueries; ++q) {
    subject_op.push_back({"s" + std::to_string(rng.NextBelow(1000)),
                          kOps[rng.NextBelow(8)]});
  }
  Workload w_subject_op{"subject+operation"};
  {
    std::vector<double> legacy_samples, query_samples;
    for (const auto& c : subject_op) {
      auto t0 = BenchClock::now();
      std::vector<prov::ProvenanceRecord> out;
      for (const auto& rec : graph.SubjectHistory(c.subject)) {
        if (rec.operation == c.op) out.push_back(rec);
      }
      legacy_samples.push_back(ElapsedUs(t0));
      size_t legacy_n = out.size();
      g_sink += legacy_n;

      t0 = BenchClock::now();
      auto result =
          graph.Run(prov::Query().WithSubject(c.subject).WithOperation(c.op));
      query_samples.push_back(ElapsedUs(t0));
      g_sink += result.records.size();
      if (result.records.size() != legacy_n) {
        std::fprintf(stderr, "subject+operation mismatch\n");
        return 1;
      }
    }
    w_subject_op.legacy_p50_us = Percentile(std::move(legacy_samples), 0.5);
    w_subject_op.query_p50_us = Percentile(std::move(query_samples), 0.5);
  }

  // ---- Workload 3: count-only, subject + time range. ------------------
  struct SubjectRangeCase {
    std::string subject;
    Timestamp from, to;
  };
  std::vector<SubjectRangeCase> count_cases;
  for (int q = 0; q < kQueries; ++q) {
    Timestamp from = static_cast<Timestamp>(rng.NextBelow(max_ts));
    count_cases.push_back({"s" + std::to_string(rng.NextBelow(1000)), from,
                           from + max_ts / 4});
  }
  Workload w_count{"count_subject_range"};
  {
    std::vector<double> legacy_samples, query_samples;
    for (const auto& c : count_cases) {
      auto t0 = BenchClock::now();
      size_t legacy_count = 0;
      for (const auto& rec : graph.SubjectHistory(c.subject)) {
        if (rec.timestamp >= c.from && rec.timestamp <= c.to) ++legacy_count;
      }
      legacy_samples.push_back(ElapsedUs(t0));
      g_sink += legacy_count;

      t0 = BenchClock::now();
      auto result = graph.Run(prov::Query()
                                  .WithSubject(c.subject)
                                  .Between(c.from, c.to)
                                  .CountOnly());
      query_samples.push_back(ElapsedUs(t0));
      g_sink += result.count;
      if (result.count != legacy_count) {
        std::fprintf(stderr, "count mismatch: %zu vs %zu\n", legacy_count,
                     result.count);
        return 1;
      }
    }
    w_count.legacy_p50_us = Percentile(std::move(legacy_samples), 0.5);
    w_count.query_p50_us = Percentile(std::move(query_samples), 0.5);
  }

  const Workload workloads[] = {w_agent_range, w_subject_op, w_count};
  for (const Workload& w : workloads) {
    std::printf(
        "  %-20s legacy p50 %9.1f us   query p50 %8.1f us   %6.1fx\n",
        w.name, w.legacy_p50_us, w.query_p50_us, w.speedup());
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  bench::WriteEnvFields(f);
  std::fprintf(f,
               "  \"bench\": \"bench_query_api\",\n"
               "  \"records\": %zu,\n"
               "  \"workloads\": {\n",
               n);
  const size_t kCount = sizeof(workloads) / sizeof(workloads[0]);
  for (size_t i = 0; i < kCount; ++i) {
    std::fprintf(f,
                 "    \"%s\": {\"legacy_p50_us\": %.2f, "
                 "\"query_p50_us\": %.2f, \"speedup\": %.2f}%s\n",
                 workloads[i].name, workloads[i].legacy_p50_us,
                 workloads[i].query_p50_us, workloads[i].speedup(),
                 i + 1 < kCount ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\n  wrote %s\n", json_path.c_str());
  bench::WriteMetricsSidecar(json_path);
  return 0;
}

}  // namespace
}  // namespace provledger

int main(int argc, char** argv) {
  std::string json_path = argc > 1 ? argv[1] : "BENCH_query.json";
  size_t n = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 100000;
  return provledger::Run(json_path, n);
}
