// §6.1 axes "overhead for provenance data upload" and "validation time":
// the cost provenance anchoring adds on top of raw cloud operations, and
// how auditor validation scales with history length (Merkle-proof-based,
// so per-record validation stays logarithmic in block size).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "cloud/cloud_store.h"

#include "must.h"

namespace {

using namespace provledger;  // benchmark driver

void PrintOverheadTable() {
  std::printf("== Provenance upload overhead + auditor validation ==\n\n");

  // Raw ops vs hooked ops (wall time).
  const int kOps = 2000;
  double raw_ms = 0, hooked_ms = 0;
  {
    storage::ContentStore content;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kOps; ++i) {
      content.Put(ToBytes("content-" + std::to_string(i)));
    }
    raw_ms = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
  }
  {
    ledger::Blockchain chain;
    SimClock clock(0);
    prov::ProvenanceStore store(&chain, &clock);
    storage::ContentStore content;
    cloud::CloudStore cloud(&store, &content, &clock);
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kOps; ++i) {
      Must(cloud.CreateFile("u", "f-" + std::to_string(i),
                             ToBytes("content-" + std::to_string(i))));
    }
    hooked_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  }
  std::printf("  %d ops: raw store %.1f ms, with provenance anchoring %.1f "
              "ms (%.1fx)\n\n",
              kOps, raw_ms, hooked_ms, hooked_ms / raw_ms);

  // Auditor validation vs history length.
  std::printf("  %-10s %16s %16s\n", "history", "audit ms", "us/record");
  for (int n : {100, 400, 1600}) {
    ledger::Blockchain chain;
    SimClock clock(0);
    prov::ProvenanceStore store(&chain, &clock);
    storage::ContentStore content;
    cloud::CloudStore cloud(&store, &content, &clock);
    for (int i = 0; i < n; ++i) {
      Must(cloud.CreateFile("u", "f-" + std::to_string(i), ToBytes("x")));
    }
    cloud::CloudAuditor auditor(&store);
    auto t0 = std::chrono::steady_clock::now();
    auto verified = auditor.AuditEverything();
    auto t1 = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::printf("  %-10d %16.1f %16.1f %s\n", n, ms, ms * 1000 / n,
                verified.ok() ? "" : "(AUDIT FAILED)");
  }
  std::printf("\n");
}

void BM_CloudOpWithProvenance(benchmark::State& state) {
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  storage::ContentStore content;
  cloud::CloudStore cloud(&store, &content, &clock);
  uint64_t i = 0;
  for (auto _ : state) {
    Status s = cloud.CreateFile("u", "f-" + std::to_string(i++), ToBytes("x"));
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_CloudOpWithProvenance);

void BM_AuditRecord(benchmark::State& state) {
  const int history = static_cast<int>(state.range(0));
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  storage::ContentStore content;
  cloud::CloudStore cloud(&store, &content, &clock);
  for (int i = 0; i < history; ++i) {
    Must(cloud.CreateFile("u", "f-" + std::to_string(i), ToBytes("x")));
  }
  cloud::CloudAuditor auditor(&store);
  uint64_t i = 0;
  for (auto _ : state) {
    auto verified = auditor.AuditFile("f-" + std::to_string(i++ % history));
    benchmark::DoNotOptimize(verified);
  }
  state.SetLabel("history=" + std::to_string(history));
}
BENCHMARK(BM_AuditRecord)->Arg(100)->Arg(800);

}  // namespace

int main(int argc, char** argv) {
  PrintOverheadTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
