// RQ2-ML robustness (the BlockDFL / Yang-et-al shape): final model error vs
// attacker fraction 0..60% for plain FedAvg vs the committee-vote +
// reputation pipeline. Expected: FedAvg degrades sharply with attacker
// share; the defended aggregator stays near the clean baseline up to ~50%
// ("remains stable under 50% attacks").

#include <benchmark/benchmark.h>

#include <cstdio>

#include "domains/ml/federated.h"

namespace {

using namespace provledger;  // benchmark driver

double FinalError(ml::Aggregation aggregation, double attackers,
                  uint64_t seed) {
  ml::FlConfig config;
  config.num_workers = 20;
  config.aggregation = aggregation;
  config.attacker_fraction = attackers;
  config.seed = seed;
  ml::FederatedLearning fl(config, nullptr, nullptr);
  return fl.RunRounds(30).model_error;
}

void PrintPoisoningSweep() {
  std::printf("== FL poisoning sweep: final model error after 30 rounds ==\n");
  std::printf("(20 workers, sign-flip model poisoning; lower is better)\n\n");
  std::printf("  %-10s %14s %14s\n", "attackers", "fedavg", "blockdfl");
  for (double frac : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
    double fedavg = 0, blockdfl = 0;
    const int kSeeds = 3;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      fedavg += FinalError(ml::Aggregation::kFedAvg, frac, seed);
      blockdfl += FinalError(ml::Aggregation::kBlockDfl, frac, seed);
    }
    std::printf("  %8.0f%% %14.4f %14.4f\n", frac * 100, fedavg / kSeeds,
                blockdfl / kSeeds);
  }
  std::printf("\n== Free-riding: rejected zero-updates (round 1) ==\n\n");
  for (size_t riders : {0u, 3u, 6u}) {
    ml::FlConfig config;
    config.num_workers = 20;
    config.aggregation = ml::Aggregation::kBlockDfl;
    config.free_riders = riders;
    config.seed = 5;
    ml::FederatedLearning fl(config, nullptr, nullptr);
    auto stats = fl.RunRound();
    std::printf("  free-riders=%zu -> rejected=%zu accepted=%zu\n", riders,
                stats.rejected, stats.accepted);
  }
  std::printf("\n");
}

void BM_FlRound(benchmark::State& state) {
  ml::FlConfig config;
  config.num_workers = static_cast<size_t>(state.range(0));
  config.aggregation = state.range(1) == 0 ? ml::Aggregation::kFedAvg
                                           : ml::Aggregation::kBlockDfl;
  config.attacker_fraction = 0.3;
  ml::FederatedLearning fl(config, nullptr, nullptr);
  for (auto _ : state) {
    auto stats = fl.RunRound();
    benchmark::DoNotOptimize(stats);
  }
  state.SetLabel(config.aggregation == ml::Aggregation::kFedAvg ? "fedavg"
                                                                : "blockdfl");
}
BENCHMARK(BM_FlRound)->Args({10, 0})->Args({10, 1})->Args({50, 0})->Args({50, 1});

}  // namespace

int main(int argc, char** argv) {
  PrintPoisoningSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
