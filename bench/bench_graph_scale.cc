// Scale benchmark for the dense-id provenance graph engine: builds a
// 100k-record DAG and compares ingest throughput and per-query p50 latency
// against the pre-refactor std::map/std::set implementation (embedded below
// as `legacy::Graph`, a faithful copy of the old ProvenanceGraph hot path).
//
// Emits BENCH_graph.json (path = argv[1], record count = argv[2]) with
// records/sec and per-query p50 latencies plus dense-vs-legacy speedups —
// the start of the perf trajectory for the §6.1 "Provenance Query" axis.
//
// Usage: bench_graph_scale [BENCH_graph.json [100000]]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_env.h"
#include "common/rng.h"
#include "prov/graph.h"

namespace provledger {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedUs(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// The pre-refactor implementation, kept verbatim as the benchmark baseline.
// ---------------------------------------------------------------------------
namespace legacy {

class Graph {
 public:
  Status AddRecord(const prov::ProvenanceRecord& record) {
    PROVLEDGER_RETURN_NOT_OK(record.Validate());
    if (records_.count(record.record_id)) {
      return Status::AlreadyExists("record already in graph");
    }
    std::vector<std::string> outputs = record.outputs;
    if (outputs.empty()) outputs.push_back(record.subject);

    records_.emplace(record.record_id, record);
    by_agent_[record.agent].push_back(record.record_id);
    by_subject_[record.subject].push_back(record.record_id);
    entity_versions_.insert(record.subject);
    for (const auto& in : record.inputs) {
      entity_versions_.insert(in);
      used_by_[in].push_back(record.record_id);
    }
    for (const auto& out : outputs) {
      entity_versions_.insert(out);
      generated_by_[out].push_back(record.record_id);
      for (const auto& in : record.inputs) {
        if (in == out) continue;
        derived_from_[out].insert(in);
        derivations_[in].insert(out);
      }
    }
    return Status::OK();
  }

  std::vector<std::string> Lineage(const std::string& entity) const {
    return Closure(derived_from_, entity);
  }

  std::vector<prov::ProvenanceRecord> SubjectHistory(
      const std::string& subject) const {
    return Collect(by_subject_, subject);
  }

  std::vector<prov::ProvenanceRecord> ByAgent(const std::string& agent) const {
    return Collect(by_agent_, agent);
  }

  std::vector<prov::ProvenanceRecord> InRange(Timestamp from,
                                              Timestamp to) const {
    std::vector<prov::ProvenanceRecord> out;
    for (const auto& [_, rec] : records_) {
      if (rec.timestamp >= from && rec.timestamp <= to) out.push_back(rec);
    }
    return SortByTime(std::move(out));
  }

  std::vector<std::string> ReexecutionSet(const std::string& record_id) const {
    if (!records_.count(record_id)) return {};
    std::vector<std::string> out;
    std::deque<std::string> frontier{record_id};
    std::set<std::string> seen{record_id};
    while (!frontier.empty()) {
      std::string current = frontier.front();
      frontier.pop_front();
      for (const auto& next : DownstreamRecords(current)) {
        if (seen.insert(next).second) {
          out.push_back(next);
          frontier.push_back(next);
        }
      }
    }
    return out;
  }

  std::vector<std::string> Invalidate(const std::string& record_id) {
    std::vector<std::string> order;
    std::deque<std::string> frontier{record_id};
    std::set<std::string> seen{record_id};
    while (!frontier.empty()) {
      std::string current = frontier.front();
      frontier.pop_front();
      order.push_back(current);
      for (const auto& next : DownstreamRecords(current)) {
        if (seen.insert(next).second) frontier.push_back(next);
      }
    }
    for (const auto& id : order) invalidated_.insert(id);
    return order;
  }

 private:
  static std::vector<prov::ProvenanceRecord> SortByTime(
      std::vector<prov::ProvenanceRecord> recs) {
    std::stable_sort(recs.begin(), recs.end(),
                     [](const prov::ProvenanceRecord& a,
                        const prov::ProvenanceRecord& b) {
                       return a.timestamp < b.timestamp;
                     });
    return recs;
  }

  std::vector<prov::ProvenanceRecord> Collect(
      const std::map<std::string, std::vector<std::string>>& index,
      const std::string& key) const {
    std::vector<prov::ProvenanceRecord> out;
    auto it = index.find(key);
    if (it == index.end()) return out;
    for (const auto& id : it->second) out.push_back(records_.at(id));
    return SortByTime(std::move(out));
  }

  static std::vector<std::string> Closure(
      const std::map<std::string, std::set<std::string>>& adjacency,
      const std::string& start) {
    std::vector<std::string> out;
    std::set<std::string> seen{start};
    std::deque<std::string> frontier{start};
    while (!frontier.empty()) {
      std::string current = frontier.front();
      frontier.pop_front();
      auto it = adjacency.find(current);
      if (it == adjacency.end()) continue;
      for (const auto& next : it->second) {
        if (seen.insert(next).second) {
          out.push_back(next);
          frontier.push_back(next);
        }
      }
    }
    return out;
  }

  std::vector<std::string> DownstreamRecords(
      const std::string& record_id) const {
    const prov::ProvenanceRecord& rec = records_.at(record_id);
    std::vector<std::string> outputs = rec.outputs;
    if (outputs.empty()) outputs.push_back(rec.subject);
    std::vector<std::string> downstream;
    std::set<std::string> seen;
    for (const auto& out : outputs) {
      auto it = used_by_.find(out);
      if (it == used_by_.end()) continue;
      for (const auto& consumer : it->second) {
        if (consumer != record_id && seen.insert(consumer).second) {
          downstream.push_back(consumer);
        }
      }
    }
    return downstream;
  }

  std::map<std::string, prov::ProvenanceRecord> records_;
  std::map<std::string, std::vector<std::string>> generated_by_;
  std::map<std::string, std::vector<std::string>> used_by_;
  std::map<std::string, std::set<std::string>> derived_from_;
  std::map<std::string, std::set<std::string>> derivations_;
  std::set<std::string> entity_versions_;
  std::map<std::string, std::vector<std::string>> by_agent_;
  std::map<std::string, std::vector<std::string>> by_subject_;
  std::set<std::string> invalidated_;
};

}  // namespace legacy

// ---------------------------------------------------------------------------
// Workload: a layered DAG with long derivation chains (record i consumes the
// previous version plus a periodic long-range input), 1k hot subjects, and
// 64 agents — the shape SciChain-style scientific pipelines produce.
// ---------------------------------------------------------------------------
std::vector<prov::ProvenanceRecord> MakeWorkload(size_t n) {
  std::vector<prov::ProvenanceRecord> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    prov::ProvenanceRecord rec;
    rec.record_id = "r" + std::to_string(i);
    rec.operation = "execute";
    rec.subject = "s" + std::to_string(i % 1000);
    rec.agent = "a" + std::to_string(i % 64);
    rec.timestamp = static_cast<Timestamp>(i * 16 + (i * 2654435761u) % 16);
    if (i > 0) rec.inputs.push_back("e" + std::to_string(i - 1));
    if (i % 7 == 0 && i > 1) rec.inputs.push_back("e" + std::to_string(i / 2));
    rec.outputs.push_back("e" + std::to_string(i));
    records.push_back(std::move(rec));
  }
  return records;
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(p * (samples.size() - 1));
  return samples[idx];
}

struct QueryStat {
  double legacy_p50_us = 0;
  double dense_p50_us = 0;
  double speedup() const {
    return dense_p50_us > 0 ? legacy_p50_us / dense_p50_us : 0;
  }
};

// Optimizer sink: result sizes accumulate here so query bodies stay live.
volatile size_t g_sink = 0;

/// Times `fn(arg)` once per element of `args`, returning p50 microseconds.
template <typename Fn, typename Arg>
double MeasureP50(const std::vector<Arg>& args, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(args.size());
  for (const Arg& arg : args) {
    auto t0 = Clock::now();
    auto result = fn(arg);
    samples.push_back(ElapsedUs(t0));
    g_sink += result.size();
  }
  return Percentile(std::move(samples), 0.5);
}

int Run(const std::string& json_path, size_t n) {
  if (n < 100) {
    std::fprintf(stderr, "record count must be >= 100 (got %zu)\n", n);
    return 1;
  }
  std::printf("== Dense-id graph engine vs legacy std::map graph ==\n");
  std::printf("   records: %zu\n\n", n);
  std::vector<prov::ProvenanceRecord> workload = MakeWorkload(n);
  Rng rng(7);

  // Ingest throughput.
  legacy::Graph legacy_graph;
  auto t0 = Clock::now();
  for (const auto& rec : workload) {
    if (!legacy_graph.AddRecord(rec).ok()) return 1;
  }
  double legacy_build_s = ElapsedUs(t0) / 1e6;

  prov::ProvenanceGraph dense_graph;
  t0 = Clock::now();
  for (const auto& rec : workload) {
    if (!dense_graph.AddRecord(rec).ok()) return 1;
  }
  double dense_build_s = ElapsedUs(t0) / 1e6;
  double legacy_rps = n / legacy_build_s;
  double dense_rps = n / dense_build_s;
  std::printf("  build: legacy %.0f rec/s, dense %.0f rec/s (%.1fx)\n",
              legacy_rps, dense_rps, dense_rps / legacy_rps);

  // InRange: windows spanning ~1% of the time axis.
  const Timestamp max_ts = static_cast<Timestamp>(n * 16);
  std::vector<std::pair<Timestamp, Timestamp>> windows;
  for (int q = 0; q < 200; ++q) {
    Timestamp from = static_cast<Timestamp>(rng.NextBelow(max_ts));
    windows.emplace_back(from, from + max_ts / 100);
  }
  QueryStat in_range;
  in_range.legacy_p50_us = MeasureP50(windows, [&](const auto& w) {
    return legacy_graph.InRange(w.first, w.second);
  });
  in_range.dense_p50_us = MeasureP50(windows, [&](const auto& w) {
    return dense_graph.InRange(w.first, w.second);
  });
  // Cross-check: both implementations must agree on the result set size.
  for (const auto& w : windows) {
    size_t legacy_n = legacy_graph.InRange(w.first, w.second).size();
    size_t dense_n = dense_graph.InRange(w.first, w.second).size();
    if (legacy_n != dense_n) {
      std::fprintf(stderr, "InRange mismatch: legacy %zu vs dense %zu\n",
                   legacy_n, dense_n);
      return 1;
    }
  }

  // Lineage: entities across the full depth spectrum (deepest ~ n).
  std::vector<std::string> lineage_targets;
  for (int q = 0; q < 30; ++q) {
    lineage_targets.push_back(
        "e" + std::to_string(n / 2 + rng.NextBelow(n / 2)));
  }
  QueryStat lineage;
  lineage.legacy_p50_us = MeasureP50(
      lineage_targets, [&](const auto& e) { return legacy_graph.Lineage(e); });
  lineage.dense_p50_us = MeasureP50(
      lineage_targets, [&](const auto& e) { return dense_graph.Lineage(e); });

  // SubjectHistory / ByAgent postings (~n/1000 and ~n/64 records each).
  std::vector<std::string> subjects, agents;
  for (int q = 0; q < 200; ++q) {
    subjects.push_back("s" + std::to_string(rng.NextBelow(1000)));
    agents.push_back("a" + std::to_string(rng.NextBelow(64)));
  }
  QueryStat subject_history, by_agent;
  subject_history.legacy_p50_us = MeasureP50(
      subjects, [&](const auto& s) { return legacy_graph.SubjectHistory(s); });
  subject_history.dense_p50_us = MeasureP50(
      subjects, [&](const auto& s) { return dense_graph.SubjectHistory(s); });
  by_agent.legacy_p50_us = MeasureP50(
      agents, [&](const auto& a) { return legacy_graph.ByAgent(a); });
  by_agent.dense_p50_us = MeasureP50(
      agents, [&](const auto& a) { return dense_graph.ByAgent(a); });

  // Invalidation closure (ReexecutionSet = the Invalidate BFS without the
  // marking), from roots in the first half → large downstream cascades.
  std::vector<std::string> roots;
  for (int q = 0; q < 20; ++q) {
    roots.push_back("r" + std::to_string(rng.NextBelow(n / 2)));
  }
  QueryStat reexec;
  reexec.legacy_p50_us = MeasureP50(
      roots, [&](const auto& r) { return legacy_graph.ReexecutionSet(r); });
  reexec.dense_p50_us = MeasureP50(
      roots, [&](const auto& r) { return dense_graph.ReexecutionSet(r); });

  // One real Invalidate cascade each (mutating, so measured once near the
  // root where the cascade covers almost the whole graph).
  QueryStat invalidate;
  t0 = Clock::now();
  size_t legacy_cascade = legacy_graph.Invalidate("r1").size();
  invalidate.legacy_p50_us = ElapsedUs(t0);
  t0 = Clock::now();
  auto dense_cascade = dense_graph.Invalidate("r1", 999, "bench");
  invalidate.dense_p50_us = ElapsedUs(t0);
  if (!dense_cascade.ok() || dense_cascade->size() != legacy_cascade) {
    std::fprintf(stderr, "cascade mismatch: legacy %zu\n", legacy_cascade);
    return 1;
  }

  struct Row {
    const char* name;
    const QueryStat* stat;
  };
  const Row rows[] = {{"in_range", &in_range},
                      {"lineage", &lineage},
                      {"subject_history", &subject_history},
                      {"by_agent", &by_agent},
                      {"invalidate_closure", &reexec},
                      {"invalidate", &invalidate}};
  for (const Row& row : rows) {
    std::printf("  %-18s legacy p50 %10.1f us   dense p50 %8.1f us   %6.1fx\n",
                row.name, row.stat->legacy_p50_us, row.stat->dense_p50_us,
                row.stat->speedup());
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  bench::WriteEnvFields(f);
  std::fprintf(f,
               "  \"bench\": \"bench_graph_scale\",\n"
               "  \"records\": %zu,\n"
               "  \"build\": {\n"
               "    \"legacy_records_per_sec\": %.0f,\n"
               "    \"dense_records_per_sec\": %.0f,\n"
               "    \"speedup\": %.2f\n"
               "  },\n"
               "  \"queries\": {\n",
               n, legacy_rps, dense_rps, dense_rps / legacy_rps);
  for (size_t i = 0; i < sizeof(rows) / sizeof(rows[0]); ++i) {
    std::fprintf(f,
                 "    \"%s\": {\"legacy_p50_us\": %.2f, "
                 "\"dense_p50_us\": %.2f, \"speedup\": %.2f}%s\n",
                 rows[i].name, rows[i].stat->legacy_p50_us,
                 rows[i].stat->dense_p50_us, rows[i].stat->speedup(),
                 i + 1 < sizeof(rows) / sizeof(rows[0]) ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\n  wrote %s\n", json_path.c_str());
  bench::WriteMetricsSidecar(json_path);
  return 0;
}

}  // namespace
}  // namespace provledger

int main(int argc, char** argv) {
  std::string json_path = argc > 1 ? argv[1] : "BENCH_graph.json";
  size_t n = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 100000;
  return provledger::Run(json_path, n);
}
