// Replication benchmark: a 4-node cluster per consensus engine ingests the
// workload through the full ordering + block-replication path, reporting
//
//   * cluster ingest throughput (records/s wall time) per engine — every
//     follower re-validates and indexes every block;
//   * replication overhead per record: protocol messages and bytes on the
//     replication network (block broadcast + any catch-up traffic);
//   * consensus ordering cost per batch (messages, simulated latency);
//   * catch-up time vs lag depth: one node partitioned while the majority
//     commits D blocks, then healed — pull rounds, blocks fetched, bytes,
//     and wall/simulated time until convergence.
//
// Emits BENCH_replication.json. Usage: bench_replication [json [records]]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_env.h"
#include "prov/columnar.h"
#include "replication/cluster.h"

#include <chrono>

namespace provledger {
namespace {

using BenchClock = std::chrono::steady_clock;

double ElapsedS(BenchClock::time_point t0) {
  return std::chrono::duration<double>(BenchClock::now() - t0).count();
}

prov::ProvenanceRecord MakeRecord(const std::string& tag, size_t i) {
  prov::ProvenanceRecord rec;
  rec.record_id = tag + "-r" + std::to_string(i);
  rec.operation = "execute";
  rec.subject = "s" + std::to_string(i % 1000);
  rec.agent = "a" + std::to_string(i % 64);
  rec.timestamp = static_cast<Timestamp>(1000 + i * 16);
  rec.outputs.push_back(tag + "-e" + std::to_string(i));
  return rec;
}

struct EngineRun {
  std::string name;
  double records_per_sec = 0;
  uint64_t blocks = 0;
  double repl_messages_per_record = 0;
  double repl_bytes_per_record = 0;
  double body_raw_bytes_per_record = 0;
  double body_columnar_bytes_per_record = 0;
  double consensus_messages_per_batch = 0;
  double consensus_sim_ms_per_batch = 0;
  size_t audited = 0;
};

struct CatchUpRun {
  uint64_t lag_blocks = 0;
  uint64_t pull_rounds = 0;
  uint64_t blocks_pulled = 0;
  uint64_t bytes = 0;
  double seconds = 0;
  double sim_ms = 0;
};

constexpr uint32_t kNodes = 4;
constexpr size_t kBatch = 512;

bool RunEngine(const std::string& kind, size_t n, EngineRun* out) {
  replication::ClusterOptions options;
  options.num_nodes = kNodes;
  options.seed = 42;
  options.consensus = kind;
  auto cluster = replication::Cluster::Create(options);
  if (!cluster.ok()) {
    std::fprintf(stderr, "Cluster::Create(%s): %s\n", kind.c_str(),
                 cluster.status().ToString().c_str());
    return false;
  }
  auto t0 = BenchClock::now();
  for (size_t i = 0; i < n; ++i) {
    if (!(*cluster)->Submit(MakeRecord(kind, i)).ok()) return false;
    if ((*cluster)->pending_count() == kBatch || i + 1 == n) {
      Status committed = (*cluster)->CommitPending();
      if (!committed.ok()) {
        std::fprintf(stderr, "commit (%s): %s\n", kind.c_str(),
                     committed.ToString().c_str());
        return false;
      }
    }
  }
  double ingest_s = ElapsedS(t0);
  if (!(*cluster)->Converged()) {
    std::fprintf(stderr, "%s cluster did not converge\n", kind.c_str());
    return false;
  }
  // Every node must hold the full, Merkle-verified record set; auditing
  // one follower proves the replicated store, not the proposer's.
  auto audit = (*cluster)->node(kNodes - 1)->store()->AuditAll();
  if (!audit.ok() || audit.value() != n) {
    std::fprintf(stderr, "%s follower audit failed\n", kind.c_str());
    return false;
  }
  const auto& net = (*cluster)->net()->metrics();
  const auto& m = (*cluster)->metrics();
  out->name = kind;
  out->records_per_sec = n / ingest_s;
  out->blocks = (*cluster)->node(0)->height();
  out->repl_messages_per_record =
      static_cast<double>(net.messages_sent) / static_cast<double>(n);
  // Network bytes now measure the payloads actually serialized onto the
  // wire (columnar block bodies by default) — not a re-encoding estimate.
  out->repl_bytes_per_record =
      static_cast<double>(net.bytes_sent) / static_cast<double>(n);
  // Block-body cost both ways, from the committed chain itself, so the
  // codec's wire saving is reported independent of protocol chatter.
  uint64_t raw_bytes = 0;
  uint64_t columnar_bytes = 0;
  for (uint64_t h = 1; h <= (*cluster)->node(0)->height(); ++h) {
    const ledger::Block* block = (*cluster)->node(0)->chain()->PeekBlock(h);
    if (block == nullptr) continue;
    raw_bytes += block->Encode().size();
    columnar_bytes += prov::columnar::EncodeBlock(*block).size();
  }
  out->body_raw_bytes_per_record =
      static_cast<double>(raw_bytes) / static_cast<double>(n);
  out->body_columnar_bytes_per_record =
      static_cast<double>(columnar_bytes) / static_cast<double>(n);
  out->consensus_messages_per_batch =
      static_cast<double>(m.consensus_messages) /
      static_cast<double>(m.batches_committed);
  out->consensus_sim_ms_per_batch =
      static_cast<double>(m.consensus_latency_us) / 1000.0 /
      static_cast<double>(m.batches_committed);
  out->audited = audit.value();
  std::printf(
      "  %-5s %8.0f rec/s  %4llu blocks  %5.2f msgs/rec  %7.1f B/rec"
      "  body %5.1f B/rec columnar (%5.1f raw)"
      "  %6.1f cons msgs/batch  %8.2f cons ms/batch\n",
      kind.c_str(), out->records_per_sec,
      static_cast<unsigned long long>(out->blocks),
      out->repl_messages_per_record, out->repl_bytes_per_record,
      out->body_columnar_bytes_per_record, out->body_raw_bytes_per_record,
      out->consensus_messages_per_batch, out->consensus_sim_ms_per_batch);
  return true;
}

bool RunCatchUp(uint64_t lag_blocks, CatchUpRun* out) {
  replication::ClusterOptions options;
  options.num_nodes = kNodes;
  options.seed = 42;
  options.consensus = "raft";
  auto cluster = replication::Cluster::Create(options);
  if (!cluster.ok()) return false;

  const network::NodeId straggler = kNodes - 1;
  (*cluster)->Partition({{0, 1, 2}, {straggler}});
  const size_t per_block = 32;
  for (uint64_t b = 0; b < lag_blocks; ++b) {
    for (size_t i = 0; i < per_block; ++i) {
      if (!(*cluster)
               ->Submit(MakeRecord("lag" + std::to_string(lag_blocks),
                                   b * per_block + i))
               .ok()) {
        return false;
      }
    }
    if (!(*cluster)->CommitPendingOn(0).ok()) return false;
  }
  const auto net_before = (*cluster)->net()->metrics();
  const auto node_before = (*cluster)->node(straggler)->metrics();
  const Timestamp sim_before = (*cluster)->clock()->NowMicros();

  (*cluster)->Heal();
  auto t0 = BenchClock::now();
  (*cluster)->AntiEntropy();
  double catch_up_s = ElapsedS(t0);
  if (!(*cluster)->Converged()) {
    std::fprintf(stderr, "catch-up at lag %llu did not converge\n",
                 static_cast<unsigned long long>(lag_blocks));
    return false;
  }
  const auto& net_after = (*cluster)->net()->metrics();
  const auto& node_after = (*cluster)->node(straggler)->metrics();
  out->lag_blocks = lag_blocks;
  out->pull_rounds = node_after.pulls_sent - node_before.pulls_sent;
  out->blocks_pulled = node_after.blocks_applied - node_before.blocks_applied;
  out->bytes = net_after.bytes_sent - net_before.bytes_sent;
  out->seconds = catch_up_s;
  out->sim_ms = ((*cluster)->clock()->NowMicros() - sim_before) / 1000.0;
  std::printf(
      "  lag %4llu blocks: %3llu pulls, %4llu blocks pulled, %8llu B,"
      "  %.4f s wall, %8.1f ms simulated\n",
      static_cast<unsigned long long>(out->lag_blocks),
      static_cast<unsigned long long>(out->pull_rounds),
      static_cast<unsigned long long>(out->blocks_pulled),
      static_cast<unsigned long long>(out->bytes), out->seconds, out->sim_ms);
  return true;
}

int Run(const std::string& json_path, size_t n) {
  if (n < 1000) {
    std::fprintf(stderr, "record count must be >= 1000 (got %zu)\n", n);
    return 1;
  }
  // Per-engine share: the four engines together process ~n records, so the
  // bench's total work tracks the requested scale.
  const size_t per_engine = n / 4;
  std::printf("== Replicated cluster: %u nodes, %zu records/engine ==\n\n",
              kNodes, per_engine);

  std::vector<EngineRun> engines;
  for (const std::string& kind : {"pow", "pos", "pbft", "raft"}) {
    EngineRun run;
    if (!RunEngine(kind, per_engine, &run)) return 1;
    engines.push_back(run);
  }

  std::printf("\n== Catch-up vs lag depth (raft, 32 records/block) ==\n\n");
  std::vector<CatchUpRun> catch_ups;
  for (uint64_t lag : {8u, 32u, 128u}) {
    CatchUpRun run;
    if (!RunCatchUp(lag, &run)) return 1;
    catch_ups.push_back(run);
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  bench::WriteEnvFields(f);
  std::fprintf(f,
               "  \"bench\": \"bench_replication\",\n"
               "  \"nodes\": %u,\n"
               "  \"records_per_engine\": %zu,\n"
               "  \"engines\": {\n",
               kNodes, per_engine);
  for (size_t i = 0; i < engines.size(); ++i) {
    const EngineRun& e = engines[i];
    std::fprintf(
        f,
        "    \"%s\": {\n"
        "      \"records_per_sec\": %.0f,\n"
        "      \"blocks\": %llu,\n"
        "      \"repl_messages_per_record\": %.3f,\n"
        "      \"repl_bytes_per_record\": %.1f,\n"
        "      \"body_raw_bytes_per_record\": %.1f,\n"
        "      \"body_columnar_bytes_per_record\": %.1f,\n"
        "      \"consensus_messages_per_batch\": %.1f,\n"
        "      \"consensus_sim_ms_per_batch\": %.2f,\n"
        "      \"follower_audit_verified\": %zu\n"
        "    }%s\n",
        e.name.c_str(), e.records_per_sec,
        static_cast<unsigned long long>(e.blocks), e.repl_messages_per_record,
        e.repl_bytes_per_record, e.body_raw_bytes_per_record,
        e.body_columnar_bytes_per_record, e.consensus_messages_per_batch,
        e.consensus_sim_ms_per_batch, e.audited,
        i + 1 < engines.size() ? "," : "");
  }
  std::fprintf(f,
               "  },\n"
               "  \"catch_up\": [\n");
  for (size_t i = 0; i < catch_ups.size(); ++i) {
    const CatchUpRun& c = catch_ups[i];
    std::fprintf(
        f,
        "    {\"lag_blocks\": %llu, \"pull_rounds\": %llu,"
        " \"blocks_pulled\": %llu, \"bytes\": %llu, \"seconds\": %.4f,"
        " \"sim_ms\": %.1f}%s\n",
        static_cast<unsigned long long>(c.lag_blocks),
        static_cast<unsigned long long>(c.pull_rounds),
        static_cast<unsigned long long>(c.blocks_pulled),
        static_cast<unsigned long long>(c.bytes), c.seconds, c.sim_ms,
        i + 1 < catch_ups.size() ? "," : "");
  }
  std::fprintf(f,
               "  ]\n"
               "}\n");
  std::fclose(f);
  std::printf("\n  wrote %s\n", json_path.c_str());
  bench::WriteMetricsSidecar(json_path);
  return 0;
}

}  // namespace
}  // namespace provledger

int main(int argc, char** argv) {
  const std::string json = argc > 1 ? argv[1] : "BENCH_replication.json";
  const size_t records =
      argc > 2 ? static_cast<size_t>(std::strtoull(argv[2], nullptr, 10))
               : 100000;
  return provledger::Run(json, records);
}
