// Reproduces Table 2 ("Considerations in Blockchain Collaborative
// Applications for Provenance Across Domains") as a *checked* matrix:
// every consideration cell in the paper's table is exercised by running
// the corresponding mechanism in this repository and reporting pass/fail.
// The paper's table is prose; ours is executable.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "domains/forensics/case_manager.h"
#include "domains/healthcare/ehr.h"
#include "domains/ml/federated.h"
#include "domains/scientific/workflow.h"
#include "domains/supplychain/supply_chain.h"

#include "must.h"

namespace {

using namespace provledger;  // benchmark driver

struct Cell {
  const char* consideration;
  bool supported;
};

void PrintColumn(const char* domain, const std::vector<Cell>& cells) {
  std::printf("%s\n", domain);
  for (const auto& cell : cells) {
    std::printf("    [%s] %s\n", cell.supported ? "x" : " ",
                cell.consideration);
  }
  std::printf("\n");
}

std::vector<Cell> ScientificColumn() {
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  scientific::WorkflowManager wm(&store, &clock);
  Must(wm.CreateWorkflow("wf", "lab"));
  Must(wm.AddTask("wf", "a", "op"));
  Must(wm.AddTask("wf", "b", "op", {"a"}));
  bool executed = wm.ExecuteAll("wf", "alice").ok();
  bool invalidate = wm.InvalidateTask("wf", "a", "x").ok();
  bool reexec = true;
  auto plan = wm.ReexecutionPlan("wf");
  for (const auto& t : plan.value()) {
    reexec &= wm.ReexecuteTask("wf", t, "alice").ok();
  }
  return {
      {"Intellectual property (owner-attributed workflows)", executed},
      {"Managing data workflow, private data inputs", executed},
      {"Flexibility for re-execution", reexec},
      {"Invalidating tasks", invalidate},
  };
}

std::vector<Cell> ForensicsColumn() {
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  storage::ContentStore content;
  forensics::CaseManager cm(&store, &content, &clock);
  bool stages = cm.OpenCase("c", "lead", "d").ok() &&
                cm.AdvanceStage("c", "lead").ok() &&
                cm.AdvanceStage("c", "lead").ok();
  bool multimodal =
      cm.CollectEvidence("c", "e1", "img", ToBytes("x"), "inv").ok() &&
      cm.CollectEvidence("c", "e2", "video", ToBytes("y"), "inv").ok();
  bool analyze_hashed = cm.VerifyEvidence("c", "e1").ok();
  bool ai_hook = cm.AdvanceStage("c", "lead").ok() &&
                 cm.AnalyzeEvidence("c", "e1", "ml-classifier:match", "analyst")
                     .ok();
  return {
      {"Coordination of investigation stages", stages},
      {"Handling multi-modal data", multimodal},
      {"Utilizing AI/ML techniques (analysis records)", ai_hook},
      {"Analyzing encrypted data (hash-verified copies)", analyze_hashed},
  };
}

std::vector<Cell> MlColumn() {
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  ml::FlConfig config;
  config.num_workers = 10;
  config.attacker_fraction = 0.3;
  config.data_noise = 0.2;  // statistical heterogeneity / non-IID knob
  ml::FederatedLearning fl(config, &store, &clock);
  auto stats = fl.RunRounds(10);
  return {
      {"Monitoring data gathering for training", store.anchored_count() > 0},
      {"Addressing non-IID data (noise-robust voting)",
       stats.model_error < 1.0},
      {"Documenting all steps of training", store.anchored_count() == 10},
      {"Managing statistical heterogeneity", stats.accepted > 0},
  };
}

std::vector<Cell> SupplyChainColumn() {
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  supplychain::SupplyChain sc(&store, &clock);
  sc.AccreditManufacturer("mfg");
  bool ownership = sc.RegisterProduct("p", "t", "b", "mfg", "e").ok() &&
                   sc.InitiateTransfer("p", "mfg", "dist").ok() &&
                   sc.ConfirmTransfer("p", "dist").ok();
  bool illegitimate_blocked =
      sc.RegisterProduct("q", "t", "b", "unaccredited", "e")
          .IsPermissionDenied();
  auto proof = sc.RecordPrivateReading("p", "s", 5, 2, 8);
  bool incentives = proof.ok() && sc.VerifyPrivateReading(proof.value()).ok();
  return {
      {"Device ownership transfer (confirmation-based)", ownership},
      {"Illegitimate product registration blocked", illegitimate_blocked},
      {"Incentives to share provenance (ZKRP + reward)", incentives},
      {"Focus on specific industries (pharma cold chain)",
       sc.SetColdChainRange("p", 2, 8).ok()},
  };
}

std::vector<Cell> HealthcareColumn() {
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  storage::ContentStore content;
  healthcare::EhrSystem ehr(&store, &content, &clock);
  Must(ehr.RegisterPatient("pat"));
  Must(ehr.rbac()->AssignRole("doc", "doctor"));
  bool ownership = ehr.GrantConsent("pat", "doc", {"treatment"}).ok();
  auto rec = ehr.AddRecord("pat", "doc", "note", {"kw"});
  bool access_manager = rec.ok() &&
                        ehr.ReadRecord(rec.value(), "doc", "treatment").ok();
  bool hipaa = ehr.RevokeConsent("pat", "doc").ok() &&
               ehr.ReadRecord(rec.value(), "doc", "treatment")
                   .status()
                   .IsPermissionDenied();
  bool goals = ehr.ReadRecord(rec.value(), "doc", "treatment", true).ok();
  return {
      {"Determining data ownership (patient-centric)", ownership},
      {"Manager of access (consent + role gates)", access_manager},
      {"HIPAA-style purpose/consent enforcement", hipaa},
      {"Goals of collaborations (emergency break-glass)", goals},
  };
}

void PrintTable2() {
  std::printf("== Table 2: domain considerations, executed (reproduced) "
              "==\n\n");
  PrintColumn("Scientific Collaboration", ScientificColumn());
  PrintColumn("Digital Forensics", ForensicsColumn());
  PrintColumn("Machine Learning", MlColumn());
  PrintColumn("Supply Chain", SupplyChainColumn());
  PrintColumn("Healthcare Systems", HealthcareColumn());
}

void BM_DomainScenario(benchmark::State& state, int which) {
  for (auto _ : state) {
    switch (which) {
      case 0:
        benchmark::DoNotOptimize(ScientificColumn());
        break;
      case 1:
        benchmark::DoNotOptimize(ForensicsColumn());
        break;
      case 2:
        benchmark::DoNotOptimize(SupplyChainColumn());
        break;
      default:
        benchmark::DoNotOptimize(HealthcareColumn());
        break;
    }
  }
}
BENCHMARK_CAPTURE(BM_DomainScenario, scientific, 0);
BENCHMARK_CAPTURE(BM_DomainScenario, forensics, 1);
BENCHMARK_CAPTURE(BM_DomainScenario, supplychain, 2);
BENCHMARK_CAPTURE(BM_DomainScenario, healthcare, 3);

}  // namespace

int main(int argc, char** argv) {
  PrintTable2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
