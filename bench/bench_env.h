// Shared helpers for the BENCH_*.json writers so every bench reports the
// same environment fields and drops a metrics snapshot beside its JSON.
//
//   WriteEnvFields(f)          emits `hardware_threads` and `timestamp_utc`
//                              immediately after the opening `{` — the two
//                              fields a reader needs to judge whether two
//                              BENCH_*.json files are comparable.
//   WriteMetricsSidecar(path)  dumps obs::Registry::Default()'s Prometheus
//                              text exposition to `<path>.metrics.prom`,
//                              the per-run counter/latency snapshot that
//                              scripts/run_benches.sh collects next to each
//                              BENCH_*.json.
//
// Thread safety: call from the bench main thread after workers have joined;
// the registry itself is safe to read concurrently.

#ifndef PROVLEDGER_BENCH_BENCH_ENV_H_
#define PROVLEDGER_BENCH_BENCH_ENV_H_

#include <cstdio>
#include <ctime>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace provledger {
namespace bench {

/// std::thread::hardware_concurrency(), floored at 1 (the standard allows 0
/// when the count is unknowable; a zero in the JSON would read as "no CPU").
inline unsigned HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Wall-clock run stamp, ISO-8601 UTC ("2026-08-08T12:34:56Z").
inline std::string TimestampUtc() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  ::gmtime_r(&now, &utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buf;
}

/// Emits the shared environment fields. Call right after printing the
/// opening `{\n` so every BENCH_*.json leads with the same two keys.
inline void WriteEnvFields(std::FILE* f) {
  std::fprintf(f,
               "  \"hardware_threads\": %u,\n"
               "  \"timestamp_utc\": \"%s\",\n",
               HardwareThreads(), TimestampUtc().c_str());
}

/// Writes the default registry's text exposition to
/// `<json_path>.metrics.prom`. Failure to write the sidecar is reported but
/// never fails the bench — the JSON is the primary artifact.
inline void WriteMetricsSidecar(const std::string& json_path) {
  const std::string sidecar = json_path + ".metrics.prom";
  std::FILE* f = std::fopen(sidecar.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s (continuing)\n", sidecar.c_str());
    return;
  }
  const std::string text = obs::Registry::Default()->TextExposition();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("  wrote %s\n", sidecar.c_str());
}

}  // namespace bench
}  // namespace provledger

#endif  // PROVLEDGER_BENCH_BENCH_ENV_H_
