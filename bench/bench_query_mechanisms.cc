// §6.1 "Provenance Query" + RQ3 query mechanisms: cross-chain lineage
// queries, sequential-per-chain (the strawman SynergyChain improves on) vs
// Vassago's dependency-first parallel strategy. Expected shape: the
// dependency-first latency stays near-flat as chain count grows while
// sequential grows linearly — the latency-reduction claim of both papers.
// Also measures single-chain query primitives (point/history/lineage).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "crosschain/provquery.h"

#include "must.h"

namespace {

using namespace provledger;  // benchmark driver

struct Deployment {
  SimClock clock{0};
  crosschain::DependencyChain deps{&clock};
  std::vector<std::unique_ptr<ledger::Blockchain>> chains;
  std::vector<std::unique_ptr<prov::ProvenanceStore>> stores;
  std::unique_ptr<crosschain::CrossChainQueryEngine> engine;

  explicit Deployment(size_t num_chains, size_t relevant_chains,
                      size_t records_per_chain) {
    std::vector<crosschain::OrgChain> orgs;
    for (size_t i = 0; i < num_chains; ++i) {
      ledger::ChainOptions opts;
      opts.chain_id = "org-" + std::to_string(i);
      chains.push_back(std::make_unique<ledger::Blockchain>(opts));
      stores.push_back(std::make_unique<prov::ProvenanceStore>(
          chains.back().get(), &clock));
      if (i < relevant_chains) {
        for (size_t r = 0; r < records_per_chain; ++r) {
          prov::ProvenanceRecord rec;
          rec.record_id = "r-" + std::to_string(i) + "-" + std::to_string(r);
          rec.operation = "hop";
          rec.subject = "asset-1";
          rec.agent = opts.chain_id;
          rec.timestamp = static_cast<Timestamp>(r);
          Must(stores.back()->Anchor(rec));
        }
        Must(deps.RecordDependency("asset-1", opts.chain_id));
      }
      crosschain::OrgChain org;
      org.chain_id = opts.chain_id;
      org.chain = chains.back().get();
      org.store = stores.back().get();
      org.query_latency_us = 2000;
      orgs.push_back(org);
    }
    engine = std::make_unique<crosschain::CrossChainQueryEngine>(orgs, &deps,
                                                                 &clock);
  }
};

void PrintQueryComparison() {
  std::printf("== RQ3 query mechanisms: sequential vs dependency-first "
              "(Vassago) ==\n\n");
  std::printf("  %-7s %-9s %16s %16s %9s\n", "chains", "relevant",
              "sequential us", "dep-first us", "speedup");
  for (size_t chains : {2u, 4u, 6u, 8u}) {
    const size_t relevant = 2;
    Deployment seq_deploy(chains, relevant, 4);
    auto sequential = seq_deploy.engine->SequentialTrace("asset-1");
    Deployment dep_deploy(chains, relevant, 4);
    auto dependency = dep_deploy.engine->DependencyFirstTrace("asset-1");
    std::printf("  %-7zu %-9zu %16lld %16lld %8.1fx\n", chains, relevant,
                static_cast<long long>(sequential.latency_us),
                static_cast<long long>(dependency.latency_us),
                static_cast<double>(sequential.latency_us) /
                    static_cast<double>(dependency.latency_us));
  }
  std::printf("\n(records returned are identical and Merkle-verified in "
              "both strategies)\n\n");
}

void BM_SequentialTrace(benchmark::State& state) {
  Deployment deploy(static_cast<size_t>(state.range(0)), 2, 4);
  for (auto _ : state) {
    auto trace = deploy.engine->SequentialTrace("asset-1");
    benchmark::DoNotOptimize(trace);
  }
}
BENCHMARK(BM_SequentialTrace)->Arg(2)->Arg(8);

void BM_DependencyFirstTrace(benchmark::State& state) {
  Deployment deploy(static_cast<size_t>(state.range(0)), 2, 4);
  for (auto _ : state) {
    auto trace = deploy.engine->DependencyFirstTrace("asset-1");
    benchmark::DoNotOptimize(trace);
  }
}
BENCHMARK(BM_DependencyFirstTrace)->Arg(2)->Arg(8);

void BM_SingleChainSubjectHistory(benchmark::State& state) {
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  for (int i = 0; i < 256; ++i) {
    prov::ProvenanceRecord rec;
    rec.record_id = "r-" + std::to_string(i);
    rec.operation = "update";
    rec.subject = "doc-" + std::to_string(i % 16);
    rec.agent = "a";
    rec.timestamp = i;
    Must(store.Anchor(rec));
  }
  for (auto _ : state) {
    auto history = store.SubjectHistory("doc-3");
    benchmark::DoNotOptimize(history);
  }
}
BENCHMARK(BM_SingleChainSubjectHistory);

void BM_LineageQuery(benchmark::State& state) {
  // Chain of derivations depth N.
  const int depth = static_cast<int>(state.range(0));
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  for (int i = 0; i < depth; ++i) {
    prov::ProvenanceRecord rec;
    rec.record_id = "r-" + std::to_string(i);
    rec.operation = "derive";
    rec.subject = "e-" + std::to_string(i + 1);
    rec.agent = "a";
    rec.timestamp = i;
    if (i > 0) rec.inputs = {"e-" + std::to_string(i)};
    rec.outputs = {"e-" + std::to_string(i + 1)};
    Must(store.Anchor(rec));
  }
  for (auto _ : state) {
    auto lineage = store.Lineage("e-" + std::to_string(depth));
    benchmark::DoNotOptimize(lineage);
  }
  state.SetLabel("depth=" + std::to_string(depth));
}
BENCHMARK(BM_LineageQuery)->Arg(8)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  PrintQueryComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
