// §6.1 "storage performance overhead": full-on-chain payloads vs the
// hash-on-chain / bytes-off-chain (IPFS) pattern used by [33], HealthBlock,
// and Ahmed et al. Expected shape: on-chain bytes per record collapse to a
// near-constant with the off-chain pattern, at the price of one content-
// store indirection on retrieval.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.h"
#include "prov/store.h"
#include "storage/content_store.h"

#include "must.h"

namespace {

using namespace provledger;  // benchmark driver

void PrintOverheadTable() {
  std::printf("== Storage overhead: on-chain payloads vs hash-on-chain ==\n\n");
  std::printf("  %-12s %18s %18s %9s\n", "payload B", "on-chain B/rec",
              "hash-mode B/rec", "ratio");
  const int kRecords = 64;
  for (size_t payload : {64u, 256u, 1024u, 4096u, 16384u}) {
    Rng rng(7);
    // Mode A: payload embedded in the record fields (on-chain).
    ledger::Blockchain chain_a;
    SimClock clock_a(0);
    prov::ProvenanceStore store_a(&chain_a, &clock_a);
    size_t base_a = chain_a.ApproximateBytes();
    for (int i = 0; i < kRecords; ++i) {
      prov::ProvenanceRecord rec;
      rec.record_id = "a-" + std::to_string(i);
      rec.operation = "store";
      rec.subject = "obj-" + std::to_string(i);
      rec.agent = "u";
      rec.timestamp = i;
      rec.fields["data"] = BytesToString(rng.NextBytes(payload));
      Must(store_a.Anchor(rec));
    }
    double onchain =
        static_cast<double>(chain_a.ApproximateBytes() - base_a) / kRecords;

    // Mode B: payload in the content store, hash on chain.
    ledger::Blockchain chain_b;
    SimClock clock_b(0);
    prov::ProvenanceStore store_b(&chain_b, &clock_b);
    storage::ContentStore content;
    size_t base_b = chain_b.ApproximateBytes();
    for (int i = 0; i < kRecords; ++i) {
      prov::ProvenanceRecord rec;
      rec.record_id = "b-" + std::to_string(i);
      rec.operation = "store";
      rec.subject = "obj-" + std::to_string(i);
      rec.agent = "u";
      rec.timestamp = i;
      rec.payload_hash = content.Put(rng.NextBytes(payload));
      Must(store_b.Anchor(rec));
    }
    double hashed =
        static_cast<double>(chain_b.ApproximateBytes() - base_b) / kRecords;
    std::printf("  %-12zu %18.0f %18.0f %8.1fx\n", payload, onchain, hashed,
                onchain / hashed);
  }
  std::printf("\n");
}

void BM_AnchorOnChainPayload(benchmark::State& state) {
  const size_t payload = static_cast<size_t>(state.range(0));
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  Rng rng(3);
  uint64_t i = 0;
  for (auto _ : state) {
    prov::ProvenanceRecord rec;
    rec.record_id = "r-" + std::to_string(i++);
    rec.operation = "store";
    rec.subject = "o";
    rec.agent = "u";
    rec.fields["data"] = BytesToString(rng.NextBytes(payload));
    Status s = store.Anchor(rec);
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(static_cast<int64_t>(payload) * state.iterations());
}
BENCHMARK(BM_AnchorOnChainPayload)->Arg(256)->Arg(4096);

void BM_AnchorHashOnly(benchmark::State& state) {
  const size_t payload = static_cast<size_t>(state.range(0));
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  storage::ContentStore content;
  Rng rng(3);
  uint64_t i = 0;
  for (auto _ : state) {
    prov::ProvenanceRecord rec;
    rec.record_id = "r-" + std::to_string(i++);
    rec.operation = "store";
    rec.subject = "o";
    rec.agent = "u";
    rec.payload_hash = content.Put(rng.NextBytes(payload));
    Status s = store.Anchor(rec);
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(static_cast<int64_t>(payload) * state.iterations());
}
BENCHMARK(BM_AnchorHashOnly)->Arg(256)->Arg(4096);

void BM_RetrieveWithIndirection(benchmark::State& state) {
  storage::ContentStore content;
  Rng rng(3);
  std::vector<crypto::Digest> cids;
  for (int i = 0; i < 64; ++i) cids.push_back(content.Put(rng.NextBytes(4096)));
  size_t i = 0;
  for (auto _ : state) {
    auto blob = content.GetVerified(cids[i++ % cids.size()]);
    benchmark::DoNotOptimize(blob);
  }
}
BENCHMARK(BM_RetrieveWithIndirection);

}  // namespace

int main(int argc, char** argv) {
  PrintOverheadTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
