// Abort-on-error helpers for bench drivers.
//
// A bench that discards a failed setup or ingest Status silently measures
// a smaller workload than it reports — every number after the failure is
// fiction. Under the repo-wide [[nodiscard]] contract the discards are now
// compile errors; benches resolve them by treating any non-OK Status as
// fatal instead of justifying a discard.
//
// Thread safety: stateless free functions — safe from any thread.

#ifndef PROVLEDGER_BENCH_MUST_H_
#define PROVLEDGER_BENCH_MUST_H_

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

namespace provledger {

inline void Must(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench: fatal status: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
void Must(const Result<T>& result) {
  Must(result.status());
}

}  // namespace provledger

#endif  // PROVLEDGER_BENCH_MUST_H_
