// Reproduces Table 1 of the paper ("Provenance Record Fields"): the three
// domain schemas — product supply chain, digital forensics, scientific
// collaboration — as *measured* artifacts: each field column is populated
// by the record builders, records round-trip through the canonical codec,
// and we report encoded size and capture (anchor) throughput per schema.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "prov/store.h"

namespace {

using namespace provledger;  // benchmark driver

prov::ProvenanceRecord SampleRecord(prov::Domain domain, uint64_t i) {
  const std::string id = "rec-" + std::to_string(i);
  switch (domain) {
    case prov::Domain::kSupplyChain:
      return prov::MakeSupplyChainRecord(
          id, "transfer", "prod-" + std::to_string(i % 100), "dist-co", 1000,
          "batch-7", "2026-01/2028-01", "factory>dc>pharmacy", "vaccine",
          "mfg-42", "qr://prod");
    case prov::Domain::kForensics:
      return prov::MakeForensicsRecord(
          id, "collect", "ev-" + std::to_string(i % 100), "investigator-1",
          1000, "case-2026-07", "collection", "2026-06-01", "",
          "img,txt,log", "read:12,write:3,copy:1", "ev-prior");
    default:
      return prov::MakeScientificRecord(
          id, "execute", "task-" + std::to_string(i % 100), "lab-a", 1000,
          "wf-1", "412ms", "researcher-9", "dataset-17", "result-17", "");
  }
}

void PrintTable1() {
  std::printf("== Table 1: Provenance Record Fields (reproduced) ==\n\n");
  struct Column {
    const char* title;
    prov::Domain domain;
  };
  const Column columns[] = {
      {"Product Supply Chain", prov::Domain::kSupplyChain},
      {"Digital Forensics", prov::Domain::kForensics},
      {"Scientific Collaboration", prov::Domain::kScientific},
  };
  for (const auto& column : columns) {
    prov::ProvenanceRecord sample = SampleRecord(column.domain, 1);
    std::printf("%-26s (%zu required fields, %zu bytes encoded)\n",
                column.title, prov::RequiredFields(column.domain).size(),
                sample.Encode().size());
    for (const auto& field : prov::RequiredFields(column.domain)) {
      std::printf("    %-22s = %s\n", field.c_str(),
                  sample.fields.at(field).c_str());
    }
    std::printf("\n");
  }
}

void BM_EncodeRecord(benchmark::State& state) {
  auto domain = static_cast<prov::Domain>(state.range(0));
  prov::ProvenanceRecord rec = SampleRecord(domain, 7);
  size_t bytes = 0;
  for (auto _ : state) {
    Bytes enc = rec.Encode();
    bytes += enc.size();
    benchmark::DoNotOptimize(enc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  state.SetLabel(prov::DomainName(domain));
}
BENCHMARK(BM_EncodeRecord)
    ->Arg(static_cast<int>(prov::Domain::kSupplyChain))
    ->Arg(static_cast<int>(prov::Domain::kForensics))
    ->Arg(static_cast<int>(prov::Domain::kScientific));

void BM_DecodeRecord(benchmark::State& state) {
  auto domain = static_cast<prov::Domain>(state.range(0));
  Bytes enc = SampleRecord(domain, 7).Encode();
  for (auto _ : state) {
    auto rec = prov::ProvenanceRecord::Decode(enc);
    benchmark::DoNotOptimize(rec);
  }
  state.SetLabel(prov::DomainName(domain));
}
BENCHMARK(BM_DecodeRecord)
    ->Arg(static_cast<int>(prov::Domain::kSupplyChain))
    ->Arg(static_cast<int>(prov::Domain::kForensics))
    ->Arg(static_cast<int>(prov::Domain::kScientific));

void BM_AnchorRecord(benchmark::State& state) {
  auto domain = static_cast<prov::Domain>(state.range(0));
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  uint64_t i = 0;
  for (auto _ : state) {
    Status s = store.Anchor(SampleRecord(domain, i++));
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
  state.SetLabel(prov::DomainName(domain));
}
BENCHMARK(BM_AnchorRecord)
    ->Arg(static_cast<int>(prov::Domain::kSupplyChain))
    ->Arg(static_cast<int>(prov::Domain::kForensics))
    ->Arg(static_cast<int>(prov::Domain::kScientific));

}  // namespace

int main(int argc, char** argv) {
  PrintTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
