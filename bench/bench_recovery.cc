// Recovery benchmark for the durable storage subsystem: ingests a
// 100k-record workload into a ChainLog-backed chain, then compares the
// restart strategies —
//
//   cold:     reload the chain from the block log, then a full
//             RebuildFromChain() (decode + validate + re-hash + re-index
//             every anchored record);
//   clean:    LoadSnapshot() of the shutdown snapshot — bulk-deserialize
//             the dense-id graph and rec/ index, derived structures
//             hydrating lazily on first use; zero chain tail to replay;
//   crash:    LoadSnapshot() of an earlier (99%) snapshot plus replay of
//             the chain tail past its height — the path taken when the
//             process died after its last periodic snapshot.
//
// Also reports Merkle-root computations per appended block on the ingest
// path (the self-produce fast path must compute exactly one root per
// block), the post-restore first-query hydration costs, and the
// AuditAll() sweep.
//
// Emits BENCH_recovery.json. Usage: bench_recovery [json [100000]]

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_env.h"
#include "ledger/chain_log.h"
#include "prov/store.h"

namespace provledger {
namespace {

using BenchClock = std::chrono::steady_clock;

double ElapsedS(BenchClock::time_point t0) {
  return std::chrono::duration<double>(BenchClock::now() - t0).count();
}

// Same workload shape as bench_graph_scale: layered DAG with long
// derivation chains, 1k hot subjects, 64 agents.
std::vector<prov::ProvenanceRecord> MakeWorkload(size_t n) {
  std::vector<prov::ProvenanceRecord> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    prov::ProvenanceRecord rec;
    rec.record_id = "r" + std::to_string(i);
    rec.operation = "execute";
    rec.subject = "s" + std::to_string(i % 1000);
    rec.agent = "a" + std::to_string(i % 64);
    rec.timestamp = static_cast<Timestamp>(i * 16 + (i * 2654435761u) % 16);
    if (i > 0) rec.inputs.push_back("e" + std::to_string(i - 1));
    if (i % 7 == 0 && i > 1) rec.inputs.push_back("e" + std::to_string(i / 2));
    rec.outputs.push_back("e" + std::to_string(i));
    records.push_back(std::move(rec));
  }
  return records;
}

int Run(const std::string& json_path, size_t n) {
  if (n < 1000) {
    std::fprintf(stderr, "record count must be >= 1000 (got %zu)\n", n);
    return 1;
  }
  std::printf("== Durable restart: snapshot restore vs RebuildFromChain ==\n");
  std::printf("   records: %zu\n\n", n);

  std::string dir = "/tmp/provledger_bench_recovery_XXXXXX";
  if (::mkdtemp(dir.data()) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const std::string chain_log_path = dir + "/chain.log";
  const std::string crash_snapshot = dir + "/crash.snap";
  const std::string clean_snapshot = dir + "/shutdown.snap";

  std::vector<prov::ProvenanceRecord> workload = MakeWorkload(n);
  const size_t crash_snapshot_at = n - n / 100;  // tail = last 1% of records

  // ------------------------------------------------------------------ ingest
  SimClock clock(1'000'000);
  ledger::Blockchain chain;
  auto log = ledger::ChainLog::Open(chain_log_path, {/*sync_writes=*/false});
  if (!log.ok()) {
    std::fprintf(stderr, "ChainLog::Open: %s\n",
                 log.status().ToString().c_str());
    return 1;
  }
  if (!(*log)->AttachTo(&chain).ok()) return 1;

  prov::ProvenanceStoreOptions store_opts;
  store_opts.batch_size = 512;
  prov::ProvenanceStore store(&chain, &clock, store_opts);

  const uint64_t roots_before = ledger::Block::merkle_root_computes();
  double ingest_s = 0, crash_save_s = 0, clean_save_s = 0;
  auto t0 = BenchClock::now();
  for (size_t i = 0; i < n; ++i) {
    if (i == crash_snapshot_at) {
      // The periodic snapshot a long-lived node would take mid-flight.
      ingest_s += ElapsedS(t0);
      if (!store.Flush().ok()) return 1;  // snapshot covers anchored state
      auto ts = BenchClock::now();
      if (!store.SaveSnapshot(crash_snapshot).ok()) {
        std::fprintf(stderr, "SaveSnapshot failed\n");
        return 1;
      }
      crash_save_s = ElapsedS(ts);
      t0 = BenchClock::now();
    }
    if (!store.Anchor(workload[i]).ok()) {
      std::fprintf(stderr, "anchor failed at %zu\n", i);
      return 1;
    }
  }
  if (!store.Flush().ok() || !(*log)->Sync().ok()) return 1;
  ingest_s += ElapsedS(t0);
  // The shutdown snapshot of a clean exit: taken at the final height.
  t0 = BenchClock::now();
  if (!store.SaveSnapshot(clean_snapshot).ok()) return 1;
  clean_save_s = ElapsedS(t0);

  const uint64_t blocks = chain.height();
  const double roots_per_block =
      static_cast<double>(ledger::Block::merkle_root_computes() -
                          roots_before) /
      static_cast<double>(blocks);
  const uint64_t tail_blocks = blocks - (crash_snapshot_at + 511) / 512;
  std::printf("  ingest: %.0f rec/s over %llu blocks, %.2f merkle roots/block"
              " (fixed from 2.00)\n",
              n / ingest_s, static_cast<unsigned long long>(blocks),
              roots_per_block);
  std::printf("  chain log: %.1f MB; snapshots: crash %.3f s, clean %.3f s\n",
              (*log)->size_bytes() / 1e6, crash_save_s, clean_save_s);

  // ----------------------------------------------------------- chain reload
  ledger::Blockchain cold_chain;
  auto reopened = ledger::ChainLog::Open(chain_log_path,
                                         {/*sync_writes=*/false});
  if (!reopened.ok()) return 1;
  t0 = BenchClock::now();
  if (!(*reopened)->Replay(&cold_chain).ok()) {
    std::fprintf(stderr, "chain replay failed\n");
    return 1;
  }
  double chain_reload_s = ElapsedS(t0);
  std::printf("  chain reload (validated): %.3f s (%.0f blocks/s)\n",
              chain_reload_s, blocks / chain_reload_s);

  // ------------------------------------------------------------ cold rebuild
  prov::ProvenanceStore rebuilt(&cold_chain, &clock, store_opts);
  t0 = BenchClock::now();
  if (!rebuilt.RebuildFromChain().ok()) {
    std::fprintf(stderr, "RebuildFromChain failed\n");
    return 1;
  }
  double rebuild_s = ElapsedS(t0);

  // --------------------------------------------- snapshot restore (clean)
  prov::ProvenanceStore restored(&cold_chain, &clock, store_opts);
  t0 = BenchClock::now();
  if (!restored.LoadSnapshot(clean_snapshot).ok()) {
    std::fprintf(stderr, "LoadSnapshot (clean) failed\n");
    return 1;
  }
  double clean_restore_s = ElapsedS(t0);
  // First queries pay the deferred hydration, exactly once — report it.
  t0 = BenchClock::now();
  size_t first_hits = restored.SubjectHistory("s1").size();
  double first_subject_s = ElapsedS(t0);
  t0 = BenchClock::now();
  size_t lineage_n = restored.Lineage("e" + std::to_string(n - 1)).size();
  double first_lineage_s = ElapsedS(t0);
  t0 = BenchClock::now();
  size_t hits = restored.SubjectHistory("s2").size();
  double warm_subject_s = ElapsedS(t0);
  if (first_hits == 0 || lineage_n == 0 || hits == 0) return 1;

  // --------------------------------------- snapshot restore (crash + tail)
  prov::ProvenanceStore crash_restored(&cold_chain, &clock, store_opts);
  t0 = BenchClock::now();
  if (!crash_restored.LoadSnapshot(crash_snapshot).ok()) {
    std::fprintf(stderr, "LoadSnapshot (crash) failed\n");
    return 1;
  }
  double crash_restore_s = ElapsedS(t0);

  if (rebuilt.anchored_count() != n || restored.anchored_count() != n ||
      crash_restored.anchored_count() != n) {
    std::fprintf(stderr, "restore mismatch: rebuild %zu, clean %zu, crash %zu\n",
                 rebuilt.anchored_count(), restored.anchored_count(),
                 crash_restored.anchored_count());
    return 1;
  }
  double speedup = rebuild_s / clean_restore_s;
  double crash_speedup = rebuild_s / crash_restore_s;
  std::printf("  RebuildFromChain:        %8.3f s\n", rebuild_s);
  std::printf("  snapshot restore (clean):%8.3f s  (%.1fx)\n",
              clean_restore_s, speedup);
  std::printf("  snapshot + %4llu-rec tail:%7.3f s  (%.1fx)\n",
              static_cast<unsigned long long>(n / 100), crash_restore_s,
              crash_speedup);
  std::printf("  first-query hydration: subject %.4f s, lineage %.4f s, "
              "then %.6f s warm\n",
              first_subject_s, first_lineage_s, warm_subject_s);

  // ------------------------------------------------------------------ audit
  t0 = BenchClock::now();
  auto audit = restored.AuditAll();
  double audit_s = ElapsedS(t0);
  if (!audit.ok() || audit.value() != n) {
    std::fprintf(stderr, "post-restore audit failed\n");
    return 1;
  }
  std::printf("  AuditAll after restore: %zu records verified in %.3f s\n",
              audit.value(), audit_s);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  bench::WriteEnvFields(f);
  std::fprintf(
      f,
      "  \"bench\": \"bench_recovery\",\n"
      "  \"records\": %zu,\n"
      "  \"ingest\": {\n"
      "    \"records_per_sec\": %.0f,\n"
      "    \"blocks\": %llu,\n"
      "    \"merkle_root_computes_per_block\": %.2f\n"
      "  },\n"
      "  \"chain_reload\": {\"seconds\": %.4f, \"blocks_per_sec\": %.0f},\n"
      "  \"restore\": {\n"
      "    \"rebuild_from_chain_s\": %.4f,\n"
      "    \"snapshot_restore_s\": %.4f,\n"
      "    \"speedup\": %.2f,\n"
      "    \"crash_restore_s\": %.4f,\n"
      "    \"crash_tail_blocks\": %llu,\n"
      "    \"crash_speedup\": %.2f,\n"
      "    \"snapshot_save_s\": %.4f,\n"
      "    \"first_query_hydration_s\": %.4f,\n"
      "    \"warm_query_s\": %.6f\n"
      "  },\n"
      "  \"audit\": {\"records_verified\": %zu, \"seconds\": %.4f}\n"
      "}\n",
      n, n / ingest_s, static_cast<unsigned long long>(blocks),
      roots_per_block, chain_reload_s, blocks / chain_reload_s, rebuild_s,
      clean_restore_s, speedup, crash_restore_s,
      static_cast<unsigned long long>(tail_blocks), crash_speedup,
      clean_save_s, first_subject_s, warm_subject_s, audit.value(), audit_s);
  std::fclose(f);
  std::printf("\n  wrote %s\n", json_path.c_str());
  bench::WriteMetricsSidecar(json_path);

  ::unlink(chain_log_path.c_str());
  ::unlink(crash_snapshot.c_str());
  ::unlink(clean_snapshot.c_str());
  ::rmdir(dir.c_str());
  return 0;
}

}  // namespace
}  // namespace provledger

int main(int argc, char** argv) {
  std::string json_path = argc > 1 ? argv[1] : "BENCH_recovery.json";
  size_t n = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 100000;
  return provledger::Run(json_path, n);
}
