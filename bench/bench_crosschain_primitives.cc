// RQ3 cross-chain primitives (§2.3 taxonomy): HTLC atomic swaps (happy and
// abort paths — the abort must refund completely), notary m-of-n
// attestation cost vs committee size, relay header sync + SPV verification,
// and the pegged-sidechain deposit/checkpoint/withdraw loop.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "crosschain/htlc.h"
#include "crosschain/relay.h"
#include "crosschain/sidechain.h"

#include "must.h"

namespace {

using namespace provledger;  // benchmark driver

void PrintPrimitiveTable() {
  std::printf("== Cross-chain primitives (simulated) ==\n\n");

  // Atomic swaps: happy + abort, checking conservation each time.
  {
    const int kSwaps = 20;
    SimClock clock(1'000'000);
    crosschain::AssetLedger a("chain-a", &clock), b("chain-b", &clock);
    Must(a.Mint("alice", 10'000));
    Must(b.Mint("bob", 10'000));
    crosschain::AtomicSwap swap(&a, &b, &clock);
    int completed = 0, aborted_clean = 0;
    for (int i = 0; i < kSwaps; ++i) {
      auto outcome = swap.Execute("alice", "bob", 10, 5,
                                  ToBytes("s" + std::to_string(i)));
      if (outcome.ok() && outcome->completed) ++completed;
    }
    for (int i = 0; i < kSwaps; ++i) {
      uint64_t before = a.BalanceOf("alice").value();
      auto outcome = swap.ExecuteWithBobAbort(
          "alice", "bob", 10, 5, ToBytes("x" + std::to_string(i)));
      if (outcome.ok() && outcome->refunded &&
          a.BalanceOf("alice").value() == before) {
        ++aborted_clean;
      }
    }
    std::printf("  HTLC swaps: %d/%d completed, %d/%d aborts fully "
                "refunded (atomicity: no half-states)\n",
                completed, kSwaps, aborted_clean, kSwaps);
  }

  // Notary attestation cost vs committee size.
  std::printf("\n  %-22s %12s %12s\n", "notary committee", "attest ms",
              "verify ms");
  for (uint32_t size : {3u, 5u, 9u, 15u}) {
    crosschain::NotaryCommittee committee("bench", size, size * 2 / 3 + 1);
    Bytes statement = ToBytes("state root 0xabc at height 77");
    auto t0 = std::chrono::steady_clock::now();
    auto attestation = committee.Attest(statement);
    auto t1 = std::chrono::steady_clock::now();
    bool ok = committee.Verify(attestation);
    auto t2 = std::chrono::steady_clock::now();
    std::printf("  m=%-3u n=%-14u %12.2f %12.2f %s\n",
                committee.threshold(), size,
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                std::chrono::duration<double, std::milli>(t2 - t1).count(),
                ok ? "" : "(FAILED)");
  }

  // Relay: sync N headers, verify one foreign tx.
  {
    SimClock clock(0);
    crosschain::RelayChain relay(&clock);
    ledger::Blockchain source(ledger::ChainOptions{.chain_id = "src"});
    Must(relay.RegisterChain("src", source.GetHeader(0).value()));
    std::vector<ledger::Transaction> txs;
    for (int i = 0; i < 64; ++i) {
      auto tx = ledger::Transaction::MakeSystem(
          "t", "c", ToBytes("p" + std::to_string(i)), 1000 + i, i);
      txs.push_back(tx);
      Must(source.Append({tx}, 1000 + i, "src"));
      Must(relay.SubmitHeader(
          "src", source.GetHeader(source.height()).value()));
    }
    auto proof = source.ProveTransaction(txs[32].Id());
    bool verified = relay
                        .VerifyForeignTransaction("src", txs[32].Encode(),
                                                  proof.value())
                        .ok();
    std::printf("\n  relay: %zu headers synced; SPV verification of a "
                "foreign tx: %s\n",
                relay.relayed_header_count(), verified ? "OK" : "FAILED");
  }

  // Sidechain peg round trip.
  {
    SimClock clock(0);
    crosschain::PeggedSidechain peg(&clock);
    peg.FundMain("alice", 1000);
    Must(peg.Deposit("alice", 500));
    for (int i = 0; i < 50; ++i) {
      Must(peg.SideTransfer("alice", "bob", 5));
    }
    auto burn = peg.WithdrawInitiate("bob", 200);
    Must(peg.Checkpoint());
    bool withdrawn = peg.WithdrawComplete("bob", burn.value()).ok();
    std::printf("  sidechain: 50 side transfers, checkpointed height %llu, "
                "withdrawal via burn proof: %s\n\n",
                static_cast<unsigned long long>(peg.checkpointed_height()),
                withdrawn ? "OK" : "FAILED");
  }
}

void BM_HtlcSwap(benchmark::State& state) {
  SimClock clock(1'000'000);
  crosschain::AssetLedger a("chain-a", &clock), b("chain-b", &clock);
  Must(a.Mint("alice", 100'000'000));
  Must(b.Mint("bob", 100'000'000));
  crosschain::AtomicSwap swap(&a, &b, &clock);
  uint64_t i = 0;
  for (auto _ : state) {
    auto outcome =
        swap.Execute("alice", "bob", 1, 1, ToBytes("s" + std::to_string(i++)));
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_HtlcSwap);

void BM_NotaryAttest(benchmark::State& state) {
  crosschain::NotaryCommittee committee(
      "bench", static_cast<uint32_t>(state.range(0)),
      static_cast<uint32_t>(state.range(0)) * 2 / 3 + 1);
  Bytes statement = ToBytes("statement");
  for (auto _ : state) {
    auto attestation = committee.Attest(statement);
    benchmark::DoNotOptimize(attestation);
  }
}
BENCHMARK(BM_NotaryAttest)->Arg(3)->Arg(9);

void BM_NotaryVerify(benchmark::State& state) {
  crosschain::NotaryCommittee committee(
      "bench", static_cast<uint32_t>(state.range(0)),
      static_cast<uint32_t>(state.range(0)) * 2 / 3 + 1);
  auto attestation = committee.Attest(ToBytes("statement"));
  for (auto _ : state) {
    bool ok = committee.Verify(attestation);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_NotaryVerify)->Arg(3)->Arg(9);

void BM_RelayVerifyForeignTx(benchmark::State& state) {
  SimClock clock(0);
  crosschain::RelayChain relay(&clock);
  ledger::Blockchain source(ledger::ChainOptions{.chain_id = "src"});
  Must(relay.RegisterChain("src", source.GetHeader(0).value()));
  auto tx = ledger::Transaction::MakeSystem("t", "c", ToBytes("p"), 1000, 1);
  Must(source.Append({tx}, 1000, "src"));
  Must(relay.SubmitHeader("src", source.GetHeader(1).value()));
  auto proof = source.ProveTransaction(tx.Id()).value();
  Bytes encoding = tx.Encode();
  for (auto _ : state) {
    Status s = relay.VerifyForeignTransaction("src", encoding, proof);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_RelayVerifyForeignTx);

}  // namespace

int main(int argc, char** argv) {
  PrintPrimitiveTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
