// Reproduces Figure 1 (interrelation of the research questions) as a
// layered end-to-end pipeline: RQ1 single-entity capture feeds an RQ2
// collaborative workflow on the same chain, whose outputs are then traced
// across organizations in an RQ3 cross-chain query. Reports the cost each
// layer adds — the paper's point that the RQs build on one another.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "cloud/cloud_store.h"
#include "crosschain/provquery.h"
#include "domains/scientific/workflow.h"

#include "must.h"

namespace {

using namespace provledger;  // benchmark driver

void PrintPipeline() {
  std::printf("== Figure 1: RQ1 -> RQ2 -> RQ3 pipeline (reproduced) ==\n\n");
  SimClock clock(0);

  // --- RQ1: a single researcher's cloud files, provenance-hooked ----------
  ledger::Blockchain org_a_chain(ledger::ChainOptions{.chain_id = "org-a"});
  prov::ProvenanceStore org_a_store(&org_a_chain, &clock);
  storage::ContentStore content;
  cloud::CloudStore cloud(&org_a_store, &content, &clock);
  Timestamp t0 = clock.NowMicros();
  Must(cloud.CreateFile("alice", "raw-data.csv", ToBytes("sensor dump")));
  Must(cloud.UpdateFile("alice", "raw-data.csv", ToBytes("sensor dump v2")));
  Must(cloud.ShareFile("alice", "raw-data.csv", "lab"));
  clock.Advance(300);
  Timestamp t1 = clock.NowMicros();
  std::printf("  RQ1  single-entity capture   : %3zu records  (sim %lld us)\n",
              org_a_store.anchored_count(),
              static_cast<long long>(t1 - t0));

  // --- RQ2: a collaborative workflow consumes the file --------------------
  scientific::WorkflowManager wm(&org_a_store, &clock);
  Must(wm.CreateWorkflow("analysis", "lab"));
  Must(wm.AddTask("analysis", "clean", "clean"));
  Must(wm.AddTask("analysis", "model", "fit", {"clean"}));
  Must(wm.ExecuteAll("analysis", "lab"));
  clock.Advance(500);
  Timestamp t2 = clock.NowMicros();
  std::printf("  RQ2  intra-chain collaboration: %3zu records  (sim %lld us)\n",
              org_a_store.anchored_count(),
              static_cast<long long>(t2 - t1));

  // --- RQ3: a partner org holds downstream records; trace across chains ---
  ledger::Blockchain org_b_chain(ledger::ChainOptions{.chain_id = "org-b"});
  prov::ProvenanceStore org_b_store(&org_b_chain, &clock);
  prov::ProvenanceRecord downstream;
  downstream.record_id = "b-publish";
  downstream.operation = "publish";
  downstream.subject = "model";  // org-b re-publishes org-a's model task
  downstream.agent = "org-b";
  downstream.timestamp = clock.NowMicros();
  Must(org_b_store.Anchor(downstream));

  crosschain::DependencyChain deps(&clock);
  Must(deps.RecordDependency("model", "org-a"));
  Must(deps.RecordDependency("model", "org-b"));

  std::vector<crosschain::OrgChain> orgs;
  orgs.push_back({"org-a", &org_a_chain, &org_a_store, 2000});
  orgs.push_back({"org-b", &org_b_chain, &org_b_store, 2000});
  crosschain::CrossChainQueryEngine engine(orgs, &deps, &clock);
  auto trace = engine.DependencyFirstTrace("model");
  std::printf("  RQ3  cross-chain trace        : %3zu records  (sim %lld us,"
              " %zu chains)\n",
              trace.records.size(),
              static_cast<long long>(trace.latency_us),
              trace.chains_contacted);

  bool all_verified = true;
  for (const auto& rec : trace.records) all_verified &= rec.verified;
  std::printf("\n  every cross-chain record Merkle-verified: %s\n\n",
              all_verified ? "yes" : "NO");
}

void BM_FullPipeline(benchmark::State& state) {
  for (auto _ : state) {
    SimClock clock(0);
    ledger::Blockchain chain(ledger::ChainOptions{.chain_id = "org-a"});
    prov::ProvenanceStore store(&chain, &clock);
    storage::ContentStore content;
    cloud::CloudStore cloud(&store, &content, &clock);
    Must(cloud.CreateFile("alice", "f", ToBytes("x")));
    scientific::WorkflowManager wm(&store, &clock);
    Must(wm.CreateWorkflow("wf", "lab"));
    Must(wm.AddTask("wf", "t", "op"));
    Must(wm.ExecuteAll("wf", "lab"));
    benchmark::DoNotOptimize(store.anchored_count());
  }
}
BENCHMARK(BM_FullPipeline);

}  // namespace

int main(int argc, char** argv) {
  PrintPipeline();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
