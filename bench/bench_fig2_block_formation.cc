// Reproduces Figure 2 (block/chain structure) as measurements: block
// formation and validation cost vs transactions per block, chain
// verification vs length, and the immutability sweep — mutate block k of a
// 64-block chain and confirm detection at every k (the hash-chain property
// the paper's Figure 2 illustrates).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "ledger/chain.h"

#include "must.h"

namespace {

using namespace provledger;  // benchmark driver

std::vector<ledger::Transaction> MakeTxs(size_t n, uint64_t salt) {
  std::vector<ledger::Transaction> txs;
  txs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    txs.push_back(ledger::Transaction::MakeSystem(
        "data", "bench", ToBytes("payload-" + std::to_string(salt * 100000 + i)),
        1000, salt * 100000 + i));
  }
  return txs;
}

void PrintTamperSweep() {
  std::printf("== Figure 2: hash-chained blocks — tamper-evidence sweep ==\n");
  std::printf("(mutate one tx in block k of a 64-block chain; VerifyIntegrity"
              " must fail for every k)\n\n");
  const int kBlocks = 64;
  int detected = 0;
  for (int k = 1; k <= kBlocks; ++k) {
    ledger::Blockchain chain;
    for (int b = 1; b <= kBlocks; ++b) {
      Must(chain.Append(MakeTxs(4, static_cast<uint64_t>(b)), 1000 + b,
                         "node"));
    }
    Must(chain.TamperForTesting(static_cast<uint64_t>(k), 0, 0xFF));
    if (chain.VerifyIntegrity().IsCorruption()) ++detected;
  }
  std::printf("  tampered heights tested : %d\n", kBlocks);
  std::printf("  tampering detected      : %d (%.1f%%)\n\n", detected,
              100.0 * detected / kBlocks);
}

void BM_BlockFormation(benchmark::State& state) {
  const size_t txs_per_block = static_cast<size_t>(state.range(0));
  uint64_t salt = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto txs = MakeTxs(txs_per_block, salt++);
    state.ResumeTiming();
    ledger::Block block =
        ledger::Block::Make(1, crypto::ZeroDigest(), std::move(txs), 1000, "n");
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(txs_per_block));
}
BENCHMARK(BM_BlockFormation)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BlockValidationAppend(benchmark::State& state) {
  const size_t txs_per_block = static_cast<size_t>(state.range(0));
  ledger::Blockchain chain;
  uint64_t salt = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto txs = MakeTxs(txs_per_block, salt++);
    state.ResumeTiming();
    auto hash = chain.Append(std::move(txs), 1000 + static_cast<int64_t>(salt),
                             "node");
    benchmark::DoNotOptimize(hash);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(txs_per_block));
}
BENCHMARK(BM_BlockValidationAppend)->Arg(16)->Arg(256)->Arg(1024);

void BM_ChainVerifyIntegrity(benchmark::State& state) {
  const size_t blocks = static_cast<size_t>(state.range(0));
  ledger::Blockchain chain;
  for (size_t b = 1; b <= blocks; ++b) {
    Must(chain.Append(MakeTxs(8, b), 1000 + static_cast<int64_t>(b), "n"));
  }
  for (auto _ : state) {
    Status s = chain.VerifyIntegrity();
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(blocks));
}
BENCHMARK(BM_ChainVerifyIntegrity)->Arg(16)->Arg(64)->Arg(256);

void BM_TxInclusionProof(benchmark::State& state) {
  const size_t txs_per_block = static_cast<size_t>(state.range(0));
  ledger::Blockchain chain;
  auto txs = MakeTxs(txs_per_block, 1);
  Must(chain.Append(txs, 1000, "n"));
  for (auto _ : state) {
    auto proof = chain.ProveTransaction(txs[txs_per_block / 2].Id());
    benchmark::DoNotOptimize(proof);
  }
}
BENCHMARK(BM_TxInclusionProof)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  PrintTamperSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
