// Audit-subsystem benchmark: the two costs ISSUE 9 adds to a node —
//
//   lineage proofs: BuildLineageProof over ancestry chains of increasing
//       depth (16 .. 1024 ancestors), reporting proof size in bytes and
//       build/verify latency. Verification runs against the header oracle
//       alone, exactly what a storeless light client pays per proof.
//
//   continuous audit: a background ContinuousAuditor racing a live
//       IngestPipeline over the same chain/store, reporting auditor
//       records/s and how far behind the head it sits when ingest stops
//       (it must converge to the head with zero findings).
//
// Emits BENCH_audit.json. Usage: bench_audit [json [records]]

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "audit/auditor.h"
#include "audit/lineage_proof.h"
#include "bench_env.h"
#include "must.h"
#include "prov/ingest_pipeline.h"
#include "prov/store.h"

namespace provledger {
namespace {

using BenchClock = std::chrono::steady_clock;

double ElapsedS(BenchClock::time_point t0) {
  return std::chrono::duration<double>(BenchClock::now() - t0).count();
}

// Same layered-DAG shape as bench_recovery: each record consumes the
// previous record's output (a maximal ancestry chain) plus a mid-chain
// entity every 7th record, so proof depth == record index.
std::vector<prov::ProvenanceRecord> MakeWorkload(size_t n) {
  std::vector<prov::ProvenanceRecord> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    prov::ProvenanceRecord rec;
    rec.record_id = "r" + std::to_string(i);
    rec.operation = "execute";
    rec.subject = "s" + std::to_string(i % 1000);
    rec.agent = "a" + std::to_string(i % 64);
    rec.timestamp = static_cast<Timestamp>(i * 16 + (i * 2654435761u) % 16);
    if (i > 0) rec.inputs.push_back("e" + std::to_string(i - 1));
    if (i % 7 == 0 && i > 1) rec.inputs.push_back("e" + std::to_string(i / 2));
    rec.outputs.push_back("e" + std::to_string(i));
    records.push_back(std::move(rec));
  }
  return records;
}

struct ProofPoint {
  size_t depth = 0;
  size_t nodes = 0;
  size_t headers = 0;
  size_t bytes = 0;
  double build_ms = 0;
  double verify_ms = 0;
};

int Run(const std::string& json_path, size_t n) {
  if (n < 2048) {
    std::fprintf(stderr, "record count must be >= 2048 (got %zu)\n", n);
    return 1;
  }
  std::printf("== Lineage proofs + continuous audit under live ingest ==\n");
  std::printf("   records: %zu\n\n", n);

  // ---------------------------------------------------- lineage proofs
  SimClock clock(1'000'000);
  ledger::Blockchain chain;
  prov::ProvenanceStoreOptions store_opts;
  store_opts.batch_size = 64;  // multi-leaf trees -> real Merkle paths
  prov::ProvenanceStore store(&chain, &clock, store_opts);
  std::vector<prov::ProvenanceRecord> workload = MakeWorkload(n);

  auto t0 = BenchClock::now();
  for (const auto& rec : workload) Must(store.Anchor(rec));
  Must(store.Flush());
  double ingest_s = ElapsedS(t0);
  std::printf("  ingest: %.0f rec/s over %llu blocks\n", n / ingest_s,
              static_cast<unsigned long long>(chain.height()));

  audit::HeaderHashAt oracle = [&chain](uint64_t height) {
    return chain.BlockHashAt(height);
  };

  std::vector<ProofPoint> points;
  for (size_t depth : {size_t{16}, size_t{64}, size_t{256}, size_t{1024}}) {
    ProofPoint p;
    p.depth = depth;
    const std::string target = "r" + std::to_string(depth);
    t0 = BenchClock::now();
    auto proof = audit::BuildLineageProof(store, target);
    p.build_ms = ElapsedS(t0) * 1e3;
    Must(proof);
    Bytes encoded = proof.value().Encode();
    p.nodes = proof.value().nodes.size();
    p.headers = proof.value().headers.size();
    p.bytes = encoded.size();
    // Decode + verify, the full light-client path on received bytes.
    t0 = BenchClock::now();
    auto decoded = audit::LineageProof::Decode(encoded);
    Must(decoded);
    audit::LineageSummary summary;
    Must(audit::VerifyLineageProof(decoded.value(), target, oracle, &summary));
    p.verify_ms = ElapsedS(t0) * 1e3;
    if (summary.record_ids.size() != p.nodes) {
      std::fprintf(stderr, "verify summary disagrees with proof\n");
      return 1;
    }
    std::printf("  proof depth %4zu: %5zu nodes, %4zu headers, %8zu bytes, "
                "build %7.2f ms, verify %7.2f ms\n",
                p.depth, p.nodes, p.headers, p.bytes, p.build_ms, p.verify_ms);
    points.push_back(p);
  }

  // -------------------------------- continuous audit vs live ingest
  SystemClock live_clock;
  ledger::Blockchain live_chain;
  prov::ProvenanceStoreOptions live_opts;
  live_opts.batch_size = 64;
  prov::ProvenanceStore live_store(&live_chain, &live_clock, live_opts);

  audit::ContinuousAuditorOptions audit_opts;
  audit_opts.max_blocks_per_pass = 32;
  audit_opts.pass_interval_us = 100;
  audit::ContinuousAuditor auditor(&live_chain, &live_store, audit_opts);
  auditor.Start();

  prov::IngestPipelineOptions pipe_opts;
  pipe_opts.shards = 2;
  pipe_opts.batch_size = 64;
  pipe_opts.snapshot_every_batches = 4;
  pipe_opts.publish_on_flush = true;
  double live_ingest_s = 0;
  {
    prov::IngestPipeline pipeline(&live_store, pipe_opts);
    t0 = BenchClock::now();
    for (auto& rec : workload) Must(pipeline.Submit(std::move(rec)));
    Must(pipeline.Close());
    live_ingest_s = ElapsedS(t0);
  }
  const uint64_t lag_at_close =
      live_chain.height() - auditor.audited_height();
  // Drain: keep passing until the cursor reaches the final head.
  t0 = BenchClock::now();
  while (auditor.audited_height() < live_chain.height()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  double drain_s = ElapsedS(t0);
  auditor.Stop();

  const uint64_t audited_records = auditor.records_audited();
  const double auditor_total_s = live_ingest_s + drain_s;
  const double auditor_rec_s = audited_records / auditor_total_s;
  if (auditor.findings_total() != 0) {
    std::fprintf(stderr, "auditor reported findings on a clean workload\n");
    return 1;
  }
  std::printf("\n  concurrent ingest: %.0f rec/s; auditor: %.0f rec/s, "
              "%llu blocks, lag at close %llu blocks, drain %.3f s, "
              "0 findings\n",
              n / live_ingest_s, auditor_rec_s,
              static_cast<unsigned long long>(auditor.blocks_audited()),
              static_cast<unsigned long long>(lag_at_close), drain_s);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  bench::WriteEnvFields(f);
  std::fprintf(f,
               "  \"bench\": \"bench_audit\",\n"
               "  \"records\": %zu,\n"
               "  \"lineage_proofs\": [\n",
               n);
  for (size_t i = 0; i < points.size(); ++i) {
    const ProofPoint& p = points[i];
    std::fprintf(f,
                 "    {\"depth\": %zu, \"nodes\": %zu, \"headers\": %zu, "
                 "\"proof_bytes\": %zu, \"build_ms\": %.3f, "
                 "\"verify_ms\": %.3f}%s\n",
                 p.depth, p.nodes, p.headers, p.bytes, p.build_ms,
                 p.verify_ms, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(
      f,
      "  ],\n"
      "  \"continuous_audit\": {\n"
      "    \"ingest_records_per_sec\": %.0f,\n"
      "    \"auditor_records_per_sec\": %.0f,\n"
      "    \"blocks_audited\": %llu,\n"
      "    \"lag_blocks_at_ingest_close\": %llu,\n"
      "    \"drain_seconds\": %.4f,\n"
      "    \"findings\": %llu\n"
      "  }\n"
      "}\n",
      n / live_ingest_s, auditor_rec_s,
      static_cast<unsigned long long>(auditor.blocks_audited()),
      static_cast<unsigned long long>(lag_at_close), drain_s,
      static_cast<unsigned long long>(auditor.findings_total()));
  std::fclose(f);
  std::printf("\n  wrote %s\n", json_path.c_str());
  bench::WriteMetricsSidecar(json_path);
  return 0;
}

}  // namespace
}  // namespace provledger

int main(int argc, char** argv) {
  std::string json_path = argc > 1 ? argv[1] : "BENCH_audit.json";
  size_t n = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 20000;
  return provledger::Run(json_path, n);
}
