// §6.1 "Access Control" axis: policy-evaluation throughput for RBAC vs
// ABAC vs LedgerView views vs ForensiBlock stage gates, plus revocation
// propagation cost. Expected shape: RBAC cheapest; ABAC scales with rule
// count; views add a per-view membership + filter pass; revocation is a
// constant-time mutation whose effect is immediate.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "access/abac.h"
#include "access/rbac.h"
#include "access/stage_gate.h"
#include "access/views.h"

#include "must.h"

namespace {

using namespace provledger;  // benchmark driver

access::RbacPolicy MakeRbac(size_t principals) {
  access::RbacPolicy rbac;
  for (const char* role : {"doctor", "nurse", "auditor", "admin"}) {
    rbac.DefineRole(role);
    Must(rbac.GrantPermission(role, "read"));
  }
  Must(rbac.GrantPermission("admin", "write"));
  for (size_t i = 0; i < principals; ++i) {
    Must(rbac.AssignRole("user-" + std::to_string(i),
                          i % 2 ? "doctor" : "nurse"));
  }
  return rbac;
}

access::AbacPolicy MakeAbac(size_t rules) {
  access::AbacPolicy policy;
  for (size_t i = 0; i < rules; ++i) {
    access::AbacRule rule;
    rule.id = "rule-" + std::to_string(i);
    rule.action = "read";
    rule.conditions.push_back({access::AbacCondition::Scope::kSubject, "dept",
                               access::AbacCondition::Op::kEquals,
                               "dept-" + std::to_string(i)});
    policy.AddRule(rule);
  }
  return policy;
}

void PrintAccessTable() {
  std::printf("== Access-control mechanisms (1e5 checks each) ==\n\n");
  const int kChecks = 100'000;

  {
    auto rbac = MakeRbac(100);
    auto t0 = std::chrono::steady_clock::now();
    int allowed = 0;
    for (int i = 0; i < kChecks; ++i) {
      allowed += rbac.Check("user-" + std::to_string(i % 100), "read");
    }
    auto t1 = std::chrono::steady_clock::now();
    std::printf("  %-22s %10.1f ns/check (allowed %d)\n", "RBAC",
                std::chrono::duration<double, std::nano>(t1 - t0).count() /
                    kChecks,
                allowed);
  }
  for (size_t rules : {8u, 64u}) {
    auto abac = MakeAbac(rules);
    access::Attributes subject = {{"dept", "dept-3"}};
    auto t0 = std::chrono::steady_clock::now();
    int allowed = 0;
    for (int i = 0; i < kChecks; ++i) {
      allowed += abac.Check(subject, "read", {});
    }
    auto t1 = std::chrono::steady_clock::now();
    std::printf("  %-22s %10.1f ns/check (allowed %d)\n",
                ("ABAC/" + std::to_string(rules) + " rules").c_str(),
                std::chrono::duration<double, std::nano>(t1 - t0).count() /
                    kChecks,
                allowed);
  }
  {
    access::StageGate gate({"s1", "s2", "s3", "s4", "s5"});
    Must(gate.AllowInStage("s1", "investigator", "read"));
    Must(gate.StartProcess("p"));
    auto t0 = std::chrono::steady_clock::now();
    int allowed = 0;
    for (int i = 0; i < kChecks; ++i) {
      allowed += gate.Check("p", "investigator", "read");
    }
    auto t1 = std::chrono::steady_clock::now();
    std::printf("  %-22s %10.1f ns/check (allowed %d)\n", "StageGate",
                std::chrono::duration<double, std::nano>(t1 - t0).count() /
                    kChecks,
                allowed);
  }
  std::printf("\n(revocation: one map mutation; verified immediate in "
              "access_test)\n\n");
}

void BM_RbacCheck(benchmark::State& state) {
  auto rbac = MakeRbac(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    bool ok = rbac.Check("user-" + std::to_string(i++ % state.range(0)),
                         "read");
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_RbacCheck)->Arg(10)->Arg(1000);

void BM_AbacCheck(benchmark::State& state) {
  auto abac = MakeAbac(static_cast<size_t>(state.range(0)));
  access::Attributes subject = {{"dept", "dept-3"}};
  for (auto _ : state) {
    bool ok = abac.Check(subject, "read", {});
    benchmark::DoNotOptimize(ok);
  }
  state.SetLabel("rules=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_AbacCheck)->Arg(8)->Arg(64)->Arg(512);

void BM_ViewQuery(benchmark::State& state) {
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  for (int i = 0; i < 64; ++i) {
    prov::ProvenanceRecord rec;
    rec.record_id = "r-" + std::to_string(i);
    rec.operation = i % 2 ? "transfer" : "price-update";
    rec.subject = "prod-1";
    rec.agent = "a";
    rec.timestamp = i;
    Must(store.Anchor(rec));
  }
  access::ViewManager views(&store);
  access::View view;
  view.name = "v";
  view.owner = "owner";
  view.filter.operations = {"transfer"};
  Must(views.CreateView(view));
  Must(views.Grant("v", "owner", "reader"));
  for (auto _ : state) {
    auto records = views.Query("v", "reader", "prod-1");
    benchmark::DoNotOptimize(records);
  }
}
BENCHMARK(BM_ViewQuery);

}  // namespace

int main(int argc, char** argv) {
  PrintAccessTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
