// IoT-scale ingest benchmark for the columnar record codec: a fleet of
// cold-chain sensors emits tiny, highly self-similar supply-chain records
// (Table 1 schema, one reading each) at high rate, and the bench measures
// what the encoding layer does to the byte-bound paths:
//
//   * single node: 200k+ readings through the sharded IngestPipeline into a
//     ChainLog-backed chain, once with columnar block bodies and once with
//     raw Block::Encode() bodies — ingest throughput and on-disk
//     bytes/record both ways, verified afterwards via the supply-chain
//     SensorHistory query path;
//   * 4-node cluster: the same workload shape through consensus ordering +
//     block replication, columnar wire vs raw wire — replication network
//     bytes/record both ways, with follower audit proving the compact wire
//     form re-validates bit-identically.
//
// Emits BENCH_encoding.json. Usage: bench_iot_ingest [json [records]]

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_env.h"
#include "domains/supplychain/supply_chain.h"
#include "ledger/chain_log.h"
#include "prov/ingest_pipeline.h"
#include "replication/cluster.h"

namespace provledger {
namespace {

using BenchClock = std::chrono::steady_clock;

double ElapsedS(BenchClock::time_point t0) {
  return std::chrono::duration<double>(BenchClock::now() - t0).count();
}

constexpr size_t kProducts = 200;
constexpr size_t kSensors = 16;

// One cold-chain reading: tiny and extremely self-similar across the
// fleet — exactly the workload the columnar codec is built for.
prov::ProvenanceRecord MakeReading(size_t i) {
  const std::string product = "pkg-" + std::to_string(i % kProducts);
  prov::ProvenanceRecord rec;
  rec.record_id = "sense-" + std::to_string(i);
  rec.domain = prov::Domain::kSupplyChain;
  rec.operation = "sensor-reading";
  rec.subject = product;
  rec.agent = "sensor-" + std::to_string(i % kSensors);
  rec.timestamp = static_cast<Timestamp>(1'700'000'000'000'000LL +
                                         static_cast<int64_t>(i) * 250'000);
  rec.fields[prov::fields::kProductId] = product;
  rec.fields[prov::fields::kBatchNumber] = "lot-7";
  rec.fields[prov::fields::kMfgExpiry] = "2027-01";
  rec.fields[prov::fields::kTravelTrace] = "factory>dc>truck-12";
  rec.fields[prov::fields::kProductType] = "vaccine";
  rec.fields[prov::fields::kManufacturerId] = "mfg-3";
  rec.fields[prov::fields::kQuickAccess] = "qr://pkg/" + product;
  rec.fields["reading_c"] = std::to_string(2 + (i % 6));
  return rec;
}

struct SingleNodeRun {
  double records_per_sec = 0;
  uint64_t blocks = 0;
  uint64_t log_bytes = 0;
  double disk_bytes_per_record = 0;
  size_t history_records = 0;
};

bool RunSingleNode(const std::string& dir, bool columnar, size_t n,
                   SingleNodeRun* out) {
  const std::string log_path =
      dir + (columnar ? "/columnar.chainlog" : "/raw.chainlog");
  SimClock clock(1'000'000);
  ledger::Blockchain chain;
  ledger::ChainLogOptions log_opts;
  log_opts.sync_writes = false;  // bulk ingest; one Sync at the end
  log_opts.columnar_bodies = columnar;
  auto log = ledger::ChainLog::Open(log_path, log_opts);
  if (!log.ok()) {
    std::fprintf(stderr, "ChainLog::Open: %s\n",
                 log.status().ToString().c_str());
    return false;
  }
  if (!(*log)->AttachTo(&chain).ok()) return false;
  prov::ProvenanceStore store(&chain, &clock);

  auto t0 = BenchClock::now();
  {
    prov::IngestPipelineOptions pipe_opts;
    pipe_opts.shards = 4;
    pipe_opts.batch_size = 512;
    prov::IngestPipeline pipeline(&store, pipe_opts);
    std::vector<prov::ProvenanceRecord> chunk;
    chunk.reserve(4096);
    for (size_t i = 0; i < n; ++i) {
      chunk.push_back(MakeReading(i));
      if (chunk.size() == 4096 || i + 1 == n) {
        if (!pipeline.SubmitBatch(std::move(chunk)).ok()) return false;
        chunk.clear();
      }
    }
    Status closed = pipeline.Close();
    if (!closed.ok()) {
      std::fprintf(stderr, "pipeline close: %s\n",
                   closed.ToString().c_str());
      return false;
    }
  }
  if (!(*log)->Sync().ok()) return false;
  const double ingest_s = ElapsedS(t0);

  // Read the data back through the domain query path the paper's
  // supply-chain systems use — proving the records on this (possibly
  // columnar) log are the records the application wrote.
  supplychain::SupplyChain sc(&store, &clock);
  const size_t expected = n / kProducts + (n % kProducts > 0 ? 1 : 0);
  out->history_records = sc.SensorHistory("pkg-0", 0).size();
  if (out->history_records != expected) {
    std::fprintf(stderr, "SensorHistory(pkg-0): %zu records, expected %zu\n",
                 out->history_records, expected);
    return false;
  }

  out->records_per_sec = n / ingest_s;
  out->blocks = chain.height();
  out->log_bytes = (*log)->size_bytes();
  out->disk_bytes_per_record =
      static_cast<double>(out->log_bytes) / static_cast<double>(n);
  std::printf("  %-8s %8.0f rec/s  %4llu blocks  %9llu B on disk  %6.1f B/rec\n",
              columnar ? "columnar" : "raw", out->records_per_sec,
              static_cast<unsigned long long>(out->blocks),
              static_cast<unsigned long long>(out->log_bytes),
              out->disk_bytes_per_record);
  return true;
}

struct ClusterRun {
  double records_per_sec = 0;
  double wire_bytes_per_record = 0;
  size_t audited = 0;
};

bool RunCluster(bool columnar_wire, size_t n, ClusterRun* out) {
  replication::ClusterOptions options;
  options.num_nodes = 4;
  options.seed = 42;
  options.consensus = "raft";
  options.columnar_wire = columnar_wire;
  auto cluster = replication::Cluster::Create(options);
  if (!cluster.ok()) {
    std::fprintf(stderr, "Cluster::Create: %s\n",
                 cluster.status().ToString().c_str());
    return false;
  }
  auto t0 = BenchClock::now();
  for (size_t i = 0; i < n; ++i) {
    if (!(*cluster)->Submit(MakeReading(i)).ok()) return false;
    if ((*cluster)->pending_count() == 512 || i + 1 == n) {
      if (!(*cluster)->CommitPending().ok()) return false;
    }
  }
  const double ingest_s = ElapsedS(t0);
  if (!(*cluster)->Converged()) {
    std::fprintf(stderr, "cluster did not converge\n");
    return false;
  }
  // The follower audit re-fetches and Merkle-verifies every record it got
  // over the wire — the bit-identical invariant, checked end to end.
  auto audit = (*cluster)->node(3)->store()->AuditAll();
  if (!audit.ok() || audit.value() != n) {
    std::fprintf(stderr, "follower audit failed\n");
    return false;
  }
  out->records_per_sec = n / ingest_s;
  out->wire_bytes_per_record =
      static_cast<double>((*cluster)->net()->metrics().bytes_sent) /
      static_cast<double>(n);
  out->audited = audit.value();
  std::printf("  %-8s %8.0f rec/s  %7.1f wire B/rec  %zu audited\n",
              columnar_wire ? "columnar" : "raw", out->records_per_sec,
              out->wire_bytes_per_record, out->audited);
  return true;
}

int Run(const std::string& json_path, size_t n) {
  if (n < 1000) {
    std::fprintf(stderr, "record count must be >= 1000 (got %zu)\n", n);
    return 1;
  }
  std::string dir = "/tmp/provledger_bench_iot_XXXXXX";
  if (::mkdtemp(dir.data()) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }

  std::printf("== IoT ingest, single node: %zu sensor readings ==\n\n", n);
  SingleNodeRun columnar_disk, raw_disk;
  if (!RunSingleNode(dir, /*columnar=*/true, n, &columnar_disk)) return 1;
  if (!RunSingleNode(dir, /*columnar=*/false, n, &raw_disk)) return 1;
  const double disk_reduction =
      raw_disk.disk_bytes_per_record / columnar_disk.disk_bytes_per_record;
  std::printf("  disk reduction: %.2fx\n", disk_reduction);

  const size_t cluster_n = n / 10 < 1000 ? 1000 : n / 10;
  std::printf("\n== IoT ingest, 4-node cluster: %zu readings ==\n\n",
              cluster_n);
  ClusterRun columnar_wire, raw_wire;
  if (!RunCluster(/*columnar_wire=*/true, cluster_n, &columnar_wire)) return 1;
  if (!RunCluster(/*columnar_wire=*/false, cluster_n, &raw_wire)) return 1;
  const double wire_reduction =
      raw_wire.wire_bytes_per_record / columnar_wire.wire_bytes_per_record;
  std::printf("  wire reduction: %.2fx\n", wire_reduction);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  bench::WriteEnvFields(f);
  std::fprintf(
      f,
      "  \"bench\": \"bench_iot_ingest\",\n"
      "  \"records\": %zu,\n"
      "  \"single_node\": {\n"
      "    \"columnar\": {\"records_per_sec\": %.0f, \"blocks\": %llu,"
      " \"log_bytes\": %llu, \"disk_bytes_per_record\": %.1f},\n"
      "    \"raw\": {\"records_per_sec\": %.0f, \"blocks\": %llu,"
      " \"log_bytes\": %llu, \"disk_bytes_per_record\": %.1f},\n"
      "    \"disk_reduction\": %.2f,\n"
      "    \"sensor_history_records\": %zu\n"
      "  },\n"
      "  \"cluster\": {\n"
      "    \"nodes\": 4,\n"
      "    \"records\": %zu,\n"
      "    \"columnar\": {\"records_per_sec\": %.0f,"
      " \"wire_bytes_per_record\": %.1f, \"follower_audit_verified\": %zu},\n"
      "    \"raw\": {\"records_per_sec\": %.0f,"
      " \"wire_bytes_per_record\": %.1f, \"follower_audit_verified\": %zu},\n"
      "    \"wire_reduction\": %.2f\n"
      "  }\n"
      "}\n",
      n, columnar_disk.records_per_sec,
      static_cast<unsigned long long>(columnar_disk.blocks),
      static_cast<unsigned long long>(columnar_disk.log_bytes),
      columnar_disk.disk_bytes_per_record, raw_disk.records_per_sec,
      static_cast<unsigned long long>(raw_disk.blocks),
      static_cast<unsigned long long>(raw_disk.log_bytes),
      raw_disk.disk_bytes_per_record, disk_reduction,
      columnar_disk.history_records, cluster_n, columnar_wire.records_per_sec,
      columnar_wire.wire_bytes_per_record, columnar_wire.audited,
      raw_wire.records_per_sec, raw_wire.wire_bytes_per_record,
      raw_wire.audited, wire_reduction);
  std::fclose(f);
  std::printf("\n  wrote %s\n", json_path.c_str());
  bench::WriteMetricsSidecar(json_path);
  return 0;
}

}  // namespace
}  // namespace provledger

int main(int argc, char** argv) {
  const std::string json = argc > 1 ? argv[1] : "BENCH_encoding.json";
  const size_t records =
      argc > 2 ? static_cast<size_t>(std::strtoull(argv[2], nullptr, 10))
               : 200000;
  return provledger::Run(json, records);
}
