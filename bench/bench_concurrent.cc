// Concurrent ingest + snapshot-read benchmark for the sharded pipeline:
//
//   baseline:  single-threaded AnchorBatch loop (the pre-pipeline write
//              path), one block per batch;
//   pipeline:  multi-producer IngestPipeline at shard counts 1/2/4/8 —
//              same batch size, same block shape, producers submitting
//              concurrently while shard workers prepare (validate +
//              serialize + hash) and one committer anchors;
//   readers:   query latency against published snapshot epochs while the
//              pipeline ingests at full speed (snapshot isolation in
//              action — readers never lock the writer);
//   parallel:  Query::Parallel fan-out vs serial on a full-scan query
//              over the final graph.
//
// Reported throughput is end-to-end drain time (submit of the first
// record until the last record is committed), not submission rate.
// hardware_threads is in the JSON: pipeline speedups are bounded by the
// cores actually available — on a single-core container the pipeline can
// only win by doing less work per record (cached digests, moved buffers),
// while the shard fan-out needs real cores to pay off.
//
// Emits BENCH_concurrent.json. Usage: bench_concurrent [json [100000]]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_env.h"
#include "prov/ingest_pipeline.h"
#include "prov/snapshot.h"
#include "prov/store.h"

namespace provledger {
namespace {

using BenchClock = std::chrono::steady_clock;

double ElapsedS(BenchClock::time_point t0) {
  return std::chrono::duration<double>(BenchClock::now() - t0).count();
}

constexpr size_t kBatchSize = 256;
constexpr size_t kSubjects = 1000;
constexpr size_t kAgents = 64;

// Same workload shape as bench_graph_scale/bench_recovery: 1k hot
// subjects, 64 agents, derivation chains.
prov::ProvenanceRecord MakeRecord(size_t i, const char* prefix) {
  prov::ProvenanceRecord rec;
  rec.record_id = std::string(prefix) + std::to_string(i);
  rec.operation = i % 3 == 0 ? "execute" : "read";
  rec.subject = "s" + std::to_string(i % kSubjects);
  rec.agent = "a" + std::to_string(i % kAgents);
  rec.timestamp = static_cast<Timestamp>(i * 16 + (i * 2654435761u) % 16);
  if (i > 0) rec.inputs.push_back("e" + std::to_string(i - 1));
  rec.outputs.push_back("e" + std::to_string(i));
  return rec;
}

struct RunResult {
  double seconds = 0;
  uint64_t blocks = 0;
};

// The pre-pipeline write path: one thread, AnchorBatch per kBatchSize
// slice.
RunResult RunBaseline(size_t n) {
  ledger::Blockchain chain;
  SystemClock clock;
  prov::ProvenanceStore store(&chain, &clock);
  auto t0 = BenchClock::now();
  std::vector<prov::ProvenanceRecord> batch;
  batch.reserve(kBatchSize);
  for (size_t i = 0; i < n; i += kBatchSize) {
    batch.clear();
    for (size_t j = i; j < std::min(i + kBatchSize, n); ++j) {
      batch.push_back(MakeRecord(j, "r"));
    }
    if (!store.AnchorBatch(batch).ok()) {
      std::fprintf(stderr, "baseline anchor failed at %zu\n", i);
      std::exit(1);
    }
  }
  RunResult result;
  result.seconds = ElapsedS(t0);
  result.blocks = chain.height();
  if (store.anchored_count() != n) {
    std::fprintf(stderr, "baseline count mismatch\n");
    std::exit(1);
  }
  return result;
}

// The same two-phase prepared write path the pipeline uses, run on ONE
// thread with no queues: isolates the pure work reduction (cached
// digests, single encode, moved buffers) from scheduling effects, so the
// threaded speedups below can be read against it on any core count.
RunResult RunPreparedSerial(size_t n) {
  ledger::Blockchain chain;
  SystemClock clock;
  prov::ProvenanceStore store(&chain, &clock);
  auto t0 = BenchClock::now();
  uint64_t nonce = 0;
  for (size_t i = 0; i < n; i += kBatchSize) {
    prov::PreparedBatch batch;
    std::vector<crypto::Digest> leaves;
    for (size_t j = i; j < std::min(i + kBatchSize, n); ++j) {
      auto prepared = store.PrepareRecord(MakeRecord(j, "r"), ++nonce);
      if (!prepared.ok()) std::exit(1);
      leaves.push_back(prepared->leaf);
      batch.records.push_back(std::move(prepared).value());
    }
    batch.merkle_root = crypto::MerkleTree::BuildFromDigests(leaves).root();
    size_t committed = 0;
    if (!store.AnchorPrepared(&batch, &committed).ok()) {
      std::fprintf(stderr, "prepared serial anchor failed at %zu\n", i);
      std::exit(1);
    }
  }
  RunResult result;
  result.seconds = ElapsedS(t0);
  result.blocks = chain.height();
  if (store.anchored_count() != n) std::exit(1);
  return result;
}

RunResult RunPipeline(size_t n, size_t shards, size_t producers,
                      size_t snapshot_every, size_t* snapshots_out) {
  ledger::Blockchain chain;
  SystemClock clock;
  prov::ProvenanceStore store(&chain, &clock);
  prov::IngestPipelineOptions options;
  options.shards = shards;
  options.batch_size = kBatchSize;
  options.snapshot_every_batches = snapshot_every;
  auto t0 = BenchClock::now();
  prov::IngestPipeline pipeline(&store, options);
  std::vector<std::thread> threads;
  for (size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      std::vector<prov::ProvenanceRecord> chunk;
      chunk.reserve(kBatchSize);
      for (size_t i = p; i < n; i += producers) {
        chunk.push_back(MakeRecord(i, "r"));
        if (chunk.size() == kBatchSize) {
          if (!pipeline.SubmitBatch(std::move(chunk)).ok()) return;
          chunk.clear();
          chunk.reserve(kBatchSize);
        }
      }
      if (!chunk.empty() && !pipeline.SubmitBatch(std::move(chunk)).ok())
            return;
    });
  }
  for (auto& t : threads) t.join();
  if (!pipeline.Close().ok() || pipeline.committed() != n) {
    std::fprintf(stderr, "pipeline run failed (shards=%zu)\n", shards);
    std::exit(1);
  }
  RunResult result;
  result.seconds = ElapsedS(t0);
  result.blocks = chain.height();
  if (snapshots_out != nullptr) {
    *snapshots_out = pipeline.snapshots_published();
  }
  return result;
}

int Run(const std::string& json_path, size_t n) {
  if (n < 2000) {
    std::fprintf(stderr, "record count must be >= 2000 (got %zu)\n", n);
    return 1;
  }
  std::printf("bench_concurrent: %zu records, batch %zu, %u hardware threads\n",
              n, kBatchSize, bench::HardwareThreads());

  RunResult baseline = RunBaseline(n);
  std::printf("  baseline AnchorBatch: %.3fs (%.0f rec/s, %llu blocks)\n",
              baseline.seconds, n / baseline.seconds,
              static_cast<unsigned long long>(baseline.blocks));
  RunResult prepared_serial = RunPreparedSerial(n);
  std::printf("  prepared path (1 thread, no queues): %.3fs (%.0f rec/s, "
              "%.2fx — pure work reduction)\n",
              prepared_serial.seconds, n / prepared_serial.seconds,
              baseline.seconds / prepared_serial.seconds);

  const size_t shard_counts[] = {1, 2, 4, 8};
  RunResult pipeline_results[4];
  for (size_t k = 0; k < 4; ++k) {
    const size_t shards = shard_counts[k];
    pipeline_results[k] =
        RunPipeline(n, shards, /*producers=*/4, /*snapshot_every=*/0,
                    nullptr);
    std::printf("  pipeline %zu shard%s:    %.3fs (%.0f rec/s, %.2fx)\n",
                shards, shards == 1 ? " " : "s",
                pipeline_results[k].seconds, n / pipeline_results[k].seconds,
                baseline.seconds / pipeline_results[k].seconds);
  }

  // Query latency while the writer runs: one pipeline ingesting at full
  // speed with periodic epoch publication, two reader threads running a
  // query mix against the freshest snapshot.
  std::printf("  query-under-write-load...\n");
  ledger::Blockchain chain;
  SystemClock clock;
  prov::ProvenanceStore store(&chain, &clock);
  prov::IngestPipelineOptions options;
  options.shards = 4;
  options.batch_size = kBatchSize;
  options.snapshot_every_batches = 8;
  std::atomic<bool> stop{false};
  std::vector<double> latencies_ms;
  std::mutex latencies_mu;
  std::atomic<uint64_t> total_reads{0};
  double load_seconds = 0;
  uint64_t final_epoch = 0;
  {
    auto t0 = BenchClock::now();
    prov::IngestPipeline pipeline(&store, options);
    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
      readers.emplace_back([&, r] {
        std::vector<double> local;
        size_t i = 0;
        while (!stop.load(std::memory_order_acquire)) {
          auto snapshot = store.AcquireSnapshot();
          if (snapshot == nullptr) continue;
          auto reader = snapshot->OpenReader();
          if (!reader.ok()) std::exit(1);
          auto q0 = BenchClock::now();
          prov::Query query;
          if (i % 2 == 0) {
            query.WithSubject("s" + std::to_string((i * 7 + r) % kSubjects));
          } else {
            query.WithAgent("a" + std::to_string((i * 3 + r) % kAgents))
                .Limit(32);
          }
          size_t got = reader->Execute(query).records.size();
          local.push_back(ElapsedS(q0) * 1e3);
          if (got > n) std::exit(1);  // keep the read alive in the build
          ++i;
        }
        total_reads.fetch_add(local.size(), std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(latencies_mu);
        latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
      });
    }
    std::vector<std::thread> producers;
    for (size_t p = 0; p < 4; ++p) {
      producers.emplace_back([&, p] {
        std::vector<prov::ProvenanceRecord> chunk;
        chunk.reserve(kBatchSize);
        for (size_t i = p; i < n; i += 4) {
          chunk.push_back(MakeRecord(i, "r"));
          if (chunk.size() == kBatchSize) {
            if (!pipeline.SubmitBatch(std::move(chunk)).ok()) return;
            chunk.clear();
            chunk.reserve(kBatchSize);
          }
        }
        if (!chunk.empty() && !pipeline.SubmitBatch(std::move(chunk)).ok())
            return;
      });
    }
    for (auto& t : producers) t.join();
    if (!pipeline.Close().ok() || pipeline.committed() != n) {
      std::fprintf(stderr, "query-load pipeline run failed\n");
      return 1;
    }
    load_seconds = ElapsedS(t0);
    stop.store(true, std::memory_order_release);
    for (auto& t : readers) t.join();
    auto snapshot = store.AcquireSnapshot();
    final_epoch = snapshot != nullptr ? snapshot->epoch() : 0;
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto pct = [&](double p) {
    if (latencies_ms.empty()) return 0.0;
    return latencies_ms[std::min(latencies_ms.size() - 1,
                                 static_cast<size_t>(p * latencies_ms.size()))];
  };
  std::printf(
      "    %llu snapshot reads, query p50 %.3f ms / p95 %.3f ms, ingest "
      "%.0f rec/s with readers attached\n",
      static_cast<unsigned long long>(total_reads.load()), pct(0.50),
      pct(0.95), n / load_seconds);

  // Parallel query fan-out on the final (warmed, quiescent) graph.
  store.mutable_graph()->Warm();
  prov::Query scan = prov::Query().WithOperation("execute").CountOnly();
  auto MeasureQuery = [&](const prov::Query& query) {
    // Best of 3: the comparison targets steady-state scan cost.
    double best = 1e9;
    size_t count = 0;
    for (int rep = 0; rep < 3; ++rep) {
      auto q0 = BenchClock::now();
      count = store.Execute(query).count;
      best = std::min(best, ElapsedS(q0));
    }
    if (count == 0) std::exit(1);
    return best;
  };
  double serial_s = MeasureQuery(scan);
  double parallel_s = MeasureQuery(prov::Query(scan).Parallel(4));
  std::printf("  full-scan count: serial %.3f ms, parallel(4) %.3f ms "
              "(%.2fx)\n",
              serial_s * 1e3, parallel_s * 1e3, serial_s / parallel_s);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  bench::WriteEnvFields(f);
  std::fprintf(
      f,
      "  \"bench\": \"bench_concurrent\",\n"
      "  \"records\": %zu,\n"
      "  \"batch_size\": %zu,\n"
      "  \"baseline_anchor_batch\": {\"seconds\": %.4f, "
      "\"records_per_sec\": %.0f, \"blocks\": %llu},\n"
      "  \"prepared_serial\": {\"seconds\": %.4f, \"records_per_sec\": "
      "%.0f, \"work_reduction_vs_baseline\": %.2f},\n"
      "  \"pipeline\": [\n",
      n, kBatchSize, baseline.seconds, n / baseline.seconds,
      static_cast<unsigned long long>(baseline.blocks),
      prepared_serial.seconds, n / prepared_serial.seconds,
      baseline.seconds / prepared_serial.seconds);
  for (size_t k = 0; k < 4; ++k) {
    std::fprintf(
        f,
        "    {\"shards\": %zu, \"producers\": 4, \"seconds\": %.4f, "
        "\"records_per_sec\": %.0f, \"speedup_vs_baseline\": %.2f}%s\n",
        shard_counts[k], pipeline_results[k].seconds,
        n / pipeline_results[k].seconds,
        baseline.seconds / pipeline_results[k].seconds, k + 1 < 4 ? "," : "");
  }
  std::fprintf(
      f,
      "  ],\n"
      "  \"query_under_write_load\": {\n"
      "    \"snapshot_every_batches\": %zu,\n"
      "    \"reader_threads\": 2,\n"
      "    \"snapshot_reads\": %llu,\n"
      "    \"query_p50_ms\": %.4f,\n"
      "    \"query_p95_ms\": %.4f,\n"
      "    \"epochs_published\": %llu,\n"
      "    \"ingest_records_per_sec_with_readers\": %.0f\n"
      "  },\n"
      "  \"parallel_query\": {\"serial_ms\": %.4f, \"parallel4_ms\": %.4f, "
      "\"speedup\": %.2f}\n"
      "}\n",
      options.snapshot_every_batches,
      static_cast<unsigned long long>(total_reads.load()), pct(0.50),
      pct(0.95), static_cast<unsigned long long>(final_epoch),
      n / load_seconds, serial_s * 1e3, parallel_s * 1e3,
      serial_s / parallel_s);
  std::fclose(f);
  std::printf("\n  wrote %s\n", json_path.c_str());
  bench::WriteMetricsSidecar(json_path);
  return 0;
}

}  // namespace
}  // namespace provledger

int main(int argc, char** argv) {
  std::string json_path = argc > 1 ? argv[1] : "BENCH_concurrent.json";
  size_t n = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 100000;
  return provledger::Run(json_path, n);
}
