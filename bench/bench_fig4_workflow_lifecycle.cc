// Reproduces Figure 4 (life cycle of scientific workflows) as measured
// series: cost of each lifecycle phase (design / execute / publish /
// invalidate / re-execute) over fan-out x depth DAG shapes. Expected
// shape: invalidation cascade + re-execution cost is proportional to the
// affected subgraph, not the whole workflow (SciBlock/SciLedger's point).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "domains/scientific/workflow.h"

#include "must.h"

namespace {

using namespace provledger;  // benchmark driver

// Layered DAG: `depth` layers of `width` tasks; each task depends on every
// task of the previous layer.
void BuildWorkflow(scientific::WorkflowManager* wm, const std::string& wf,
                   size_t depth, size_t width) {
  Must(wm->CreateWorkflow(wf, "lab"));
  std::vector<std::string> previous;
  for (size_t layer = 0; layer < depth; ++layer) {
    std::vector<std::string> current;
    for (size_t i = 0; i < width; ++i) {
      std::string task =
          "t" + std::to_string(layer) + "-" + std::to_string(i);
      Must(wm->AddTask(wf, task, "op", previous));
      current.push_back(task);
    }
    previous = std::move(current);
  }
}

void PrintLifecycleTable() {
  std::printf("== Figure 4: workflow lifecycle (reproduced) ==\n\n");
  std::printf("  %-12s %8s %12s %16s %14s\n", "DAG (d x w)", "tasks",
              "executed", "invalidated@L1", "re-executed");
  for (auto [depth, width] : {std::pair<size_t, size_t>{3, 2},
                              {4, 3},
                              {5, 4},
                              {6, 5}}) {
    ledger::Blockchain chain;
    SimClock clock(0);
    prov::ProvenanceStore store(&chain, &clock);
    scientific::WorkflowManager wm(&store, &clock);
    BuildWorkflow(&wm, "wf", depth, width);
    auto executed = wm.ExecuteAll("wf", "alice");
    Must(wm.Publish("wf"));

    // Invalidate one task in layer 1: everything below it cascades; layer 0
    // is untouched.
    auto invalidated = wm.InvalidateTask("wf", "t1-0", "bad parameter");
    auto plan = wm.ReexecutionPlan("wf");
    size_t reexecuted = 0;
    for (const auto& task : plan.value()) {
      if (wm.ReexecuteTask("wf", task, "alice").ok()) ++reexecuted;
    }
    std::printf("  %zux%-9zu %8zu %12zu %16zu %14zu\n", depth, width,
                depth * width, executed.value(), invalidated->size(),
                reexecuted);
  }
  std::printf("\n(invalidating a leaf touches only itself; invalidating the"
              " root touches everything)\n\n");
}

void BM_ExecuteTask(benchmark::State& state) {
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  scientific::WorkflowManager wm(&store, &clock);
  Must(wm.CreateWorkflow("wf", "lab"));
  uint64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string task = "task-" + std::to_string(i++);
    Must(wm.AddTask("wf", task, "op"));
    state.ResumeTiming();
    Status s = wm.ExecuteTask("wf", task, "alice");
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_ExecuteTask);

void BM_InvalidationCascade(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ledger::Blockchain chain;
    SimClock clock(0);
    prov::ProvenanceStore store(&chain, &clock);
    scientific::WorkflowManager wm(&store, &clock);
    BuildWorkflow(&wm, "wf", depth, 3);
    Must(wm.ExecuteAll("wf", "alice"));
    state.ResumeTiming();
    auto invalidated = wm.InvalidateTask("wf", "t0-0", "x");
    benchmark::DoNotOptimize(invalidated);
  }
  state.SetLabel("depth=" + std::to_string(depth));
}
BENCHMARK(BM_InvalidationCascade)->Arg(3)->Arg(5)->Arg(7);

}  // namespace

int main(int argc, char** argv) {
  PrintLifecycleTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
