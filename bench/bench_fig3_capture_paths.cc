// Reproduces Figure 3 (provenance capture architectures): the same
// operation stream through the four capture paths — user-direct,
// datastore-emitted, centralized third party, decentralized third party —
// reporting per-record simulated latency and message cost. The expected
// shape: datastore < direct < centralized < decentralized.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "prov/capture.h"

#include "must.h"

namespace {

using namespace provledger;  // benchmark driver

prov::ProvenanceRecord Rec(uint64_t i) {
  prov::ProvenanceRecord rec;
  rec.record_id = "cap-" + std::to_string(i);
  rec.operation = "update";
  rec.subject = "file-" + std::to_string(i % 32);
  rec.agent = "user-1";
  rec.timestamp = static_cast<Timestamp>(i);
  return rec;
}

void PrintCapturePathTable() {
  std::printf("== Figure 3: provenance capture paths (reproduced) ==\n");
  const int kRecords = 200;
  std::printf("(%d records through each architecture; simulated time)\n\n",
              kRecords);
  std::printf("  %-28s %14s %12s %10s\n", "capture path", "us/record",
              "messages", "auth-fail");

  // (a) user-direct
  {
    ledger::Blockchain chain;
    SimClock clock(0);
    prov::ProvenanceStore store(&chain, &clock);
    prov::DirectCapture capture(&store, &clock);
    capture.RegisterUser("user-1",
                         crypto::PrivateKey::FromSeed(std::string("user-1")));
    for (int i = 0; i < kRecords; ++i) {
      Must(capture.Capture("user-1", Rec(static_cast<uint64_t>(i))));
    }
    std::printf("  %-28s %14.1f %12llu %10llu\n", capture.name().c_str(),
                static_cast<double>(clock.NowMicros()) / kRecords,
                static_cast<unsigned long long>(capture.metrics().messages),
                static_cast<unsigned long long>(
                    capture.metrics().auth_failures));
  }
  // (b) datastore-emitted (batched)
  {
    ledger::Blockchain chain;
    SimClock clock(0);
    prov::ProvenanceStore store(&chain, &clock);
    prov::DataStoreCapture capture(&store, &clock, /*flush_threshold=*/8);
    for (int i = 0; i < kRecords; ++i) {
      Must(capture.Capture("user-1", Rec(static_cast<uint64_t>(i))));
    }
    Must(capture.FlushBuffered());
    std::printf("  %-28s %14.1f %12llu %10llu\n", capture.name().c_str(),
                static_cast<double>(clock.NowMicros()) / kRecords,
                static_cast<unsigned long long>(capture.metrics().messages),
                static_cast<unsigned long long>(
                    capture.metrics().auth_failures));
  }
  // (c) centralized third party
  {
    ledger::Blockchain chain;
    SimClock clock(0);
    prov::ProvenanceStore store(&chain, &clock);
    prov::CentralizedCapture capture(&store, &clock);
    capture.PresentToken("user-1", capture.EnrollUser("user-1"));
    for (int i = 0; i < kRecords; ++i) {
      Must(capture.Capture("user-1", Rec(static_cast<uint64_t>(i))));
    }
    std::printf("  %-28s %14.1f %12llu %10llu\n", capture.name().c_str(),
                static_cast<double>(clock.NowMicros()) / kRecords,
                static_cast<unsigned long long>(capture.metrics().messages),
                static_cast<unsigned long long>(
                    capture.metrics().auth_failures));
  }
  // (d) decentralized third party (4-member committee, threshold 3)
  {
    ledger::Blockchain chain;
    SimClock clock(0);
    prov::ProvenanceStore store(&chain, &clock);
    prov::DecentralizedCapture capture(&store, &clock, 4, 3);
    for (int i = 0; i < kRecords; ++i) {
      Must(capture.Capture("user-1", Rec(static_cast<uint64_t>(i))));
    }
    std::printf("  %-28s %14.1f %12llu %10llu\n", capture.name().c_str(),
                static_cast<double>(clock.NowMicros()) / kRecords,
                static_cast<unsigned long long>(capture.metrics().messages),
                static_cast<unsigned long long>(
                    capture.metrics().auth_failures));
  }
  std::printf("\n");
}

void BM_DirectCapture(benchmark::State& state) {
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  prov::DirectCapture capture(&store, &clock);
  capture.RegisterUser("user-1",
                       crypto::PrivateKey::FromSeed(std::string("user-1")));
  uint64_t i = 0;
  for (auto _ : state) {
    Status s = capture.Capture("user-1", Rec(i++));
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_DirectCapture);

void BM_DecentralizedCapture(benchmark::State& state) {
  const auto committee = static_cast<uint32_t>(state.range(0));
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  prov::DecentralizedCapture capture(&store, &clock, committee,
                                     committee * 2 / 3 + 1);
  uint64_t i = 0;
  for (auto _ : state) {
    Status s = capture.Capture("user-1", Rec(i++));
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
  state.SetLabel("committee=" + std::to_string(committee));
}
BENCHMARK(BM_DecentralizedCapture)->Arg(4)->Arg(7);

}  // namespace

int main(int argc, char** argv) {
  PrintCapturePathTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
