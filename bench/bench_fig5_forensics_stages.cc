// Reproduces Figure 5 (the five-stage digital-forensics methodology) as a
// measured pipeline: per-stage operation counts and costs for cases of
// growing evidence volume, plus the ForensiBlock case-integrity check
// (Merkle forest verification per item).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "domains/forensics/case_manager.h"

#include "must.h"

namespace {

using namespace provledger;  // benchmark driver

void RunCase(size_t evidence_count, double* collect_ms, double* verify_ms,
             size_t* anchored) {
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  storage::ContentStore content;
  forensics::CaseManager cm(&store, &content, &clock);

  Must(cm.OpenCase("case-1", "lead", "2026-06-01"));
  Must(cm.IdentifySource("case-1", "laptop", "inv"));        // identification
  Must(cm.AdvanceStage("case-1", "lead"));                   // preservation
  Must(cm.AdvanceStage("case-1", "lead"));                   // collection

  auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < evidence_count; ++i) {
    Must(cm.CollectEvidence("case-1", "ev-" + std::to_string(i), "img",
                             ToBytes("evidence-bytes-" + std::to_string(i)),
                             "inv"));
  }
  auto t1 = std::chrono::steady_clock::now();

  Must(cm.AdvanceStage("case-1", "lead"));                   // analysis
  for (size_t i = 0; i < evidence_count; ++i) {
    Must(cm.AnalyzeEvidence("case-1", "ev-" + std::to_string(i), "finding",
                             "analyst"));
  }
  Must(cm.AdvanceStage("case-1", "lead"));                   // reporting
  Must(cm.FileReport("case-1", "done", "lead", "2026-07-01"));

  auto t2 = std::chrono::steady_clock::now();
  size_t verified = 0;
  for (size_t i = 0; i < evidence_count; ++i) {
    if (cm.VerifyEvidence("case-1", "ev-" + std::to_string(i)).ok()) {
      ++verified;
    }
  }
  auto t3 = std::chrono::steady_clock::now();

  *collect_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  *verify_ms = std::chrono::duration<double, std::milli>(t3 - t2).count();
  *anchored = store.anchored_count();
  if (verified != evidence_count) std::printf("  !! verification failed\n");
}

void PrintStageTable() {
  std::printf("== Figure 5: five-stage forensic pipeline (reproduced) ==\n");
  std::printf("(identification -> preservation -> collection -> analysis -> "
              "reporting)\n\n");
  std::printf("  %-10s %14s %16s %14s\n", "evidence", "collect ms",
              "records anchored", "verify ms");
  for (size_t n : {4u, 16u, 64u, 128u}) {
    double collect_ms = 0, verify_ms = 0;
    size_t anchored = 0;
    RunCase(n, &collect_ms, &verify_ms, &anchored);
    std::printf("  %-10zu %14.2f %16zu %14.2f\n", n, collect_ms, anchored,
                verify_ms);
  }
  std::printf("\n");
}

void BM_CollectEvidence(benchmark::State& state) {
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  storage::ContentStore content;
  forensics::CaseManager cm(&store, &content, &clock);
  Must(cm.OpenCase("case-1", "lead", "2026-06-01"));
  Must(cm.AdvanceStage("case-1", "lead"));
  Must(cm.AdvanceStage("case-1", "lead"));
  uint64_t i = 0;
  for (auto _ : state) {
    Status s = cm.CollectEvidence("case-1", "ev-" + std::to_string(i++),
                                  "img", ToBytes("bytes"), "inv");
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_CollectEvidence);

void BM_VerifyEvidenceForest(benchmark::State& state) {
  const size_t evidence = static_cast<size_t>(state.range(0));
  ledger::Blockchain chain;
  SimClock clock(0);
  prov::ProvenanceStore store(&chain, &clock);
  storage::ContentStore content;
  forensics::CaseManager cm(&store, &content, &clock);
  Must(cm.OpenCase("case-1", "lead", "2026-06-01"));
  Must(cm.AdvanceStage("case-1", "lead"));
  Must(cm.AdvanceStage("case-1", "lead"));
  for (size_t i = 0; i < evidence; ++i) {
    Must(cm.CollectEvidence("case-1", "ev-" + std::to_string(i), "img",
                             ToBytes("b" + std::to_string(i)), "inv"));
  }
  size_t i = 0;
  for (auto _ : state) {
    Status s = cm.VerifyEvidence("case-1",
                                 "ev-" + std::to_string(i++ % evidence));
    benchmark::DoNotOptimize(s);
  }
  state.SetLabel("evidence=" + std::to_string(evidence));
}
BENCHMARK(BM_VerifyEvidenceForest)->Arg(16)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  PrintStageTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
