// Practical Byzantine Fault Tolerance: the full three-phase protocol
// (pre-prepare / prepare / commit) with O(n²) message complexity, per-node
// state machines on the simulated network, silent-byzantine fault injection,
// and view changes when the leader is faulty. Consortium designs surveyed in
// §4.1 (EO data management) pair PBFT with Raft; bench_consensus_comparison
// reproduces the message-complexity gap between them.
//
// Thread safety: NOT internally synchronized — each engine instance is
// driven from a single (simulation) thread.

#ifndef PROVLEDGER_CONSENSUS_PBFT_H_
#define PROVLEDGER_CONSENSUS_PBFT_H_

#include <set>

#include "consensus/engine.h"

namespace provledger {
namespace consensus {

/// \brief PBFT engine; tolerates f = (n-1)/3 byzantine replicas.
class PbftEngine : public ConsensusEngine {
 public:
  explicit PbftEngine(const ConsensusConfig& config);

  std::string name() const override { return "pbft"; }
  Result<CommitResult> Propose(const Bytes& payload) override;
  Timestamp now_us() const override { return clock_.NowMicros(); }

  uint64_t view() const { return view_; }
  uint32_t fault_tolerance() const { return (config_.num_nodes - 1) / 3; }

 private:
  struct Replica {
    bool byzantine = false;
    bool have_preprepare = false;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool executed = false;
    crypto::Digest digest;
    std::set<network::NodeId> prepares;
    std::set<network::NodeId> commits;
  };

  void HandleMessage(network::NodeId self, const network::Message& msg);
  void ResetRound();
  size_t ExecutedCount() const;

  ConsensusConfig config_;
  SimClock clock_;
  network::SimNetwork net_;
  std::vector<Replica> replicas_;
  uint64_t view_ = 0;
  uint64_t sequence_ = 0;
};

}  // namespace consensus
}  // namespace provledger

#endif  // PROVLEDGER_CONSENSUS_PBFT_H_
