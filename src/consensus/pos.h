// Proof-of-Stake consensus: stake-weighted pseudo-random leader election
// seeded by a hash chain (so the schedule is unpredictable but verifiable),
// followed by a propose/attest round. This is the mechanism BlockCloud [75]
// adopts to cut PoW's computational cost for cloud provenance — the
// consensus-comparison bench reproduces exactly that PoW-vs-PoS gap.
//
// Thread safety: NOT internally synchronized — each engine instance is
// driven from a single (simulation) thread.

#ifndef PROVLEDGER_CONSENSUS_POS_H_
#define PROVLEDGER_CONSENSUS_POS_H_

#include "consensus/engine.h"

namespace provledger {
namespace consensus {

/// \brief Slot-based PoS with stake-weighted leader election and 2/3-stake
/// attestation quorum.
class PosEngine : public ConsensusEngine {
 public:
  explicit PosEngine(const ConsensusConfig& config);

  std::string name() const override { return "pos"; }
  Result<CommitResult> Propose(const Bytes& payload) override;
  Timestamp now_us() const override { return clock_.NowMicros(); }

  /// Leader of the most recent slot.
  uint32_t last_leader() const { return last_leader_; }

 private:
  uint32_t ElectLeader();

  ConsensusConfig config_;
  SimClock clock_;
  network::SimNetwork net_;
  std::vector<uint64_t> stakes_;
  uint64_t total_stake_ = 0;
  crypto::Digest slot_seed_;
  uint64_t slot_ = 0;
  uint32_t last_leader_ = 0;
  uint64_t attestations_ = 0;  // stake attested in the current round
};

}  // namespace consensus
}  // namespace provledger

#endif  // PROVLEDGER_CONSENSUS_POS_H_
