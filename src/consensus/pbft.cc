#include "consensus/pbft.h"

#include "common/codec.h"

namespace provledger {
namespace consensus {

PbftEngine::PbftEngine(const ConsensusConfig& config)
    : config_(config), clock_(), net_(&clock_, config.seed, config.net) {
  replicas_.resize(config_.num_nodes);
  // The last `byzantine_nodes` replicas are silent-faulty.
  for (uint32_t i = 0; i < config_.byzantine_nodes && i < config_.num_nodes;
       ++i) {
    replicas_[config_.num_nodes - 1 - i].byzantine = true;
  }
  for (uint32_t i = 0; i < config_.num_nodes; ++i) {
    net_.AddNode([this, i](const network::Message& msg) {
      HandleMessage(i, msg);
    });
  }
}

void PbftEngine::ResetRound() {
  for (auto& r : replicas_) {
    r.have_preprepare = false;
    r.sent_prepare = false;
    r.sent_commit = false;
    r.executed = false;
    r.digest = crypto::ZeroDigest();
    r.prepares.clear();
    r.commits.clear();
  }
}

size_t PbftEngine::ExecutedCount() const {
  size_t n = 0;
  for (const auto& r : replicas_) n += r.executed ? 1 : 0;
  return n;
}

void PbftEngine::HandleMessage(network::NodeId self,
                               const network::Message& msg) {
  Replica& r = replicas_[self];
  if (r.byzantine) return;  // silent fault: ignores all protocol traffic

  const uint32_t f = fault_tolerance();
  if (msg.type == "pbft/pre-prepare") {
    if (r.have_preprepare) return;
    r.have_preprepare = true;
    r.digest = crypto::Sha256::Hash(msg.payload);
    // The leader's pre-prepare counts as its prepare vote.
    r.prepares.insert(msg.from);
    // Enter the prepare phase: broadcast PREPARE(digest).
    if (!r.sent_prepare) {
      r.sent_prepare = true;
      r.prepares.insert(self);
      net_.Broadcast(self, "pbft/prepare", crypto::DigestToBytes(r.digest));
    }
  } else if (msg.type == "pbft/prepare") {
    r.prepares.insert(msg.from);
    // prepared == pre-prepare + 2f matching prepares.
    if (r.have_preprepare && r.prepares.size() >= 2 * f + 1 &&
        !r.sent_commit) {
      r.sent_commit = true;
      r.commits.insert(self);
      net_.Broadcast(self, "pbft/commit", crypto::DigestToBytes(r.digest));
      if (r.commits.size() >= 2 * f + 1) r.executed = true;
    }
  } else if (msg.type == "pbft/commit") {
    r.commits.insert(msg.from);
    if (r.sent_commit && r.commits.size() >= 2 * f + 1) r.executed = true;
  }
}

Result<CommitResult> PbftEngine::Propose(const Bytes& payload) {
  const uint32_t n = config_.num_nodes;
  const uint32_t f = fault_tolerance();
  if (n < 4) {
    return Status::InvalidArgument("pbft requires at least 4 replicas");
  }
  if (config_.byzantine_nodes > f) {
    return Status::FailedPrecondition(
        "byzantine nodes exceed pbft fault tolerance f=(n-1)/3");
  }

  const auto start_metrics = net_.metrics();
  const Timestamp start = clock_.NowMicros();
  ++sequence_;

  // Try successive views until an honest leader drives execution.
  for (uint32_t attempt = 0; attempt < n; ++attempt) {
    ResetRound();
    const uint32_t leader = static_cast<uint32_t>(view_ % n);
    if (replicas_[leader].byzantine) {
      // Faulty leader: replicas time out and force a view change.
      clock_.Advance(config_.timeout_us);
      ++view_;
      continue;
    }

    // Leader pre-prepares; it is implicitly prepared/committed on its own
    // proposal.
    Replica& lr = replicas_[leader];
    lr.have_preprepare = true;
    lr.digest = crypto::Sha256::Hash(payload);
    lr.sent_prepare = true;
    lr.prepares.insert(leader);
    net_.Broadcast(leader, "pbft/pre-prepare", payload);
    net_.RunUntilIdle();

    if (ExecutedCount() >= 2 * f + 1) {
      CommitResult result;
      result.payload_digest = crypto::Sha256::Hash(payload);
      result.proposer = leader;
      result.metrics.messages =
          net_.metrics().messages_sent - start_metrics.messages_sent;
      result.metrics.bytes =
          net_.metrics().bytes_sent - start_metrics.bytes_sent;
      result.metrics.rounds = 3 + attempt;  // pre-prepare/prepare/commit
      result.metrics.latency_us = clock_.NowMicros() - start;
      return result;
    }
    ++view_;
  }
  return Status::TimedOut("pbft failed to commit in any view");
}

}  // namespace consensus
}  // namespace provledger
