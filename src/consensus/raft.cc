#include "consensus/raft.h"

#include "common/codec.h"

namespace provledger {
namespace consensus {

RaftEngine::RaftEngine(const ConsensusConfig& config)
    : config_(config), clock_(), net_(&clock_, config.seed, config.net) {
  peers_.resize(config_.num_nodes);
  // The last `crashed_nodes` ids start crashed.
  for (uint32_t i = 0; i < config_.crashed_nodes && i < config_.num_nodes;
       ++i) {
    peers_[config_.num_nodes - 1 - i].crashed = true;
  }
  for (uint32_t i = 0; i < config_.num_nodes; ++i) {
    net_.AddNode([this, i](const network::Message& msg) {
      HandleMessage(i, msg);
    });
  }
}

size_t RaftEngine::AliveCount() const {
  size_t n = 0;
  for (const auto& p : peers_) n += p.crashed ? 0 : 1;
  return n;
}

void RaftEngine::CrashLeader() {
  if (leader_ >= 0) {
    peers_[leader_].crashed = true;
    leader_ = -1;
  }
}

void RaftEngine::HandleMessage(network::NodeId self,
                               const network::Message& msg) {
  Peer& p = peers_[self];
  if (p.crashed) return;

  if (msg.type == "raft/request-vote") {
    Decoder dec(msg.payload);
    uint64_t candidate_term = 0;
    if (!dec.GetU64(&candidate_term).ok()) return;
    if (candidate_term > p.voted_term) {
      p.voted_term = candidate_term;
      Encoder enc;
      enc.PutU64(candidate_term);
      net_.Send(self, msg.from, "raft/vote-granted", enc.TakeBuffer());
    }
  } else if (msg.type == "raft/vote-granted") {
    ++votes_;
  } else if (msg.type == "raft/append-entries") {
    p.log_length++;
    p.acked_index = p.log_length;
    net_.Send(self, msg.from, "raft/append-ack", Bytes{});
  } else if (msg.type == "raft/append-ack") {
    ++acks_;
  } else if (msg.type == "raft/commit-notify") {
    // Followers learn the commit index; no reply required.
  }
}

Status RaftEngine::ElectLeader() {
  // Candidates try in id order (a deterministic stand-in for randomized
  // election timeouts).
  for (uint32_t candidate = 0; candidate < config_.num_nodes; ++candidate) {
    if (peers_[candidate].crashed) continue;
    ++term_;
    votes_ = 1;  // self-vote
    peers_[candidate].voted_term = term_;
    Encoder enc;
    enc.PutU64(term_);
    net_.Broadcast(candidate, "raft/request-vote", enc.buffer());
    net_.RunUntilIdle();
    if (votes_ * 2 > config_.num_nodes) {
      leader_ = static_cast<int32_t>(candidate);
      return Status::OK();
    }
    clock_.Advance(config_.timeout_us / 10);  // election timeout, retry
  }
  return Status::Unavailable("no candidate achieved a majority");
}

Result<CommitResult> RaftEngine::Propose(const Bytes& payload) {
  if (AliveCount() * 2 <= config_.num_nodes) {
    return Status::Unavailable(
        "raft quorum unavailable: too many crashed nodes");
  }
  const auto start_metrics = net_.metrics();
  const Timestamp start = clock_.NowMicros();
  uint64_t rounds = 0;

  if (leader_ < 0 || peers_[leader_].crashed) {
    PROVLEDGER_RETURN_NOT_OK(ElectLeader());
    ++rounds;
  }

  // Replicate: AppendEntries to all, commit on majority ack.
  acks_ = 1;  // leader's own log append
  peers_[leader_].log_length++;
  peers_[leader_].acked_index = peers_[leader_].log_length;
  net_.Broadcast(static_cast<network::NodeId>(leader_), "raft/append-entries",
                 payload);
  net_.RunUntilIdle();
  ++rounds;

  if (acks_ * 2 <= config_.num_nodes) {
    return Status::TimedOut("append-entries did not reach a majority");
  }

  // Leader advances the commit index and notifies followers.
  ++log_index_;
  Encoder enc;
  enc.PutU64(log_index_);
  net_.Broadcast(static_cast<network::NodeId>(leader_), "raft/commit-notify",
                 enc.buffer());
  net_.RunUntilIdle();
  ++rounds;

  CommitResult result;
  Encoder digest_enc;
  digest_enc.PutU64(log_index_);
  digest_enc.PutBytes(payload);
  result.payload_digest = crypto::Sha256::Hash(digest_enc.buffer());
  result.proposer = static_cast<uint32_t>(leader_);
  result.metrics.messages =
      net_.metrics().messages_sent - start_metrics.messages_sent;
  result.metrics.bytes = net_.metrics().bytes_sent - start_metrics.bytes_sent;
  result.metrics.rounds = rounds;
  result.metrics.latency_us = clock_.NowMicros() - start;
  return result;
}

}  // namespace consensus
}  // namespace provledger
