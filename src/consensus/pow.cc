#include "consensus/pow.h"

#include "common/codec.h"

namespace provledger {
namespace consensus {

uint32_t LeadingZeroBits(const crypto::Digest& digest) {
  uint32_t bits = 0;
  for (uint8_t byte : digest) {
    if (byte == 0) {
      bits += 8;
      continue;
    }
    for (int i = 7; i >= 0; --i) {
      if (byte & (1 << i)) return bits;
      ++bits;
    }
  }
  return bits;
}

PowEngine::PowEngine(const ConsensusConfig& config)
    : config_(config),
      clock_(),
      net_(&clock_, config.seed, config.net),
      rng_(config.seed ^ 0x9057'0000'0001ULL) {
  for (uint32_t i = 0; i < config_.num_nodes; ++i) {
    net_.AddNode([](const network::Message&) {});
  }
}

Result<CommitResult> PowEngine::Propose(const Bytes& payload) {
  if (config_.pow_difficulty_bits > 40) {
    return Status::InvalidArgument("difficulty too high for simulation");
  }
  const auto start_metrics = net_.metrics();
  const Timestamp start = clock_.NowMicros();

  // Mine: search nonces until the digest clears the target. The nonce
  // search starts at a seed-derived offset so distinct engines/heights do
  // not share search paths.
  crypto::Digest digest;
  uint64_t nonce = rng_.NextU64();
  uint64_t attempts = 0;
  for (;;) {
    Encoder enc;
    enc.PutU64(height_);
    enc.PutU64(nonce);
    enc.PutBytes(payload);
    digest = crypto::Sha256::Hash(enc.buffer());
    ++attempts;
    if (LeadingZeroBits(digest) >= config_.pow_difficulty_bits) break;
    ++nonce;
  }
  last_nonce_ = nonce;

  // Simulated mining time across the aggregate network hash rate.
  const int64_t mining_us = static_cast<int64_t>(
      static_cast<double>(attempts) / config_.pow_hashrate_per_us);
  clock_.Advance(mining_us);

  // Winner (stake in PoW = hash power; pick uniformly) broadcasts the block.
  const uint32_t winner =
      static_cast<uint32_t>(rng_.NextBelow(config_.num_nodes));
  net_.Broadcast(winner, "pow/block", payload);
  net_.RunUntilIdle();

  ++height_;
  CommitResult result;
  result.payload_digest = digest;
  result.proposer = winner;
  result.metrics.messages = net_.metrics().messages_sent - start_metrics.messages_sent;
  result.metrics.bytes = net_.metrics().bytes_sent - start_metrics.bytes_sent;
  result.metrics.rounds = 1;
  result.metrics.latency_us = clock_.NowMicros() - start;
  result.metrics.hash_attempts = attempts;
  return result;
}

}  // namespace consensus
}  // namespace provledger
