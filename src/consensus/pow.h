// Proof-of-Work consensus (Nakamoto-style mining): real hash-target search
// over SHA-256 with the block broadcast modelled on the simulated network.
// Simulated mining latency = attempts / aggregate hash rate, so the §6.1
// "difficulty level" axis sweeps honestly (attempts double per bit).
//
// Thread safety: NOT internally synchronized — each engine instance is
// driven from a single (simulation) thread.

#ifndef PROVLEDGER_CONSENSUS_POW_H_
#define PROVLEDGER_CONSENSUS_POW_H_

#include "consensus/engine.h"

namespace provledger {
namespace consensus {

/// \brief Nakamoto PoW over the validator set.
class PowEngine : public ConsensusEngine {
 public:
  explicit PowEngine(const ConsensusConfig& config);

  std::string name() const override { return "pow"; }
  Result<CommitResult> Propose(const Bytes& payload) override;
  Timestamp now_us() const override { return clock_.NowMicros(); }

  /// The winning nonce of the last commit (exposed for chain sealing).
  uint64_t last_nonce() const { return last_nonce_; }

 private:
  ConsensusConfig config_;
  SimClock clock_;
  network::SimNetwork net_;
  Rng rng_;
  uint64_t height_ = 0;
  uint64_t last_nonce_ = 0;
};

}  // namespace consensus
}  // namespace provledger

#endif  // PROVLEDGER_CONSENSUS_POW_H_
