// Raft consensus: leader election (RequestVote) plus log replication
// (AppendEntries) with majority quorum, O(n) messages per commit, and
// crash-fault injection. Raft is the crash-fault-tolerant engine used by
// the consortium EO-data design of §4.1; the consensus benches contrast its
// linear message complexity with PBFT's quadratic one.
//
// Thread safety: NOT internally synchronized — each engine instance is
// driven from a single (simulation) thread.

#ifndef PROVLEDGER_CONSENSUS_RAFT_H_
#define PROVLEDGER_CONSENSUS_RAFT_H_

#include "consensus/engine.h"

namespace provledger {
namespace consensus {

/// \brief Raft engine; tolerates (n-1)/2 crashed nodes.
class RaftEngine : public ConsensusEngine {
 public:
  explicit RaftEngine(const ConsensusConfig& config);

  std::string name() const override { return "raft"; }
  Result<CommitResult> Propose(const Bytes& payload) override;
  Timestamp now_us() const override { return clock_.NowMicros(); }

  /// Current leader, or -1 when no leader has been elected yet.
  int32_t leader() const { return leader_; }
  uint64_t term() const { return term_; }

  /// Crash the current leader (fault injection: the next Propose must run
  /// a new election).
  void CrashLeader();

 private:
  struct Peer {
    bool crashed = false;
    uint64_t voted_term = 0;   // highest term this peer voted in
    uint64_t log_length = 0;   // replicated entries
    uint64_t acked_index = 0;  // highest index acknowledged
  };

  void HandleMessage(network::NodeId self, const network::Message& msg);
  Status ElectLeader();
  size_t AliveCount() const;

  ConsensusConfig config_;
  SimClock clock_;
  network::SimNetwork net_;
  std::vector<Peer> peers_;
  uint64_t term_ = 0;
  int32_t leader_ = -1;
  uint64_t log_index_ = 0;
  // Round-scoped tallies.
  uint32_t votes_ = 0;
  uint32_t acks_ = 0;
};

}  // namespace consensus
}  // namespace provledger

#endif  // PROVLEDGER_CONSENSUS_RAFT_H_
