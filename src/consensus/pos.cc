#include "consensus/pos.h"

#include "common/codec.h"

namespace provledger {
namespace consensus {

PosEngine::PosEngine(const ConsensusConfig& config)
    : config_(config), clock_(), net_(&clock_, config.seed, config.net) {
  stakes_ = config.stakes;
  if (stakes_.empty()) stakes_.assign(config_.num_nodes, 100);
  stakes_.resize(config_.num_nodes, 100);
  for (uint64_t s : stakes_) total_stake_ += s;

  // Node handlers: validators attest to proposals by replying to the leader.
  for (uint32_t i = 0; i < config_.num_nodes; ++i) {
    net_.AddNode([this, i](const network::Message& msg) {
      if (msg.type == "pos/propose") {
        // Validate (payload is opaque here) and attest back to the leader.
        net_.Send(i, msg.from, "pos/attest", Bytes{});
      } else if (msg.type == "pos/attest") {
        attestations_ += stakes_[msg.from];
      }
    });
  }

  // Genesis seed derived from the engine seed.
  Encoder enc;
  enc.PutU64(config_.seed);
  slot_seed_ = crypto::Sha256::Hash(enc.buffer());
}

uint32_t PosEngine::ElectLeader() {
  // seed_{t+1} = H(seed_t || slot); leader picked stake-proportionally from
  // the seed's low 64 bits.
  Encoder enc;
  enc.PutRaw(crypto::DigestToBytes(slot_seed_));
  enc.PutU64(slot_);
  slot_seed_ = crypto::Sha256::Hash(enc.buffer());

  uint64_t draw = 0;
  for (int i = 0; i < 8; ++i) draw = (draw << 8) | slot_seed_[i];
  uint64_t ticket = draw % total_stake_;
  uint64_t acc = 0;
  for (uint32_t i = 0; i < stakes_.size(); ++i) {
    acc += stakes_[i];
    if (ticket < acc) return i;
  }
  return static_cast<uint32_t>(stakes_.size() - 1);
}

Result<CommitResult> PosEngine::Propose(const Bytes& payload) {
  const auto start_metrics = net_.metrics();
  const Timestamp start = clock_.NowMicros();

  ++slot_;
  const uint32_t leader = ElectLeader();
  last_leader_ = leader;
  attestations_ = stakes_[leader];  // leader implicitly attests

  net_.Broadcast(leader, "pos/propose", payload);
  net_.RunUntilIdle();

  // 2/3 total-stake quorum, counting the leader's own stake.
  if (attestations_ * 3 < total_stake_ * 2) {
    return Status::Unavailable("insufficient stake attested");
  }

  CommitResult result;
  Encoder enc;
  enc.PutU64(slot_);
  enc.PutBytes(payload);
  result.payload_digest = crypto::Sha256::Hash(enc.buffer());
  result.proposer = leader;
  result.metrics.messages =
      net_.metrics().messages_sent - start_metrics.messages_sent;
  result.metrics.bytes = net_.metrics().bytes_sent - start_metrics.bytes_sent;
  result.metrics.rounds = 2;  // propose + attest
  result.metrics.latency_us = clock_.NowMicros() - start;
  return result;
}

}  // namespace consensus
}  // namespace provledger
