// Pluggable consensus engines (§2.1 of the paper: PoW, PoS, BFT; §4.1's EO
// system additionally uses Raft — all four are implemented here over the
// deterministic simulated network).
//
// An engine commits one opaque payload per Propose() call and reports the
// §6.1 evaluation metrics: protocol messages, bytes, rounds, simulated
// latency, and (for PoW) hash attempts. Engines keep protocol state across
// calls (PBFT view, Raft term/leader, PoS seed chain).
//
// Thread safety: NOT internally synchronized — each engine instance is
// driven from a single (simulation) thread.

#ifndef PROVLEDGER_CONSENSUS_ENGINE_H_
#define PROVLEDGER_CONSENSUS_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "network/sim_network.h"

namespace provledger {
namespace consensus {

/// \brief Per-commit metrics (§6.1 evaluation axes).
struct CommitMetrics {
  uint64_t messages = 0;       // protocol messages sent
  uint64_t bytes = 0;          // protocol bytes sent
  uint64_t rounds = 0;         // protocol phases/rounds executed
  int64_t latency_us = 0;      // simulated wall time to commit
  uint64_t hash_attempts = 0;  // PoW only
};

/// \brief Result of a successful commit.
struct CommitResult {
  crypto::Digest payload_digest;
  uint32_t proposer = 0;  // node id that led the commit
  CommitMetrics metrics;
};

/// \brief Engine configuration.
struct ConsensusConfig {
  /// Validator count.
  uint32_t num_nodes = 4;
  /// Deterministic seed for the engine's network and randomness.
  uint64_t seed = 1;
  /// Network behaviour for protocol messages.
  network::NetworkOptions net;

  /// PoW: required leading zero bits of the block hash.
  uint32_t pow_difficulty_bits = 12;
  /// PoW: simulated aggregate hash rate, hashes per microsecond.
  double pow_hashrate_per_us = 10.0;

  /// PoS: per-node stake; empty = equal stake.
  std::vector<uint64_t> stakes;

  /// PBFT: number of byzantine (silent) nodes to simulate.
  uint32_t byzantine_nodes = 0;
  /// Raft: number of crashed (unresponsive) nodes to simulate.
  uint32_t crashed_nodes = 0;
  /// PBFT/Raft: give up after this much simulated time per commit.
  int64_t timeout_us = 10'000'000;
};

/// \brief Abstract consensus engine.
class ConsensusEngine {
 public:
  virtual ~ConsensusEngine() = default;

  /// Engine name for reports ("pow", "pos", "pbft", "raft").
  virtual std::string name() const = 0;

  /// Drive the protocol until `payload` is committed by the validator set
  /// (or fail: TimedOut for liveness loss, FailedPrecondition for
  /// insufficient honest nodes).
  virtual Result<CommitResult> Propose(const Bytes& payload) = 0;

  /// Total simulated time consumed so far.
  virtual Timestamp now_us() const = 0;
};

/// \brief Factory. `kind` ∈ {"pow", "pos", "pbft", "raft"}.
Result<std::unique_ptr<ConsensusEngine>> MakeEngine(
    const std::string& kind, const ConsensusConfig& config);

/// Count of leading zero bits of a digest (PoW target check).
uint32_t LeadingZeroBits(const crypto::Digest& digest);

}  // namespace consensus
}  // namespace provledger

#endif  // PROVLEDGER_CONSENSUS_ENGINE_H_
