#include "consensus/engine.h"

#include "consensus/pbft.h"
#include "consensus/pos.h"
#include "consensus/pow.h"
#include "consensus/raft.h"

namespace provledger {
namespace consensus {

Result<std::unique_ptr<ConsensusEngine>> MakeEngine(
    const std::string& kind, const ConsensusConfig& config) {
  if (config.num_nodes == 0) {
    return Status::InvalidArgument("consensus requires at least one node");
  }
  if (kind == "pow") {
    return std::unique_ptr<ConsensusEngine>(new PowEngine(config));
  }
  if (kind == "pos") {
    return std::unique_ptr<ConsensusEngine>(new PosEngine(config));
  }
  if (kind == "pbft") {
    return std::unique_ptr<ConsensusEngine>(new PbftEngine(config));
  }
  if (kind == "raft") {
    return std::unique_ptr<ConsensusEngine>(new RaftEngine(config));
  }
  return Status::InvalidArgument("unknown consensus engine: " + kind);
}

}  // namespace consensus
}  // namespace provledger
