#include "audit/auditor.h"

#include <dirent.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/fileio.h"
#include "common/framed_log.h"
#include "common/thread_pool.h"
#include "prov/columnar.h"

namespace provledger {
namespace audit {

namespace {

/// Chain-log / kv-segment per-frame checks shared by the offline audits.
void AddFrameFinding(AuditReport* report, AuditSource source,
                     const std::string& segment, uint64_t offset,
                     uint64_t frame_index, const std::string& what) {
  AuditFinding finding;
  finding.source = source;
  finding.segment = segment;
  finding.offset = offset;
  finding.detail = "frame " + std::to_string(frame_index) + ": " + what;
  report->findings.push_back(std::move(finding));
}

/// Per-transaction canonical record checks over a decoded block,
/// localizing to (height, tx index, record id). `segment`/`offset` carry
/// through for offline findings.
void CheckBlockRecords(const ledger::Block& block, const std::string& segment,
                       uint64_t offset, std::vector<AuditFinding>* out) {
  for (size_t j = 0; j < block.transactions.size(); ++j) {
    const ledger::Transaction& tx = block.transactions[j];
    if (tx.type != "prov/record") continue;
    AuditFinding finding;
    finding.source = AuditSource::kRecordCodec;
    finding.height = block.header.height;
    finding.tx_index = static_cast<int32_t>(j);
    finding.segment = segment;
    finding.offset = offset;
    auto rec = prov::ProvenanceRecord::Decode(tx.payload);
    if (!rec.ok()) {
      finding.detail = "record payload does not decode: " +
                       rec.status().message();
      out->push_back(std::move(finding));
    } else if (rec->Encode() != tx.payload) {
      finding.record_id = rec->record_id;
      finding.detail = "record payload is not canonical";
      out->push_back(std::move(finding));
    }
  }
}

std::vector<std::string> ListSegmentFiles(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".log") == 0) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

const char* AuditSourceName(AuditSource source) {
  switch (source) {
    case AuditSource::kChainHeader:
      return "chain-header";
    case AuditSource::kMerkleRoot:
      return "merkle-root";
    case AuditSource::kSignature:
      return "signature";
    case AuditSource::kRecordCodec:
      return "record-codec";
    case AuditSource::kStoreIndex:
      return "store-index";
    case AuditSource::kColumnarCodec:
      return "columnar-codec";
    case AuditSource::kChainLog:
      return "chain-log";
    case AuditSource::kKvSegment:
      return "kv-segment";
  }
  return "unknown";
}

std::string AuditFinding::ToString() const {
  std::string out = AuditSourceName(source);
  out += "@" + std::to_string(height);
  if (tx_index >= 0) out += "/tx" + std::to_string(tx_index);
  if (!record_id.empty()) out += " record=" + record_id;
  if (!segment.empty()) {
    out += " " + segment + "+" + std::to_string(offset);
  }
  out += ": " + detail;
  return out;
}

ContinuousAuditor::ContinuousAuditor(const ledger::Blockchain* chain,
                                     const prov::ProvenanceStore* store,
                                     ContinuousAuditorOptions options)
    : chain_(chain), store_(store), options_(std::move(options)) {
  obs::Registry* registry = options_.registry != nullptr
                                ? options_.registry
                                : obs::Registry::Default();
  lag_gauge_ = registry->GetGauge(
      "audit_lag_blocks", "Blocks between chain head and the audited cursor");
  findings_counter_ = registry->GetCounter(
      "audit_findings_total", "Integrity violations found across passes");
  auto view = chain_->AcquireChainView();
  std::lock_guard<std::mutex> lock(run_mu_);
  cursor_hash_ = view->hashes[0];
}

ContinuousAuditor::~ContinuousAuditor() { Stop(); }

ContinuousAuditor::BlockCheck ContinuousAuditor::AuditBlock(
    const ledger::ChainView& view, uint64_t height) const {
  BlockCheck out;
  const ledger::Block& b = *view.blocks[height];
  const ledger::Block& parent = *view.blocks[height - 1];
  out.txs = b.transactions.size();
  auto add = [&out, height](AuditSource source, int32_t tx_index,
                            std::string record_id, std::string detail) {
    AuditFinding finding;
    finding.source = source;
    finding.height = height;
    finding.tx_index = tx_index;
    finding.record_id = std::move(record_id);
    finding.detail = std::move(detail);
    out.findings.push_back(std::move(finding));
  };

  if (b.header.height != height) {
    add(AuditSource::kChainHeader, -1, "",
        "header height " + std::to_string(b.header.height) +
            " does not match chain position");
  }
  if (b.header.Hash() != view.hashes[height]) {
    add(AuditSource::kChainHeader, -1, "",
        "header does not hash to its installed block hash");
  }
  if (b.header.prev_hash != view.hashes[height - 1]) {
    add(AuditSource::kChainHeader, -1, "",
        "prev_hash does not match the parent block");
  }
  if (b.header.timestamp < parent.header.timestamp) {
    add(AuditSource::kChainHeader, -1, "",
        "block timestamp precedes its parent");
  }
  if (ledger::Block::ComputeMerkleRoot(b.transactions) !=
      b.header.merkle_root) {
    add(AuditSource::kMerkleRoot, -1, "",
        "merkle root does not match the transactions");
  }

  const std::string* channel =
      store_ != nullptr ? &store_->options().channel : nullptr;
  for (size_t j = 0; j < b.transactions.size(); ++j) {
    const ledger::Transaction& tx = b.transactions[j];
    if (options_.verify_signatures) {
      Status sig = tx.VerifySignature();
      if (!sig.ok()) {
        add(AuditSource::kSignature, static_cast<int32_t>(j), "",
            sig.message());
      }
    }
    if (tx.type != "prov/record") continue;
    auto rec = prov::ProvenanceRecord::Decode(tx.payload);
    if (!rec.ok()) {
      add(AuditSource::kRecordCodec, static_cast<int32_t>(j), "",
          "record payload does not decode: " + rec.status().message());
      continue;
    }
    if (rec->Encode() != tx.payload) {
      add(AuditSource::kRecordCodec, static_cast<int32_t>(j),
          rec->record_id, "record payload is not canonical");
      continue;
    }
    // Only the store's own channel round-trips against the snapshot.
    if (channel == nullptr || tx.channel == *channel) {
      out.records.emplace_back(static_cast<uint32_t>(j),
                               std::move(rec).value());
    }
  }

  if (options_.check_columnar && !out.records.empty()) {
    std::vector<prov::ProvenanceRecord> batch;
    batch.reserve(out.records.size());
    for (const auto& entry : out.records) batch.push_back(entry.second);
    Bytes encoded = prov::columnar::EncodeRecordBatch(batch);
    auto decoded = prov::columnar::DecodeRecordBatch(encoded);
    if (!decoded.ok()) {
      add(AuditSource::kColumnarCodec, -1, "",
          "columnar batch does not round-trip: " +
              decoded.status().message());
    } else if (decoded->size() != batch.size()) {
      add(AuditSource::kColumnarCodec, -1, "",
          "columnar round trip changed the record count");
    } else {
      for (size_t i = 0; i < batch.size(); ++i) {
        if ((*decoded)[i].Encode() != batch[i].Encode()) {
          add(AuditSource::kColumnarCodec,
              static_cast<int32_t>(out.records[i].first),
              batch[i].record_id,
              "columnar round trip is not bit-identical");
        }
      }
    }
  }
  return out;
}

AuditReport ContinuousAuditor::RunPass() {
  std::lock_guard<std::mutex> run_lock(run_mu_);
  AuditReport report;
  auto view = chain_->AcquireChainView();
  report.head_height = view->height();

  // Reorg rewind: the block the cursor stopped at must still be the
  // main-chain block at that height; otherwise the audited prefix was
  // abandoned and the adopted chain is re-audited from genesis.
  if (cursor_height_ > view->height() ||
      view->hashes[cursor_height_] != cursor_hash_) {
    report.reorg_rewound = true;
    cursor_height_ = 0;
    cursor_hash_ = view->hashes[0];
  }

  // Cap at the snapshot's reflected height so every audited block can be
  // round-tripped against an epoch that already includes it.
  uint64_t limit = view->height();
  std::shared_ptr<const prov::GraphSnapshot> snap;
  if (store_ != nullptr && options_.check_store) {
    snap = store_->AcquireSnapshot();
    if (snap != nullptr) {
      report.epoch = snap->epoch();
      limit = std::min(limit, snap->chain_height());
    }
  }

  report.from_height = cursor_height_ + 1;
  report.to_height =
      std::min(limit, cursor_height_ + options_.max_blocks_per_pass);
  if (report.from_height > report.to_height) {
    lag_gauge_->Set(static_cast<int64_t>(report.head_height - cursor_height_));
    passes_.fetch_add(1, std::memory_order_relaxed);
    return report;
  }

  const uint64_t from = report.from_height;
  const size_t count =
      static_cast<size_t>(report.to_height - report.from_height + 1);
  std::vector<BlockCheck> checks(count);
  if (options_.parallelism > 1 && count > 1) {
    // Fan disjoint height chunks out over the shared pool; the last chunk
    // runs inline (pool tasks never wait on pool tasks). Each task writes
    // only its own slots, and WaitGroup publishes them to this thread.
    const size_t chunks = std::min(options_.parallelism, count);
    const size_t per_chunk = (count + chunks - 1) / chunks;
    common::WaitGroup wg;
    wg.Add(chunks - 1);
    for (size_t c = 0; c + 1 < chunks; ++c) {
      const size_t begin = c * per_chunk;
      const size_t end = std::min(begin + per_chunk, count);
      common::ThreadPool::Shared().Submit([this, &view, &checks, &wg, from,
                                           begin, end] {
        for (size_t i = begin; i < end; ++i) {
          checks[i] = AuditBlock(*view, from + i);
        }
        wg.Done();
      });
    }
    for (size_t i = (chunks - 1) * per_chunk; i < count; ++i) {
      checks[i] = AuditBlock(*view, from + i);
    }
    wg.Wait();
  } else {
    for (size_t i = 0; i < count; ++i) {
      checks[i] = AuditBlock(*view, from + i);
    }
  }

  for (size_t i = 0; i < count; ++i) {
    ++report.blocks_audited;
    report.txs_audited += checks[i].txs;
    for (auto& finding : checks[i].findings) {
      report.findings.push_back(std::move(finding));
    }
  }

  // Record <-> index round-trip, serial with one reader per pass (reader
  // hydration is per-reader state; one pass shares it across blocks).
  if (snap != nullptr) {
    auto reader = snap->OpenReader();
    if (!reader.ok()) {
      AuditFinding finding;
      finding.source = AuditSource::kStoreIndex;
      finding.detail =
          "snapshot epoch " + std::to_string(snap->epoch()) +
          " does not open: " + reader.status().message();
      report.findings.push_back(std::move(finding));
    } else {
      for (size_t i = 0; i < count; ++i) {
        for (const auto& entry : checks[i].records) {
          ++report.records_checked;
          AuditFinding finding;
          finding.source = AuditSource::kStoreIndex;
          finding.height = from + i;
          finding.tx_index = static_cast<int32_t>(entry.first);
          finding.record_id = entry.second.record_id;
          auto stored = reader->graph().GetRecord(entry.second.record_id);
          if (!stored.ok()) {
            finding.detail = "on-chain record missing from snapshot epoch " +
                             std::to_string(snap->epoch());
            report.findings.push_back(std::move(finding));
          } else if (stored->Encode() != entry.second.Encode()) {
            finding.detail =
                "snapshot record disagrees with the on-chain encoding";
            report.findings.push_back(std::move(finding));
          }
        }
      }
    }
  }

  cursor_height_ = report.to_height;
  cursor_hash_ = view->hashes[cursor_height_];
  audited_height_.store(cursor_height_, std::memory_order_release);
  lag_gauge_->Set(static_cast<int64_t>(report.head_height - cursor_height_));
  passes_.fetch_add(1, std::memory_order_relaxed);
  blocks_total_.fetch_add(report.blocks_audited, std::memory_order_relaxed);
  records_total_.fetch_add(report.records_checked,
                           std::memory_order_relaxed);
  if (!report.findings.empty()) {
    findings_total_.fetch_add(report.findings.size(),
                              std::memory_order_relaxed);
    findings_counter_->Increment(report.findings.size());
    std::lock_guard<std::mutex> lock(findings_mu_);
    for (const auto& finding : report.findings) {
      findings_.push_back(finding);
    }
  }
  return report;
}

uint64_t ContinuousAuditor::lag_blocks() const {
  const uint64_t head = chain_->AcquireChainView()->height();
  const uint64_t audited = audited_height_.load(std::memory_order_acquire);
  // A reorg can briefly leave the cursor above the adopted head; the next
  // pass rewinds it, and until then the lag is simply "nothing to do".
  return head > audited ? head - audited : 0;
}

void ContinuousAuditor::Rewind() {
  std::lock_guard<std::mutex> lock(run_mu_);
  cursor_height_ = 0;
  cursor_hash_ = chain_->AcquireChainView()->hashes[0];
  audited_height_.store(0, std::memory_order_release);
}

std::vector<AuditFinding> ContinuousAuditor::TakeFindings() {
  std::lock_guard<std::mutex> lock(findings_mu_);
  std::vector<AuditFinding> out;
  out.swap(findings_);
  return out;
}

void ContinuousAuditor::BackgroundLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    (void)RunPass();  // findings are accumulated for TakeFindings()
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.pass_interval_us));
  }
}

void ContinuousAuditor::Start() {
  if (running_) return;
  stop_.store(false, std::memory_order_release);
  background_ = std::thread([this] { BackgroundLoop(); });
  running_ = true;
}

void ContinuousAuditor::Stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  background_.join();
  running_ = false;
}

AuditReport ContinuousAuditor::AuditChainLogFile(const std::string& path) {
  AuditReport report;
  auto data = ReadFileToBytes(path);
  if (!data.ok()) {
    AuditFinding finding;
    finding.source = AuditSource::kChainLog;
    finding.segment = path;
    finding.detail = data.status().ToString();
    report.findings.push_back(std::move(finding));
    return report;
  }
  const Bytes& buf = data.value();
  size_t pos = 0;
  uint64_t frame_index = 0;
  uint64_t prev_height = 0;
  crypto::Digest prev_hash = crypto::ZeroDigest();
  bool have_prev = false;
  while (pos < buf.size()) {
    size_t payload_len = 0;
    FrameScan scan = ScanFrameAt(buf, pos, &payload_len);
    if (scan == FrameScan::kTorn) {
      AddFrameFinding(&report, AuditSource::kChainLog, path, pos, frame_index,
                      "torn tail frame (crash artifact; recoverable)");
      break;
    }
    Bytes payload(buf.begin() + pos + kFrameHeaderBytes,
                  buf.begin() + pos + kFrameHeaderBytes + payload_len);
    auto block = prov::columnar::DecodeBlock(payload);
    if (scan == FrameScan::kCorrupt) {
      AddFrameFinding(&report, AuditSource::kChainLog, path, pos, frame_index,
                      "crc mismatch");
      // Best-effort localization inside the damaged frame: the payload
      // often still decodes structurally, pointing at the block/tx whose
      // bytes changed.
      if (block.ok()) {
        if (ledger::Block::ComputeMerkleRoot(block->transactions) !=
            block->header.merkle_root) {
          AuditFinding finding;
          finding.source = AuditSource::kMerkleRoot;
          finding.height = block->header.height;
          finding.segment = path;
          finding.offset = pos;
          finding.detail = "merkle root does not match the transactions";
          report.findings.push_back(std::move(finding));
        }
        CheckBlockRecords(*block, path, pos, &report.findings);
      }
    } else if (!block.ok()) {
      AddFrameFinding(&report, AuditSource::kChainLog, path, pos, frame_index,
                      "block does not decode: " + block.status().message());
    } else {
      ++report.blocks_audited;
      report.txs_audited += block->transactions.size();
      if (report.blocks_audited == 1) report.from_height =
          block->header.height;
      report.to_height = block->header.height;
      if (have_prev && block->header.height != prev_height + 1) {
        AuditFinding finding;
        finding.source = AuditSource::kChainHeader;
        finding.height = block->header.height;
        finding.segment = path;
        finding.offset = pos;
        finding.detail = "height discontinuity after " +
                         std::to_string(prev_height);
        report.findings.push_back(std::move(finding));
      }
      if (have_prev && block->header.prev_hash != prev_hash) {
        AuditFinding finding;
        finding.source = AuditSource::kChainHeader;
        finding.height = block->header.height;
        finding.segment = path;
        finding.offset = pos;
        finding.detail = "prev_hash does not match the previous logged block";
        report.findings.push_back(std::move(finding));
      }
      if (ledger::Block::ComputeMerkleRoot(block->transactions) !=
          block->header.merkle_root) {
        AuditFinding finding;
        finding.source = AuditSource::kMerkleRoot;
        finding.height = block->header.height;
        finding.segment = path;
        finding.offset = pos;
        finding.detail = "merkle root does not match the transactions";
        report.findings.push_back(std::move(finding));
      }
      CheckBlockRecords(*block, path, pos, &report.findings);
      prev_height = block->header.height;
      prev_hash = block->header.Hash();
      have_prev = true;
    }
    pos += kFrameHeaderBytes + payload_len;
    ++frame_index;
  }
  report.head_height = prev_height;
  return report;
}

AuditReport ContinuousAuditor::AuditKvSegmentDir(const std::string& dir) {
  AuditReport report;
  const std::vector<std::string> segments = ListSegmentFiles(dir);
  if (segments.empty()) {
    AuditFinding finding;
    finding.source = AuditSource::kKvSegment;
    finding.segment = dir;
    finding.detail = "no .log segments found";
    report.findings.push_back(std::move(finding));
    return report;
  }
  for (const auto& name : segments) {
    const std::string path = dir + "/" + name;
    auto data = ReadFileToBytes(path);
    if (!data.ok()) {
      AuditFinding finding;
      finding.source = AuditSource::kKvSegment;
      finding.segment = name;
      finding.detail = data.status().ToString();
      report.findings.push_back(std::move(finding));
      continue;
    }
    const Bytes& buf = data.value();
    size_t pos = 0;
    uint64_t frame_index = 0;
    while (pos < buf.size()) {
      size_t payload_len = 0;
      FrameScan scan = ScanFrameAt(buf, pos, &payload_len);
      if (scan == FrameScan::kTorn) {
        AddFrameFinding(&report, AuditSource::kKvSegment, name, pos,
                        frame_index,
                        "torn tail frame (crash artifact; recoverable)");
        break;
      }
      if (scan == FrameScan::kCorrupt) {
        AddFrameFinding(&report, AuditSource::kKvSegment, name, pos,
                        frame_index, "crc mismatch");
      }
      // Frames verified (valid or damaged) are tallied as "blocks" for
      // lack of a better unit — the kv layer has no block concept.
      ++report.blocks_audited;
      pos += kFrameHeaderBytes + payload_len;
      ++frame_index;
    }
  }
  return report;
}

}  // namespace audit
}  // namespace provledger
