// ContinuousAuditor: incremental, tamper-localizing integrity verification
// that runs *while the system ingests*. Where Blockchain::VerifyIntegrity
// and ProvenanceStore::AuditAll are stop-the-world yes/no sweeps, the
// auditor works from a cursor: each pass covers only the blocks accepted
// since the last audited height, reading an immutable ChainView + the
// store's published GraphSnapshot epoch, so it never touches live
// single-owner state and never blocks the committer.
//
// Per-block work items (fanned out over common::ThreadPool when
// parallelism > 1):
//   * header link + installed-hash + height + timestamp monotonicity
//   * Merkle root recompute over the transaction leaves
//   * per-transaction signature verification
//   * record decode + canonical re-encode of every prov/record payload
//   * columnar batch encode/decode bit-identity over the block's records
// plus, serially against the snapshot epoch:
//   * record <-> index round-trip (each on-chain record must be present
//     in, and byte-identical to, the published snapshot)
//
// Every violation becomes a structured AuditFinding that localizes the
// damage — block height, transaction index, record id, or artifact
// segment + byte offset — instead of a bare Corruption (the issues+
// confidence reporting surface of the provenance-integrity literature).
//
// Thread safety: RunPass()/Start()/Stop()/Rewind() are serialized
// internally (one pass at a time); the counters and TakeFindings() are
// safe from any thread. The auditor only ever *reads* published immutable
// views, so it coexists with a live committer with no coordination —
// that is the point.

#ifndef PROVLEDGER_AUDIT_AUDITOR_H_
#define PROVLEDGER_AUDIT_AUDITOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "ledger/chain.h"
#include "prov/store.h"

namespace provledger {
namespace audit {

/// \brief Which integrity surface a finding came from.
enum class AuditSource : uint8_t {
  kChainHeader = 0,    // height / hash link / installed hash / timestamp
  kMerkleRoot = 1,     // root recompute mismatch
  kSignature = 2,      // transaction signature failure
  kRecordCodec = 3,    // record decode or canonical re-encode failure
  kStoreIndex = 4,     // chain record vs snapshot round-trip mismatch
  kColumnarCodec = 5,  // columnar batch round-trip not bit-identical
  kChainLog = 6,       // durable chain-log frame (offline audit)
  kKvSegment = 7,      // durable kv segment frame (offline audit)
};

const char* AuditSourceName(AuditSource source);

/// \brief One localized integrity violation.
struct AuditFinding {
  AuditSource source = AuditSource::kChainHeader;
  /// Block height the finding localizes to (0 when unknown/not a block).
  uint64_t height = 0;
  /// Transaction index within the block; -1 = whole block.
  int32_t tx_index = -1;
  /// Record id, when the damage localizes to one record.
  std::string record_id;
  /// Artifact file for offline (chain log / kv segment) findings.
  std::string segment;
  /// Byte offset of the damaged frame within `segment`.
  uint64_t offset = 0;
  std::string detail;

  /// "source@height[/tx][ record][ segment+offset]: detail".
  std::string ToString() const;
};

/// \brief Outcome of one incremental pass.
struct AuditReport {
  /// Heights covered this pass, inclusive; from > to means an empty pass
  /// (already caught up to the auditable limit).
  uint64_t from_height = 1;
  uint64_t to_height = 0;
  /// Snapshot epoch the store checks ran against (0 = none acquired).
  uint64_t epoch = 0;
  /// Chain head height in the acquired view.
  uint64_t head_height = 0;
  size_t blocks_audited = 0;
  size_t txs_audited = 0;
  size_t records_checked = 0;
  /// True when the cursor hash no longer matched the view (reorg): the
  /// cursor was rewound to genesis and the adopted chain re-audits.
  bool reorg_rewound = false;
  std::vector<AuditFinding> findings;

  bool clean() const { return findings.empty(); }
};

/// \brief Auditor configuration.
struct ContinuousAuditorOptions {
  /// Cap on blocks verified per pass — the incremental-work knob that
  /// bounds how long a pass can hold the calling thread.
  size_t max_blocks_per_pass = 64;
  bool verify_signatures = true;
  /// Round-trip each on-chain record against the snapshot epoch.
  bool check_store = true;
  /// Re-encode/decode each block's records through the columnar codec and
  /// require bit-identity.
  bool check_columnar = true;
  /// Fan per-block chain checks out over common::ThreadPool::Shared()
  /// (one chunk runs inline). 0 or 1 = all inline on the calling thread.
  size_t parallelism = 0;
  /// Background mode: sleep between passes (microseconds).
  uint64_t pass_interval_us = 1000;
  /// Metric registry for the cursor-lag gauge and findings counter
  /// (nullptr = obs::Registry::Default()).
  obs::Registry* registry = nullptr;
};

/// \brief Cursor-driven incremental chain/store auditor; see file comment.
class ContinuousAuditor {
 public:
  /// `store` may be nullptr (chain-only auditing). Neither pointer is
  /// owned; both must outlive the auditor.
  ContinuousAuditor(
      const ledger::Blockchain* chain, const prov::ProvenanceStore* store,
      ContinuousAuditorOptions options = ContinuousAuditorOptions());
  ~ContinuousAuditor();

  ContinuousAuditor(const ContinuousAuditor&) = delete;
  ContinuousAuditor& operator=(const ContinuousAuditor&) = delete;

  /// One incremental pass over at most max_blocks_per_pass blocks past
  /// the cursor, capped at the snapshot epoch's height when store checks
  /// are on (so chain and store are always compared at the same instant).
  /// Advances the cursor past every block that produced no finding; a
  /// block with findings is not re-audited either — the cursor records
  /// it as covered, the findings record the damage.
  AuditReport RunPass() PROV_EXCLUDES(run_mu_);

  /// Start the background loop: RunPass every pass_interval_us on a
  /// dedicated thread. No-op when already running.
  void Start() PROV_EXCLUDES(run_mu_);
  /// Stop and join the background loop (idempotent).
  void Stop();

  /// Reset the cursor to genesis so the next pass re-audits the whole
  /// chain (post-incident sweeps, tamper drills).
  void Rewind() PROV_EXCLUDES(run_mu_);

  /// \name Monitoring counters — safe from any thread.
  /// @{
  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }
  /// Highest height the cursor has covered.
  uint64_t audited_height() const {
    return audited_height_.load(std::memory_order_acquire);
  }
  uint64_t blocks_audited() const {
    return blocks_total_.load(std::memory_order_relaxed);
  }
  uint64_t records_audited() const {
    return records_total_.load(std::memory_order_relaxed);
  }
  uint64_t findings_total() const {
    return findings_total_.load(std::memory_order_relaxed);
  }
  /// Blocks between the current chain head and the audited cursor — how
  /// far behind the auditor is right now. Reads the published chain view
  /// and the atomic cursor only: monitoring this does NOT drain the
  /// findings channel (TakeFindings()) or take the pass lock.
  uint64_t lag_blocks() const;
  /// @}

  /// Drain the findings accumulated across passes (background mode's
  /// reporting channel). Safe from any thread.
  std::vector<AuditFinding> TakeFindings() PROV_EXCLUDES(findings_mu_);

  /// \name Offline artifact audits (static one-shots).
  /// Frame-by-frame verification of durable files, localizing damage to
  /// segment + byte offset + frame index — and, when a damaged chain-log
  /// frame still decodes, down to block/tx.
  /// @{
  /// Audit a ChainLog file: CRC every frame, decode every block (legacy
  /// or columnar body), re-check header continuity, Merkle roots, and
  /// record canonicality.
  static AuditReport AuditChainLogFile(const std::string& path);
  /// Audit every *.log segment of a FileKvStore directory (CRC frames).
  static AuditReport AuditKvSegmentDir(const std::string& dir);
  /// @}

 private:
  /// Chain-side checks for the block at `height` in `view`; decoded
  /// records are handed back for the serial store phase.
  struct BlockCheck {
    std::vector<AuditFinding> findings;
    /// (tx index, decoded record) for each canonical prov/record payload.
    std::vector<std::pair<uint32_t, prov::ProvenanceRecord>> records;
    size_t txs = 0;
  };
  BlockCheck AuditBlock(const ledger::ChainView& view, uint64_t height) const;
  void BackgroundLoop();

  const ledger::Blockchain* chain_;
  const prov::ProvenanceStore* store_;
  ContinuousAuditorOptions options_;

  // One pass at a time; also guards the cursor.
  std::mutex run_mu_;
  uint64_t cursor_height_ PROV_GUARDED_BY(run_mu_) = 0;
  crypto::Digest cursor_hash_ PROV_GUARDED_BY(run_mu_);

  std::mutex findings_mu_;
  std::vector<AuditFinding> findings_ PROV_GUARDED_BY(findings_mu_);

  std::atomic<uint64_t> passes_{0};
  std::atomic<uint64_t> audited_height_{0};
  std::atomic<uint64_t> blocks_total_{0};
  std::atomic<uint64_t> records_total_{0};
  std::atomic<uint64_t> findings_total_{0};

  std::atomic<bool> stop_{false};
  std::thread background_;
  bool running_ = false;

  // Cached registry cells (resolved once in the constructor).
  obs::Gauge* lag_gauge_;
  obs::Counter* findings_counter_;
};

}  // namespace audit
}  // namespace provledger

#endif  // PROVLEDGER_AUDIT_AUDITOR_H_
