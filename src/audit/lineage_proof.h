// Succinct lineage proofs: a compact, versioned bundle proving one
// record's *full ancestry DAG* against nothing but main-chain headers —
// the "trustless provenance tree" primitive. Where ledger::TxProof shows
// that one transaction is on the chain, a LineageProof shows that a
// record AND every ancestor that produced its inputs (transitively, BFS
// over input/output entity edges) are all anchored, and that the claimed
// derivation edges actually connect them. The verifier needs no graph, no
// store, and no blocks: just a way to map a height to the main-chain
// block hash (what any header-syncing light client holds).
//
// Wire format (all fixed-width, canonical — decode of any accepted input
// re-encodes bit-identically):
//
//   "PLLPRF01"                    8-byte magic + version
//   target_record_id              length-prefixed string
//   u32 header_count              deduplicated block headers, strictly
//   header_count x BlockHeader      increasing height (canonical order)
//   u32 node_count                nodes[0] is the target record
//   node_count x {
//     u32   header_index          into the header table
//     bytes tx_encoding           full canonical Transaction encoding
//                                   (the Merkle leaf payload)
//     MerkleProof                 inclusion under that header's root
//   }
//
// Thread safety: plain value types and pure free functions — distinct
// instances are independent; concurrent const access to one instance is
// safe. BuildLineageProof reads the store/chain under their single-owner
// contract (call it from the owning thread or on quiescent state).

#ifndef PROVLEDGER_AUDIT_LINEAGE_PROOF_H_
#define PROVLEDGER_AUDIT_LINEAGE_PROOF_H_

#include <functional>
#include <string>
#include <vector>

#include "ledger/block.h"
#include "prov/store.h"

namespace provledger {
namespace audit {

/// \brief One proven ancestor: the anchoring transaction's canonical
/// bytes plus its Merkle inclusion proof under headers[header_index].
struct LineageProofNode {
  uint32_t header_index = 0;
  Bytes tx_encoding;
  crypto::MerkleProof merkle_proof;
};

/// \brief Versioned ancestry-DAG proof; see the file comment for the
/// wire layout and VerifyLineageProof for what acceptance means.
struct LineageProof {
  std::string target_record_id;
  /// Deduplicated main-chain headers, strictly increasing height.
  std::vector<ledger::BlockHeader> headers;
  /// BFS order from the target (nodes[0] proves target_record_id).
  std::vector<LineageProofNode> nodes;

  void EncodeTo(Encoder* enc) const;
  Bytes Encode() const;
  /// Strict decode: structural bounds, header ordering, and version are
  /// enforced here; cryptographic checks live in VerifyLineageProof.
  static Result<LineageProof> DecodeFrom(Decoder* dec);
  /// Whole-buffer decode; trailing bytes are Corruption.
  static Result<LineageProof> Decode(const Bytes& data);

  size_t EncodedSize() const { return Encode().size(); }
};

/// \brief The verifier's only trust root: main-chain block hash by
/// height (NotFound past the head). A follower passes
/// `[&chain](uint64_t h) { return chain.BlockHashAt(h); }`; a storeless
/// light client wraps whatever header list it synced.
using HeaderHashAt = std::function<Result<crypto::Digest>(uint64_t)>;

/// \brief What a successful verification established, decoded once so
/// callers need not re-parse the proof.
struct LineageSummary {
  /// All proven record ids, BFS order ([0] = target).
  std::vector<std::string> record_ids;
  /// Input entities consumed inside the DAG but produced by no proven
  /// ancestor — the DAG's source frontier (e.g. raw external inputs).
  std::vector<std::string> frontier_inputs;
};

/// \brief Build the ancestry proof for `record_id`: BFS the input/output
/// entity edges through the store's query index, then attach one Merkle
/// inclusion proof per ancestor, sharing headers across records anchored
/// in the same block. Runs on the store owner's thread (or quiescent
/// state) like any live store read.
Result<LineageProof> BuildLineageProof(const prov::ProvenanceStore& store,
                                       const std::string& record_id);

/// \brief Verify `proof` against main-chain headers alone. Establishes:
///   1. every header hashes to the main-chain hash at its height;
///   2. every node's transaction is Merkle-included under its header,
///      decodes as a prov/record transaction, and carries a canonical
///      record encoding;
///   3. nodes[0] is `record_id`, record ids are unique, and every other
///      node is reachable from the target over input→producer edges
///      (a valid-but-unrelated record smuggled into the bundle fails);
/// Corruption (with a localizing message) on any violation.
Status VerifyLineageProof(const LineageProof& proof,
                          const std::string& record_id,
                          const HeaderHashAt& main_chain_hash_at,
                          LineageSummary* summary = nullptr);

}  // namespace audit
}  // namespace provledger

#endif  // PROVLEDGER_AUDIT_LINEAGE_PROOF_H_
