#include "audit/lineage_proof.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "prov/query.h"

namespace provledger {
namespace audit {

namespace {

// 8-byte magic doubles as the format version ("01"); bump it for any
// layout change so old verifiers reject new proofs instead of misreading.
constexpr char kMagic[] = "PLLPRF01";
constexpr size_t kMagicSize = 8;

std::string NodeLabel(size_t index, const std::string& record_id) {
  return "node " + std::to_string(index) +
         (record_id.empty() ? "" : " (record " + record_id + ")");
}

}  // namespace

void LineageProof::EncodeTo(Encoder* enc) const {
  enc->PutRaw(reinterpret_cast<const uint8_t*>(kMagic), kMagicSize);
  enc->PutString(target_record_id);
  enc->PutU32(static_cast<uint32_t>(headers.size()));
  for (const auto& header : headers) header.EncodeTo(enc);
  enc->PutU32(static_cast<uint32_t>(nodes.size()));
  for (const auto& node : nodes) {
    enc->PutU32(node.header_index);
    enc->PutBytes(node.tx_encoding);
    node.merkle_proof.EncodeTo(enc);
  }
}

Bytes LineageProof::Encode() const {
  Encoder enc;
  EncodeTo(&enc);
  return enc.TakeBuffer();
}

Result<LineageProof> LineageProof::DecodeFrom(Decoder* dec) {
  Bytes magic;
  PROVLEDGER_RETURN_NOT_OK(dec->GetRaw(kMagicSize, &magic));
  if (!std::equal(magic.begin(), magic.end(),
                  reinterpret_cast<const uint8_t*>(kMagic))) {
    return Status::Corruption("bad lineage proof magic/version");
  }
  LineageProof proof;
  PROVLEDGER_RETURN_NOT_OK(dec->GetString(&proof.target_record_id));
  uint32_t header_count = 0;
  PROVLEDGER_RETURN_NOT_OK(dec->GetU32(&header_count));
  // Counts are untrusted: grow by decoding, never by resize(count), so a
  // forged count cannot allocate past the input (truncation fails the
  // first missing element instead).
  for (uint32_t i = 0; i < header_count; ++i) {
    PROVLEDGER_ASSIGN_OR_RETURN(ledger::BlockHeader header,
                                ledger::BlockHeader::DecodeFrom(dec));
    if (!proof.headers.empty() &&
        header.height <= proof.headers.back().height) {
      return Status::Corruption(
          "lineage proof headers not strictly increasing by height");
    }
    proof.headers.push_back(std::move(header));
  }
  uint32_t node_count = 0;
  PROVLEDGER_RETURN_NOT_OK(dec->GetU32(&node_count));
  for (uint32_t i = 0; i < node_count; ++i) {
    LineageProofNode node;
    PROVLEDGER_RETURN_NOT_OK(dec->GetU32(&node.header_index));
    if (node.header_index >= proof.headers.size()) {
      return Status::Corruption("lineage proof node references header " +
                                std::to_string(node.header_index) +
                                " past the header table");
    }
    PROVLEDGER_RETURN_NOT_OK(dec->GetBytes(&node.tx_encoding));
    PROVLEDGER_ASSIGN_OR_RETURN(node.merkle_proof,
                                crypto::MerkleProof::DecodeFrom(dec));
    proof.nodes.push_back(std::move(node));
  }
  return proof;
}

Result<LineageProof> LineageProof::Decode(const Bytes& data) {
  Decoder dec(data);
  PROVLEDGER_ASSIGN_OR_RETURN(LineageProof proof, DecodeFrom(&dec));
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes after lineage proof");
  }
  return proof;
}

Result<LineageProof> BuildLineageProof(const prov::ProvenanceStore& store,
                                       const std::string& record_id) {
  const ledger::Blockchain* chain = store.chain();
  // BFS the ancestry: a record depends on the producers of each of its
  // input entities (wasGeneratedBy edges through the query index, which
  // already resolves the implicit subject-version outputs).
  std::vector<std::string> order;
  std::unordered_set<std::string> seen{record_id};
  std::deque<std::string> queue{record_id};
  while (!queue.empty()) {
    std::string id = std::move(queue.front());
    queue.pop_front();
    PROVLEDGER_ASSIGN_OR_RETURN(prov::ProvenanceRecord rec,
                                store.GetRecord(id));
    order.push_back(std::move(id));
    for (const auto& input : rec.inputs) {
      prov::QueryResult producers =
          store.Execute(prov::Query().WithOutput(input));
      for (const auto& producer : producers.records) {
        if (seen.insert(producer.record_id).second) {
          queue.push_back(producer.record_id);
        }
      }
    }
  }

  // One TxProof per ancestor; headers shared through a height-keyed table
  // (records batched into one block cost one header, not one each).
  struct NodeDraft {
    uint64_t height = 0;
    Bytes tx_encoding;
    crypto::MerkleProof merkle_proof;
  };
  std::vector<NodeDraft> drafts;
  drafts.reserve(order.size());
  std::unordered_map<uint64_t, ledger::BlockHeader> headers_by_height;
  for (const auto& id : order) {
    PROVLEDGER_ASSIGN_OR_RETURN(crypto::Digest txid, store.RecordTxId(id));
    PROVLEDGER_ASSIGN_OR_RETURN(ledger::Transaction tx,
                                chain->GetTransaction(txid));
    PROVLEDGER_ASSIGN_OR_RETURN(ledger::TxProof tx_proof,
                                chain->ProveTransaction(txid));
    NodeDraft draft;
    draft.height = tx_proof.header.height;
    draft.tx_encoding = tx.Encode();
    draft.merkle_proof = std::move(tx_proof.merkle_proof);
    headers_by_height.emplace(draft.height, std::move(tx_proof.header));
    drafts.push_back(std::move(draft));
  }

  LineageProof proof;
  proof.target_record_id = record_id;
  std::vector<uint64_t> heights;
  heights.reserve(headers_by_height.size());
  for (const auto& entry : headers_by_height) heights.push_back(entry.first);
  std::sort(heights.begin(), heights.end());
  std::unordered_map<uint64_t, uint32_t> height_index;
  proof.headers.reserve(heights.size());
  for (uint64_t h : heights) {
    height_index.emplace(h, static_cast<uint32_t>(proof.headers.size()));
    proof.headers.push_back(std::move(headers_by_height.at(h)));
  }
  proof.nodes.reserve(drafts.size());
  for (auto& draft : drafts) {
    LineageProofNode node;
    node.header_index = height_index.at(draft.height);
    node.tx_encoding = std::move(draft.tx_encoding);
    node.merkle_proof = std::move(draft.merkle_proof);
    proof.nodes.push_back(std::move(node));
  }
  return proof;
}

Status VerifyLineageProof(const LineageProof& proof,
                          const std::string& record_id,
                          const HeaderHashAt& main_chain_hash_at,
                          LineageSummary* summary) {
  if (proof.target_record_id != record_id) {
    return Status::Corruption("proof targets record '" +
                              proof.target_record_id + "', not '" +
                              record_id + "'");
  }
  if (proof.nodes.empty() || proof.headers.empty()) {
    return Status::Corruption("lineage proof has no nodes");
  }

  // 1. Anchor every header to the verifier's main chain: the hash at the
  // claimed height must equal the header's own hash. Everything below
  // derives its trust from this step.
  for (size_t i = 0; i < proof.headers.size(); ++i) {
    const ledger::BlockHeader& header = proof.headers[i];
    if (i > 0 && header.height <= proof.headers[i - 1].height) {
      return Status::Corruption(
          "lineage proof headers not strictly increasing by height");
    }
    Result<crypto::Digest> expected = main_chain_hash_at(header.height);
    if (!expected.ok() || expected.value() != header.Hash()) {
      return Status::Corruption("header at height " +
                                std::to_string(header.height) +
                                " is not on the main chain");
    }
  }

  // 2. Per node: Merkle inclusion under its header, strict transaction +
  // record decoding, canonical record bytes, unique record ids.
  struct VerifiedNode {
    prov::ProvenanceRecord record;
  };
  std::vector<VerifiedNode> verified;
  verified.reserve(proof.nodes.size());
  std::unordered_map<std::string, size_t> node_by_record;
  for (size_t i = 0; i < proof.nodes.size(); ++i) {
    const LineageProofNode& node = proof.nodes[i];
    if (node.header_index >= proof.headers.size()) {
      return Status::Corruption(NodeLabel(i, "") +
                                " references header past the table");
    }
    auto tx = ledger::Transaction::Decode(node.tx_encoding);
    if (!tx.ok()) {
      return Status::Corruption(NodeLabel(i, "") + ": " +
                                tx.status().message());
    }
    if (tx->type != "prov/record") {
      return Status::Corruption(NodeLabel(i, "") +
                                " is not a provenance record transaction");
    }
    auto record = prov::ProvenanceRecord::Decode(tx->payload);
    if (!record.ok()) {
      return Status::Corruption(NodeLabel(i, "") + ": " +
                                record.status().message());
    }
    if (record->Encode() != tx->payload) {
      return Status::Corruption(NodeLabel(i, record->record_id) +
                                " carries a non-canonical record encoding");
    }
    // Bind leaf_index to the proof path: VerifyProof derives the root
    // from the step sides alone, so without this an attacker could flip
    // leaf_index bits undetected. The node is a right child at level s
    // exactly when bit s of its index is set, and no index bits may
    // extend past the proof depth.
    const crypto::MerkleProof& mp = node.merkle_proof;
    if (mp.steps.size() < 64 && (mp.leaf_index >> mp.steps.size()) != 0) {
      return Status::Corruption(NodeLabel(i, record->record_id) +
                                ": leaf index exceeds its proof depth");
    }
    for (size_t s = 0; s < mp.steps.size(); ++s) {
      if (mp.steps[s].sibling_on_left != (((mp.leaf_index >> s) & 1) != 0)) {
        return Status::Corruption(NodeLabel(i, record->record_id) +
                                  ": merkle step side disagrees with the "
                                  "leaf index");
      }
    }
    if (!crypto::MerkleTree::VerifyProof(
            proof.headers[node.header_index].merkle_root, node.tx_encoding,
            node.merkle_proof)) {
      return Status::Corruption(NodeLabel(i, record->record_id) +
                                ": merkle inclusion failed at height " +
                                std::to_string(
                                    proof.headers[node.header_index].height));
    }
    if (!node_by_record.emplace(record->record_id, i).second) {
      return Status::Corruption(NodeLabel(i, record->record_id) +
                                " duplicates an earlier node");
    }
    verified.push_back(VerifiedNode{std::move(record).value()});
  }
  if (verified[0].record.record_id != record_id) {
    return Status::Corruption("first node proves record '" +
                              verified[0].record.record_id +
                              "', not the target");
  }

  // 3. DAG closure: every node must be reachable from the target over
  // input -> producer edges, under the graph's effective-output rule
  // (a record with no declared outputs produces a new version of its
  // subject). A valid-but-unrelated record — anchored, Merkle-proven —
  // still fails here, because it produces nothing the DAG consumes.
  std::unordered_map<std::string, std::vector<size_t>> producers_of;
  for (size_t i = 0; i < verified.size(); ++i) {
    const prov::ProvenanceRecord& rec = verified[i].record;
    if (rec.outputs.empty()) {
      producers_of[rec.subject].push_back(i);
    } else {
      for (const auto& out : rec.outputs) producers_of[out].push_back(i);
    }
  }
  std::vector<bool> reachable(verified.size(), false);
  reachable[0] = true;
  std::deque<size_t> frontier{0};
  std::unordered_set<std::string> source_inputs;
  while (!frontier.empty()) {
    size_t i = frontier.front();
    frontier.pop_front();
    for (const auto& input : verified[i].record.inputs) {
      auto it = producers_of.find(input);
      if (it == producers_of.end()) {
        source_inputs.insert(input);
        continue;
      }
      for (size_t producer : it->second) {
        if (!reachable[producer]) {
          reachable[producer] = true;
          frontier.push_back(producer);
        }
      }
    }
  }
  for (size_t i = 0; i < reachable.size(); ++i) {
    if (!reachable[i]) {
      return Status::Corruption(NodeLabel(i, verified[i].record.record_id) +
                                " is not an ancestor of the target");
    }
  }
  // Unused headers would be freeloader weight a prover could stuff in.
  std::vector<bool> header_used(proof.headers.size(), false);
  for (const auto& node : proof.nodes) header_used[node.header_index] = true;
  for (size_t i = 0; i < header_used.size(); ++i) {
    if (!header_used[i]) {
      return Status::Corruption("header at height " +
                                std::to_string(proof.headers[i].height) +
                                " is referenced by no node");
    }
  }

  if (summary != nullptr) {
    summary->record_ids.clear();
    summary->frontier_inputs.assign(source_inputs.begin(),
                                    source_inputs.end());
    std::sort(summary->frontier_inputs.begin(),
              summary->frontier_inputs.end());
    summary->record_ids.reserve(verified.size());
    for (const auto& node : verified) {
      summary->record_ids.push_back(node.record.record_id);
    }
  }
  return Status::OK();
}

}  // namespace audit
}  // namespace provledger
