// Incentive contract (PrivChain [52]): participants who submit valid
// (range-)proofs about their private supply-chain data are paid
// automatically. Methods:
//   deposit(account, amount)        — fund an account (sponsor escrow)
//   reward(worker, amount)          — pay from the caller's escrow
//   balance(account)                — query
//   record_proof(worker, proof_id)  — log a verified proof and auto-reward
// The contract never sees the private data; the verifier calls
// record_proof only after Zkrp::Verify succeeds, which is exactly
// PrivChain's "proof instead of data, payment by smart contract" loop.
//
// Thread safety: NOT internally synchronized — single owner, or external
// locking around every call.

#ifndef PROVLEDGER_CONTRACTS_INCENTIVE_H_
#define PROVLEDGER_CONTRACTS_INCENTIVE_H_

#include "contracts/runtime.h"

namespace provledger {
namespace contracts {

/// \brief Escrowed proof-reward accounting.
class IncentiveContract : public Contract {
 public:
  /// `reward_per_proof` paid out on every record_proof call.
  explicit IncentiveContract(uint64_t reward_per_proof = 10);

  std::string name() const override { return "incentive"; }
  Result<Bytes> Invoke(ContractContext* ctx, const std::string& method,
                       const Bytes& args) override;

  /// Helpers for encoding arguments.
  static Bytes DepositArgs(const std::string& account, uint64_t amount);
  static Bytes RewardArgs(const std::string& worker, uint64_t amount);
  static Bytes BalanceArgs(const std::string& account);
  static Bytes RecordProofArgs(const std::string& worker,
                               const std::string& proof_id);

 private:
  Result<uint64_t> GetBalance(ContractContext* ctx, const std::string& account);
  Status SetBalance(ContractContext* ctx, const std::string& account,
                    uint64_t amount);

  uint64_t reward_per_proof_;
};

}  // namespace contracts
}  // namespace provledger

#endif  // PROVLEDGER_CONTRACTS_INCENTIVE_H_
