#include "contracts/runtime.h"

namespace provledger {
namespace contracts {

ContractContext::ContractContext(const std::string& contract,
                                 const std::string& caller, Timestamp now,
                                 storage::KvStore* state,
                                 const GasSchedule& schedule,
                                 uint64_t gas_limit)
    : contract_(contract),
      caller_(caller),
      now_(now),
      state_(state),
      schedule_(schedule),
      gas_limit_(gas_limit) {}

std::string ContractContext::Namespaced(const std::string& key) const {
  return "contract/" + contract_ + "/" + key;
}

Status ContractContext::Charge(uint64_t amount) {
  gas_used_ += amount;
  if (gas_used_ > gas_limit_) {
    return Status::ResourceExhausted("gas limit exceeded");
  }
  return Status::OK();
}

Result<Bytes> ContractContext::GetState(const std::string& key) {
  PROVLEDGER_RETURN_NOT_OK(Charge(schedule_.read_cost));
  const std::string k = Namespaced(key);
  auto overlay_it = overlay_.find(k);
  if (overlay_it != overlay_.end()) {
    if (!overlay_it->second.has_value()) {
      return Status::NotFound("key deleted in this invocation: " + key);
    }
    return *overlay_it->second;
  }
  return state_->Get(k);
}

Status ContractContext::PutState(const std::string& key, Bytes value) {
  PROVLEDGER_RETURN_NOT_OK(Charge(schedule_.write_cost));
  overlay_[Namespaced(key)] = std::move(value);
  return Status::OK();
}

Status ContractContext::PutState(const std::string& key,
                                 const std::string& value) {
  return PutState(key, ToBytes(value));
}

Status ContractContext::DeleteState(const std::string& key) {
  PROVLEDGER_RETURN_NOT_OK(Charge(schedule_.write_cost));
  overlay_[Namespaced(key)] = std::nullopt;
  return Status::OK();
}

Status ContractContext::EmitEvent(const std::string& name,
                                  const std::string& data) {
  PROVLEDGER_RETURN_NOT_OK(Charge(schedule_.event_cost));
  events_.push_back(Event{contract_, name, data, now_});
  return Status::OK();
}

Status ContractContext::CommitTo(storage::KvStore* state) {
  storage::WriteBatch batch;
  for (const auto& [key, value] : overlay_) {
    if (value.has_value()) {
      batch.Put(key, *value);
    } else {
      batch.Delete(key);
    }
  }
  return state->Write(batch);
}

ContractRuntime::ContractRuntime(Clock* clock, GasSchedule schedule,
                                 uint64_t gas_limit)
    : clock_(clock), schedule_(schedule), gas_limit_(gas_limit) {}

Status ContractRuntime::Deploy(std::unique_ptr<Contract> contract) {
  const std::string name = contract->name();
  if (contracts_.count(name)) {
    return Status::AlreadyExists("contract already deployed: " + name);
  }
  contracts_.emplace(name, std::move(contract));
  return Status::OK();
}

bool ContractRuntime::IsDeployed(const std::string& name) const {
  return contracts_.count(name) > 0;
}

Result<InvokeReceipt> ContractRuntime::Invoke(const std::string& contract,
                                              const std::string& method,
                                              const Bytes& args,
                                              const std::string& caller) {
  auto it = contracts_.find(contract);
  if (it == contracts_.end()) {
    return Status::NotFound("contract not deployed: " + contract);
  }
  ContractContext ctx(contract, caller, clock_->NowMicros(), &state_,
                      schedule_, gas_limit_);
  PROVLEDGER_RETURN_NOT_OK(ctx.Charge(schedule_.base_cost));

  auto result = it->second->Invoke(&ctx, method, args);
  if (!result.ok()) return result.status();  // all state writes discarded

  PROVLEDGER_RETURN_NOT_OK(ctx.CommitTo(&state_));
  for (const auto& ev : ctx.events()) event_log_.push_back(ev);

  InvokeReceipt receipt;
  receipt.return_value = std::move(result).value();
  receipt.gas_used = ctx.gas_used();
  receipt.events = ctx.events();
  return receipt;
}

}  // namespace contracts
}  // namespace provledger
