#include "contracts/incentive.h"

#include "common/codec.h"

namespace provledger {
namespace contracts {

IncentiveContract::IncentiveContract(uint64_t reward_per_proof)
    : reward_per_proof_(reward_per_proof) {}

Bytes IncentiveContract::DepositArgs(const std::string& account,
                                     uint64_t amount) {
  Encoder enc;
  enc.PutString(account);
  enc.PutU64(amount);
  return enc.TakeBuffer();
}

Bytes IncentiveContract::RewardArgs(const std::string& worker,
                                    uint64_t amount) {
  return DepositArgs(worker, amount);
}

Bytes IncentiveContract::BalanceArgs(const std::string& account) {
  Encoder enc;
  enc.PutString(account);
  return enc.TakeBuffer();
}

Bytes IncentiveContract::RecordProofArgs(const std::string& worker,
                                         const std::string& proof_id) {
  Encoder enc;
  enc.PutString(worker);
  enc.PutString(proof_id);
  return enc.TakeBuffer();
}

Result<uint64_t> IncentiveContract::GetBalance(ContractContext* ctx,
                                               const std::string& account) {
  auto value = ctx->GetState("balance/" + account);
  if (!value.ok()) return uint64_t{0};
  Decoder dec(value.value());
  uint64_t amount = 0;
  PROVLEDGER_RETURN_NOT_OK(dec.GetU64(&amount));
  return amount;
}

Status IncentiveContract::SetBalance(ContractContext* ctx,
                                     const std::string& account,
                                     uint64_t amount) {
  Encoder enc;
  enc.PutU64(amount);
  return ctx->PutState("balance/" + account, enc.TakeBuffer());
}

Result<Bytes> IncentiveContract::Invoke(ContractContext* ctx,
                                        const std::string& method,
                                        const Bytes& args) {
  Decoder dec(args);
  if (method == "deposit") {
    std::string account;
    uint64_t amount = 0;
    PROVLEDGER_RETURN_NOT_OK(dec.GetString(&account));
    PROVLEDGER_RETURN_NOT_OK(dec.GetU64(&amount));
    PROVLEDGER_ASSIGN_OR_RETURN(uint64_t balance, GetBalance(ctx, account));
    PROVLEDGER_RETURN_NOT_OK(SetBalance(ctx, account, balance + amount));
    return Bytes{};
  }
  if (method == "reward") {
    std::string worker;
    uint64_t amount = 0;
    PROVLEDGER_RETURN_NOT_OK(dec.GetString(&worker));
    PROVLEDGER_RETURN_NOT_OK(dec.GetU64(&amount));
    PROVLEDGER_ASSIGN_OR_RETURN(uint64_t sponsor,
                                GetBalance(ctx, ctx->caller()));
    if (sponsor < amount) {
      return Status::FailedPrecondition("insufficient escrow balance");
    }
    PROVLEDGER_ASSIGN_OR_RETURN(uint64_t wb, GetBalance(ctx, worker));
    PROVLEDGER_RETURN_NOT_OK(SetBalance(ctx, ctx->caller(), sponsor - amount));
    PROVLEDGER_RETURN_NOT_OK(SetBalance(ctx, worker, wb + amount));
    PROVLEDGER_RETURN_NOT_OK(ctx->EmitEvent("rewarded", worker));
    return Bytes{};
  }
  if (method == "balance") {
    std::string account;
    PROVLEDGER_RETURN_NOT_OK(dec.GetString(&account));
    PROVLEDGER_ASSIGN_OR_RETURN(uint64_t balance, GetBalance(ctx, account));
    Encoder enc;
    enc.PutU64(balance);
    return enc.TakeBuffer();
  }
  if (method == "record_proof") {
    std::string worker, proof_id;
    PROVLEDGER_RETURN_NOT_OK(dec.GetString(&worker));
    PROVLEDGER_RETURN_NOT_OK(dec.GetString(&proof_id));
    // One reward per proof id.
    if (ctx->GetState("proof/" + proof_id).ok()) {
      return Status::AlreadyExists("proof already rewarded: " + proof_id);
    }
    PROVLEDGER_ASSIGN_OR_RETURN(uint64_t sponsor,
                                GetBalance(ctx, ctx->caller()));
    if (sponsor < reward_per_proof_) {
      return Status::FailedPrecondition("insufficient escrow for reward");
    }
    PROVLEDGER_ASSIGN_OR_RETURN(uint64_t wb, GetBalance(ctx, worker));
    PROVLEDGER_RETURN_NOT_OK(ctx->PutState("proof/" + proof_id, worker));
    PROVLEDGER_RETURN_NOT_OK(
        SetBalance(ctx, ctx->caller(), sponsor - reward_per_proof_));
    PROVLEDGER_RETURN_NOT_OK(SetBalance(ctx, worker, wb + reward_per_proof_));
    PROVLEDGER_RETURN_NOT_OK(ctx->EmitEvent("proof-rewarded", proof_id));
    return Bytes{};
  }
  return Status::InvalidArgument("unknown method: " + method);
}

}  // namespace contracts
}  // namespace provledger
