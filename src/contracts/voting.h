// Threshold-vote contract (SmartProvenance [63]): provenance records are
// accepted onto the ledger only after a voter quorum approves them. Methods:
//   propose(id)        — open a ballot for a record hash
//   vote(id, approve)  — one vote per registered voter per ballot
//   status(id)         — "open" / "approved" / "rejected"
// A ballot closes as soon as the approval (or rejection) threshold is
// mathematically reached; "approved"/"rejected" events fire exactly once.
//
// Thread safety: NOT internally synchronized — single owner, or external
// locking around every call.

#ifndef PROVLEDGER_CONTRACTS_VOTING_H_
#define PROVLEDGER_CONTRACTS_VOTING_H_

#include <set>
#include <string>

#include "contracts/runtime.h"

namespace provledger {
namespace contracts {

/// \brief SmartProvenance-style record-approval voting.
///
/// Arguments are encoded with common/codec.h:
///   propose: PutString(ballot_id)
///   vote:    PutString(ballot_id), PutBool(approve)
///   status:  PutString(ballot_id)  -> returns the state string
class ThresholdVoteContract : public Contract {
 public:
  /// `voters` are the registered identities; a ballot passes when
  /// strictly more than `threshold_percent`% of them approve.
  ThresholdVoteContract(std::set<std::string> voters,
                        uint32_t threshold_percent = 50);

  std::string name() const override { return "threshold-vote"; }
  Result<Bytes> Invoke(ContractContext* ctx, const std::string& method,
                       const Bytes& args) override;

 private:
  Result<Bytes> Propose(ContractContext* ctx, const Bytes& args);
  Result<Bytes> Vote(ContractContext* ctx, const Bytes& args);
  Result<Bytes> GetStatus(ContractContext* ctx, const Bytes& args);

  std::set<std::string> voters_;
  uint32_t threshold_percent_;
};

}  // namespace contracts
}  // namespace provledger

#endif  // PROVLEDGER_CONTRACTS_VOTING_H_
