#include "contracts/voting.h"

#include "common/codec.h"

namespace provledger {
namespace contracts {

namespace {
std::string BallotKey(const std::string& id) { return "ballot/" + id; }
std::string VoteKey(const std::string& id, const std::string& voter) {
  return "ballot/" + id + "/vote/" + voter;
}
std::string CountKey(const std::string& id, bool approve) {
  return "ballot/" + id + (approve ? "/yes" : "/no");
}

Result<uint64_t> ReadCounter(ContractContext* ctx, const std::string& key) {
  auto value = ctx->GetState(key);
  if (!value.ok()) return uint64_t{0};
  Decoder dec(value.value());
  uint64_t n = 0;
  PROVLEDGER_RETURN_NOT_OK(dec.GetU64(&n));
  return n;
}

Status WriteCounter(ContractContext* ctx, const std::string& key, uint64_t n) {
  Encoder enc;
  enc.PutU64(n);
  return ctx->PutState(key, enc.TakeBuffer());
}
}  // namespace

ThresholdVoteContract::ThresholdVoteContract(std::set<std::string> voters,
                                             uint32_t threshold_percent)
    : voters_(std::move(voters)), threshold_percent_(threshold_percent) {}

Result<Bytes> ThresholdVoteContract::Invoke(ContractContext* ctx,
                                            const std::string& method,
                                            const Bytes& args) {
  if (method == "propose") return Propose(ctx, args);
  if (method == "vote") return Vote(ctx, args);
  if (method == "status") return GetStatus(ctx, args);
  return Status::InvalidArgument("unknown method: " + method);
}

Result<Bytes> ThresholdVoteContract::Propose(ContractContext* ctx,
                                             const Bytes& args) {
  Decoder dec(args);
  std::string id;
  PROVLEDGER_RETURN_NOT_OK(dec.GetString(&id));
  if (ctx->GetState(BallotKey(id)).ok()) {
    return Status::AlreadyExists("ballot already open: " + id);
  }
  PROVLEDGER_RETURN_NOT_OK(ctx->PutState(BallotKey(id), "open"));
  PROVLEDGER_RETURN_NOT_OK(ctx->EmitEvent("proposed", id));
  return ToBytes("open");
}

Result<Bytes> ThresholdVoteContract::Vote(ContractContext* ctx,
                                          const Bytes& args) {
  Decoder dec(args);
  std::string id;
  bool approve = false;
  PROVLEDGER_RETURN_NOT_OK(dec.GetString(&id));
  PROVLEDGER_RETURN_NOT_OK(dec.GetBool(&approve));

  if (!voters_.count(ctx->caller())) {
    return Status::PermissionDenied("not a registered voter: " +
                                    ctx->caller());
  }
  auto state = ctx->GetState(BallotKey(id));
  if (!state.ok()) return Status::NotFound("no such ballot: " + id);
  if (BytesToString(state.value()) != "open") {
    return Status::FailedPrecondition("ballot already closed: " + id);
  }
  if (ctx->GetState(VoteKey(id, ctx->caller())).ok()) {
    return Status::AlreadyExists("voter already voted: " + ctx->caller());
  }
  PROVLEDGER_RETURN_NOT_OK(
      ctx->PutState(VoteKey(id, ctx->caller()), approve ? "yes" : "no"));

  PROVLEDGER_ASSIGN_OR_RETURN(uint64_t count,
                              ReadCounter(ctx, CountKey(id, approve)));
  ++count;
  PROVLEDGER_RETURN_NOT_OK(WriteCounter(ctx, CountKey(id, approve), count));

  // Close the ballot once a side crosses the threshold.
  const uint64_t needed =
      voters_.size() * threshold_percent_ / 100 + 1;  // strictly more than %
  if (count >= needed) {
    const char* verdict = approve ? "approved" : "rejected";
    PROVLEDGER_RETURN_NOT_OK(ctx->PutState(BallotKey(id), verdict));
    PROVLEDGER_RETURN_NOT_OK(ctx->EmitEvent(verdict, id));
    return ToBytes(verdict);
  }
  return ToBytes("open");
}

Result<Bytes> ThresholdVoteContract::GetStatus(ContractContext* ctx,
                                               const Bytes& args) {
  Decoder dec(args);
  std::string id;
  PROVLEDGER_RETURN_NOT_OK(dec.GetString(&id));
  auto state = ctx->GetState(BallotKey(id));
  if (!state.ok()) return Status::NotFound("no such ballot: " + id);
  return state.value();
}

}  // namespace contracts
}  // namespace provledger
