// Deterministic smart-contract runtime (§2.1: "self-executing programs
// stored on the blockchain"). Contracts are C++ objects registered in a
// runtime; invocations are metered (gas), transactional (state mutations
// buffered and applied only on success), and emit events. The provenance
// layer anchors each invocation on the ledger so contract activity is itself
// provenance-tracked, as SmartProvenance and PrivChain require.
//
// Thread safety: NOT internally synchronized — single owner, or external
// locking around every call.

#ifndef PROVLEDGER_CONTRACTS_RUNTIME_H_
#define PROVLEDGER_CONTRACTS_RUNTIME_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "storage/kv_store.h"

namespace provledger {
namespace contracts {

/// \brief An event emitted during contract execution (PrivChain automates
/// incentive payouts off such events).
struct Event {
  std::string contract;
  std::string name;
  std::string data;
  Timestamp at = 0;
};

/// \brief Gas pricing: reads are cheap, writes and events cost more.
struct GasSchedule {
  uint64_t read_cost = 1;
  uint64_t write_cost = 10;
  uint64_t event_cost = 5;
  uint64_t base_cost = 10;
};

/// \brief Execution context handed to a contract method. All state access
/// goes through here so the runtime can meter gas and roll back on failure.
class ContractContext {
 public:
  ContractContext(const std::string& contract, const std::string& caller,
                  Timestamp now, storage::KvStore* state,
                  const GasSchedule& schedule, uint64_t gas_limit);

  /// Namespaced state read.
  Result<Bytes> GetState(const std::string& key);
  /// Namespaced, buffered state write (visible to later reads in the same
  /// invocation; durable only if the invocation succeeds).
  Status PutState(const std::string& key, Bytes value);
  Status PutState(const std::string& key, const std::string& value);
  Status DeleteState(const std::string& key);

  /// Emit an event.
  Status EmitEvent(const std::string& name, const std::string& data);

  const std::string& caller() const { return caller_; }
  Timestamp now() const { return now_; }
  uint64_t gas_used() const { return gas_used_; }

  /// Runtime internals.
  Status Charge(uint64_t amount);
  Status CommitTo(storage::KvStore* state);
  const std::vector<Event>& events() const { return events_; }

 private:
  std::string Namespaced(const std::string& key) const;

  std::string contract_;
  std::string caller_;
  Timestamp now_;
  storage::KvStore* state_;
  GasSchedule schedule_;
  uint64_t gas_limit_;
  uint64_t gas_used_ = 0;
  // Write overlay: key -> value (nullopt = deletion).
  std::map<std::string, std::optional<Bytes>> overlay_;
  std::vector<Event> events_;
};

/// \brief Base class for contracts.
class Contract {
 public:
  virtual ~Contract() = default;
  virtual std::string name() const = 0;
  /// Dispatch a method call. Returning non-OK rolls back all state writes.
  virtual Result<Bytes> Invoke(ContractContext* ctx, const std::string& method,
                               const Bytes& args) = 0;
};

/// \brief Result of a successful invocation.
struct InvokeReceipt {
  Bytes return_value;
  uint64_t gas_used = 0;
  std::vector<Event> events;
};

/// \brief Hosts registered contracts over a shared state store.
class ContractRuntime {
 public:
  explicit ContractRuntime(Clock* clock, GasSchedule schedule = GasSchedule(),
                           uint64_t gas_limit = 1'000'000);

  /// Register a contract under its name().
  Status Deploy(std::unique_ptr<Contract> contract);
  bool IsDeployed(const std::string& name) const;

  /// Invoke `contract.method(args)` as `caller`. State mutations are atomic
  /// with respect to failure.
  Result<InvokeReceipt> Invoke(const std::string& contract,
                               const std::string& method, const Bytes& args,
                               const std::string& caller);

  /// All events emitted by successful invocations, in order.
  const std::vector<Event>& event_log() const { return event_log_; }
  /// Direct (read-only) state access for tests and auditors.
  const storage::KvStore& state() const { return state_; }

 private:
  Clock* clock_;
  GasSchedule schedule_;
  uint64_t gas_limit_;
  storage::MemKvStore state_;
  std::map<std::string, std::unique_ptr<Contract>> contracts_;
  std::vector<Event> event_log_;
};

}  // namespace contracts
}  // namespace provledger

#endif  // PROVLEDGER_CONTRACTS_RUNTIME_H_
