#include "network/sim_network.h"

#include <cassert>

namespace provledger {
namespace network {

SimNetwork::SimNetwork(SimClock* clock, uint64_t seed, NetworkOptions options)
    : clock_(clock), rng_(seed), options_(options) {
  assert(clock != nullptr);
}

NodeId SimNetwork::AddNode(Handler handler) {
  handlers_.push_back(std::move(handler));
  return static_cast<NodeId>(handlers_.size() - 1);
}

namespace {
// Group index of nodes not named by any PartitionGroups() set.
constexpr size_t kRemainderGroup = static_cast<size_t>(-1);
}  // namespace

bool SimNetwork::Partitioned(NodeId a, NodeId b) const {
  if (!partitioned_) return false;
  auto group_of = [this](NodeId n) {
    auto it = partition_group_of_.find(n);
    return it == partition_group_of_.end() ? kRemainderGroup : it->second;
  };
  return group_of(a) != group_of(b);
}

void SimNetwork::Send(NodeId from, NodeId to, const std::string& type,
                      Bytes payload) {
  assert(to < handlers_.size());
  metrics_.messages_sent++;
  metrics_.bytes_sent += payload.size();

  if (Partitioned(from, to) || rng_.NextBool(options_.drop_rate)) {
    metrics_.messages_dropped++;
    return;
  }

  int64_t latency = options_.base_latency_us;
  if (options_.jitter_us > 0) {
    latency += static_cast<int64_t>(
        rng_.NextBelow(static_cast<uint64_t>(options_.jitter_us) + 1));
  }
  Event ev;
  ev.deliver_at = clock_->NowMicros() + latency;
  ev.seq = next_seq_++;
  ev.message = Message{from, to, type, std::move(payload)};
  queue_.push(std::move(ev));
}

void SimNetwork::Broadcast(NodeId from, const std::string& type,
                           const Bytes& payload) {
  for (NodeId to = 0; to < handlers_.size(); ++to) {
    if (to != from) Send(from, to, type, payload);
  }
}

void SimNetwork::Partition(const std::set<NodeId>& group_a) {
  PartitionGroups({group_a});
}

void SimNetwork::PartitionGroups(const std::vector<std::set<NodeId>>& groups) {
  partitioned_ = true;
  partition_group_of_.clear();
  for (size_t g = 0; g < groups.size(); ++g) {
    for (NodeId n : groups[g]) partition_group_of_.emplace(n, g);
  }
}

void SimNetwork::Heal() {
  partitioned_ = false;
  partition_group_of_.clear();
}

size_t SimNetwork::RunUntilIdle() {
  size_t delivered = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    clock_->SetMicros(ev.deliver_at + options_.processing_us);
    metrics_.messages_delivered++;
    ++delivered;
    handlers_[ev.message.to](ev.message);
  }
  return delivered;
}

size_t SimNetwork::RunUntil(Timestamp deadline) {
  size_t delivered = 0;
  while (!queue_.empty() && queue_.top().deliver_at <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    clock_->SetMicros(ev.deliver_at + options_.processing_us);
    metrics_.messages_delivered++;
    ++delivered;
    handlers_[ev.message.to](ev.message);
  }
  clock_->SetMicros(deadline);
  return delivered;
}

}  // namespace network
}  // namespace provledger
