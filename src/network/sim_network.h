// Deterministic discrete-event network simulation.
//
// Consensus engines (PBFT/Raft leader rounds), cross-chain relays, and the
// decentralized capture path of Figure 3 all exchange messages through a
// SimNetwork: delivery is scheduled on a SimClock with configurable latency,
// jitter, drop rate, and partitions, and the whole run is reproducible from
// the Rng seed. This is the substitute for the authors' real testbeds —
// message counts and simulated latencies preserve protocol *shape*
// (DESIGN.md §3).
//
// Thread safety: NOT internally synchronized — the discrete-event simulation
// is driven from exactly one thread.

#ifndef PROVLEDGER_NETWORK_SIM_NETWORK_H_
#define PROVLEDGER_NETWORK_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"

namespace provledger {
namespace network {

/// Node identifier within one simulated network.
using NodeId = uint32_t;

/// \brief A message in flight.
struct Message {
  NodeId from = 0;
  NodeId to = 0;
  std::string type;   // protocol-defined tag, e.g. "pbft/prepare"
  Bytes payload;
};

/// \brief Network behaviour knobs.
struct NetworkOptions {
  /// One-way base latency in microseconds.
  int64_t base_latency_us = 500;
  /// Uniform jitter added on top of base latency: [0, jitter_us].
  int64_t jitter_us = 200;
  /// Probability a message is silently dropped.
  double drop_rate = 0.0;
  /// Per-message processing cost added at the receiver.
  int64_t processing_us = 10;
};

/// \brief Aggregate traffic counters (the §6.1 "load"/"network size" axes).
struct NetworkMetrics {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;
  uint64_t bytes_sent = 0;
};

/// \brief Discrete-event simulated network over a SimClock.
class SimNetwork {
 public:
  using Handler = std::function<void(const Message&)>;

  SimNetwork(SimClock* clock, uint64_t seed,
             NetworkOptions options = NetworkOptions());

  /// Register a node; returns its id. Handlers run during Run*().
  NodeId AddNode(Handler handler);
  size_t node_count() const { return handlers_.size(); }

  /// Queue a message for future delivery.
  void Send(NodeId from, NodeId to, const std::string& type, Bytes payload);
  /// Send to every node except `from`.
  void Broadcast(NodeId from, const std::string& type, const Bytes& payload);

  /// Split the network: messages between `group_a` and everyone else are
  /// dropped until Heal() is called. Equivalent to PartitionGroups with the
  /// single group `group_a` (everyone else forms the remainder group).
  void Partition(const std::set<NodeId>& group_a);
  /// General split: each set is one partition group; nodes listed in no
  /// group form one implicit remainder group. Messages are delivered only
  /// between nodes of the same group until Heal(). A node listed in more
  /// than one group belongs to the first group that names it. Replaces any
  /// partition currently in effect.
  void PartitionGroups(const std::vector<std::set<NodeId>>& groups);
  void Heal();
  /// True while a Partition()/PartitionGroups() split is in effect.
  bool partitioned() const { return partitioned_; }

  /// Deliver events until the queue is empty; returns events delivered.
  size_t RunUntilIdle();
  /// Deliver events with timestamp <= deadline.
  size_t RunUntil(Timestamp deadline);

  const NetworkMetrics& metrics() const { return metrics_; }
  SimClock* clock() { return clock_; }

 private:
  struct Event {
    Timestamp deliver_at;
    uint64_t seq;  // tie-break for determinism
    Message message;
    bool operator>(const Event& other) const {
      if (deliver_at != other.deliver_at) return deliver_at > other.deliver_at;
      return seq > other.seq;
    }
  };

  bool Partitioned(NodeId a, NodeId b) const;

  SimClock* clock_;
  Rng rng_;
  NetworkOptions options_;
  std::vector<Handler> handlers_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  uint64_t next_seq_ = 0;
  NetworkMetrics metrics_;
  bool partitioned_ = false;
  // Node -> partition group index; unlisted nodes share the implicit
  // remainder group (kRemainderGroup).
  std::unordered_map<NodeId, size_t> partition_group_of_;
};

}  // namespace network
}  // namespace provledger

#endif  // PROVLEDGER_NETWORK_SIM_NETWORK_H_
