#include "common/rng.h"

#include <cmath>

namespace provledger {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Rng::NextRange(uint64_t lo, uint64_t hi) {
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian(double mean, double stddev) {
  // Box–Muller transform.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Bytes Rng::NextBytes(size_t n) {
  Bytes out(n);
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t r = NextU64();
    for (int j = 0; j < 8; ++j) out[i++] = static_cast<uint8_t>(r >> (8 * j));
  }
  if (i < n) {
    uint64_t r = NextU64();
    while (i < n) {
      out[i++] = static_cast<uint8_t>(r);
      r >>= 8;
    }
  }
  return out;
}

std::string Rng::NextAlnum(size_t n) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out(n, '\0');
  for (size_t i = 0; i < n; ++i) {
    out[i] = kAlphabet[NextBelow(sizeof(kAlphabet) - 1)];
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace provledger
