// Clock abstraction. Every timestamp in ProvLedger flows through a Clock so
// that tests and the discrete-event network simulation are fully
// deterministic (SimClock), while examples may use wall time (SystemClock).
//
// Thread safety: SystemClock is safe from any thread. SimClock is NOT
// synchronized — advance it from one thread (the test or simulation driver).

#ifndef PROVLEDGER_COMMON_CLOCK_H_
#define PROVLEDGER_COMMON_CLOCK_H_

#include <cstdint>
#include <memory>

namespace provledger {

/// Microseconds since an arbitrary epoch.
using Timestamp = int64_t;

/// \brief Source of timestamps.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds.
  virtual Timestamp NowMicros() const = 0;
};

/// \brief Wall-clock time.
class SystemClock : public Clock {
 public:
  Timestamp NowMicros() const override;
};

/// \brief Manually advanced clock for deterministic tests and simulation.
class SimClock : public Clock {
 public:
  explicit SimClock(Timestamp start = 1'700'000'000'000'000LL)
      : now_(start) {}

  Timestamp NowMicros() const override { return now_; }

  /// Advance time by `micros`; returns the new time.
  Timestamp Advance(Timestamp micros) {
    now_ += micros;
    return now_;
  }
  /// Jump to an absolute time (must not go backwards).
  void SetMicros(Timestamp t) {
    if (t > now_) now_ = t;
  }

 private:
  Timestamp now_;
};

}  // namespace provledger

#endif  // PROVLEDGER_COMMON_CLOCK_H_
