// A small fixed-size worker pool for CPU-parallel fan-out (parallel query
// execution, bench drivers). Deliberately minimal: FIFO task queue, no
// futures, no work stealing — callers coordinate completion with WaitGroup.
//
// Tasks must be non-blocking compute: a task that waits on another pool
// task can deadlock the pool. The query executor obeys this by running one
// chunk inline on the calling thread and never submitting nested tasks.

#ifndef PROVLEDGER_COMMON_THREAD_POOL_H_
#define PROVLEDGER_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/annotations.h"

namespace provledger {
namespace common {

/// \brief Completion latch: Add() work, Done() it, Wait() for zero.
///
/// Thread safety: fully synchronized; any method may be called from any
/// thread. Add() must not race with the final Done() reaching zero (the
/// usual pattern — Add everything up front, then hand out work — is safe).
class WaitGroup {
 public:
  /// Register `n` units of pending work.
  void Add(size_t n) PROV_EXCLUDES(mu_) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_ += n;
  }
  /// Mark one unit complete; wakes Wait() when the count reaches zero.
  void Done() PROV_EXCLUDES(mu_) {
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) cv_.notify_all();
  }
  /// Block until every Add()ed unit is Done().
  void Wait() PROV_EXCLUDES(mu_) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ PROV_GUARDED_BY(mu_) = 0;
};

/// \brief Fixed pool of worker threads draining a FIFO task queue.
///
/// Thread safety: Submit() may be called from any thread, including pool
/// workers (but see the header comment: a task must never *wait* on
/// another task from inside the pool). The destructor drains the queue,
/// then joins every worker.
class ThreadPool {
 public:
  /// Start `threads` workers (minimum 1).
  explicit ThreadPool(size_t threads);
  /// Runs every already-submitted task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution on some worker thread.
  void Submit(std::function<void()> task) PROV_EXCLUDES(mu_);

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

  /// Process-wide shared pool, lazily created on first use and sized to
  /// the hardware concurrency. Never destroyed before exit; intended for
  /// short compute bursts (parallel query chunks), not for long-running
  /// or blocking work.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_ PROV_GUARDED_BY(mu_);
  bool stopping_ PROV_GUARDED_BY(mu_) = false;
  // Written once in the constructor before any concurrency; read-only
  // afterwards (size(), join loop), so not guarded.
  std::vector<std::thread> workers_;
};

}  // namespace common
}  // namespace provledger

#endif  // PROVLEDGER_COMMON_THREAD_POOL_H_
