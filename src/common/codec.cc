#include "common/codec.h"

#include <cstring>

namespace provledger {

void Encoder::PutU8(uint8_t v) { buf_.push_back(v); }

void Encoder::PutU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

void Encoder::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Encoder::PutBool(bool v) { PutU8(v ? 1 : 0); }

void Encoder::PutBytes(const Bytes& b) {
  PutU32(static_cast<uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Encoder::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Encoder::PutRaw(const Bytes& b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

Status Decoder::Need(size_t n) {
  if (buf_.size() - pos_ < n) {
    return Status::Corruption("decode past end of buffer");
  }
  return Status::OK();
}

Status Decoder::GetU8(uint8_t* v) {
  PROVLEDGER_RETURN_NOT_OK(Need(1));
  *v = buf_[pos_++];
  return Status::OK();
}

Status Decoder::GetU16(uint16_t* v) {
  PROVLEDGER_RETURN_NOT_OK(Need(2));
  *v = static_cast<uint16_t>(buf_[pos_]) |
       static_cast<uint16_t>(buf_[pos_ + 1]) << 8;
  pos_ += 2;
  return Status::OK();
}

Status Decoder::GetU32(uint32_t* v) {
  PROVLEDGER_RETURN_NOT_OK(Need(4));
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(buf_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return Status::OK();
}

Status Decoder::GetU64(uint64_t* v) {
  PROVLEDGER_RETURN_NOT_OK(Need(8));
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(buf_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return Status::OK();
}

Status Decoder::GetI64(int64_t* v) {
  uint64_t u;
  PROVLEDGER_RETURN_NOT_OK(GetU64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status Decoder::GetDouble(double* v) {
  uint64_t bits;
  PROVLEDGER_RETURN_NOT_OK(GetU64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status Decoder::GetBool(bool* v) {
  uint8_t b;
  PROVLEDGER_RETURN_NOT_OK(GetU8(&b));
  if (b > 1) return Status::Corruption("bool byte out of range");
  *v = b != 0;
  return Status::OK();
}

Status Decoder::GetBytes(Bytes* b) {
  uint32_t len;
  PROVLEDGER_RETURN_NOT_OK(GetU32(&len));
  PROVLEDGER_RETURN_NOT_OK(Need(len));
  b->assign(buf_.begin() + pos_, buf_.begin() + pos_ + len);
  pos_ += len;
  return Status::OK();
}

Status Decoder::GetString(std::string* s) {
  uint32_t len;
  PROVLEDGER_RETURN_NOT_OK(GetU32(&len));
  PROVLEDGER_RETURN_NOT_OK(Need(len));
  s->assign(buf_.begin() + pos_, buf_.begin() + pos_ + len);
  pos_ += len;
  return Status::OK();
}

Status Decoder::GetRaw(size_t len, Bytes* b) {
  PROVLEDGER_RETURN_NOT_OK(Need(len));
  b->assign(buf_.begin() + pos_, buf_.begin() + pos_ + len);
  pos_ += len;
  return Status::OK();
}

}  // namespace provledger
