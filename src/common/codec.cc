#include "common/codec.h"

#include <cstring>

namespace provledger {

void Encoder::PutU8(uint8_t v) { buf_.push_back(v); }

void Encoder::PutU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

void Encoder::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Encoder::PutBool(bool v) { PutU8(v ? 1 : 0); }

void Encoder::PutUVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void Encoder::PutSVarint(int64_t v) {
  // ZigZag: interleave signs so small magnitudes stay one byte either way.
  PutUVarint((static_cast<uint64_t>(v) << 1) ^
             static_cast<uint64_t>(v >> 63));
}

void Encoder::PutBytes(const Bytes& b) {
  PutU32(static_cast<uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Encoder::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Encoder::PutRaw(const Bytes& b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Encoder::PutRaw(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

void Encoder::PutU32Array(const uint32_t* v, size_t n) {
  PutU32(static_cast<uint32_t>(n));
  size_t at = buf_.size();
  buf_.resize(at + 4 * n);
  uint8_t* out = buf_.data() + at;
  for (size_t i = 0; i < n; ++i) {
    uint32_t x = v[i];
    out[0] = static_cast<uint8_t>(x);
    out[1] = static_cast<uint8_t>(x >> 8);
    out[2] = static_cast<uint8_t>(x >> 16);
    out[3] = static_cast<uint8_t>(x >> 24);
    out += 4;
  }
}

Status Decoder::Need(size_t n) {
  if (size_ - pos_ < n) {
    return Status::Corruption("decode past end of buffer");
  }
  return Status::OK();
}

Status Decoder::Skip(size_t n) {
  PROVLEDGER_RETURN_NOT_OK(Need(n));
  pos_ += n;
  return Status::OK();
}

Status Decoder::GetU8(uint8_t* v) {
  PROVLEDGER_RETURN_NOT_OK(Need(1));
  *v = data_[pos_++];
  return Status::OK();
}

Status Decoder::GetU16(uint16_t* v) {
  PROVLEDGER_RETURN_NOT_OK(Need(2));
  *v = static_cast<uint16_t>(data_[pos_]) |
       static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return Status::OK();
}

Status Decoder::GetU32(uint32_t* v) {
  PROVLEDGER_RETURN_NOT_OK(Need(4));
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return Status::OK();
}

Status Decoder::GetU64(uint64_t* v) {
  PROVLEDGER_RETURN_NOT_OK(Need(8));
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return Status::OK();
}

Status Decoder::GetI64(int64_t* v) {
  uint64_t u;
  PROVLEDGER_RETURN_NOT_OK(GetU64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status Decoder::GetDouble(double* v) {
  uint64_t bits;
  PROVLEDGER_RETURN_NOT_OK(GetU64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status Decoder::GetUVarint(uint64_t* v) {
  uint64_t out = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    uint8_t byte;
    PROVLEDGER_RETURN_NOT_OK(GetU8(&byte));
    out |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // The 10th byte carries only the top bit of a u64; anything above
      // that is an overlong/overflowing encoding, not a value.
      if (shift == 63 && byte > 1) {
        return Status::Corruption("uvarint overflows 64 bits");
      }
      *v = out;
      return Status::OK();
    }
  }
  return Status::Corruption("uvarint runs past 10 bytes");
}

Status Decoder::GetSVarint(int64_t* v) {
  uint64_t zz;
  PROVLEDGER_RETURN_NOT_OK(GetUVarint(&zz));
  *v = static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
  return Status::OK();
}

Status Decoder::GetBool(bool* v) {
  uint8_t b;
  PROVLEDGER_RETURN_NOT_OK(GetU8(&b));
  if (b > 1) return Status::Corruption("bool byte out of range");
  *v = b != 0;
  return Status::OK();
}

Status Decoder::GetBytes(Bytes* b) {
  uint32_t len;
  PROVLEDGER_RETURN_NOT_OK(GetU32(&len));
  PROVLEDGER_RETURN_NOT_OK(Need(len));
  b->assign(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return Status::OK();
}

Status Decoder::GetString(std::string* s) {
  uint32_t len;
  PROVLEDGER_RETURN_NOT_OK(GetU32(&len));
  PROVLEDGER_RETURN_NOT_OK(Need(len));
  s->assign(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return Status::OK();
}

Status Decoder::GetRaw(size_t len, Bytes* b) {
  PROVLEDGER_RETURN_NOT_OK(Need(len));
  b->assign(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return Status::OK();
}

Status Decoder::GetU32Array(std::vector<uint32_t>* v, size_t max_count) {
  uint32_t n = 0;
  PROVLEDGER_RETURN_NOT_OK(GetU32(&n));
  if (n > max_count) {
    return Status::Corruption("u32 array length exceeds limit");
  }
  PROVLEDGER_RETURN_NOT_OK(Need(4 * static_cast<size_t>(n)));
  v->resize(n);
  const uint8_t* in = data_ + pos_;
  for (uint32_t i = 0; i < n; ++i) {
    (*v)[i] = static_cast<uint32_t>(in[0]) |
              static_cast<uint32_t>(in[1]) << 8 |
              static_cast<uint32_t>(in[2]) << 16 |
              static_cast<uint32_t>(in[3]) << 24;
    in += 4;
  }
  pos_ += 4 * static_cast<size_t>(n);
  return Status::OK();
}

}  // namespace provledger
