// CRC-32 (IEEE 802.3 polynomial, reflected) for storage-record framing.
//
// Every on-disk log record in the durable storage layer (FileKvStore
// segments, the ledger ChainLog) carries a CRC over its payload so torn or
// bit-rotted tail records are detected at reopen instead of being replayed
// as garbage. CRC is the right tool here: it is cheap, and integrity against
// an *adversary* is already covered one layer up by the hash chain and
// Merkle roots — the CRC only needs to catch accidental corruption.
//
// Thread safety: stateless free functions — safe from any thread.

#ifndef PROVLEDGER_COMMON_CRC32_H_
#define PROVLEDGER_COMMON_CRC32_H_

#include <cstdint>
#include <cstddef>

#include "common/bytes.h"

namespace provledger {

/// \brief CRC-32 of `data` (initial value 0xFFFFFFFF, final XOR, reflected
/// polynomial 0xEDB88320 — the zlib/PNG convention).
uint32_t Crc32(const uint8_t* data, size_t len);
uint32_t Crc32(const Bytes& data);

}  // namespace provledger

#endif  // PROVLEDGER_COMMON_CRC32_H_
