#include "common/hash64.h"

namespace provledger {

namespace {

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr uint64_t kPrime4 = 0x27D4EB2F165667C5ULL;

inline uint64_t Rotl(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t LoadLE64(const uint8_t* p) {
  return static_cast<uint64_t>(p[0]) | static_cast<uint64_t>(p[1]) << 8 |
         static_cast<uint64_t>(p[2]) << 16 | static_cast<uint64_t>(p[3]) << 24 |
         static_cast<uint64_t>(p[4]) << 32 | static_cast<uint64_t>(p[5]) << 40 |
         static_cast<uint64_t>(p[6]) << 48 | static_cast<uint64_t>(p[7]) << 56;
}

inline uint64_t Mix(uint64_t acc, uint64_t lane) {
  return Rotl(acc + lane * kPrime2, 31) * kPrime1;
}

}  // namespace

uint64_t Hash64(const uint8_t* data, size_t len) {
  const uint8_t* p = data;
  const uint8_t* end = data + len;
  uint64_t h;
  if (len >= 32) {
    // Four independent accumulators keep the multiply pipeline full.
    uint64_t a1 = kPrime1 + kPrime2, a2 = kPrime2, a3 = 0, a4 = 0 - kPrime1;
    do {
      a1 = Mix(a1, LoadLE64(p));
      a2 = Mix(a2, LoadLE64(p + 8));
      a3 = Mix(a3, LoadLE64(p + 16));
      a4 = Mix(a4, LoadLE64(p + 24));
      p += 32;
    } while (p + 32 <= end);
    h = Rotl(a1, 1) + Rotl(a2, 7) + Rotl(a3, 12) + Rotl(a4, 18);
    h = (h ^ Mix(0, a1)) * kPrime1 + kPrime4;
    h = (h ^ Mix(0, a2)) * kPrime1 + kPrime4;
    h = (h ^ Mix(0, a3)) * kPrime1 + kPrime4;
    h = (h ^ Mix(0, a4)) * kPrime1 + kPrime4;
  } else {
    h = kPrime3;
  }
  h += static_cast<uint64_t>(len);

  while (p + 8 <= end) {
    h = Rotl(h ^ Mix(0, LoadLE64(p)), 27) * kPrime1 + kPrime4;
    p += 8;
  }
  while (p < end) {
    h = Rotl(h ^ (*p * kPrime3), 11) * kPrime1;
    ++p;
  }

  // Final avalanche: every input bit reaches every output bit.
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

uint64_t Hash64(const Bytes& data) { return Hash64(data.data(), data.size()); }

}  // namespace provledger
