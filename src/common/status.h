// ProvLedger: unified blockchain-for-provenance framework.
//
// Status / Result error model (RocksDB idiom): no exceptions cross public API
// boundaries; every fallible operation returns a Status or a Result<T>.
//
// Thread safety: Status and Result are plain value types — distinct
// instances are independent; concurrent const access to one instance is
// safe.

#ifndef PROVLEDGER_COMMON_STATUS_H_
#define PROVLEDGER_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

#include "common/annotations.h"

namespace provledger {

/// \brief Canonical error codes used across every ProvLedger subsystem.
enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kCorruption = 3,
  kPermissionDenied = 4,
  kAlreadyExists = 5,
  kFailedPrecondition = 6,
  kUnauthenticated = 7,
  kTimedOut = 8,
  kUnavailable = 9,
  kResourceExhausted = 10,
  kAborted = 11,
  kInternal = 12,
};

/// \brief Return the canonical lowercase name of a status code
/// (e.g. "not_found").
const char* StatusCodeName(StatusCode code);

/// \brief Result of a fallible operation: a code plus a human-readable
/// message. Cheap to copy when OK (no allocation).
///
/// The class itself is [[nodiscard]]: *every* function returning a Status
/// by value is discard-checked by the compiler, independent of whether the
/// declaration also carries PROV_NODISCARD. Ignoring one is a build error
/// under -Werror; a deliberate discard is written `(void)expr;` with an
/// adjacent justification comment (enforced by tools/provlint).
class PROV_NODISCARD Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// \name Factory constructors, one per canonical code.
  /// @{
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unauthenticated(std::string msg) {
    return Status(StatusCode::kUnauthenticated, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// @}

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnauthenticated() const {
    return code_ == StatusCode::kUnauthenticated;
  }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief "ok" or "<code_name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief A value or a non-OK Status (Arrow idiom).
///
/// Usage:
/// \code
///   Result<Block> r = chain.GetBlock(height);
///   if (!r.ok()) return r.status();
///   const Block& b = r.value();
/// \endcode
///
/// [[nodiscard]] like Status: dropping a Result on the floor loses both the
/// value and the error.
template <typename T>
class PROV_NODISCARD Result {
 public:
  /// Implicit from value: `return my_value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// \brief Value if OK, otherwise the supplied default.
  T value_or(T def) const {
    return ok() ? *value_ : std::move(def);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Propagate a non-OK status to the caller (RocksDB RETURN_NOT_OK idiom).
#define PROVLEDGER_RETURN_NOT_OK(expr)            \
  do {                                            \
    ::provledger::Status _s = (expr);             \
    if (!_s.ok()) return _s;                      \
  } while (0)

/// Unwrap a Result into `lhs`, propagating a non-OK status.
#define PROVLEDGER_ASSIGN_OR_RETURN(lhs, expr)    \
  auto PROVLEDGER_CONCAT_(_r, __LINE__) = (expr); \
  if (!PROVLEDGER_CONCAT_(_r, __LINE__).ok())     \
    return PROVLEDGER_CONCAT_(_r, __LINE__).status(); \
  lhs = std::move(PROVLEDGER_CONCAT_(_r, __LINE__)).value()

#define PROVLEDGER_CONCAT_IMPL_(a, b) a##b
#define PROVLEDGER_CONCAT_(a, b) PROVLEDGER_CONCAT_IMPL_(a, b)

}  // namespace provledger

#endif  // PROVLEDGER_COMMON_STATUS_H_
