#include "common/fileio.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace provledger {

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Unavailable(what + " " + path + ": " + std::strerror(errno));
}

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return ErrnoStatus("mkdir", path);
}

Status WriteAllFd(int fd, const uint8_t* data, size_t len,
                  const std::string& path) {
  while (len > 0) {
    ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return ErrnoStatus(what, path);
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash + 1);
}

}  // namespace

Status WriteFileAtomic(const std::string& path, const Bytes& data) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);

  const uint8_t* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Errno("write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return s;
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status s = Errno("fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return s;
  }
  if (::close(fd) != 0) return Errno("close", tmp);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status s = Errno("rename", tmp);
    ::unlink(tmp.c_str());
    return s;
  }
  // Make the rename itself durable.
  int dirfd = ::open(ParentDir(path).c_str(), O_RDONLY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
  return Status::OK();
}

Result<Bytes> ReadFileToBytes(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("open", path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Errno("fstat", path);
    ::close(fd);
    return s;
  }
  Bytes buf(static_cast<size_t>(st.st_size));
  size_t off = 0;
  while (off < buf.size()) {
    ssize_t n = ::pread(fd, buf.data() + off, buf.size() - off,
                        static_cast<off_t>(off));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      Status s = Errno("pread", path);
      ::close(fd);
      return s;
    }
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  return buf;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace provledger
