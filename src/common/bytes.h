// Byte-buffer utilities shared by every subsystem: the canonical Bytes type,
// hex encoding/decoding, and constant-time comparison for secret material.
//
// Thread safety: free functions over caller-owned buffers — safe to call
// concurrently on distinct buffers; sharing one buffer needs external
// coordination.

#ifndef PROVLEDGER_COMMON_BYTES_H_
#define PROVLEDGER_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace provledger {

/// Canonical owned byte buffer.
using Bytes = std::vector<uint8_t>;

/// \brief Build a Bytes buffer from a string's raw characters.
Bytes ToBytes(std::string_view s);

/// \brief Interpret a byte buffer as a (possibly non-UTF8) string.
std::string BytesToString(const Bytes& b);

/// \brief Lowercase hex encoding ("deadbeef").
std::string HexEncode(const Bytes& data);
std::string HexEncode(const uint8_t* data, size_t len);

/// \brief Decode lowercase/uppercase hex; fails on odd length or non-hex
/// characters.
Result<Bytes> HexDecode(std::string_view hex);

/// \brief Constant-time equality, for comparing MACs / hash preimages.
bool ConstantTimeEqual(const Bytes& a, const Bytes& b);

/// \brief Append `src` to `dst`.
void AppendBytes(Bytes* dst, const Bytes& src);
void AppendBytes(Bytes* dst, std::string_view src);

/// \brief Short printable prefix of a (hash-sized) buffer, e.g. "3fd2a8c1…".
std::string ShortHex(const Bytes& data, size_t prefix_bytes = 4);

}  // namespace provledger

#endif  // PROVLEDGER_COMMON_BYTES_H_
