// Deterministic random number generation (xoshiro256** seeded via splitmix64).
// All stochastic behaviour in ProvLedger — workload generators, simulated
// network jitter, PoS leader election, attack injection — draws from an Rng
// so experiments are reproducible from a single seed.
//
// Thread safety: each Rng instance is single-owner; distinct instances are
// independent.

#ifndef PROVLEDGER_COMMON_RNG_H_
#define PROVLEDGER_COMMON_RNG_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace provledger {

/// \brief xoshiro256** PRNG. Not cryptographically secure; used for
/// simulation and workload generation only.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();
  /// Uniform in [0, bound) (bound must be > 0; uses rejection sampling).
  uint64_t NextBelow(uint64_t bound);
  /// Uniform in [lo, hi] inclusive.
  uint64_t NextRange(uint64_t lo, uint64_t hi);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// Gaussian via Box–Muller.
  double NextGaussian(double mean, double stddev);
  /// True with probability p.
  bool NextBool(double p = 0.5);
  /// `n` random bytes.
  Bytes NextBytes(size_t n);
  /// Random lowercase alphanumeric string of length `n`.
  std::string NextAlnum(size_t n);

  /// Derive an independent child generator (splitmix64 of next output).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace provledger

#endif  // PROVLEDGER_COMMON_RNG_H_
