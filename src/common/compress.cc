#include "common/compress.h"

#include <cstring>

#include "common/codec.h"

namespace provledger {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 0x7F + kMinMatch;  // 131
constexpr size_t kWindow = 64u << 10;
constexpr size_t kHashBits = 15;

inline uint32_t HashAt(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void FlushLiterals(const uint8_t* data, size_t from, size_t to, Bytes* out) {
  while (from < to) {
    size_t run = to - from < 128 ? to - from : 128;
    out->push_back(static_cast<uint8_t>(run - 1));
    out->insert(out->end(), data + from, data + from + run);
    from += run;
  }
}

}  // namespace

Bytes LzCompress(const Bytes& input) {
  Bytes out;
  out.reserve(input.size() / 2 + 16);
  const uint8_t* data = input.data();
  const size_t n = input.size();
  if (n < kMinMatch) {
    FlushLiterals(data, 0, n, &out);
    return out;
  }

  // Single-probe hash table: last position whose 4-byte prefix hashed here.
  std::vector<uint32_t> head(1u << kHashBits, 0xFFFFFFFFu);
  size_t pos = 0;
  size_t literal_start = 0;
  const size_t limit = n - kMinMatch + 1;
  while (pos < limit) {
    const uint32_t h = HashAt(data + pos);
    const uint32_t cand = head[h];
    head[h] = static_cast<uint32_t>(pos);
    if (cand != 0xFFFFFFFFu && pos - cand <= kWindow &&
        std::memcmp(data + cand, data + pos, kMinMatch) == 0) {
      size_t len = kMinMatch;
      const size_t max_len = n - pos < kMaxMatch ? n - pos : kMaxMatch;
      while (len < max_len && data[cand + len] == data[pos + len]) ++len;
      FlushLiterals(data, literal_start, pos, &out);
      out.push_back(static_cast<uint8_t>(0x80 | (len - kMinMatch)));
      Encoder dist;
      dist.PutUVarint(pos - cand);
      out.insert(out.end(), dist.buffer().begin(), dist.buffer().end());
      pos += len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  FlushLiterals(data, literal_start, n, &out);
  return out;
}

Result<Bytes> LzDecompress(const Bytes& input, size_t raw_size) {
  // `raw_size` usually arrives from the same untrusted header as `input`.
  // The densest valid stream emits kMaxMatch output bytes per 2 input bytes
  // (match token + 1-byte distance), so any declared size beyond that ratio
  // is unreachable — reject it before reserving the declared size.
  if (raw_size / (kMaxMatch / 2 + 1) > input.size()) {
    return Status::Corruption("lz declared raw size exceeds max expansion");
  }
  Bytes out;
  out.reserve(raw_size);
  Decoder dec(input);
  while (!dec.AtEnd()) {
    uint8_t token;
    PROVLEDGER_RETURN_NOT_OK(dec.GetU8(&token));
    if (token < 0x80) {
      const size_t run = static_cast<size_t>(token) + 1;
      if (out.size() + run > raw_size) {
        return Status::Corruption("lz literal run past declared raw size");
      }
      Bytes lit;
      PROVLEDGER_RETURN_NOT_OK(dec.GetRaw(run, &lit));
      out.insert(out.end(), lit.begin(), lit.end());
    } else {
      const size_t len = static_cast<size_t>(token & 0x7F) + kMinMatch;
      uint64_t dist = 0;
      PROVLEDGER_RETURN_NOT_OK(dec.GetUVarint(&dist));
      if (dist == 0 || dist > out.size()) {
        return Status::Corruption("lz match distance out of range");
      }
      if (out.size() + len > raw_size) {
        return Status::Corruption("lz match run past declared raw size");
      }
      // Byte-by-byte: matches may overlap their own output (RLE-style).
      size_t from = out.size() - dist;
      for (size_t i = 0; i < len; ++i) out.push_back(out[from + i]);
    }
  }
  if (out.size() != raw_size) {
    return Status::Corruption("lz stream ended short of declared raw size");
  }
  return out;
}

}  // namespace provledger
