// Byte-oriented LZ compression for cold blobs (KV-store write batches,
// snapshot bodies). Self-contained — no external codec dependency — and
// deliberately simple: a greedy LZ77 with a hash-chained 64 KiB window,
// emitting literal runs and back-references. It is not a general-purpose
// compressor race entry; it exists so byte-bound storage paths can trade a
// little CPU for disk when the payload is self-similar (framed record
// blobs, graph snapshots), with the columnar codec (prov/columnar.h)
// handling the structured hot path.
//
// Token stream:
//   [u8 t]  t < 0x80  -> literal run of t+1 bytes follows (1..128)
//           t >= 0x80 -> match: length = (t & 0x7F) + kMinMatch,
//                        then uvarint distance (1..window size)
//
// Decompression is bounds-checked: a distance pointing before the start of
// the output, a run past the end, or trailing garbage is Corruption.
//
// Thread safety: free functions over caller-owned buffers — safe to call
// concurrently on distinct buffers; sharing one buffer needs external
// coordination.

#ifndef PROVLEDGER_COMMON_COMPRESS_H_
#define PROVLEDGER_COMMON_COMPRESS_H_

#include "common/bytes.h"
#include "common/status.h"

namespace provledger {

/// Compress `input`. The output is self-delimiting given the raw size;
/// callers persist the raw size alongside (see FileKvStore's compressed
/// frame header). Compressing already-dense data can expand slightly —
/// callers should keep the raw form when that happens.
Bytes LzCompress(const Bytes& input);

/// Invert LzCompress. `raw_size` is the exact expected output size; any
/// mismatch (short stream, overrun, bad distance) is Corruption.
Result<Bytes> LzDecompress(const Bytes& input, size_t raw_size);

}  // namespace provledger

#endif  // PROVLEDGER_COMMON_COMPRESS_H_
