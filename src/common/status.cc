#include "common/status.h"

namespace provledger {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kPermissionDenied:
      return "permission_denied";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kUnauthenticated:
      return "unauthenticated";
    case StatusCode::kTimedOut:
      return "timed_out";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace provledger
