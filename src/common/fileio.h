// Whole-file I/O helpers for the durable storage layer: crash-safe atomic
// file replacement (write temp + fsync + rename + directory fsync) and
// slurping a file into a Bytes buffer. Log-structured writers (FileKvStore,
// ChainLog) keep their own fd-level append paths; these helpers serve the
// write-rarely artifacts such as provenance snapshots.
//
// Thread safety: free functions — safe to call concurrently on distinct
// paths; concurrent writers to one path need external coordination.

#ifndef PROVLEDGER_COMMON_FILEIO_H_
#define PROVLEDGER_COMMON_FILEIO_H_

#include <string>

#include "common/bytes.h"

namespace provledger {

/// \brief Atomically replace `path` with `data`: the bytes are written to a
/// temp file in the same directory, fsync'd, renamed over `path`, and the
/// directory entry is fsync'd. Readers see either the old file or the whole
/// new one, never a torn mix.
Status WriteFileAtomic(const std::string& path, const Bytes& data);

/// \brief Read the whole file at `path`. NotFound when it does not exist.
Result<Bytes> ReadFileToBytes(const std::string& path);

/// \brief True if a regular file exists at `path`.
bool FileExists(const std::string& path);

/// \brief Create directory `path` (one level) if it does not already exist.
Status EnsureDir(const std::string& path);

/// \brief Write all `len` bytes to `fd`, retrying partial writes and EINTR.
Status WriteAllFd(int fd, const uint8_t* data, size_t len,
                  const std::string& path);

/// \brief Unavailable("<what> <path>: <strerror(errno)>") — the shared
/// errno-to-Status shape of the storage layer.
Status ErrnoStatus(const std::string& what, const std::string& path);

}  // namespace provledger

#endif  // PROVLEDGER_COMMON_FILEIO_H_
