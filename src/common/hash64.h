// Fast 64-bit non-cryptographic block hash for snapshot integrity.
//
// Snapshot bodies run to tens of megabytes and are verified on every
// restart, so the checksum is on the restore critical path. Hash64 is a
// 4-lane multiply–rotate construction (xxHash-shaped, but its own format —
// values are only ever compared against values this code produced) that
// digests several bytes per cycle, an order of magnitude faster than the
// byte-table CRC used for small log frames. Not cryptographic: tamper
// evidence comes from the chain, this only catches accidental corruption.
//
// Thread safety: stateless free functions — safe from any thread.

#ifndef PROVLEDGER_COMMON_HASH64_H_
#define PROVLEDGER_COMMON_HASH64_H_

#include <cstdint>
#include <cstddef>

#include "common/bytes.h"

namespace provledger {

/// \brief 64-bit digest of `data` (deterministic across platforms;
/// little-endian lane loads).
uint64_t Hash64(const uint8_t* data, size_t len);
uint64_t Hash64(const Bytes& data);

}  // namespace provledger

#endif  // PROVLEDGER_COMMON_HASH64_H_
