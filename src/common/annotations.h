// Compiler-enforced contract annotations, shared by every ProvLedger header.
//
// Two families live here:
//
//   * PROV_NODISCARD — `[[nodiscard]]` under any C++17 compiler. The
//     `common::Status` and `Result<T>` *types* carry it too (status.h), so
//     every by-value Status/Result return is discard-checked even without a
//     per-function annotation; annotating the function as well documents
//     the contract at the declaration the reader is actually looking at.
//     Intentional discards must be written `(void)expr;` with an adjacent
//     justification comment — tools/provlint rejects bare ones.
//
//   * PROV_GUARDED_BY / PROV_REQUIRES / ... — Clang thread-safety
//     capability attributes (-Wthread-safety). Under gcc (this repo's CI
//     toolchain) they expand to nothing and serve as machine-readable
//     documentation; under clang with libc++'s annotated std::mutex
//     (-D_LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS) the locking contract in
//     ThreadPool / IngestPipeline / ProvenanceStore / Blockchain /
//     ReplicatedNode is verified at compile time. tools/provlint checks
//     that annotated members and the prose "Thread safety:" contract both
//     exist, so the two can't silently drift apart.
//
// Thread safety: macro-only header, no state.

#ifndef PROVLEDGER_COMMON_ANNOTATIONS_H_
#define PROVLEDGER_COMMON_ANNOTATIONS_H_

#define PROV_NODISCARD [[nodiscard]]

#if defined(__clang__)
#define PROV_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PROV_THREAD_ANNOTATION_(x)  // no-op: gcc has no -Wthread-safety
#endif

/// Type is a lockable capability (use on mutex wrapper classes).
#define PROV_CAPABILITY(x) PROV_THREAD_ANNOTATION_(capability(x))

/// RAII type that acquires a capability in its constructor and releases it
/// in its destructor (lock_guard-shaped wrappers).
#define PROV_SCOPED_CAPABILITY PROV_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define PROV_GUARDED_BY(x) PROV_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define PROV_PT_GUARDED_BY(x) PROV_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function may only be called while holding every listed capability
/// exclusively; it does not acquire or release them.
#define PROV_REQUIRES(...) \
  PROV_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Shared (reader) variant of PROV_REQUIRES.
#define PROV_REQUIRES_SHARED(...) \
  PROV_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and holds them on return.
#define PROV_ACQUIRE(...) \
  PROV_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (they must be held on entry).
#define PROV_RELEASE(...) \
  PROV_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function must NOT be called while holding the listed capabilities —
/// the anti-deadlock / anti-recursive-lock annotation. This is the one to
/// put on public methods of internally-synchronized classes.
#define PROV_EXCLUDES(...) PROV_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the capability protecting its result.
#define PROV_RETURN_CAPABILITY(x) PROV_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: suppress the analysis for one function, e.g. the worker
/// loop that hands a unique_lock to a condition variable in ways the
/// checker cannot follow. Use with a comment explaining why.
#define PROV_NO_THREAD_SAFETY_ANALYSIS \
  PROV_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // PROVLEDGER_COMMON_ANNOTATIONS_H_
