// Deterministic binary serialization used for every on-ledger structure.
//
// All multi-byte integers are little-endian fixed width; variable-size fields
// are length-prefixed with a u32. Encoding is canonical: re-encoding a decoded
// structure yields byte-identical output, which is required because structure
// hashes (transaction ids, Merkle leaves, block ids) are hashes of encodings.

#ifndef PROVLEDGER_COMMON_CODEC_H_
#define PROVLEDGER_COMMON_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"

namespace provledger {

/// \brief Append-only binary encoder.
class Encoder {
 public:
  Encoder() = default;

  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);
  /// Encodes an IEEE-754 double by bit pattern.
  void PutDouble(double v);
  void PutBool(bool v);
  /// Length-prefixed (u32) byte string.
  void PutBytes(const Bytes& b);
  /// Length-prefixed (u32) character string.
  void PutString(std::string_view s);
  /// Raw bytes, no length prefix (caller must know the length when decoding).
  void PutRaw(const Bytes& b);

  const Bytes& buffer() const { return buf_; }
  Bytes TakeBuffer() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// \brief Sequential decoder over a byte buffer; every getter validates
/// remaining length and returns Corruption on truncated input.
class Decoder {
 public:
  explicit Decoder(const Bytes& buf) : buf_(buf) {}

  Status GetU8(uint8_t* v);
  Status GetU16(uint16_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetI64(int64_t* v);
  Status GetDouble(double* v);
  Status GetBool(bool* v);
  Status GetBytes(Bytes* b);
  Status GetString(std::string* s);
  /// Reads exactly `len` raw bytes.
  Status GetRaw(size_t len, Bytes* b);

  /// Bytes not yet consumed.
  size_t remaining() const { return buf_.size() - pos_; }
  bool AtEnd() const { return pos_ == buf_.size(); }

 private:
  Status Need(size_t n);

  const Bytes& buf_;
  size_t pos_ = 0;
};

}  // namespace provledger

#endif  // PROVLEDGER_COMMON_CODEC_H_
