// Deterministic binary serialization used for every on-ledger structure.
//
// All multi-byte integers are little-endian fixed width; variable-size fields
// are length-prefixed with a u32. Encoding is canonical: re-encoding a decoded
// structure yields byte-identical output, which is required because structure
// hashes (transaction ids, Merkle leaves, block ids) are hashes of encodings.
//
// Thread safety: Encoder and Decoder are single-owner value objects;
// distinct instances are independent.

#ifndef PROVLEDGER_COMMON_CODEC_H_
#define PROVLEDGER_COMMON_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"

namespace provledger {

/// \brief Append-only binary encoder.
class Encoder {
 public:
  Encoder() = default;

  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);
  /// LEB128 varint (1 byte for values < 128, at most 10). The compact-form
  /// primitive behind the columnar record codec (prov/columnar.h): dict
  /// references, counts, and deltas are almost always tiny.
  void PutUVarint(uint64_t v);
  /// ZigZag-mapped signed varint: small magnitudes of either sign stay
  /// short (delta-encoded timestamps go both ways).
  void PutSVarint(int64_t v);
  /// Encodes an IEEE-754 double by bit pattern.
  void PutDouble(double v);
  void PutBool(bool v);
  /// Length-prefixed (u32) byte string.
  void PutBytes(const Bytes& b);
  /// Length-prefixed (u32) character string.
  void PutString(std::string_view s);
  /// Raw bytes, no length prefix (caller must know the length when decoding).
  void PutRaw(const Bytes& b);
  void PutRaw(const uint8_t* data, size_t len);
  /// u32-length-prefixed little-endian u32 array, written in one append —
  /// the bulk form the snapshot codecs use for index/adjacency vectors.
  void PutU32Array(const uint32_t* v, size_t n);
  void PutU32Array(const std::vector<uint32_t>& v) {
    PutU32Array(v.data(), v.size());
  }

  const Bytes& buffer() const { return buf_; }
  Bytes TakeBuffer() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }
  /// Drop the contents but keep the capacity — the reuse primitive for
  /// scratch encoders on hot paths (ingest shard workers encode every
  /// record/transaction into one buffer that never reallocates in steady
  /// state).
  void Clear() { buf_.clear(); }

 private:
  Bytes buf_;
};

/// \brief Sequential decoder over a byte buffer; every getter validates
/// remaining length and returns Corruption on truncated input.
class Decoder {
 public:
  /// Decode from `buf`, optionally starting at byte offset `pos` (used to
  /// decode one record out of a larger snapshot blob without copying it).
  explicit Decoder(const Bytes& buf, size_t pos = 0)
      : data_(buf.data()),
        size_(buf.size()),
        pos_(pos < buf.size() ? pos : buf.size()) {}
  /// Decode a raw byte range (zero-copy views into snapshot buffers). The
  /// memory must outlive the decoder.
  Decoder(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}

  Status GetU8(uint8_t* v);
  Status GetU16(uint16_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetI64(int64_t* v);
  /// Counterparts of PutUVarint/PutSVarint; Corruption on truncation or a
  /// varint running past 10 bytes (no silent wraparound).
  Status GetUVarint(uint64_t* v);
  Status GetSVarint(int64_t* v);
  Status GetDouble(double* v);
  Status GetBool(bool* v);
  Status GetBytes(Bytes* b);
  Status GetString(std::string* s);
  /// Reads exactly `len` raw bytes.
  Status GetRaw(size_t len, Bytes* b);
  /// Bulk counterpart of Encoder::PutU32Array: one bounds check, one tight
  /// assemble loop. `max_count` caps the prefixed length (Corruption past
  /// it) so corrupt input cannot force a huge allocation.
  Status GetU32Array(std::vector<uint32_t>* v, size_t max_count);

  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  /// Current byte offset from the start of the buffer.
  size_t position() const { return pos_; }
  /// Advance past `n` bytes without materializing them (section skipping).
  Status Skip(size_t n);

 private:
  Status Need(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace provledger

#endif  // PROVLEDGER_COMMON_CODEC_H_
