#include "common/thread_pool.h"

#include <algorithm>

namespace provledger {
namespace common {

ThreadPool::ThreadPool(size_t threads) {
  threads = std::max<size_t>(1, threads);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Shared() {
  // Function-local static: thread-safe one-time construction, destroyed
  // after main() returns (workers idle by then — Shared() is only used for
  // bounded bursts that the caller waits out with a WaitGroup).
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace common
}  // namespace provledger
