#include "common/framed_log.h"

#include "common/crc32.h"

namespace provledger {

namespace {
uint32_t ReadU32At(const Bytes& buf, size_t pos) {
  return static_cast<uint32_t>(buf[pos]) |
         static_cast<uint32_t>(buf[pos + 1]) << 8 |
         static_cast<uint32_t>(buf[pos + 2]) << 16 |
         static_cast<uint32_t>(buf[pos + 3]) << 24;
}

void PutU32(Bytes* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}
}  // namespace

FrameScan ScanFrameAt(const Bytes& buf, size_t pos, size_t* payload_len) {
  if (pos + kFrameHeaderBytes > buf.size()) return FrameScan::kTorn;
  *payload_len = ReadU32At(buf, pos);
  if (pos + kFrameHeaderBytes + *payload_len > buf.size()) {
    return FrameScan::kTorn;
  }
  uint32_t crc = ReadU32At(buf, pos + 4);
  return Crc32(buf.data() + pos + kFrameHeaderBytes, *payload_len) == crc
             ? FrameScan::kValid
             : FrameScan::kCorrupt;
}

Bytes BuildFrame(const Bytes& payload) {
  Bytes frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

}  // namespace provledger
