// CRC-framed append-only log records, shared by the FileKvStore segments
// and the ledger ChainLog so the torn-vs-corrupt recovery policy is
// single-sourced:
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//
// A single-writer append that crashes mid-write always leaves a *prefix*
// of the intended record, so a frame whose declared extent runs past the
// end of the file is a torn write (recoverable: truncate it away). A frame
// that is fully present but fails its CRC was completed and then damaged —
// that is corruption and must fail loudly, never be silently truncated
// (valid records may follow it).
//
// Thread safety: NOT internally synchronized — one writer or reader per log
// instance; concurrent access needs external locking.

#ifndef PROVLEDGER_COMMON_FRAMED_LOG_H_
#define PROVLEDGER_COMMON_FRAMED_LOG_H_

#include <cstddef>

#include "common/bytes.h"

namespace provledger {

/// Frame header size: u32 payload length + u32 CRC-32.
inline constexpr size_t kFrameHeaderBytes = 8;

/// \brief Classification of the bytes at a frame boundary.
enum class FrameScan {
  kValid,    // complete frame, CRC matches
  kTorn,     // frame extends past the buffer end (crash artifact)
  kCorrupt,  // complete frame, CRC mismatch
};

/// \brief Classify the frame starting at `pos`; on kValid, *payload_len
/// holds the payload size (frame ends at pos + kFrameHeaderBytes +
/// *payload_len).
FrameScan ScanFrameAt(const Bytes& buf, size_t pos, size_t* payload_len);

/// \brief Frame `payload` for appending: header + payload in one buffer.
Bytes BuildFrame(const Bytes& payload);

}  // namespace provledger

#endif  // PROVLEDGER_COMMON_FRAMED_LOG_H_
