#include "common/crc32.h"

namespace provledger {

namespace {
// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table,
// table[k] advances a byte through k additional zero bytes, letting the
// hot loop fold 8 input bytes per iteration (~8x the byte-wise loop on
// multi-megabyte snapshot/log payloads).
struct Crc32Tables {
  uint32_t t[8][256];
  Crc32Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (int k = 1; k < 8; ++k) {
        c = t[0][c & 0xFF] ^ (c >> 8);
        t[k][i] = c;
      }
    }
  }
};
}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  static const Crc32Tables tables;
  const auto& t = tables.t;
  uint32_t c = 0xFFFFFFFFu;
  while (len >= 8) {
    // Little-endian-independent: bytes are folded individually.
    uint32_t lo = c ^ (static_cast<uint32_t>(data[0]) |
                       static_cast<uint32_t>(data[1]) << 8 |
                       static_cast<uint32_t>(data[2]) << 16 |
                       static_cast<uint32_t>(data[3]) << 24);
    c = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
        t[4][lo >> 24] ^ t[3][data[4]] ^ t[2][data[5]] ^ t[1][data[6]] ^
        t[0][data[7]];
    data += 8;
    len -= 8;
  }
  for (size_t i = 0; i < len; ++i) {
    c = t[0][(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const Bytes& data) { return Crc32(data.data(), data.size()); }

}  // namespace provledger
