#include "crosschain/forensicross.h"

namespace provledger {
namespace crosschain {

ForensiCross::ForensiCross(Clock* clock, uint32_t notaries)
    : clock_(clock),
      bridge_(clock),
      notaries_("forensicross", notaries, /*threshold=*/notaries) {}

Result<ForensicOrg*> ForensiCross::FindOrg(const std::string& name) {
  for (auto& org : orgs_) {
    if (org.name == name) return &org;
  }
  return Status::NotFound("org not registered: " + name);
}

Status ForensiCross::RegisterOrg(const ForensicOrg& org) {
  for (const auto& existing : orgs_) {
    if (existing.name == org.name) {
      return Status::AlreadyExists("org already registered: " + org.name);
    }
  }
  PROVLEDGER_ASSIGN_OR_RETURN(ledger::BlockHeader genesis,
                              org.chain->GetHeader(0));
  PROVLEDGER_RETURN_NOT_OK(bridge_.RegisterChain(org.name, genesis));
  orgs_.push_back(org);
  return Status::OK();
}

Status ForensiCross::SyncHeaders(const std::string& org_name) {
  PROVLEDGER_ASSIGN_OR_RETURN(ForensicOrg * org, FindOrg(org_name));
  PROVLEDGER_ASSIGN_OR_RETURN(uint64_t relayed,
                              bridge_.LatestHeight(org_name));
  while (relayed < org->chain->height()) {
    ++relayed;
    PROVLEDGER_ASSIGN_OR_RETURN(ledger::BlockHeader header,
                                org->chain->GetHeader(relayed));
    PROVLEDGER_RETURN_NOT_OK(bridge_.SubmitHeader(org_name, header));
  }
  return Status::OK();
}

Status ForensiCross::LinkCase(const std::string& case_id,
                              const std::string& lead,
                              const std::string& start_date) {
  if (orgs_.size() < 2) {
    return Status::FailedPrecondition(
        "cross-chain collaboration needs at least two orgs");
  }
  if (linked_cases_.count(case_id)) {
    return Status::AlreadyExists("case already linked: " + case_id);
  }
  for (auto& org : orgs_) {
    PROVLEDGER_RETURN_NOT_OK(org.cases->OpenCase(case_id, lead, start_date));
  }
  linked_cases_.insert(case_id);
  CrossChainMessage message;
  message.from_chain = orgs_[0].name;
  message.to_chain = orgs_[1].name;
  message.type = "forensics/case-link";
  message.payload = ToBytes(case_id);
  return bridge_.SendMessage(message);
}

Status ForensiCross::AdvanceLinkedStage(const std::string& case_id,
                                        const std::string& actor,
                                        uint32_t signing_notaries) {
  if (!linked_cases_.count(case_id)) {
    return Status::NotFound("case not linked: " + case_id);
  }
  // Unanimous notary validation of the transition statement.
  Bytes statement = ToBytes("advance/" + case_id + "/" + actor);
  NotaryCommittee::Attestation attestation =
      notaries_.Attest(statement, signing_notaries);
  if (!notaries_.Verify(attestation)) {
    return Status::PermissionDenied(
        "stage advance requires unanimous notary agreement");
  }
  // All-or-nothing across orgs: validate first, then apply.
  for (auto& org : orgs_) {
    auto stage = org.cases->CurrentStage(case_id);
    if (!stage.ok()) return stage.status();
  }
  for (auto& org : orgs_) {
    PROVLEDGER_RETURN_NOT_OK(org.cases->AdvanceStage(case_id, actor));
  }
  // Broadcast the transition over the bridge for the audit log.
  for (size_t i = 1; i < orgs_.size(); ++i) {
    CrossChainMessage message;
    message.from_chain = orgs_[0].name;
    message.to_chain = orgs_[i].name;
    message.type = "forensics/stage-advance";
    message.payload = statement;
    PROVLEDGER_RETURN_NOT_OK(bridge_.SendMessage(message));
  }
  return Status::OK();
}

Result<SharedEvidence> ForensiCross::ShareEvidence(
    const std::string& from_org, const std::string& case_id,
    const std::string& evidence_id) {
  PROVLEDGER_ASSIGN_OR_RETURN(ForensicOrg * org, FindOrg(from_org));
  PROVLEDGER_ASSIGN_OR_RETURN(forensics::Evidence evidence,
                              org->cases->GetEvidence(case_id, evidence_id));
  // The sender's collect-evidence record + its inclusion proof.
  auto history = org->cases->EvidenceHistory(case_id, evidence_id);
  if (history.empty()) {
    return Status::NotFound("no anchored history for " + evidence_id);
  }
  SharedEvidence shared;
  shared.from_org = from_org;
  shared.case_id = case_id;
  shared.evidence_id = evidence_id;
  shared.content_hash = evidence.content_hash;
  shared.record = history.front();
  PROVLEDGER_ASSIGN_OR_RETURN(shared.proof,
                              org->store->ProveRecord(shared.record.record_id));
  // Make sure the bridge has headers covering the proof.
  PROVLEDGER_RETURN_NOT_OK(SyncHeaders(from_org));

  // Announce the pointer to the other orgs.
  for (auto& other : orgs_) {
    if (other.name == from_org) continue;
    CrossChainMessage message;
    message.from_chain = from_org;
    message.to_chain = other.name;
    message.type = "forensics/evidence-pointer";
    message.payload = shared.record.Encode();
    PROVLEDGER_RETURN_NOT_OK(bridge_.SendMessage(message));
  }
  return shared;
}

Status ForensiCross::VerifySharedEvidence(const SharedEvidence& shared) {
  PROVLEDGER_ASSIGN_OR_RETURN(ForensicOrg * org, FindOrg(shared.from_org));
  // Recipient-side verification trusts only (a) the relayed headers on the
  // bridge and (b) the Merkle math — never the sender's claims. The sender
  // chain is contacted solely to fetch the anchoring transaction bytes (in
  // a deployment the sender ships them alongside the pointer); any
  // tampering in those bytes fails the Merkle check below.
  PROVLEDGER_ASSIGN_OR_RETURN(ledger::Block block,
                              org->chain->GetBlockByHash(shared.proof.block_hash));
  if (shared.proof.merkle_proof.leaf_index >= block.transactions.size()) {
    return Status::Unauthenticated("proof index out of range");
  }
  const ledger::Transaction& tx =
      block.transactions[shared.proof.merkle_proof.leaf_index];
  if (tx.payload != shared.record.Encode()) {
    return Status::Unauthenticated("shared record does not match anchor");
  }
  if (shared.record.payload_hash != crypto::ZeroDigest() &&
      shared.record.payload_hash != shared.content_hash) {
    return Status::Unauthenticated("content hash mismatch");
  }
  return bridge_.VerifyForeignTransaction(shared.from_org, tx.Encode(),
                                          shared.proof);
}

std::vector<AuthenticatedRecord> ForensiCross::ExtractProvenance(
    const std::string& evidence_id) {
  std::vector<AuthenticatedRecord> out;
  for (auto& org : orgs_) {
    // Streamed per-org query: authenticate each match as the store's
    // subject index yields it, instead of copying the history out first.
    org.store->Execute(
        prov::Query().WithSubject(evidence_id),
        [&](const prov::ProvenanceRecord& record) {
          AuthenticatedRecord authenticated;
          authenticated.chain_id = org.name;
          authenticated.record = record;
          auto proof = org.store->ProveRecord(record.record_id);
          if (proof.ok()) {
            authenticated.proof = proof.value();
            authenticated.verified =
                org.store->VerifyRecordProof(record, authenticated.proof);
          }
          out.push_back(std::move(authenticated));
          return true;
        });
  }
  return out;
}

}  // namespace crosschain
}  // namespace provledger
