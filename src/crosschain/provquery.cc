#include "crosschain/provquery.h"

#include <algorithm>

namespace provledger {
namespace crosschain {

DependencyChain::DependencyChain(Clock* clock)
    : clock_(clock),
      ledger_(ledger::ChainOptions{.chain_id = "dependency-chain"}) {}

Status DependencyChain::RecordDependency(const std::string& entity,
                                         const std::string& chain_id) {
  auto [it, inserted] = index_[entity].insert(chain_id);
  (void)it;
  if (!inserted) return Status::OK();  // idempotent
  Encoder enc;
  enc.PutString(entity);
  enc.PutString(chain_id);
  ledger::Transaction tx = ledger::Transaction::MakeSystem(
      "dependency/edge", "dependencies", enc.TakeBuffer(),
      clock_->NowMicros(), ++seq_);
  return ledger_.Append({tx}, clock_->NowMicros(), "dependency-chain")
      .status();
}

std::vector<std::string> DependencyChain::ChainsFor(
    const std::string& entity) const {
  auto it = index_.find(entity);
  if (it == index_.end()) return {};
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

CrossChainQueryEngine::CrossChainQueryEngine(std::vector<OrgChain> orgs,
                                             DependencyChain* dependency_chain,
                                             SimClock* clock,
                                             int64_t dependency_lookup_us)
    : orgs_(std::move(orgs)),
      dependency_chain_(dependency_chain),
      clock_(clock),
      dependency_lookup_us_(dependency_lookup_us) {}

std::vector<AuthenticatedRecord> CrossChainQueryEngine::FetchFrom(
    OrgChain* org, const std::string& entity) {
  // Streamed query: each match is authenticated straight off the store's
  // subject index, without first materializing the whole history vector.
  std::vector<AuthenticatedRecord> out;
  org->store->Execute(
      prov::Query().WithSubject(entity),
      [&](const prov::ProvenanceRecord& record) {
        AuthenticatedRecord authenticated;
        authenticated.chain_id = org->chain_id;
        authenticated.record = record;
        auto proof = org->store->ProveRecord(record.record_id);
        if (proof.ok()) {
          authenticated.proof = proof.value();
          authenticated.verified =
              org->store->VerifyRecordProof(record, authenticated.proof);
        }
        out.push_back(std::move(authenticated));
        return true;
      });
  return out;
}

CrossChainTrace CrossChainQueryEngine::SequentialTrace(
    const std::string& entity) {
  CrossChainTrace trace;
  // One round trip per chain, strictly in series (the pre-SynergyChain
  // pattern the paper describes as "sequentially requesting multichain
  // data").
  for (auto& org : orgs_) {
    clock_->Advance(2 * org.query_latency_us);
    trace.latency_us += 2 * org.query_latency_us;
    ++trace.chains_contacted;
    auto records = FetchFrom(&org, entity);
    if (!records.empty()) ++trace.chains_with_hits;
    for (auto& rec : records) trace.records.push_back(std::move(rec));
  }
  return trace;
}

CrossChainTrace CrossChainQueryEngine::DependencyFirstTrace(
    const std::string& entity) {
  CrossChainTrace trace;
  // Step 1: one dependency-chain lookup.
  clock_->Advance(dependency_lookup_us_);
  trace.latency_us += dependency_lookup_us_;
  std::vector<std::string> relevant = dependency_chain_->ChainsFor(entity);

  // Step 2: parallel fan-out to just the relevant chains — the simulated
  // latency is the slowest relevant chain, not the sum.
  int64_t slowest = 0;
  for (auto& org : orgs_) {
    if (std::find(relevant.begin(), relevant.end(), org.chain_id) ==
        relevant.end()) {
      continue;
    }
    ++trace.chains_contacted;
    slowest = std::max(slowest, 2 * org.query_latency_us);
    auto records = FetchFrom(&org, entity);
    if (!records.empty()) ++trace.chains_with_hits;
    for (auto& rec : records) trace.records.push_back(std::move(rec));
  }
  clock_->Advance(slowest);
  trace.latency_us += slowest;
  return trace;
}

CrossChainTrace CrossChainQueryEngine::CachedTrace(const std::string& entity) {
  // Freshness probe: a cached answer is valid only while every relevant
  // chain's height is unchanged. Height probes are cheap header reads
  // (half a round trip), not record fan-outs.
  auto cached = cache_.find(entity);
  if (cached != cache_.end()) {
    bool fresh = true;
    int64_t probe_us = 0;
    for (const auto& [chain_id, height] : cached->second.heights) {
      for (auto& org : orgs_) {
        if (org.chain_id != chain_id) continue;
        probe_us = std::max(probe_us, org.query_latency_us);
        if (org.chain->height() != height) fresh = false;
      }
    }
    clock_->Advance(probe_us);
    if (fresh) {
      ++cache_hits_;
      CrossChainTrace trace;
      trace.records = cached->second.records;
      trace.latency_us = probe_us;
      trace.chains_contacted = cached->second.heights.size();
      for (const auto& rec : trace.records) {
        (void)rec;
      }
      trace.chains_with_hits = cached->second.heights.size();
      return trace;
    }
    cache_.erase(cached);
  }

  ++cache_misses_;
  CrossChainTrace trace = DependencyFirstTrace(entity);
  CacheEntry entry;
  entry.records = trace.records;
  for (const auto& chain_id : dependency_chain_->ChainsFor(entity)) {
    for (auto& org : orgs_) {
      if (org.chain_id == chain_id) {
        entry.heights[chain_id] = org.chain->height();
      }
    }
  }
  cache_[entity] = std::move(entry);
  return trace;
}

}  // namespace crosschain
}  // namespace provledger
