#include "crosschain/relay.h"

namespace provledger {
namespace crosschain {

RelayChain::RelayChain(Clock* clock)
    : clock_(clock),
      relay_ledger_(ledger::ChainOptions{.chain_id = "relay-chain"}) {}

Status RelayChain::Anchor(const std::string& type, const Bytes& payload) {
  ledger::Transaction tx = ledger::Transaction::MakeSystem(
      type, "relay", payload, clock_->NowMicros(), ++seq_);
  return relay_ledger_.Append({tx}, clock_->NowMicros(), "relay").status();
}

Status RelayChain::RegisterChain(const std::string& chain_id,
                                 const ledger::BlockHeader& genesis_header) {
  if (headers_.count(chain_id)) {
    return Status::AlreadyExists("chain already registered: " + chain_id);
  }
  if (genesis_header.height != 0) {
    return Status::InvalidArgument("registration requires the genesis header");
  }
  headers_[chain_id].push_back(genesis_header);
  ++header_count_;
  Encoder enc;
  genesis_header.EncodeTo(&enc);
  return Anchor("relay/register:" + chain_id, enc.TakeBuffer());
}

Status RelayChain::SubmitHeader(const std::string& chain_id,
                                const ledger::BlockHeader& header) {
  auto it = headers_.find(chain_id);
  if (it == headers_.end()) {
    return Status::NotFound("chain not registered: " + chain_id);
  }
  const ledger::BlockHeader& tip = it->second.back();
  if (header.height != tip.height + 1) {
    return Status::InvalidArgument("header does not extend the relayed tip");
  }
  if (header.prev_hash != tip.Hash()) {
    return Status::InvalidArgument("header prev_hash breaks continuity");
  }
  it->second.push_back(header);
  ++header_count_;
  Encoder enc;
  header.EncodeTo(&enc);
  return Anchor("relay/header:" + chain_id, enc.TakeBuffer());
}

Result<uint64_t> RelayChain::LatestHeight(const std::string& chain_id) const {
  auto it = headers_.find(chain_id);
  if (it == headers_.end()) {
    return Status::NotFound("chain not registered: " + chain_id);
  }
  return it->second.back().height;
}

Status RelayChain::VerifyForeignTransaction(
    const std::string& chain_id, const Bytes& tx_encoding,
    const ledger::TxProof& proof) const {
  auto it = headers_.find(chain_id);
  if (it == headers_.end()) {
    return Status::NotFound("chain not registered: " + chain_id);
  }
  if (proof.header.height >= it->second.size()) {
    return Status::FailedPrecondition(
        "block height not yet relayed; wait for header sync");
  }
  // The proof's header must be exactly the relayed one...
  const ledger::BlockHeader& relayed = it->second[proof.header.height];
  if (relayed.Hash() != proof.block_hash) {
    return Status::Unauthenticated("proof header is not the relayed header");
  }
  // ...and the Merkle proof must bind the transaction to it.
  if (!ledger::Blockchain::VerifyTxProofAgainstHeader(tx_encoding, proof)) {
    return Status::Unauthenticated("merkle proof failed against header");
  }
  return Status::OK();
}

Status RelayChain::SendMessage(const CrossChainMessage& message) {
  if (!headers_.count(message.from_chain)) {
    return Status::NotFound("sender chain not registered: " +
                            message.from_chain);
  }
  if (!headers_.count(message.to_chain)) {
    return Status::NotFound("recipient chain not registered: " +
                            message.to_chain);
  }
  CrossChainMessage stamped = message;
  stamped.at = clock_->NowMicros();
  messages_.push_back(stamped);
  Encoder enc;
  enc.PutString(stamped.from_chain);
  enc.PutString(stamped.to_chain);
  enc.PutString(stamped.type);
  enc.PutRaw(crypto::DigestToBytes(crypto::Sha256::Hash(stamped.payload)));
  return Anchor("relay/message", enc.TakeBuffer());
}

std::vector<CrossChainMessage> RelayChain::Inbox(
    const std::string& chain_id) const {
  std::vector<CrossChainMessage> out;
  for (const auto& message : messages_) {
    if (message.to_chain == chain_id) out.push_back(message);
  }
  return out;
}

NotaryCommittee::NotaryCommittee(const std::string& name, uint32_t size,
                                 uint32_t threshold)
    : threshold_(threshold) {
  for (uint32_t i = 0; i < size; ++i) {
    keys_.push_back(crypto::PrivateKey::FromSeed(name + "-notary-" +
                                                 std::to_string(i)));
    public_keys_.push_back(keys_.back().public_key());
  }
}

NotaryCommittee::Attestation NotaryCommittee::Attest(const Bytes& statement,
                                                     uint32_t signers) const {
  if (signers == 0 || signers > keys_.size()) {
    signers = static_cast<uint32_t>(keys_.size());
  }
  Attestation attestation;
  attestation.statement = statement;
  for (uint32_t i = 0; i < signers; ++i) {
    attestation.signatures.parts.emplace_back(public_keys_[i],
                                              keys_[i].Sign(statement));
  }
  return attestation;
}

bool NotaryCommittee::Verify(const Attestation& attestation) const {
  return crypto::VerifyThreshold(public_keys_, threshold_,
                                 attestation.statement,
                                 attestation.signatures);
}

}  // namespace crosschain
}  // namespace provledger
