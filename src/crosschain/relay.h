// Relay-chain cross-chain verification (§2.3 relay chains; ARC [88];
// ForensiCross's BridgeChain [11]).
//
// Source chains register their block headers with the relay; the relay
// validates hash-chain continuity, and any party can then verify a foreign
// transaction with just (header on relay) + (Merkle proof) — the SPV
// pattern. The relay also carries typed cross-chain messages whose payload
// hash is anchored on the relay's own ledger, giving the logging +
// synchronization substrate ForensiCross builds on.
//
// Thread safety: NOT internally synchronized — single owner, or external
// locking around every call.

#ifndef PROVLEDGER_CROSSCHAIN_RELAY_H_
#define PROVLEDGER_CROSSCHAIN_RELAY_H_

#include <map>
#include <string>
#include <vector>

#include "ledger/chain.h"

namespace provledger {
namespace crosschain {

/// \brief A cross-chain message carried over the relay.
struct CrossChainMessage {
  std::string from_chain;
  std::string to_chain;
  std::string type;  // e.g. "forensics/stage-advance"
  Bytes payload;
  Timestamp at = 0;
};

/// \brief Relay chain: header registry + message bus, itself a ledger.
class RelayChain {
 public:
  explicit RelayChain(Clock* clock);

  /// Register a source chain starting from its genesis header.
  Status RegisterChain(const std::string& chain_id,
                       const ledger::BlockHeader& genesis_header);
  /// Submit the next header of a registered chain. Continuity (height + 1,
  /// prev_hash) is enforced — a forged fork header is rejected.
  Status SubmitHeader(const std::string& chain_id,
                      const ledger::BlockHeader& header);
  /// Latest relayed height for a chain.
  Result<uint64_t> LatestHeight(const std::string& chain_id) const;

  /// \brief Verify that `tx_encoding` is included in `chain_id` at the
  /// proof's height, using only relayed headers (no access to the source
  /// chain). This is the trust-minimized cross-chain read.
  Status VerifyForeignTransaction(const std::string& chain_id,
                                  const Bytes& tx_encoding,
                                  const ledger::TxProof& proof) const;

  /// \name Message bus (logged on the relay ledger).
  /// @{
  Status SendMessage(const CrossChainMessage& message);
  /// Messages addressed to `chain_id`, in order.
  std::vector<CrossChainMessage> Inbox(const std::string& chain_id) const;
  /// @}

  /// The relay's own ledger (headers + message hashes are anchored here).
  const ledger::Blockchain& ledger() const { return relay_ledger_; }
  size_t relayed_header_count() const { return header_count_; }

 private:
  Status Anchor(const std::string& type, const Bytes& payload);

  Clock* clock_;
  ledger::Blockchain relay_ledger_;
  // chain id -> headers by height.
  std::map<std::string, std::vector<ledger::BlockHeader>> headers_;
  std::vector<CrossChainMessage> messages_;
  size_t header_count_ = 0;
  uint64_t seq_ = 0;
};

/// \brief Notary-scheme attestation (§2.3 notary schemes; Sun et al. [71]):
/// an m-of-n committee co-signs a statement about another chain's state.
/// Trust model: you trust the committee quorum rather than verifying
/// headers yourself — cheaper than a relay, stronger assumptions.
class NotaryCommittee {
 public:
  /// Build a committee of `size` notaries (deterministic keys) requiring
  /// `threshold` co-signatures.
  NotaryCommittee(const std::string& name, uint32_t size, uint32_t threshold);

  /// \brief A signed attestation of an arbitrary statement.
  struct Attestation {
    Bytes statement;
    crypto::MultiSignature signatures;
  };

  /// Have the first `signers` notaries sign (defaults to all).
  Attestation Attest(const Bytes& statement, uint32_t signers = 0) const;
  /// Verify against the committee's public keys and threshold.
  bool Verify(const Attestation& attestation) const;

  uint32_t size() const { return static_cast<uint32_t>(keys_.size()); }
  uint32_t threshold() const { return threshold_; }

 private:
  std::vector<crypto::PrivateKey> keys_;
  std::vector<crypto::PublicKey> public_keys_;
  uint32_t threshold_;
};

}  // namespace crosschain
}  // namespace provledger

#endif  // PROVLEDGER_CROSSCHAIN_RELAY_H_
