#include "crosschain/sidechain.h"

namespace provledger {
namespace crosschain {

PeggedSidechain::PeggedSidechain(Clock* clock)
    : clock_(clock),
      main_chain_(ledger::ChainOptions{.chain_id = "main-chain"}),
      side_chain_(ledger::ChainOptions{.chain_id = "side-chain"}) {
  // Genesis is implicitly checkpointed: the peg operator registers the
  // side chain's genesis header on the main chain at setup.
  auto genesis = side_chain_.GetHeader(0);
  checkpointed_headers_.push_back(genesis.value());
}

void PeggedSidechain::FundMain(const std::string& user, uint64_t amount) {
  main_balances_[user] += amount;
}

uint64_t PeggedSidechain::MainBalance(const std::string& user) const {
  auto it = main_balances_.find(user);
  return it == main_balances_.end() ? 0 : it->second;
}

uint64_t PeggedSidechain::SideBalance(const std::string& user) const {
  auto it = side_balances_.find(user);
  return it == side_balances_.end() ? 0 : it->second;
}

Status PeggedSidechain::AnchorMain(const std::string& type,
                                   const Bytes& payload) {
  ledger::Transaction tx = ledger::Transaction::MakeSystem(
      type, "peg", payload, clock_->NowMicros(), ++seq_);
  return main_chain_.Append({tx}, clock_->NowMicros(), "peg").status();
}

Status PeggedSidechain::AnchorSide(const std::string& type,
                                   const Bytes& payload,
                                   crypto::Digest* txid_out) {
  ledger::Transaction tx = ledger::Transaction::MakeSystem(
      type, "peg", payload, clock_->NowMicros(), ++seq_);
  if (txid_out != nullptr) *txid_out = tx.Id();
  return side_chain_.Append({tx}, clock_->NowMicros(), "side").status();
}

Status PeggedSidechain::Deposit(const std::string& user, uint64_t amount) {
  auto it = main_balances_.find(user);
  if (it == main_balances_.end() || it->second < amount) {
    return Status::FailedPrecondition("insufficient main-chain balance");
  }
  it->second -= amount;
  escrow_ += amount;
  Encoder enc;
  enc.PutString(user);
  enc.PutU64(amount);
  PROVLEDGER_RETURN_NOT_OK(AnchorMain("peg/deposit", enc.buffer()));
  side_balances_[user] += amount;
  return AnchorSide("peg/mint", enc.buffer());
}

Status PeggedSidechain::SideTransfer(const std::string& from,
                                     const std::string& to, uint64_t amount) {
  auto it = side_balances_.find(from);
  if (it == side_balances_.end() || it->second < amount) {
    return Status::FailedPrecondition("insufficient side-chain balance");
  }
  it->second -= amount;
  side_balances_[to] += amount;
  Encoder enc;
  enc.PutString(from);
  enc.PutString(to);
  enc.PutU64(amount);
  return AnchorSide("side/transfer", enc.buffer());
}

Result<size_t> PeggedSidechain::Checkpoint() {
  size_t submitted = 0;
  while (checkpointed_height_ < side_chain_.height()) {
    ++checkpointed_height_;
    PROVLEDGER_ASSIGN_OR_RETURN(ledger::BlockHeader header,
                                side_chain_.GetHeader(checkpointed_height_));
    Encoder enc;
    header.EncodeTo(&enc);
    PROVLEDGER_RETURN_NOT_OK(AnchorMain("peg/checkpoint", enc.buffer()));
    checkpointed_headers_.push_back(header);
    ++submitted;
  }
  return submitted;
}

Result<crypto::Digest> PeggedSidechain::WithdrawInitiate(
    const std::string& user, uint64_t amount) {
  auto it = side_balances_.find(user);
  if (it == side_balances_.end() || it->second < amount) {
    return Status::FailedPrecondition("insufficient side-chain balance");
  }
  it->second -= amount;
  Encoder enc;
  enc.PutString(user);
  enc.PutU64(amount);
  crypto::Digest txid;
  PROVLEDGER_RETURN_NOT_OK(AnchorSide("peg/burn", enc.buffer(), &txid));
  burns_.emplace(crypto::DigestHex(txid), Burn{user, amount, false});
  return txid;
}

Status PeggedSidechain::WithdrawComplete(const std::string& user,
                                         const crypto::Digest& burn_txid) {
  auto burn_it = burns_.find(crypto::DigestHex(burn_txid));
  if (burn_it == burns_.end()) {
    return Status::NotFound("unknown burn transaction");
  }
  Burn& burn = burn_it->second;
  if (burn.completed) {
    return Status::AlreadyExists("withdrawal already completed");
  }
  if (burn.user != user) {
    return Status::PermissionDenied("burn belongs to another user");
  }

  // Main-chain-side verification: the burn must be provable against a
  // header the main chain has checkpointed.
  PROVLEDGER_ASSIGN_OR_RETURN(ledger::TxProof proof,
                              side_chain_.ProveTransaction(burn_txid));
  if (proof.header.height > checkpointed_height_) {
    return Status::FailedPrecondition(
        "burn block not yet checkpointed on the main chain");
  }
  const ledger::BlockHeader& checkpointed =
      checkpointed_headers_[proof.header.height];
  if (checkpointed.Hash() != proof.block_hash) {
    return Status::Unauthenticated("burn proof against a forked header");
  }
  PROVLEDGER_ASSIGN_OR_RETURN(ledger::Transaction tx,
                              side_chain_.GetTransaction(burn_txid));
  if (!ledger::Blockchain::VerifyTxProofAgainstHeader(tx.Encode(), proof)) {
    return Status::Unauthenticated("burn merkle proof failed");
  }

  if (escrow_ < burn.amount) {
    return Status::Internal("escrow underflow — peg accounting broken");
  }
  escrow_ -= burn.amount;
  main_balances_[user] += burn.amount;
  burn.completed = true;
  Encoder enc;
  enc.PutString(user);
  enc.PutU64(burn.amount);
  return AnchorMain("peg/release", enc.buffer());
}

}  // namespace crosschain
}  // namespace provledger
