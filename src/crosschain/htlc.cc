#include "crosschain/htlc.h"

namespace provledger {
namespace crosschain {

AssetLedger::AssetLedger(const std::string& chain_id, Clock* clock)
    : chain_id_(chain_id),
      clock_(clock),
      chain_(ledger::ChainOptions{.chain_id = chain_id}) {}

Status AssetLedger::Anchor(const std::string& operation,
                           const std::string& detail) {
  Encoder enc;
  enc.PutString(operation);
  enc.PutString(detail);
  ledger::Transaction tx = ledger::Transaction::MakeSystem(
      "asset/" + operation, "assets", enc.TakeBuffer(), clock_->NowMicros(),
      ++seq_);
  return chain_.Append({tx}, clock_->NowMicros(), "asset-ledger").status();
}

Status AssetLedger::Mint(const std::string& account, uint64_t amount) {
  balances_[account] += amount;
  return Anchor("mint", account + ":" + std::to_string(amount));
}

Result<uint64_t> AssetLedger::BalanceOf(const std::string& account) const {
  auto it = balances_.find(account);
  return it == balances_.end() ? uint64_t{0} : it->second;
}

Status AssetLedger::Transfer(const std::string& from, const std::string& to,
                             uint64_t amount) {
  auto it = balances_.find(from);
  if (it == balances_.end() || it->second < amount) {
    return Status::FailedPrecondition("insufficient balance for " + from);
  }
  it->second -= amount;
  balances_[to] += amount;
  return Anchor("transfer", from + ">" + to + ":" + std::to_string(amount));
}

Result<std::string> AssetLedger::Lock(const std::string& sender,
                                      const std::string& recipient,
                                      uint64_t amount,
                                      const crypto::HashLock& lock,
                                      Timestamp timeout_at) {
  auto it = balances_.find(sender);
  if (it == balances_.end() || it->second < amount) {
    return Status::FailedPrecondition("insufficient balance for " + sender);
  }
  if (timeout_at <= clock_->NowMicros()) {
    return Status::InvalidArgument("timeout must be in the future");
  }
  it->second -= amount;
  const std::string escrow_id =
      chain_id_ + "-htlc-" + std::to_string(escrows_.size() + 1);
  Escrow escrow;
  escrow.sender = sender;
  escrow.recipient = recipient;
  escrow.amount = amount;
  escrow.lock = lock;
  escrow.timeout_at = timeout_at;
  escrows_.emplace(escrow_id, std::move(escrow));
  PROVLEDGER_RETURN_NOT_OK(Anchor("htlc-lock", escrow_id));
  return escrow_id;
}

Status AssetLedger::Claim(const std::string& escrow_id,
                          const std::string& recipient,
                          const Bytes& preimage) {
  auto it = escrows_.find(escrow_id);
  if (it == escrows_.end()) {
    return Status::NotFound("no such escrow: " + escrow_id);
  }
  Escrow& escrow = it->second;
  if (escrow.state != EscrowState::kLocked) {
    return Status::FailedPrecondition("escrow is not locked");
  }
  if (escrow.recipient != recipient) {
    return Status::PermissionDenied("escrow not addressed to " + recipient);
  }
  if (clock_->NowMicros() >= escrow.timeout_at) {
    return Status::TimedOut("escrow timed out; only refund is possible");
  }
  if (!escrow.lock.Matches(preimage)) {
    return Status::Unauthenticated("wrong preimage for escrow " + escrow_id);
  }
  escrow.state = EscrowState::kClaimed;
  escrow.revealed_preimage = preimage;  // public on-chain from now on
  balances_[recipient] += escrow.amount;
  return Anchor("htlc-claim", escrow_id);
}

Status AssetLedger::Refund(const std::string& escrow_id,
                           const std::string& sender) {
  auto it = escrows_.find(escrow_id);
  if (it == escrows_.end()) {
    return Status::NotFound("no such escrow: " + escrow_id);
  }
  Escrow& escrow = it->second;
  if (escrow.state != EscrowState::kLocked) {
    return Status::FailedPrecondition("escrow is not locked");
  }
  if (escrow.sender != sender) {
    return Status::PermissionDenied("only the sender may refund");
  }
  if (clock_->NowMicros() < escrow.timeout_at) {
    return Status::FailedPrecondition("escrow has not timed out yet");
  }
  escrow.state = EscrowState::kRefunded;
  balances_[sender] += escrow.amount;
  return Anchor("htlc-refund", escrow_id);
}

Result<Bytes> AssetLedger::RevealedPreimage(
    const std::string& escrow_id) const {
  auto it = escrows_.find(escrow_id);
  if (it == escrows_.end()) {
    return Status::NotFound("no such escrow: " + escrow_id);
  }
  if (it->second.state != EscrowState::kClaimed) {
    return Status::FailedPrecondition("escrow not claimed yet");
  }
  return it->second.revealed_preimage;
}

AtomicSwap::AtomicSwap(AssetLedger* ledger_a, AssetLedger* ledger_b,
                       SimClock* clock)
    : ledger_a_(ledger_a), ledger_b_(ledger_b), clock_(clock) {}

Result<SwapOutcome> AtomicSwap::Execute(const std::string& alice,
                                        const std::string& bob,
                                        uint64_t amount_a, uint64_t amount_b,
                                        const Bytes& secret,
                                        Timestamp lock_duration_us) {
  const crypto::HashLock lock = crypto::HashLock::FromSecret(secret);
  const Timestamp now = clock_->NowMicros();
  // Leader's (Alice's) lock lives twice as long as Bob's: Bob must be able
  // to claim with the revealed preimage before Alice's side could refund.
  const Timestamp alice_timeout = now + 2 * lock_duration_us;
  const Timestamp bob_timeout = now + lock_duration_us;

  // Step 1: Alice (secret holder) locks on chain A for Bob.
  PROVLEDGER_ASSIGN_OR_RETURN(
      std::string escrow_a,
      ledger_a_->Lock(alice, bob, amount_a, lock, alice_timeout));
  clock_->Advance(1000);

  // Step 2: Bob sees the lock and locks on chain B for Alice (same hash).
  PROVLEDGER_ASSIGN_OR_RETURN(
      std::string escrow_b,
      ledger_b_->Lock(bob, alice, amount_b, lock, bob_timeout));
  clock_->Advance(1000);

  // Step 3: Alice claims on chain B, revealing the preimage on-chain.
  PROVLEDGER_RETURN_NOT_OK(ledger_b_->Claim(escrow_b, alice, secret));
  clock_->Advance(1000);

  // Step 4: Bob reads the revealed preimage and claims on chain A.
  PROVLEDGER_ASSIGN_OR_RETURN(Bytes revealed,
                              ledger_b_->RevealedPreimage(escrow_b));
  PROVLEDGER_RETURN_NOT_OK(ledger_a_->Claim(escrow_a, bob, revealed));

  SwapOutcome outcome;
  outcome.completed = true;
  outcome.detail = "both legs claimed";
  return outcome;
}

Result<SwapOutcome> AtomicSwap::ExecuteWithBobAbort(
    const std::string& alice, const std::string& bob, uint64_t amount_a,
    uint64_t /*amount_b*/, const Bytes& secret, Timestamp lock_duration_us) {
  const crypto::HashLock lock = crypto::HashLock::FromSecret(secret);
  const Timestamp now = clock_->NowMicros();
  const Timestamp alice_timeout = now + 2 * lock_duration_us;

  PROVLEDGER_ASSIGN_OR_RETURN(
      std::string escrow_a,
      ledger_a_->Lock(alice, bob, amount_a, lock, alice_timeout));

  // Bob never locks. Alice must NOT reveal the secret; she waits out her
  // own timeout and refunds. No party can end up half-paid.
  clock_->SetMicros(alice_timeout + 1);
  PROVLEDGER_RETURN_NOT_OK(ledger_a_->Refund(escrow_a, alice));

  SwapOutcome outcome;
  outcome.refunded = true;
  outcome.detail = "counterparty aborted; leader refunded after timeout";
  return outcome;
}

}  // namespace crosschain
}  // namespace provledger
