// Hash time-locked contracts and atomic cross-chain swaps (§2.3; Herlihy
// [35], hash-locking surveys [48, 71]).
//
// Each chain hosts an AssetLedger (simple account balances anchored to its
// blockchain) with an HTLC escrow: funds lock under H(s) + timeout; the
// recipient claims with the preimage before the deadline, otherwise the
// sender refunds after it. AtomicSwap drives the two-chain protocol with
// correctly ordered timeouts (the follower's lock expires first), giving
// the all-or-nothing property the paper cites — tests exercise both the
// happy path and every abort schedule.
//
// Thread safety: NOT internally synchronized — single owner, or external
// locking around every call.

#ifndef PROVLEDGER_CROSSCHAIN_HTLC_H_
#define PROVLEDGER_CROSSCHAIN_HTLC_H_

#include <map>
#include <optional>
#include <string>

#include "crypto/hashlock.h"
#include "ledger/chain.h"

namespace provledger {
namespace crosschain {

/// \brief Account-balance ledger with an HTLC escrow, anchored to a chain.
class AssetLedger {
 public:
  AssetLedger(const std::string& chain_id, Clock* clock);

  Status Mint(const std::string& account, uint64_t amount);
  Result<uint64_t> BalanceOf(const std::string& account) const;
  Status Transfer(const std::string& from, const std::string& to,
                  uint64_t amount);

  /// \name HTLC escrow.
  /// @{
  /// Lock `amount` from `sender` for `recipient` under `lock`; returns the
  /// escrow id. After `timeout_at` only Refund succeeds.
  Result<std::string> Lock(const std::string& sender,
                           const std::string& recipient, uint64_t amount,
                           const crypto::HashLock& lock,
                           Timestamp timeout_at);
  /// Recipient claims with the preimage (strictly before the timeout).
  Status Claim(const std::string& escrow_id, const std::string& recipient,
               const Bytes& preimage);
  /// Sender reclaims after the timeout.
  Status Refund(const std::string& escrow_id, const std::string& sender);
  /// Preimage revealed by a successful claim (what the counterparty
  /// watches the chain for).
  Result<Bytes> RevealedPreimage(const std::string& escrow_id) const;
  /// @}

  const std::string& chain_id() const { return chain_id_; }
  ledger::Blockchain* chain() { return &chain_; }
  /// All anchored asset transactions (audit surface).
  size_t anchored_ops() const { return seq_; }

 private:
  enum class EscrowState : uint8_t { kLocked, kClaimed, kRefunded };
  struct Escrow {
    std::string sender;
    std::string recipient;
    uint64_t amount = 0;
    crypto::HashLock lock;
    Timestamp timeout_at = 0;
    EscrowState state = EscrowState::kLocked;
    Bytes revealed_preimage;
  };

  Status Anchor(const std::string& operation, const std::string& detail);

  std::string chain_id_;
  Clock* clock_;
  ledger::Blockchain chain_;
  std::map<std::string, uint64_t> balances_;
  std::map<std::string, Escrow> escrows_;
  uint64_t seq_ = 0;
};

/// \brief Outcome of a swap attempt.
struct SwapOutcome {
  bool completed = false;   // true: both legs claimed
  bool refunded = false;    // true: both legs refunded (clean abort)
  std::string detail;
};

/// \brief Two-party atomic swap coordinator (Herlihy's two-chain protocol).
class AtomicSwap {
 public:
  /// Alice trades `amount_a` on `ledger_a` for Bob's `amount_b` on
  /// `ledger_b`. `clock` drives the shared timeline.
  AtomicSwap(AssetLedger* ledger_a, AssetLedger* ledger_b, SimClock* clock);

  /// Run the happy path end to end.
  Result<SwapOutcome> Execute(const std::string& alice,
                              const std::string& bob, uint64_t amount_a,
                              uint64_t amount_b, const Bytes& secret,
                              Timestamp lock_duration_us = 1'000'000);

  /// Abort path: Bob never locks (or never claims); both sides refund
  /// after their timeouts.
  Result<SwapOutcome> ExecuteWithBobAbort(const std::string& alice,
                                          const std::string& bob,
                                          uint64_t amount_a,
                                          uint64_t amount_b,
                                          const Bytes& secret,
                                          Timestamp lock_duration_us =
                                              1'000'000);

 private:
  AssetLedger* ledger_a_;
  AssetLedger* ledger_b_;
  SimClock* clock_;
};

}  // namespace crosschain
}  // namespace provledger

#endif  // PROVLEDGER_CROSSCHAIN_HTLC_H_
