// ForensiCross [11]: cross-chain collaboration for digital forensics.
//
// Two (or more) organizations each run their own chain, provenance store,
// and CaseManager. A BridgeChain (relay + unanimous notary validation)
// carries case-linking, stage-synchronization, and evidence-pointer
// messages between them:
//   * stage advances on one side propagate to the others, keeping linked
//     investigations in lock-step ("synchronization of investigative
//     stages" with "unanimous agreement for progression");
//   * evidence is shared as content hash + Merkle proof, verifiable by the
//     recipient against relayed headers without trusting the sender;
//   * cross-chain provenance extraction gathers both sides' evidence
//     histories through the dependency-chain query engine pattern.
//
// Thread safety: NOT internally synchronized — the cross-chain coordinator
// and both chains are driven from one thread.

#ifndef PROVLEDGER_CROSSCHAIN_FORENSICROSS_H_
#define PROVLEDGER_CROSSCHAIN_FORENSICROSS_H_

#include "crosschain/provquery.h"
#include "crosschain/relay.h"
#include "domains/forensics/case_manager.h"

namespace provledger {
namespace crosschain {

/// \brief One participating organization.
struct ForensicOrg {
  std::string name;
  ledger::Blockchain* chain = nullptr;
  prov::ProvenanceStore* store = nullptr;
  forensics::CaseManager* cases = nullptr;
};

/// \brief A shared evidence pointer as carried over the bridge.
struct SharedEvidence {
  std::string from_org;
  std::string case_id;
  std::string evidence_id;
  crypto::Digest content_hash;
  prov::ProvenanceRecord record;   // the sender's collect-evidence record
  ledger::TxProof proof;           // its inclusion proof on the sender chain
};

/// \brief The cross-chain forensic collaboration coordinator.
class ForensiCross {
 public:
  ForensiCross(Clock* clock, uint32_t notaries = 4);

  /// Register an organization; its chain's genesis header is relayed.
  Status RegisterOrg(const ForensicOrg& org);

  /// Link a case across all registered orgs: each org opens a local case
  /// with the shared id (stage lock-step starts at identification).
  Status LinkCase(const std::string& case_id, const std::string& lead,
                  const std::string& start_date);

  /// Advance the linked case everywhere. Requires a unanimous notary
  /// attestation over the transition statement (ForensiCross's "unanimous
  /// agreement for progression"); with fewer than all notaries signing the
  /// advance is rejected everywhere.
  Status AdvanceLinkedStage(const std::string& case_id,
                            const std::string& actor,
                            uint32_t signing_notaries = 0);

  /// Sync the org's chain headers to the bridge (call after local writes).
  Status SyncHeaders(const std::string& org_name);

  /// Share evidence from one org to the others: pointer + proof over the
  /// bridge. The receiving side verifies against relayed headers.
  Result<SharedEvidence> ShareEvidence(const std::string& from_org,
                                       const std::string& case_id,
                                       const std::string& evidence_id);
  /// Receiver-side verification of a shared pointer (relay-based, does not
  /// trust the sender).
  Status VerifySharedEvidence(const SharedEvidence& shared);

  /// Cross-org provenance extraction for a case's evidence item.
  std::vector<AuthenticatedRecord> ExtractProvenance(
      const std::string& evidence_id);

  RelayChain* bridge() { return &bridge_; }
  const NotaryCommittee& notaries() const { return notaries_; }

 private:
  Result<ForensicOrg*> FindOrg(const std::string& name);

  Clock* clock_;
  RelayChain bridge_;
  NotaryCommittee notaries_;
  std::vector<ForensicOrg> orgs_;
  std::set<std::string> linked_cases_;
};

}  // namespace crosschain
}  // namespace provledger

#endif  // PROVLEDGER_CROSSCHAIN_FORENSICROSS_H_
