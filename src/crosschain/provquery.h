// Cross-chain provenance queries (RQ3; Vassago [31], SynergyChain [21]).
//
// Several organizations each run their own chain + ProvenanceStore. A
// shared *dependency chain* (Vassago's DB) records, for every cross-chain
// hand-off, which chains hold records for which entity. Two query engines
// answer "trace entity X across all chains":
//
//   * SequentialQuery — the strawman SynergyChain improves on: contact
//     every chain one after another (latency = sum over chains);
//   * DependencyFirstQuery — Vassago: one dependency-chain lookup narrows
//     the relevant chains, which are then queried in parallel
//     (latency = dependency lookup + max over relevant chains).
//
// Both return identical record sets with per-record authentication
// (Merkle proofs against each source chain), so bench_query_mechanisms can
// honestly reproduce the paper's latency-gap claim.
//
// Thread safety: NOT internally synchronized — single owner, or external
// locking around every call.

#ifndef PROVLEDGER_CROSSCHAIN_PROVQUERY_H_
#define PROVLEDGER_CROSSCHAIN_PROVQUERY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "prov/store.h"

namespace provledger {
namespace crosschain {

/// \brief One organization's chain + provenance store.
struct OrgChain {
  std::string chain_id;
  ledger::Blockchain* chain = nullptr;
  prov::ProvenanceStore* store = nullptr;
  /// Simulated one-way query latency to this organization.
  int64_t query_latency_us = 2000;
};

/// \brief A provenance record together with its source chain and proof.
struct AuthenticatedRecord {
  std::string chain_id;
  prov::ProvenanceRecord record;
  ledger::TxProof proof;
  bool verified = false;
};

/// \brief Result of a cross-chain trace.
struct CrossChainTrace {
  std::vector<AuthenticatedRecord> records;
  int64_t latency_us = 0;     // simulated end-to-end latency
  size_t chains_contacted = 0;
  size_t chains_with_hits = 0;
};

/// \brief The shared dependency chain (Vassago's "Dependency Blockchain"):
/// an index ledger mapping entities to the chains holding their records.
class DependencyChain {
 public:
  explicit DependencyChain(Clock* clock);

  /// Record that `chain_id` holds provenance for `entity` (appended by the
  /// cross-chain transfer protocol, one ledger anchor per edge).
  Status RecordDependency(const std::string& entity,
                          const std::string& chain_id);
  /// Chains known to hold records for `entity` (one lookup).
  std::vector<std::string> ChainsFor(const std::string& entity) const;
  /// The dependency ledger itself (auditable).
  const ledger::Blockchain& ledger() const { return ledger_; }

 private:
  Clock* clock_;
  ledger::Blockchain ledger_;
  std::map<std::string, std::set<std::string>> index_;
  uint64_t seq_ = 0;
};

/// \brief Multi-chain provenance query engine.
class CrossChainQueryEngine {
 public:
  CrossChainQueryEngine(std::vector<OrgChain> orgs,
                        DependencyChain* dependency_chain, SimClock* clock,
                        int64_t dependency_lookup_us = 1500);

  /// Strawman: contact every chain serially.
  CrossChainTrace SequentialTrace(const std::string& entity);
  /// Vassago: dependency lookup, then parallel fan-out to relevant chains.
  CrossChainTrace DependencyFirstTrace(const std::string& entity);

  /// \brief §6.2 future-work extension: repeated-query handling. Identical
  /// queries are served from a freshness-checked cache — a hit only pays a
  /// cheap per-chain height probe instead of record fan-out, and any
  /// relevant chain having grown since the cached fetch invalidates the
  /// entry (the paper's freshness concern, §5.1). Results are identical to
  /// DependencyFirstTrace.
  CrossChainTrace CachedTrace(const std::string& entity);
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }

  /// Both engines verify each returned record against its source chain;
  /// a record failing its Merkle proof is marked verified=false.
  size_t org_count() const { return orgs_.size(); }

 private:
  struct CacheEntry {
    std::vector<AuthenticatedRecord> records;
    // Chain height per relevant chain at fetch time (freshness stamp).
    std::map<std::string, uint64_t> heights;
  };

  /// Fetch + authenticate an entity's records from one org.
  std::vector<AuthenticatedRecord> FetchFrom(OrgChain* org,
                                             const std::string& entity);

  std::vector<OrgChain> orgs_;
  DependencyChain* dependency_chain_;
  SimClock* clock_;
  int64_t dependency_lookup_us_;
  std::map<std::string, CacheEntry> cache_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
};

}  // namespace crosschain
}  // namespace provledger

#endif  // PROVLEDGER_CROSSCHAIN_PROVQUERY_H_
