// Two-layer main/side-chain architecture (§2.3 side chains; InfiniteChain
// [37]; pegged sidechains [16]).
//
// Assets lock in a main-chain escrow and are minted 1:1 on the side chain;
// the side chain periodically *checkpoints* its headers onto the main chain
// (InfiniteChain's "distributed auditing of sidechains"), and withdrawals
// burn on the side chain and unlock on the main chain only with a Merkle
// proof of the burn against a checkpointed header — so the main chain never
// trusts the side chain's word, only its own anchored checkpoints.
//
// Thread safety: NOT internally synchronized — single owner, or external
// locking around every call.

#ifndef PROVLEDGER_CROSSCHAIN_SIDECHAIN_H_
#define PROVLEDGER_CROSSCHAIN_SIDECHAIN_H_

#include <map>
#include <string>
#include <vector>

#include "ledger/chain.h"

namespace provledger {
namespace crosschain {

/// \brief A main chain + pegged side chain pair.
class PeggedSidechain {
 public:
  explicit PeggedSidechain(Clock* clock);

  /// Fund a user's main-chain balance (test/bootstrap).
  void FundMain(const std::string& user, uint64_t amount);
  uint64_t MainBalance(const std::string& user) const;
  uint64_t SideBalance(const std::string& user) const;
  uint64_t EscrowBalance() const { return escrow_; }

  /// Lock on main, mint on side.
  Status Deposit(const std::string& user, uint64_t amount);
  /// Ordinary side-chain payment (the fast/cheap lane side chains exist
  /// for).
  Status SideTransfer(const std::string& from, const std::string& to,
                      uint64_t amount);
  /// Anchor all side-chain headers since the last checkpoint onto the
  /// main chain. Returns how many headers were checkpointed.
  Result<size_t> Checkpoint();
  /// Burn on side; returns the burn transaction id for the withdrawal
  /// proof.
  Result<crypto::Digest> WithdrawInitiate(const std::string& user,
                                          uint64_t amount);
  /// Release from escrow on main, given a Merkle proof of the burn that
  /// verifies against a *checkpointed* side header. Burns not yet covered
  /// by a checkpoint are rejected (FailedPrecondition).
  Status WithdrawComplete(const std::string& user,
                          const crypto::Digest& burn_txid);

  const ledger::Blockchain& main_chain() const { return main_chain_; }
  const ledger::Blockchain& side_chain() const { return side_chain_; }
  uint64_t checkpointed_height() const { return checkpointed_height_; }

 private:
  struct Burn {
    std::string user;
    uint64_t amount = 0;
    bool completed = false;
  };

  Status AnchorMain(const std::string& type, const Bytes& payload);
  Status AnchorSide(const std::string& type, const Bytes& payload,
                    crypto::Digest* txid_out = nullptr);

  Clock* clock_;
  ledger::Blockchain main_chain_;
  ledger::Blockchain side_chain_;
  std::map<std::string, uint64_t> main_balances_;
  std::map<std::string, uint64_t> side_balances_;
  uint64_t escrow_ = 0;
  // Side headers as checkpointed on main (index == height).
  std::vector<ledger::BlockHeader> checkpointed_headers_;
  uint64_t checkpointed_height_ = 0;
  std::map<std::string, Burn> burns_;  // hex(txid) -> burn
  uint64_t seq_ = 0;
};

}  // namespace crosschain
}  // namespace provledger

#endif  // PROVLEDGER_CROSSCHAIN_SIDECHAIN_H_
