// Observability registry: named counters, gauges, and fixed-bucket
// histograms with Prometheus-text and JSON exposition. The hot path is a
// single relaxed atomic add on a cell the caller looked up once and cached
// (registration takes a mutex; increments never do), so instrumenting the
// ingest/commit/replication paths costs nanoseconds even on the 1-core CI
// container.
//
// Naming contract (enforced by provlint's metric-name rule): metric names
// are snake_case; counters end in `_total`; histograms end in `_seconds`
// or `_bytes` (base units — no milliseconds, no kilobytes). Gauges carry
// no mandatory suffix. Label keys are snake_case; one metric name maps to
// one family, and every series in a family shares the same label keys.
//
// Thread safety: Counter/Gauge/Histogram cells are lock-free and safe from
// any thread. Registry lookups (GetCounter/GetGauge/GetHistogram) and the
// exposition methods take an internal mutex; returned cell pointers are
// stable for the registry's lifetime, so callers resolve once and cache.

#ifndef PROVLEDGER_OBS_METRICS_H_
#define PROVLEDGER_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace provledger {
namespace obs {

/// Ordered key/value label set. Series identity is the labels *in the
/// order given* — always pass a family's labels in one consistent order.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonically increasing counter. One relaxed add per increment.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Instantaneous signed value (queue depth, lag, segment count).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket histogram: ascending upper bounds plus an implicit
/// +Inf overflow bucket. Observe() is two relaxed adds (bucket cell + sum).
/// The running sum is fixed-point (microunits: microseconds for `_seconds`
/// metrics, millionths of a byte for `_bytes`) because C++17 has no atomic
/// double fetch_add; sum() converts back.
class Histogram {
 public:
  /// `bounds` must be ascending; an implicit +Inf bucket is appended.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  /// Total observations (sum over all bucket cells).
  uint64_t count() const;
  /// Sum of observed values (fixed-point accumulation, see class comment).
  double sum() const;

  /// Upper bounds, ascending, excluding the implicit +Inf bucket.
  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative cell value for bucket `i` (i == bounds().size() is the
  /// +Inf overflow cell).
  uint64_t bucket_value(size_t i) const {
    return cells_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> cells_;  // bounds_.size() + 1
  std::atomic<uint64_t> sum_microunits_{0};
};

/// Log-scaled latency bounds in seconds: 1us .. ~16.8s, powers of four.
std::vector<double> LatencyBuckets();
/// Log-scaled size bounds in bytes: 64B .. 1GiB, powers of four.
std::vector<double> SizeBuckets();

/// \brief Times a scope and records the elapsed seconds into a histogram
/// on destruction. A null histogram makes the timer a no-op.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    histogram_->Observe(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

enum class ExpositionFormat { kPrometheusText, kJson };

/// \brief Process-wide metric registry; see file comment for the naming
/// and threading contracts.
class Registry {
 public:
  Registry();
  ~Registry();  // out of line: Series is incomplete here
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Shared process-wide registry (what instrumented classes use when no
  /// registry is injected). Never destroyed — cached cell pointers stay
  /// valid through static teardown.
  static Registry* Default();

  /// Find-or-create the counter `name{labels}`. `help` is recorded on
  /// first registration of the family. Returned pointer is stable for the
  /// registry's lifetime — resolve once, cache, increment lock-free.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  /// Find-or-create the gauge `name{labels}`.
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  /// Find-or-create the histogram `name{labels}` with ascending upper
  /// `bounds` (see LatencyBuckets/SizeBuckets). Bounds are fixed by the
  /// family's first registration; later calls reuse them.
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const std::vector<double>& bounds,
                          const Labels& labels = {});

  /// A name registered again as a different metric type does NOT clobber
  /// the existing family: the caller gets a detached quarantine cell (safe
  /// to use, never exposed) and this count goes up. Zero in a healthy
  /// process; pinned by the obs tests.
  uint64_t type_conflicts() const;

  /// Prometheus text exposition (families sorted by name, series by label
  /// string; histograms emit cumulative `_bucket{le=...}` + `_sum` +
  /// `_count`).
  std::string TextExposition() const;
  /// The same data as a single JSON object (bench-JSON idiom).
  std::string JsonExposition() const;
  std::string Exposition(ExpositionFormat format) const;

 private:
  enum class MetricType { kCounter, kGauge, kHistogram };

  struct Series;
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    std::vector<double> bounds;  // histograms only
    // Serialized label string -> series; std::map keeps exposition sorted.
    std::map<std::string, std::unique_ptr<Series>> series;
  };

  Series* GetSeries(const std::string& name, const std::string& help,
                    MetricType type, const std::vector<double>& bounds,
                    const Labels& labels);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;       // guarded by mu_
  std::vector<std::unique_ptr<Series>> quarantine_;  // guarded by mu_
  std::atomic<uint64_t> type_conflicts_{0};
};

}  // namespace obs
}  // namespace provledger

#endif  // PROVLEDGER_OBS_METRICS_H_
