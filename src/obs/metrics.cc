#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace provledger {
namespace obs {

namespace {

constexpr double kSumScale = 1e6;  // fixed-point microunits per 1.0

/// Shortest round-trippable decimal for bounds/sums ("0.001", "4.096").
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Prometheus label-value / HELP escaping: backslash, quote, newline.
std::string EscapeText(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// `{key="value",...}` — the series identity and the exposition form.
std::string SerializeLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + EscapeText(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

/// Label string for one extra `le` pair appended (histogram buckets).
std::string LabelsWithLe(const Labels& labels, const std::string& le) {
  std::string out = "{";
  for (const auto& kv : labels) {
    out += kv.first + "=\"" + EscapeText(kv.second) + "\",";
  }
  out += "le=\"" + le + "\"}";
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      cells_(std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1)) {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  if (value < 0 || std::isnan(value)) value = 0;
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  cells_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_microunits_.fetch_add(static_cast<uint64_t>(std::llround(value * kSumScale)),
                            std::memory_order_relaxed);
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    total += cells_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  return static_cast<double>(sum_microunits_.load(std::memory_order_relaxed)) /
         kSumScale;
}

std::vector<double> LatencyBuckets() {
  // 1us .. ~16.8s, powers of four: 13 bounds + implicit +Inf.
  std::vector<double> bounds;
  double b = 1e-6;
  for (int i = 0; i < 13; ++i) {
    bounds.push_back(b);
    b *= 4;
  }
  return bounds;
}

std::vector<double> SizeBuckets() {
  // 64B .. 1GiB, powers of four: 13 bounds + implicit +Inf.
  std::vector<double> bounds;
  double b = 64;
  for (int i = 0; i < 13; ++i) {
    bounds.push_back(b);
    b *= 4;
  }
  return bounds;
}

struct Registry::Series {
  Labels labels;
  std::string label_string;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

Registry::Registry() = default;
Registry::~Registry() = default;

Registry* Registry::Default() {
  // Leaked on purpose: instrumented singletons and cached cell pointers
  // may outlive every static destructor.
  static Registry* instance = new Registry();  // provlint:allow(naked-new): intentionally leaked process singleton
  return instance;
}

Registry::Series* Registry::GetSeries(const std::string& name,
                                      const std::string& help,
                                      MetricType type,
                                      const std::vector<double>& bounds,
                                      const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto fam_it = families_.find(name);
  if (fam_it == families_.end()) {
    Family fam;
    fam.type = type;
    fam.help = help;
    fam.bounds = bounds;
    fam_it = families_.emplace(name, std::move(fam)).first;
  } else if (fam_it->second.type != type) {
    // Same name, different type: never clobber the live family. The caller
    // gets a detached cell that is safe to use but never exposed.
    type_conflicts_.fetch_add(1, std::memory_order_relaxed);
    auto series = std::make_unique<Series>();
    switch (type) {
      case MetricType::kCounter:
        series->counter = std::make_unique<Counter>();
        break;
      case MetricType::kGauge:
        series->gauge = std::make_unique<Gauge>();
        break;
      case MetricType::kHistogram:
        series->histogram = std::make_unique<Histogram>(bounds);
        break;
    }
    quarantine_.push_back(std::move(series));
    return quarantine_.back().get();
  }
  Family& fam = fam_it->second;
  const std::string key = SerializeLabels(labels);
  auto it = fam.series.find(key);
  if (it == fam.series.end()) {
    auto series = std::make_unique<Series>();
    series->labels = labels;
    series->label_string = key;
    switch (type) {
      case MetricType::kCounter:
        series->counter = std::make_unique<Counter>();
        break;
      case MetricType::kGauge:
        series->gauge = std::make_unique<Gauge>();
        break;
      case MetricType::kHistogram:
        // The family's first registration fixed the bounds.
        series->histogram = std::make_unique<Histogram>(fam.bounds);
        break;
    }
    it = fam.series.emplace(key, std::move(series)).first;
  }
  return it->second.get();
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& help, const Labels& labels) {
  return GetSeries(name, help, MetricType::kCounter, {}, labels)->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help,
                          const Labels& labels) {
  return GetSeries(name, help, MetricType::kGauge, {}, labels)->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& help,
                                  const std::vector<double>& bounds,
                                  const Labels& labels) {
  return GetSeries(name, help, MetricType::kHistogram, bounds, labels)
      ->histogram.get();
}

uint64_t Registry::type_conflicts() const {
  return type_conflicts_.load(std::memory_order_relaxed);
}

std::string Registry::TextExposition() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& fam_entry : families_) {
    const std::string& name = fam_entry.first;
    const Family& fam = fam_entry.second;
    const char* type_name = fam.type == MetricType::kCounter ? "counter"
                            : fam.type == MetricType::kGauge ? "gauge"
                                                             : "histogram";
    if (!fam.help.empty()) {
      out += "# HELP " + name + " " + EscapeText(fam.help) + "\n";
    }
    out += "# TYPE " + name + " " + std::string(type_name) + "\n";
    for (const auto& series_entry : fam.series) {
      const Series& s = *series_entry.second;
      if (fam.type == MetricType::kCounter) {
        out += name + s.label_string + " " +
               std::to_string(s.counter->value()) + "\n";
      } else if (fam.type == MetricType::kGauge) {
        out += name + s.label_string + " " +
               std::to_string(s.gauge->value()) + "\n";
      } else {
        const Histogram& h = *s.histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.bucket_value(i);
          out += name + "_bucket" +
                 LabelsWithLe(s.labels, FormatDouble(h.bounds()[i])) + " " +
                 std::to_string(cumulative) + "\n";
        }
        cumulative += h.bucket_value(h.bounds().size());
        out += name + "_bucket" + LabelsWithLe(s.labels, "+Inf") + " " +
               std::to_string(cumulative) + "\n";
        out += name + "_sum" + s.label_string + " " + FormatDouble(h.sum()) +
               "\n";
        out += name + "_count" + s.label_string + " " +
               std::to_string(cumulative) + "\n";
      }
    }
  }
  return out;
}

std::string Registry::JsonExposition() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"type_conflicts\": " +
                    std::to_string(type_conflicts()) + ",\n  \"metrics\": [";
  bool first_fam = true;
  for (const auto& fam_entry : families_) {
    const std::string& name = fam_entry.first;
    const Family& fam = fam_entry.second;
    const char* type_name = fam.type == MetricType::kCounter ? "counter"
                            : fam.type == MetricType::kGauge ? "gauge"
                                                             : "histogram";
    if (!first_fam) out += ",";
    first_fam = false;
    out += "\n    {\"name\": \"" + EscapeJson(name) + "\", \"type\": \"" +
           type_name + "\", \"help\": \"" + EscapeJson(fam.help) +
           "\", \"series\": [";
    bool first_series = true;
    for (const auto& series_entry : fam.series) {
      const Series& s = *series_entry.second;
      if (!first_series) out += ",";
      first_series = false;
      out += "\n      {\"labels\": {";
      for (size_t i = 0; i < s.labels.size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"" + EscapeJson(s.labels[i].first) + "\": \"" +
               EscapeJson(s.labels[i].second) + "\"";
      }
      out += "}, ";
      if (fam.type == MetricType::kCounter) {
        out += "\"value\": " + std::to_string(s.counter->value()) + "}";
      } else if (fam.type == MetricType::kGauge) {
        out += "\"value\": " + std::to_string(s.gauge->value()) + "}";
      } else {
        const Histogram& h = *s.histogram;
        out += "\"count\": " + std::to_string(h.count()) +
               ", \"sum\": " + FormatDouble(h.sum()) + ", \"buckets\": [";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.bucket_value(i);
          if (i > 0) out += ", ";
          out += "{\"le\": " + FormatDouble(h.bounds()[i]) +
                 ", \"count\": " + std::to_string(cumulative) + "}";
        }
        cumulative += h.bucket_value(h.bounds().size());
        out += ", {\"le\": \"+Inf\", \"count\": " +
               std::to_string(cumulative) + "}]}";
      }
    }
    out += "\n    ]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string Registry::Exposition(ExpositionFormat format) const {
  return format == ExpositionFormat::kPrometheusText ? TextExposition()
                                                     : JsonExposition();
}

}  // namespace obs
}  // namespace provledger
