// Cluster: a deterministic in-process N-node replicated provenance cluster.
//
// One seed drives everything — the shared SimClock, the replication
// SimNetwork (latency/jitter/drops/partitions), and the consensus engine —
// so every scenario (partition/heal, leader failure, crash/rejoin) replays
// bit-identically. The commit path mirrors the deployments the paper's
// §2.1/§6.1 systems evaluate: a batch of provenance transactions is ordered
// through a pluggable consensus::Engine, the elected proposer anchors it as
// one block on its own full stack, and the block replicates to every peer,
// which re-validates and indexes it locally — so any node answers
// snapshot-isolated queries over the same ledger.

#ifndef PROVLEDGER_REPLICATION_CLUSTER_H_
#define PROVLEDGER_REPLICATION_CLUSTER_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "consensus/engine.h"
#include "replication/replicated_node.h"

namespace provledger {
namespace replication {

/// \brief Cluster configuration.
struct ClusterOptions {
  uint32_t num_nodes = 4;
  /// Single seed for the network, the consensus engine, and the clock-driven
  /// delivery order.
  uint64_t seed = 1;
  /// Consensus engine ordering commits: "pow" | "pos" | "pbft" | "raft".
  std::string consensus = "raft";
  /// Extra engine knobs (difficulty, stakes, byzantine/crashed counts...).
  /// num_nodes and seed are overridden from the fields above.
  consensus::ConsensusConfig consensus_config;
  /// Replication-network behaviour (block broadcast + catch-up traffic).
  network::NetworkOptions net;
  /// Shared chain identity — every node derives the same genesis from it.
  ledger::ChainOptions chain;
  prov::ProvenanceStoreOptions store;
  /// Durable root ("" = volatile cluster). Node i persists under
  /// `<data_dir>/node-<i>/` (chain.log + store.snap) and can crash/restart.
  std::string data_dir;
  size_t catch_up_batch_blocks = 32;
  /// Ship block bodies over the replication wire in the columnar form
  /// (see ReplicatedNodeOptions::columnar_wire).
  bool columnar_wire = true;
};

/// \brief Cluster-level commit counters (consensus cost is per batch;
/// replication cost lives in net()->metrics()).
struct ClusterMetrics {
  uint64_t batches_committed = 0;
  uint64_t records_committed = 0;
  uint64_t consensus_messages = 0;
  uint64_t consensus_bytes = 0;
  uint64_t consensus_rounds = 0;
  int64_t consensus_latency_us = 0;
};

/// \brief N replicated nodes + consensus + network under one seed.
///
/// Thread safety: single-owner, like everything it composes.
class Cluster {
 public:
  /// Build the cluster: network, engine, and num_nodes freshly created (or
  /// recovered from `data_dir` when their logs already exist).
  static Result<std::unique_ptr<Cluster>> Create(ClusterOptions options);

  /// Queue a record for the next commit.
  Status Submit(prov::ProvenanceRecord record);
  size_t pending_count() const { return pending_.size(); }

  /// Commit every pending record as one block: the consensus engine orders
  /// the batch (its simulated latency elapses on the cluster clock), the
  /// engine-elected proposer — or, if that node is crashed, the next alive
  /// node (leader-failure fallback) — anchors and broadcasts, and delivery
  /// runs to idle. Pending records stay queued on failure.
  Status CommitPending();
  /// Same, but anchor on an explicit node (scenario control: e.g. forcing
  /// the proposer into the majority side of a partition).
  /// FailedPrecondition when that node is crashed.
  Status CommitPendingOn(network::NodeId proposer);

  /// Partition the replication network into named groups (consensus
  /// messages ride the engine's own internal network and are unaffected —
  /// the engine models the ordering service, not the replica links).
  void Partition(const std::vector<std::set<network::NodeId>>& groups);
  void Heal();

  /// Crash-fault injection: the node drops all traffic until restarted.
  /// Its durable state (chain log + last snapshot) is whatever was synced.
  void Crash(network::NodeId node);
  /// Rebuild node `node` from its durable state (snapshot + chain-log
  /// replay; volatile nodes restart empty), then catch it up from peers.
  Status Restart(network::NodeId node);
  /// Persist node `node`'s store snapshot (durable clusters only).
  Status SaveSnapshot(network::NodeId node);

  /// One anti-entropy round: every alive node broadcasts a status probe,
  /// then delivery runs to idle — lagging nodes pull whatever they miss.
  void AntiEntropy();
  /// Drain the replication network; returns messages delivered.
  size_t RunUntilIdle() { return net_.RunUntilIdle(); }

  /// True when every alive node reports the same height and head hash.
  bool Converged() const;
  /// The common head hash, or FailedPrecondition while diverged.
  Result<crypto::Digest> ConvergedHead() const;

  ReplicatedNode* node(network::NodeId id) { return nodes_[id].get(); }
  const ReplicatedNode& node(network::NodeId id) const { return *nodes_[id]; }
  /// Node `id`'s private metric registry (every node gets its own, so one
  /// node's `repl/metrics` answer never mixes in a peer's counters; the
  /// registry survives Crash()/Restart() so counters span incarnations).
  obs::Registry* registry(network::NodeId id) { return registries_[id].get(); }
  size_t size() const { return nodes_.size(); }
  SimClock* clock() { return &clock_; }
  network::SimNetwork* net() { return &net_; }
  consensus::ConsensusEngine* engine() { return engine_.get(); }
  const ClusterMetrics& metrics() const { return metrics_; }
  const ClusterOptions& options() const { return options_; }

 private:
  explicit Cluster(ClusterOptions options);

  ReplicatedNodeOptions MakeNodeOptions(network::NodeId id) const;
  Status CommitBatch(int32_t forced_proposer);

  ClusterOptions options_;
  SimClock clock_;
  network::SimNetwork net_;
  std::unique_ptr<consensus::ConsensusEngine> engine_;
  // One registry per node slot, created before the nodes and never
  // recycled — MakeNodeOptions wires slot i's registry into node i.
  std::vector<std::unique_ptr<obs::Registry>> registries_;
  std::vector<std::unique_ptr<ReplicatedNode>> nodes_;
  std::vector<prov::ProvenanceRecord> pending_;
  ClusterMetrics metrics_;
};

}  // namespace replication
}  // namespace provledger

#endif  // PROVLEDGER_REPLICATION_CLUSTER_H_
