// ReplicatedNode: one full vertical provenance stack (Blockchain +
// ProvenanceStore + optional ChainLog/snapshot durability) speaking the
// block-replication protocol over network::SimNetwork.
//
// Protocol (all payloads use the canonical codec):
//   repl/block   — a freshly committed block, broadcast by its proposer;
//                  followers fully re-validate via Blockchain::SubmitBlock
//                  and index its records into their own store.
//   repl/status  — height + head hash (+ probe flag). The anti-entropy
//                  primitive: a probe asks the receiver to reply with its
//                  own status; any node that learns a peer is ahead pulls.
//   repl/pull    — ranged block fetch request (from_height).
//   repl/blocks  — a batch of encoded main-chain blocks answering a pull,
//                  plus the sender's height so the puller knows whether to
//                  continue. Every block replays through SubmitBlock.
//   repl/proof   — lineage-proof request: one record id. The receiver
//                  builds an audit::LineageProof from its store + chain.
//   repl/proofr  — the reply: ok flag, error message, proof bytes. The
//                  requester verifies with audit::VerifyLineageProof
//                  against nothing but its own main-chain headers — the
//                  serving node's store is never trusted.
//   repl/metrics — metrics scrape request: one format byte (0 = Prometheus
//                  text, 1 = JSON). The receiver serializes its own
//                  registry — every layer of its stack reports there.
//   repl/metricsr— the reply: the exposition text, landing in
//                  last_metrics() on the requester.
//
// Convergence invariants (tested in tests/replication_test.cc):
//   * a block enters a node's chain only through SubmitBlock — followers
//     re-validate everything (hash links, Merkle roots, signatures);
//   * the store indexes exactly the main-chain prefix; on a reorg the
//     store rebuilds from the adopted chain, so queries/audits always
//     describe the current main chain;
//   * catch-up walks pulls backwards past fork points until a fetched
//     batch attaches, then forward to the peer's head — lag and divergence
//     both converge without trusting anything but block validity.

#ifndef PROVLEDGER_REPLICATION_REPLICATED_NODE_H_
#define PROVLEDGER_REPLICATION_REPLICATED_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "ledger/chain_log.h"
#include "network/sim_network.h"
#include "obs/metrics.h"
#include "prov/store.h"

namespace provledger {
namespace replication {

/// \brief Per-node configuration.
struct ReplicatedNodeOptions {
  /// Chain configuration; `chain.chain_id` must match across the cluster
  /// (a block from a different chain id never attaches — its genesis link
  /// cannot resolve).
  ledger::ChainOptions chain;
  /// Store configuration; `store.proposer` is overridden with the node
  /// name so blocks record which node built them.
  prov::ProvenanceStoreOptions store;
  /// Durable state directory ("" = volatile node). When set, the node
  /// opens `<data_dir>/chain.log` write-ahead of chain state and recovers
  /// the store from `<data_dir>/store.snap` + chain-tail replay — the
  /// crash/rejoin path.
  std::string data_dir;
  /// Human-readable node name, used as block proposer identity.
  std::string name = "node";
  /// Max blocks served per repl/pull response (ranged catch-up stride).
  size_t catch_up_batch_blocks = 32;
  /// Ship repl/block and repl/blocks bodies in the columnar form
  /// (prov/columnar.h) instead of raw Block::Encode() bytes. Decoding is
  /// format-sniffing either way, so mixed-setting clusters interoperate;
  /// received blocks are re-validated in full by SubmitBlock regardless of
  /// how they traveled.
  bool columnar_wire = true;
  /// Metric registry this node's whole stack reports into (nullptr =
  /// obs::Registry::Default()). A repl/metrics scrape serializes exactly
  /// this registry, so multi-node-per-process tests should give each node
  /// its own instance; any registry set inside `chain`/`store` wins over
  /// this one for that layer.
  obs::Registry* registry = nullptr;
};

/// \brief Replication counters (per node).
struct NodeMetrics {
  uint64_t blocks_proposed = 0;   // blocks this node built and broadcast
  uint64_t blocks_applied = 0;    // peer blocks accepted via SubmitBlock
  uint64_t blocks_rejected = 0;   // peer blocks failing validation
  uint64_t pulls_sent = 0;        // catch-up fetch rounds initiated
  uint64_t blocks_served = 0;     // blocks shipped answering peer pulls
  uint64_t reorgs = 0;            // main-chain switches observed
  uint64_t store_rebuilds = 0;    // store rebuilds forced by reorgs
  uint64_t proofs_served = 0;     // lineage proofs built answering repl/proof
  /// Chain->store syncs that failed even after the rebuild fallback: the
  /// node keeps serving (degraded, possibly empty) query results until the
  /// next broadcast/pull retries the sync from genesis. Non-zero means
  /// audit answers from this node are suspect — scrape it.
  uint64_t store_sync_failures = 0;
};

/// \brief One node of a replicated provenance cluster.
///
/// Thread safety: NOT internally synchronized — the discrete-event network
/// delivers messages on the driving thread, which must own all access
/// (same single-owner contract as Blockchain/ProvenanceStore).
class ReplicatedNode {
 public:
  /// Construct the node's stack. With a data_dir this is also the restart
  /// path: the chain reloads from the block log (full re-validation), the
  /// store recovers from the snapshot + chain-tail replay, and the caller
  /// should follow up with RequestSync() to fetch whatever the cluster
  /// committed while the node was down.
  static Result<std::unique_ptr<ReplicatedNode>> Create(
      Clock* clock, ReplicatedNodeOptions options);

  /// Attach to the replication network as `id` (the caller registered a
  /// handler forwarding to OnMessage). Must be called before any message
  /// flows.
  void BindNetwork(network::SimNetwork* net, network::NodeId id);

  /// Protocol entry point: dispatch one delivered message. Crashed nodes
  /// (alive() == false) drop everything silently.
  void OnMessage(const network::Message& message);

  /// Proposer path: anchor `records` as one block on the local stack
  /// (validate, dedup, Merkle-root, append — and persist write-ahead when
  /// durable), then broadcast the block to every peer.
  Status ProposeBatch(const std::vector<prov::ProvenanceRecord>& records);

  /// Anti-entropy round trigger: broadcast a status probe. Peers reply
  /// with their status; whichever side is behind pulls the missing range.
  void RequestSync();

  /// Ask `to` to prove `record_id`'s full ancestry (repl/proof). The
  /// repl/proofr reply lands in last_proof(); callers then verify the
  /// bytes with audit::VerifyLineageProof against their *own* headers —
  /// a storeless header-syncing node can consume proofs this way.
  void RequestLineageProof(network::NodeId to, const std::string& record_id);

  /// \brief The most recent repl/proofr reply (reset by each request).
  struct ProofReply {
    bool received = false;  // a reply arrived since the last request
    bool ok = false;        // the serving node could build the proof
    std::string message;    // server-side error when !ok (diagnostic only)
    Bytes proof;            // encoded audit::LineageProof when ok
  };
  const ProofReply& last_proof() const { return last_proof_; }

  /// Ask `to` for its metrics exposition (repl/metrics). The repl/metricsr
  /// reply lands in last_metrics() — the remote-scrape path: every node of
  /// a cluster can be monitored through the same wire its blocks travel.
  void RequestMetrics(network::NodeId to,
                      obs::ExpositionFormat format =
                          obs::ExpositionFormat::kPrometheusText);

  /// \brief The most recent repl/metricsr reply (reset by each request).
  struct MetricsReply {
    bool received = false;  // a reply arrived since the last request
    std::string body;       // the serving node's exposition text
  };
  const MetricsReply& last_metrics() const { return last_metrics_; }

  /// The registry this node's stack reports into (see options().registry).
  obs::Registry* registry() const { return registry_; }

  /// Persist the store snapshot to `<data_dir>/store.snap` (durable nodes
  /// only; FailedPrecondition otherwise). Restart = snapshot + chain tail.
  Status SaveSnapshot() const;

  /// Crash-fault injection: a dead node neither receives nor sends.
  void set_alive(bool alive) { alive_ = alive; }
  bool alive() const { return alive_; }

  uint64_t height() const { return chain_.height(); }
  crypto::Digest head_hash() const { return chain_.head_hash(); }
  /// True when no catch-up pull is outstanding.
  bool synced() const { return !sync_in_flight_; }

  ledger::Blockchain* chain() { return &chain_; }
  const ledger::Blockchain& chain() const { return chain_; }
  prov::ProvenanceStore* store() { return store_.get(); }
  const prov::ProvenanceStore& store() const { return *store_; }
  ledger::ChainLog* chain_log() { return log_.get(); }
  const NodeMetrics& metrics() const { return metrics_; }
  const ReplicatedNodeOptions& options() const { return options_; }
  const std::string& name() const { return options_.name; }

  /// Snapshot file path for this node ("" when volatile).
  std::string snapshot_path() const;

 private:
  explicit ReplicatedNode(Clock* clock, ReplicatedNodeOptions options);

  /// Apply a peer-broadcast block: SubmitBlock (full validation), then
  /// bring the store in line with the (possibly reorged) main chain. A
  /// block whose parent is unknown marks us lagging and triggers a pull
  /// from the sender instead.
  void ApplyPeerBlock(const ledger::Block& block, network::NodeId from);
  /// Index every main-chain block the store has not seen; on a reorg
  /// (the applied prefix left the main chain) rebuild the store from the
  /// adopted chain.
  Status SyncStoreWithChain();
  /// The repl/status wire payload (probe flag + height + head hash) —
  /// the one encoding both RequestSync broadcasts and SendStatus replies
  /// use, so HandleStatus can never disagree with half of its senders.
  Bytes StatusPayload(bool probe) const;
  void SendStatus(network::NodeId to, bool probe);
  void SendPull(network::NodeId to, uint64_t from_height);
  void HandleStatus(const network::Message& message);
  void HandlePull(const network::Message& message);
  void HandleBlocks(const network::Message& message);
  void HandleProofRequest(const network::Message& message);
  void HandleProofReply(const network::Message& message);
  void HandleMetricsRequest(const network::Message& message);
  void HandleMetricsReply(const network::Message& message);
  /// Count one delivered message on the per-type counters.
  void CountMessage(const std::string& type, size_t payload_bytes);

  Clock* clock_;
  ReplicatedNodeOptions options_;
  // Resolved before chain_ (declaration order is initialization order) so
  // the chain/store/log options can inherit it.
  obs::Registry* registry_;
  ledger::Blockchain chain_;
  std::unique_ptr<ledger::ChainLog> log_;
  std::unique_ptr<prov::ProvenanceStore> store_;
  network::SimNetwork* net_ = nullptr;
  network::NodeId id_ = 0;
  bool alive_ = true;
  // Highest main-chain height the store has indexed, and the hash of that
  // block — the reorg detector: if the hash at applied_height_ changes,
  // the indexed prefix left the main chain.
  uint64_t applied_height_ = 0;
  crypto::Digest applied_hash_ = crypto::ZeroDigest();
  // One outstanding catch-up conversation at a time; duplicate triggers
  // (every peer's status says "you are behind") collapse into it. A
  // conversation whose reply was dropped is detected as "no new blocks
  // (main or side branch) since the pull went out" and re-armed by the
  // next block broadcast (RequestSync also resets it).
  bool sync_in_flight_ = false;
  uint64_t last_pull_from_ = 0;
  size_t blocks_at_pull_ = 0;
  ProofReply last_proof_;
  MetricsReply last_metrics_;
  NodeMetrics metrics_;

  // Cached registry cells (resolved once in the constructor). The
  // per-message-type counters are parallel to the protocol tag table in
  // the .cc (kTypeCount entries).
  obs::Counter* msg_total_[8];
  obs::Counter* msg_bytes_[8];
  obs::Gauge* catchup_lag_gauge_;
  obs::Counter* proofs_served_total_;
  obs::Counter* sync_failures_total_;
};

}  // namespace replication
}  // namespace provledger

#endif  // PROVLEDGER_REPLICATION_REPLICATED_NODE_H_
