#include "replication/cluster.h"

#include "common/fileio.h"

namespace provledger {
namespace replication {

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)),
      net_(&clock_, options_.seed, options_.net) {}

ReplicatedNodeOptions Cluster::MakeNodeOptions(network::NodeId id) const {
  ReplicatedNodeOptions node_options;
  node_options.chain = options_.chain;
  node_options.store = options_.store;
  node_options.name = "node-" + std::to_string(id);
  node_options.catch_up_batch_blocks = options_.catch_up_batch_blocks;
  node_options.columnar_wire = options_.columnar_wire;
  node_options.registry = registries_[id].get();
  if (!options_.data_dir.empty()) {
    node_options.data_dir = options_.data_dir + "/" + node_options.name;
  }
  return node_options;
}

Result<std::unique_ptr<Cluster>> Cluster::Create(ClusterOptions options) {
  if (options.num_nodes == 0) {
    return Status::InvalidArgument("cluster needs at least one node");
  }
  auto cluster = std::unique_ptr<Cluster>(new Cluster(std::move(options)));

  consensus::ConsensusConfig config = cluster->options_.consensus_config;
  config.num_nodes = cluster->options_.num_nodes;
  // Decouple the engine's randomness stream from the replication
  // network's: both derive from the one cluster seed, but not bit-equal.
  config.seed = cluster->options_.seed + 0x9E3779B97F4A7C15ULL;
  PROVLEDGER_ASSIGN_OR_RETURN(
      cluster->engine_,
      consensus::MakeEngine(cluster->options_.consensus, config));

  if (!cluster->options_.data_dir.empty()) {
    PROVLEDGER_RETURN_NOT_OK(EnsureDir(cluster->options_.data_dir));
  }
  for (uint32_t i = 0; i < cluster->options_.num_nodes; ++i) {
    cluster->registries_.push_back(std::make_unique<obs::Registry>());
  }
  for (uint32_t i = 0; i < cluster->options_.num_nodes; ++i) {
    ReplicatedNodeOptions node_options = cluster->MakeNodeOptions(i);
    if (!node_options.data_dir.empty()) {
      PROVLEDGER_RETURN_NOT_OK(EnsureDir(node_options.data_dir));
    }
    PROVLEDGER_ASSIGN_OR_RETURN(
        auto node, ReplicatedNode::Create(&cluster->clock_,
                                          std::move(node_options)));
    cluster->nodes_.push_back(std::move(node));
    // The trampoline pins the slot, not the node object, so Restart() can
    // swap in a recovered node under the same network id.
    Cluster* self = cluster.get();
    network::NodeId id = cluster->net_.AddNode(
        [self, i](const network::Message& m) {
          self->nodes_[i]->OnMessage(m);
        });
    cluster->nodes_[i]->BindNetwork(&cluster->net_, id);
  }
  return cluster;
}

Status Cluster::Submit(prov::ProvenanceRecord record) {
  PROVLEDGER_RETURN_NOT_OK(record.Validate());
  pending_.push_back(std::move(record));
  return Status::OK();
}

Status Cluster::CommitPending() { return CommitBatch(-1); }

Status Cluster::CommitPendingOn(network::NodeId proposer) {
  if (proposer >= nodes_.size()) {
    return Status::InvalidArgument("no such node");
  }
  if (!nodes_[proposer]->alive()) {
    return Status::FailedPrecondition("forced proposer is crashed");
  }
  return CommitBatch(static_cast<int32_t>(proposer));
}

Status Cluster::CommitBatch(int32_t forced_proposer) {
  if (pending_.empty()) return Status::OK();

  // Order the batch: the engine commits a digest of the batch contents
  // (the block itself forms on the proposer afterwards, sealed by the
  // chain's own validation).
  Encoder enc;
  for (const auto& record : pending_) record.EncodeTo(&enc);
  const crypto::Digest digest = crypto::Sha256::Hash(enc.buffer());
  PROVLEDGER_ASSIGN_OR_RETURN(consensus::CommitResult ordered,
                              engine_->Propose(crypto::DigestToBytes(digest)));
  metrics_.consensus_messages += ordered.metrics.messages;
  metrics_.consensus_bytes += ordered.metrics.bytes;
  metrics_.consensus_rounds += ordered.metrics.rounds;
  metrics_.consensus_latency_us += ordered.metrics.latency_us;
  // Ordering took simulated time; the block's timestamp reflects it.
  clock_.Advance(ordered.metrics.latency_us);

  network::NodeId proposer =
      forced_proposer >= 0 ? static_cast<network::NodeId>(forced_proposer)
                           : static_cast<network::NodeId>(ordered.proposer);
  if (proposer >= nodes_.size()) proposer = 0;
  if (!nodes_[proposer]->alive()) {
    // Leader-failure fallback: the ordering decision stands, but a dead
    // node cannot build the block — the next alive node (deterministic
    // scan) anchors it instead.
    network::NodeId fallback = proposer;
    for (size_t k = 1; k <= nodes_.size(); ++k) {
      network::NodeId candidate =
          static_cast<network::NodeId>((proposer + k) % nodes_.size());
      if (nodes_[candidate]->alive()) {
        fallback = candidate;
        break;
      }
    }
    if (fallback == proposer) {
      return Status::Unavailable("no alive node to propose the block");
    }
    proposer = fallback;
  }

  PROVLEDGER_RETURN_NOT_OK(nodes_[proposer]->ProposeBatch(pending_));
  ++metrics_.batches_committed;
  metrics_.records_committed += pending_.size();
  pending_.clear();
  net_.RunUntilIdle();
  return Status::OK();
}

void Cluster::Partition(
    const std::vector<std::set<network::NodeId>>& groups) {
  net_.PartitionGroups(groups);
}

void Cluster::Heal() { net_.Heal(); }

void Cluster::Crash(network::NodeId node) {
  if (node < nodes_.size()) nodes_[node]->set_alive(false);
}

Status Cluster::Restart(network::NodeId node) {
  if (node >= nodes_.size()) return Status::InvalidArgument("no such node");
  // "Process restart": the old object (its in-memory chain and store) is
  // discarded; the replacement recovers from whatever the durable layer
  // holds — chain log replayed through full validation, store restored
  // from snapshot + tail — then pulls the cluster tail from peers.
  PROVLEDGER_ASSIGN_OR_RETURN(
      auto revived, ReplicatedNode::Create(&clock_, MakeNodeOptions(node)));
  revived->BindNetwork(&net_, node);
  nodes_[node] = std::move(revived);
  nodes_[node]->RequestSync();
  net_.RunUntilIdle();
  return Status::OK();
}

Status Cluster::SaveSnapshot(network::NodeId node) {
  if (node >= nodes_.size()) return Status::InvalidArgument("no such node");
  return nodes_[node]->SaveSnapshot();
}

void Cluster::AntiEntropy() {
  for (auto& node : nodes_) {
    if (node->alive()) node->RequestSync();
  }
  net_.RunUntilIdle();
}

bool Cluster::Converged() const {
  const ReplicatedNode* reference = nullptr;
  for (const auto& node : nodes_) {
    if (!node->alive()) continue;
    if (reference == nullptr) {
      reference = node.get();
      continue;
    }
    if (node->height() != reference->height() ||
        node->head_hash() != reference->head_hash()) {
      return false;
    }
  }
  return reference != nullptr;
}

Result<crypto::Digest> Cluster::ConvergedHead() const {
  if (!Converged()) {
    return Status::FailedPrecondition("cluster has not converged");
  }
  for (const auto& node : nodes_) {
    if (node->alive()) return node->head_hash();
  }
  return Status::FailedPrecondition("no alive node");
}

}  // namespace replication
}  // namespace provledger
