#include "replication/replicated_node.h"

#include "audit/lineage_proof.h"
#include "prov/columnar.h"

namespace provledger {
namespace replication {

namespace {

// Protocol message tags. kMessageTypes/kTypeCount index the per-type
// metric cells; keep all three lists in step.
constexpr char kMsgBlock[] = "repl/block";
constexpr char kMsgStatus[] = "repl/status";
constexpr char kMsgPull[] = "repl/pull";
constexpr char kMsgBlocks[] = "repl/blocks";
constexpr char kMsgProof[] = "repl/proof";
constexpr char kMsgProofReply[] = "repl/proofr";
constexpr char kMsgMetrics[] = "repl/metrics";
constexpr char kMsgMetricsReply[] = "repl/metricsr";

constexpr const char* kMessageTypes[] = {
    kMsgBlock, kMsgStatus,     kMsgPull,    kMsgBlocks,
    kMsgProof, kMsgProofReply, kMsgMetrics, kMsgMetricsReply,
};
constexpr size_t kTypeCount = sizeof(kMessageTypes) / sizeof(kMessageTypes[0]);

// Metric label for a tag: the part after "repl/".
const char* TypeLabel(const char* tag) { return tag + 5; }

// Fill the chain/store/log options' registry with the node's when unset.
ledger::ChainOptions ChainOptionsWith(ledger::ChainOptions chain,
                                      obs::Registry* registry) {
  if (chain.registry == nullptr) chain.registry = registry;
  return chain;
}

}  // namespace

ReplicatedNode::ReplicatedNode(Clock* clock, ReplicatedNodeOptions options)
    : clock_(clock),
      options_(std::move(options)),
      registry_(options_.registry != nullptr ? options_.registry
                                             : obs::Registry::Default()),
      chain_(ChainOptionsWith(options_.chain, registry_)) {
  prov::ProvenanceStoreOptions store_options = options_.store;
  store_options.proposer = options_.name;
  if (store_options.registry == nullptr) store_options.registry = registry_;
  store_ = std::make_unique<prov::ProvenanceStore>(&chain_, clock_,
                                                   std::move(store_options));
  for (size_t i = 0; i < kTypeCount; ++i) {
    msg_total_[i] = registry_->GetCounter(
        "repl_messages_total", "Replication messages delivered, by type",
        {{"type", TypeLabel(kMessageTypes[i])}});
    msg_bytes_[i] = registry_->GetCounter(
        "repl_bytes_total", "Replication payload bytes delivered, by type",
        {{"type", TypeLabel(kMessageTypes[i])}});
  }
  catchup_lag_gauge_ = registry_->GetGauge(
      "repl_catchup_lag_blocks",
      "Blocks behind the tallest peer seen (0 once caught up)");
  proofs_served_total_ = registry_->GetCounter(
      "repl_proofs_served_total",
      "Lineage proofs built answering repl/proof requests");
  sync_failures_total_ = registry_->GetCounter(
      "repl_store_sync_failures_total",
      "Chain->store syncs that failed even after the rebuild fallback");
}

Result<std::unique_ptr<ReplicatedNode>> ReplicatedNode::Create(
    Clock* clock, ReplicatedNodeOptions options) {
  auto node = std::unique_ptr<ReplicatedNode>(
      new ReplicatedNode(clock, std::move(options)));
  if (!node->options_.data_dir.empty()) {
    // Restart path: the chain reloads from its write-ahead block log (every
    // block re-validated through SubmitBlock), then stays attached so every
    // block accepted from now on — proposed or replicated — persists before
    // chain state mutates. The store recovers from its snapshot plus the
    // chain tail, falling back to a full rebuild when the snapshot is
    // missing or stale.
    ledger::ChainLogOptions log_options;
    log_options.registry = node->registry_;
    PROVLEDGER_ASSIGN_OR_RETURN(
        node->log_, ledger::ChainLog::Open(
                        node->options_.data_dir + "/chain.log", log_options));
    PROVLEDGER_RETURN_NOT_OK(node->log_->AttachTo(&node->chain_));
    PROVLEDGER_RETURN_NOT_OK(node->store_->Recover(node->snapshot_path()));
  }
  node->applied_height_ = node->chain_.height();
  node->applied_hash_ = node->chain_.head_hash();
  return node;
}

void ReplicatedNode::BindNetwork(network::SimNetwork* net,
                                 network::NodeId id) {
  net_ = net;
  id_ = id;
}

std::string ReplicatedNode::snapshot_path() const {
  return options_.data_dir.empty() ? std::string()
                                   : options_.data_dir + "/store.snap";
}

Status ReplicatedNode::SaveSnapshot() const {
  if (options_.data_dir.empty()) {
    return Status::FailedPrecondition("volatile node has no snapshot path");
  }
  return store_->SaveSnapshot(snapshot_path());
}

Status ReplicatedNode::ProposeBatch(
    const std::vector<prov::ProvenanceRecord>& records) {
  if (records.empty()) return Status::OK();
  PROVLEDGER_RETURN_NOT_OK(store_->AnchorBatch(records));
  // AnchorBatch committed exactly one block on the head and indexed every
  // record, so the store tracker moves with it — no replay needed.
  applied_height_ = chain_.height();
  applied_hash_ = chain_.head_hash();
  ++metrics_.blocks_proposed;
  const ledger::Block* head = chain_.PeekBlock(chain_.height());
  if (net_ != nullptr && head != nullptr) {
    net_->Broadcast(id_, kMsgBlock,
                    options_.columnar_wire ? prov::columnar::EncodeBlock(*head)
                                           : head->Encode());
  }
  return Status::OK();
}

void ReplicatedNode::RequestSync() {
  if (net_ == nullptr) return;
  // A fresh anti-entropy round supersedes any stalled catch-up
  // conversation (e.g. a pull whose target crashed before answering).
  sync_in_flight_ = false;
  net_->Broadcast(id_, kMsgStatus, StatusPayload(/*probe=*/true));
}

void ReplicatedNode::CountMessage(const std::string& type,
                                  size_t payload_bytes) {
  for (size_t i = 0; i < kTypeCount; ++i) {
    if (type == kMessageTypes[i]) {
      msg_total_[i]->Increment();
      msg_bytes_[i]->Increment(payload_bytes);
      return;
    }
  }
}

void ReplicatedNode::OnMessage(const network::Message& message) {
  if (!alive_) return;  // a crashed node is silent until restarted
  CountMessage(message.type, message.payload.size());
  if (message.type == kMsgBlock) {
    // Format-sniffing decode: columnar and legacy peers look the same here.
    auto block = prov::columnar::DecodeBlock(message.payload);
    if (!block.ok()) {
      ++metrics_.blocks_rejected;
      return;
    }
    ApplyPeerBlock(block.value(), message.from);
  } else if (message.type == kMsgStatus) {
    HandleStatus(message);
  } else if (message.type == kMsgPull) {
    HandlePull(message);
  } else if (message.type == kMsgBlocks) {
    HandleBlocks(message);
  } else if (message.type == kMsgProof) {
    HandleProofRequest(message);
  } else if (message.type == kMsgProofReply) {
    HandleProofReply(message);
  } else if (message.type == kMsgMetrics) {
    HandleMetricsRequest(message);
  } else if (message.type == kMsgMetricsReply) {
    HandleMetricsReply(message);
  }
}

void ReplicatedNode::ApplyPeerBlock(const ledger::Block& block,
                                    network::NodeId from) {
  Status st = chain_.SubmitBlock(block);
  if (st.ok()) {
    ++metrics_.blocks_applied;
    // A failed sync already reset the applied-height tracker, so the next
    // broadcast/pull retries from genesis; count it so a node serving
    // degraded query results is visible to operators.
    if (!SyncStoreWithChain().ok()) {
      ++metrics_.store_sync_failures;
      sync_failures_total_->Increment();
    }
    return;
  }
  if (st.IsAlreadyExists()) return;
  if (st.IsNotFound()) {
    // Parent unknown: we are lagging behind the proposer (or the block is
    // from a foreign chain — the pull resolves either way, since foreign
    // blocks never attach to our genesis). A sync conversation that made
    // no progress since its pull went out is treated as stalled (its
    // repl/blocks reply was dropped) and re-armed — new commits keep
    // arriving as broadcasts, so a lossy network retries at every commit.
    // Progress is measured in total blocks known, not main-chain height:
    // a fork fill-in attaches side-branch blocks for several rounds
    // before the height moves, and must not read as stalled.
    const bool stalled =
        sync_in_flight_ && chain_.total_blocks() == blocks_at_pull_;
    if (net_ != nullptr && (!sync_in_flight_ || stalled)) {
      SendPull(from, chain_.height() + 1);
    }
    return;
  }
  // Validation failure (bad Merkle root, broken link, bad signature, ...):
  // the divergent-fork rejection path. The block is dropped; our chain and
  // store are untouched.
  ++metrics_.blocks_rejected;
}

Status ReplicatedNode::SyncStoreWithChain() {
  // Reorg detector: if the hash at the last applied height changed, the
  // indexed prefix left the main chain and incremental replay would index
  // orphaned records.
  auto anchor = chain_.BlockHashAt(applied_height_);
  bool rebuild = !anchor.ok() || anchor.value() != applied_hash_;
  Status st;
  if (rebuild) {
    ++metrics_.reorgs;
  } else {
    for (uint64_t h = applied_height_ + 1; h <= chain_.height(); ++h) {
      st = store_->ApplyChainBlock(h);
      if (!st.ok()) {
        // A partially indexed block is no state to keep; the rebuild
        // below resets to a consistent view of the whole main chain.
        rebuild = true;
        break;
      }
    }
  }
  if (rebuild) {
    ++metrics_.store_rebuilds;
    st = store_->RebuildFromChain();
  }
  if (!st.ok()) {
    // RebuildFromChain reset the store to empty; make the tracker agree so
    // a later sync replays from genesis instead of assuming the prefix.
    applied_height_ = 0;
    applied_hash_ = chain_.BlockHashAt(0).value();
    return st;
  }
  applied_height_ = chain_.height();
  applied_hash_ = chain_.head_hash();
  return Status::OK();
}

Bytes ReplicatedNode::StatusPayload(bool probe) const {
  Encoder enc;
  enc.PutU8(probe ? 1 : 0);  // probe asks the receiver to reply in kind
  enc.PutU64(chain_.height());
  enc.PutRaw(crypto::DigestToBytes(chain_.head_hash()));
  return enc.TakeBuffer();
}

void ReplicatedNode::SendStatus(network::NodeId to, bool probe) {
  net_->Send(id_, to, kMsgStatus, StatusPayload(probe));
}

void ReplicatedNode::SendPull(network::NodeId to, uint64_t from_height) {
  sync_in_flight_ = true;
  last_pull_from_ = from_height;
  blocks_at_pull_ = chain_.total_blocks();
  ++metrics_.pulls_sent;
  Encoder enc;
  enc.PutU64(from_height);
  net_->Send(id_, to, kMsgPull, enc.TakeBuffer());
}

void ReplicatedNode::HandleStatus(const network::Message& message) {
  Decoder dec(message.payload);
  uint8_t probe = 0;
  uint64_t peer_height = 0;
  Bytes peer_head;
  if (!dec.GetU8(&probe).ok() || !dec.GetU64(&peer_height).ok() ||
      !dec.GetRaw(crypto::kSha256DigestSize, &peer_head).ok() ||
      !dec.AtEnd()) {
    return;  // short or oversized status: not a frame any peer sends
  }
  if (probe != 0 && net_ != nullptr) SendStatus(message.from, /*probe=*/false);
  // Height decides who pulls. Equal heights with different heads (a
  // symmetric fork) stay put until one side grows — longest-chain fork
  // choice needs a strictly longer branch to reorg anyway.
  if (peer_height > chain_.height()) {
    catchup_lag_gauge_->Set(
        static_cast<int64_t>(peer_height - chain_.height()));
    if (net_ != nullptr && !sync_in_flight_) {
      SendPull(message.from, chain_.height() + 1);
    }
  }
}

void ReplicatedNode::HandlePull(const network::Message& message) {
  if (net_ == nullptr) return;
  Decoder dec(message.payload);
  uint64_t from_height = 0;
  if (!dec.GetU64(&from_height).ok() || !dec.AtEnd()) return;
  auto blocks = chain_.PeekRange(from_height, options_.catch_up_batch_blocks);
  Encoder enc;
  enc.PutU64(chain_.height());
  enc.PutU32(static_cast<uint32_t>(blocks.size()));
  for (const ledger::Block* block : blocks) {
    enc.PutBytes(options_.columnar_wire ? prov::columnar::EncodeBlock(*block)
                                        : block->Encode());
  }
  metrics_.blocks_served += blocks.size();
  net_->Send(id_, message.from, kMsgBlocks, enc.TakeBuffer());
}

void ReplicatedNode::HandleBlocks(const network::Message& message) {
  // Parse the whole wire message before touching the chain: a frame that
  // is truncated mid-list or carries trailing bytes is dropped outright,
  // so a malformed batch can never half-apply.
  Decoder dec(message.payload);
  uint64_t sender_height = 0;
  uint32_t count = 0;
  if (!dec.GetU64(&sender_height).ok() || !dec.GetU32(&count).ok()) return;
  std::vector<Bytes> encoded_blocks;
  if (count > dec.remaining() / 4) return;  // each entry has a u32 prefix
  encoded_blocks.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Bytes encoded;
    if (!dec.GetBytes(&encoded).ok()) return;
    encoded_blocks.push_back(std::move(encoded));
  }
  if (!dec.AtEnd()) return;
  size_t attached = 0;
  uint64_t attached_tip = 0;
  for (const Bytes& encoded : encoded_blocks) {
    auto block = prov::columnar::DecodeBlock(encoded);
    if (!block.ok()) {
      ++metrics_.blocks_rejected;
      continue;
    }
    Status st = chain_.SubmitBlock(block.value());
    if (st.ok()) {
      ++metrics_.blocks_applied;
      ++attached;
      if (block->header.height > attached_tip) {
        attached_tip = block->header.height;
      }
    } else if (!st.IsAlreadyExists() && !st.IsNotFound()) {
      ++metrics_.blocks_rejected;
    }
    // Only genuinely new blocks count as attach progress: a window of
    // AlreadyExists (the shared prefix below a fork) must keep the
    // back-step walking toward the fork point, and NotFound is a gap
    // below the pulled window that the back-step will cover.
  }
  // As above: failure resets the tracker for a from-genesis retry on the
  // next message; the counter keeps the degraded window observable.
  if (!SyncStoreWithChain().ok()) {
    ++metrics_.store_sync_failures;
    sync_failures_total_->Increment();
  }
  if (chain_.height() >= sender_height || net_ == nullptr) {
    catchup_lag_gauge_->Set(0);
    sync_in_flight_ = false;
    return;
  }
  catchup_lag_gauge_->Set(
      static_cast<int64_t>(sender_height - chain_.height()));
  uint64_t next_from;
  if (attached == 0) {
    // Nothing in the window attached: the fork point (or our true chain
    // tip as the sender sees it) is below last_pull_from_. Walk the window
    // back one stride; from height 1 with still nothing attaching, the
    // sender's chain shares no genesis with ours — stop.
    const uint64_t stride = options_.catch_up_batch_blocks;
    next_from = last_pull_from_ > stride ? last_pull_from_ - stride : 1;
    if (next_from == last_pull_from_) {
      sync_in_flight_ = false;
      return;
    }
  } else {
    // Continue past the highest block that attached — which may sit on a
    // side branch below our main-chain head (a fork being filled in);
    // jumping to height()+1 there would skip the sender-branch gap
    // between the side tip and our head and force a redundant back-step.
    next_from = attached_tip + 1;
  }
  SendPull(message.from, next_from);
}

void ReplicatedNode::RequestLineageProof(network::NodeId to,
                                         const std::string& record_id) {
  if (net_ == nullptr) return;
  last_proof_ = ProofReply();
  Encoder enc;
  enc.PutString(record_id);
  net_->Send(id_, to, kMsgProof, enc.TakeBuffer());
}

void ReplicatedNode::HandleProofRequest(const network::Message& message) {
  if (net_ == nullptr) return;
  Decoder dec(message.payload);
  std::string record_id;
  if (!dec.GetString(&record_id).ok() || !dec.AtEnd()) return;
  Encoder enc;
  auto proof = audit::BuildLineageProof(*store_, record_id);
  if (proof.ok()) {
    ++metrics_.proofs_served;
    proofs_served_total_->Increment();
    enc.PutU8(1);
    enc.PutString(std::string());
    enc.PutBytes(proof->Encode());
  } else {
    enc.PutU8(0);
    enc.PutString(proof.status().ToString());
    enc.PutBytes(Bytes());
  }
  net_->Send(id_, message.from, kMsgProofReply, enc.TakeBuffer());
}

void ReplicatedNode::HandleProofReply(const network::Message& message) {
  // Parse the whole frame before accepting any of it, like every other
  // handler: a truncated or trailing-garbage reply is dropped outright.
  Decoder dec(message.payload);
  uint8_t ok = 0;
  std::string error;
  Bytes proof;
  if (!dec.GetU8(&ok).ok() || ok > 1 || !dec.GetString(&error).ok() ||
      !dec.GetBytes(&proof).ok() || !dec.AtEnd()) {
    return;
  }
  last_proof_.received = true;
  last_proof_.ok = ok != 0;
  last_proof_.message = std::move(error);
  last_proof_.proof = std::move(proof);
}

void ReplicatedNode::RequestMetrics(network::NodeId to,
                                    obs::ExpositionFormat format) {
  if (net_ == nullptr) return;
  last_metrics_ = MetricsReply();
  Encoder enc;
  enc.PutU8(format == obs::ExpositionFormat::kJson ? 1 : 0);
  net_->Send(id_, to, kMsgMetrics, enc.TakeBuffer());
}

void ReplicatedNode::HandleMetricsRequest(const network::Message& message) {
  if (net_ == nullptr) return;
  Decoder dec(message.payload);
  uint8_t format = 0;
  if (!dec.GetU8(&format).ok() || format > 1 || !dec.AtEnd()) return;
  const std::string body = registry_->Exposition(
      format == 1 ? obs::ExpositionFormat::kJson
                  : obs::ExpositionFormat::kPrometheusText);
  Encoder enc;
  enc.PutString(body);
  net_->Send(id_, message.from, kMsgMetricsReply, enc.TakeBuffer());
}

void ReplicatedNode::HandleMetricsReply(const network::Message& message) {
  Decoder dec(message.payload);
  std::string body;
  if (!dec.GetString(&body).ok() || !dec.AtEnd()) return;
  last_metrics_.received = true;
  last_metrics_.body = std::move(body);
}

}  // namespace replication
}  // namespace provledger
