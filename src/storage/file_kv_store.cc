#include "storage/file_kv_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

#include "common/codec.h"
#include "common/fileio.h"
#include "common/framed_log.h"

namespace provledger {
namespace storage {

namespace {

constexpr uint8_t kOpPut = 0;
constexpr uint8_t kOpDelete = 1;

Status Errno(const std::string& what, const std::string& path) {
  return ErrnoStatus(what, path);
}

}  // namespace

FileKvStore::SegmentSet::~SegmentSet() {
  for (int fd : fds) {
    if (fd >= 0) ::close(fd);
  }
}

class FileKvStore::Iterator : public KvIterator {
 public:
  Iterator(std::shared_ptr<const Index> snapshot,
           std::shared_ptr<SegmentSet> segments)
      : snapshot_(std::move(snapshot)),
        segments_(std::move(segments)),
        it_(snapshot_->begin()) {}

  void Seek(const std::string& target) override {
    it_ = snapshot_->lower_bound(target);
    loaded_ = false;
  }
  void SeekToFirst() override {
    it_ = snapshot_->begin();
    loaded_ = false;
  }
  bool Valid() const override { return it_ != snapshot_->end(); }
  void Next() override {
    ++it_;
    loaded_ = false;
  }
  const std::string& key() const override { return it_->first; }
  /// Lazily pread()s the value at the indexed location. An I/O failure
  /// surfaces as an empty value (the KvIterator interface has no error
  /// channel); segments are append-only, so a location from any snapshot
  /// stays readable while the iterator is alive.
  const Bytes& value() const override {
    if (!loaded_) {
      const ValueLoc& loc = it_->second;
      value_.assign(loc.length, 0);
      ssize_t n = ::pread(segments_->fds[loc.segment], value_.data(),
                          loc.length, static_cast<off_t>(loc.offset));
      if (n != static_cast<ssize_t>(loc.length)) value_.clear();
      loaded_ = true;
    }
    return value_;
  }

 private:
  std::shared_ptr<const Index> snapshot_;
  std::shared_ptr<SegmentSet> segments_;
  Index::const_iterator it_;
  mutable Bytes value_;
  mutable bool loaded_ = false;
};

FileKvStore::FileKvStore(std::string dir, FileKvStoreOptions options)
    : dir_(std::move(dir)),
      options_(options),
      segments_(std::make_shared<SegmentSet>()),
      index_(std::make_shared<Index>()) {}

FileKvStore::~FileKvStore() = default;

Result<std::vector<std::string>> FileKvStore::ListSegments(
    const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir", dir);
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() == 10 && name.compare(6, 4, ".log") == 0 &&
        name.find_first_not_of("0123456789") == 6) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  // Zero-padded numbering: lexical order is creation order.
  std::sort(names.begin(), names.end());
  return names;
}

Status FileKvStore::OpenSegment(const std::string& name, bool create) {
  const std::string path = dir_ + "/" + name;
  int flags = O_RDWR | O_APPEND | (create ? O_CREAT | O_EXCL : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Errno("open", path);
  segments_->fds.push_back(fd);
  segment_names_.push_back(name);
  active_size_ = 0;
  if (create) {
    // Make the new directory entry durable before anything points at it.
    int dirfd = ::open(dir_.c_str(), O_RDONLY);
    if (dirfd >= 0) {
      ::fsync(dirfd);
      ::close(dirfd);
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<FileKvStore>> FileKvStore::Open(
    const std::string& dir, FileKvStoreOptions options) {
  PROVLEDGER_RETURN_NOT_OK(EnsureDir(dir));
  auto store =
      std::unique_ptr<FileKvStore>(new FileKvStore(dir, options));
  PROVLEDGER_ASSIGN_OR_RETURN(std::vector<std::string> names,
                              ListSegments(dir));
  if (names.empty()) {
    PROVLEDGER_RETURN_NOT_OK(store->OpenSegment("000001.log", /*create=*/true));
    return store;
  }
  for (size_t i = 0; i < names.size(); ++i) {
    PROVLEDGER_RETURN_NOT_OK(store->OpenSegment(names[i], /*create=*/false));
    PROVLEDGER_RETURN_NOT_OK(store->ReplaySegment(
        static_cast<uint32_t>(i), dir + "/" + names[i],
        /*last=*/i + 1 == names.size()));
  }
  return store;
}

Status FileKvStore::ReplaySegment(uint32_t segment, const std::string& path,
                                  bool last) {
  int fd = segments_->fds[segment];
  struct stat st;
  if (::fstat(fd, &st) != 0) return Errno("fstat", path);
  Bytes buf(static_cast<size_t>(st.st_size));
  if (!buf.empty()) {
    ssize_t n = ::pread(fd, buf.data(), buf.size(), 0);
    if (n != static_cast<ssize_t>(buf.size())) return Errno("pread", path);
  }

  size_t pos = 0;
  while (pos < buf.size()) {
    size_t payload_len = 0;
    FrameScan scan = ScanFrameAt(buf, pos, &payload_len);
    if (scan == FrameScan::kCorrupt) {
      // A complete frame failing its CRC was damaged after the fact; valid
      // batches may follow it, so this is never silently truncated.
      return Status::Corruption("bad log record in " + path + " at offset " +
                                std::to_string(pos));
    }
    if (scan == FrameScan::kTorn) {
      // An incomplete tail frame is what a crash mid-append leaves — and
      // only the active (last) segment is ever appended to.
      if (!last) {
        return Status::Corruption("truncated record inside sealed segment " +
                                  path);
      }
      if (::ftruncate(fd, static_cast<off_t>(pos)) != 0) {
        return Errno("ftruncate", path);
      }
      recovered_torn_write_ = true;
      break;
    }

    const size_t payload_pos = pos + kFrameHeaderBytes;
    Bytes payload(buf.begin() + payload_pos,
                  buf.begin() + payload_pos + payload_len);
    Decoder dec(payload);
    uint32_t op_count = 0;
    PROVLEDGER_RETURN_NOT_OK(dec.GetU32(&op_count));
    for (uint32_t i = 0; i < op_count; ++i) {
      uint8_t kind = 0;
      std::string key;
      PROVLEDGER_RETURN_NOT_OK(dec.GetU8(&kind));
      PROVLEDGER_RETURN_NOT_OK(dec.GetString(&key));
      if (kind == kOpPut) {
        // The value starts right after its u32 length prefix; remaining()
        // gives the decoder's position without exposing it directly.
        Bytes value;
        size_t before = dec.remaining();
        PROVLEDGER_RETURN_NOT_OK(dec.GetBytes(&value));
        ValueLoc loc;
        loc.segment = segment;
        loc.offset = payload_pos + (payload.size() - before) + 4;
        loc.length = static_cast<uint32_t>(value.size());
        ApplyToIndex(index_.get(), key, /*is_put=*/true, loc);
      } else if (kind == kOpDelete) {
        ApplyToIndex(index_.get(), key, /*is_put=*/false, ValueLoc());
      } else {
        return Status::Corruption("unknown op kind in " + path);
      }
    }
    if (!dec.AtEnd()) {
      return Status::Corruption("trailing payload bytes in " + path);
    }
    ++replayed_batches_;
    pos = payload_pos + payload_len;
  }
  active_size_ = pos;
  return Status::OK();
}

void FileKvStore::ApplyToIndex(Index* index, const std::string& key,
                               bool is_put, const ValueLoc& loc) {
  auto it = index->find(key);
  if (it != index->end()) {
    live_bytes_ -= key.size() + it->second.length;
    if (!is_put) index->erase(it);
  }
  if (is_put) {
    live_bytes_ += key.size() + loc.length;
    (*index)[key] = loc;
  }
}

FileKvStore::Index& FileKvStore::MutableIndex() {
  if (index_.use_count() > 1) index_ = std::make_shared<Index>(*index_);
  return *index_;
}

Status FileKvStore::RollIfNeeded() {
  if (active_size_ < options_.segment_bytes) return Status::OK();
  char name[32];
  std::snprintf(name, sizeof(name), "%06zu.log", segments_->fds.size() + 1);
  return OpenSegment(name, /*create=*/true);
}

Status FileKvStore::Write(const WriteBatch& batch) {
  if (batch.empty()) return Status::OK();
  PROVLEDGER_RETURN_NOT_OK(RollIfNeeded());
  const uint32_t segment = static_cast<uint32_t>(segments_->fds.size() - 1);

  // One framed record per batch; value offsets are computed while encoding
  // so the index can point straight into the segment afterwards.
  Encoder payload;
  payload.PutU32(static_cast<uint32_t>(batch.ops().size()));
  std::vector<std::pair<const WriteBatch::Op*, ValueLoc>> applied;
  applied.reserve(batch.ops().size());
  for (const auto& op : batch.ops()) {
    const bool is_put = op.kind == WriteBatch::Op::Kind::kPut;
    payload.PutU8(is_put ? kOpPut : kOpDelete);
    payload.PutString(op.key);
    ValueLoc loc;
    if (is_put) {
      loc.segment = segment;
      loc.offset = active_size_ + kFrameHeaderBytes + payload.size() + 4;
      loc.length = static_cast<uint32_t>(op.value.size());
      payload.PutBytes(op.value);
    }
    applied.emplace_back(&op, loc);
  }

  Bytes frame = BuildFrame(payload.buffer());

  const std::string& path = segment_names_.back();
  int fd = segments_->fds.back();
  Status written = WriteAllFd(fd, frame.data(), frame.size(), path);
  if (written.ok() && options_.sync_writes && ::fsync(fd) != 0) {
    written = Errno("fsync", path);
  }
  if (!written.ok()) {
    // Drop any partially written frame so the next append re-frames cleanly
    // (a partial record mid-log would otherwise read as corruption).
    ::ftruncate(fd, static_cast<off_t>(active_size_));
    return written;
  }
  active_size_ += frame.size();

  // Only after the record is durably framed does the index move.
  Index& index = MutableIndex();
  for (const auto& [op, loc] : applied) {
    ApplyToIndex(&index, op->key,
                 op->kind == WriteBatch::Op::Kind::kPut, loc);
  }
  return Status::OK();
}

Status FileKvStore::Put(const std::string& key, Bytes value) {
  WriteBatch batch;
  batch.Put(key, std::move(value));
  return Write(batch);
}

Status FileKvStore::Delete(const std::string& key) {
  if (!Has(key)) return Status::OK();  // avoid logging no-op tombstones
  WriteBatch batch;
  batch.Delete(key);
  return Write(batch);
}

Result<Bytes> FileKvStore::Get(const std::string& key) const {
  auto it = index_->find(key);
  if (it == index_->end()) {
    return Status::NotFound("key not found: " + key);
  }
  const ValueLoc& loc = it->second;
  Bytes value(loc.length, 0);
  ssize_t n = ::pread(segments_->fds[loc.segment], value.data(), loc.length,
                      static_cast<off_t>(loc.offset));
  if (n != static_cast<ssize_t>(loc.length)) {
    return Status::Corruption("short value read for key: " + key);
  }
  return value;
}

bool FileKvStore::Has(const std::string& key) const {
  return index_->count(key) > 0;
}

std::unique_ptr<KvIterator> FileKvStore::NewIterator() const {
  return std::make_unique<Iterator>(index_, segments_);
}

Status FileKvStore::Sync() {
  if (segments_->fds.empty()) return Status::OK();
  if (::fsync(segments_->fds.back()) != 0) {
    return Errno("fsync", segment_names_.back());
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace provledger
