#include "storage/file_kv_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

#include "common/codec.h"
#include "common/fileio.h"
#include "common/framed_log.h"

namespace provledger {
namespace storage {

namespace {

constexpr uint8_t kOpPut = 0;
constexpr uint8_t kOpDelete = 1;

// First u32 of a compressed batch payload. A raw payload starts with its
// op count, which can never plausibly reach 2^32-1, so the two forms are
// unambiguous within one log.
constexpr uint32_t kCompressedPayloadTag = 0xFFFFFFFFu;

// Upper bound on the declared raw size of a compressed batch, relative to
// its compressed body: byte-oriented LZ-style codecs top out well under
// this expansion, so anything bigger is corruption, not data — and must not
// drive a giant allocation.
constexpr size_t kMaxExpansion = 256;

Status Errno(const std::string& what, const std::string& path) {
  return ErrnoStatus(what, path);
}

}  // namespace

FileKvStore::SegmentSet::~SegmentSet() {
  for (int fd : fds) {
    if (fd >= 0) ::close(fd);
  }
}

class FileKvStore::Iterator : public KvIterator {
 public:
  Iterator(std::shared_ptr<const Index> snapshot,
           std::shared_ptr<SegmentSet> segments,
           std::function<Result<Bytes>(const Bytes&, size_t)> decompress)
      : snapshot_(std::move(snapshot)),
        segments_(std::move(segments)),
        decompress_(std::move(decompress)),
        it_(snapshot_->begin()) {}

  void Seek(const std::string& target) override {
    it_ = snapshot_->lower_bound(target);
    loaded_ = false;
  }
  void SeekToFirst() override {
    it_ = snapshot_->begin();
    loaded_ = false;
  }
  bool Valid() const override { return it_ != snapshot_->end(); }
  void Next() override {
    ++it_;
    loaded_ = false;
  }
  const std::string& key() const override { return it_->first; }
  /// Lazily pread()s the value at the indexed location. An I/O failure
  /// surfaces as an empty value (the KvIterator interface has no error
  /// channel); segments are append-only, so a location from any snapshot
  /// stays readable while the iterator is alive.
  const Bytes& value() const override {
    if (!loaded_) {
      auto read = ReadValueAt(*segments_, it_->second, decompress_);
      value_ = read.ok() ? std::move(read).value() : Bytes();
      loaded_ = true;
    }
    return value_;
  }

 private:
  std::shared_ptr<const Index> snapshot_;
  std::shared_ptr<SegmentSet> segments_;
  std::function<Result<Bytes>(const Bytes&, size_t)> decompress_;
  Index::const_iterator it_;
  mutable Bytes value_;
  mutable bool loaded_ = false;
};

FileKvStore::FileKvStore(std::string dir, FileKvStoreOptions options)
    : dir_(std::move(dir)),
      options_(options),
      segments_(std::make_shared<SegmentSet>()),
      index_(std::make_shared<Index>()) {
  obs::Registry* registry = options_.registry != nullptr
                                ? options_.registry
                                : obs::Registry::Default();
  write_seconds_ = registry->GetHistogram(
      "kv_write_seconds", "WriteBatch apply latency (framing + log append)",
      obs::LatencyBuckets());
  fsync_seconds_ = registry->GetHistogram(
      "kv_fsync_seconds", "Segment fsync latency", obs::LatencyBuckets());
  write_bytes_ = registry->GetHistogram(
      "kv_write_bytes", "Framed bytes appended per WriteBatch",
      obs::SizeBuckets());
  segments_gauge_ =
      registry->GetGauge("kv_segments", "Log segments (active included)");
  live_bytes_gauge_ = registry->GetGauge(
      "kv_live_bytes", "Live key + value bytes (dead log entries excluded)");
}

FileKvStore::~FileKvStore() = default;

Result<std::vector<std::string>> FileKvStore::ListSegments(
    const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir", dir);
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() == 10 && name.compare(6, 4, ".log") == 0 &&
        name.find_first_not_of("0123456789") == 6) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  // Zero-padded numbering: lexical order is creation order.
  std::sort(names.begin(), names.end());
  return names;
}

Status FileKvStore::OpenSegment(const std::string& name, bool create) {
  const std::string path = dir_ + "/" + name;
  int flags = O_RDWR | O_APPEND | (create ? O_CREAT | O_EXCL : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Errno("open", path);
  segments_->fds.push_back(fd);
  segment_names_.push_back(name);
  segments_gauge_->Set(static_cast<int64_t>(segments_->fds.size()));
  active_size_ = 0;
  if (create) {
    // Make the new directory entry durable before anything points at it.
    int dirfd = ::open(dir_.c_str(), O_RDONLY);
    if (dirfd >= 0) {
      ::fsync(dirfd);
      ::close(dirfd);
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<FileKvStore>> FileKvStore::Open(
    const std::string& dir, FileKvStoreOptions options) {
  PROVLEDGER_RETURN_NOT_OK(EnsureDir(dir));
  auto store =
      std::unique_ptr<FileKvStore>(new FileKvStore(dir, options));
  PROVLEDGER_ASSIGN_OR_RETURN(std::vector<std::string> names,
                              ListSegments(dir));
  if (names.empty()) {
    PROVLEDGER_RETURN_NOT_OK(store->OpenSegment("000001.log", /*create=*/true));
    return store;
  }
  for (size_t i = 0; i < names.size(); ++i) {
    PROVLEDGER_RETURN_NOT_OK(store->OpenSegment(names[i], /*create=*/false));
    PROVLEDGER_RETURN_NOT_OK(store->ReplaySegment(
        static_cast<uint32_t>(i), dir + "/" + names[i],
        /*last=*/i + 1 == names.size()));
  }
  return store;
}

Status FileKvStore::ReplaySegment(uint32_t segment, const std::string& path,
                                  bool last) {
  int fd = segments_->fds[segment];
  struct stat st;
  if (::fstat(fd, &st) != 0) return Errno("fstat", path);
  Bytes buf(static_cast<size_t>(st.st_size));
  if (!buf.empty()) {
    ssize_t n = ::pread(fd, buf.data(), buf.size(), 0);
    if (n != static_cast<ssize_t>(buf.size())) return Errno("pread", path);
  }

  size_t pos = 0;
  while (pos < buf.size()) {
    size_t payload_len = 0;
    FrameScan scan = ScanFrameAt(buf, pos, &payload_len);
    if (scan == FrameScan::kCorrupt) {
      // A complete frame failing its CRC was damaged after the fact; valid
      // batches may follow it, so this is never silently truncated.
      return Status::Corruption("bad log record in " + path + " at offset " +
                                std::to_string(pos));
    }
    if (scan == FrameScan::kTorn) {
      // An incomplete tail frame is what a crash mid-append leaves — and
      // only the active (last) segment is ever appended to.
      if (!last) {
        return Status::Corruption("truncated record inside sealed segment " +
                                  path);
      }
      if (::ftruncate(fd, static_cast<off_t>(pos)) != 0) {
        return Errno("ftruncate", path);
      }
      recovered_torn_write_ = true;
      break;
    }

    const size_t payload_pos = pos + kFrameHeaderBytes;
    Bytes payload(buf.begin() + payload_pos,
                  buf.begin() + payload_pos + payload_len);

    // A compressed batch announces itself with the payload tag; the ops are
    // decoded from the decompressed bytes, and the index points at the
    // whole frame payload (the value is sliced back out on read).
    bool compressed = false;
    Bytes raw;
    {
      Decoder probe(payload);
      uint32_t tag = 0;
      if (payload.size() >= 4) PROVLEDGER_RETURN_NOT_OK(probe.GetU32(&tag));
      if (payload.size() >= 4 && tag == kCompressedPayloadTag) {
        compressed = true;
        if (!options_.decompress) {
          return Status::Corruption("compressed batch in " + path +
                                    " but no decompressor configured");
        }
        uint64_t raw_len = 0;
        PROVLEDGER_RETURN_NOT_OK(probe.GetUVarint(&raw_len));
        Bytes body;
        PROVLEDGER_RETURN_NOT_OK(probe.GetRaw(probe.remaining(), &body));
        if (raw_len > (body.size() + 16) * kMaxExpansion) {
          return Status::Corruption("implausible raw size in " + path);
        }
        PROVLEDGER_ASSIGN_OR_RETURN(
            raw, options_.decompress(body, static_cast<size_t>(raw_len)));
      } else {
        raw = std::move(payload);
      }
    }

    Decoder dec(raw);
    uint32_t op_count = 0;
    PROVLEDGER_RETURN_NOT_OK(dec.GetU32(&op_count));
    for (uint32_t i = 0; i < op_count; ++i) {
      uint8_t kind = 0;
      std::string key;
      PROVLEDGER_RETURN_NOT_OK(dec.GetU8(&kind));
      PROVLEDGER_RETURN_NOT_OK(dec.GetString(&key));
      if (kind == kOpPut) {
        // The value starts right after its u32 length prefix; remaining()
        // gives the decoder's position without exposing it directly.
        Bytes value;
        size_t before = dec.remaining();
        PROVLEDGER_RETURN_NOT_OK(dec.GetBytes(&value));
        const size_t inner = (raw.size() - before) + 4;
        ValueLoc loc;
        loc.segment = segment;
        loc.length = static_cast<uint32_t>(value.size());
        if (compressed) {
          loc.offset = payload_pos;
          loc.frame_len = static_cast<uint32_t>(payload_len);
          loc.inner = static_cast<uint32_t>(inner);
        } else {
          loc.offset = payload_pos + inner;
        }
        ApplyToIndex(index_.get(), key, /*is_put=*/true, loc);
      } else if (kind == kOpDelete) {
        ApplyToIndex(index_.get(), key, /*is_put=*/false, ValueLoc());
      } else {
        return Status::Corruption("unknown op kind in " + path);
      }
    }
    if (!dec.AtEnd()) {
      return Status::Corruption("trailing payload bytes in " + path);
    }
    ++replayed_batches_;
    pos = payload_pos + payload_len;
  }
  active_size_ = pos;
  return Status::OK();
}

void FileKvStore::ApplyToIndex(Index* index, const std::string& key,
                               bool is_put, const ValueLoc& loc) {
  auto it = index->find(key);
  if (it != index->end()) {
    live_bytes_ -= key.size() + it->second.length;
    if (!is_put) index->erase(it);
  }
  if (is_put) {
    live_bytes_ += key.size() + loc.length;
    (*index)[key] = loc;
  }
}

FileKvStore::Index& FileKvStore::MutableIndex() {
  if (index_.use_count() > 1) index_ = std::make_shared<Index>(*index_);
  return *index_;
}

Status FileKvStore::RollIfNeeded() {
  if (active_size_ < options_.segment_bytes) return Status::OK();
  char name[32];
  std::snprintf(name, sizeof(name), "%06zu.log", segments_->fds.size() + 1);
  return OpenSegment(name, /*create=*/true);
}

Status FileKvStore::Write(const WriteBatch& batch) {
  if (batch.empty()) return Status::OK();
  obs::ScopedTimer write_timer(write_seconds_);
  PROVLEDGER_RETURN_NOT_OK(RollIfNeeded());
  const uint32_t segment = static_cast<uint32_t>(segments_->fds.size() - 1);

  // One framed record per batch; value offsets are computed while encoding
  // so the index can point straight into the segment afterwards. Offsets
  // are tracked payload-relative first, since compression (below) decides
  // whether they end up direct or inside a compressed frame.
  Encoder payload;
  payload.PutU32(static_cast<uint32_t>(batch.ops().size()));
  std::vector<std::pair<const WriteBatch::Op*, ValueLoc>> applied;
  applied.reserve(batch.ops().size());
  for (const auto& op : batch.ops()) {
    const bool is_put = op.kind == WriteBatch::Op::Kind::kPut;
    payload.PutU8(is_put ? kOpPut : kOpDelete);
    payload.PutString(op.key);
    ValueLoc loc;
    if (is_put) {
      loc.segment = segment;
      loc.inner = static_cast<uint32_t>(payload.size() + 4);
      loc.length = static_cast<uint32_t>(op.value.size());
      payload.PutBytes(op.value);
    }
    applied.emplace_back(&op, loc);
  }

  // Try the compression hook; keep the raw payload when it does not
  // shrink (dense values would otherwise expand on disk).
  bool compressed = false;
  Encoder compressed_payload;
  if (options_.compress) {
    Bytes body = options_.compress(payload.buffer());
    compressed_payload.PutU32(kCompressedPayloadTag);
    compressed_payload.PutUVarint(payload.size());
    compressed_payload.PutRaw(body);
    compressed = compressed_payload.size() < payload.size();
  }
  const Bytes& final_payload =
      compressed ? compressed_payload.buffer() : payload.buffer();
  for (auto& [op, loc] : applied) {
    if (op->kind != WriteBatch::Op::Kind::kPut) continue;
    if (compressed) {
      loc.offset = active_size_ + kFrameHeaderBytes;
      loc.frame_len = static_cast<uint32_t>(final_payload.size());
    } else {
      loc.offset = active_size_ + kFrameHeaderBytes + loc.inner;
      loc.inner = 0;
    }
  }

  Bytes frame = BuildFrame(final_payload);

  const std::string& path = segment_names_.back();
  int fd = segments_->fds.back();
  Status written = WriteAllFd(fd, frame.data(), frame.size(), path);
  if (written.ok() && options_.sync_writes) {
    obs::ScopedTimer fsync_timer(fsync_seconds_);
    if (::fsync(fd) != 0) written = Errno("fsync", path);
  }
  if (!written.ok()) {
    // Drop any partially written frame so the next append re-frames cleanly
    // (a partial record mid-log would otherwise read as corruption).
    ::ftruncate(fd, static_cast<off_t>(active_size_));
    return written;
  }
  active_size_ += frame.size();
  write_bytes_->Observe(static_cast<double>(frame.size()));

  // Only after the record is durably framed does the index move.
  Index& index = MutableIndex();
  for (const auto& [op, loc] : applied) {
    ApplyToIndex(&index, op->key,
                 op->kind == WriteBatch::Op::Kind::kPut, loc);
  }
  live_bytes_gauge_->Set(static_cast<int64_t>(live_bytes_));
  return Status::OK();
}

Status FileKvStore::Put(const std::string& key, Bytes value) {
  WriteBatch batch;
  batch.Put(key, std::move(value));
  return Write(batch);
}

Status FileKvStore::Delete(const std::string& key) {
  if (!Has(key)) return Status::OK();  // avoid logging no-op tombstones
  WriteBatch batch;
  batch.Delete(key);
  return Write(batch);
}

Result<Bytes> FileKvStore::ReadValueAt(
    const SegmentSet& segments, const ValueLoc& loc,
    const std::function<Result<Bytes>(const Bytes&, size_t)>& decompress) {
  if (loc.frame_len == 0) {
    Bytes value(loc.length, 0);
    ssize_t n = ::pread(segments.fds[loc.segment], value.data(), loc.length,
                        static_cast<off_t>(loc.offset));
    if (n != static_cast<ssize_t>(loc.length)) {
      return Status::Corruption("short value read");
    }
    return value;
  }
  // Compressed batch: fetch the whole frame payload, decompress, slice.
  Bytes payload(loc.frame_len, 0);
  ssize_t n = ::pread(segments.fds[loc.segment], payload.data(),
                      loc.frame_len, static_cast<off_t>(loc.offset));
  if (n != static_cast<ssize_t>(loc.frame_len)) {
    return Status::Corruption("short compressed-batch read");
  }
  if (!decompress) {
    return Status::Corruption("compressed batch but no decompressor");
  }
  Decoder dec(payload);
  uint32_t tag = 0;
  uint64_t raw_len = 0;
  Bytes body;
  PROVLEDGER_RETURN_NOT_OK(dec.GetU32(&tag));
  if (tag != kCompressedPayloadTag) {
    return Status::Corruption("compressed batch lost its payload tag");
  }
  PROVLEDGER_RETURN_NOT_OK(dec.GetUVarint(&raw_len));
  PROVLEDGER_RETURN_NOT_OK(dec.GetRaw(dec.remaining(), &body));
  if (raw_len > (body.size() + 16) * kMaxExpansion) {
    return Status::Corruption("implausible raw size in compressed batch");
  }
  PROVLEDGER_ASSIGN_OR_RETURN(Bytes raw,
                              decompress(body, static_cast<size_t>(raw_len)));
  if (static_cast<size_t>(loc.inner) + loc.length > raw.size()) {
    return Status::Corruption("value location past decompressed batch");
  }
  return Bytes(raw.begin() + loc.inner, raw.begin() + loc.inner + loc.length);
}

Result<Bytes> FileKvStore::Get(const std::string& key) const {
  auto it = index_->find(key);
  if (it == index_->end()) {
    return Status::NotFound("key not found: " + key);
  }
  auto value = ReadValueAt(*segments_, it->second, options_.decompress);
  if (!value.ok()) {
    return Status::Corruption(value.status().message() + " for key: " + key);
  }
  return value;
}

bool FileKvStore::Has(const std::string& key) const {
  return index_->count(key) > 0;
}

std::unique_ptr<KvIterator> FileKvStore::NewIterator() const {
  return std::make_unique<Iterator>(index_, segments_, options_.decompress);
}

Status FileKvStore::Sync() {
  if (segments_->fds.empty()) return Status::OK();
  obs::ScopedTimer fsync_timer(fsync_seconds_);
  if (::fsync(segments_->fds.back()) != 0) {
    return Errno("fsync", segment_names_.back());
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace provledger
