// FileKvStore: a durable KvStore backed by an append-only segmented log
// (bitcask-style) plus an in-memory key -> value-location index.
//
// Layout: a directory of numbered segment files ("000001.log", ...). Every
// applied WriteBatch becomes exactly one framed log record —
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//   payload = u32 op_count, then per op:
//     u8 kind, u32 key_len, key, and for puts u32 value_len, value
//
// — written with a single write() and (by default) fsync'd before the
// in-memory index is touched. A batch is therefore atomic across crashes:
// an incomplete tail record (the prefix a crash mid-write leaves) is
// detected on reopen and truncated away, so either every op of a batch is
// visible after restart or none is. A *complete* record failing its CRC is
// damage, not a crash artifact — that is Corruption, never truncation.
//
// Reads never touch the log sequentially: Get() and iterators pread() the
// value bytes at the indexed location. Segments are immutable once written
// (no compaction yet), so an index snapshot stays valid forever — iterators
// share the index map copy-on-write exactly like MemKvStore, giving O(1)
// snapshot creation with the same documented point-in-time semantics.
//
// Thread safety: NOT internally synchronized — single owner, or external
// locking around every call.

#ifndef PROVLEDGER_STORAGE_FILE_KV_STORE_H_
#define PROVLEDGER_STORAGE_FILE_KV_STORE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "storage/kv_store.h"

namespace provledger {
namespace storage {

/// \brief FileKvStore configuration.
struct FileKvStoreOptions {
  /// Roll to a new segment once the active one exceeds this many bytes.
  size_t segment_bytes = 64u << 20;
  /// fsync the active segment after every applied batch. Turning this off
  /// trades crash durability of the most recent writes for throughput;
  /// Sync() still forces everything out.
  bool sync_writes = true;
  /// Optional per-batch compression: when set, each applied WriteBatch
  /// payload is compressed before framing (kept raw when compression does
  /// not shrink it — both forms coexist in one log). Reads of a compressed
  /// batch decompress the whole batch payload and slice the value out, so
  /// this trades read CPU for disk; point it at LzCompress/LzDecompress
  /// (common/compress.h) for self-similar blob workloads. Reopening a log
  /// that contains compressed batches without `decompress` fails loudly
  /// with Corruption rather than serving garbage.
  std::function<Bytes(const Bytes&)> compress;
  std::function<Result<Bytes>(const Bytes& compressed, size_t raw_size)>
      decompress;
  /// Metric registry for write/fsync timers and the segment gauges
  /// (nullptr = obs::Registry::Default()). Segments are immutable once
  /// written (no compaction yet), so there is no compaction timer to
  /// register.
  obs::Registry* registry = nullptr;
};

/// \brief Durable ordered KV store over an append-only segmented log.
class FileKvStore : public KvStore {
 public:
  /// Open (creating the directory and first segment if needed) and replay
  /// the log into the in-memory index. An incomplete record at the tail of
  /// the active segment — the signature of a crash mid-write — is
  /// truncated away and reported via recovered_torn_write(); a complete
  /// record failing its CRC (anywhere) or a truncated record inside a
  /// sealed segment is Corruption.
  static Result<std::unique_ptr<FileKvStore>> Open(
      const std::string& dir, FileKvStoreOptions options = FileKvStoreOptions());

  ~FileKvStore() override;
  FileKvStore(const FileKvStore&) = delete;
  FileKvStore& operator=(const FileKvStore&) = delete;

  Status Put(const std::string& key, Bytes value) override;
  Result<Bytes> Get(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  bool Has(const std::string& key) const override;
  Status Write(const WriteBatch& batch) override;
  std::unique_ptr<KvIterator> NewIterator() const override;
  size_t ApproximateCount() const override { return index_->size(); }
  /// Live key + value bytes (dead log entries excluded).
  size_t ApproximateBytes() const override { return live_bytes_; }

  /// Force all buffered log bytes to stable storage (no-op when
  /// options.sync_writes already syncs per batch).
  Status Sync();

  /// Number of log segments (the active one included).
  size_t segment_count() const { return segments_->fds.size(); }
  /// Batches replayed from the log by Open().
  uint64_t replayed_batches() const { return replayed_batches_; }
  /// True when Open() discarded a torn record at the log tail.
  bool recovered_torn_write() const { return recovered_torn_write_; }

 private:
  /// Where a live value sits in the log. A raw batch indexes the value
  /// bytes directly; a compressed batch indexes the whole frame payload
  /// plus the value's offset inside the decompressed batch.
  struct ValueLoc {
    uint32_t segment = 0;  // index into segments_->fds
    uint64_t offset = 0;   // raw: value offset in the segment;
                           // compressed: offset of the frame payload
    uint32_t length = 0;   // raw (uncompressed) value length
    /// Nonzero marks a compressed batch: the on-disk frame payload length.
    uint32_t frame_len = 0;
    /// Value offset inside the decompressed batch payload.
    uint32_t inner = 0;
  };
  using Index = std::map<std::string, ValueLoc>;

  /// Open segment fds, shared with live iterators so values stay readable
  /// for as long as any snapshot needs them.
  struct SegmentSet {
    std::vector<int> fds;
    ~SegmentSet();
  };

  class Iterator;

  FileKvStore(std::string dir, FileKvStoreOptions options);

  static Result<std::vector<std::string>> ListSegments(const std::string& dir);
  Status OpenSegment(const std::string& name, bool create);
  /// Replay one segment file into the index; `last` enables torn-tail
  /// truncation.
  Status ReplaySegment(uint32_t segment, const std::string& path, bool last);
  /// Apply one decoded op to the index + accounting.
  void ApplyToIndex(Index* index, const std::string& key, bool is_put,
                    const ValueLoc& loc);
  /// Fetch the value bytes at `loc` — a direct pread for raw batches, a
  /// pread + decompress + slice for compressed ones. Static (and taking the
  /// decompressor explicitly) so iterators holding only the SegmentSet can
  /// keep reading after the store is gone.
  static Result<Bytes> ReadValueAt(
      const SegmentSet& segments, const ValueLoc& loc,
      const std::function<Result<Bytes>(const Bytes&, size_t)>& decompress);
  /// The index, detached from live snapshots first (copy-on-write).
  Index& MutableIndex();
  Status RollIfNeeded();

  std::string dir_;
  FileKvStoreOptions options_;
  std::shared_ptr<SegmentSet> segments_;
  /// File names parallel to segments_->fds (for error messages).
  std::vector<std::string> segment_names_;
  uint64_t active_size_ = 0;
  std::shared_ptr<Index> index_;
  size_t live_bytes_ = 0;
  uint64_t replayed_batches_ = 0;
  bool recovered_torn_write_ = false;
  // Cached registry cells (resolved once in the constructor).
  obs::Histogram* write_seconds_;
  obs::Histogram* fsync_seconds_;
  obs::Histogram* write_bytes_;
  obs::Gauge* segments_gauge_;
  obs::Gauge* live_bytes_gauge_;
};

}  // namespace storage
}  // namespace provledger

#endif  // PROVLEDGER_STORAGE_FILE_KV_STORE_H_
