#include "storage/kv_store.h"

namespace provledger {
namespace storage {

void WriteBatch::Put(const std::string& key, Bytes value) {
  ops_.push_back({Op::Kind::kPut, key, std::move(value)});
}

void WriteBatch::Put(const std::string& key, const std::string& value) {
  ops_.push_back({Op::Kind::kPut, key, ToBytes(value)});
}

void WriteBatch::Delete(const std::string& key) {
  ops_.push_back({Op::Kind::kDelete, key, {}});
}

void WriteBatch::Clear() { ops_.clear(); }

namespace {
class MemKvIterator : public KvIterator {
 public:
  explicit MemKvIterator(std::shared_ptr<const std::map<std::string, Bytes>>
                             snapshot)
      : snapshot_(std::move(snapshot)), it_(snapshot_->begin()) {}

  void Seek(const std::string& target) override {
    it_ = snapshot_->lower_bound(target);
  }
  void SeekToFirst() override { it_ = snapshot_->begin(); }
  bool Valid() const override { return it_ != snapshot_->end(); }
  void Next() override { ++it_; }
  const std::string& key() const override { return it_->first; }
  const Bytes& value() const override { return it_->second; }

 private:
  std::shared_ptr<const std::map<std::string, Bytes>> snapshot_;
  std::map<std::string, Bytes>::const_iterator it_;
};
}  // namespace

MemKvStore::Map& MemKvStore::Mutable() {
  // A use count above one means a live snapshot iterator still pins the
  // current map: detach by copying once, and mutate the private copy.
  if (map_.use_count() > 1) map_ = std::make_shared<Map>(*map_);
  return *map_;
}

Status MemKvStore::Put(const std::string& key, Bytes value) {
  Map& map = Mutable();
  auto it = map.find(key);
  if (it != map.end()) {
    bytes_ -= key.size() + it->second.size();
  }
  bytes_ += key.size() + value.size();
  map[key] = std::move(value);
  return Status::OK();
}

Result<Bytes> MemKvStore::Get(const std::string& key) const {
  auto it = map_->find(key);
  if (it == map_->end()) return Status::NotFound("key not found: " + key);
  return it->second;
}

Status MemKvStore::Delete(const std::string& key) {
  auto it = map_->find(key);
  if (it != map_->end()) {
    bytes_ -= key.size() + it->second.size();
    Mutable().erase(key);
  }
  return Status::OK();
}

bool MemKvStore::Has(const std::string& key) const {
  return map_->count(key) > 0;
}

Status MemKvStore::Write(const WriteBatch& batch) {
  // MemKvStore mutations cannot fail, so sequential application is atomic.
  for (const auto& op : batch.ops()) {
    if (op.kind == WriteBatch::Op::Kind::kPut) {
      PROVLEDGER_RETURN_NOT_OK(Put(op.key, op.value));
    } else {
      PROVLEDGER_RETURN_NOT_OK(Delete(op.key));
    }
  }
  return Status::OK();
}

std::unique_ptr<KvIterator> MemKvStore::NewIterator() const {
  // O(1): the iterator shares the current map; the next mutation detaches.
  return std::make_unique<MemKvIterator>(map_);
}

Status MemKvStore::LoadSorted(
    std::vector<std::pair<std::string, Bytes>> entries) {
  for (size_t i = 1; i < entries.size(); ++i) {
    if (!(entries[i - 1].first < entries[i].first)) {
      return Status::InvalidArgument(
          "LoadSorted input not strictly key-sorted near: " +
          entries[i].first);
    }
  }
  auto map = std::make_shared<Map>();
  size_t bytes = 0;
  for (auto& [key, value] : entries) {
    bytes += key.size() + value.size();
    map->emplace_hint(map->end(), std::move(key), std::move(value));
  }
  map_ = std::move(map);  // live snapshots keep the old map alive
  bytes_ = bytes;
  return Status::OK();
}

std::vector<std::pair<std::string, Bytes>> ScanPrefix(
    const KvStore& store, const std::string& prefix) {
  std::vector<std::pair<std::string, Bytes>> out;
  auto it = store.NewIterator();
  for (it->Seek(prefix); it->Valid(); it->Next()) {
    if (it->key().compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->key(), it->value());
  }
  return out;
}

}  // namespace storage
}  // namespace provledger
