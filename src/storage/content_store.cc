#include "storage/content_store.h"

namespace provledger {
namespace storage {

crypto::Digest ContentStore::Put(const Bytes& content) {
  crypto::Digest cid = crypto::Sha256::Hash(content);
  std::string key = crypto::DigestHex(cid);
  auto [it, inserted] = objects_.emplace(key, content);
  if (inserted) total_bytes_ += content.size();
  return cid;
}

Result<Bytes> ContentStore::Get(const crypto::Digest& cid) const {
  auto it = objects_.find(crypto::DigestHex(cid));
  if (it == objects_.end()) {
    return Status::NotFound("content not found: " + crypto::DigestHex(cid));
  }
  return it->second;
}

bool ContentStore::Has(const crypto::Digest& cid) const {
  return objects_.count(crypto::DigestHex(cid)) > 0;
}

Result<Bytes> ContentStore::GetVerified(const crypto::Digest& cid) const {
  PROVLEDGER_ASSIGN_OR_RETURN(Bytes content, Get(cid));
  if (crypto::Sha256::Hash(content) != cid) {
    return Status::Corruption("stored content does not match its address");
  }
  return content;
}

bool ContentStore::CorruptForTesting(const crypto::Digest& cid) {
  auto it = objects_.find(crypto::DigestHex(cid));
  if (it == objects_.end() || it->second.empty()) return false;
  it->second[0] ^= 0xFF;
  return true;
}

}  // namespace storage
}  // namespace provledger
