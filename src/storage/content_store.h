// Content-addressed object store — ProvLedger's in-process stand-in for
// IPFS (DESIGN.md §3). Several surveyed systems ([33], HealthBlock, Ahmed
// et al.) keep bulk data off-chain in IPFS and anchor only the content hash
// on the ledger; ContentStore preserves exactly that architectural split and
// its measurable consequences (on-chain bytes vs retrieval indirection),
// which bench_storage_overhead quantifies.
//
// Thread safety: NOT internally synchronized — single owner, or external
// locking around every call.

#ifndef PROVLEDGER_STORAGE_CONTENT_STORE_H_
#define PROVLEDGER_STORAGE_CONTENT_STORE_H_

#include <string>
#include <unordered_map>

#include "crypto/sha256.h"

namespace provledger {
namespace storage {

/// \brief Immutable content-addressed blob store keyed by SHA-256.
class ContentStore {
 public:
  /// Store a blob; returns its content id (SHA-256). Idempotent.
  crypto::Digest Put(const Bytes& content);

  /// Fetch a blob by content id.
  Result<Bytes> Get(const crypto::Digest& cid) const;
  bool Has(const crypto::Digest& cid) const;

  /// \brief Fetch and re-hash, returning Corruption if the stored bytes no
  /// longer match the address (integrity self-check).
  Result<Bytes> GetVerified(const crypto::Digest& cid) const;

  size_t object_count() const { return objects_.size(); }
  size_t total_bytes() const { return total_bytes_; }

  /// Test hook: silently corrupt a stored object (fault injection).
  bool CorruptForTesting(const crypto::Digest& cid);

 private:
  std::unordered_map<std::string, Bytes> objects_;  // hex(cid) -> content
  size_t total_bytes_ = 0;
};

}  // namespace storage
}  // namespace provledger

#endif  // PROVLEDGER_STORAGE_CONTENT_STORE_H_
