// Ordered key-value store abstraction (RocksDB-flavoured): Put/Get/Delete,
// atomic WriteBatch application, and ordered iteration. The ledger block
// index, provenance indexes, and access-control state all sit on this
// interface, so an embedded LSM engine could be swapped in without touching
// the layers above.

#ifndef PROVLEDGER_STORAGE_KV_STORE_H_
#define PROVLEDGER_STORAGE_KV_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace provledger {
namespace storage {

/// \brief A buffered sequence of writes applied atomically
/// (all-or-nothing) by KvStore::Write.
class WriteBatch {
 public:
  void Put(const std::string& key, Bytes value);
  void Put(const std::string& key, const std::string& value);
  void Delete(const std::string& key);
  void Clear();

  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  struct Op {
    enum class Kind { kPut, kDelete };
    Kind kind;
    std::string key;
    Bytes value;
  };
  const std::vector<Op>& ops() const { return ops_; }

 private:
  std::vector<Op> ops_;
};

/// \brief Forward iterator over an ordered snapshot of the store.
class KvIterator {
 public:
  virtual ~KvIterator() = default;
  /// Position at the first key >= target.
  virtual void Seek(const std::string& target) = 0;
  virtual void SeekToFirst() = 0;
  virtual bool Valid() const = 0;
  virtual void Next() = 0;
  virtual const std::string& key() const = 0;
  virtual const Bytes& value() const = 0;
};

/// \brief Ordered KV store interface.
class KvStore {
 public:
  virtual ~KvStore() = default;

  virtual Status Put(const std::string& key, Bytes value) = 0;
  virtual Result<Bytes> Get(const std::string& key) const = 0;
  virtual Status Delete(const std::string& key) = 0;
  virtual bool Has(const std::string& key) const = 0;
  /// Apply a batch atomically.
  virtual Status Write(const WriteBatch& batch) = 0;
  /// Ordered iterator over a point-in-time snapshot.
  virtual std::unique_ptr<KvIterator> NewIterator() const = 0;
  virtual size_t ApproximateCount() const = 0;
  /// Total bytes of keys + values (the storage-overhead metric of §6.1).
  virtual size_t ApproximateBytes() const = 0;
};

/// \brief In-memory ordered store (std::map-backed).
///
/// Iterators are true point-in-time snapshots, shared copy-on-write: taking
/// an iterator is O(1) (it pins the current map), and the store only pays a
/// full copy on the first mutation while a snapshot is still alive. Scan
/// paths that take many iterators between writes (AuditAll, ScanPrefix) no
/// longer deep-copy the map per call.
///
/// Thread safety: NOT internally synchronized — one thread (or external
/// locking) must own the store. An *iterator*, however, is safe to hand to
/// another thread once taken: it pins an immutable COW map generation that
/// later mutations never touch (the same property the provenance snapshot
/// layer builds its reader isolation on).
class MemKvStore : public KvStore {
 public:
  MemKvStore() : map_(std::make_shared<Map>()) {}

  Status Put(const std::string& key, Bytes value) override;
  Result<Bytes> Get(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  bool Has(const std::string& key) const override;
  Status Write(const WriteBatch& batch) override;
  std::unique_ptr<KvIterator> NewIterator() const override;
  size_t ApproximateCount() const override { return map_->size(); }
  size_t ApproximateBytes() const override { return bytes_; }

  /// Replace the whole store from key-sorted, duplicate-free entries in
  /// O(n) — std::map's range constructor is linear on sorted input, versus
  /// O(n log n) comparisons for n individual Puts. This is the snapshot
  /// restore path; InvalidArgument if the input is unsorted.
  Status LoadSorted(std::vector<std::pair<std::string, Bytes>> entries);

 private:
  using Map = std::map<std::string, Bytes>;

  /// The map, detached from live snapshots first (copy-on-write).
  Map& Mutable();

  std::shared_ptr<Map> map_;
  size_t bytes_ = 0;
};

/// \brief All keys in [prefix, prefix-end) as (key, value) pairs — a common
/// query-service access pattern.
std::vector<std::pair<std::string, Bytes>> ScanPrefix(const KvStore& store,
                                                      const std::string& prefix);

}  // namespace storage
}  // namespace provledger

#endif  // PROVLEDGER_STORAGE_KV_STORE_H_
