// Blocks: header (prev-hash link + Merkle root over transactions, Figure 2
// of the paper) and body. Any mutation of any historical transaction breaks
// either the Merkle root or the hash chain — the immutability property the
// paper identifies as blockchain's key contribution to provenance.
//
// Thread safety: plain value types — distinct instances are independent;
// concurrent const access to one instance is safe, any mutation needs
// external coordination.

#ifndef PROVLEDGER_LEDGER_BLOCK_H_
#define PROVLEDGER_LEDGER_BLOCK_H_

#include <string>
#include <vector>

#include "crypto/merkle.h"
#include "ledger/transaction.h"

namespace provledger {
namespace ledger {

/// \brief Fixed-layout block header; the block id is the hash of its
/// canonical encoding.
struct BlockHeader {
  uint64_t height = 0;
  crypto::Digest prev_hash = crypto::ZeroDigest();
  crypto::Digest merkle_root = crypto::ZeroDigest();
  Timestamp timestamp = 0;
  /// Consensus-specific seal (PoW nonce, PoS slot, view/term number).
  uint64_t nonce = 0;
  /// Identity of the proposing node/organization.
  std::string proposer;

  void EncodeTo(Encoder* enc) const;
  static Result<BlockHeader> DecodeFrom(Decoder* dec);
  /// Block id.
  crypto::Digest Hash() const;
};

/// \brief A block: header plus ordered transactions.
struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;

  /// Build a block over `txs`, computing the Merkle root.
  static Block Make(uint64_t height, const crypto::Digest& prev_hash,
                    std::vector<Transaction> txs, Timestamp timestamp,
                    const std::string& proposer);

  /// Merkle root over the canonical transaction encodings.
  static crypto::Digest ComputeMerkleRoot(
      const std::vector<Transaction>& txs);

  /// Process-wide count of ComputeMerkleRoot calls — the hash-work counter
  /// behind the "one root per locally built block" invariant (a block built
  /// by Block::Make must not be re-rooted when the same process validates
  /// it; bench_recovery reports roots/block on the ingest path).
  static uint64_t merkle_root_computes();

  /// Merkle leaf payloads for `txs` — the single definition of the leaf
  /// domain, shared by root computation and every proof tree so the two
  /// can never diverge.
  static std::vector<Bytes> TxLeaves(const std::vector<Transaction>& txs);

  /// Inclusion proof for transaction `index` against header.merkle_root —
  /// the SPV primitive used by auditors and cross-chain relays.
  Result<crypto::MerkleProof> ProveTransaction(size_t index) const;

  Bytes Encode() const;
  static Result<Block> Decode(const Bytes& data);

  /// Total encoded size (storage-overhead metric).
  size_t EncodedSize() const { return Encode().size(); }
};

}  // namespace ledger
}  // namespace provledger

#endif  // PROVLEDGER_LEDGER_BLOCK_H_
