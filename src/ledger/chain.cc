#include "ledger/chain.h"
#include <algorithm>


namespace provledger {
namespace ledger {

namespace {
std::string Key(const crypto::Digest& d) { return crypto::DigestHex(d); }
}  // namespace

Blockchain::Blockchain(ChainOptions options) : options_(std::move(options)) {
  obs::Registry* registry = options_.registry != nullptr
                                ? options_.registry
                                : obs::Registry::Default();
  append_seconds_ = registry->GetHistogram(
      "chain_append_seconds", "Block acceptance latency (validate + install)",
      obs::LatencyBuckets());
  validate_seconds_ = registry->GetHistogram(
      "chain_validate_seconds",
      "Block validation + write-ahead persistence latency",
      obs::LatencyBuckets());
  merkle_builds_total_ = registry->GetCounter(
      "chain_merkle_tree_builds_total",
      "Merkle proof trees built (cache misses on the proof path)");
  height_gauge_ =
      registry->GetGauge("chain_height", "Main-chain head height");
  // Genesis: one system transaction binding the chain id.
  Transaction genesis_tx = Transaction::MakeSystem(
      "genesis", "", ToBytes(options_.chain_id), /*timestamp=*/0, /*nonce=*/0);
  Block genesis = Block::Make(0, crypto::ZeroDigest(), {genesis_tx},
                              /*timestamp=*/0, "genesis");
  crypto::Digest hash = genesis.header.Hash();
  blocks_.emplace(Key(hash), std::make_shared<const Block>(std::move(genesis)));
  main_chain_.push_back(hash);
  tx_index_.emplace(Key(genesis_tx.Id()), TxLocation{0, 0});
  RepublishChainView();
}

uint64_t Blockchain::height() const {
  return static_cast<uint64_t>(main_chain_.size()) - 1;
}

crypto::Digest Blockchain::head_hash() const { return main_chain_.back(); }

const Block& Blockchain::genesis() const {
  return *blocks_.at(Key(main_chain_[0]));
}

Status Blockchain::ValidateBlock(const Block& block, const Block& parent,
                                 bool check_merkle_root) const {
  // No prev_hash check: the sole caller (ValidateAndPersist) fetched
  // `parent` from blocks_ by Key(block.header.prev_hash), and every
  // stored block is keyed by its own header hash — the link equality is
  // structural, and re-deriving parent.header.Hash() here would cost a
  // redundant SHA-256 per acceptance.
  if (block.header.height != parent.header.height + 1) {
    return Status::InvalidArgument("block height does not extend parent");
  }
  if (block.header.timestamp < parent.header.timestamp) {
    return Status::InvalidArgument("block timestamp precedes parent");
  }
  if (options_.max_block_txs != 0 &&
      block.transactions.size() > options_.max_block_txs) {
    return Status::InvalidArgument("block exceeds max transaction count");
  }
  if (check_merkle_root && Block::ComputeMerkleRoot(block.transactions) !=
                               block.header.merkle_root) {
    return Status::Corruption("merkle root does not match transactions");
  }
  for (const auto& tx : block.transactions) {
    if (!tx.IsSigned() && !options_.allow_unsigned) {
      return Status::PermissionDenied("unsigned transactions not allowed");
    }
    if (options_.verify_signatures) {
      PROVLEDGER_RETURN_NOT_OK(tx.VerifySignature());
    }
  }
  return Status::OK();
}

Result<crypto::Digest> Blockchain::Append(std::vector<Transaction> txs,
                                          Timestamp timestamp,
                                          const std::string& proposer,
                                          uint64_t nonce) {
  obs::ScopedTimer timer(append_seconds_);
  const crypto::Digest parent_hash = head_hash();
  const Block& parent = *blocks_.at(Key(parent_hash));
  Block block = Block::Make(parent.header.height + 1, parent_hash,
                            std::move(txs), timestamp, proposer);
  block.header.nonce = nonce;
  crypto::Digest hash = block.header.Hash();
  // Self-produce fast path: Make just derived the root from these exact
  // transactions, so acceptance skips the redundant re-computation.
  PROVLEDGER_RETURN_NOT_OK(AcceptBlock(std::move(block), hash,
                                       /*check_merkle_root=*/false,
                                       /*cached_ids=*/nullptr));
  return hash;
}

Result<crypto::Digest> Blockchain::AppendPrepared(
    std::vector<PreparedTx>* txs, Timestamp timestamp,
    const std::string& proposer, uint64_t nonce,
    const crypto::Digest* precomputed_root) {
  obs::ScopedTimer timer(append_seconds_);
  const crypto::Digest parent_hash = head_hash();
  const Block& parent = *blocks_.at(Key(parent_hash));
  // Root straight from the cached leaf digests — the transactions' bytes
  // are never re-encoded or re-hashed on this path.
  std::vector<crypto::Digest> ids;
  ids.reserve(txs->size());
  for (const auto& ptx : *txs) ids.push_back(ptx.id);
  crypto::Digest root;
  if (precomputed_root != nullptr) {
    root = *precomputed_root;
  } else {
    std::vector<crypto::Digest> leaves;
    leaves.reserve(txs->size());
    for (const auto& ptx : *txs) leaves.push_back(ptx.leaf);
    root = crypto::MerkleTree::BuildFromDigests(leaves).root();
  }
  Block block;
  block.header.height = parent.header.height + 1;
  block.header.prev_hash = parent_hash;
  block.header.merkle_root = root;
  block.header.timestamp = timestamp;
  block.header.nonce = nonce;
  block.header.proposer = proposer;
  block.transactions.reserve(txs->size());
  for (auto& ptx : *txs) block.transactions.push_back(std::move(ptx.tx));
  crypto::Digest hash = block.header.Hash();
  // Two-stage acceptance keeps the hand-back contract structural: every
  // failure point runs before `block` is consumed, so on error the
  // transactions are still here and move straight back into the caller's
  // PreparedTx vector for retry.
  const std::string block_key = Key(hash);
  Status accepted =
      ValidateAndPersist(block, block_key, /*check_merkle_root=*/false);
  if (!accepted.ok()) {
    for (size_t i = 0; i < txs->size(); ++i) {
      (*txs)[i].tx = std::move(block.transactions[i]);
    }
    return accepted;
  }
  InstallBlock(std::move(block), hash, block_key, &ids);
  txs->clear();
  return hash;
}

Status Blockchain::SubmitBlock(const Block& block) {
  obs::ScopedTimer timer(append_seconds_);
  const crypto::Digest hash = block.header.Hash();
  const std::string block_key = Key(hash);
  // Validate against the caller's block; the deep copy (every transaction
  // payload) is only paid once the block is actually going in.
  PROVLEDGER_RETURN_NOT_OK(
      ValidateAndPersist(block, block_key, /*check_merkle_root=*/true));
  InstallBlock(Block(block), hash, block_key, /*cached_ids=*/nullptr);
  return Status::OK();
}

Status Blockchain::AcceptBlock(Block&& block, const crypto::Digest& hash,
                               bool check_merkle_root,
                               const std::vector<crypto::Digest>* cached_ids) {
  const std::string block_key = Key(hash);
  PROVLEDGER_RETURN_NOT_OK(
      ValidateAndPersist(block, block_key, check_merkle_root));
  InstallBlock(std::move(block), hash, block_key, cached_ids);
  return Status::OK();
}

Status Blockchain::ValidateAndPersist(const Block& block,
                                      const std::string& block_key,
                                      bool check_merkle_root) {
  obs::ScopedTimer timer(validate_seconds_);
  if (blocks_.count(block_key)) {
    return Status::AlreadyExists("block already known");
  }
  auto parent_it = blocks_.find(Key(block.header.prev_hash));
  if (parent_it == blocks_.end()) {
    return Status::NotFound("parent block unknown");
  }
  PROVLEDGER_RETURN_NOT_OK(
      ValidateBlock(block, *parent_it->second, check_merkle_root));

  // Write-ahead: the block must be durable before any in-memory state
  // changes, so a crash can never leave the memory view ahead of the log.
  if (block_sink_) PROVLEDGER_RETURN_NOT_OK(block_sink_(block));
  return Status::OK();
}

void Blockchain::InstallBlock(Block&& block, const crypto::Digest& hash,
                              const std::string& block_key,
                              const std::vector<crypto::Digest>* cached_ids) {
  const bool extends_head = block.header.prev_hash == head_hash();
  const Block& stored =
      *blocks_
           .emplace(block_key,
                    std::make_shared<const Block>(std::move(block)))
           .first->second;

  // Fork choice: extending the head is the fast path; a strictly higher
  // side branch triggers a reorg (longest-chain rule).
  if (extends_head) {
    main_chain_.push_back(hash);
    uint32_t idx = 0;
    for (const auto& tx : stored.transactions) {
      // Cached ids (the prepared-ingest path) spare the per-transaction
      // re-encode + re-hash that Id() costs.
      const crypto::Digest id =
          cached_ids != nullptr ? (*cached_ids)[idx] : tx.Id();
      tx_index_[Key(id)] = TxLocation{stored.header.height, idx++};
    }
    RepublishChainView();
    return;
  }
  if (stored.header.height > height()) {
    // Rebuild the main chain by walking parents back to genesis.
    std::vector<crypto::Digest> new_chain;
    crypto::Digest cursor = hash;
    while (true) {
      new_chain.push_back(cursor);
      const Block& b = *blocks_.at(Key(cursor));
      if (b.header.height == 0) break;
      cursor = b.header.prev_hash;
    }
    std::reverse(new_chain.begin(), new_chain.end());
    main_chain_ = std::move(new_chain);
    ReindexMainChain();
    RepublishChainView();
  }
}

void Blockchain::ReindexMainChain() {
  tx_index_.clear();
  for (const auto& hash : main_chain_) {
    const Block& b = *blocks_.at(Key(hash));
    uint32_t idx = 0;
    for (const auto& tx : b.transactions) {
      tx_index_[Key(tx.Id())] = TxLocation{b.header.height, idx++};
    }
  }
}

void Blockchain::RepublishChainView() {
  auto view = std::make_shared<ChainView>();
  view->blocks.reserve(main_chain_.size());
  view->hashes = main_chain_;
  for (const auto& hash : main_chain_) {
    view->blocks.push_back(blocks_.at(Key(hash)));
  }
  std::atomic_store(&view_,
                    std::shared_ptr<const ChainView>(std::move(view)));
  height_gauge_->Set(static_cast<int64_t>(height()));
}

std::shared_ptr<const ChainView> Blockchain::AcquireChainView() const {
  return std::atomic_load(&view_);
}

Result<crypto::Digest> Blockchain::BlockHashAt(uint64_t h) const {
  if (h >= main_chain_.size()) {
    return Status::NotFound("no block at height " + std::to_string(h));
  }
  return main_chain_[h];
}

std::vector<const Block*> Blockchain::PeekRange(uint64_t from,
                                                size_t max_blocks) const {
  std::vector<const Block*> out;
  for (uint64_t h = from; h < main_chain_.size() && out.size() < max_blocks;
       ++h) {
    out.push_back(blocks_.at(Key(main_chain_[h])).get());
  }
  return out;
}

Result<Block> Blockchain::GetBlock(uint64_t h) const {
  if (h >= main_chain_.size()) {
    return Status::NotFound("no block at height " + std::to_string(h));
  }
  return *blocks_.at(Key(main_chain_[h]));
}

const Block* Blockchain::PeekBlock(uint64_t h) const {
  if (h >= main_chain_.size()) return nullptr;
  return blocks_.at(Key(main_chain_[h])).get();
}

Result<Block> Blockchain::GetBlockByHash(const crypto::Digest& hash) const {
  auto it = blocks_.find(Key(hash));
  if (it == blocks_.end()) return Status::NotFound("unknown block hash");
  return *it->second;
}

Result<BlockHeader> Blockchain::GetHeader(uint64_t h) const {
  PROVLEDGER_ASSIGN_OR_RETURN(Block b, GetBlock(h));
  return b.header;
}

Result<TxLocation> Blockchain::FindTransaction(
    const crypto::Digest& txid) const {
  auto it = tx_index_.find(Key(txid));
  if (it == tx_index_.end()) {
    return Status::NotFound("transaction not on main chain");
  }
  return it->second;
}

Result<Transaction> Blockchain::GetTransaction(
    const crypto::Digest& txid) const {
  PROVLEDGER_ASSIGN_OR_RETURN(TxLocation loc, FindTransaction(txid));
  // Reference the stored block directly: GetBlock would copy the whole
  // block (every transaction) to hand back one of them.
  const Block& b = *blocks_.at(Key(main_chain_[loc.height]));
  return b.transactions[loc.index];
}

std::vector<Transaction> Blockchain::GetChannelTransactions(
    const std::string& channel) const {
  std::vector<Transaction> out;
  for (const auto& hash : main_chain_) {
    const Block& b = *blocks_.at(Key(hash));
    for (const auto& tx : b.transactions) {
      if (tx.channel == channel) out.push_back(tx);
    }
  }
  return out;
}

const crypto::MerkleTree& Blockchain::TreeFor(const std::string& block_key,
                                              const Block& block) const {
  auto it = merkle_cache_.find(block_key);
  if (it != merkle_cache_.end()) return it->second;
  if (options_.merkle_cache_blocks != 0) {
    while (merkle_cache_.size() >= options_.merkle_cache_blocks &&
           !merkle_cache_order_.empty()) {
      merkle_cache_.erase(merkle_cache_order_.front());
      merkle_cache_order_.pop_front();
    }
  }
  ++merkle_builds_;
  merkle_builds_total_->Increment();
  merkle_cache_order_.push_back(block_key);
  return merkle_cache_
      .emplace(block_key, crypto::MerkleTree::Build(
                              Block::TxLeaves(block.transactions)))
      .first->second;
}

Result<TxProof> Blockchain::ProveTransaction(const crypto::Digest& txid) const {
  PROVLEDGER_ASSIGN_OR_RETURN(TxLocation loc, FindTransaction(txid));
  const std::string block_key = Key(main_chain_[loc.height]);
  const Block& b = *blocks_.at(block_key);
  TxProof proof;
  proof.block_hash = main_chain_[loc.height];
  proof.header = b.header;
  PROVLEDGER_ASSIGN_OR_RETURN(proof.merkle_proof,
                              TreeFor(block_key, b).Prove(loc.index));
  return proof;
}

bool Blockchain::VerifyTxProofAgainstHeader(const Bytes& tx_encoding,
                                            const TxProof& proof) {
  if (proof.header.Hash() != proof.block_hash) return false;
  return crypto::MerkleTree::VerifyProof(proof.header.merkle_root,
                                         tx_encoding, proof.merkle_proof);
}

bool Blockchain::VerifyTxProof(const Bytes& tx_encoding,
                               const TxProof& proof) const {
  if (!VerifyTxProofAgainstHeader(tx_encoding, proof)) return false;
  // The proof's block must be on *this* chain's main branch.
  if (proof.header.height >= main_chain_.size()) return false;
  return main_chain_[proof.header.height] == proof.block_hash;
}

Status Blockchain::VerifyIntegrity() const {
  for (size_t h = 0; h < main_chain_.size(); ++h) {
    const Block& b = *blocks_.at(Key(main_chain_[h]));
    if (b.header.height != h) {
      return Status::Corruption("height mismatch at " + std::to_string(h));
    }
    if (Block::ComputeMerkleRoot(b.transactions) != b.header.merkle_root) {
      return Status::Corruption("merkle root mismatch at height " +
                                std::to_string(h));
    }
    if (h > 0) {
      const Block& parent = *blocks_.at(Key(main_chain_[h - 1]));
      if (b.header.prev_hash != parent.header.Hash()) {
        return Status::Corruption("hash chain broken at height " +
                                  std::to_string(h));
      }
    }
    if (options_.verify_signatures) {
      for (const auto& tx : b.transactions) {
        Status s = tx.VerifySignature();
        if (!s.ok()) {
          return Status::Corruption("bad signature at height " +
                                    std::to_string(h) + ": " + s.message());
        }
      }
    }
  }
  return Status::OK();
}

size_t Blockchain::ApproximateBytes() const {
  size_t total = 0;
  for (const auto& hash : main_chain_) {
    total += blocks_.at(Key(hash))->EncodedSize();
  }
  return total;
}

Status Blockchain::TamperForTesting(uint64_t height, size_t tx_index,
                                    uint8_t xor_mask) {
  if (height >= main_chain_.size()) {
    return Status::NotFound("no block at that height");
  }
  // Installed blocks are shared immutably with published ChainViews; the
  // const_cast is this hook's documented single-threaded-test exception.
  Block& b = const_cast<Block&>(*blocks_.at(Key(main_chain_[height])));
  if (tx_index >= b.transactions.size()) {
    return Status::NotFound("no transaction at that index");
  }
  Bytes& payload = b.transactions[tx_index].payload;
  if (payload.empty()) payload.push_back(0);
  payload[0] ^= xor_mask;
  // The stored block no longer matches any cached proof tree. Purge the
  // FIFO entry too so the map and eviction order stay one-to-one.
  const std::string block_key = Key(main_chain_[height]);
  merkle_cache_.erase(block_key);
  merkle_cache_order_.erase(std::remove(merkle_cache_order_.begin(),
                                        merkle_cache_order_.end(), block_key),
                            merkle_cache_order_.end());
  return Status::OK();
}

Status Mempool::Add(const Transaction& tx) {
  const std::string id = crypto::DigestHex(tx.Id());
  if (seen_.count(id)) {
    return Status::AlreadyExists("transaction already in mempool");
  }
  if (verify_signatures_) {
    PROVLEDGER_RETURN_NOT_OK(tx.VerifySignature());
  }
  seen_.emplace(id, true);
  queue_.push_back(tx);
  return Status::OK();
}

std::vector<Transaction> Mempool::Take(size_t max_count) {
  size_t n = (max_count == 0 || max_count > queue_.size()) ? queue_.size()
                                                           : max_count;
  std::vector<Transaction> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::move(queue_.front()));
    seen_.erase(crypto::DigestHex(out.back().Id()));
    queue_.pop_front();
  }
  return out;
}

}  // namespace ledger
}  // namespace provledger
