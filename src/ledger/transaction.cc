#include "ledger/transaction.h"

namespace provledger {
namespace ledger {

Bytes Transaction::SigningBytes() const {
  Encoder enc;
  enc.PutString(type);
  enc.PutString(channel);
  enc.PutBytes(payload);
  enc.PutI64(timestamp);
  enc.PutU64(nonce);
  enc.PutBytes(sender);
  return enc.TakeBuffer();
}

void Transaction::EncodeTo(Encoder* enc) const {
  enc->PutString(type);
  enc->PutString(channel);
  enc->PutBytes(payload);
  enc->PutI64(timestamp);
  enc->PutU64(nonce);
  enc->PutBytes(sender);
  enc->PutBytes(signature);
}

Bytes Transaction::Encode() const {
  Encoder enc;
  EncodeTo(&enc);
  return enc.TakeBuffer();
}

Result<Transaction> Transaction::DecodeFrom(Decoder* dec) {
  Transaction tx;
  PROVLEDGER_RETURN_NOT_OK(dec->GetString(&tx.type));
  PROVLEDGER_RETURN_NOT_OK(dec->GetString(&tx.channel));
  PROVLEDGER_RETURN_NOT_OK(dec->GetBytes(&tx.payload));
  PROVLEDGER_RETURN_NOT_OK(dec->GetI64(&tx.timestamp));
  PROVLEDGER_RETURN_NOT_OK(dec->GetU64(&tx.nonce));
  PROVLEDGER_RETURN_NOT_OK(dec->GetBytes(&tx.sender));
  PROVLEDGER_RETURN_NOT_OK(dec->GetBytes(&tx.signature));
  return tx;
}

Result<Transaction> Transaction::Decode(const Bytes& data) {
  Decoder dec(data);
  PROVLEDGER_ASSIGN_OR_RETURN(Transaction tx, DecodeFrom(&dec));
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes after transaction");
  }
  return tx;
}

crypto::Digest Transaction::Id() const {
  return crypto::Sha256::Hash(Encode());
}

Status Transaction::VerifySignature() const {
  if (!IsSigned()) {
    if (!signature.empty()) {
      return Status::InvalidArgument("signature present without sender");
    }
    return Status::OK();
  }
  PROVLEDGER_ASSIGN_OR_RETURN(crypto::PublicKey key,
                              crypto::PublicKey::Decode(sender));
  PROVLEDGER_ASSIGN_OR_RETURN(crypto::Signature sig,
                              crypto::Signature::Decode(signature));
  if (!crypto::Verify(key, SigningBytes(), sig)) {
    return Status::Unauthenticated("transaction signature invalid");
  }
  return Status::OK();
}

Transaction Transaction::MakeSigned(const std::string& type,
                                    const std::string& channel, Bytes payload,
                                    const crypto::PrivateKey& key,
                                    Timestamp timestamp, uint64_t nonce) {
  Transaction tx;
  tx.type = type;
  tx.channel = channel;
  tx.payload = std::move(payload);
  tx.timestamp = timestamp;
  tx.nonce = nonce;
  tx.sender = key.public_key().Encode();
  tx.signature = key.Sign(tx.SigningBytes()).Encode();
  return tx;
}

Transaction Transaction::MakeSystem(const std::string& type,
                                    const std::string& channel, Bytes payload,
                                    Timestamp timestamp, uint64_t nonce) {
  Transaction tx;
  tx.type = type;
  tx.channel = channel;
  tx.payload = std::move(payload);
  tx.timestamp = timestamp;
  tx.nonce = nonce;
  return tx;
}

}  // namespace ledger
}  // namespace provledger
