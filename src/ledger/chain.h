// The blockchain: a validated block tree with longest-chain fork choice,
// transaction indexes, tamper detection, and SPV-style transaction proofs.
//
// This is the "own ledger framework" substitute for the Ethereum/Fabric
// deployments of the surveyed systems (DESIGN.md §3): the mechanisms the
// paper evaluates — hash-chained immutability (Figure 2), Merkle anchoring,
// channel separation, reorg behaviour — are all first-class here.

#ifndef PROVLEDGER_LEDGER_CHAIN_H_
#define PROVLEDGER_LEDGER_CHAIN_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ledger/block.h"
#include "obs/metrics.h"

namespace provledger {
namespace ledger {

/// \brief Chain configuration.
struct ChainOptions {
  /// Human-readable chain identity; hashed into the genesis block so two
  /// chains with different ids never share block hashes.
  std::string chain_id = "provledger";
  /// Verify transaction signatures on block submission.
  bool verify_signatures = true;
  /// Accept unsigned (system) transactions.
  bool allow_unsigned = true;
  /// Maximum transactions per block (0 = unlimited).
  size_t max_block_txs = 0;
  /// Cap on cached per-block Merkle proof trees (FIFO eviction; 0 =
  /// unlimited). Bounds proof-cache memory on long-lived nodes.
  size_t merkle_cache_blocks = 1024;
  /// Metric registry for append/validate timers, the height gauge, and the
  /// Merkle-build counter (nullptr = obs::Registry::Default()).
  obs::Registry* registry = nullptr;
};

/// \brief Where a transaction lives on the main chain.
struct TxLocation {
  uint64_t height = 0;
  uint32_t index = 0;
};

/// \brief A transaction inclusion proof verifiable against a block header
/// plus the chain of headers up to the head (the auditor/relay primitive).
struct TxProof {
  crypto::Digest block_hash;
  BlockHeader header;
  crypto::MerkleProof merkle_proof;
};

/// \brief An immutable view of the main chain at one instant: every
/// main-chain block (by height) plus its installed hash. Published by the
/// committer on every accepted block and acquired wait-free by background
/// readers (the continuous auditor), mirroring the store's GraphSnapshot
/// epochs: the vectors are never mutated after publication, and the Block
/// objects are shared with the live chain, which never mutates an
/// installed block (TamperForTesting is the single, documented,
/// single-threaded-test exception).
///
/// Thread safety: fully immutable after construction — safe from any
/// number of threads. Holding the shared_ptr keeps the view (and every
/// block behind it) alive across reorgs on the live chain.
struct ChainView {
  /// Main-chain blocks indexed by height (blocks[0] = genesis).
  std::vector<std::shared_ptr<const Block>> blocks;
  /// Installed main-chain hashes by height (hashes[h] is the hash the
  /// block was accepted under — read from the height index, never
  /// re-derived).
  std::vector<crypto::Digest> hashes;

  /// Height of the view's head (genesis = 0). Views are never empty.
  uint64_t height() const {
    return static_cast<uint64_t>(blocks.size()) - 1;
  }
};

/// \brief A transaction whose expensive digests were precomputed off the
/// commit path (by ingest-pipeline shard workers): `id` is Transaction::
/// Id() and `leaf` is MerkleTree::LeafHash over the same canonical
/// encoding. AppendPrepared trusts them, so they must come from those
/// exact functions — a mismatched digest corrupts the chain's indexes.
struct PreparedTx {
  Transaction tx;
  crypto::Digest id;
  crypto::Digest leaf;
};

/// \brief Block tree + longest-chain view.
///
/// Thread safety: NOT internally synchronized; one thread (or external
/// locking) must own all access. Const proof methods populate a mutable
/// Merkle-tree cache, so even concurrent read-only use requires external
/// synchronization. The ingest pipeline satisfies this by funnelling every
/// chain call through its single committer thread. One deliberate
/// exception, safe from any thread with no lock:
///   * AcquireChainView() — one atomic shared_ptr load of the immutable
///     view the owner thread republished on its last accepted block (the
///     same epoch-publication idiom as ProvenanceStore::AcquireSnapshot).
class Blockchain {
 public:
  explicit Blockchain(ChainOptions options = ChainOptions());

  const ChainOptions& options() const { return options_; }

  /// Height of the main-chain head (genesis = 0).
  uint64_t height() const;
  crypto::Digest head_hash() const;
  const Block& genesis() const;

  /// \brief Build, validate, and append a block of `txs` on the current
  /// head. Returns the new block's hash.
  Result<crypto::Digest> Append(std::vector<Transaction> txs,
                                Timestamp timestamp,
                                const std::string& proposer,
                                uint64_t nonce = 0);

  /// \brief Append a block of transactions whose encodings were already
  /// hashed by the caller (see PreparedTx). The local-produce fast path
  /// behind the ingest pipeline's committer: the Merkle root is assembled
  /// from the cached leaf digests (no re-encode, no re-hash) and the
  /// transaction index reuses the cached ids, so each transaction's bytes
  /// are hashed exactly once over its whole anchoring lifetime.
  /// `precomputed_root` (optional) skips even the digest-level tree
  /// build: pass the root of exactly these leaves in this order (the
  /// pipeline's shard workers compute it off-thread); a wrong root
  /// corrupts the chain the same way a wrong leaf digest would.
  /// Validation parity with Append otherwise (height/link/timestamp/
  /// signature checks, block sink ordering). Returns the new block hash.
  /// `*txs` is consumed on success and left INTACT on failure — a
  /// rejected block (validation, block-sink/durability error) hands the
  /// prepared transactions back so the caller can retry, mirroring the
  /// buffered path's no-record-loss contract.
  Result<crypto::Digest> AppendPrepared(
      std::vector<PreparedTx>* txs, Timestamp timestamp,
      const std::string& proposer, uint64_t nonce = 0,
      const crypto::Digest* precomputed_root = nullptr);

  /// \brief Submit an externally built block (fork-aware). The block is
  /// fully validated; if it extends a side branch that becomes strictly
  /// longer than the main chain, a reorg adopts it.
  Status SubmitBlock(const Block& block);

  /// \brief Install a durability sink invoked for every accepted block
  /// (main chain or side branch), after validation but before any chain
  /// state mutates — write-ahead ordering. A sink error rejects the block,
  /// so in-memory state never runs ahead of the persisted log. Pass nullptr
  /// to detach. Blocks replayed *from* the sink's storage should be
  /// submitted with the sink detached, or they would be re-persisted.
  void SetBlockSink(std::function<Status(const Block&)> sink) {
    block_sink_ = std::move(sink);
  }

  /// Hash of the main-chain block at `height`, read straight from the
  /// height index — never re-derived by hashing the header. NotFound past
  /// the head. The replication sync protocol's height/head-hash exchange
  /// and the snapshot chain-binding both use this.
  Result<crypto::Digest> BlockHashAt(uint64_t height) const;
  /// Borrowed views of the main-chain blocks [from, from + max_blocks),
  /// clipped to the head (empty when `from` is past it). The cheap ranged
  /// read behind catch-up block serving; views are valid until the next
  /// chain mutation, like PeekBlock.
  std::vector<const Block*> PeekRange(uint64_t from, size_t max_blocks) const;

  /// \brief Latest published main-chain view. Wait-free; safe from any
  /// thread. The view reflects the chain as of the last block accepted
  /// before the load, and stays valid (and unchanged) for as long as the
  /// pointer is held — the continuous auditor reads whole passes from one
  /// acquired view while the committer keeps appending. Never nullptr
  /// (the constructor publishes the genesis-only view).
  std::shared_ptr<const ChainView> AcquireChainView() const;

  /// Main-chain block by height.
  Result<Block> GetBlock(uint64_t height) const;
  /// Borrowed view of a main-chain block, or nullptr if out of range.
  /// Valid until the next chain mutation; use when iterating without the
  /// deep copy GetBlock makes.
  const Block* PeekBlock(uint64_t height) const;
  /// Any known block (main or side) by hash.
  Result<Block> GetBlockByHash(const crypto::Digest& hash) const;
  /// Main-chain header by height (cheap).
  Result<BlockHeader> GetHeader(uint64_t height) const;

  /// Locate a transaction on the main chain by id.
  Result<TxLocation> FindTransaction(const crypto::Digest& txid) const;
  /// Fetch a transaction by id.
  Result<Transaction> GetTransaction(const crypto::Digest& txid) const;
  /// All main-chain transactions on `channel` in chain order.
  std::vector<Transaction> GetChannelTransactions(
      const std::string& channel) const;

  /// Merkle + header proof of inclusion for a transaction.
  Result<TxProof> ProveTransaction(const crypto::Digest& txid) const;
  /// Verify a TxProof against this chain's main-chain headers.
  bool VerifyTxProof(const Bytes& tx_encoding, const TxProof& proof) const;
  /// Header-only verification (what a light client / relay holds).
  static bool VerifyTxProofAgainstHeader(const Bytes& tx_encoding,
                                         const TxProof& proof);

  /// \brief Full-chain integrity scan: hash links, Merkle roots,
  /// signatures. Returns Corruption with the offending height otherwise
  /// (the paper's tamper-evidence property, exercised by bench_fig2).
  Status VerifyIntegrity() const;

  /// Number of blocks on the main chain (height + 1).
  size_t main_chain_length() const { return main_chain_.size(); }
  /// Total blocks known including side branches.
  size_t total_blocks() const { return blocks_.size(); }
  /// Total encoded bytes of main-chain blocks (storage-overhead metric).
  size_t ApproximateBytes() const;

  /// Number of Merkle trees built to serve proofs since construction.
  /// Proof requests against a block whose tree is already cached do not
  /// increment this (perf counter; exercised by the prov store tests).
  /// Per-instance delta; the registry's chain_merkle_tree_builds_total
  /// counter aggregates the same events process-wide.
  size_t merkle_tree_builds() const { return merkle_builds_; }

  /// Test hook: mutate a stored transaction payload in place, bypassing
  /// validation (for tamper-detection experiments). Writes through the
  /// shared immutability of installed blocks (const_cast), so it must only
  /// run while no other thread holds a ChainView — single-threaded tamper
  /// tests only, never under concurrent readers.
  Status TamperForTesting(uint64_t height, size_t tx_index, uint8_t xor_mask);

 private:
  /// `check_merkle_root` is false only for blocks this process just built
  /// via Block::Make (Append's self-produce path): their root was computed
  /// from these exact transactions one call earlier, so re-deriving it
  /// would double the per-block hash work for no information.
  Status ValidateBlock(const Block& block, const Block& parent,
                       bool check_merkle_root) const;
  /// Shared acceptance path behind Append, AppendPrepared, and
  /// SubmitBlock: ValidateAndPersist then InstallBlock. `hash` is
  /// block.header.Hash(), computed once by the caller and reused by both
  /// stages (the header is never re-hashed during acceptance).
  /// `cached_ids` optionally carries the per-transaction ids (same order
  /// as block.transactions) so the fast path skips re-hashing them for
  /// the transaction index.
  Status AcceptBlock(Block&& block, const crypto::Digest& hash,
                     bool check_merkle_root,
                     const std::vector<crypto::Digest>* cached_ids);
  /// Every fallible acceptance step — duplicate check, parent lookup,
  /// validation, block-sink write — without consuming the block. Callers
  /// that need the transactions back on failure (AppendPrepared's retry
  /// hand-back) run this first; the block is only moved into the chain by
  /// InstallBlock after this succeeds. `block_key` is Key(header hash),
  /// computed once per acceptance and shared with InstallBlock.
  Status ValidateAndPersist(const Block& block, const std::string& block_key,
                            bool check_merkle_root);
  /// Infallible final stage: store the block (by move) and run fork
  /// choice. `hash`/`block_key` are the block's header hash and its map
  /// key. Must only be called after ValidateAndPersist succeeded.
  void InstallBlock(Block&& block, const crypto::Digest& hash,
                    const std::string& block_key,
                    const std::vector<crypto::Digest>* cached_ids);
  void ReindexMainChain();
  /// Rebuild and atomically publish the ChainView for the current main
  /// chain. Owner thread only; called after every install/reorg. O(height)
  /// pointer copies — trivial next to the per-block hash work.
  void RepublishChainView();
  /// Cached Merkle tree over `block`'s transactions, built on first use.
  /// `block_key` is hex(block hash); blocks are immutable once stored, so
  /// entries survive reorgs.
  const crypto::MerkleTree& TreeFor(const std::string& block_key,
                                    const Block& block) const;

  ChainOptions options_;
  // All known blocks by hex(hash). Blocks are heap-shared and immutable
  // once installed so published ChainViews can alias them without copies
  // (TamperForTesting's const_cast is the lone documented exception).
  std::unordered_map<std::string, std::shared_ptr<const Block>> blocks_;
  // Main chain: block hashes by height.
  std::vector<crypto::Digest> main_chain_;
  // Latest published main-chain view; accessed with std::atomic_load/
  // atomic_store so AcquireChainView never locks. Deliberately NOT
  // PROV_GUARDED_BY anything (annotations.h): there is no lock —
  // publication IS the atomic_store, acquisition the atomic_load;
  // everything behind the pointer is immutable.
  std::shared_ptr<const ChainView> view_;
  // txid hex -> location, main chain only.
  std::unordered_map<std::string, TxLocation> tx_index_;
  // hex(block hash) -> Merkle tree over its transactions (proof cache),
  // bounded by options_.merkle_cache_blocks with FIFO eviction.
  mutable std::unordered_map<std::string, crypto::MerkleTree> merkle_cache_;
  mutable std::deque<std::string> merkle_cache_order_;
  mutable size_t merkle_builds_ = 0;
  std::function<Status(const Block&)> block_sink_;
  // Cached registry cells (resolved once in the constructor); hot-path
  // updates are single relaxed atomic ops.
  obs::Histogram* append_seconds_;
  obs::Histogram* validate_seconds_;
  obs::Counter* merkle_builds_total_;
  obs::Gauge* height_gauge_;
};

/// \brief FIFO mempool with id-dedup and signature pre-validation.
class Mempool {
 public:
  explicit Mempool(bool verify_signatures = true)
      : verify_signatures_(verify_signatures) {}

  /// Queue a transaction; AlreadyExists on duplicate id.
  Status Add(const Transaction& tx);
  /// Pop up to `max_count` transactions in arrival order (0 = all).
  std::vector<Transaction> Take(size_t max_count = 0);
  size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

 private:
  bool verify_signatures_;
  std::deque<Transaction> queue_;
  std::unordered_map<std::string, bool> seen_;
};

}  // namespace ledger
}  // namespace provledger

#endif  // PROVLEDGER_LEDGER_CHAIN_H_
