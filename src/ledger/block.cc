#include "ledger/block.h"

#include "obs/metrics.h"

namespace provledger {
namespace ledger {

namespace {
// The process-wide root-compute counter lives on the default metric
// registry; merkle_root_computes() is a thin read of the same cell.
obs::Counter* RootComputesCell() {
  static obs::Counter* cell = obs::Registry::Default()->GetCounter(
      "merkle_root_computes_total",
      "Process-wide Block::ComputeMerkleRoot calls");
  return cell;
}
}  // namespace

uint64_t Block::merkle_root_computes() { return RootComputesCell()->value(); }

void BlockHeader::EncodeTo(Encoder* enc) const {
  enc->PutU64(height);
  enc->PutRaw(crypto::DigestToBytes(prev_hash));
  enc->PutRaw(crypto::DigestToBytes(merkle_root));
  enc->PutI64(timestamp);
  enc->PutU64(nonce);
  enc->PutString(proposer);
}

Result<BlockHeader> BlockHeader::DecodeFrom(Decoder* dec) {
  BlockHeader h;
  PROVLEDGER_RETURN_NOT_OK(dec->GetU64(&h.height));
  Bytes raw;
  PROVLEDGER_RETURN_NOT_OK(dec->GetRaw(crypto::kSha256DigestSize, &raw));
  PROVLEDGER_ASSIGN_OR_RETURN(h.prev_hash, crypto::DigestFromBytes(raw));
  PROVLEDGER_RETURN_NOT_OK(dec->GetRaw(crypto::kSha256DigestSize, &raw));
  PROVLEDGER_ASSIGN_OR_RETURN(h.merkle_root, crypto::DigestFromBytes(raw));
  PROVLEDGER_RETURN_NOT_OK(dec->GetI64(&h.timestamp));
  PROVLEDGER_RETURN_NOT_OK(dec->GetU64(&h.nonce));
  PROVLEDGER_RETURN_NOT_OK(dec->GetString(&h.proposer));
  return h;
}

crypto::Digest BlockHeader::Hash() const {
  Encoder enc;
  EncodeTo(&enc);
  return crypto::Sha256::Hash(enc.buffer());
}

std::vector<Bytes> Block::TxLeaves(const std::vector<Transaction>& txs) {
  std::vector<Bytes> leaves;
  leaves.reserve(txs.size());
  for (const auto& tx : txs) leaves.push_back(tx.Encode());
  return leaves;
}

crypto::Digest Block::ComputeMerkleRoot(const std::vector<Transaction>& txs) {
  RootComputesCell()->Increment();
  return crypto::MerkleTree::Build(TxLeaves(txs)).root();
}

Block Block::Make(uint64_t height, const crypto::Digest& prev_hash,
                  std::vector<Transaction> txs, Timestamp timestamp,
                  const std::string& proposer) {
  Block b;
  b.header.height = height;
  b.header.prev_hash = prev_hash;
  b.header.timestamp = timestamp;
  b.header.proposer = proposer;
  b.header.merkle_root = ComputeMerkleRoot(txs);
  b.transactions = std::move(txs);
  return b;
}

Result<crypto::MerkleProof> Block::ProveTransaction(size_t index) const {
  if (index >= transactions.size()) {
    return Status::InvalidArgument("transaction index out of range");
  }
  return crypto::MerkleTree::Build(TxLeaves(transactions)).Prove(index);
}

Bytes Block::Encode() const {
  Encoder enc;
  header.EncodeTo(&enc);
  enc.PutU32(static_cast<uint32_t>(transactions.size()));
  for (const auto& tx : transactions) tx.EncodeTo(&enc);
  return enc.TakeBuffer();
}

Result<Block> Block::Decode(const Bytes& data) {
  Decoder dec(data);
  Block b;
  PROVLEDGER_ASSIGN_OR_RETURN(b.header, BlockHeader::DecodeFrom(&dec));
  uint32_t count = 0;
  PROVLEDGER_RETURN_NOT_OK(dec.GetU32(&count));
  // The count prefix is untrusted: the smallest encoded transaction is far
  // larger than 4 bytes, so a count beyond remaining/4 cannot be satisfied
  // by the payload — reject it before reserving storage for it.
  if (count > dec.remaining() / 4) {
    return Status::Corruption("block transaction count exceeds payload");
  }
  b.transactions.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PROVLEDGER_ASSIGN_OR_RETURN(Transaction tx, Transaction::DecodeFrom(&dec));
    b.transactions.push_back(std::move(tx));
  }
  if (!dec.AtEnd()) return Status::Corruption("trailing bytes after block");
  return b;
}

}  // namespace ledger
}  // namespace provledger
