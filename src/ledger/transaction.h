// Ledger transactions. A transaction is an opaque, typed, signed payload:
// the provenance layer (src/prov) serializes records into transactions, and
// domain modules never touch blocks directly. `channel` namespaces
// applications sharing one chain (the Fabric-style isolation LedgerView
// builds its views over).
//
// Thread safety: plain value types — distinct instances are independent;
// concurrent const access to one instance is safe, any mutation needs
// external coordination.

#ifndef PROVLEDGER_LEDGER_TRANSACTION_H_
#define PROVLEDGER_LEDGER_TRANSACTION_H_

#include <string>

#include "common/clock.h"
#include "common/codec.h"
#include "crypto/schnorr.h"

namespace provledger {
namespace ledger {

/// \brief A signed ledger entry.
struct Transaction {
  /// Application-defined kind, e.g. "prov/record", "custody/transfer".
  std::string type;
  /// Namespace for multi-application chains, e.g. "supply-chain".
  std::string channel;
  /// Opaque application payload.
  Bytes payload;
  /// Producer-asserted creation time (microseconds).
  Timestamp timestamp = 0;
  /// Producer-chosen uniquifier.
  uint64_t nonce = 0;
  /// Compressed public key of the producer; empty for system transactions.
  Bytes sender;
  /// Schnorr signature over SigningBytes(); empty for system transactions.
  Bytes signature;

  /// Canonical bytes covered by the signature (everything but `signature`).
  Bytes SigningBytes() const;
  /// Transaction id: SHA-256 of the full canonical encoding.
  crypto::Digest Id() const;
  /// Full canonical encoding (used as the Merkle leaf payload).
  Bytes Encode() const;
  void EncodeTo(Encoder* enc) const;
  static Result<Transaction> DecodeFrom(Decoder* dec);
  static Result<Transaction> Decode(const Bytes& data);

  bool IsSigned() const { return !sender.empty(); }
  /// OK for correctly signed transactions; signature errors otherwise.
  /// System (unsigned) transactions pass by construction.
  Status VerifySignature() const;

  /// Build and sign a transaction in one step.
  static Transaction MakeSigned(const std::string& type,
                                const std::string& channel, Bytes payload,
                                const crypto::PrivateKey& key,
                                Timestamp timestamp, uint64_t nonce);
  /// Build an unsigned system transaction.
  static Transaction MakeSystem(const std::string& type,
                                const std::string& channel, Bytes payload,
                                Timestamp timestamp, uint64_t nonce);
};

}  // namespace ledger
}  // namespace provledger

#endif  // PROVLEDGER_LEDGER_TRANSACTION_H_
