#include "ledger/chain_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>

#include "common/fileio.h"
#include "common/framed_log.h"
#include "prov/columnar.h"

namespace provledger {
namespace ledger {

namespace {

Result<Bytes> ReadFd(int fd, const std::string& path) {
  struct stat st;
  if (::fstat(fd, &st) != 0) return ErrnoStatus("fstat", path);
  Bytes buf(static_cast<size_t>(st.st_size));
  if (!buf.empty()) {
    ssize_t n = ::pread(fd, buf.data(), buf.size(), 0);
    if (n != static_cast<ssize_t>(buf.size())) {
      return ErrnoStatus("pread", path);
    }
  }
  return buf;
}

}  // namespace

ChainLog::ChainLog(std::string path, ChainLogOptions options)
    : path_(std::move(path)), options_(options) {
  obs::Registry* registry = options_.registry != nullptr
                                ? options_.registry
                                : obs::Registry::Default();
  append_seconds_ = registry->GetHistogram(
      "chainlog_append_seconds",
      "Block persistence latency (frame + write + optional fsync)",
      obs::LatencyBuckets());
  replay_blocks_total_ = registry->GetCounter(
      "chainlog_replay_blocks_total",
      "Blocks re-validated from the log by Replay()");
  size_gauge_ =
      registry->GetGauge("chainlog_bytes", "Log size on disk, framing included");
}

ChainLog::~ChainLog() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<ChainLog>> ChainLog::Open(const std::string& path,
                                                 ChainLogOptions options) {
  auto log = std::unique_ptr<ChainLog>(new ChainLog(path, options));
  log->fd_ = ::open(path.c_str(), O_RDWR | O_APPEND | O_CREAT, 0644);
  if (log->fd_ < 0) return ErrnoStatus("open", path);
  PROVLEDGER_RETURN_NOT_OK(log->ScanExisting());
  return log;
}

Status ChainLog::ScanExisting() {
  PROVLEDGER_ASSIGN_OR_RETURN(Bytes buf, ReadFd(fd_, path_));
  size_t pos = 0;
  while (pos < buf.size()) {
    size_t payload_len = 0;
    switch (ScanFrameAt(buf, pos, &payload_len)) {
      case FrameScan::kCorrupt:
        // A complete frame that fails its CRC was damaged after the fact;
        // valid blocks may follow it, so never truncate here.
        return Status::Corruption("bad chain log record in " + path_ +
                                  " at offset " + std::to_string(pos));
      case FrameScan::kTorn:
        // A frame running past EOF is the prefix a crash mid-append
        // leaves; drop it so the next Append re-frames cleanly.
        if (::ftruncate(fd_, static_cast<off_t>(pos)) != 0) {
          return ErrnoStatus("ftruncate", path_);
        }
        recovered_torn_write_ = true;
        size_ = pos;
        size_gauge_->Set(static_cast<int64_t>(size_));
        return Status::OK();
      case FrameScan::kValid:
        ++block_count_;
        pos += kFrameHeaderBytes + payload_len;
        break;
    }
  }
  size_ = pos;
  size_gauge_->Set(static_cast<int64_t>(size_));
  return Status::OK();
}

Status ChainLog::Append(const Block& block) {
  obs::ScopedTimer timer(append_seconds_);
  Bytes frame = BuildFrame(options_.columnar_bodies
                               ? prov::columnar::EncodeBlock(block)
                               : block.Encode());
  Status written = WriteAllFd(fd_, frame.data(), frame.size(), path_);
  if (written.ok() && options_.sync_writes && ::fsync(fd_) != 0) {
    written = ErrnoStatus("fsync", path_);
  }
  if (!written.ok()) {
    ::ftruncate(fd_, static_cast<off_t>(size_));  // drop the partial frame
    return written;
  }
  size_ += frame.size();
  ++block_count_;
  size_gauge_->Set(static_cast<int64_t>(size_));
  return Status::OK();
}

Status ChainLog::Replay(Blockchain* chain) {
  PROVLEDGER_ASSIGN_OR_RETURN(Bytes buf, ReadFd(fd_, path_));
  size_t pos = 0;
  size_t replayed = 0;
  while (pos < buf.size() && replayed < block_count_) {
    size_t payload_len = 0;
    if (ScanFrameAt(buf, pos, &payload_len) != FrameScan::kValid) {
      return Status::Corruption("bad chain log record in " + path_ +
                                " at offset " + std::to_string(pos));
    }
    Bytes encoded(buf.begin() + pos + kFrameHeaderBytes,
                  buf.begin() + pos + kFrameHeaderBytes + payload_len);
    // DecodeBlock sniffs the columnar magic and falls back to the legacy
    // body format, so old logs replay no matter how this log is configured.
    PROVLEDGER_ASSIGN_OR_RETURN(Block block,
                                prov::columnar::DecodeBlock(encoded));
    Status submitted = chain->SubmitBlock(block);
    // A block the chain already knows is fine — replay is idempotent, so
    // attaching a partially caught-up chain works.
    if (!submitted.ok() && !submitted.IsAlreadyExists()) return submitted;
    ++replayed;
    replay_blocks_total_->Increment();
    pos += kFrameHeaderBytes + payload_len;
  }
  return Status::OK();
}

Status ChainLog::AttachTo(Blockchain* chain) {
  chain->SetBlockSink(nullptr);  // replayed blocks are already persisted
  if (block_count_ == 0 && chain->height() > 0) {
    // Adopting persistence on a chain that already lived in memory:
    // backfill the current main chain so nothing is lost at next restart.
    for (uint64_t h = 1; h <= chain->height(); ++h) {
      const Block* block = chain->PeekBlock(h);
      if (block == nullptr) {
        return Status::Internal("main chain gap at height " +
                                std::to_string(h));
      }
      PROVLEDGER_RETURN_NOT_OK(Append(*block));
    }
  } else {
    PROVLEDGER_RETURN_NOT_OK(Replay(chain));
  }
  chain->SetBlockSink([this](const Block& block) { return Append(block); });
  return Status::OK();
}

Status ChainLog::Sync() {
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
  return Status::OK();
}

}  // namespace ledger
}  // namespace provledger
