// ChainLog: the binary block persister. Streams every accepted block to an
// append-only log file and reloads the chain from it on startup, making the
// ledger the durable source of truth the paper's provenance systems assume
// (SciChain-style "the chain survives, everything else is an index").
//
// On-disk format: one framed record per block —
//   [u32 encoded_len][u32 crc32(encoding)][Block::Encode() bytes]
// — fsync'd on append (write-ahead of the in-memory chain mutation when
// attached as the chain's block sink). The genesis block is never logged:
// it is derived deterministically from ChainOptions::chain_id, so a log
// written under one chain id refuses to replay onto a chain with another
// (the first block's prev_hash will not match).
//
// Replay goes through Blockchain::SubmitBlock, i.e. every reloaded block is
// re-validated in full (hash links, Merkle roots, signatures, fork choice).
// A restart is therefore also a re-audit of the persisted ledger.
//
// Thread safety: NOT internally synchronized — one ChainLog instance per log
// file, driven by a single owner (the chain's commit path).

#ifndef PROVLEDGER_LEDGER_CHAIN_LOG_H_
#define PROVLEDGER_LEDGER_CHAIN_LOG_H_

#include <memory>
#include <string>

#include "ledger/chain.h"

namespace provledger {
namespace ledger {

/// \brief ChainLog configuration.
struct ChainLogOptions {
  /// fsync after every appended block. Turning it off batches durability
  /// into explicit Sync() calls (bulk-ingest benchmarking).
  bool sync_writes = true;
  /// Persist block bodies in the columnar form (prov/columnar.h): record
  /// payloads stored once through the record columns instead of per-record
  /// canonical bytes. Replay handles both forms regardless — the columnar
  /// body carries its own magic — so logs written either way reload on any
  /// setting, and mixed logs (format flipped mid-life) are fine.
  bool columnar_bodies = true;
  /// Metric registry for the append timer, replay progress counter, and
  /// log-size gauge (nullptr = obs::Registry::Default()).
  obs::Registry* registry = nullptr;
};

/// \brief Append-only durable block log.
class ChainLog {
 public:
  /// Open or create the log file. An incomplete record at the tail — the
  /// prefix a crash mid-append leaves — is truncated away and reported via
  /// recovered_torn_write(); a complete record failing its CRC anywhere is
  /// Corruption (valid blocks may follow it, so it is never truncated).
  static Result<std::unique_ptr<ChainLog>> Open(
      const std::string& path, ChainLogOptions options = ChainLogOptions());

  ~ChainLog();
  ChainLog(const ChainLog&) = delete;
  ChainLog& operator=(const ChainLog&) = delete;

  /// Persist one block (framed append + optional fsync).
  Status Append(const Block& block);

  /// Decode every logged block, in log order, and submit it to `chain`
  /// (full validation + fork choice). The chain's block sink is left
  /// untouched — detach it first or blocks would be re-persisted.
  Status Replay(Blockchain* chain);

  /// Restart wiring in one call: Replay() into `chain`, then install this
  /// log as the chain's block sink so every block accepted from now on is
  /// persisted write-ahead. If the log is empty but the chain already has
  /// main-chain blocks (adopting persistence mid-life), those blocks are
  /// backfilled into the log first; side-branch blocks are not.
  Status AttachTo(Blockchain* chain);

  /// Force buffered bytes to stable storage.
  Status Sync();

  /// Blocks currently persisted in the log.
  size_t block_count() const { return block_count_; }
  /// Log size in bytes (framing included).
  uint64_t size_bytes() const { return size_; }
  /// True when Open() discarded a torn record at the log tail.
  bool recovered_torn_write() const { return recovered_torn_write_; }

 private:
  ChainLog(std::string path, ChainLogOptions options);

  /// Scan existing frames, set size_/block_count_, truncate a torn tail.
  Status ScanExisting();

  std::string path_;
  ChainLogOptions options_;
  int fd_ = -1;
  uint64_t size_ = 0;
  size_t block_count_ = 0;
  bool recovered_torn_write_ = false;
  // Cached registry cells (resolved once in the constructor).
  obs::Histogram* append_seconds_;
  obs::Counter* replay_blocks_total_;
  obs::Gauge* size_gauge_;
};

}  // namespace ledger
}  // namespace provledger

#endif  // PROVLEDGER_LEDGER_CHAIN_LOG_H_
