// Healthcare provenance (§4.3): the EHR lifecycle as surveyed in Singh et
// al. [69] (smart-contract-managed stakeholders), MedBlock [27]
// (hospital-bundled sharing), Niu et al. [59] (searchable encryption over
// shared EHRs — simulated with HMAC trapdoor tokens), and HealthBlock [1]
// (patient-controlled access, off-chain storage, emergency access).
//
// Design centers on the challenges §4.6 lists for healthcare: data
// ownership (patients own records), patient centricity (consent manager),
// HIPAA-style minimum-necessary access (role × consent × purpose), and
// break-glass emergency access with mandatory audit.
//
// Thread safety: NOT internally synchronized — same contract as the
// ProvenanceStore it drives: single owner or external locking.

#ifndef PROVLEDGER_DOMAINS_HEALTHCARE_EHR_H_
#define PROVLEDGER_DOMAINS_HEALTHCARE_EHR_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "access/rbac.h"
#include "prov/store.h"
#include "storage/content_store.h"

namespace provledger {
namespace healthcare {

/// \brief A consent grant from a patient to a provider.
struct Consent {
  std::string patient;
  std::string grantee;
  /// Purposes the grantee may access records for ("treatment", "research").
  std::set<std::string> purposes;
  Timestamp granted_at = 0;
  bool revoked = false;
};

/// \brief Result of an access attempt (everything is audited).
struct AccessOutcome {
  bool allowed = false;
  bool emergency = false;
  std::string reason;
};

/// \brief Patient-centric EHR system over a ProvenanceStore.
class EhrSystem {
 public:
  EhrSystem(prov::ProvenanceStore* store, storage::ContentStore* content,
            Clock* clock);

  /// Role registry (doctor / nurse / pharmacist / insurer / researcher).
  access::RbacPolicy* rbac() { return &rbac_; }

  /// \name Record lifecycle.
  /// @{
  /// Register a patient (owns their record set from then on).
  Status RegisterPatient(const std::string& patient);
  /// Add an EHR entry authored by `provider` (requires "ehr:write" role
  /// permission + patient consent for purpose "treatment").
  /// `keywords` feed the searchable index. Returns the record id.
  Result<std::string> AddRecord(const std::string& patient,
                                const std::string& provider,
                                const std::string& note,
                                const std::vector<std::string>& keywords);
  /// @}

  /// \name Consent management (patient-centric control).
  /// @{
  Status GrantConsent(const std::string& patient, const std::string& grantee,
                      const std::set<std::string>& purposes);
  Status RevokeConsent(const std::string& patient, const std::string& grantee);
  bool HasConsent(const std::string& patient, const std::string& grantee,
                  const std::string& purpose) const;
  /// @}

  /// \name Gated access (HIPAA-style) — every attempt is audited on-ledger.
  /// @{
  /// Read a patient's record content. Requires the "ehr:read" permission
  /// AND active consent for `purpose` — unless `emergency` (break-glass):
  /// then access is granted to any credentialed provider but flagged.
  Result<std::string> ReadRecord(const std::string& record_id,
                                 const std::string& reader,
                                 const std::string& purpose,
                                 bool emergency = false);
  /// All audited access outcomes for a patient (from the ledger).
  std::vector<prov::ProvenanceRecord> AccessAudit(
      const std::string& patient) const;
  /// Break-glass reads only (operation + outcome filtered on-index): the
  /// mandatory-review queue HealthBlock's emergency access calls for.
  std::vector<prov::ProvenanceRecord> EmergencyAccesses(
      const std::string& patient) const;
  /// @}

  /// \name Searchable (encrypted-index) retrieval — Niu et al., simulated.
  /// @{
  /// Record ids matching `keyword`, searchable only with the patient's
  /// search key (multi-user search via per-grantee delegated keys).
  Result<std::vector<std::string>> Search(const std::string& patient,
                                          const std::string& searcher,
                                          const std::string& keyword);
  /// @}

  size_t patient_count() const { return patients_.size(); }

 private:
  struct RecordMeta {
    std::string patient;
    crypto::Digest content_cid;
  };
  Status Audit(const std::string& patient, const std::string& actor,
               const std::string& operation, const std::string& outcome,
               const std::string& record_id = "");
  /// Audit a denied access, then return `denial` (always non-OK). Fails
  /// CLOSED when the audit write itself fails: access stays denied, but the
  /// caller sees Internal("audit write failed ...") instead of the clean
  /// denial — a ledger that cannot record denials is a broken audit trail,
  /// and that must never look like business as usual.
  Status DenyAudited(const std::string& patient, const std::string& actor,
                     const std::string& operation, const std::string& outcome,
                     Status denial, const std::string& record_id = "");
  Bytes SearchKey(const std::string& patient) const;
  std::string Trapdoor(const std::string& patient,
                       const std::string& keyword) const;

  prov::ProvenanceStore* store_;
  storage::ContentStore* content_;
  Clock* clock_;
  access::RbacPolicy rbac_;
  std::set<std::string> patients_;
  std::map<std::string, Consent> consents_;  // "patient/grantee"
  std::map<std::string, RecordMeta> records_;
  // Trapdoor token -> record ids (the "encrypted" inverted index).
  std::map<std::string, std::vector<std::string>> keyword_index_;
  uint64_t seq_ = 0;
};

}  // namespace healthcare
}  // namespace provledger

#endif  // PROVLEDGER_DOMAINS_HEALTHCARE_EHR_H_
