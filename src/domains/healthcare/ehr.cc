#include "domains/healthcare/ehr.h"

#include <cassert>

namespace provledger {
namespace healthcare {

namespace {
// Constructor-time policy setup is infallible by construction (every role
// is defined immediately above its grants, and a fresh RbacPolicy has no
// duplicates) — a failure here is a programming error, not a runtime
// condition, so it asserts instead of propagating.
void MustOk(const Status& status) {
  assert(status.ok());
  (void)status;  // assert compiles out under NDEBUG
}
}  // namespace

EhrSystem::EhrSystem(prov::ProvenanceStore* store,
                     storage::ContentStore* content, Clock* clock)
    : store_(store), content_(content), clock_(clock) {
  rbac_.DefineRole("doctor");
  rbac_.DefineRole("nurse");
  rbac_.DefineRole("pharmacist");
  rbac_.DefineRole("insurer");
  rbac_.DefineRole("researcher");
  for (const char* role : {"doctor", "nurse"}) {
    MustOk(rbac_.GrantPermission(role, "ehr:read"));
  }
  MustOk(rbac_.GrantPermission("doctor", "ehr:write"));
  MustOk(rbac_.GrantPermission("pharmacist", "ehr:read"));
  MustOk(rbac_.GrantPermission("researcher", "ehr:read"));
}

Status EhrSystem::Audit(const std::string& patient, const std::string& actor,
                        const std::string& operation,
                        const std::string& outcome,
                        const std::string& record_id) {
  prov::ProvenanceRecord rec;
  rec.record_id = "ehr-audit-" + std::to_string(++seq_);
  rec.domain = prov::Domain::kHealthcare;
  rec.operation = operation;
  rec.subject = patient;
  rec.agent = actor;
  rec.timestamp = clock_->NowMicros();
  rec.fields["outcome"] = outcome;
  if (!record_id.empty()) rec.fields["record"] = record_id;
  return store_->Anchor(rec);
}

Status EhrSystem::DenyAudited(const std::string& patient,
                              const std::string& actor,
                              const std::string& operation,
                              const std::string& outcome, Status denial,
                              const std::string& record_id) {
  Status audit = Audit(patient, actor, operation, outcome, record_id);
  if (!audit.ok()) {
    return Status::Internal("audit write failed (" + audit.ToString() +
                            ") while denying " + operation + ": " +
                            denial.message());
  }
  return denial;
}

Status EhrSystem::RegisterPatient(const std::string& patient) {
  if (patients_.count(patient)) {
    return Status::AlreadyExists("patient already registered: " + patient);
  }
  patients_.insert(patient);
  return Audit(patient, patient, "register-patient", "ok");
}

Bytes EhrSystem::SearchKey(const std::string& patient) const {
  crypto::Digest key =
      crypto::HmacSha256(ToBytes("ehr-search-master"), ToBytes(patient));
  return Bytes(key.begin(), key.end());
}

std::string EhrSystem::Trapdoor(const std::string& patient,
                                const std::string& keyword) const {
  crypto::Digest token =
      crypto::HmacSha256(SearchKey(patient), ToBytes(keyword));
  return HexEncode(token.data(), 16);
}

Result<std::string> EhrSystem::AddRecord(
    const std::string& patient, const std::string& provider,
    const std::string& note, const std::vector<std::string>& keywords) {
  if (!patients_.count(patient)) {
    return Status::NotFound("no such patient: " + patient);
  }
  if (!rbac_.Check(provider, "ehr:write")) {
    return DenyAudited(
        patient, provider, "add-record", "denied:role",
        Status::PermissionDenied(provider + " lacks ehr:write"));
  }
  if (!HasConsent(patient, provider, "treatment")) {
    return DenyAudited(
        patient, provider, "add-record", "denied:consent",
        Status::PermissionDenied("no treatment consent from " + patient));
  }

  // Content goes off-chain; the ledger holds its hash (HealthBlock/IPFS
  // pattern).
  crypto::Digest cid = content_->Put(ToBytes(note));
  const std::string record_id = "ehr-rec-" + std::to_string(++seq_);

  prov::ProvenanceRecord rec;
  rec.record_id = record_id;
  rec.domain = prov::Domain::kHealthcare;
  rec.operation = "add-record";
  rec.subject = patient;
  rec.agent = provider;
  rec.timestamp = clock_->NowMicros();
  rec.payload_hash = cid;
  rec.fields["outcome"] = "ok";
  PROVLEDGER_RETURN_NOT_OK(store_->Anchor(rec));

  records_.emplace(record_id, RecordMeta{patient, cid});
  for (const auto& keyword : keywords) {
    keyword_index_[Trapdoor(patient, keyword)].push_back(record_id);
  }
  return record_id;
}

Status EhrSystem::GrantConsent(const std::string& patient,
                               const std::string& grantee,
                               const std::set<std::string>& purposes) {
  if (!patients_.count(patient)) {
    return Status::NotFound("no such patient: " + patient);
  }
  Consent consent;
  consent.patient = patient;
  consent.grantee = grantee;
  consent.purposes = purposes;
  consent.granted_at = clock_->NowMicros();
  consents_[patient + "/" + grantee] = std::move(consent);
  return Audit(patient, patient, "grant-consent", "ok->" + grantee);
}

Status EhrSystem::RevokeConsent(const std::string& patient,
                                const std::string& grantee) {
  auto it = consents_.find(patient + "/" + grantee);
  if (it == consents_.end() || it->second.revoked) {
    return Status::NotFound("no active consent for " + grantee);
  }
  it->second.revoked = true;
  return Audit(patient, patient, "revoke-consent", "ok->" + grantee);
}

bool EhrSystem::HasConsent(const std::string& patient,
                           const std::string& grantee,
                           const std::string& purpose) const {
  auto it = consents_.find(patient + "/" + grantee);
  if (it == consents_.end() || it->second.revoked) return false;
  return it->second.purposes.count(purpose) > 0;
}

Result<std::string> EhrSystem::ReadRecord(const std::string& record_id,
                                          const std::string& reader,
                                          const std::string& purpose,
                                          bool emergency) {
  auto it = records_.find(record_id);
  if (it == records_.end()) {
    return Status::NotFound("no such record: " + record_id);
  }
  const std::string& patient = it->second.patient;

  if (!rbac_.Check(reader, "ehr:read")) {
    return DenyAudited(patient, reader, "read-record", "denied:role",
                       Status::PermissionDenied(reader + " lacks ehr:read"),
                       record_id);
  }
  if (!emergency && !HasConsent(patient, reader, purpose) &&
      reader != patient) {
    return DenyAudited(
        patient, reader, "read-record", "denied:consent",
        Status::PermissionDenied("no consent for purpose " + purpose),
        record_id);
  }
  // Break-glass: allowed, but loudly audited (HealthBlock's emergency
  // access requirement).
  PROVLEDGER_RETURN_NOT_OK(Audit(patient, reader, "read-record",
                                 emergency ? "ok:EMERGENCY" : "ok",
                                 record_id));
  PROVLEDGER_ASSIGN_OR_RETURN(Bytes content,
                              content_->GetVerified(it->second.content_cid));
  return BytesToString(content);
}

std::vector<prov::ProvenanceRecord> EhrSystem::AccessAudit(
    const std::string& patient) const {
  return store_
      ->Execute(prov::Query().WithSubject(patient).WithDomain(
          prov::Domain::kHealthcare))
      .records;
}

std::vector<prov::ProvenanceRecord> EhrSystem::EmergencyAccesses(
    const std::string& patient) const {
  return store_
      ->Execute(prov::Query()
                    .WithSubject(patient)
                    .WithOperation("read-record")
                    .WithField("outcome", "ok:EMERGENCY"))
      .records;
}

Result<std::vector<std::string>> EhrSystem::Search(
    const std::string& patient, const std::string& searcher,
    const std::string& keyword) {
  // Multi-user search: the searcher needs consent for "search" (or to be
  // the patient), mirroring Niu et al.'s delegated search capability.
  if (searcher != patient && !HasConsent(patient, searcher, "search")) {
    return DenyAudited(
        patient, searcher, "search", "denied:consent",
        Status::PermissionDenied("no search consent from " + patient));
  }
  PROVLEDGER_RETURN_NOT_OK(
      Audit(patient, searcher, "search", "ok:" + keyword));
  auto it = keyword_index_.find(Trapdoor(patient, keyword));
  if (it == keyword_index_.end()) return std::vector<std::string>{};
  return it->second;
}

}  // namespace healthcare
}  // namespace provledger
