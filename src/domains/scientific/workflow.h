// Scientific-workflow provenance (§4.1; SciLedger [36], SciBlock [28]):
// multi-task workflows as DAGs whose every execution is anchored as a
// Table 1 scientific record, supporting the full Figure 4 lifecycle —
// design (add tasks/dependencies), execution (dependency-ordered), sharing
// (publish), branching/merging, timestamp invalidation with cascade, and
// selective re-execution of exactly the affected subgraph.
//
// Thread safety: NOT internally synchronized — same contract as the
// ProvenanceStore it drives: single owner or external locking.

#ifndef PROVLEDGER_DOMAINS_SCIENTIFIC_WORKFLOW_H_
#define PROVLEDGER_DOMAINS_SCIENTIFIC_WORKFLOW_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "prov/store.h"

namespace provledger {
namespace scientific {

/// \brief Task lifecycle states (Figure 4).
enum class TaskState : uint8_t {
  kPending = 0,
  kExecuted = 1,
  kInvalidated = 2,
  kReexecuted = 3,
};

/// \brief One workflow task.
struct Task {
  std::string id;
  std::string workflow;
  std::string operation;
  std::vector<std::string> depends_on;  // upstream task ids
  TaskState state = TaskState::kPending;
  /// Output entity id (derived as "<task>/out" on execution).
  std::string output;
  /// Record id of the most recent execution.
  std::string execution_record;
  uint32_t executions = 0;
};

/// \brief A workflow: a named DAG of tasks owned by a researcher.
struct Workflow {
  std::string id;
  std::string owner;
  bool published = false;
  std::vector<std::string> task_order;  // insertion order
};

/// \brief Workflow manager over a ProvenanceStore (the SciLedger role).
class WorkflowManager {
 public:
  WorkflowManager(prov::ProvenanceStore* store, Clock* clock);

  /// \name Design phase.
  /// @{
  Status CreateWorkflow(const std::string& workflow_id,
                        const std::string& owner);
  /// Add a task; dependencies must already exist in the same workflow.
  /// Cycles are rejected.
  Status AddTask(const std::string& workflow_id, const std::string& task_id,
                 const std::string& operation,
                 const std::vector<std::string>& depends_on = {});
  /// Branch: add a new task consuming an existing task's output.
  Status Branch(const std::string& workflow_id, const std::string& task_id,
                const std::string& operation, const std::string& from_task);
  /// Merge: add a task consuming several tasks' outputs.
  Status Merge(const std::string& workflow_id, const std::string& task_id,
               const std::string& operation,
               const std::vector<std::string>& from_tasks);
  /// @}

  /// \name Execution phase.
  /// @{
  /// Execute a task as `researcher`; all dependencies must be executed and
  /// valid. Anchors a Table 1 scientific record.
  Status ExecuteTask(const std::string& workflow_id,
                     const std::string& task_id,
                     const std::string& researcher);
  /// Execute every pending task in dependency order; returns count.
  Result<size_t> ExecuteAll(const std::string& workflow_id,
                            const std::string& researcher);
  /// @}

  /// \name Sharing / invalidation / repair (Figure 4 tail).
  /// @{
  /// Publish the workflow (shared provenance becomes externally queryable).
  Status Publish(const std::string& workflow_id);
  /// Invalidate an executed task (SciBlock): cascades to every executed
  /// downstream task. Returns the ids of tasks invalidated.
  Result<std::vector<std::string>> InvalidateTask(
      const std::string& workflow_id, const std::string& task_id,
      const std::string& reason);
  /// Tasks needing re-execution, in dependency order.
  Result<std::vector<std::string>> ReexecutionPlan(
      const std::string& workflow_id) const;
  /// Re-execute one invalidated task (dependencies must be valid again).
  Status ReexecuteTask(const std::string& workflow_id,
                       const std::string& task_id,
                       const std::string& researcher);
  /// @}

  Result<Task> GetTask(const std::string& workflow_id,
                       const std::string& task_id) const;
  Result<Workflow> GetWorkflow(const std::string& workflow_id) const;
  /// Lineage of a task's output across workflows (multi-workflow support).
  std::vector<std::string> OutputLineage(const std::string& workflow_id,
                                         const std::string& task_id) const;
  /// Every anchored execution record of a workflow, in time order; with
  /// `only_valid`, invalidated executions are filtered on-index (the
  /// SciBlock "current state of the shared results" view).
  std::vector<prov::ProvenanceRecord> ExecutionHistory(
      const std::string& workflow_id, bool only_valid = false) const;
  /// All execution records of one task (including superseded re-runs).
  std::vector<prov::ProvenanceRecord> TaskExecutions(
      const std::string& workflow_id, const std::string& task_id) const;
  size_t workflow_count() const { return workflows_.size(); }

 private:
  std::string TaskKey(const std::string& wf, const std::string& task) const {
    return wf + "/" + task;
  }
  Status AddTaskInternal(const std::string& workflow_id,
                         const std::string& task_id,
                         const std::string& operation,
                         const std::vector<std::string>& depends_on);
  Status ExecuteInternal(const std::string& workflow_id, Task* task,
                         const std::string& researcher, bool reexecution);

  prov::ProvenanceStore* store_;
  Clock* clock_;
  std::map<std::string, Workflow> workflows_;
  std::map<std::string, Task> tasks_;  // key: "<wf>/<task>"
  uint64_t record_seq_ = 0;
};

}  // namespace scientific
}  // namespace provledger

#endif  // PROVLEDGER_DOMAINS_SCIENTIFIC_WORKFLOW_H_
