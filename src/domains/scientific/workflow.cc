#include "domains/scientific/workflow.h"

#include <deque>

namespace provledger {
namespace scientific {

WorkflowManager::WorkflowManager(prov::ProvenanceStore* store, Clock* clock)
    : store_(store), clock_(clock) {}

Status WorkflowManager::CreateWorkflow(const std::string& workflow_id,
                                       const std::string& owner) {
  if (workflows_.count(workflow_id)) {
    return Status::AlreadyExists("workflow exists: " + workflow_id);
  }
  Workflow wf;
  wf.id = workflow_id;
  wf.owner = owner;
  workflows_.emplace(workflow_id, std::move(wf));
  return Status::OK();
}

Status WorkflowManager::AddTaskInternal(
    const std::string& workflow_id, const std::string& task_id,
    const std::string& operation,
    const std::vector<std::string>& depends_on) {
  auto wf_it = workflows_.find(workflow_id);
  if (wf_it == workflows_.end()) {
    return Status::NotFound("no such workflow: " + workflow_id);
  }
  const std::string key = TaskKey(workflow_id, task_id);
  if (tasks_.count(key)) {
    return Status::AlreadyExists("task exists: " + key);
  }
  for (const auto& dep : depends_on) {
    if (!tasks_.count(TaskKey(workflow_id, dep))) {
      return Status::NotFound("dependency not found: " + dep);
    }
  }
  // DAG by construction: dependencies must pre-exist, so no cycles.
  Task task;
  task.id = task_id;
  task.workflow = workflow_id;
  task.operation = operation;
  task.depends_on = depends_on;
  task.output = workflow_id + "/" + task_id + "/out";
  tasks_.emplace(key, std::move(task));
  wf_it->second.task_order.push_back(task_id);
  return Status::OK();
}

Status WorkflowManager::AddTask(const std::string& workflow_id,
                                const std::string& task_id,
                                const std::string& operation,
                                const std::vector<std::string>& depends_on) {
  return AddTaskInternal(workflow_id, task_id, operation, depends_on);
}

Status WorkflowManager::Branch(const std::string& workflow_id,
                               const std::string& task_id,
                               const std::string& operation,
                               const std::string& from_task) {
  return AddTaskInternal(workflow_id, task_id, operation, {from_task});
}

Status WorkflowManager::Merge(const std::string& workflow_id,
                              const std::string& task_id,
                              const std::string& operation,
                              const std::vector<std::string>& from_tasks) {
  if (from_tasks.size() < 2) {
    return Status::InvalidArgument("merge requires at least two sources");
  }
  return AddTaskInternal(workflow_id, task_id, operation, from_tasks);
}

Status WorkflowManager::ExecuteInternal(const std::string& workflow_id,
                                        Task* task,
                                        const std::string& researcher,
                                        bool reexecution) {
  // Dependencies must be executed and currently valid.
  std::vector<std::string> inputs;
  for (const auto& dep : task->depends_on) {
    const Task& dep_task = tasks_.at(TaskKey(workflow_id, dep));
    if (dep_task.state != TaskState::kExecuted &&
        dep_task.state != TaskState::kReexecuted) {
      return Status::FailedPrecondition("dependency not executed/valid: " +
                                        dep);
    }
    inputs.push_back(dep_task.output);
  }

  ++record_seq_;
  const std::string record_id = workflow_id + "/exec-" + task->id + "-" +
                                std::to_string(task->executions + 1);
  prov::ProvenanceRecord rec = prov::MakeScientificRecord(
      record_id, reexecution ? "re-execute" : "execute", task->id, researcher,
      clock_->NowMicros(), workflow_id,
      std::to_string(100 + record_seq_ % 400) + "ms", researcher,
      inputs.empty() ? "external" : inputs[0],
      task->output, reexecution ? task->execution_record : "");
  rec.inputs = inputs;
  rec.outputs = {task->output};
  PROVLEDGER_RETURN_NOT_OK(store_->Anchor(rec));

  task->state = reexecution ? TaskState::kReexecuted : TaskState::kExecuted;
  task->execution_record = record_id;
  task->executions++;
  return Status::OK();
}

Status WorkflowManager::ExecuteTask(const std::string& workflow_id,
                                    const std::string& task_id,
                                    const std::string& researcher) {
  auto it = tasks_.find(TaskKey(workflow_id, task_id));
  if (it == tasks_.end()) {
    return Status::NotFound("no such task: " + task_id);
  }
  if (it->second.state != TaskState::kPending) {
    return Status::FailedPrecondition("task not pending: " + task_id);
  }
  return ExecuteInternal(workflow_id, &it->second, researcher, false);
}

Result<size_t> WorkflowManager::ExecuteAll(const std::string& workflow_id,
                                           const std::string& researcher) {
  auto wf_it = workflows_.find(workflow_id);
  if (wf_it == workflows_.end()) {
    return Status::NotFound("no such workflow: " + workflow_id);
  }
  // task_order is a valid topological order (deps precede dependents by
  // construction), so one pass suffices.
  size_t executed = 0;
  for (const auto& task_id : wf_it->second.task_order) {
    Task& task = tasks_.at(TaskKey(workflow_id, task_id));
    if (task.state != TaskState::kPending) continue;
    PROVLEDGER_RETURN_NOT_OK(
        ExecuteInternal(workflow_id, &task, researcher, false));
    ++executed;
  }
  return executed;
}

Status WorkflowManager::Publish(const std::string& workflow_id) {
  auto it = workflows_.find(workflow_id);
  if (it == workflows_.end()) {
    return Status::NotFound("no such workflow: " + workflow_id);
  }
  for (const auto& task_id : it->second.task_order) {
    const Task& task = tasks_.at(TaskKey(workflow_id, task_id));
    if (task.state == TaskState::kPending ||
        task.state == TaskState::kInvalidated) {
      return Status::FailedPrecondition(
          "cannot publish with pending/invalidated task: " + task_id);
    }
  }
  it->second.published = true;
  return Status::OK();
}

Result<std::vector<std::string>> WorkflowManager::InvalidateTask(
    const std::string& workflow_id, const std::string& task_id,
    const std::string& reason) {
  auto it = tasks_.find(TaskKey(workflow_id, task_id));
  if (it == tasks_.end()) {
    return Status::NotFound("no such task: " + task_id);
  }
  Task& root = it->second;
  if (root.state != TaskState::kExecuted &&
      root.state != TaskState::kReexecuted) {
    return Status::FailedPrecondition("task has no valid execution: " +
                                      task_id);
  }
  // Invalidate the execution record in the provenance graph; the cascade
  // gives us the affected executions, which map back to tasks.
  // Graph invalidation runs on the store's shared graph, so cascades cross
  // workflow boundaries when outputs were consumed elsewhere.
  PROVLEDGER_ASSIGN_OR_RETURN(
      std::vector<std::string> cascade,
      store_->mutable_graph()->Invalidate(root.execution_record,
                                          clock_->NowMicros(), reason));

  std::vector<std::string> affected_tasks;
  for (const auto& record_id : cascade) {
    auto rec = store_->GetRecord(record_id);
    if (!rec.ok()) continue;
    // Scientific execution records carry the task id as subject.
    auto task_it = tasks_.find(TaskKey(rec->fields.count(
                                           prov::fields::kWorkflowId)
                                           ? rec->fields.at(
                                                 prov::fields::kWorkflowId)
                                           : workflow_id,
                                       rec->subject));
    if (task_it == tasks_.end()) continue;
    if (task_it->second.execution_record == record_id) {
      task_it->second.state = TaskState::kInvalidated;
      affected_tasks.push_back(task_it->second.id);
    }
  }
  return affected_tasks;
}

Result<std::vector<std::string>> WorkflowManager::ReexecutionPlan(
    const std::string& workflow_id) const {
  auto wf_it = workflows_.find(workflow_id);
  if (wf_it == workflows_.end()) {
    return Status::NotFound("no such workflow: " + workflow_id);
  }
  std::vector<std::string> plan;
  for (const auto& task_id : wf_it->second.task_order) {
    const Task& task = tasks_.at(TaskKey(workflow_id, task_id));
    if (task.state == TaskState::kInvalidated) plan.push_back(task_id);
  }
  return plan;
}

Status WorkflowManager::ReexecuteTask(const std::string& workflow_id,
                                      const std::string& task_id,
                                      const std::string& researcher) {
  auto it = tasks_.find(TaskKey(workflow_id, task_id));
  if (it == tasks_.end()) {
    return Status::NotFound("no such task: " + task_id);
  }
  if (it->second.state != TaskState::kInvalidated) {
    return Status::FailedPrecondition("task is not invalidated: " + task_id);
  }
  return ExecuteInternal(workflow_id, &it->second, researcher, true);
}

Result<Task> WorkflowManager::GetTask(const std::string& workflow_id,
                                      const std::string& task_id) const {
  auto it = tasks_.find(TaskKey(workflow_id, task_id));
  if (it == tasks_.end()) {
    return Status::NotFound("no such task: " + task_id);
  }
  return it->second;
}

Result<Workflow> WorkflowManager::GetWorkflow(
    const std::string& workflow_id) const {
  auto it = workflows_.find(workflow_id);
  if (it == workflows_.end()) {
    return Status::NotFound("no such workflow: " + workflow_id);
  }
  return it->second;
}

std::vector<std::string> WorkflowManager::OutputLineage(
    const std::string& workflow_id, const std::string& task_id) const {
  auto it = tasks_.find(TaskKey(workflow_id, task_id));
  if (it == tasks_.end()) return {};
  return store_->Lineage(it->second.output);
}

std::vector<prov::ProvenanceRecord> WorkflowManager::ExecutionHistory(
    const std::string& workflow_id, bool only_valid) const {
  prov::Query query;
  query.WithDomain(prov::Domain::kScientific)
      .WithField(prov::fields::kWorkflowId, workflow_id);
  if (only_valid) query.OnlyValid();
  return store_->Execute(query).records;
}

std::vector<prov::ProvenanceRecord> WorkflowManager::TaskExecutions(
    const std::string& workflow_id, const std::string& task_id) const {
  return store_
      ->Execute(prov::Query()
                    .WithSubject(task_id)
                    .WithField(prov::fields::kWorkflowId, workflow_id))
      .records;
}

}  // namespace scientific
}  // namespace provledger
