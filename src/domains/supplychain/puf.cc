#include "domains/supplychain/puf.h"

#include "common/rng.h"

namespace provledger {
namespace supplychain {

PufDevice::PufDevice(const std::string& device_id, const Bytes& intrinsic)
    : device_id_(device_id) {
  // The device's silicon fingerprint: derived once, never exported.
  Bytes material = ToBytes("puf/" + device_id + "/");
  AppendBytes(&material, intrinsic);
  crypto::Digest d = crypto::Sha256::Hash(material);
  secret_.assign(d.begin(), d.end());
}

Bytes PufDevice::Respond(const Bytes& challenge) const {
  crypto::Digest response = crypto::HmacSha256(secret_, challenge);
  return Bytes(response.begin(), response.end());
}

Status PufVerifier::Enroll(const PufDevice& device, size_t count,
                           uint64_t seed) {
  if (count == 0) return Status::InvalidArgument("need at least one CRP");
  if (crps_.count(device.device_id())) {
    return Status::AlreadyExists("device already enrolled: " +
                                 device.device_id());
  }
  Rng rng(seed);
  std::vector<Crp> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Crp crp;
    crp.challenge = rng.NextBytes(32);
    crp.response = device.Respond(crp.challenge);
    pairs.push_back(std::move(crp));
  }
  crps_.emplace(device.device_id(), std::move(pairs));
  return Status::OK();
}

Status PufVerifier::Authenticate(
    const std::string& device_id,
    const std::function<Bytes(const Bytes&)>& responder) {
  auto it = crps_.find(device_id);
  if (it == crps_.end()) {
    return Status::NotFound("device not enrolled: " + device_id);
  }
  if (it->second.empty()) {
    return Status::ResourceExhausted("no unused CRPs left for " + device_id);
  }
  Crp crp = std::move(it->second.back());
  it->second.pop_back();  // single-use: consumed even on failure

  Bytes response = responder(crp.challenge);
  if (!ConstantTimeEqual(response, crp.response)) {
    return Status::Unauthenticated("PUF response mismatch for " + device_id);
  }
  return Status::OK();
}

size_t PufVerifier::RemainingCrps(const std::string& device_id) const {
  auto it = crps_.find(device_id);
  return it == crps_.end() ? 0 : it->second.size();
}

}  // namespace supplychain
}  // namespace provledger
